module github.com/comet-explain/comet

go 1.22
