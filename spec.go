package comet

import (
	"fmt"
	"maps"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// ModelSpec is the parsed form of a model spec string, the addressable
// identity of a cost model in the registry:
//
//	name[@target][?key=value&key=value...]
//
// Name selects a registered model family ("uica", "ithemal", "remote", or
// anything installed with RegisterModel). Target is the model's backing
// target: a microarchitecture name for the zoo models ("hsw", "skl"), a
// base URL for the remote model ("remote@http://host:8372"). Params carry
// per-model configuration ("ithemal@skl?hidden=64&train=2000").
//
// Examples:
//
//	uica
//	c@skl
//	ithemal@skylake?hidden=64&train=2000
//	remote@http://localhost:8372?model=uica&arch=hsw
//
// Because '?' starts the parameter list, a target must not itself contain
// a '?' (a remote URL's own query string is not representable).
type ModelSpec struct {
	// Name is the registered model name (lowercase).
	Name string
	// Target is the part after '@': an arch for zoo models, a URL for
	// remote models. Empty means the model's default target.
	Target string
	// Params are the key=value configuration parameters. A nil and an
	// empty map are equivalent.
	Params map[string]string
}

// ParseModelSpec parses a spec string. The name is lower-cased; parameter
// keys and values are URL-unescaped; duplicate parameter keys are an
// error. Parameter validation against the model's registered parameter
// set happens at resolve time, not parse time.
func ParseModelSpec(s string) (ModelSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return ModelSpec{}, fmt.Errorf("comet: empty model spec")
	}
	var spec ModelSpec
	head, rawQuery, hasQuery := strings.Cut(s, "?")
	name, target, _ := strings.Cut(head, "@")
	spec.Name = strings.ToLower(strings.TrimSpace(name))
	spec.Target = strings.TrimSpace(target)
	if err := validateSpecName(spec.Name); err != nil {
		return ModelSpec{}, err
	}
	if hasQuery {
		spec.Params = make(map[string]string)
		for _, pair := range strings.Split(rawQuery, "&") {
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || k == "" {
				return ModelSpec{}, fmt.Errorf("comet: bad model spec parameter %q (want key=value)", pair)
			}
			key, err := url.QueryUnescape(k)
			if err != nil {
				return ModelSpec{}, fmt.Errorf("comet: bad model spec parameter key %q: %v", k, err)
			}
			val, err := url.QueryUnescape(v)
			if err != nil {
				return ModelSpec{}, fmt.Errorf("comet: bad model spec parameter value %q: %v", v, err)
			}
			if _, dup := spec.Params[key]; dup {
				return ModelSpec{}, fmt.Errorf("comet: duplicate model spec parameter %q", key)
			}
			spec.Params[key] = val
		}
	}
	return spec, nil
}

// MustParseModelSpec is ParseModelSpec that panics on error.
func MustParseModelSpec(s string) ModelSpec {
	spec, err := ParseModelSpec(s)
	if err != nil {
		panic(err)
	}
	return spec
}

func validateSpecName(name string) error {
	if name == "" {
		return fmt.Errorf("comet: model spec has no name")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' && r != '_' && r != '.' {
			return fmt.Errorf("comet: bad model name %q (want [a-z0-9._-]+)", name)
		}
	}
	return nil
}

// String renders the spec canonically: lowercase name, "@target" when a
// target is set, and parameters sorted by key with URL escaping. Parsing
// the result yields an equal spec (the round-trip property the registry
// tests enforce).
func (s ModelSpec) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	if s.Target != "" {
		b.WriteByte('@')
		b.WriteString(s.Target)
	}
	if len(s.Params) > 0 {
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i == 0 {
				b.WriteByte('?')
			} else {
				b.WriteByte('&')
			}
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(s.Params[k]))
		}
	}
	return b.String()
}

// Equal reports whether two specs are identical (same name, target, and
// parameter set; nil and empty parameter maps are equivalent).
func (s ModelSpec) Equal(o ModelSpec) bool {
	if s.Name != o.Name || s.Target != o.Target {
		return false
	}
	if len(s.Params) != len(o.Params) {
		return false
	}
	return len(s.Params) == 0 || maps.Equal(s.Params, o.Params)
}

// Param returns the named parameter, or def when unset.
func (s ModelSpec) Param(key, def string) string {
	if v, ok := s.Params[key]; ok {
		return v
	}
	return def
}

// ParamInt returns the named parameter as an int, or def when unset.
func (s ModelSpec) ParamInt(key string, def int) (int, error) {
	v, ok := s.Params[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("comet: model spec parameter %s=%q: want an integer", key, v)
	}
	return n, nil
}

// ParamInt64 returns the named parameter as an int64, or def when unset.
func (s ModelSpec) ParamInt64(key string, def int64) (int64, error) {
	v, ok := s.Params[key]
	if !ok || v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("comet: model spec parameter %s=%q: want an integer", key, v)
	}
	return n, nil
}

// Clone returns a deep copy of the spec whose Params map is non-nil and
// safe to mutate without affecting the original.
func (s ModelSpec) Clone() ModelSpec {
	c := ModelSpec{Name: s.Name, Target: s.Target, Params: make(map[string]string, len(s.Params))}
	maps.Copy(c.Params, s.Params)
	return c
}
