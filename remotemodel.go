package comet

import (
	"fmt"
	"strconv"

	"github.com/comet-explain/comet/internal/remote"
)

// RemoteCostModel is an HTTP BatchCostModel whose predictions come from a
// comet-serve instance's POST /v1/predict endpoint. Any comet-serve is
// thereby a cost-model backend: an explainer on one machine can explain a
// model served on another, with the server's shared prediction cache
// amortizing queries across every client. It resolves from specs like
//
//	remote@http://host:8372?model=uica&arch=hsw
//
// Name reports the backend's canonical model name, so a remote
// explanation is byte-identical to a local Explain at the same seed.
type RemoteCostModel = remote.Model

// RemoteModelOptions configures DialRemoteModel.
type RemoteModelOptions = remote.Options

// DialRemoteModel connects to a comet-serve base URL, performs the
// discovery handshake (which resolves and warms the requested model on
// the server), and returns a ready-to-query remote cost model.
func DialRemoteModel(baseURL string, opts RemoteModelOptions) (*RemoteCostModel, error) {
	return remote.Dial(baseURL, opts)
}

func init() {
	RegisterModel(ModelDef{
		Name:          "remote",
		Description:   "HTTP client for another comet-serve's /v1/predict cost-model backend",
		RequireTarget: true,
		// Resolving dials an arbitrary URL; servers only resolve this from
		// client input when the operator opts in (-allow-restricted-specs).
		Restricted: true,
		Defaults: map[string]string{
			"model":   "",  // spec resolved by the backend ("" = its default model)
			"arch":    "",  // backend arch when the spec has no target ("" = backend default)
			"retries": "2", // transport retries per batch before aborting
		},
		Factory: func(spec ModelSpec) (CostModel, float64, error) {
			retries, err := spec.ParamInt("retries", 2)
			if err != nil {
				return nil, 0, err
			}
			if retries == 0 {
				retries = -1 // Options.Retries uses 0 for "default"; negative means none
			}
			m, err := remote.Dial(spec.Target, remote.Options{
				Model:   spec.Param("model", ""),
				Arch:    spec.Param("arch", ""),
				Retries: retries,
			})
			if err != nil {
				return nil, 0, err
			}
			if m.Epsilon() <= 0 {
				return nil, 0, fmt.Errorf("backend reported ε=%s", strconv.FormatFloat(m.Epsilon(), 'g', -1, 64))
			}
			return m, m.Epsilon(), nil
		},
	})
}
