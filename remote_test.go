package comet_test

// Remote-model equivalence: an explanation computed through a
// RemoteCostModel dialed into a live comet-serve is byte-identical to a
// local Explain of the same model at the same seed. This is the
// end-to-end guarantee behind the remote@<url> spec — moving the cost
// model to another process changes where queries are answered, never
// what the explanation says.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"github.com/comet-explain/comet"
	"github.com/comet-explain/comet/internal/service"
	"github.com/comet-explain/comet/internal/wire"
)

// startBackend runs an in-process comet-serve over real HTTP.
func startBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return ts
}

func explainJSON(t *testing.T, model comet.CostModel, epsilon float64) []byte {
	t.Helper()
	cfg := comet.DefaultConfig()
	cfg.Epsilon = epsilon
	cfg.CoverageSamples = 200
	block := comet.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	expl, err := comet.NewExplainer(model, cfg).ExplainContext(context.Background(), block,
		comet.WithSeed(7), comet.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(wire.FromExplanation(expl))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRemoteEquivalence(t *testing.T) {
	ts := startBackend(t)

	// Resolve the remote model through the registry, exactly as a spec
	// string user would.
	remoteRM, err := comet.ResolveModelString("remote@" + ts.URL + "?model=uica&arch=hsw")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := remoteRM.Model.Name(), "uica"; got != want {
		t.Fatalf("remote model name %q, want the backend's %q", got, want)
	}
	localRM, err := comet.ResolveModelString("uica@hsw")
	if err != nil {
		t.Fatal(err)
	}
	if remoteRM.Epsilon != localRM.Epsilon {
		t.Errorf("remote ε %v != local ε %v", remoteRM.Epsilon, localRM.Epsilon)
	}

	remoteJSON := explainJSON(t, remoteRM.Model, remoteRM.Epsilon)
	localJSON := explainJSON(t, localRM.Model, localRM.Epsilon)
	if string(remoteJSON) != string(localJSON) {
		t.Errorf("remote explanation differs from local at the same seed:\nremote %s\nlocal  %s", remoteJSON, localJSON)
	}
}

// TestRemoteEpsilonPropagates: a remote analytical backend reports the
// quantized ε = 0.25, so explanations against it use the right ball.
func TestRemoteEpsilonPropagates(t *testing.T) {
	ts := startBackend(t)
	rm, err := comet.ResolveModelString("remote@" + ts.URL + "?model=c")
	if err != nil {
		t.Fatal(err)
	}
	if rm.Epsilon != comet.AnalyticalEpsilon {
		t.Errorf("remote analytical ε = %v, want %v", rm.Epsilon, comet.AnalyticalEpsilon)
	}
	if rm.Model.Name() != "C" && rm.Model.Name() != "c" {
		t.Errorf("unexpected backend name %q", rm.Model.Name())
	}
}

// TestRemoteFailureSurfacesAsError: when the backend dies mid-search the
// explainer returns an error instead of panicking or fabricating values.
func TestRemoteFailureSurfacesAsError(t *testing.T) {
	ts := startBackend(t)
	rm, err := comet.DialRemoteModel(ts.URL, comet.RemoteModelOptions{Model: "uica", Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts.Close() // kill the backend before the first real query

	cfg := comet.DefaultConfig()
	cfg.CoverageSamples = 50
	block := comet.MustParseBlock("add rcx, rax\nmov rdx, rcx")
	_, err = comet.NewExplainer(rm, cfg).ExplainContext(context.Background(), block, comet.WithSeed(1))
	if err == nil {
		t.Fatal("explaining against a dead backend succeeded")
	}

	// Dialing a dead backend fails fast, and so does registry resolution.
	if _, err := comet.ResolveModelString("remote@" + ts.URL + "?retries=0"); err == nil {
		t.Error("resolving a dead backend succeeded")
	}
}
