package comet_test

// Remote-model equivalence: an explanation computed through a
// RemoteCostModel dialed into a live comet-serve is byte-identical to a
// local Explain of the same model at the same seed. This is the
// end-to-end guarantee behind the remote@<url> spec — moving the cost
// model to another process changes where queries are answered, never
// what the explanation says.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/comet-explain/comet"
	"github.com/comet-explain/comet/internal/service"
	"github.com/comet-explain/comet/internal/wire"
)

// startBackend runs an in-process comet-serve over real HTTP.
func startBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Shutdown(context.Background())
	})
	return ts
}

func explainJSON(t *testing.T, model comet.CostModel, epsilon float64) []byte {
	t.Helper()
	cfg := comet.DefaultConfig()
	cfg.Epsilon = epsilon
	cfg.CoverageSamples = 200
	block := comet.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	expl, err := comet.NewExplainer(model, cfg).ExplainContext(context.Background(), block,
		comet.WithSeed(7), comet.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(wire.FromExplanation(expl))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestRemoteEquivalence(t *testing.T) {
	ts := startBackend(t)

	// Resolve the remote model through the registry, exactly as a spec
	// string user would.
	remoteRM, err := comet.ResolveModelString("remote@" + ts.URL + "?model=uica&arch=hsw")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := remoteRM.Model.Name(), "uica"; got != want {
		t.Fatalf("remote model name %q, want the backend's %q", got, want)
	}
	localRM, err := comet.ResolveModelString("uica@hsw")
	if err != nil {
		t.Fatal(err)
	}
	if remoteRM.Epsilon != localRM.Epsilon {
		t.Errorf("remote ε %v != local ε %v", remoteRM.Epsilon, localRM.Epsilon)
	}

	remoteJSON := explainJSON(t, remoteRM.Model, remoteRM.Epsilon)
	localJSON := explainJSON(t, localRM.Model, localRM.Epsilon)
	if string(remoteJSON) != string(localJSON) {
		t.Errorf("remote explanation differs from local at the same seed:\nremote %s\nlocal  %s", remoteJSON, localJSON)
	}
}

// TestRemoteEpsilonPropagates: a remote analytical backend reports the
// quantized ε = 0.25, so explanations against it use the right ball.
func TestRemoteEpsilonPropagates(t *testing.T) {
	ts := startBackend(t)
	rm, err := comet.ResolveModelString("remote@" + ts.URL + "?model=c")
	if err != nil {
		t.Fatal(err)
	}
	if rm.Epsilon != comet.AnalyticalEpsilon {
		t.Errorf("remote analytical ε = %v, want %v", rm.Epsilon, comet.AnalyticalEpsilon)
	}
	if rm.Model.Name() != "C" && rm.Model.Name() != "c" {
		t.Errorf("unexpected backend name %q", rm.Model.Name())
	}
}

// TestRemoteFailureSurfacesAsError: when the backend dies mid-search the
// explainer returns an error instead of panicking or fabricating values.
func TestRemoteFailureSurfacesAsError(t *testing.T) {
	ts := startBackend(t)
	rm, err := comet.DialRemoteModel(ts.URL, comet.RemoteModelOptions{Model: "uica", Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts.Close() // kill the backend before the first real query

	cfg := comet.DefaultConfig()
	cfg.CoverageSamples = 50
	block := comet.MustParseBlock("add rcx, rax\nmov rdx, rcx")
	_, err = comet.NewExplainer(rm, cfg).ExplainContext(context.Background(), block, comet.WithSeed(1))
	if err == nil {
		t.Fatal("explaining against a dead backend succeeded")
	}

	// Dialing a dead backend fails fast, and so does registry resolution.
	if _, err := comet.ResolveModelString("remote@" + ts.URL + "?retries=0"); err == nil {
		t.Error("resolving a dead backend succeeded")
	}
}

// TestRemoteRetriesExhausted: persistent 503 backpressure burns exactly
// the retry budget (initial attempt + Retries) and surfaces an error
// naming the attempt count.
func TestRemoteRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	_, err := comet.DialRemoteModel(ts.URL, comet.RemoteModelOptions{Retries: 2})
	if err == nil {
		t.Fatal("dialing a permanently overloaded backend succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d attempts, want 3 (1 + 2 retries)", got)
	}
	if !strings.Contains(err.Error(), "3 attempt(s)") || !strings.Contains(err.Error(), "overloaded") {
		t.Errorf("error %q does not report the attempts and cause", err)
	}
}

// TestRemote502IsFinal: a 502 from the backend (its own chained model
// failed) is not backpressure — it must surface immediately, without
// burning retries, with the gateway error's message intact.
func TestRemote502IsFinal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
		_, _ = w.Write([]byte(`{"error":"backend predict failed: chained model is gone"}`))
	}))
	defer ts.Close()

	_, err := comet.DialRemoteModel(ts.URL, comet.RemoteModelOptions{Retries: 3})
	if err == nil {
		t.Fatal("dialing through a broken gateway succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d attempts, want 1 (502 is final)", got)
	}
	if !strings.Contains(err.Error(), "server status 502") || !strings.Contains(err.Error(), "chained model is gone") {
		t.Errorf("error %q does not carry the 502 mapping", err)
	}
}

// TestRemoteCancelDuringBackoff: a canceled lifetime context interrupts
// the retry loop's backoff sleep — the caller never waits out the
// budget against a backend that keeps saying 503.
func TestRemoteCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"overloaded"}`))
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// 20 retries of jittered linear backoff would sleep for minutes;
	// cancellation must cut that to the 30ms fuse.
	_, err := comet.DialRemoteModel(ts.URL, comet.RemoteModelOptions{Retries: 20, Context: ctx})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial succeeded against a canceled context")
	}
	if elapsed > 5*time.Second {
		t.Errorf("canceled dial took %v, want prompt return", elapsed)
	}
}

// TestRemoteMidBatchCancel: canceling the model's context mid-predict
// aborts the in-flight explanation promptly with an error (via the
// explainer's QueryError recovery boundary), not a hang or a panic.
func TestRemoteMidBatchCancel(t *testing.T) {
	backend := startBackend(t)
	handshook := make(chan struct{}, 1)
	stop := make(chan struct{})
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case handshook <- struct{}{}:
			// First request (the discovery handshake): pass through
			// faithfully — headers included, so the client's content
			// negotiation (binary frames vs JSON) works through the proxy.
			fwd, err := http.NewRequest(r.Method, backend.URL+r.URL.Path, r.Body)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			fwd.Header = r.Header.Clone()
			resp, err := http.DefaultClient.Do(fwd)
			if err != nil {
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.WriteHeader(resp.StatusCode)
			_, _ = io.Copy(w, resp.Body)
		default:
			// Every later batch hangs until the client gives up (or the
			// test tears down; without the stop channel proxy.Close can
			// wait on a parked handler forever).
			select {
			case <-r.Context().Done():
			case <-stop:
			}
		}
	}))
	defer proxy.Close()
	defer close(stop)

	ctx, cancel := context.WithCancel(context.Background())
	rm, err := comet.DialRemoteModel(proxy.URL, comet.RemoteModelOptions{Model: "uica", Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	cfg := comet.DefaultConfig()
	cfg.CoverageSamples = 50
	block := comet.MustParseBlock("add rcx, rax\nmov rdx, rcx")
	start := time.Now()
	_, err = comet.NewExplainer(rm, cfg).ExplainContext(context.Background(), block, comet.WithSeed(1))
	if err == nil {
		t.Fatal("explanation succeeded over a canceled remote model")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("mid-batch cancel took %v to surface", elapsed)
	}
}
