package core

import (
	"testing"

	"github.com/comet-explain/comet/internal/analytical"
	"github.com/comet-explain/comet/internal/bhive"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/x86"
)

func corpusBlocks(t testing.TB, n int) []*x86.BasicBlock {
	t.Helper()
	gen := bhive.Generate(bhive.Config{N: n, Seed: 77, SkipLabels: true})
	blocks := make([]*x86.BasicBlock, len(gen))
	for i, g := range gen {
		blocks[i] = g.Block
	}
	return blocks
}

func corpusConfig() Config {
	cfg := DefaultConfig()
	cfg.Epsilon = analytical.Epsilon
	cfg.CoverageSamples = 200
	cfg.Parallelism = 2 // pinned so per-block sampling is reproducible
	cfg.Anchor.BatchSize = 32
	cfg.Anchor.MaxSamplesPerCand = 800
	return cfg
}

// TestExplainAllMatchesSeededExplain is the batching+caching soundness
// contract: ExplainAll must produce, for every corpus block, exactly the
// explanation a standalone Explain produces with that block's derived seed.
func TestExplainAllMatchesSeededExplain(t *testing.T) {
	model := analytical.New(x86.Haswell)
	cfg := corpusConfig()
	blocks := corpusBlocks(t, 8)

	expls, err := NewExplainer(model, cfg).ExplainCorpus(blocks, CorpusOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range blocks {
		solo := cfg
		solo.Seed = BlockSeed(cfg.Seed, i)
		ref, err := NewExplainer(model, solo).Explain(b)
		if err != nil {
			t.Fatal(err)
		}
		if expls[i] == nil {
			t.Fatalf("block %d: missing explanation", i)
		}
		if expls[i].Features.Key() != ref.Features.Key() {
			t.Errorf("block %d: corpus %v != sequential %v", i, expls[i].Features, ref.Features)
		}
		if expls[i].Prediction != ref.Prediction {
			t.Errorf("block %d: prediction %v != %v", i, expls[i].Prediction, ref.Prediction)
		}
		if expls[i].Certified != ref.Certified || expls[i].Precision != ref.Precision {
			t.Errorf("block %d: certification diverged", i)
		}
	}
}

// TestExplainAllReproducible runs the same corpus twice (different worker
// counts) and demands identical explanations.
func TestExplainAllReproducible(t *testing.T) {
	model := uica.New(x86.Haswell)
	cfg := corpusConfig()
	cfg.Epsilon = 0.5
	cfg.CoverageSamples = 100
	cfg.Anchor.MaxSamplesPerCand = 400
	blocks := corpusBlocks(t, 4)

	a, err := NewExplainer(model, cfg).ExplainCorpus(blocks, CorpusOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewExplainer(model, cfg).ExplainCorpus(blocks, CorpusOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if a[i].Features.Key() != b[i].Features.Key() {
			t.Errorf("block %d: 1 worker %v != 3 workers %v", i, a[i].Features, b[i].Features)
		}
	}
}

func TestExplainAllStreamsProgressAndAccountsCache(t *testing.T) {
	model := analytical.New(x86.Haswell)
	cfg := corpusConfig()
	blocks := corpusBlocks(t, 5)
	e := NewExplainer(model, cfg)

	var calls []int
	seen := make(map[int]bool)
	for res := range e.ExplainAll(blocks, CorpusOptions{
		Workers:  2,
		Progress: func(done, total int) { calls = append(calls, done) },
	}) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if seen[res.Index] {
			t.Errorf("duplicate result for block %d", res.Index)
		}
		seen[res.Index] = true
		if res.Explanation.Queries == 0 {
			t.Errorf("block %d: no queries recorded", res.Index)
		}
		if res.Explanation.CacheHits+res.Explanation.ModelCalls > res.Explanation.Queries {
			t.Errorf("block %d: accounting inconsistent: %+v", res.Index, res.Explanation)
		}
		if hr := res.Explanation.CacheHitRate(); hr < 0 || hr > 1 {
			t.Errorf("block %d: hit rate %v", res.Index, hr)
		}
	}
	if len(seen) != len(blocks) {
		t.Errorf("got %d results for %d blocks", len(seen), len(blocks))
	}
	for i, done := range calls {
		if done != i+1 {
			t.Errorf("progress calls out of order: %v", calls)
			break
		}
	}
	if st := e.CacheStats(); st.Hits == 0 {
		t.Error("shared cache saw no hits across the corpus run")
	}
}

func TestExplainAllSurfacesPerBlockErrors(t *testing.T) {
	model := analytical.New(x86.Haswell)
	cfg := corpusConfig()
	blocks := corpusBlocks(t, 3)
	blocks[1] = &x86.BasicBlock{} // invalid: empty

	expls, err := NewExplainer(model, cfg).ExplainCorpus(blocks, CorpusOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected an error for the invalid block")
	}
	if expls[0] == nil || expls[2] == nil {
		t.Error("valid blocks must still be explained")
	}
	if expls[1] != nil {
		t.Error("invalid block should have no explanation")
	}
}

func TestBlockSeedDistinctAndDeterministic(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 1000; i++ {
		s := BlockSeed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("BlockSeed collision between blocks %d and %d", prev, i)
		}
		seen[s] = i
		if s != BlockSeed(1, i) {
			t.Fatal("BlockSeed not deterministic")
		}
	}
	if BlockSeed(1, 0) == BlockSeed(2, 0) {
		t.Error("different base seeds should give different block seeds")
	}
}

// TestCachingDoesNotChangeExplanations disables the cache and compares.
func TestCachingDoesNotChangeExplanations(t *testing.T) {
	model := uica.New(x86.Haswell)
	cfg := corpusConfig()
	cfg.Epsilon = 0.5
	cfg.CoverageSamples = 100
	cfg.Anchor.MaxSamplesPerCand = 400
	blocks := corpusBlocks(t, 3)

	cached, err := NewExplainer(model, cfg).ExplainCorpus(blocks, CorpusOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	nocache := cfg
	nocache.CacheSize = -1
	plain, err := NewExplainer(model, nocache).ExplainCorpus(blocks, CorpusOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if cached[i].Features.Key() != plain[i].Features.Key() {
			t.Errorf("block %d: cache changed the explanation", i)
		}
		if plain[i].CacheHits != 0 {
			// Within-batch dedup can still save queries without a cache,
			// but the saved queries must never exceed total queries.
			if plain[i].CacheHits > plain[i].Queries {
				t.Errorf("block %d: dedup accounting broken", i)
			}
		}
	}
}
