package core

import (
	"context"
	"math/rand"
	"testing"

	"github.com/comet-explain/comet/internal/analytical"
	"github.com/comet-explain/comet/internal/bhive"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/features"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/x86"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.CoverageSamples = 300
	cfg.Anchor.BatchSize = 32
	cfg.Anchor.MaxSamplesPerCand = 1500
	return cfg
}

func TestExplainAnalyticalDivBlock(t *testing.T) {
	// C is dominated by the mov→div RAW; COMET must find a subset of GT.
	model := analytical.New(x86.Haswell)
	cfg := testConfig()
	cfg.Epsilon = analytical.Epsilon
	e := NewExplainer(model, cfg)
	b := x86.MustParseBlock("mov rax, rbx\ndiv rcx\nadd rsi, rdi")
	expl, err := e.Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := model.GroundTruth(b)
	if err != nil {
		t.Fatal(err)
	}
	if !Accurate(expl.Features, gt) {
		t.Errorf("explanation %v not within ground truth %v", expl.Features, gt)
	}
	if !expl.Certified {
		t.Error("expected a certified anchor on this easy block")
	}
}

func TestExplainEtaDominatedBlock(t *testing.T) {
	// Eight cheap independent instructions: C(β) = η/4; the only faithful
	// singleton is η.
	model := analytical.New(x86.Haswell)
	cfg := testConfig()
	cfg.Epsilon = analytical.Epsilon
	e := NewExplainer(model, cfg)
	b := x86.MustParseBlock(`add rax, 1
		add rbx, 1
		add rcx, 1
		add rdx, 1
		add rsi, 1
		add rdi, 1
		add r8, 1
		add r9, 1`)
	expl, err := e.Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	if !expl.Features.HasKind(features.KindCount) {
		t.Errorf("expected η in explanation, got %v", expl.Features)
	}
}

func TestExplainReportedPrecisionIsHonest(t *testing.T) {
	// Re-estimate the precision of the returned anchor on fresh samples;
	// it should not collapse below the threshold.
	model := analytical.New(x86.Haswell)
	cfg := testConfig()
	cfg.Epsilon = analytical.Epsilon
	e := NewExplainer(model, cfg)
	b := x86.MustParseBlock("mov rax, rbx\ndiv rcx\nadd rsi, rdi")
	expl, err := e.Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	prec, err := EstimatePrecision(model, b, expl.Features, cfg, 500, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if prec < cfg.PrecisionThreshold-0.12 {
		t.Errorf("held-out precision %.2f far below threshold %.2f", prec, cfg.PrecisionThreshold)
	}
}

func TestExplainDeterministicGivenSeed(t *testing.T) {
	model := analytical.New(x86.Haswell)
	cfg := testConfig()
	cfg.Epsilon = analytical.Epsilon
	cfg.Parallelism = 2
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	e1, err1 := NewExplainer(model, cfg).Explain(b)
	e2, err2 := NewExplainer(model, cfg).Explain(b)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if e1.Features.Key() != e2.Features.Key() {
		t.Errorf("same seed gave different explanations: %v vs %v", e1.Features, e2.Features)
	}
}

func TestExplainUICASmoke(t *testing.T) {
	// A full explanation run against the simulation-based model.
	model := uica.New(x86.Haswell)
	cfg := testConfig()
	e := NewExplainer(model, cfg)
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	expl, err := e.Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(expl.Features) == 0 {
		t.Error("empty explanation")
	}
	if expl.Queries == 0 {
		t.Error("no model queries recorded")
	}
	if expl.Coverage < 0 || expl.Coverage > 1 || expl.Precision < 0 || expl.Precision > 1 {
		t.Errorf("precision/coverage out of range: %+v", expl)
	}
}

func TestCoverageMonotoneInExplanationSize(t *testing.T) {
	// Cov(F1 ∪ F2) ≤ Cov(F1): follows from Π's monotonicity (Appendix A).
	model := analytical.New(x86.Haswell)
	cfg := testConfig()
	e := NewExplainer(model, cfg)
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	p, err := perturbFor(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	space, err := newBlockSpace(context.Background(), e.batch, e.cache, p, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < space.NumFeatures(); i++ {
		ci := space.Coverage([]int{i})
		for j := i + 1; j < space.NumFeatures(); j++ {
			cij := space.Coverage([]int{i, j})
			if cij > ci+1e-9 {
				t.Errorf("coverage increased when adding a feature: %v vs %v", cij, ci)
			}
		}
	}
}

func TestAccurateCriterion(t *testing.T) {
	b := x86.MustParseBlock("mov rax, rbx\ndiv rcx")
	set, err := features.ExtractFromBlock(b, deps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gt := features.NewSet(set[0], set[1])
	if !Accurate(features.NewSet(set[0]), gt) {
		t.Error("subset of GT must be accurate")
	}
	if !Accurate(gt, gt) {
		t.Error("GT itself must be accurate")
	}
	if Accurate(features.NewSet(set[2]), gt) {
		t.Error("disjoint explanation must be inaccurate")
	}
	if Accurate(features.NewSet(set[0], set[2]), gt) {
		t.Error("explanation exceeding GT must be inaccurate")
	}
	if Accurate(nil, gt) {
		t.Error("empty explanation must be inaccurate")
	}
}

func TestKindDistributionAndMostFrequent(t *testing.T) {
	mk := func(kind features.Kind) features.Feature {
		switch kind {
		case features.KindInstr:
			return features.Feature{Kind: kind, Index: 0, Opcode: "add"}
		case features.KindDep:
			return features.Feature{Kind: kind, Src: 0, Dst: 1}
		default:
			return features.Feature{Kind: kind, Count: 3}
		}
	}
	gts := []features.Set{
		features.NewSet(mk(features.KindInstr)),
		features.NewSet(mk(features.KindInstr)),
		features.NewSet(mk(features.KindDep)),
		features.NewSet(mk(features.KindCount)),
	}
	dist := KindDistribution(gts)
	if dist[features.KindInstr] != 0.5 {
		t.Errorf("inst probability = %v, want 0.5", dist[features.KindInstr])
	}
	if MostFrequentKind(gts) != features.KindInstr {
		t.Errorf("most frequent kind = %v", MostFrequentKind(gts))
	}
}

func TestBaselinesProduceSingletons(t *testing.T) {
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	set, err := features.ExtractFromBlock(b, deps.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	probs := map[features.Kind]float64{features.KindInstr: 0.5, features.KindDep: 0.3, features.KindCount: 0.2}
	for i := 0; i < 50; i++ {
		r := RandomExplanation(rng, set, probs)
		if len(r) != 1 {
			t.Fatalf("random baseline returned %d features", len(r))
		}
	}
	f := FixedExplanation(set, features.KindDep)
	if len(f) != 1 || f[0].Kind != features.KindDep {
		t.Errorf("fixed baseline = %v", f)
	}
	f = FixedExplanation(set, features.KindCount)
	if len(f) != 1 || f[0].Kind != features.KindCount {
		t.Errorf("fixed baseline η = %v", f)
	}
}

func TestCOMETBeatsBaselinesOnAnalyticalModel(t *testing.T) {
	// A miniature Table 2: on a handful of blocks COMET should be more
	// accurate than the random baseline.
	if testing.Short() {
		t.Skip("short mode")
	}
	model := analytical.New(x86.Haswell)
	cfg := testConfig()
	cfg.Epsilon = analytical.Epsilon
	cfg.CoverageSamples = 200
	e := NewExplainer(model, cfg)

	blocks := bhive.Generate(bhive.Config{N: 12, Seed: 21, SkipLabels: true})
	var gts []features.Set
	for _, blk := range blocks {
		gt, err := model.GroundTruth(blk.Block)
		if err != nil {
			t.Fatal(err)
		}
		gts = append(gts, gt)
	}
	probs := KindDistribution(gts)
	rng := rand.New(rand.NewSource(5))

	cometAcc, randomAcc := 0, 0
	for i, blk := range blocks {
		expl, err := e.Explain(blk.Block)
		if err != nil {
			t.Fatal(err)
		}
		set, _ := features.ExtractFromBlock(blk.Block, deps.Options{})
		if Accurate(expl.Features, gts[i]) {
			cometAcc++
		}
		if Accurate(RandomExplanation(rng, set, probs), gts[i]) {
			randomAcc++
		}
	}
	if cometAcc <= randomAcc {
		t.Errorf("COMET accuracy %d/12 should beat random %d/12", cometAcc, randomAcc)
	}
	if cometAcc < 8 {
		t.Errorf("COMET accuracy %d/12 is too low", cometAcc)
	}
}

func TestExplainerRejectsInvalidBlock(t *testing.T) {
	e := NewExplainer(analytical.New(x86.Haswell), testConfig())
	if _, err := e.Explain(&x86.BasicBlock{}); err == nil {
		t.Error("expected error for empty block")
	}
}

var _ costmodel.Model = (*analytical.Model)(nil)
