package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/x86"
)

// TestExplainContextMatchesExplain: the context-first API with options is
// bit-identical to the config-at-construction API.
func TestExplainContextMatchesExplain(t *testing.T) {
	model := uica.New(x86.Haswell)
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")

	cfg := testConfig()
	cfg.Seed = 9
	cfg.Parallelism = 1
	cfg.CoverageSamples = 200
	want, err := NewExplainer(model, cfg).Explain(b)
	if err != nil {
		t.Fatal(err)
	}

	base := testConfig() // seed 1, parallelism unset
	got, err := NewExplainer(model, base).ExplainContext(context.Background(), b,
		WithSeed(9), WithParallelism(1), WithCoverageSamples(200))
	if err != nil {
		t.Fatal(err)
	}
	if got.Prediction != want.Prediction || got.Precision != want.Precision ||
		got.Coverage != want.Coverage || got.Certified != want.Certified ||
		got.Features.Key() != want.Features.Key() ||
		got.Queries != want.Queries || got.CacheHits != want.CacheHits || got.ModelCalls != want.ModelCalls {
		t.Errorf("ExplainContext with options differs from Explain:\n got %+v\nwant %+v", got, want)
	}
}

// TestExplainContextCancellation: a canceled context aborts the search
// with ctx.Err(), both up front and mid-flight.
func TestExplainContextCancellation(t *testing.T) {
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")

	// Already-canceled context: immediate return, no model queries.
	calls := 0
	counting := costmodel.Func{ModelName: "count", ModelArch: x86.Haswell,
		Fn: func(*x86.BasicBlock) float64 { calls++; return 1 }}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewExplainer(counting, testConfig()).ExplainContext(ctx, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("canceled request still issued %d queries", calls)
	}

	// Cancellation mid-search: a model that cancels the context on its
	// very first query; the search must stop with ctx.Err() instead of
	// finishing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	n := 0
	cancelling := costmodel.Func{ModelName: "cancel", ModelArch: x86.Haswell,
		Fn: func(blk *x86.BasicBlock) float64 {
			if n++; n == 1 {
				cancel2()
			}
			return float64(blk.Len())
		}}
	cfg := testConfig()
	cfg.Parallelism = 1
	_, err = NewExplainer(cancelling, cfg).ExplainContext(ctx2, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-search cancellation: err = %v, want context.Canceled", err)
	}
	if n > 2 {
		t.Errorf("search kept querying after cancellation: %d model calls", n)
	}

	// A deadline works the same way.
	ctx3, cancel3 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel3()
	<-ctx3.Done()
	_, err = NewExplainer(counting, testConfig()).ExplainContext(ctx3, b)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestEffectiveConfig: options overlay and re-normalize the base config.
func TestEffectiveConfig(t *testing.T) {
	e := NewExplainer(uica.New(x86.Haswell), Config{})
	cfg := e.EffectiveConfig(WithEpsilon(0.25), WithSeed(11), WithParallelism(1), WithPrecisionThreshold(0.9), WithBatchSize(16))
	if cfg.Epsilon != 0.25 || cfg.Seed != 11 || cfg.Parallelism != 1 || cfg.PrecisionThreshold != 0.9 || cfg.BatchSize != 16 {
		t.Errorf("EffectiveConfig overlay wrong: %+v", cfg)
	}
	if cfg.Anchor.PrecisionThreshold != 0.9 {
		t.Errorf("EffectiveConfig did not re-normalize Anchor.PrecisionThreshold: %v", cfg.Anchor.PrecisionThreshold)
	}
	// No options → the explainer's own (defaulted) config.
	if got := e.EffectiveConfig(); got != e.Config() {
		t.Errorf("EffectiveConfig() = %+v, want %+v", got, e.Config())
	}
	// ApplyOptions is the explainer-free form.
	if got := ApplyOptions(Config{}, WithSeed(3)); got.Seed != 3 || got.Epsilon != 0.5 {
		t.Errorf("ApplyOptions: %+v", got)
	}
}

// TestQueryErrorRecovery: a model aborting via costmodel.AbortQuery
// surfaces as an ordinary error from the explainer, not a panic.
func TestQueryErrorRecovery(t *testing.T) {
	boom := errors.New("backend unreachable")
	n := 0
	failing := costmodel.Func{ModelName: "flaky", ModelArch: x86.Haswell,
		Fn: func(blk *x86.BasicBlock) float64 {
			n++
			if n > 10 {
				costmodel.AbortQuery(boom)
			}
			return float64(blk.Len())
		}}
	cfg := testConfig()
	cfg.Parallelism = 1
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	_, err := NewExplainer(failing, cfg).Explain(b)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the aborted query's cause", err)
	}
}
