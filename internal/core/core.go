// Package core implements COMET itself (Section 5 of the paper): given
// query access to a cost model M and a target basic block β, it searches
// for the feature set F ⊆ ˆP with maximum coverage subject to
// Prec(F) ≥ 1−δ (eq. 7), where
//
//	Prec(F) = Pr_{α∼D_F}( |M(α) − M(β)| ≤ ε )      (eq. 4)
//	Cov(F)  = Pr_{α∼D}( F ⊆ ˆP_α )                 (eq. 6)
//
// Perturbations are drawn with the Γ algorithm (package perturb), precision
// is certified with KL-LUCB bounds, and the combinatorial search is the
// Anchors beam search (package anchors). Precision sampling is
// parallelized across goroutines with deterministic seeding.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/comet-explain/comet/internal/anchors"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/features"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/perturb"
	"github.com/comet-explain/comet/internal/x86"
)

// Config collects every COMET hyperparameter. DefaultConfig matches the
// paper's experimental setup.
type Config struct {
	// Epsilon is the ε-ball radius around M(β) (paper: 0.5 cycles for
	// practical models, 0.25 for the analytical model C).
	Epsilon float64
	// PrecisionThreshold is 1−δ (paper: 0.7).
	PrecisionThreshold float64
	// Perturb configures the Γ perturbation algorithm.
	Perturb perturb.Config
	// Anchor configures the beam search and KL-LUCB budgets.
	Anchor anchors.Options
	// CoverageSamples is the size of the shared Γ(∅) pool used for
	// coverage estimation (paper: 10k; scale down for speed).
	CoverageSamples int
	// Parallelism bounds the precision-sampling workers (0 = GOMAXPROCS).
	Parallelism int
	// BatchSize is how many perturbed blocks are sent to the cost model
	// per PredictBatch call (default 64). Models with native batching
	// (the neural model's padded lockstep forward) amortize per-call
	// overhead across the whole batch.
	BatchSize int
	// CacheSize bounds the shared prediction cache in entries (0 =
	// default of about a million; negative disables caching). Perturbation
	// draws collide constantly, and a hit skips the model query entirely;
	// cached values are exact, so caching never changes an explanation.
	CacheSize int
	// Seed makes explanations reproducible.
	Seed int64
}

// DefaultConfig returns the paper's settings at a benchmark-friendly
// coverage-pool size.
func DefaultConfig() Config {
	return Config{
		Epsilon:            0.5,
		PrecisionThreshold: 0.7,
		Perturb:            perturb.DefaultConfig(),
		CoverageSamples:    1000,
		BatchSize:          64,
		Seed:               1,
	}
}

// Explanation is COMET's output for one (model, block) pair.
type Explanation struct {
	Block      *x86.BasicBlock
	Model      string
	Prediction float64      // M(β)
	Features   features.Set // the explanation F
	Precision  float64      // empirical Prec(F)
	Coverage   float64      // empirical Cov(F)
	Certified  bool         // KL lower bound cleared 1−δ
	Queries    int          // cost-model queries issued by the search
	CacheHits  int          // queries served without a model evaluation
	ModelCalls int          // blocks the model actually evaluated
	// Profile breaks the computation down by stage. Set on every freshly
	// computed explanation, nil on artifact-store hits (the original
	// computation's timings were not persisted — wall times never
	// reproduce, and stored explanations are compared byte-for-byte).
	Profile *Profile
}

// CacheHitRate reports the fraction of queries the prediction cache (plus
// within-batch deduplication) absorbed.
func (e *Explanation) CacheHitRate() float64 {
	if e.Queries == 0 {
		return 0
	}
	return float64(e.CacheHits) / float64(e.Queries)
}

// String renders the explanation in the paper's set notation.
func (e *Explanation) String() string {
	return fmt.Sprintf("%s(β)=%.2f ⇒ %s (prec %.2f, cov %.2f)",
		e.Model, e.Prediction, e.Features, e.Precision, e.Coverage)
}

// Explainer generates explanations for one cost model. All queries flow
// through a batched view of the model (costmodel.BatchModel) and a shared
// prediction cache, so repeated perturbation draws — within one block's
// search and across a corpus run — are answered without model evaluations.
type Explainer struct {
	model costmodel.Model
	batch costmodel.BatchModel
	cache *costmodel.Cache
	cfg   Config
	// autoParallel records that cfg.Parallelism was defaulted rather than
	// set by the caller; ExplainAll then drops per-block sampling to one
	// goroutine and lets block-level workers saturate the machine.
	autoParallel bool
	// artifacts, when set, is consulted before every computation and
	// receives every freshly computed explanation (SetArtifactStore).
	artifacts ArtifactStore
}

// ArtifactStore serves previously computed explanation artifacts.
// Explanations are pure functions of (model, block, effective config) —
// sampling is driven entirely by cfg.Seed and cfg.Parallelism — so a
// store keyed on those inputs can answer a request with the exact
// explanation computation would produce. internal/persist provides the
// disk-backed implementation; the store owns model identity (the
// explainer passes only config and block).
type ArtifactStore interface {
	// Lookup returns the stored explanation for (cfg, block), if any.
	// cfg is the fully normalized effective configuration.
	Lookup(cfg Config, block *x86.BasicBlock) (*Explanation, bool)
	// Store deposits a freshly computed explanation. Implementations
	// must not fail the explanation on storage errors.
	Store(cfg Config, expl *Explanation)
}

// withDefaults normalizes a config in place of its zero values and
// reports whether Parallelism was defaulted rather than set by the caller.
// It is idempotent, so per-request option overlays re-normalize safely.
func (cfg Config) withDefaults() (Config, bool) {
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.5
	}
	if cfg.PrecisionThreshold == 0 {
		cfg.PrecisionThreshold = 0.7
	}
	if cfg.Perturb.PInstRetain == 0 {
		cfg.Perturb = perturb.DefaultConfig()
	}
	if cfg.CoverageSamples == 0 {
		cfg.CoverageSamples = 1000
	}
	autoParallel := cfg.Parallelism <= 0
	if autoParallel {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	cfg.Anchor.PrecisionThreshold = cfg.PrecisionThreshold
	return cfg, autoParallel
}

// NewExplainer builds an explainer. The model must be safe for concurrent
// Predict calls; if it implements costmodel.BatchModel its native batch
// path is used, otherwise queries fan out over cfg.Parallelism workers.
func NewExplainer(model costmodel.Model, cfg Config) *Explainer {
	cfg, autoParallel := cfg.withDefaults()
	e := &Explainer{model: model, cfg: cfg, autoParallel: autoParallel}
	if bm, ok := model.(costmodel.BatchModel); ok {
		e.batch = bm
	} else {
		e.batch = costmodel.NewBatcher(model, cfg.Parallelism)
	}
	if cfg.CacheSize >= 0 {
		e.cache = costmodel.NewCache(cfg.CacheSize)
	}
	return e
}

// NewExplainerWithCache builds an explainer that shares the given
// prediction cache instead of allocating a private one. A long-lived
// process serving many explanation requests against the same model (the
// cometd service, a notebook session) passes one cache per model so
// perturbation collisions are amortized across every request, not just
// within one. A nil cache disables caching. Cached values are exact prior
// predictions, so a shared cache never changes an explanation.
func NewExplainerWithCache(model costmodel.Model, cfg Config, cache *costmodel.Cache) *Explainer {
	e := NewExplainer(model, cfg)
	e.cache = cache
	return e
}

// SetArtifactStore installs an explanation artifact store: every request
// consults it before computing (a hit returns the stored explanation and
// costs zero model queries) and deposits its result after computing.
// Corpus runs inherit the hook, which is what lets an interrupted
// -corpus run resume across processes: already-stored blocks are served,
// the rest are computed, and per-block seeding makes the union identical
// to an uninterrupted run. Set it before issuing requests; it must be
// safe for concurrent use.
func (e *Explainer) SetArtifactStore(s ArtifactStore) { e.artifacts = s }

// Model returns the underlying cost model.
func (e *Explainer) Model() costmodel.Model { return e.model }

// Config returns the effective configuration.
func (e *Explainer) Config() Config { return e.cfg }

// CacheStats snapshots the shared prediction cache (zero value when
// caching is disabled).
func (e *Explainer) CacheStats() costmodel.CacheStats {
	if e.cache == nil {
		return costmodel.CacheStats{}
	}
	return e.cache.Stats()
}

// Explain runs COMET on one block. It is the compatibility shim over
// ExplainContext with a background context and no per-request options.
func (e *Explainer) Explain(b *x86.BasicBlock) (*Explanation, error) {
	return e.explainWith(context.Background(), b, e.cfg)
}

// ExplainContext runs COMET on one block under a context, with optional
// per-request configuration overlays. Cancellation is honored at every
// model-query round: a canceled context aborts the search and returns
// ctx.Err(). Options apply to this request only; the explainer (and its
// shared prediction cache) serve concurrent requests with different
// options safely. An explanation is fully determined by the effective
// config — ExplainContext(ctx, b, WithSeed(s), WithParallelism(1)) is
// bit-identical to Explain on an explainer configured the same way.
func (e *Explainer) ExplainContext(ctx context.Context, b *x86.BasicBlock, opts ...ExplainOption) (*Explanation, error) {
	return e.explainWith(ctx, b, e.EffectiveConfig(opts...))
}

// explainSeeded runs COMET on one block with an explicit seed (ExplainAll
// derives a distinct deterministic seed per corpus block).
func (e *Explainer) explainSeeded(b *x86.BasicBlock, seed int64) (*Explanation, error) {
	cfg := e.cfg
	cfg.Seed = seed
	return e.explainWith(context.Background(), b, cfg)
}

// explainWith is the explanation engine entry point: one block, one
// effective config, one context. It is also the recovery boundary for
// costmodel.QueryError panics — the channel through which unanswerable
// queries (dead remote backends, canceled contexts) abort the search —
// turning them back into ordinary errors.
func (e *Explainer) explainWith(ctx context.Context, b *x86.BasicBlock, cfg Config) (expl *Explanation, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	defer func() {
		if r := recover(); r != nil {
			qe, ok := r.(costmodel.QueryError)
			if !ok {
				panic(r)
			}
			expl, err = nil, qe.Err
		}
	}()
	t0 := time.Now()
	if e.artifacts != nil {
		_, lookupSpan := obs.StartSpan(ctx, "core.artifact_lookup")
		stored, ok := e.artifacts.Lookup(cfg, b)
		lookupSpan.End()
		if ok {
			return stored, nil
		}
	}
	prof := &Profile{}
	_, setupSpan := obs.StartSpan(ctx, "core.canonicalize")
	p, err := perturb.New(b, cfg.Perturb)
	setupSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	prof.Setup = time.Since(t0)
	rng := rand.New(rand.NewSource(cfg.Seed))
	poolCtx, poolSpan := obs.StartSpan(ctx, "core.perturb_pool")
	space, err := newBlockSpace(poolCtx, e.batch, e.cache, p, cfg, rng)
	poolSpan.End()
	if err != nil {
		return nil, err
	}
	prof.Coverage = space.coverageTime

	searchCtx, searchSpan := obs.StartSpan(ctx, "core.search")
	space.ctx = searchCtx
	searchStart := time.Now()
	res := anchors.Search(space, cfg.Anchor, rng)
	prof.Search = time.Since(searchStart)
	prof.Model = space.modelTime
	prof.Precision = space.precisionTime
	prof.Queries = space.queries
	prof.CacheHits = space.cacheHits
	prof.ModelCalls = space.modelCalls
	prof.Batches = space.batches
	searchSpan.SetInt("queries", int64(space.queries))
	searchSpan.SetInt("cache_hits", int64(space.cacheHits))
	searchSpan.SetInt("model_calls", int64(space.modelCalls))
	searchSpan.SetInt("batches", int64(space.batches))
	searchSpan.SetInt("model_us", space.modelTime.Microseconds())
	searchSpan.SetInt("precision_us", space.precisionTime.Microseconds())
	searchSpan.End()

	set := features.NewSet()
	for _, idx := range res.Anchor {
		set = set.Add(space.feats[idx])
	}
	expl = &Explanation{
		Block:      b,
		Model:      e.model.Name(),
		Prediction: space.origPred,
		Features:   set,
		Precision:  res.Precision,
		Coverage:   res.Coverage,
		Certified:  res.Certified,
		Queries:    space.queries,
		CacheHits:  space.cacheHits,
		ModelCalls: space.modelCalls,
		Profile:    prof,
	}
	if e.artifacts != nil {
		_, storeSpan := obs.StartSpan(ctx, "core.artifact_store")
		storeStart := time.Now()
		e.artifacts.Store(cfg, expl)
		prof.Store = time.Since(storeStart)
		storeSpan.End()
	}
	prof.Total = time.Since(t0)
	return expl, nil
}

// perturbFor builds a Γ perturber with the config's perturbation settings.
func perturbFor(b *x86.BasicBlock, cfg Config) (*perturb.Perturber, error) {
	return perturb.New(b, cfg.Perturb)
}

// EstimatePrecision re-estimates Prec(F) for a given feature set on n fresh
// perturbations (used by Table 3 to report held-out precision of final
// explanations rather than the search's optimistic estimate). Queries are
// deduplicated and batched through the model's batch path.
func EstimatePrecision(model costmodel.Model, b *x86.BasicBlock, set features.Set, cfg Config, n int, rng *rand.Rand) (float64, error) {
	p, err := perturbFor(b, cfg)
	if err != nil {
		return 0, err
	}
	orig := model.Predict(b)
	blocks := make([]*x86.BasicBlock, n)
	for i := 0; i < n; i++ {
		blocks[i] = p.Sample(rng, set).Block
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 64
	}
	preds := make([]float64, n)
	costmodel.PredictThrough(nil, costmodel.AsBatch(model), blocks, batch, preds)
	succ := 0
	for _, pred := range preds {
		if inBall(pred, orig, cfg.Epsilon) {
			succ++
		}
	}
	return float64(succ) / float64(n), nil
}

// inBall reports whether pred lies in the open ε-ball around orig. The
// ball is open because ε is chosen as the model's minimum prediction
// quantum for analytical models (Appendix E): a minimum-quantum change
// must count as "prediction changed".
func inBall(pred, orig, eps float64) bool {
	return pred > orig-eps && pred < orig+eps
}

// EstimateCoverage re-estimates Cov(F) on n fresh unconstrained
// perturbations.
func EstimateCoverage(b *x86.BasicBlock, set features.Set, cfg Config, n int, rng *rand.Rand) (float64, error) {
	p, err := perturbFor(b, cfg)
	if err != nil {
		return 0, err
	}
	hit := 0
	for i := 0; i < n; i++ {
		res := p.Sample(rng, nil)
		g, err := res.Graph(cfg.Perturb.DepOptions)
		if err != nil {
			return 0, err
		}
		if set.SetContainedIn(res.Block, g, res.Mapping) {
			hit++
		}
	}
	return float64(hit) / float64(n), nil
}

// blockSpace adapts a (model, block) pair to the anchors.Space interface.
// Model queries flow through predictAll: perturbations are generated in
// parallel, then resolved against the prediction cache and the batched
// model in cfg.BatchSize chunks.
type blockSpace struct {
	ctx      context.Context
	model    costmodel.BatchModel
	cache    *costmodel.Cache
	perturb  *perturb.Perturber
	feats    features.Set
	origPred float64
	epsilon  float64
	workers  int
	batch    int
	depOpts  deps.Options

	// coverage[i][j] reports whether coverage sample i contains feature j.
	coverage [][]bool

	// Query accounting (single search goroutine; prediction fan-out
	// happens inside PredictBatch and never touches these).
	queries    int // queries issued
	cacheHits  int // queries served by the cache or within-batch dedup
	modelCalls int // blocks the model actually evaluated
	batches    int // cost-model batch calls issued for the misses

	// Stage timing for the explanation profile (same single-goroutine
	// ownership as the query accounting).
	modelTime     time.Duration // inside PredictThrough
	precisionTime time.Duration // inside SamplePrecision rounds
	coverageTime  time.Duration // building the coverage pool
}

func newBlockSpace(ctx context.Context, model costmodel.BatchModel, cache *costmodel.Cache, p *perturb.Perturber, cfg Config, rng *rand.Rand) (*blockSpace, error) {
	workers := cfg.Parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := cfg.BatchSize
	if batch < 1 {
		batch = 64
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &blockSpace{
		ctx:     ctx,
		model:   model,
		cache:   cache,
		perturb: p,
		feats:   p.Features(),
		epsilon: cfg.Epsilon,
		workers: workers,
		batch:   batch,
		depOpts: cfg.Perturb.DepOptions,
	}
	s.origPred = s.predictAll([]*x86.BasicBlock{p.Block()})[0]
	poolStart := time.Now()
	if err := s.buildCoveragePool(cfg.CoverageSamples, rng); err != nil {
		return nil, err
	}
	s.coverageTime = time.Since(poolStart)
	return s, nil
}

// predictAll resolves one prediction per block through the cache and the
// batched model, updating the space's query accounting. Every model-query
// round passes through here, so it is also the search's cancellation
// point: a canceled context aborts via costmodel.AbortQuery, which
// explainWith recovers into an ordinary error.
func (s *blockSpace) predictAll(blocks []*x86.BasicBlock) []float64 {
	if err := s.ctx.Err(); err != nil {
		costmodel.AbortQuery(err)
	}
	preds := make([]float64, len(blocks))
	start := time.Now()
	saved, evaluated := costmodel.PredictThrough(s.cache, s.model, blocks, s.batch, preds)
	s.modelTime += time.Since(start)
	s.queries += len(blocks)
	s.cacheHits += saved
	s.modelCalls += evaluated
	if evaluated > 0 {
		s.batches += (evaluated + s.batch - 1) / s.batch
	}
	return preds
}

// buildCoveragePool samples Γ(∅) once and records, per sample, which
// features it retains. Coverage of any candidate is then a cheap AND over
// columns (the Anchors "coverage data" trick); no model queries are spent.
func (s *blockSpace) buildCoveragePool(n int, rng *rand.Rand) error {
	s.coverage = make([][]bool, n)
	seeds := make([]int64, s.workers)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	var wg sync.WaitGroup
	errs := make([]error, s.workers)
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seeds[w]))
			for i := w; i < n; i += s.workers {
				if err := s.ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				res := s.perturb.Sample(wrng, nil)
				g, err := res.Graph(s.depOpts)
				if err != nil {
					errs[w] = err
					return
				}
				row := make([]bool, len(s.feats))
				for j, f := range s.feats {
					row[j] = f.ContainedIn(res.Block, g, res.Mapping)
				}
				s.coverage[i] = row
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// NumFeatures implements anchors.Space.
func (s *blockSpace) NumFeatures() int { return len(s.feats) }

// Coverage implements anchors.Space.
func (s *blockSpace) Coverage(candidate []int) float64 {
	if len(s.coverage) == 0 {
		return 0
	}
	hit := 0
	for _, row := range s.coverage {
		all := true
		for _, j := range candidate {
			if !row[j] {
				all = false
				break
			}
		}
		if all {
			hit++
		}
	}
	return float64(hit) / float64(len(s.coverage))
}

// SamplePrecision implements anchors.Space: draw n perturbations retaining
// the candidate features and count predictions inside the ε-ball.
// Perturbation generation is split across workers with seeds derived from
// the search rng (deterministic for a fixed worker count, and identical to
// the pre-batching sampling scheme); predictions are then resolved in one
// batched, cached pass instead of one model query per sample.
func (s *blockSpace) SamplePrecision(rng *rand.Rand, candidate []int, n int) int {
	defer func(start time.Time) { s.precisionTime += time.Since(start) }(time.Now())
	preserve := features.NewSet()
	for _, j := range candidate {
		preserve = preserve.Add(s.feats[j])
	}
	workers := s.workers
	if workers > n {
		workers = n
	}
	seeds := make([]int64, workers)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	blocks := make([]*x86.BasicBlock, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seeds[w]))
			for k := w; k < n; k += workers {
				blocks[k] = s.perturb.Sample(wrng, preserve).Block
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, pred := range s.predictAll(blocks) {
		if inBall(pred, s.origPred, s.epsilon) {
			total++
		}
	}
	return total
}
