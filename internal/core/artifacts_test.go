package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/comet-explain/comet/internal/analytical"
	"github.com/comet-explain/comet/internal/x86"
)

// memArtifacts is an in-memory ArtifactStore keyed like the persistent
// one: canonical block text plus the identity-bearing config fields.
type memArtifacts struct {
	mu      sync.Mutex
	m       map[string]*Explanation
	lookups int
	stores  int
}

func newMemArtifacts() *memArtifacts {
	return &memArtifacts{m: make(map[string]*Explanation)}
}

func artifactKey(cfg Config, blockText string) string {
	return fmt.Sprintf("%s|par=%d|cov=%d|seed=%d", blockText, cfg.Parallelism, cfg.CoverageSamples, cfg.Seed)
}

func (a *memArtifacts) Lookup(cfg Config, b *x86.BasicBlock) (*Explanation, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lookups++
	e, ok := a.m[artifactKey(cfg, b.String())]
	return e, ok
}

func (a *memArtifacts) Store(cfg Config, expl *Explanation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stores++
	a.m[artifactKey(cfg, expl.Block.String())] = expl
}

// TestArtifactStoreServesRepeatRequests: the second identical request is
// answered by the store — same explanation pointer, no new computation.
func TestArtifactStoreServesRepeatRequests(t *testing.T) {
	model := analytical.New(x86.Haswell)
	cfg := corpusConfig()
	b := corpusBlocks(t, 1)[0]

	e := NewExplainer(model, cfg)
	arts := newMemArtifacts()
	e.SetArtifactStore(arts)

	first, err := e.Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	if arts.stores != 1 {
		t.Fatalf("stores = %d after the first explanation, want 1", arts.stores)
	}
	second, err := e.Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("repeat request was recomputed instead of served from the artifact store")
	}
	if arts.stores != 1 {
		t.Errorf("stores = %d after a served repeat, want still 1", arts.stores)
	}

	// A different seed is a different artifact.
	third, err := NewExplainer(model, cfg).Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	withSeed, err := e.ExplainContext(nil, b, WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if withSeed == first {
		t.Error("different seed served the same artifact")
	}
	_ = third
}

// TestArtifactStoreCorpusResume: a corpus run that stops partway (its
// artifacts persisted) is resumed by a second run over the same corpus —
// stored blocks are served, the rest computed, and the union matches an
// uninterrupted run exactly.
func TestArtifactStoreCorpusResume(t *testing.T) {
	model := analytical.New(x86.Haswell)
	cfg := corpusConfig()
	blocks := corpusBlocks(t, 6)

	// Reference: uninterrupted run, no store.
	ref, err := NewExplainer(model, cfg).ExplainCorpus(blocks, CorpusOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// "Interrupted" run: only the first half executes (Skip the rest),
	// its artifacts landing in the store.
	arts := newMemArtifacts()
	e1 := NewExplainer(model, cfg)
	e1.SetArtifactStore(arts)
	for range e1.ExplainAll(blocks, CorpusOptions{
		Workers: 2,
		Skip:    func(i int) bool { return i >= 3 },
	}) {
	}
	if len(arts.m) != 3 {
		t.Fatalf("interrupted run persisted %d artifacts, want 3", len(arts.m))
	}

	// Resumed run: same corpus, same store.
	e2 := NewExplainer(model, cfg)
	e2.SetArtifactStore(arts)
	resumed, err := e2.ExplainCorpus(blocks, CorpusOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range blocks {
		if resumed[i] == nil {
			t.Fatalf("block %d missing after resume", i)
		}
		if resumed[i].Features.Key() != ref[i].Features.Key() ||
			resumed[i].Prediction != ref[i].Prediction ||
			resumed[i].Precision != ref[i].Precision {
			t.Errorf("block %d: resumed explanation differs from uninterrupted run", i)
		}
	}
}

// TestCorpusSkipOmitsBlocks: skipped indices produce no result at all,
// and the blocks that do run keep their original per-block seeds.
func TestCorpusSkipOmitsBlocks(t *testing.T) {
	model := analytical.New(x86.Haswell)
	cfg := corpusConfig()
	blocks := corpusBlocks(t, 5)

	seen := make(map[int]*Explanation)
	for res := range NewExplainer(model, cfg).ExplainAll(blocks, CorpusOptions{
		Workers: 2,
		Skip:    func(i int) bool { return i%2 == 1 },
	}) {
		if res.Err != nil {
			t.Fatalf("block %d: %v", res.Index, res.Err)
		}
		seen[res.Index] = res.Explanation
	}
	if len(seen) != 3 {
		t.Fatalf("got %d results, want 3 (indices 0, 2, 4)", len(seen))
	}
	for _, i := range []int{0, 2, 4} {
		expl := seen[i]
		if expl == nil {
			t.Fatalf("block %d missing", i)
		}
		solo := cfg
		solo.Seed = BlockSeed(cfg.Seed, i)
		want, err := NewExplainer(model, solo).Explain(blocks[i])
		if err != nil {
			t.Fatal(err)
		}
		if expl.Features.Key() != want.Features.Key() {
			t.Errorf("block %d: skip run %v != seeded solo %v", i, expl.Features, want.Features)
		}
	}
}
