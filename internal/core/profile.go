package core

import "time"

// Profile records where one explanation's wall time went, stage by
// stage. The engine fills it on every computed explanation — the cost is
// a handful of clock reads against seconds of model queries — so callers
// (the comet CLI's -profile flag, the service's ?profile=1) never pay a
// recompute to see it.
//
// The stages overlap deliberately: Model and Precision are subsets of
// Search (the beam search issues the model queries and the KL-LUCB
// sampling rounds), so Setup+Search+Coverage+Store ≈ Total while
// Model/Precision attribute Search's interior.
type Profile struct {
	// Setup covers perturbation-space construction (canonicalization,
	// dependency analysis, legality tables) up to the first model query.
	Setup time.Duration
	// Coverage covers the shared Γ(∅) coverage-pool construction.
	Coverage time.Duration
	// Search covers the anchors beam search, including its model queries
	// and precision sampling.
	Search time.Duration
	// Model is the time spent inside cost-model batch calls (including
	// prediction-cache resolution), across every stage.
	Model time.Duration
	// Precision is the time spent in KL-LUCB precision-sampling rounds
	// (perturbation generation plus their model queries).
	Precision time.Duration
	// Store covers the artifact-store write of the finished explanation.
	Store time.Duration
	// Total is end-to-end wall time for the computation.
	Total time.Duration

	// Queries, CacheHits, and ModelCalls mirror the Explanation's query
	// accounting so the profile is self-contained; Batches counts the
	// cost-model batch calls that resolved the misses.
	Queries    int
	CacheHits  int
	ModelCalls int
	Batches    int
}
