package core

import (
	"math/rand"

	"github.com/comet-explain/comet/internal/features"
)

// This file implements the two baseline explainers of Section 6 and the
// Table 2 accuracy metric.

// Accurate reports whether an explanation is accurate with respect to a
// ground-truth set: it must name at least one ground-truth feature and
// nothing outside the ground truth (the paper's Table 2 criterion).
func Accurate(expl, gt features.Set) bool {
	if len(expl) == 0 {
		return false
	}
	hit := false
	for _, f := range expl {
		if gt.Contains(f) {
			hit = true
		} else {
			return false
		}
	}
	return hit
}

// KindDistribution returns, for each feature kind, its probability of
// occurrence among the ground-truth explanations of a test set — the
// distribution the random baseline draws from.
func KindDistribution(gts []features.Set) map[features.Kind]float64 {
	counts := map[features.Kind]float64{}
	total := 0.0
	for _, gt := range gts {
		for _, f := range gt {
			counts[f.Kind]++
			total++
		}
	}
	if total == 0 {
		return counts
	}
	for k := range counts {
		counts[k] /= total
	}
	return counts
}

// MostFrequentKind returns the feature kind occurring most often in the
// ground-truth explanations (the fixed baseline's kind).
func MostFrequentKind(gts []features.Set) features.Kind {
	counts := KindDistribution(gts)
	best := features.KindInstr
	bestP := -1.0
	for _, k := range []features.Kind{features.KindInstr, features.KindDep, features.KindCount} {
		if p := counts[k]; p > bestP {
			best, bestP = k, p
		}
	}
	return best
}

// RandomExplanation implements the random baseline: draw a feature kind
// from the ground-truth kind distribution, then pick a uniformly random
// feature of that kind from the block's ˆP (retrying when the block has no
// feature of the drawn kind).
func RandomExplanation(rng *rand.Rand, feats features.Set, kindProbs map[features.Kind]float64) features.Set {
	kinds := []features.Kind{features.KindInstr, features.KindDep, features.KindCount}
	for try := 0; try < 32; try++ {
		r := rng.Float64()
		var kind features.Kind
		acc := 0.0
		kind = kinds[len(kinds)-1]
		for _, k := range kinds {
			acc += kindProbs[k]
			if r < acc {
				kind = k
				break
			}
		}
		pool := feats.Filter(func(f features.Feature) bool { return f.Kind == kind })
		if len(pool) == 0 {
			continue
		}
		return features.NewSet(pool[rng.Intn(len(pool))])
	}
	if len(feats) == 0 {
		return nil
	}
	return features.NewSet(feats[rng.Intn(len(feats))])
}

// FixedExplanation implements the fixed baseline: the first feature of the
// given kind in the block (falling back to the first feature at all when
// the kind is absent).
func FixedExplanation(feats features.Set, kind features.Kind) features.Set {
	for _, f := range feats {
		if f.Kind == kind {
			return features.NewSet(f)
		}
	}
	if len(feats) == 0 {
		return nil
	}
	return features.NewSet(feats[0])
}
