package core

// Corpus-scale explanation: the paper's evaluation (and any production
// deployment) explains whole BHive-style corpora, not single blocks.
// ExplainAll drives a worker pool over the corpus with deterministic
// per-block seeding, streaming results as they complete. All workers share
// the explainer's prediction cache, so perturbation collisions are
// amortized across the entire run.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/comet-explain/comet/internal/x86"
)

// CorpusOptions configures ExplainAll.
type CorpusOptions struct {
	// Workers is the number of blocks explained concurrently
	// (0 = GOMAXPROCS). When Config.Parallelism was left unset, corpus
	// blocks sample single-threaded and block-level workers saturate the
	// machine; an explicitly set Parallelism is honored per block (and
	// multiplies with Workers — watch for oversubscription).
	Workers int
	// Progress, if non-nil, is called after each block completes, from a
	// single goroutine, with the running completion count.
	Progress func(done, total int)
	// Buffer is the result channel's capacity (0 = one slot per corpus
	// block, so the run always drains to completion and its goroutines
	// exit even if the consumer stops receiving early). Setting a smaller
	// buffer saves memory on huge corpora but obliges the consumer to
	// drain the channel fully.
	Buffer int
	// Context, if non-nil, cancels the run: blocks not yet started are
	// skipped (in-flight blocks finish and are still delivered), and the
	// result channel closes early. Blocks that were skipped produce no
	// CorpusResult at all, so a canceled run delivers fewer results than
	// len(blocks).
	Context context.Context
	// Skip, if non-nil, reports corpus indices to omit entirely — they
	// are never fed to a worker and produce no CorpusResult. Resumed
	// runs pass the set of already-persisted blocks here: because every
	// block's seed is BlockSeed(cfg.Seed, index) regardless of which
	// blocks run, the skipped-and-restored union is identical to an
	// uninterrupted run. Skip must be safe for concurrent calls.
	Skip func(index int) bool
	// Seeds, if non-nil, overrides the per-block seed: block index i runs
	// under Seeds(i) instead of BlockSeed(cfg.Seed, i). This is the
	// shard-slicing hook — a cluster worker explaining a slice of someone
	// else's corpus passes the original per-block seeds here, so its
	// results are byte-identical to the whole-corpus run that would have
	// produced them. Seeds must be safe for concurrent calls.
	Seeds func(index int) int64
	// Index, if non-nil, remaps local slice positions to the indices
	// results should carry — CorpusResult.Index and per-block error
	// messages both use the remapped value, so a shard slice's outputs
	// are indistinguishable from the whole-corpus run's. Index must be
	// safe for concurrent calls.
	Index func(index int) int
}

// CorpusResult is one streamed ExplainAll outcome. Results arrive in
// completion order; Index identifies the input block.
type CorpusResult struct {
	Index       int
	Block       *x86.BasicBlock
	Explanation *Explanation
	Err         error
}

// BlockSeed derives the deterministic seed ExplainAll uses for corpus
// block index (a splitmix64 mix of the base seed, so per-block rngs are
// decorrelated but reproducible). Explaining a single block with
// cfg.Seed = BlockSeed(base, i) yields the identical explanation to
// ExplainAll's block i under cfg.Seed = base, provided cfg.Parallelism
// matches the corpus run's per-block sampling parallelism (set it
// explicitly — sampling is deterministic per worker count).
func BlockSeed(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// ExplainAll explains every block of a corpus through a worker pool and
// streams the results. The channel closes after the last result; failures
// surface per block in CorpusResult.Err and never abort the run.
func (e *Explainer) ExplainAll(blocks []*x86.BasicBlock, opts CorpusOptions) <-chan CorpusResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers < 1 {
		workers = 1
	}
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = len(blocks)
	}
	out := make(chan CorpusResult, buffer)
	internal := make(chan CorpusResult, workers)
	work := make(chan int)

	// With several blocks in flight, per-block sampling parallelism is
	// pure oversubscription — drop it to one goroutine per block unless
	// the caller pinned Parallelism explicitly.
	pe := e
	if e.autoParallel && workers > 1 {
		derived := *e
		derived.cfg.Parallelism = 1
		pe = &derived
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				seed := BlockSeed(e.cfg.Seed, i)
				if opts.Seeds != nil {
					seed = opts.Seeds(i)
				}
				idx := i
				if opts.Index != nil {
					idx = opts.Index(i)
				}
				expl, err := pe.explainSeeded(blocks[i], seed)
				if err != nil {
					err = fmt.Errorf("block %d: %w", idx, err)
				}
				internal <- CorpusResult{Index: idx, Block: blocks[i], Explanation: expl, Err: err}
			}
		}()
	}
	// Feeder: stops handing out blocks once the context is canceled.
	go func() {
		defer close(work)
		var done <-chan struct{}
		if opts.Context != nil {
			done = opts.Context.Done()
		}
		for i := range blocks {
			if opts.Skip != nil && opts.Skip(i) {
				continue
			}
			select {
			case work <- i:
			case <-done:
				return
			}
		}
	}()
	// The internal channel closes once every started block has been
	// delivered, so a canceled run still terminates cleanly.
	go func() {
		wg.Wait()
		close(internal)
	}()
	// Single collector goroutine: serializes Progress callbacks and
	// forwards results in completion order.
	go func() {
		defer close(out)
		done := 0
		for res := range internal {
			done++
			if opts.Progress != nil {
				opts.Progress(done, len(blocks))
			}
			out <- res
		}
	}()
	return out
}

// ExplainCorpus is the collecting convenience over ExplainAll: it returns
// explanations in input order and the first per-block error encountered
// (lowest index wins), with every block still attempted.
func (e *Explainer) ExplainCorpus(blocks []*x86.BasicBlock, opts CorpusOptions) ([]*Explanation, error) {
	expls := make([]*Explanation, len(blocks))
	var errs []CorpusResult
	for res := range e.ExplainAll(blocks, opts) {
		expls[res.Index] = res.Explanation
		if res.Err != nil {
			errs = append(errs, res)
		}
	}
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Index < errs[j].Index })
		return expls, errs[0].Err
	}
	return expls, nil
}
