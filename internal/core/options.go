package core

// The context-first request API: per-request functional options overlay an
// explainer's base configuration without rebuilding the explainer (and
// without touching its shared prediction cache). Both the library surface
// (comet.WithSeed, ...) and the serving layer (wire.ConfigOverrides)
// compile down to these options.

// ExplainOption adjusts one explanation request's configuration. Options
// apply to a copy of the explainer's config; the explainer itself is
// never mutated, so a single explainer safely serves concurrent requests
// with different options.
type ExplainOption func(*Config)

// WithSeed pins the request's sampling seed, making the explanation
// reproducible: two requests with equal options yield identical output.
func WithSeed(seed int64) ExplainOption {
	return func(c *Config) { c.Seed = seed }
}

// WithEpsilon sets the ε-ball radius around M(β) for this request.
func WithEpsilon(epsilon float64) ExplainOption {
	return func(c *Config) { c.Epsilon = epsilon }
}

// WithPrecisionThreshold sets the precision threshold 1−δ for this request.
func WithPrecisionThreshold(threshold float64) ExplainOption {
	return func(c *Config) { c.PrecisionThreshold = threshold }
}

// WithCoverageSamples sets the Γ(∅) coverage-pool size for this request.
func WithCoverageSamples(n int) ExplainOption {
	return func(c *Config) { c.CoverageSamples = n }
}

// WithBatchSize sets how many perturbed blocks each PredictBatch call
// carries for this request.
func WithBatchSize(n int) ExplainOption {
	return func(c *Config) { c.BatchSize = n }
}

// WithParallelism bounds this request's precision-sampling workers
// (0 restores the GOMAXPROCS default). Sampling is deterministic per
// worker count, so reproducible requests pin both seed and parallelism —
// the serving layer pins Parallelism to 1 for exactly this reason.
func WithParallelism(n int) ExplainOption {
	return func(c *Config) { c.Parallelism = n }
}

// ApplyOptions overlays options onto a base config and normalizes the
// result — the package-level form of Explainer.EffectiveConfig, for
// callers (like the serving layer) that need a request's effective
// config before, or without, building an explainer.
func ApplyOptions(base Config, opts ...ExplainOption) Config {
	for _, opt := range opts {
		if opt != nil {
			opt(&base)
		}
	}
	base, _ = base.withDefaults()
	return base
}

// EffectiveConfig returns the normalized configuration a request with
// these options would run under: the explainer's base config, the options
// applied in order, then the usual defaulting. Serving layers use it to
// derive a request's cache/coalescing identity without re-implementing
// the overlay.
func (e *Explainer) EffectiveConfig(opts ...ExplainOption) Config {
	return ApplyOptions(e.cfg, opts...)
}
