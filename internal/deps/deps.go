// Package deps builds the data-dependency multigraph G of a basic block
// (Section 5.1 of the COMET paper): vertices are the block's instructions
// annotated with their positions, and directed edges connect instruction
// pairs with RAW, WAR, or WAW hazards, labeled by hazard type and the
// location (register family, memory address expression, stack slot, or
// flags) that carries the hazard.
//
// Following the paper's multigraph (e.g. the Listing 3 case study reports a
// RAW between instructions 3 and 6 despite an intervening writer), edges
// are built for every (earlier, later) instruction pair that touches a
// common location, not only adjacent def-use pairs. Options.LastWriterOnly
// restores conventional kill-based analysis for callers that want it.
package deps

import (
	"fmt"
	"sort"

	"github.com/comet-explain/comet/internal/x86"
)

// Hazard is the type of a data-dependency hazard (Appendix B).
type Hazard int

// Hazard kinds.
const (
	RAW Hazard = iota // read-after-write: true dependency
	WAR               // write-after-read: anti dependency
	WAW               // write-after-write: output dependency
)

// String returns the conventional hazard name.
func (h Hazard) String() string {
	switch h {
	case RAW:
		return "RAW"
	case WAR:
		return "WAR"
	case WAW:
		return "WAW"
	}
	return "hazard(?)"
}

// LocKind classifies a dependency-carrying location.
type LocKind int

// Location kinds.
const (
	LocReg LocKind = iota
	LocMem
	LocStack
	LocFlags
)

// Loc identifies an architectural location at the granularity dependencies
// are tracked: register family, canonical memory expression, the stack slot
// touched by push/pop, or the flags register.
type Loc struct {
	Kind LocKind
	Fam  x86.RegFamily // for LocReg
	Mem  string        // canonical MemRef.LocKey for LocMem
}

// String returns a short printable location name.
func (l Loc) String() string {
	switch l.Kind {
	case LocReg:
		return x86.FamilyName(l.Fam)
	case LocMem:
		return l.Mem
	case LocStack:
		return "stack"
	case LocFlags:
		return "flags"
	}
	return "loc(?)"
}

func regLoc(f x86.RegFamily) Loc { return Loc{Kind: LocReg, Fam: f} }
func memLoc(m x86.MemRef) Loc    { return Loc{Kind: LocMem, Mem: m.LocKey()} }

// Edge is one dependency edge of the multigraph.
type Edge struct {
	Src, Dst int // instruction indices, Src < Dst
	Hazard   Hazard
	Loc      Loc
}

// String renders the edge like "δRAW(1→3) via rax" with 1-based indices to
// match the paper's listings.
func (e Edge) String() string {
	return fmt.Sprintf("δ%s(%d→%d) via %s", e.Hazard, e.Src+1, e.Dst+1, e.Loc)
}

// Graph is the dependency multigraph of a basic block.
type Graph struct {
	Block *x86.BasicBlock
	Edges []Edge
}

// Options controls graph construction.
type Options struct {
	// TrackFlags includes RFLAGS as a dependency location. Off by default:
	// nearly every integer ALU instruction writes flags, so flag edges
	// drown the register/memory structure the paper's explanations use.
	TrackFlags bool
	// LastWriterOnly restricts RAW edges to the most recent writer and
	// WAW/WAR edges to adjacent access pairs (kill-based analysis) instead
	// of the paper's all-pairs multigraph.
	LastWriterOnly bool
}

// Access is the set of locations one instruction reads and writes.
type Access struct {
	Reads  []Loc
	Writes []Loc
}

// AccessOf computes the read and write location sets of an instruction,
// combining explicit operands (with per-form access), address-component
// register reads, implicit register accesses, stack effects, and flags.
func AccessOf(inst x86.Instruction, opts Options) (Access, error) {
	spec, ok := inst.Spec()
	if !ok {
		return Access{}, fmt.Errorf("deps: unknown opcode %q", inst.Opcode)
	}
	form := spec.MatchForm(inst.Operands)
	if form == nil {
		return Access{}, fmt.Errorf("deps: %s does not match any form", inst)
	}

	var acc Access
	read := func(l Loc) { acc.Reads = append(acc.Reads, l) }
	write := func(l Loc) { acc.Writes = append(acc.Writes, l) }

	for i, op := range inst.Operands {
		t := form.Ops[i]
		switch op.Kind {
		case x86.KindReg:
			if t.Access&x86.AccR != 0 {
				read(regLoc(op.Reg.Family))
			}
			if t.Access&x86.AccW != 0 {
				write(regLoc(op.Reg.Family))
			}
		case x86.KindMem:
			for _, fam := range op.Mem.Regs() {
				read(regLoc(fam))
			}
			if t.Access&x86.AccR != 0 {
				read(memLoc(op.Mem))
			}
			if t.Access&x86.AccW != 0 {
				write(memLoc(op.Mem))
			}
		case x86.KindAddr:
			for _, fam := range op.Mem.Regs() {
				read(regLoc(fam))
			}
		case x86.KindImm:
			// no locations
		}
	}
	for _, fam := range spec.ImplicitReads {
		read(regLoc(fam))
	}
	for _, fam := range spec.ImplicitWrites {
		write(regLoc(fam))
	}
	if spec.StackRead {
		read(Loc{Kind: LocStack})
	}
	if spec.StackWrite {
		write(Loc{Kind: LocStack})
	}
	if opts.TrackFlags {
		if spec.ReadsFlags {
			read(Loc{Kind: LocFlags})
		}
		if spec.WritesFlags {
			write(Loc{Kind: LocFlags})
		}
	}
	acc.Reads = dedupeLocs(acc.Reads)
	acc.Writes = dedupeLocs(acc.Writes)
	return acc, nil
}

func dedupeLocs(ls []Loc) []Loc {
	seen := make(map[Loc]bool, len(ls))
	out := ls[:0]
	for _, l := range ls {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// Build constructs the dependency multigraph of a block.
func Build(b *x86.BasicBlock, opts Options) (*Graph, error) {
	accs := make([]Access, b.Len())
	for i, inst := range b.Instructions {
		a, err := AccessOf(inst, opts)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i+1, err)
		}
		accs[i] = a
	}

	// Group accesses by location.
	byLoc := make(map[Loc][]locEvent)
	order := make([]Loc, 0)
	touch := func(l Loc, idx int, isWrite bool) {
		evs := byLoc[l]
		if len(evs) == 0 || evs[len(evs)-1].idx != idx {
			if len(evs) == 0 {
				order = append(order, l)
			}
			evs = append(evs, locEvent{idx: idx})
		}
		if isWrite {
			evs[len(evs)-1].wrts = true
		} else {
			evs[len(evs)-1].reads = true
		}
		byLoc[l] = evs
	}
	for i, a := range accs {
		for _, l := range a.Reads {
			touch(l, i, false)
		}
		for _, l := range a.Writes {
			touch(l, i, true)
		}
	}
	// Deterministic location order for reproducible edge lists.
	sort.Slice(order, func(i, j int) bool { return locLess(order[i], order[j]) })

	g := &Graph{Block: b}
	for _, loc := range order {
		evs := byLoc[loc]
		if opts.LastWriterOnly {
			g.buildKillBased(loc, evs)
		} else {
			g.buildAllPairs(loc, evs)
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool { return edgeLess(g.Edges[i], g.Edges[j]) })
	return g, nil
}

// locEvent records that one instruction reads and/or writes a location.
type locEvent struct {
	idx         int
	reads, wrts bool
}

func (g *Graph) buildAllPairs(loc Loc, evs []locEvent) {
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			a, b := evs[i], evs[j]
			if a.wrts && b.reads {
				g.Edges = append(g.Edges, Edge{Src: a.idx, Dst: b.idx, Hazard: RAW, Loc: loc})
			}
			if a.reads && b.wrts {
				g.Edges = append(g.Edges, Edge{Src: a.idx, Dst: b.idx, Hazard: WAR, Loc: loc})
			}
			if a.wrts && b.wrts {
				g.Edges = append(g.Edges, Edge{Src: a.idx, Dst: b.idx, Hazard: WAW, Loc: loc})
			}
		}
	}
}

func (g *Graph) buildKillBased(loc Loc, evs []locEvent) {
	lastWriter := -1
	var readersSinceWrite []int
	for _, ev := range evs {
		if ev.reads {
			if lastWriter >= 0 {
				g.Edges = append(g.Edges, Edge{Src: lastWriter, Dst: ev.idx, Hazard: RAW, Loc: loc})
			}
		}
		if ev.wrts {
			for _, r := range readersSinceWrite {
				if r != ev.idx {
					g.Edges = append(g.Edges, Edge{Src: r, Dst: ev.idx, Hazard: WAR, Loc: loc})
				}
			}
			if lastWriter >= 0 {
				g.Edges = append(g.Edges, Edge{Src: lastWriter, Dst: ev.idx, Hazard: WAW, Loc: loc})
			}
			lastWriter = ev.idx
			readersSinceWrite = readersSinceWrite[:0]
		}
		if ev.reads {
			readersSinceWrite = append(readersSinceWrite, ev.idx)
		}
	}
}

func locLess(a, b Loc) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Fam != b.Fam {
		return a.Fam < b.Fam
	}
	return a.Mem < b.Mem
}

func edgeLess(a, b Edge) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Hazard != b.Hazard {
		return a.Hazard < b.Hazard
	}
	return locLess(a.Loc, b.Loc)
}

// HasEdge reports whether the graph contains an edge with the given
// endpoints and hazard type, regardless of location.
func (g *Graph) HasEdge(src, dst int, h Hazard) bool {
	for _, e := range g.Edges {
		if e.Src == src && e.Dst == dst && e.Hazard == h {
			return true
		}
	}
	return false
}

// EdgesBetween returns all edges from src to dst.
func (g *Graph) EdgesBetween(src, dst int) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.Src == src && e.Dst == dst {
			out = append(out, e)
		}
	}
	return out
}
