package deps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/comet-explain/comet/internal/x86"
)

func build(t *testing.T, src string, opts Options) *Graph {
	t.Helper()
	b, err := x86.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMotivatingExampleRAW(t *testing.T) {
	// Listing 1(a): add rcx, rax / mov rdx, rcx / pop rbx.
	// The single register dependency is RAW 1→2 on rcx.
	g := build(t, "add rcx, rax\nmov rdx, rcx\npop rbx", Options{})
	if !g.HasEdge(0, 1, RAW) {
		t.Fatalf("expected RAW 1→2; edges: %v", g.Edges)
	}
	for _, e := range g.Edges {
		if e.Loc.Kind == LocReg && !(e.Src == 0 && e.Dst == 1 && e.Hazard == RAW) {
			t.Errorf("unexpected register edge %v", e)
		}
	}
}

func TestCaseStudy2PaperEdges(t *testing.T) {
	// Listing 3. The paper reports a RAW between instructions 3 and 6 via
	// rax and a WAR between 1 and 2 via edx (1-based).
	src := `
		mov ecx, edx
		xor edx, edx
		lea rax, [rcx + rax - 1]
		div rcx
		mov rdx, rcx
		imul rax, rcx`
	g := build(t, src, Options{})
	if !g.HasEdge(2, 5, RAW) {
		t.Errorf("expected paper's RAW 3→6 via rax; edges: %v", g.Edges)
	}
	if !g.HasEdge(0, 1, WAR) {
		t.Errorf("expected paper's WAR 1→2 via edx; edges: %v", g.Edges)
	}
	// div (4) writes rax which imul (6) reads.
	if !g.HasEdge(3, 5, RAW) {
		t.Errorf("expected RAW 4→6 via rax; edges: %v", g.Edges)
	}
}

func TestLastWriterOnlyKillsTransitiveRAW(t *testing.T) {
	src := `
		mov ecx, edx
		xor edx, edx
		lea rax, [rcx + rax - 1]
		div rcx
		mov rdx, rcx
		imul rax, rcx`
	g := build(t, src, Options{LastWriterOnly: true})
	// div overwrites rax between lea and imul, so kill-based analysis has
	// no 3→6 RAW.
	if g.HasEdge(2, 5, RAW) {
		t.Errorf("kill-based analysis should not report RAW 3→6; edges: %v", g.Edges)
	}
	if !g.HasEdge(3, 5, RAW) {
		t.Errorf("kill-based analysis should keep RAW 4→6; edges: %v", g.Edges)
	}
}

func TestWAWDetection(t *testing.T) {
	g := build(t, "mov rax, rbx\nmov rax, rcx", Options{})
	if !g.HasEdge(0, 1, WAW) {
		t.Fatalf("expected WAW 1→2 via rax; edges: %v", g.Edges)
	}
}

func TestMemoryAliasing(t *testing.T) {
	// Store then load from the same syntactic address: RAW through memory.
	g := build(t, "mov qword ptr [rdi + 8], rax\nmov rbx, qword ptr [rdi + 8]", Options{})
	found := false
	for _, e := range g.Edges {
		if e.Hazard == RAW && e.Loc.Kind == LocMem {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected memory RAW; edges: %v", g.Edges)
	}

	// Different displacements must not alias.
	g = build(t, "mov qword ptr [rdi + 8], rax\nmov rbx, qword ptr [rdi + 16]", Options{})
	for _, e := range g.Edges {
		if e.Loc.Kind == LocMem {
			t.Errorf("unexpected memory edge %v", e)
		}
	}
}

func TestAddressRegistersAreReads(t *testing.T) {
	// First instruction writes rdi; second uses rdi as a base register.
	g := build(t, "mov rdi, rax\nmov rbx, qword ptr [rdi]", Options{})
	if !g.HasEdge(0, 1, RAW) {
		t.Fatalf("address register use should create RAW; edges: %v", g.Edges)
	}
}

func TestLeaReadsAddressNotMemory(t *testing.T) {
	g := build(t, "mov qword ptr [rax + 8], rbx\nlea rcx, [rax + 8]", Options{})
	for _, e := range g.Edges {
		if e.Loc.Kind == LocMem {
			t.Errorf("lea must not touch memory; edge %v", e)
		}
	}
	// But lea does read rax, giving a WAR on rax? No — inst 1 reads rax
	// (address), inst 2 reads rax; no hazard between two reads.
	if g.HasEdge(0, 1, WAR) || g.HasEdge(0, 1, WAW) {
		t.Errorf("two reads of rax must not create WAR/WAW; edges: %v", g.Edges)
	}
}

func TestImplicitDivOperands(t *testing.T) {
	// xor edx, edx writes rdx; div reads rdx implicitly → RAW.
	g := build(t, "xor edx, edx\ndiv rcx", Options{})
	if !g.HasEdge(0, 1, RAW) {
		t.Fatalf("div should implicitly read rdx; edges: %v", g.Edges)
	}
}

func TestPushPopStackDependency(t *testing.T) {
	g := build(t, "push rax\npop rbx", Options{})
	foundStack := false
	for _, e := range g.Edges {
		if e.Loc.Kind == LocStack && e.Hazard == RAW {
			foundStack = true
		}
	}
	if !foundStack {
		t.Fatalf("push→pop should carry a stack RAW; edges: %v", g.Edges)
	}
	// Both also touch rsp (implicit RW): expect edges via rsp too.
	foundRSP := false
	for _, e := range g.Edges {
		if e.Loc.Kind == LocReg && e.Loc.Fam == x86.FamRSP {
			foundRSP = true
		}
	}
	if !foundRSP {
		t.Errorf("push/pop should conflict on rsp; edges: %v", g.Edges)
	}
}

func TestFlagsTrackingOptional(t *testing.T) {
	src := "add rax, rbx\nadc rcx, rdx"
	g := build(t, src, Options{})
	for _, e := range g.Edges {
		if e.Loc.Kind == LocFlags {
			t.Errorf("flags disabled but got edge %v", e)
		}
	}
	g = build(t, src, Options{TrackFlags: true})
	found := false
	for _, e := range g.Edges {
		if e.Loc.Kind == LocFlags && e.Hazard == RAW {
			found = true
		}
	}
	if !found {
		t.Errorf("adc should read flags written by add; edges: %v", g.Edges)
	}
}

func TestNoSelfEdges(t *testing.T) {
	// add rax, rax reads and writes rax but must not self-loop.
	g := build(t, "add rax, rax", Options{})
	for _, e := range g.Edges {
		if e.Src == e.Dst {
			t.Errorf("self edge %v", e)
		}
	}
}

func TestPartialRegisterFamilyGranularity(t *testing.T) {
	// Writing eax then reading rax is a dependency at family granularity.
	g := build(t, "mov eax, ebx\nadd rcx, rax", Options{})
	if !g.HasEdge(0, 1, RAW) {
		t.Fatalf("eax write → rax read should be RAW; edges: %v", g.Edges)
	}
}

func TestEdgeStringFormat(t *testing.T) {
	e := Edge{Src: 0, Dst: 1, Hazard: RAW, Loc: Loc{Kind: LocReg, Fam: x86.FamRCX}}
	if got := e.String(); got != "δRAW(1→2) via rcx" {
		t.Errorf("Edge.String() = %q", got)
	}
}

func randomBlock(rng *rand.Rand, n int) *x86.BasicBlock {
	fams := x86.GPFamilies()
	reg := func() x86.Operand {
		return x86.NewReg(x86.Reg{Family: fams[rng.Intn(8)], Size: x86.Size64})
	}
	var insts []x86.Instruction
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			insts = append(insts, x86.Instruction{Opcode: "add", Operands: []x86.Operand{reg(), reg()}})
		case 1:
			insts = append(insts, x86.Instruction{Opcode: "mov", Operands: []x86.Operand{reg(), reg()}})
		case 2:
			insts = append(insts, x86.Instruction{Opcode: "imul", Operands: []x86.Operand{reg(), reg()}})
		default:
			insts = append(insts, x86.Instruction{Opcode: "xor", Operands: []x86.Operand{reg(), reg()}})
		}
	}
	return x86.NewBlock(insts...)
}

func TestPropertyEdgesWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBlock(rng, 2+rng.Intn(8))
		g, err := Build(b, Options{})
		if err != nil {
			return false
		}
		for _, e := range g.Edges {
			if e.Src >= e.Dst {
				t.Logf("edge %v not forward", e)
				return false
			}
			if e.Src < 0 || e.Dst >= b.Len() {
				t.Logf("edge %v out of range", e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllPairsSupersetOfKillBased(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := randomBlock(rng, 2+rng.Intn(8))
		all, err1 := Build(b, Options{})
		kill, err2 := Build(b, Options{LastWriterOnly: true})
		if err1 != nil || err2 != nil {
			return false
		}
		for _, e := range kill.Edges {
			if !all.HasEdge(e.Src, e.Dst, e.Hazard) {
				t.Logf("kill-based edge %v missing from all-pairs graph", e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicEdgeOrder(t *testing.T) {
	src := `
		mov ecx, edx
		xor edx, edx
		lea rax, [rcx + rax - 1]
		div rcx
		mov rdx, rcx
		imul rax, rcx`
	g1 := build(t, src, Options{})
	g2 := build(t, src, Options{})
	if len(g1.Edges) != len(g2.Edges) {
		t.Fatal("edge counts differ across runs")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge order not deterministic: %v vs %v", g1.Edges[i], g2.Edges[i])
		}
	}
}
