package service

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"os"
	"strings"
	"testing"

	"github.com/comet-explain/comet/internal/ingest"
	"github.com/comet-explain/comet/internal/wire"
)

// fixtureELF is the committed ingestion fixture (see
// internal/ingest/testdata/regen.sh); it yields 7 deduplicated blocks.
const (
	fixtureELF    = "../ingest/testdata/fixture.elf"
	fixtureBlocks = 7
)

func readFixtureELF(t *testing.T) []byte {
	t.Helper()
	data, err := os.ReadFile(fixtureELF)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// uploadBinary POSTs a binary body to /v1/corpus and returns the response
// with its body read.
func uploadBinary(t *testing.T, base, query, contentType string, data []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/corpus"+query, contentType, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// uploadCorpus uploads a binary, expects acceptance, and polls the job to
// completion.
func uploadCorpus(t *testing.T, base, query, contentType string, data []byte) ([]wire.CorpusResult, wire.JobStatus) {
	t.Helper()
	resp, body := uploadBinary(t, base, query, contentType, data)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	var acc wire.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	return pollJob(t, base, acc.ID)
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestCorpusUploadRunsJob: a raw ELF upload is extracted server-side and
// runs through the ordinary async job pipeline, and the ingest counters
// land on /metrics.
func TestCorpusUploadRunsJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	results, st := uploadCorpus(t, ts.URL,
		"?model=uica&arch=hsw&seed=1&coverage=150", "application/x-elf", readFixtureELF(t))
	if st.State != wire.JobDone || st.Failed != 0 {
		t.Fatalf("job state %s, %d failed: %+v", st.State, st.Failed, st)
	}
	if len(results) != fixtureBlocks {
		t.Fatalf("got %d results, want %d", len(results), fixtureBlocks)
	}
	for _, r := range results {
		if r.Explanation == nil || r.Error != "" {
			t.Errorf("block %d (%q): missing explanation or error %q", r.Index, r.Block, r.Error)
		}
	}

	metrics := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		"comet_ingest_binaries_total 1",
		"comet_ingest_blocks_total 7",
		"comet_ingest_deduped_total 1",
		"comet_ingest_skipped_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCorpusUploadMultipart: the same binary arrives as the first file
// part of a multipart form.
func TestCorpusUploadMultipart(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("binary", "fixture.elf")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(readFixtureELF(t)); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}

	results, st := uploadCorpus(t, ts.URL,
		"?model=uica&seed=1&coverage=150", mw.FormDataContentType(), buf.Bytes())
	if st.State != wire.JobDone || len(results) != fixtureBlocks {
		t.Fatalf("state %s with %d results, want %s with %d", st.State, len(results), wire.JobDone, fixtureBlocks)
	}
}

// TestCorpusUploadMatchesJSONCorpus is the ingestion determinism
// contract: uploading a binary produces the same per-block explanations
// as extracting it client-side and submitting the blocks as a JSON
// corpus. Cache-warmth accounting (cache_hits/model_calls) is excluded —
// the second job on the same server runs against warm caches.
func TestCorpusUploadMatchesJSONCorpus(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := readFixtureELF(t)

	res, err := ingest.ExtractBytes(data, ingest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]string, len(res.Blocks))
	for i, b := range res.Blocks {
		blocks[i] = b.Text
	}

	jsonResults, jsonSt := submitCorpus(t, ts.URL, wire.CorpusRequest{
		Blocks: blocks, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	})
	upResults, upSt := uploadCorpus(t, ts.URL,
		"?model=uica&arch=hsw&seed=1&coverage=150", "application/x-elf", data)
	if jsonSt.State != wire.JobDone || upSt.State != wire.JobDone {
		t.Fatalf("job states: json %s, upload %s", jsonSt.State, upSt.State)
	}
	if len(jsonResults) != len(upResults) {
		t.Fatalf("result counts differ: json %d, upload %d", len(jsonResults), len(upResults))
	}
	for i := range jsonResults {
		a, b := jsonResults[i], upResults[i]
		if a.Explanation == nil || b.Explanation == nil {
			t.Fatalf("block %d missing explanation (json %v, upload %v)", i, a.Explanation, b.Explanation)
		}
		ae, be := *a.Explanation, *b.Explanation
		ae.CacheHits, ae.ModelCalls = 0, 0
		be.CacheHits, be.ModelCalls = 0, 0
		aj, _ := json.Marshal(ae)
		bj, _ := json.Marshal(be)
		if !bytes.Equal(aj, bj) {
			t.Errorf("block %d explanations differ:\n json %s\nupload %s", i, aj, bj)
		}
	}
}

// TestCorpusUploadTooLarge: bodies over MaxUploadBytes are refused with
// 413 and a wire.Error, and counted as rejected.
func TestCorpusUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxUploadBytes: 1024})
	resp, body := uploadBinary(t, ts.URL, "", "application/octet-stream", make([]byte, 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, body)
	}
	var werr wire.Error
	if err := json.Unmarshal(body, &werr); err != nil {
		t.Fatalf("413 body is not wire.Error JSON: %v (%s)", err, body)
	}
	if !strings.Contains(werr.Error, "max-upload-bytes") {
		t.Errorf("413 error %q does not mention -max-upload-bytes", werr.Error)
	}
	if !strings.Contains(fetchMetrics(t, ts.URL), "comet_ingest_rejected_total 1") {
		t.Error("metrics missing comet_ingest_rejected_total 1")
	}
}

// TestCorpusUploadBadELF: a binary body that is not an ELF is a 400, not
// a decode attempt.
func TestCorpusUploadBadELF(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := uploadBinary(t, ts.URL, "", "application/octet-stream",
		[]byte("this is not an ELF binary, just some text"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var werr wire.Error
	if err := json.Unmarshal(body, &werr); err != nil || werr.Error == "" {
		t.Fatalf("400 body is not wire.Error JSON: %s", body)
	}
}
