package service

import (
	"fmt"
	"net/http"
	"sort"

	"github.com/comet-explain/comet/internal/bitset"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// Warm restarts: with a durable store attached, a restarted server
// reloads the explanation result store and every persisted corpus job.
// Finished jobs go back into the pollable history under their original
// IDs; interrupted jobs (queued, running, or canceled mid-run by a
// drain) are re-enqueued and resume exactly where they stopped —
// restored results are replayed, the remaining blocks run under their
// original per-block seeds, and the union is bit-identical to an
// uninterrupted run.

// RestoreSummary reports what Restore reloaded from the durable store.
type RestoreSummary struct {
	// Explanations is the number of explanation artifacts rehydrated
	// into the in-memory result store (bounded by its capacity).
	Explanations int
	// JobsRestored counts finished jobs reloaded into the poll history.
	JobsRestored int
	// JobsResumed counts interrupted jobs re-enqueued for completion.
	JobsResumed int
	// JobsFailed counts jobs that could not be resumed (unparseable
	// envelope, unresolvable model spec, or a full queue); they land in
	// history in the failed state with the reason.
	JobsFailed int
}

// Restore reloads the server's warm state from its durable store. Call
// it once, after New and before serving traffic: resuming jobs resolves
// (and may train) their models, so it can take as long as a -preload.
// Without a store it is a no-op.
func (s *Server) Restore() (RestoreSummary, error) {
	var sum RestoreSummary
	if s.store == nil || !s.restored.CompareAndSwap(false, true) {
		return sum, nil
	}
	type jobAcc struct {
		env     *wire.JobEnvelope
		results map[int]wire.CorpusResult
	}
	jobs := make(map[string]*jobAcc)
	acc := func(id string) *jobAcc {
		a, ok := jobs[id]
		if !ok {
			a = &jobAcc{results: make(map[int]wire.CorpusResult)}
			jobs[id] = a
		}
		return a
	}
	err := s.store.Scan(func(rec *wire.Record) bool {
		switch rec.Kind {
		case wire.RecordExplanation:
			if rec.Explanation != nil {
				// Scan order is LRU→MRU, so the rehydrated result store
				// inherits the previous process's recency order. On-disk
				// keys are hex content IDs; unparseable ones are skipped.
				if id, ok := wire.ParseContentID(rec.Key); ok {
					s.results.put(id, newCachedExplanation(rec.Explanation))
					sum.Explanations++
				}
			}
		case wire.RecordJob:
			if rec.Job != nil {
				acc(rec.Job.ID).env = rec.Job
			}
		case wire.RecordJobResult:
			if rec.Result != nil {
				acc(rec.Result.JobID).results[rec.Result.Index] = rec.Result.CorpusResult
			}
		}
		return true
	})
	if err != nil {
		return sum, err
	}
	// Orphaned results (their envelope compacted away) are skipped;
	// envelopes restore in ID order so resumption is deterministic.
	ids := make([]string, 0, len(jobs))
	for id, a := range jobs {
		if a.env != nil {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		s.restoreJob(jobs[id].env, jobs[id].results, &sum)
	}
	return sum, nil
}

// restoreJob rebuilds one persisted job and either parks it in history
// (terminal) or re-enqueues it (interrupted).
func (s *Server) restoreJob(env *wire.JobEnvelope, results map[int]wire.CorpusResult, sum *RestoreSummary) {
	j := &job{
		id:        env.ID,
		texts:     env.Blocks,
		workers:   env.Workers,
		spec:      env.Spec,
		snapshot:  env.Config,
		fromStore: true,
	}
	fail := func(format string, args ...any) {
		j.state = wire.JobFailed
		j.err = fmt.Sprintf("restore: "+format, args...)
		// Persist the terminal state so the next restart doesn't pay the
		// (possibly expensive) resume attempt again.
		s.jobs.persistJob(j)
		s.jobs.history.put(j.id, j)
		sum.JobsFailed++
	}

	j.blocks = make([]*x86.BasicBlock, len(env.Blocks))
	for i, src := range env.Blocks {
		b, err := x86.ParseBlock(src)
		if err != nil {
			fail("block %d: %v", i, err)
			return
		}
		j.blocks[i] = b
	}

	// Replay persisted results in block-index order. (An uninterrupted
	// single-worker run completes in index order too, so a client that
	// kept its pagination offset across the restart re-reads nothing.)
	idxs := make([]int, 0, len(results))
	for i := range results {
		if i >= 0 && i < len(j.blocks) {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	j.restored = bitset.New(len(j.blocks))
	for _, i := range idxs {
		res := results[i]
		j.restored.Add(i)
		j.results = append(j.results, res)
		j.done++
		if res.Error != "" {
			j.failed++
		}
	}
	j.doneSet = j.restored.Clone()

	if j.done >= len(j.blocks) {
		// Every block persisted before the restart: terminal, straight
		// into the poll history under its original ID.
		if j.failed > 0 {
			j.state = wire.JobFailed
			j.err = fmt.Sprintf("%d of %d blocks failed", j.failed, len(j.blocks))
		} else {
			j.state = wire.JobDone
		}
		if env.State != j.state {
			s.jobs.persistJob(j) // settle the envelope's recorded state
		}
		s.jobs.history.put(j.id, j)
		sum.JobsRestored++
		return
	}

	if env.State == wire.JobFailed {
		// A previous restore already declared this job unresumable;
		// honor that instead of re-attempting (and re-paying) the
		// resume on every restart.
		j.state = wire.JobFailed
		j.err = env.Error
		s.jobs.history.put(j.id, j)
		sum.JobsRestored++
		return
	}

	// Interrupted: resolve the model (operator-trusted — the spec was
	// accepted and canonicalized before it was persisted) and resume.
	entry, err := s.models.get(env.Spec, "hsw", true)
	if err != nil {
		fail("resolving %s: %v", env.Spec, err)
		return
	}
	j.entry = entry
	j.cfg = env.Config.Apply(s.cfg.Base)
	if err := s.jobs.resubmit(j); err != nil {
		fail("re-enqueueing: %v", err)
		return
	}
	sum.JobsResumed++
}

// handleJobs serves GET /v1/jobs: every job the server knows — queued,
// running, finished (until history eviction), and jobs restored from the
// durable store after a restart — so resumed jobs are discoverable
// without the client having remembered their IDs.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, wire.JobsResponse{Jobs: s.jobs.list()})
}
