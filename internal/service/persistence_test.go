package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/persist"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

func openTestStore(t *testing.T, dir string) *persist.Log {
	t.Helper()
	log, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// startStoreServer builds a server over an open store, registering the
// counting model and restoring before traffic, like comet-serve does.
func startStoreServer(t *testing.T, store persist.Store, model *countingModel) (*Server, *httptest.Server, RestoreSummary) {
	t.Helper()
	s := New(Config{Store: store, JobCheckpointEvery: 1})
	s.RegisterModel("counting", x86.Haswell, model, 0)
	sum, err := s.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts, sum
}

// TestWarmRestartServesPersistedExplanations is the warm-restart
// acceptance path: a second process with the same store directory
// answers a repeat explain request byte-identically with zero model
// work.
func TestWarmRestartServesPersistedExplanations(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := wire.ExplainRequest{Block: testBlock, Model: "counting", Config: fastOverrides()}

	// Process 1: compute and persist.
	store1 := openTestStore(t, dir)
	model1 := &countingModel{inner: uica.New(x86.Haswell)}
	_, ts1, _ := startStoreServer(t, store1, model1)
	resp, body1 := postJSON(t, ts1.URL+"/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %d: %s", resp.StatusCode, body1)
	}
	if model1.calls.Load() == 0 {
		t.Fatal("first process computed nothing")
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process 2: fresh server, fresh model instance, same directory.
	store2 := openTestStore(t, dir)
	t.Cleanup(func() { store2.Close() })
	model2 := &countingModel{inner: uica.New(x86.Haswell)}
	s2, ts2, sum := startStoreServer(t, store2, model2)
	if sum.Explanations != 1 {
		t.Fatalf("restored %d explanations, want 1", sum.Explanations)
	}
	resp, body2 := postJSON(t, ts2.URL+"/v1/explain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain after restart: %d: %s", resp.StatusCode, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("restarted server served different bytes:\n%s\n%s", body1, body2)
	}
	if calls := model2.calls.Load(); calls != 0 {
		t.Errorf("restarted server cost %d model calls, want 0", calls)
	}
	if s2.metrics.resultStoreHits.Load() == 0 {
		t.Error("restored explanation did not hit the rehydrated result store")
	}

	// The store surfaces on /metrics.
	httpResp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(httpResp.Body)
	httpResp.Body.Close()
	for _, want := range []string{"comet_store_entries 1", "comet_store_puts_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPersistLookupWithoutRestore: even with a cold in-memory LRU (no
// Restore), an explain request falls through to the durable store.
func TestPersistLookupWithoutRestore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	req := wire.ExplainRequest{Block: testBlock, Model: "counting", Config: fastOverrides()}

	store1 := openTestStore(t, dir)
	model1 := &countingModel{inner: uica.New(x86.Haswell)}
	_, ts1, _ := startStoreServer(t, store1, model1)
	_, body1 := postJSON(t, ts1.URL+"/v1/explain", req)
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := openTestStore(t, dir)
	t.Cleanup(func() { store2.Close() })
	model2 := &countingModel{inner: uica.New(x86.Haswell)}
	s2 := New(Config{Store: store2}) // no Restore: LRU is cold
	s2.RegisterModel("counting", x86.Haswell, model2, 0)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)

	_, body2 := postJSON(t, ts2.URL+"/v1/explain", req)
	if !bytes.Equal(body1, body2) {
		t.Errorf("durable-store fallback served different bytes:\n%s\n%s", body1, body2)
	}
	if calls := model2.calls.Load(); calls != 0 {
		t.Errorf("fallback cost %d model calls, want 0", calls)
	}
	if s2.metrics.persistHits.Load() != 1 {
		t.Errorf("persist hits = %d, want 1", s2.metrics.persistHits.Load())
	}
}

// TestRestoredJobResumesWhereItStopped: a job persisted mid-run (its
// envelope plus one completed result) is re-enqueued on restore under
// its original ID; the restored result is served verbatim — never
// recomputed — and the remaining blocks are explained with their
// original per-block seeds, exactly as an uninterrupted run would have.
func TestRestoredJobResumesWhereItStopped(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	const jobID = "job-cafe0001-1"
	srcs := []string{
		testBlock,
		"imul rax, rbx\nimul rax, rcx",
		"add rax, rbx\nsub rcx, rdx\nxor rsi, rsi",
	}
	texts := make([]string, len(srcs))
	for i, src := range srcs {
		texts[i] = x86.MustParseBlock(src).String()
	}
	// The snapshot a counting-model job with fastOverrides would persist.
	snap := wire.ConfigSnapshot{
		Epsilon:            0.5,
		PrecisionThreshold: 0.7,
		CoverageSamples:    150,
		BatchSize:          64,
		Parallelism:        1,
		Seed:               1,
	}
	// Block 0's persisted result carries a marker prediction no
	// computation would produce: if it survives to the final results,
	// the restored record was served, not recomputed.
	marker := &wire.Explanation{Block: texts[0], Model: "counting", Prediction: 42}

	seed := openTestStore(t, dir)
	mustPut := func(rec *wire.Record) {
		t.Helper()
		if err := seed.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	mustPut(&wire.Record{V: wire.RecordVersion, Kind: wire.RecordJob, Key: persist.JobKey(jobID), Spec: "counting@hsw",
		Job: &wire.JobEnvelope{ID: jobID, State: wire.JobRunning, Spec: "counting@hsw", Blocks: texts, Config: snap, Workers: 1}})
	mustPut(&wire.Record{V: wire.RecordVersion, Kind: wire.RecordJobResult, Key: persist.JobResultKey(jobID, 0), Spec: "counting@hsw",
		Result: &wire.JobResult{JobID: jobID, CorpusResult: wire.CorpusResult{Index: 0, Block: texts[0], Explanation: marker}}})
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	store := openTestStore(t, dir)
	t.Cleanup(func() { store.Close() })
	model := &countingModel{inner: uica.New(x86.Haswell)}
	_, ts, sum := startStoreServer(t, store, model)
	if sum.JobsResumed != 1 {
		t.Fatalf("restore summary %+v, want exactly 1 resumed job", sum)
	}

	// The resumed job is pollable under its original, pre-restart ID and
	// discoverable in the jobs listing.
	var st wire.JobStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished: %+v", st)
		}
		r := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, jobID), &st)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("polling resumed job: status %d", r.StatusCode)
		}
		if st.State == wire.JobDone || st.State == wire.JobFailed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != wire.JobDone || st.Done != 3 || st.Failed != 0 || len(st.Results) != 3 {
		t.Fatalf("resumed job did not complete cleanly: %+v", st)
	}

	// Result 0 is the restored record, byte-for-byte.
	if st.Results[0].Index != 0 || st.Results[0].Explanation == nil || st.Results[0].Explanation.Prediction != 42 {
		t.Errorf("restored result was recomputed or reordered: %+v", st.Results[0])
	}

	// Blocks 1 and 2 were computed with their original per-block seeds:
	// identical to a direct library run at BlockSeed(1, i).
	byIndex := make(map[int]wire.CorpusResult)
	for _, r := range st.Results {
		byIndex[r.Index] = r
	}
	for _, i := range []int{1, 2} {
		res, ok := byIndex[i]
		if !ok || res.Explanation == nil {
			t.Fatalf("block %d missing from resumed results", i)
		}
		cfg := core.DefaultConfig()
		cfg.CoverageSamples = 150
		cfg.Parallelism = 1
		cfg.Seed = core.BlockSeed(1, i)
		ref, err := core.NewExplainer(uica.New(x86.Haswell), cfg).Explain(x86.MustParseBlock(srcs[i]))
		if err != nil {
			t.Fatal(err)
		}
		want := wire.FromExplanation(ref)
		if res.Explanation.Prediction != want.Prediction ||
			fmt.Sprint(res.Explanation.Features) != fmt.Sprint(want.Features) {
			t.Errorf("block %d: resumed explanation differs from the uninterrupted reference:\n got %+v\nwant %+v",
				i, res.Explanation, want)
		}
	}

	var list wire.JobsResponse
	if r := getJSON(t, ts.URL+"/v1/jobs", &list); r.StatusCode != http.StatusOK {
		t.Fatalf("jobs list: status %d", r.StatusCode)
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == jobID {
			found = true
			if !j.Restored || j.State != wire.JobDone || j.Done != 3 {
				t.Errorf("listed resumed job wrong: %+v", j)
			}
		}
	}
	if !found {
		t.Errorf("resumed job %s not in GET /v1/jobs: %+v", jobID, list.Jobs)
	}
}

// TestUnresumableJobFailsOnceAndStaysFailed: a persisted job whose model
// can no longer resolve is marked failed — durably, so the next restart
// does not re-pay the resume attempt or flip the job back to queued.
func TestUnresumableJobFailsOnceAndStaysFailed(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	const jobID = "job-dead0001-1"
	texts := []string{x86.MustParseBlock(testBlock).String()}

	seed := openTestStore(t, dir)
	err := seed.Put(&wire.Record{V: wire.RecordVersion, Kind: wire.RecordJob, Key: persist.JobKey(jobID), Spec: "ghost@hsw",
		Job: &wire.JobEnvelope{ID: jobID, State: wire.JobRunning, Spec: "ghost@hsw", Blocks: texts,
			Config: wire.ConfigSnapshot{Epsilon: 0.5, PrecisionThreshold: 0.7, CoverageSamples: 150, BatchSize: 64, Parallelism: 1, Seed: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: the unknown spec fails the resume; the failure is
	// persisted.
	store1 := openTestStore(t, dir)
	s1 := New(Config{Store: store1})
	sum, err := s1.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if sum.JobsFailed != 1 || sum.JobsResumed != 0 {
		t.Fatalf("restart 1 summary %+v, want 1 failed", sum)
	}
	j, ok := s1.jobs.get(jobID)
	if !ok || j.summary().State != wire.JobFailed {
		t.Fatalf("job not parked as failed: %v %+v", ok, j)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: the persisted failed envelope is honored — no second
	// resume attempt, same terminal state.
	store2 := openTestStore(t, dir)
	t.Cleanup(func() { store2.Close() })
	s2 := New(Config{Store: store2})
	sum2, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if sum2.JobsFailed != 0 || sum2.JobsResumed != 0 || sum2.JobsRestored != 1 {
		t.Fatalf("restart 2 summary %+v, want 1 restored (terminal) and nothing re-attempted", sum2)
	}
	j2, ok := s2.jobs.get(jobID)
	if !ok || j2.summary().State != wire.JobFailed {
		t.Fatalf("failed job did not stay failed across restarts: %v %+v", ok, j2)
	}
}

// TestJobsListEndpoint: GET /v1/jobs enumerates submitted jobs with
// their states.
func TestJobsListEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.CorpusRequest{Blocks: []string{testBlock}, Model: "uica", Config: fastOverrides()}
	_, st1 := submitCorpus(t, ts.URL, req)
	_, st2 := submitCorpus(t, ts.URL, req)

	var list wire.JobsResponse
	if r := getJSON(t, ts.URL+"/v1/jobs", &list); r.StatusCode != http.StatusOK {
		t.Fatalf("jobs list: status %d", r.StatusCode)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("listed %d jobs, want 2: %+v", len(list.Jobs), list.Jobs)
	}
	for i := 1; i < len(list.Jobs); i++ {
		if list.Jobs[i-1].ID >= list.Jobs[i].ID {
			t.Errorf("jobs not sorted by ID: %+v", list.Jobs)
		}
	}
	seen := map[string]bool{}
	for _, j := range list.Jobs {
		seen[j.ID] = true
		if j.State != wire.JobDone || j.Total != 1 || j.Done != 1 || j.Restored {
			t.Errorf("job summary wrong: %+v", j)
		}
	}
	if !seen[st1.ID] || !seen[st2.ID] {
		t.Errorf("listing %v missing submitted jobs %s / %s", list.Jobs, st1.ID, st2.ID)
	}

	if resp, _ := postJSON(t, ts.URL+"/v1/jobs", struct{}{}); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/jobs: status %d, want 405", resp.StatusCode)
	}
}
