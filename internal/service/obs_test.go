package service

// Observability tests: Prometheus exposition well-formedness, the
// /debug/traces surface, ?profile=1, and goroutine hygiene after
// shutdown.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseLabels splits a rendered label body (`k1="v1",k2="v2"`) into
// pairs, honoring \" escapes inside values. It returns an error for
// anything the Prometheus text format would reject.
func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", body)
		}
		name := body[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Errorf("duplicate label %q", name)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", name)
		}
		i := 1
		for ; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				break
			}
		}
		if i >= len(rest) {
			return nil, fmt.Errorf("label %q value is unterminated", name)
		}
		labels[name] = rest[1:i]
		body = rest[i+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
			if body == "" {
				return nil, fmt.Errorf("trailing comma after label %q", name)
			}
		} else if body != "" {
			return nil, fmt.Errorf("junk %q after label %q", body, name)
		}
	}
	return labels, nil
}

// checkExposition validates a full Prometheus text exposition: every
// line is a HELP/TYPE comment or a sample; HELP and TYPE for a family
// precede its samples; metric and label names are legal; histogram
// suffixes only appear under histogram-typed families; no series
// (name + label set) repeats; every value parses.
func checkExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{} // family -> declared type
	helped := map[string]bool{}  // family -> HELP seen
	sampled := map[string]bool{} // family -> first sample seen
	series := map[string]bool{}  // name + sorted labels -> seen
	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || fields[0] != "#" || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("line %d: comment is neither HELP nor TYPE: %q", lineNo, line)
				continue
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: bad metric name %q", lineNo, name)
				continue
			}
			if sampled[name] {
				t.Errorf("line %d: %s for %q after its samples", lineNo, fields[1], name)
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					t.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helped[name] = true
			case "TYPE":
				if _, dup := types[name]; dup {
					t.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					types[name] = fields[3]
				default:
					t.Errorf("line %d: unknown TYPE %q for %q", lineNo, fields[3], name)
				}
			}
			continue
		}

		// Sample line: name[{labels}] value
		name := line
		labelBody := ""
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Errorf("line %d: unbalanced braces: %q", lineNo, line)
				continue
			}
			name = line[:i]
			labelBody = line[i+1 : j]
			rest = line[j+1:]
		} else if sp := strings.IndexAny(line, " \t"); sp >= 0 {
			name = line[:sp]
			rest = line[sp:]
		}
		fields := strings.Fields(rest)
		if !metricNameRe.MatchString(name) {
			t.Errorf("line %d: bad sample name %q", lineNo, name)
			continue
		}
		if len(fields) != 1 {
			t.Errorf("line %d: want exactly one value after %q, got %v", lineNo, name, fields)
			continue
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			t.Errorf("line %d: value %q does not parse: %v", lineNo, fields[0], err)
		}
		labels, err := parseLabels(labelBody)
		if err != nil {
			t.Errorf("line %d: %v", lineNo, err)
			continue
		}

		// Resolve the family: histogram samples use _bucket/_sum/_count.
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		typ, declared := types[family]
		if !declared {
			t.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if typ == "histogram" && name == family {
			t.Errorf("line %d: histogram %q sampled without _bucket/_sum/_count", lineNo, name)
		}
		sampled[family] = true

		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var id strings.Builder
		id.WriteString(name)
		for _, k := range keys {
			fmt.Fprintf(&id, "|%s=%s", k, labels[k])
		}
		if series[id.String()] {
			t.Errorf("line %d: duplicate series %q", lineNo, id.String())
		}
		series[id.String()] = true
	}
	return types
}

// TestMetricsExpositionWellFormed exercises enough of the server to
// populate counters, latency histograms, per-spec explanation
// histograms, and gauges, then validates every line of /metrics.
func TestMetricsExpositionWellFormed(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{
		Model: "uica", Arch: "hsw", Blocks: []string{testBlock},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/healthz", nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	types := checkExposition(t, string(body))

	// The families this PR's satellites promise must actually be there.
	for family, typ := range map[string]string{
		"comet_requests_total":                       "counter",
		"comet_request_seconds":                      "histogram",
		"comet_explanation_seconds":                  "histogram",
		"comet_explanation_precision":                "histogram",
		"comet_explanation_coverage":                 "histogram",
		"comet_explanation_queries":                  "histogram",
		"comet_explanation_epsilon_violations_total": "counter",
		"comet_explanation_quality_samples_total":    "counter",
		"comet_build_info":                           "gauge",
		"comet_goroutines":                           "gauge",
		"comet_heap_bytes":                           "gauge",
		"comet_gc_pause_seconds_total":               "gauge",
	} {
		if types[family] != typ {
			t.Errorf("family %s: declared type %q, want %q", family, types[family], typ)
		}
	}
	if !strings.Contains(string(body), `comet_explanation_seconds_count{spec="uica@hsw"}`) {
		t.Errorf("per-spec explanation histogram missing:\n%s", body)
	}
}

// TestDebugTraces drives one force-traced explain request end to end
// and reads its spans back from /debug/traces.
func TestDebugTraces(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	raw, _ := json.Marshal(wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	})
	resp, err := http.Post(ts.URL+"/v1/explain?trace=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Comet-Trace-Id")
	if traceID == "" {
		t.Fatal("forced trace returned no X-Comet-Trace-Id header")
	}

	// The root span ends after the response is written; poll briefly.
	var spans []obs.SpanRecord
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got struct {
			Spans []obs.SpanRecord `json:"spans"`
		}
		resp := getJSON(t, ts.URL+"/debug/traces/"+traceID, &got)
		if resp.StatusCode == http.StatusOK && len(got.Spans) > 0 {
			spans = got.Spans
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared in /debug/traces", traceID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	names := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID != traceID {
			t.Errorf("span %s has trace %s, want %s", sp.Name, sp.TraceID, traceID)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"http.explain", "svc.compute", "core.search"} {
		if !names[want] {
			t.Errorf("trace %s is missing span %q (have %v)", traceID, want, names)
		}
	}

	// The trace also shows up in the listing.
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	getJSON(t, ts.URL+"/debug/traces", &listing)
	found := false
	for _, tr := range listing.Traces {
		if tr.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s not in /debug/traces listing", traceID)
	}
}

// TestExplainProfileParam asserts ?profile=1 attaches a stage profile
// without perturbing the plain response (which must stay byte-identical
// across cache tiers; see negotiate.go).
func TestExplainProfileParam(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := wire.ExplainRequest{Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides()}

	_, plain := postJSON(t, ts.URL+"/v1/explain", req)

	raw, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/explain?profile=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var with wire.Explanation
	if err := json.Unmarshal(profiled, &with); err != nil {
		t.Fatal(err)
	}
	if with.Profile == nil {
		t.Fatalf("?profile=1 response has no profile: %s", profiled)
	}
	// This request hit a serving tier (the first request computed), so
	// the source says which one; either way it must be non-empty.
	if with.Profile.Source == "" {
		t.Error("profile.source is empty")
	}

	// The plain response is unchanged by profiled requests before or
	// after it: no profile key, same bytes.
	_, plain2 := postJSON(t, ts.URL+"/v1/explain", req)
	if !bytes.Equal(plain, plain2) {
		t.Errorf("plain explain response changed after ?profile=1:\n before %s\n after %s", plain, plain2)
	}
	if bytes.Contains(plain2, []byte(`"profile"`)) {
		t.Errorf("plain explain response leaked a profile: %s", plain2)
	}
}

// TestShutdownLeavesNoServiceGoroutines asserts that closing the server
// reaps every goroutine the service spawned — job workers, cluster
// heartbeats, span bookkeeping — so embedding processes don't leak.
func TestShutdownLeavesNoServiceGoroutines(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())

	if resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	var jobResp wire.JobAccepted
	if resp, body := postJSON(t, ts.URL+"/v1/corpus", wire.CorpusRequest{
		Blocks: []string{testBlock}, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("corpus: status %d: %s", resp.StatusCode, body)
	} else if err := json.Unmarshal(body, &jobResp); err != nil {
		t.Fatal(err)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked := serviceGoroutines()
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines still running after shutdown:\n%s", strings.Join(leaked, "\n\n"))
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// serviceGoroutines returns the stacks of goroutines still inside this
// module, excluding test-runner goroutines (whose stacks bottom out in
// testing.tRunner) and this caller.
func serviceGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "comet-explain/comet/internal/") {
			continue
		}
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "serviceGoroutines") {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}
