package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/comet-explain/comet/internal/bitset"
	"github.com/comet-explain/comet/internal/cluster"
	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/persist"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// errQueueFull signals job-queue backpressure; the handler maps it to 429.
var errQueueFull = errors.New("job queue full")

// errDraining signals shutdown; the handler maps it to 503.
var errDraining = errors.New("server is shutting down")

// job is one asynchronous corpus-explanation run. Results accumulate in
// completion order (they only ever append, never reorder), which is what
// makes offset-based polling of GET /v1/jobs/{id} race-free: a client that
// resumes from next_offset never misses or re-reads a result. Each result
// carries its corpus block index for reassembly in input order.
//
// With a durable store attached, the job's envelope (inputs, spec,
// effective config) is persisted on every state transition and each
// completed block appends a result record, so a killed process resumes
// the job on restart: restored results are replayed into the results
// slice and ExplainAll skips their indices. Per-block seeds depend only
// on the block index, so the resumed union is identical to an
// uninterrupted run.
type job struct {
	id      string
	blocks  []*x86.BasicBlock
	texts   []string // canonical block texts (persisted envelope; built lazily)
	entry   *modelEntry
	cfg     core.Config
	workers int
	// spec and snapshot are the job's persistence identity: the
	// canonical model spec and the effective explanation configuration.
	spec     string
	snapshot wire.ConfigSnapshot
	// restored marks block indices whose results were reloaded from the
	// durable store; fromStore marks the job as surviving a restart.
	restored  *bitset.Set
	fromStore bool
	// streamOnly jobs deliver results through GET /v1/jobs/{id}/stream
	// and retain only the last ringCap results for catch-up reads, so a
	// million-block corpus never buffers its full result set.
	streamOnly bool
	ringCap    int
	// trace is the span context of the accepting POST /v1/corpus request;
	// the job's async execution resumes it, so submission, execution, and
	// every worker lease share one trace ID. Zero for restored jobs (their
	// originating request died with the previous process).
	trace obs.SpanContext

	mu      sync.Mutex
	state   string
	done    int
	failed  int
	err     string
	results []wire.CorpusResult
	// trimmed counts results evicted from the front of the slice by the
	// stream ring; the stream sequence number of results[i] is trimmed+i.
	trimmed int
	// doneSet tracks every block index that has a result (restored ones
	// included) — a bitset, because a map[int]bool over a million indices
	// costs tens of megabytes.
	doneSet *bitset.Set
	// notify wakes stream readers on every append and state change;
	// created lazily by the first waiter or appender that needs it.
	notify *sync.Cond
	// workerDone attributes completed blocks to the cluster workers that
	// produced them ("local" for coordinator-fallback blocks); nil for
	// plain single-node jobs.
	workerDone map[string]int
	// Quality aggregates, accumulated from every appended result's
	// explanation (local and cluster alike — the wire fields survive the
	// shard hop) and emitted on the "job finished" log line.
	qPrecisionSum float64
	qPrecisionMin float64
	qCoverageSum  float64
	qQueries      int64
	qViolations   int
	qCount        int
}

// appendResult records one completed block: counters, the done bitset,
// the (possibly ring-bounded) results slice, worker attribution, and a
// stream wakeup.
func (j *job) appendResult(res wire.CorpusResult, worker string) {
	j.mu.Lock()
	j.done++
	if res.Error != "" {
		j.failed++
	}
	if j.doneSet == nil {
		j.doneSet = bitset.New(len(j.blocks))
	}
	j.doneSet.Add(res.Index)
	if e := res.Explanation; e != nil {
		if j.qCount == 0 || e.Precision < j.qPrecisionMin {
			j.qPrecisionMin = e.Precision
		}
		j.qPrecisionSum += e.Precision
		j.qCoverageSum += e.Coverage
		j.qQueries += int64(e.Queries)
		if !e.Certified {
			j.qViolations++
		}
		j.qCount++
	}
	j.results = append(j.results, res)
	if j.streamOnly && j.ringCap > 0 && len(j.results) > j.ringCap {
		// Drop the oldest half in one move — amortized O(1) per result.
		// Stream readers that far behind get a lag error, not a stall.
		drop := len(j.results) - j.ringCap/2
		if drop < 1 {
			drop = 1
		}
		n := copy(j.results, j.results[drop:])
		tail := j.results[n:]
		for i := range tail {
			tail[i] = wire.CorpusResult{} // release for GC
		}
		j.results = j.results[:n]
		j.trimmed += drop
	}
	if worker != "" {
		if j.workerDone == nil {
			j.workerDone = make(map[string]int)
		}
		j.workerDone[worker]++
	}
	if j.notify != nil {
		j.notify.Broadcast()
	}
	j.mu.Unlock()
}

// wake broadcasts to stream readers (used on state transitions and by
// disconnect watchers).
func (j *job) wake() {
	j.mu.Lock()
	if j.notify != nil {
		j.notify.Broadcast()
	}
	j.mu.Unlock()
}

// blockTexts returns (building once, under the job lock) the canonical
// block texts — the persistence envelope's and the shard protocol's view
// of the corpus.
func (j *job) blockTexts() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.texts == nil {
		j.texts = make([]string, len(j.blocks))
		for i, b := range j.blocks {
			j.texts[i] = b.String()
		}
	}
	return j.texts
}

// status snapshots the job with results[offset:offset+limit]. Stream
// jobs carry no result pages (the ring is the stream's catch-up buffer,
// not a stable pagination window); their counters still report progress.
func (j *job) status(offset, limit int) wire.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	var page []wire.CorpusResult
	end := offset
	if !j.streamOnly {
		if offset < 0 {
			offset = 0
		}
		if offset > len(j.results) {
			offset = len(j.results)
		}
		end = len(j.results)
		if limit > 0 && offset+limit < end {
			end = offset + limit
		}
		page = make([]wire.CorpusResult, end-offset)
		copy(page, j.results[offset:end])
	}
	var workers []wire.WorkerBlocks
	if len(j.workerDone) > 0 {
		ids := make([]string, 0, len(j.workerDone))
		for id := range j.workerDone {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		workers = make([]wire.WorkerBlocks, len(ids))
		for i, id := range ids {
			workers[i] = wire.WorkerBlocks{Worker: id, Blocks: j.workerDone[id]}
		}
	}
	return wire.JobStatus{
		ID:           j.id,
		State:        j.state,
		Total:        len(j.blocks),
		Done:         j.done,
		Failed:       j.failed,
		BlocksTotal:  len(j.blocks),
		BlocksDone:   j.done,
		BlocksFailed: j.failed,
		Error:        j.err,
		Workers:      workers,
		Offset:       offset,
		NextOffset:   end,
		Results:      page,
	}
}

// summary snapshots the job for GET /v1/jobs.
func (j *job) summary() wire.JobSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.summaryLocked()
}

// summaryLocked is summary with j.mu already held.
func (j *job) summaryLocked() wire.JobSummary {
	return wire.JobSummary{
		ID:       j.id,
		State:    j.state,
		Total:    len(j.blocks),
		Done:     j.done,
		Failed:   j.failed,
		Error:    j.err,
		Restored: j.fromStore,
	}
}

// jobManager owns the bounded job queue, the job workers, and the LRU
// history of finished jobs. With a store attached it also checkpoints
// every job's envelope and completed results.
type jobManager struct {
	queue   chan *job
	history *lruStore[string, *job]
	active  sync.Map // id → *job, for jobs not yet in (or evicted from) history
	ctx     context.Context
	wg      sync.WaitGroup
	// closeMu serializes queue sends against the one-time close in
	// shutdown: submissions hold the read side, so a send can never hit a
	// closed channel.
	closeMu  sync.RWMutex
	draining bool
	seq      atomic.Uint64
	instance string // random per-process tag so job IDs don't collide across restarts

	// store, when non-nil, receives job envelopes and per-block results;
	// checkpointEvery is the fsync cadence in completed blocks, and
	// storeErr counts (never fails on) persistence errors.
	store           persist.Store
	checkpointEvery int
	storeErr        func(error)

	// cluster, when non-nil, is the coordinator jobs shard through; the
	// local engine remains the fallback when no worker is ready, so a
	// coordinator with an empty (or dead) pool degrades to a single node
	// instead of stalling. Determinism makes the two paths emit
	// identical bytes.
	cluster *cluster.Coordinator

	// tracer, log, metrics, and flight are injected by the server; all
	// are optional (nil tracer records nothing, nil log stays silent, a
	// nil flight recorder drops records).
	tracer  *obs.Tracer
	log     *slog.Logger
	metrics *metrics
	flight  *obs.FlightRecorder

	queued  atomic.Int64 // jobs waiting in the queue
	running atomic.Int64 // jobs currently executing
}

func newJobManager(ctx context.Context, workers, queueDepth, historySize, checkpointEvery int, store persist.Store, storeErr func(error)) *jobManager {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 16
	}
	if historySize < 1 {
		historySize = 64
	}
	if checkpointEvery < 1 {
		checkpointEvery = 16
	}
	if storeErr == nil {
		storeErr = func(error) {}
	}
	tag := make([]byte, 4)
	if _, err := rand.Read(tag); err != nil {
		// Fall back to a fixed tag; IDs stay unique within the process
		// through the sequence number.
		copy(tag, []byte{0xc0, 0x3e, 0x70, 0x01})
	}
	m := &jobManager{
		queue:           make(chan *job, queueDepth),
		history:         newLRUStore[string, *job](historySize),
		ctx:             ctx,
		instance:        hex.EncodeToString(tag),
		store:           store,
		checkpointEvery: checkpointEvery,
		storeErr:        storeErr,
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.queued.Add(-1)
				m.run(j)
			}
		}()
	}
	return m
}

// submit enqueues a job, failing fast with errQueueFull when the bounded
// queue is at capacity (the HTTP layer turns that into 429 backpressure).
func (m *jobManager) submit(j *job) error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.draining {
		return errDraining
	}
	j.id = fmt.Sprintf("job-%s-%d", m.instance, m.seq.Add(1))
	j.state = wire.JobQueued
	return m.enqueue(j)
}

// resubmit re-enqueues a job restored from the durable store under its
// persisted ID (clients keep polling the ID they were given before the
// restart).
func (m *jobManager) resubmit(j *job) error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.draining {
		return errDraining
	}
	j.state = wire.JobQueued
	return m.enqueue(j)
}

// enqueue performs the bounded send and, on success, persists the queued
// envelope. Caller holds closeMu.RLock.
func (m *jobManager) enqueue(j *job) error {
	m.active.Store(j.id, j)
	select {
	case m.queue <- j:
		m.queued.Add(1)
		m.flightJob(j, wire.JobQueued)
		m.persistJob(j)
		return nil
	default:
		m.active.Delete(j.id)
		return errQueueFull
	}
}

// flightJob records one job state transition in the flight recorder —
// every queue/run/terminal transition leaves a black-box entry whether
// or not the job's trace is sampled.
func (m *jobManager) flightJob(j *job, state string) {
	m.flight.Record(obs.FlightRecord{
		Kind:  obs.FlightJob,
		ID:    j.id,
		State: state,
		Spec:  j.spec,
		Trace: j.trace.Trace,
	})
}

// get finds a job by ID, live or in history.
func (m *jobManager) get(id string) (*job, bool) {
	if v, ok := m.active.Load(id); ok {
		return v.(*job), true
	}
	return m.history.get(id)
}

// list snapshots every known job — queued, running, and retained
// history — sorted by ID.
func (m *jobManager) list() []wire.JobSummary {
	seen := make(map[string]bool)
	var out []wire.JobSummary
	m.active.Range(func(_, v any) bool {
		j := v.(*job)
		if !seen[j.id] {
			seen[j.id] = true
			out = append(out, j.summary())
		}
		return true
	})
	for _, j := range m.history.values() {
		if !seen[j.id] {
			seen[j.id] = true
			out = append(out, j.summary())
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// run executes one corpus job through the shared explanation engine.
func (m *jobManager) run(j *job) {
	m.running.Add(1)
	defer m.running.Add(-1)

	// Resume the trace of the request that submitted the job: the
	// accepting span ended when the 202 was written, and this span picks
	// the trace back up for the async half. Everything the job does —
	// local explanation stages, cluster lease dispatches, worker-side
	// shard handling — parents under it.
	start := time.Now()
	ctx, span := m.tracer.Resume(m.ctx, "job.run", j.trace)
	span.Set("job_id", j.id)
	defer func() {
		j.mu.Lock()
		state, done, failed := j.state, j.done, j.failed
		qCount, qViolations, qQueries := j.qCount, j.qViolations, j.qQueries
		qPrecSum, qPrecMin, qCovSum := j.qPrecisionSum, j.qPrecisionMin, j.qCoverageSum
		j.mu.Unlock()
		span.Set("state", state)
		span.SetInt("done", int64(done))
		span.SetInt("failed", int64(failed))
		span.End()
		m.flightJob(j, state)
		if m.log != nil {
			attrs := []slog.Attr{
				slog.String("job_id", j.id),
				slog.String("spec", j.spec),
				slog.String("state", state),
				slog.Int("done", done),
				slog.Int("failed", failed),
				slog.Duration("elapsed", time.Since(start)),
				obs.TraceAttr(j.trace.Trace),
			}
			// Quality aggregates: how good the explanations this job
			// produced actually were, visible without scraping /metrics.
			if qCount > 0 {
				attrs = append(attrs,
					slog.Float64("precision_mean", qPrecSum/float64(qCount)),
					slog.Float64("precision_min", qPrecMin),
					slog.Float64("coverage_mean", qCovSum/float64(qCount)),
					slog.Int64("queries_total", qQueries),
					slog.Int("epsilon_violations", qViolations))
			}
			m.log.LogAttrs(context.Background(), slog.LevelInfo, "job finished", attrs...)
		}
	}()

	j.mu.Lock()
	if m.ctx.Err() != nil {
		j.state = wire.JobCanceled
		j.err = "canceled during shutdown"
		if j.notify != nil {
			j.notify.Broadcast()
		}
		j.mu.Unlock()
		m.persistJob(j)
		m.finish(j)
		return
	}
	j.state = wire.JobRunning
	j.mu.Unlock()
	m.flightJob(j, wire.JobRunning)
	m.persistJob(j)

	// Coordinator mode: shard the job across the cluster. Any dispatch
	// shortfall — no ready workers, leases abandoned after retries —
	// leaves the affected blocks unemitted, and the local engine below
	// finishes exactly those; per-block seeding makes the mixed run
	// byte-identical to either pure path. Only shutdown ends the job
	// with blocks missing.
	if m.cluster != nil {
		err := m.runCluster(ctx, j)
		if err == nil || m.ctx.Err() != nil {
			m.finalize(j)
			return
		}
	}

	// Resume support (and cluster fallback): indices restored from the
	// store — or already emitted by a partial cluster run — are never
	// re-fed to a worker. Their results are already in j.results, and
	// because every block runs under BlockSeed(cfg.Seed, index), the
	// blocks that do run produce exactly what an uninterrupted run would
	// have.
	skip := j.doneIndices()

	explainer := core.NewExplainerWithCache(j.entry.model, j.cfg, j.entry.cache)
	completed := 0
	worker := ""
	if m.cluster != nil {
		worker = "local"
	}
	for res := range explainer.ExplainAll(j.blocks, core.CorpusOptions{
		Workers: j.workers,
		Context: ctx,
		Skip:    skip.Has,
	}) {
		if res.Explanation != nil && m.metrics != nil {
			if res.Explanation.Profile != nil {
				m.metrics.observeExplanation(j.spec, res.Explanation.Profile.Total.Seconds())
			}
			m.metrics.observeQuality(j.spec, res.Explanation.Precision,
				res.Explanation.Coverage, res.Explanation.Queries, res.Explanation.Certified)
		}
		wres := wire.FromCorpusResult(res)
		j.appendResult(wres, worker)
		// Each result is one all-or-nothing store append (survives
		// SIGKILL); the periodic Sync is the power-loss checkpoint.
		m.persistResult(j, wres)
		completed++
		if m.store != nil && completed%m.checkpointEvery == 0 {
			if err := m.store.Sync(); err != nil {
				m.storeErr(err)
			}
		}
	}

	m.finalize(j)
}

// finalize settles a job's terminal state, persists it, and moves it to
// history.
func (m *jobManager) finalize(j *job) {
	j.mu.Lock()
	switch {
	case j.done < len(j.blocks):
		j.state = wire.JobCanceled
		j.err = "canceled during shutdown"
	case j.failed > 0:
		j.state = wire.JobFailed
		j.err = fmt.Sprintf("%d of %d blocks failed", j.failed, len(j.blocks))
	default:
		j.state = wire.JobDone
	}
	if j.notify != nil {
		j.notify.Broadcast()
	}
	j.mu.Unlock()
	m.persistJob(j)
	if m.store != nil {
		if err := m.store.Sync(); err != nil {
			m.storeErr(err)
		}
	}
	m.finish(j)
}

// doneIndices snapshots the block indices that already have results —
// restored from the store or emitted by a partial cluster run — for the
// local engine's Skip hook.
func (j *job) doneIndices() *bitset.Set {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.doneSet.Clone()
}

// persistJob writes the job's envelope (inputs + current state) to the
// durable store, superseding the previous envelope record.
func (m *jobManager) persistJob(j *job) {
	if m.store == nil {
		return
	}
	texts := j.blockTexts()
	j.mu.Lock()
	env := &wire.JobEnvelope{
		ID:      j.id,
		State:   j.state,
		Spec:    j.spec,
		Blocks:  texts,
		Config:  j.snapshot,
		Workers: j.workers,
		Error:   j.err,
	}
	j.mu.Unlock()
	err := m.store.Put(&wire.Record{
		V:    wire.RecordVersion,
		Kind: wire.RecordJob,
		Key:  persist.JobKey(j.id),
		Spec: j.spec,
		Job:  env,
	})
	if err != nil {
		m.storeErr(err)
	}
}

// persistResult appends one completed block's result to the durable
// store.
func (m *jobManager) persistResult(j *job, res wire.CorpusResult) {
	if m.store == nil {
		return
	}
	err := m.store.Put(&wire.Record{
		V:      wire.RecordVersion,
		Kind:   wire.RecordJobResult,
		Key:    persist.JobResultKey(j.id, res.Index),
		Spec:   j.spec,
		Result: &wire.JobResult{JobID: j.id, CorpusResult: res},
	})
	if err != nil {
		m.storeErr(err)
	}
}

// finish moves a terminal job into the LRU history, where it survives
// polling until evicted by capacity.
func (m *jobManager) finish(j *job) {
	m.history.put(j.id, j)
	m.active.Delete(j.id)
}

// shutdown stops accepting jobs, marks still-queued jobs canceled, and
// waits (up to ctx) for running jobs to wind down. The manager's own
// context — canceled by the server before calling shutdown — makes running
// jobs skip their remaining blocks. With a store attached, interrupted
// jobs persist in a resumable state: the next process's Restore picks
// them up where they stopped.
func (m *jobManager) shutdown(ctx context.Context) error {
	m.closeMu.Lock()
	if m.draining {
		m.closeMu.Unlock()
		return nil
	}
	m.draining = true
	close(m.queue)
	m.closeMu.Unlock()
	waited := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(waited)
	}()
	select {
	case <-waited:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// gauges reports queue and job-state metrics.
func (m *jobManager) gauges() []gauge {
	return []gauge{
		{name: "comet_job_queue_depth", value: float64(m.queued.Load())},
		{name: "comet_jobs_running", value: float64(m.running.Load())},
		{name: "comet_jobs_finished", value: float64(m.history.len())},
	}
}
