package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// errQueueFull signals job-queue backpressure; the handler maps it to 429.
var errQueueFull = errors.New("job queue full")

// errDraining signals shutdown; the handler maps it to 503.
var errDraining = errors.New("server is shutting down")

// job is one asynchronous corpus-explanation run. Results accumulate in
// completion order (they only ever append, never reorder), which is what
// makes offset-based polling of GET /v1/jobs/{id} race-free: a client that
// resumes from next_offset never misses or re-reads a result. Each result
// carries its corpus block index for reassembly in input order.
type job struct {
	id      string
	blocks  []*x86.BasicBlock
	entry   *modelEntry
	cfg     core.Config
	workers int

	mu      sync.Mutex
	state   string
	done    int
	failed  int
	err     string
	results []wire.CorpusResult
}

// status snapshots the job with results[offset:offset+limit].
func (j *job) status(offset, limit int) wire.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset > len(j.results) {
		offset = len(j.results)
	}
	end := len(j.results)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	page := make([]wire.CorpusResult, end-offset)
	copy(page, j.results[offset:end])
	return wire.JobStatus{
		ID:         j.id,
		State:      j.state,
		Total:      len(j.blocks),
		Done:       j.done,
		Failed:     j.failed,
		Error:      j.err,
		Offset:     offset,
		NextOffset: end,
		Results:    page,
	}
}

// jobManager owns the bounded job queue, the job workers, and the LRU
// history of finished jobs.
type jobManager struct {
	queue   chan *job
	history *lruStore[*job]
	active  sync.Map // id → *job, for jobs not yet in (or evicted from) history
	ctx     context.Context
	wg      sync.WaitGroup
	// closeMu serializes queue sends against the one-time close in
	// shutdown: submissions hold the read side, so a send can never hit a
	// closed channel.
	closeMu  sync.RWMutex
	draining bool
	seq      atomic.Uint64
	instance string // random per-process tag so job IDs don't collide across restarts

	queued  atomic.Int64 // jobs waiting in the queue
	running atomic.Int64 // jobs currently executing
}

func newJobManager(ctx context.Context, workers, queueDepth, historySize int) *jobManager {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 16
	}
	if historySize < 1 {
		historySize = 64
	}
	tag := make([]byte, 4)
	if _, err := rand.Read(tag); err != nil {
		// Fall back to a fixed tag; IDs stay unique within the process
		// through the sequence number.
		copy(tag, []byte{0xc0, 0x3e, 0x70, 0x01})
	}
	m := &jobManager{
		queue:    make(chan *job, queueDepth),
		history:  newLRUStore[*job](historySize),
		ctx:      ctx,
		instance: hex.EncodeToString(tag),
	}
	for w := 0; w < workers; w++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for j := range m.queue {
				m.queued.Add(-1)
				m.run(j)
			}
		}()
	}
	return m
}

// submit enqueues a job, failing fast with errQueueFull when the bounded
// queue is at capacity (the HTTP layer turns that into 429 backpressure).
func (m *jobManager) submit(j *job) error {
	m.closeMu.RLock()
	defer m.closeMu.RUnlock()
	if m.draining {
		return errDraining
	}
	j.id = fmt.Sprintf("job-%s-%d", m.instance, m.seq.Add(1))
	j.state = wire.JobQueued
	m.active.Store(j.id, j)
	select {
	case m.queue <- j:
		m.queued.Add(1)
		return nil
	default:
		m.active.Delete(j.id)
		return errQueueFull
	}
}

// get finds a job by ID, live or in history.
func (m *jobManager) get(id string) (*job, bool) {
	if v, ok := m.active.Load(id); ok {
		return v.(*job), true
	}
	return m.history.get(id)
}

// run executes one corpus job through the shared explanation engine.
func (m *jobManager) run(j *job) {
	m.running.Add(1)
	defer m.running.Add(-1)

	j.mu.Lock()
	if m.ctx.Err() != nil {
		j.state = wire.JobCanceled
		j.err = "canceled during shutdown"
		j.mu.Unlock()
		m.finish(j)
		return
	}
	j.state = wire.JobRunning
	j.mu.Unlock()

	explainer := core.NewExplainerWithCache(j.entry.model, j.cfg, j.entry.cache)
	for res := range explainer.ExplainAll(j.blocks, core.CorpusOptions{
		Workers: j.workers,
		Context: m.ctx,
	}) {
		j.mu.Lock()
		j.done++
		if res.Err != nil {
			j.failed++
		}
		j.results = append(j.results, wire.FromCorpusResult(res))
		j.mu.Unlock()
	}

	j.mu.Lock()
	switch {
	case j.done < len(j.blocks):
		j.state = wire.JobCanceled
		j.err = "canceled during shutdown"
	case j.failed > 0:
		j.state = wire.JobFailed
		j.err = fmt.Sprintf("%d of %d blocks failed", j.failed, len(j.blocks))
	default:
		j.state = wire.JobDone
	}
	j.mu.Unlock()
	m.finish(j)
}

// finish moves a terminal job into the LRU history, where it survives
// polling until evicted by capacity.
func (m *jobManager) finish(j *job) {
	m.history.put(j.id, j)
	m.active.Delete(j.id)
}

// shutdown stops accepting jobs, marks still-queued jobs canceled, and
// waits (up to ctx) for running jobs to wind down. The manager's own
// context — canceled by the server before calling shutdown — makes running
// jobs skip their remaining blocks.
func (m *jobManager) shutdown(ctx context.Context) error {
	m.closeMu.Lock()
	if m.draining {
		m.closeMu.Unlock()
		return nil
	}
	m.draining = true
	close(m.queue)
	m.closeMu.Unlock()
	waited := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(waited)
	}()
	select {
	case <-waited:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// gauges reports queue and job-state metrics.
func (m *jobManager) gauges() []gauge {
	return []gauge{
		{name: "comet_job_queue_depth", value: float64(m.queued.Load())},
		{name: "comet_jobs_running", value: float64(m.running.Load())},
		{name: "comet_jobs_finished", value: float64(m.history.len())},
	}
}
