package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

const testBlock = "add rcx, rax\nmov rdx, rcx\npop rbx"

// fastOverrides keeps test explanations quick.
func fastOverrides() *wire.ConfigOverrides {
	return &wire.ConfigOverrides{CoverageSamples: 150, Seed: 1}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// TestExplainMatchesLibraryAndRoundTrips is the core serving acceptance
// criterion: the served JSON round-trips byte-stably and its content is
// bit-identical to a library Explain call at the same seed.
func TestExplainMatchesLibraryAndRoundTrips(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var served wire.Explanation
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatal(err)
	}

	// Byte stability: unmarshal → marshal reproduces the served bytes.
	remarshaled, err := json.Marshal(&served)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimRight(body, "\n"), remarshaled) {
		t.Errorf("served JSON not byte-stable:\n served %s\nremarsh %s", body, remarshaled)
	}

	// Bit-identical content to the library at the same seed and config.
	cfg := core.DefaultConfig()
	cfg.Parallelism = 1
	cfg.CoverageSamples = 150
	cfg.Seed = 1
	lib, err := core.NewExplainer(uica.New(x86.Haswell), cfg).Explain(x86.MustParseBlock(testBlock))
	if err != nil {
		t.Fatal(err)
	}
	want := wire.FromExplanation(lib)
	if served.Prediction != want.Prediction || served.Precision != want.Precision ||
		served.Coverage != want.Coverage || served.Certified != want.Certified ||
		served.Block != want.Block || served.Model != want.Model {
		t.Errorf("served explanation differs from library:\n got %+v\nwant %+v", served, want)
	}
	gotSet, err := served.Features.Lib()
	if err != nil {
		t.Fatal(err)
	}
	if gotSet.Key() != lib.Features.Key() {
		t.Errorf("feature sets differ: %s vs %s", gotSet.Key(), lib.Features.Key())
	}
}

// countingModel counts every block evaluation, for single-flight
// verification by model-call accounting.
type countingModel struct {
	inner costmodel.BatchModel
	calls atomic.Int64
}

func (m *countingModel) Name() string   { return "counting" }
func (m *countingModel) Arch() x86.Arch { return m.inner.Arch() }
func (m *countingModel) Predict(b *x86.BasicBlock) float64 {
	m.calls.Add(1)
	return m.inner.Predict(b)
}
func (m *countingModel) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	m.calls.Add(int64(len(blocks)))
	return m.inner.PredictBatch(blocks)
}

// TestSingleFlightCoalescesIdenticalRequests: N identical concurrent
// requests cost exactly one explanation computation.
func TestSingleFlightCoalescesIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	model := &countingModel{inner: uica.New(x86.Haswell)}
	s.RegisterModel("counting", x86.Haswell, model, 0)

	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
				Block: testBlock, Model: "counting", Config: fastOverrides(),
			})
			codes[i], bodies[i] = resp.StatusCode, body
		}(i)
	}
	wg.Wait()

	var first wire.Explanation
	if err := json.Unmarshal(bodies[0], &first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d: response differs from request 0:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := s.metrics.explanations.Load(); got != 1 {
		t.Errorf("computed %d explanations for %d identical requests, want exactly 1", got, n)
	}
	// Model-call accounting: the model saw exactly one explanation's
	// worth of evaluations.
	if got := model.calls.Load(); got != int64(first.ModelCalls) {
		t.Errorf("model evaluated %d blocks, want the single explanation's %d", got, first.ModelCalls)
	}
}

// TestResultStoreServesRepeatQueries: a repeat query is served from the
// LRU store with zero model work.
func TestResultStoreServesRepeatQueries(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	model := &countingModel{inner: uica.New(x86.Haswell)}
	s.RegisterModel("counting", x86.Haswell, model, 0)

	req := wire.ExplainRequest{Block: testBlock, Model: "counting", Config: fastOverrides()}
	_, body1 := postJSON(t, ts.URL+"/v1/explain", req)
	after := model.calls.Load()
	_, body2 := postJSON(t, ts.URL+"/v1/explain", req)
	if model.calls.Load() != after {
		t.Errorf("repeat query cost %d extra model calls, want 0", model.calls.Load()-after)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("repeat query served different bytes:\n%s\n%s", body1, body2)
	}
	if s.metrics.resultStoreHits.Load() == 0 {
		t.Error("result store recorded no hit")
	}
}

// submitCorpus submits a job and polls it to a terminal state, collecting
// results through offset/limit pagination.
func submitCorpus(t *testing.T, base string, req wire.CorpusRequest) ([]wire.CorpusResult, wire.JobStatus) {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/corpus", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("corpus submit: status %d: %s", resp.StatusCode, body)
	}
	var acc wire.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	return pollJob(t, base, acc.ID)
}

// pollJob polls a job to a terminal state, collecting results through
// offset/limit pagination.
func pollJob(t *testing.T, base, id string) ([]wire.CorpusResult, wire.JobStatus) {
	t.Helper()
	acc := wire.JobAccepted{ID: id}
	var collected []wire.CorpusResult
	offset := 0
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish in time", acc.ID)
		}
		var st wire.JobStatus
		r := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?offset=%d&limit=2", base, acc.ID, offset), &st)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("job poll: status %d", r.StatusCode)
		}
		collected = append(collected, st.Results...)
		offset = st.NextOffset
		terminal := st.State == wire.JobDone || st.State == wire.JobFailed || st.State == wire.JobCanceled
		if terminal && offset >= st.Done {
			return collected, st
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCorpusJobReproducibleAtAnyWorkerCount: identical corpora explained
// with different worker counts yield identical explanations per block, and
// results survive polling.
func TestCorpusJobReproducibleAtAnyWorkerCount(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	srcs := []string{
		testBlock,
		"imul rax, rbx\nimul rax, rcx",
		"mov qword ptr [rdi], rax\nmov rbx, qword ptr [rdi]",
		"vaddss xmm0, xmm1, xmm2\nvmulss xmm3, xmm0, xmm0",
		"add rax, rbx\nsub rcx, rdx\nxor rsi, rsi",
	}
	byIndex := func(results []wire.CorpusResult) map[int]wire.CorpusResult {
		m := make(map[int]wire.CorpusResult, len(results))
		for _, r := range results {
			m[r.Index] = r
		}
		return m
	}

	req := wire.CorpusRequest{Blocks: srcs, Model: "uica", Config: fastOverrides(), Workers: 1}
	seq, st := submitCorpus(t, ts.URL, req)
	if st.State != wire.JobDone || st.Done != len(srcs) || st.Failed != 0 {
		t.Fatalf("workers=1 job: %+v", st)
	}
	req.Workers = 4
	par, st4 := submitCorpus(t, ts.URL, req)
	if st4.State != wire.JobDone || st4.Done != len(srcs) {
		t.Fatalf("workers=4 job: %+v", st4)
	}

	seqBy, parBy := byIndex(seq), byIndex(par)
	if len(seqBy) != len(srcs) || len(parBy) != len(srcs) {
		t.Fatalf("pagination lost results: %d and %d of %d", len(seqBy), len(parBy), len(srcs))
	}
	for i := range srcs {
		a, b := seqBy[i], parBy[i]
		if a.Explanation == nil || b.Explanation == nil {
			t.Fatalf("block %d: missing explanation (%v / %v)", i, a.Error, b.Error)
		}
		// The explanation content must be bit-identical; the cache
		// accounting legitimately differs (the second job hits the shared
		// prediction cache warmed by the first).
		ea, eb := *a.Explanation, *b.Explanation
		ea.CacheHits, eb.CacheHits = 0, 0
		ea.ModelCalls, eb.ModelCalls = 0, 0
		ja, _ := json.Marshal(&ea)
		jb, _ := json.Marshal(&eb)
		if !bytes.Equal(ja, jb) {
			t.Errorf("block %d differs across worker counts:\n w1 %s\n w4 %s", i, ja, jb)
		}
	}

	// The finished job keeps answering polls until evicted.
	var again wire.JobStatus
	getJSON(t, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, st.ID), &again)
	if again.State != wire.JobDone || len(again.Results) != len(srcs) {
		t.Errorf("finished job no longer pollable: %+v", again)
	}
}

// gateModel blocks its first evaluation until released, to hold a job or
// request deterministically in-flight.
type gateModel struct {
	inner   costmodel.Model
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateModel() *gateModel {
	return &gateModel{
		inner:   uica.New(x86.Haswell),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
}

func (m *gateModel) Name() string   { return "gate" }
func (m *gateModel) Arch() x86.Arch { return x86.Haswell }
func (m *gateModel) Predict(b *x86.BasicBlock) float64 {
	m.once.Do(func() {
		close(m.started)
		<-m.release
	})
	return m.inner.Predict(b)
}

func TestJobQueueBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, JobQueueDepth: 1})
	gate := newGateModel()
	s.RegisterModel("gate", x86.Haswell, gate, 0)
	defer func() {
		select {
		case <-gate.release:
		default:
			close(gate.release)
		}
	}()

	req := wire.CorpusRequest{Blocks: []string{testBlock}, Model: "gate", Config: fastOverrides()}
	resp1, body1 := postJSON(t, ts.URL+"/v1/corpus", req)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d: %s", resp1.StatusCode, body1)
	}
	<-gate.started // job 1 is now executing, holding the single worker

	resp2, body2 := postJSON(t, ts.URL+"/v1/corpus", req)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d: %s", resp2.StatusCode, body2)
	}
	resp3, body3 := postJSON(t, ts.URL+"/v1/corpus", req)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429: %s", resp3.StatusCode, body3)
	}
	var e wire.Error
	if err := json.Unmarshal(body3, &e); err != nil || e.Error == "" {
		t.Errorf("429 body is not the error envelope: %s", body3)
	}
	close(gate.release)
}

func TestExplainBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentExplains: 1, MaxQueuedExplains: 1})
	gate := newGateModel()
	s.RegisterModel("gate", x86.Haswell, gate, 0)
	released := false
	defer func() {
		if !released {
			close(gate.release)
		}
	}()

	type result struct {
		code int
		body []byte
	}
	results := make(chan result, 3)
	post := func(seed int64) {
		o := fastOverrides()
		o.Seed = seed // distinct seeds → distinct keys → no coalescing
		resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
			Block: testBlock, Model: "gate", Config: o,
		})
		results <- result{resp.StatusCode, body}
	}
	go post(1)
	<-gate.started // request 1 holds the single computation slot
	go post(2)
	// Wait until request 2 occupies the single wait-queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.explainWaiting.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request 2 never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp3, body3 := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "gate", Config: &wire.ConfigOverrides{CoverageSamples: 150, Seed: 3},
	})
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request 3: status %d, want 429: %s", resp3.StatusCode, body3)
	}
	close(gate.release)
	released = true
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Errorf("gated request: status %d: %s", r.code, r.body)
		}
	}
}

func TestJobHistoryEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{JobHistorySize: 1})
	req := wire.CorpusRequest{Blocks: []string{testBlock}, Model: "uica", Config: fastOverrides()}
	_, st1 := submitCorpus(t, ts.URL, req)
	_, st2 := submitCorpus(t, ts.URL, req)
	if r := getJSON(t, ts.URL+"/v1/jobs/"+st1.ID, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job 1: status %d, want 404", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/v1/jobs/"+st2.ID, nil); r.StatusCode != http.StatusOK {
		t.Errorf("retained job 2: status %d, want 200", r.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxCorpusBlocks: 2})
	cases := []struct {
		name string
		do   func() int
		want int
	}{
		{"explain GET", func() int { return getJSON(t, ts.URL+"/v1/explain", nil).StatusCode }, http.StatusMethodNotAllowed},
		{"bad block", func() int {
			r, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: "not an instruction"})
			return r.StatusCode
		}, http.StatusBadRequest},
		{"unknown model", func() int {
			r, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "gpt"})
			return r.StatusCode
		}, http.StatusBadRequest},
		{"unknown arch", func() int {
			r, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Arch: "znver4"})
			return r.StatusCode
		}, http.StatusBadRequest},
		{"empty corpus", func() int {
			r, _ := postJSON(t, ts.URL+"/v1/corpus", wire.CorpusRequest{})
			return r.StatusCode
		}, http.StatusBadRequest},
		{"oversized corpus", func() int {
			r, _ := postJSON(t, ts.URL+"/v1/corpus", wire.CorpusRequest{Blocks: []string{testBlock, testBlock, testBlock}})
			return r.StatusCode
		}, http.StatusRequestEntityTooLarge},
		{"unknown job", func() int { return getJSON(t, ts.URL+"/v1/jobs/job-nope-1", nil).StatusCode }, http.StatusNotFound},
		{"bad offset", func() int {
			return getJSON(t, ts.URL+"/v1/jobs/job-nope-1?offset=-2", nil).StatusCode
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := tc.do(); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var health map[string]string
	if r := getJSON(t, ts.URL+"/healthz", &health); r.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz: %d %v", r.StatusCode, health)
	}
	postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Config: fastOverrides()})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`comet_requests_total{route="explain",code="200"} 1`,
		`comet_request_seconds_bucket{route="explain",le="+Inf"} 1`,
		`comet_request_seconds_count{route="explain"} 1`,
		"comet_explanations_computed_total 1",
		"comet_job_queue_depth 0",
		`comet_prediction_cache_hit_rate{model="uica",arch="hsw"}`,
		"comet_result_store_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestGracefulShutdown(t *testing.T) {
	s := New(Config{JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	gate := newGateModel()
	s.RegisterModel("gate", x86.Haswell, gate, 0)

	// A 3-block job: block 0 blocks on the gate; cancellation during
	// shutdown must skip the unstarted blocks and mark the job canceled.
	req := wire.CorpusRequest{
		Blocks: []string{testBlock, testBlock + "\nadd rax, rbx", testBlock + "\nsub rax, rbx"},
		Model:  "gate", Config: fastOverrides(), Workers: 1,
	}
	resp, body := postJSON(t, ts.URL+"/v1/corpus", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var acc wire.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	<-gate.started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Draining: new work is refused while the job winds down.
	time.Sleep(10 * time.Millisecond)
	if r, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock}); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("explain during drain: status %d, want 503", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/healthz", nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", r.StatusCode)
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	var st wire.JobStatus
	getJSON(t, ts.URL+"/v1/jobs/"+acc.ID, &st)
	if st.State != wire.JobCanceled {
		t.Errorf("job state after shutdown: %q, want %q (%+v)", st.State, wire.JobCanceled, st)
	}
	if st.Done >= st.Total {
		t.Errorf("canceled job claims all %d blocks done", st.Total)
	}
}

// TestPredictEndpoint: POST /v1/predict answers batch queries that agree
// exactly with the underlying model, flows them through the shared
// prediction cache, and serves the empty-batch discovery handshake.
func TestPredictEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	model := &countingModel{inner: uica.New(x86.Haswell)}
	s.RegisterModel("counting", x86.Haswell, model, 0)

	blocks := []string{testBlock, "imul rax, rbx\nimul rax, rcx", testBlock}
	resp, body := postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{
		Blocks: blocks, Model: "counting",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, body)
	}
	var pr wire.PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Model != "counting" || pr.Arch != "hsw" || pr.Spec != "counting@hsw" || pr.Epsilon != 0.5 {
		t.Errorf("predict identity wrong: %+v", pr)
	}
	if len(pr.Predictions) != len(blocks) {
		t.Fatalf("got %d predictions for %d blocks", len(pr.Predictions), len(blocks))
	}
	for i, src := range blocks {
		want := model.inner.Predict(x86.MustParseBlock(src))
		if pr.Predictions[i] != want {
			t.Errorf("prediction %d = %v, want %v", i, pr.Predictions[i], want)
		}
	}
	// The duplicate block was deduplicated; only 2 distinct evaluations.
	if got := model.calls.Load(); got != 2 {
		t.Errorf("model evaluated %d blocks, want 2 (dedup + cache)", got)
	}
	// A repeat batch is answered fully from the shared cache.
	postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{Blocks: blocks, Model: "counting"})
	if got := model.calls.Load(); got != 2 {
		t.Errorf("repeat batch cost %d extra evaluations, want 0", got-2)
	}

	// Directly registered models are addressable by arch aliases too.
	resp, _ = postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{Model: "counting@haswell"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("counting@haswell: status %d, want the registered counting@hsw entry", resp.StatusCode)
	}

	// Handshake: no blocks, just identity.
	resp, body = postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{Model: "counting"})
	if err := json.Unmarshal(body, &pr); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("handshake: status %d err %v", resp.StatusCode, err)
	}
	if len(pr.Predictions) != 0 || pr.Spec != "counting@hsw" {
		t.Errorf("handshake response wrong: %+v", pr)
	}

	// Errors: unknown model 400, bad block 400, GET 405.
	if r, _ := postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{Model: "gpt"}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown model: status %d, want 400", r.StatusCode)
	}
	if r, _ := postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{Blocks: []string{"not an instruction"}}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad block: status %d, want 400", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/v1/predict", nil); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: status %d, want 405", r.StatusCode)
	}
}

// TestModelsEndpoint: GET /v1/models lists the registry with default
// specs and reports which specs this server has warmed.
func TestModelsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.RegisterModel("counting", x86.Haswell, &countingModel{inner: uica.New(x86.Haswell)}, 0)
	postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "uica", Config: fastOverrides()})

	var mr wire.ModelsResponse
	if r := getJSON(t, ts.URL+"/v1/models", &mr); r.StatusCode != http.StatusOK {
		t.Fatalf("models: status %d", r.StatusCode)
	}
	byName := make(map[string]wire.ModelInfo)
	for _, m := range mr.Models {
		byName[m.Name] = m
	}
	for _, want := range []string{"c", "uica", "mca", "hwsim", "ithemal", "remote"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("models listing missing %q", want)
		}
	}
	if spec := byName["uica"].Spec; spec != "uica@hsw" {
		t.Errorf("uica default spec %q, want uica@hsw", spec)
	}
	if eps := byName["c"].Epsilon; eps != 0.25 {
		t.Errorf("analytical ε %v, want 0.25", eps)
	}
	var hasTrain bool
	for _, p := range byName["ithemal"].Defaults {
		if p.Key == "train" {
			hasTrain = true
		}
	}
	if !hasTrain {
		t.Error("ithemal defaults missing the train parameter")
	}
	warmed := make(map[string]bool)
	for _, w := range mr.Warmed {
		warmed[w] = true
	}
	if !warmed["counting@hsw"] || !warmed["uica@hsw"] {
		t.Errorf("warmed list %v missing counting@hsw / uica@hsw", mr.Warmed)
	}
	if r, _ := postJSON(t, ts.URL+"/v1/models", struct{}{}); r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST models: status %d, want 405", r.StatusCode)
	}
}

// TestSpecAddressing: requests address models by full spec strings;
// equivalent specs share one warmed entry, distinct parameterizations get
// distinct entries, and the instance table is bounded.
func TestSpecAddressing(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxModelEntries: 2})

	// Alias + explicit arch resolve to the same canonical entry.
	r1, b1 := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "uica@hsw", Config: fastOverrides()})
	r2, b2 := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "uica", Arch: "haswell", Config: fastOverrides()})
	if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
		t.Fatalf("spec addressing: %d / %d (%s / %s)", r1.StatusCode, r2.StatusCode, b1, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("equivalent specs produced different explanations:\n%s\n%s", b1, b2)
	}
	if got := s.models.warmedSpecs(); len(got) != 1 || got[0] != "uica@hsw" {
		t.Errorf("warmed specs %v, want exactly [uica@hsw]", got)
	}

	// Bounded instance table: a third distinct spec is shed with 429.
	if r, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "uica@skl", Config: fastOverrides()}); r.StatusCode != http.StatusOK {
		t.Fatalf("second spec: status %d", r.StatusCode)
	}
	if r, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "mca", Config: fastOverrides()}); r.StatusCode != http.StatusTooManyRequests {
		t.Errorf("instance-table overflow: status %d, want 429", r.StatusCode)
	}
}

// TestRestrictedSpecPolicy: client input may not make the server dial
// URLs (remote@...) or read files (ithemal?load=...) unless the operator
// opts in; operator paths (WarmModel) are never restricted.
func TestRestrictedSpecPolicy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, spec := range []string{
		"remote@http://127.0.0.1:1",
		"ithemal?load=/etc/passwd",
	} {
		r, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: spec})
		if r.StatusCode != http.StatusForbidden {
			t.Errorf("%s: status %d (%s), want 403", spec, r.StatusCode, body)
		}
		r, _ = postJSON(t, ts.URL+"/v1/predict", wire.PredictRequest{Model: spec})
		if r.StatusCode != http.StatusForbidden {
			t.Errorf("predict %s: status %d, want 403", spec, r.StatusCode)
		}
	}

	// Opted in: the spec is resolvable (the dead URL now fails with the
	// dial error — a 400, not a policy 403).
	_, ts2 := newTestServer(t, Config{AllowRestrictedSpecs: true})
	r, _ := postJSON(t, ts2.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "remote@http://127.0.0.1:1?retries=0"})
	if r.StatusCode == http.StatusForbidden {
		t.Errorf("allow-restricted server still refused: %d", r.StatusCode)
	}

	// Operator warming bypasses the policy (and reports the dial error,
	// not the policy error).
	s3, _ := newTestServer(t, Config{})
	if err := s3.WarmModel("remote@http://127.0.0.1:1?retries=0", "hsw"); err == nil || errors.Is(err, errRestrictedSpec) {
		t.Errorf("operator warm of a restricted spec: %v, want a dial error", err)
	}
}

// TestFailedWarmupIsRetriedNotCached: a spec whose warm-up fails is
// evicted from the instance table — the failure doesn't brick the spec
// for the life of the process, and junk specs can't fill the table.
func TestFailedWarmupIsRetriedNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxModelEntries: 2, AllowRestrictedSpecs: true})

	// Several distinct failing specs never fill the bounded table...
	for i := 0; i < 4; i++ {
		spec := fmt.Sprintf("remote@http://127.0.0.1:1?retries=0&model=m%d", i)
		if r, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: spec}); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("failing spec %d: status %d, want 400", i, r.StatusCode)
		}
	}
	// ...so a valid spec still resolves afterwards.
	if r, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{Block: testBlock, Model: "uica", Config: fastOverrides()}); r.StatusCode != http.StatusOK {
		t.Fatalf("valid spec after failures: status %d (%s)", r.StatusCode, body)
	}
	if got := s.models.warmedSpecs(); len(got) != 1 || got[0] != "uica@hsw" {
		t.Errorf("warmed specs %v, want exactly [uica@hsw]", got)
	}
}
