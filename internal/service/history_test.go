package service

// Tests for the telemetry-history and outlier-retention surfaces:
// GET /debug/history (local and federated, including a down worker),
// outlier commitment despite head sampling, the /debug/traces filters,
// and the slow-request counter.

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/cluster"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
)

// historyConfig disables the background sampler so tests tick the
// history deterministically via Sample().
func historyConfig() Config {
	return Config{HistoryInterval: -1}
}

func seriesByName(d obs.HistoryDump) map[string]obs.HistorySeries {
	out := make(map[string]obs.HistorySeries, len(d.Series))
	for _, s := range d.Series {
		out[s.Name] = s
	}
	return out
}

// TestDebugHistoryEndpoint: the sampler snapshots live counters into
// aligned rings and /debug/history serves them with server-computed
// rates — a request made between two ticks shows up as a per-second
// rate, not a raw counter.
func TestDebugHistoryEndpoint(t *testing.T) {
	s, ts := newTestServer(t, historyConfig())

	s.history.Sample() // prime rate baselines
	if resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	s.history.Sample()

	var dump obs.HistoryDump
	if resp := getJSON(t, ts.URL+"/debug/history", &dump); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/history: status %d", resp.StatusCode)
	}
	if dump.Process != "local" || dump.Samples != 2 || dump.Retention != 600 {
		t.Fatalf("dump envelope: process=%q samples=%d retention=%d", dump.Process, dump.Samples, dump.Retention)
	}
	series := seriesByName(dump)

	// One explain request between the ticks at the 1s-labeled interval:
	// the second point of route.explain.rps is 1 req/s.
	rps, ok := series["route.explain.rps"]
	if !ok {
		t.Fatalf("no route.explain.rps series (have %d series)", len(series))
	}
	if rps.Kind != obs.SeriesRate || len(rps.Points) != 2 {
		t.Fatalf("route.explain.rps: %+v", rps)
	}
	if got := float64(rps.Last); got != 1 {
		t.Errorf("route.explain.rps last = %v, want 1", got)
	}
	if got := float64(series["route.explain.rps_2xx"].Last); got != 1 {
		t.Errorf("route.explain.rps_2xx last = %v, want 1", got)
	}
	// The per-tick p99 must be a real bucket bound, in milliseconds.
	if got := float64(series["route.explain.p99_ms"].Last); !(got > 0) {
		t.Errorf("route.explain.p99_ms last = %v, want > 0", got)
	}
	// The explanation was computed (cold caches): computed_rps ticks.
	if got := float64(series["explain.computed_rps"].Last); got != 1 {
		t.Errorf("explain.computed_rps last = %v, want 1", got)
	}
	// Gauges and the per-spec quality series registered by the hook.
	for _, name := range []string{
		"queue.explain_waiting", "queue.jobs", "jobs.running",
		"runtime.goroutines", "runtime.heap_bytes",
		"hit_rate.persist", "hit_rate.result_store",
		"spec.uica@hsw.explanations_rps", "spec.uica@hsw.precision_mean",
	} {
		if _, ok := series[name]; !ok {
			t.Errorf("missing history series %q", name)
		}
	}
	// The spec series were registered by this tick's hook, so this tick
	// only primed their baselines; a second computed explain makes the
	// next tick show a real rate and a real windowed precision.
	if resp, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: "mov rax, rbx\nadd rbx, rcx", Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatal("second explain failed")
	}
	s.history.Sample()
	getJSON(t, ts.URL+"/debug/history", &dump)
	series = seriesByName(dump)
	if got := float64(series["spec.uica@hsw.explanations_rps"].Last); got != 1 {
		t.Errorf("spec.uica@hsw.explanations_rps last = %v, want 1", got)
	}
	if p := float64(series["spec.uica@hsw.precision_mean"].Last); !(p > 0 && p <= 1) {
		t.Errorf("spec.uica@hsw.precision_mean last = %v, want a fraction", p)
	}

	// A cache-hit repeat: result_store hit rate for the next tick is 1.
	if resp, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatal("repeat explain failed")
	}
	s.history.Sample()
	getJSON(t, ts.URL+"/debug/history", &dump)
	if got := float64(seriesByName(dump)["hit_rate.result_store"].Last); got != 1 {
		t.Errorf("hit_rate.result_store after a pure cache-hit tick = %v, want 1", got)
	}
}

// TestFederatedHistoryDownWorker: ?cluster=1 on a coordinator returns
// one history per cluster process; a dead worker contributes an error
// entry without failing the view or hiding the live ones.
func TestFederatedHistoryDownWorker(t *testing.T) {
	worker, workerTS := newTestServer(t, historyConfig())
	worker.SetReady()
	worker.history.Sample()
	worker.history.Sample()

	deadURL := "http://127.0.0.1:1" // reserved port: connection refused fast
	coord, coordTS := newTestServer(t, Config{
		HistoryInterval: -1,
		ClusterWorkers:  []string{workerTS.URL, deadURL},
		Cluster: cluster.Options{
			LeaseBlocks:  1,
			ProbeBackoff: 10 * time.Millisecond,
			Tick:         5 * time.Millisecond,
		},
	})
	coord.history.Sample()

	var fed struct {
		Cluster   bool `json:"cluster"`
		Processes []struct {
			Process string           `json:"process"`
			Error   string           `json:"error"`
			History *obs.HistoryDump `json:"history"`
		} `json:"processes"`
	}
	if resp := getJSON(t, coordTS.URL+"/debug/history?cluster=1", &fed); resp.StatusCode != http.StatusOK {
		t.Fatalf("federated history: status %d", resp.StatusCode)
	}
	if !fed.Cluster || len(fed.Processes) != 3 {
		t.Fatalf("federated envelope: cluster=%v processes=%d, want 3", fed.Cluster, len(fed.Processes))
	}
	byProc := map[string]int{}
	for i, p := range fed.Processes {
		byProc[p.Process] = i
	}
	local := fed.Processes[byProc["coordinator"]]
	if local.Error != "" || local.History == nil || local.History.Samples != 1 {
		t.Errorf("coordinator entry: %+v", local)
	}
	live := fed.Processes[byProc[workerTS.URL]]
	if live.Error != "" || live.History == nil || live.History.Samples != 2 {
		t.Errorf("live worker entry: err=%q history=%v", live.Error, live.History)
	}
	if live.History != nil && live.History.Process != workerTS.URL {
		t.Errorf("live worker history labeled %q, want %q", live.History.Process, workerTS.URL)
	}
	dead := fed.Processes[byProc[deadURL]]
	if dead.Error == "" || dead.History != nil {
		t.Errorf("dead worker entry should carry an error and no history: %+v", dead)
	}
}

// TestOutlierRetention: with a 1ms slow threshold and head sampling
// effectively off, a computed explain request still commits its full
// span tree to the outlier ring — the trace head sampling would have
// thrown away — and ticks comet_slow_requests_total plus the flight
// recorder.
func TestOutlierRetention(t *testing.T) {
	_, ts := newTestServer(t, Config{
		TraceSample: 1 << 30, // head sampling effectively never fires
		TraceSlowMS: 1,
	})

	resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Comet-Trace-Id")
	if traceID == "" {
		t.Fatal("explain response carries no trace ID")
	}

	var got struct {
		Outliers []obs.OutlierTrace `json:"outliers"`
		Written  uint64             `json:"written"`
	}
	getJSON(t, ts.URL+"/debug/traces?outliers=1&route=explain", &got)
	if len(got.Outliers) != 1 {
		t.Fatalf("retained %d explain outliers, want 1: %+v", len(got.Outliers), got.Outliers)
	}
	o := got.Outliers[0]
	if o.TraceID != traceID || o.Route != "explain" || o.Reason != obs.OutlierSlow || o.Status != 200 {
		t.Fatalf("outlier: %+v", o)
	}
	if o.DurationUS < 1000 {
		t.Errorf("outlier duration %dus under the 1ms threshold", o.DurationUS)
	}
	// The full span tree was captured despite the unsampled head decision:
	// the http root plus the compute stage underneath it.
	names := map[string]obs.SpanRecord{}
	for _, sp := range o.Spans {
		names[sp.Name] = sp
	}
	root, ok := names["http.explain"]
	if !ok {
		t.Fatalf("outlier has no http.explain root: %v", names)
	}
	compute, ok := names["svc.compute"]
	if !ok {
		t.Fatalf("outlier trace lost the compute span: %v", names)
	}
	if compute.TraceID != traceID || root.Attrs["status"] != "200" {
		t.Errorf("root/compute records: %+v / %+v", root, compute)
	}

	// The main ring must NOT hold the trace: it was unsampled.
	if resp := getJSON(t, ts.URL+"/debug/traces/"+traceID, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unsampled outlier leaked into the main ring: status %d", resp.StatusCode)
	}

	// Counter and flight record agree.
	if text := fetchMetrics(t, ts.URL); !strings.Contains(text, `comet_slow_requests_total{route="explain"} 1`) {
		t.Errorf("metrics missing the slow-request counter")
	}
	_, recs := flightDump(t, ts.URL)
	found := false
	for _, r := range recs {
		if r["kind"] == "outlier" && r["route"] == "explain" {
			found = true
			if r["trace_id"] != traceID || r["state"] != obs.OutlierSlow {
				t.Errorf("outlier flight record: %v", r)
			}
		}
	}
	if !found {
		t.Error("no outlier record in the flight recorder")
	}
}

// TestOutlierErrorReason: a 5xx commits with reason "error" regardless
// of latency.
func TestOutlierErrorReason(t *testing.T) {
	_, ts := newTestServer(t, Config{
		TraceSample: 1 << 30,
		TraceSlowMS: 60_000, // slowness can't trigger; only the status can
	})
	// A cold server's /readyz answers 503 — a real ≥500 on a hot route.
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold /readyz: status %d", resp.StatusCode)
	}
	var got struct {
		Outliers []obs.OutlierTrace `json:"outliers"`
	}
	getJSON(t, ts.URL+"/debug/traces?outliers=1", &got)
	if len(got.Outliers) != 1 {
		t.Fatalf("retained %d outliers, want 1", len(got.Outliers))
	}
	if o := got.Outliers[0]; o.Route != "readyz" || o.Reason != obs.OutlierError || o.Status != 503 {
		t.Fatalf("outlier: %+v", o)
	}
}

// TestTraceListFilters: ?route= and ?min_ms= narrow both the trace
// listing and the outlier listing; ?limit= caps them.
func TestTraceListFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{
		TraceSample: 1, // sample everything: the listing fills immediately
		TraceSlowMS: 1,
	})
	if resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/healthz", nil)

	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	getJSON(t, ts.URL+"/debug/traces?route=explain", &listing)
	if len(listing.Traces) == 0 {
		t.Fatal("route=explain filter matched nothing")
	}
	for _, tr := range listing.Traces {
		if tr.Root != "http.explain" {
			t.Errorf("route=explain listing leaked %q", tr.Root)
		}
	}
	getJSON(t, ts.URL+"/debug/traces?route=nosuchroute", &listing)
	if len(listing.Traces) != 0 {
		t.Errorf("bogus route filter matched %d traces", len(listing.Traces))
	}
	getJSON(t, ts.URL+"/debug/traces?min_ms=3600000", &listing)
	if len(listing.Traces) != 0 {
		t.Errorf("hour-long min_ms matched %d traces", len(listing.Traces))
	}

	var outliers struct {
		Outliers []obs.OutlierTrace `json:"outliers"`
	}
	getJSON(t, ts.URL+"/debug/traces?outliers=1&min_ms=3600000", &outliers)
	if len(outliers.Outliers) != 0 {
		t.Errorf("hour-long min_ms matched %d outliers", len(outliers.Outliers))
	}
	getJSON(t, ts.URL+"/debug/traces?outliers=1&limit=1", &outliers)
	if len(outliers.Outliers) > 1 {
		t.Errorf("limit=1 returned %d outliers", len(outliers.Outliers))
	}
}
