package service

import (
	"net/http"

	"github.com/comet-explain/comet"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// handlePredict serves POST /v1/predict, the batch cost-model endpoint
// that makes this server a queryable backend for remote explainers. An
// empty block list is the discovery handshake: it resolves (warming if
// necessary) the requested model and returns its identity without
// predictions. Predictions flow through the entry's shared prediction
// cache, so queries repeated across clients — or already answered for a
// local explanation — cost no model work.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	binResp := acceptsFrame(r)
	if r.Method != http.MethodPost {
		s.writeErrorNeg(w, binResp, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	var req wire.PredictRequest
	if isFrameRequest(r) {
		p, ok := decodeFrameBody[wire.PredictRequest](s, w, r, binResp)
		if !ok {
			return
		}
		req = *p
	} else if !s.decodeBody(w, r, &req) {
		return
	}
	arch, err := wire.ParseArch(req.Arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Blocks) > s.cfg.MaxCorpusBlocks {
		s.writeErrorNeg(w, binResp, http.StatusRequestEntityTooLarge,
			"batch of %d blocks exceeds the limit of %d", len(req.Blocks), s.cfg.MaxCorpusBlocks)
		return
	}
	blocks := make([]*x86.BasicBlock, len(req.Blocks))
	for i, src := range req.Blocks {
		b, err := x86.ParseBlock(src)
		if err != nil {
			s.writeErrorNeg(w, binResp, http.StatusBadRequest, "block %d: %v", i, err)
			return
		}
		blocks[i] = b
	}
	entry, err := s.lookupModel(req.Model, arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, modelErrorStatus(err), "%v", err)
		return
	}
	if span := obs.SpanFromContext(r.Context()); span != nil {
		span.Set("spec", entry.specString())
		span.SetInt("blocks", int64(len(blocks)))
	}

	preds := make([]float64, len(blocks))
	if len(blocks) > 0 {
		// Real compute shares the explain slots, so predict traffic and
		// explain traffic are backpressured by one budget.
		if err := s.acquireExplainSlot(); err != nil {
			s.writeErrorNeg(w, binResp, http.StatusTooManyRequests, "%v", err)
			return
		}
		err := func() (err error) {
			defer s.releaseExplainSlot()
			// A chained backend (this entry itself being a remote model)
			// aborts unanswerable queries; surface that as a gateway error
			// instead of crashing the handler.
			defer func() {
				if r := recover(); r != nil {
					qe, ok := r.(costmodel.QueryError)
					if !ok {
						panic(r)
					}
					err = qe.Err
				}
			}()
			costmodel.PredictThrough(entry.cache, entry.batch, blocks, s.cfg.Base.BatchSize, preds)
			return nil
		}()
		if err != nil {
			s.writeErrorNeg(w, binResp, http.StatusBadGateway, "backend predict failed: %v", err)
			return
		}
		s.metrics.predictions.Add(uint64(len(blocks)))
	}
	writeNegotiated(w, binResp, http.StatusOK, &wire.PredictResponse{
		Model:       entry.model.Name(),
		Arch:        wire.ArchName(entry.model.Arch()),
		Spec:        entry.specString(),
		Epsilon:     entry.epsilon,
		Predictions: preds,
	})
}

// handleModels serves GET /v1/models: the registered model families from
// the comet registry (specs, default configs, ε) plus the canonical specs
// this server has already warmed.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	defs := comet.RegisteredModels()
	infos := make([]wire.ModelInfo, len(defs))
	for i, def := range defs {
		info := wire.ModelInfo{
			Name:        def.Name,
			Aliases:     def.Aliases,
			Description: def.Description,
			Spec:        def.DefaultSpec(),
			Epsilon:     def.Epsilon,
		}
		for _, p := range def.ParamDefaults() {
			info.Defaults = append(info.Defaults, wire.ModelParam{Key: p.Key, Value: p.Value})
		}
		infos[i] = info
	}
	writeJSON(w, http.StatusOK, wire.ModelsResponse{
		Models: infos,
		Warmed: s.models.warmedSpecs(),
	})
}
