package service

// Streaming job results: GET /v1/jobs/{id}/stream delivers every corpus
// result in completion order as a chunked response, so a client consumes
// a million-block job without the server (or the client) ever holding
// the full result set. The default encoding is NDJSON — one
// wire.StreamEvent per line — and a client whose Accept header lists
// application/x-comet-frame gets raw binary frames instead: one
// CorpusResult frame per result, a JobSummary frame as the terminal
// event, and a framed wire.Error on lag.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"github.com/comet-explain/comet/internal/wire"
)

// waitStream blocks until the job has results past cursor, reaches a
// terminal state, or cancelled reports true. It returns the next batch
// (copied into buf), the new cursor, whether the reader fell behind the
// catch-up ring, and — once everything has been delivered — the terminal
// summary.
func (j *job) waitStream(cursor int, buf []wire.CorpusResult, cancelled func() bool) (out []wire.CorpusResult, next int, lagged bool, done *wire.JobSummary) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.notify == nil {
		j.notify = sync.NewCond(&j.mu)
	}
	for {
		if cancelled() {
			return nil, cursor, false, nil
		}
		if cursor < j.trimmed {
			return nil, cursor, true, nil
		}
		if avail := j.trimmed + len(j.results); cursor < avail {
			out = append(buf[:0], j.results[cursor-j.trimmed:]...)
			return out, avail, false, nil
		}
		switch j.state {
		case wire.JobDone, wire.JobFailed, wire.JobCanceled:
			sum := j.summaryLocked()
			return nil, cursor, false, &sum
		}
		j.notify.Wait()
	}
}

// handleJobStream serves GET /v1/jobs/{id}/stream. It works for every
// job — live or finished — and is the only way to read results of a
// stream job (CorpusRequest.Stream), which retains just a bounded
// catch-up ring; a reader that falls behind the ring gets a lag error
// event instead of stalling the job.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request, id string) {
	binResp := acceptsFrame(r)
	j, ok := s.jobs.get(id)
	if !ok {
		s.writeErrorNeg(w, binResp, http.StatusNotFound,
			"no such job %q (finished jobs are evicted after %d newer ones)", id, s.cfg.JobHistorySize)
		return
	}
	if binResp {
		w.Header().Set("Content-Type", wire.FrameContentType)
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// cond.Wait cannot watch a context, so disconnects and server
	// shutdown wake the waiters explicitly.
	ctx := r.Context()
	defer context.AfterFunc(ctx, j.wake)()
	defer context.AfterFunc(s.ctx, j.wake)()
	cancelled := func() bool { return ctx.Err() != nil || s.ctx.Err() != nil }

	var scratch []byte // frame build buffer, reused across events
	writeEvent := func(ev wire.StreamEvent) bool {
		var b []byte
		var err error
		if binResp {
			var msg any
			switch {
			case ev.Result != nil:
				msg = ev.Result
			case ev.Done != nil:
				msg = ev.Done
			default:
				msg = &wire.Error{Error: ev.Error}
			}
			b, err = wire.AppendBinary(scratch[:0], msg)
			scratch = b
		} else {
			b, err = json.Marshal(&ev)
			b = append(b, '\n')
		}
		if err != nil {
			return false
		}
		_, werr := w.Write(b)
		return werr == nil
	}

	cursor := 0
	var buf []wire.CorpusResult
	for {
		out, next, lagged, done := j.waitStream(cursor, buf, cancelled)
		cursor, buf = next, out
		switch {
		case lagged:
			writeEvent(wire.StreamEvent{Error: fmt.Sprintf(
				"stream lagged: results before %d were evicted from the catch-up ring (size %d)", j.trimmedCount(), j.ringCap)})
			return
		case done != nil:
			writeEvent(wire.StreamEvent{Done: done})
			return
		case len(out) == 0:
			return // client gone or server draining
		}
		for i := range out {
			if !writeEvent(wire.StreamEvent{Result: &out[i]}) {
				return
			}
		}
		s.metrics.streamedResults.Add(uint64(len(out)))
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// trimmedCount reads the ring-eviction watermark under the job lock.
func (j *job) trimmedCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trimmed
}
