package service

// Content negotiation between the JSON facade and the binary frame
// protocol. JSON remains the default and the compatibility surface;
// clients opt into frames per message direction:
//
//   - a request with Content-Type: application/x-comet-frame carries a
//     binary-framed body (one frame, one message);
//   - a request whose Accept header lists application/x-comet-frame gets
//     a binary-framed response, errors included (a framed wire.Error).
//
// Binary requests additionally unlock the interned fast path: the frame
// bytes are a canonical encoding of the request, so SHA-256 over the raw
// body is a complete request identity, computed once at ingress. A hit in
// the intern table writes pre-encoded response bytes without parsing the
// block, resolving the model, or even decoding the frame.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"github.com/comet-explain/comet/internal/wire"
)

// cachedExplanation is what the result store and the intern table hold:
// the explanation plus lazily pre-encoded response bodies, so repeat
// queries cost zero encoding work on either wire format.
type cachedExplanation struct {
	expl     *wire.Explanation
	jsonOnce sync.Once
	jsonBody []byte
	binOnce  sync.Once
	binBody  []byte
	// profile is the stage profile captured when this explanation was
	// computed, kept out of expl (and so out of the pre-encoded bodies,
	// which must stay byte-identical across cache layers) and attached
	// only to explicit ?profile=1 responses. Nil for explanations
	// rehydrated from the durable store, which does not record profiles.
	profile *wire.Profile
}

func newCachedExplanation(e *wire.Explanation) *cachedExplanation {
	return &cachedExplanation{expl: e}
}

// JSON returns the explanation exactly as writeJSON would encode it —
// json.Encoder appends a newline — so cached responses stay
// byte-identical to first-time responses.
func (c *cachedExplanation) JSON() []byte {
	c.jsonOnce.Do(func() {
		if b, err := json.Marshal(c.expl); err == nil {
			c.jsonBody = append(b, '\n')
		}
	})
	return c.jsonBody
}

// Frame returns the explanation as one binary frame.
func (c *cachedExplanation) Frame() []byte {
	c.binOnce.Do(func() {
		if b, err := wire.EncodeBinary(c.expl); err == nil {
			c.binBody = b
		}
	})
	return c.binBody
}

// isFrameRequest reports whether the request body is a binary frame.
func isFrameRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == wire.FrameContentType || strings.HasPrefix(ct, wire.FrameContentType+";")
}

// acceptsFrame reports whether the client asked for a binary response.
func acceptsFrame(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.FrameContentType)
}

// readAllInto reads r to EOF, appending into dst (which may have spare
// capacity from a pooled buffer).
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// readRawBody reads the whole request body into a pooled buffer, honoring
// MaxBodyBytes. On failure it writes the (negotiated) error response and
// returns nil. The caller owns returning the buffer to the pool.
func (s *Server) readRawBody(w http.ResponseWriter, r *http.Request, binResp bool) *[]byte {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := wire.GetBuffer()
	b, err := readAllInto((*buf)[:0], r.Body)
	*buf = b
	if err != nil {
		wire.PutBuffer(buf)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErrorNeg(w, binResp, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
		} else {
			s.writeErrorNeg(w, binResp, http.StatusBadRequest, "reading request body: %v", err)
		}
		return nil
	}
	return buf
}

// decodeFrameBody reads and decodes a binary-framed request body into the
// expected message type. On failure it writes the error response and
// reports false.
func decodeFrameBody[T any](s *Server, w http.ResponseWriter, r *http.Request, binResp bool) (*T, bool) {
	buf := s.readRawBody(w, r, binResp)
	if buf == nil {
		return nil, false
	}
	defer wire.PutBuffer(buf)
	msg, err := wire.DecodeBinary(*buf)
	if err != nil {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "bad frame: %v", err)
		return nil, false
	}
	s.metrics.frameRequests.Add(1)
	typed, ok := msg.(*T)
	if !ok {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest,
			"frame carries %T, want %T", msg, (*T)(nil))
		return nil, false
	}
	return typed, true
}

// writeFrame writes msg as one binary frame. It reports false when msg
// has no binary encoding, in which case nothing was written and the
// caller falls back to JSON.
func writeFrame(w http.ResponseWriter, code int, msg any) bool {
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	b, err := wire.AppendBinary((*buf)[:0], msg)
	if err != nil {
		return false
	}
	*buf = b
	w.Header().Set("Content-Type", wire.FrameContentType)
	w.WriteHeader(code)
	_, _ = w.Write(b)
	return true
}

// writeNegotiated writes msg as a binary frame when the client accepts
// one, as JSON otherwise.
func writeNegotiated(w http.ResponseWriter, binResp bool, code int, msg any) {
	if binResp && writeFrame(w, code, msg) {
		return
	}
	writeJSON(w, code, msg)
}

// writeErrorNeg writes the error envelope on the negotiated format.
func (s *Server) writeErrorNeg(w http.ResponseWriter, binResp bool, code int, format string, args ...any) {
	if binResp {
		writeNegotiated(w, true, code, &wire.Error{Error: fmt.Sprintf(format, args...)})
		return
	}
	writeError(w, code, format, args...)
}

// writeExplanation writes a cached explanation on the negotiated format,
// preferring the pre-encoded body (the common, zero-encode case).
func (s *Server) writeExplanation(w http.ResponseWriter, binResp bool, c *cachedExplanation) {
	if binResp {
		if b := c.Frame(); b != nil {
			w.Header().Set("Content-Type", wire.FrameContentType)
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(b)
			return
		}
	}
	if b := c.JSON(); b != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
		return
	}
	writeJSON(w, http.StatusOK, c.expl)
}

// writeExplanationProfile writes a ?profile=1 response: the cached
// explanation plus its stage profile, stamped with the cache layer that
// served this request. The body is encoded fresh from a copy — the
// shared cachedExplanation and its pre-encoded bodies are never mutated,
// so profile responses cannot leak into the byte-identity guarantees of
// the plain path.
func (s *Server) writeExplanationProfile(w http.ResponseWriter, binResp bool, c *cachedExplanation, source string) {
	clone := *c.expl
	var p wire.Profile
	if c.profile != nil {
		p = *c.profile
	}
	p.Source = source
	clone.Profile = &p
	writeNegotiated(w, binResp, http.StatusOK, &clone)
}
