package service

import (
	"errors"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"strconv"

	"github.com/comet-explain/comet/internal/ingest"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// isUploadContentType reports whether a POST /v1/corpus body is a binary
// upload rather than a JSON wire.CorpusRequest.
func isUploadContentType(ct string) bool {
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	switch mt {
	case "application/x-elf", "application/octet-stream", "multipart/form-data":
		return true
	}
	return false
}

// handleCorpusUpload serves the binary-upload mode of POST /v1/corpus:
// the body is an x86-64 ELF binary (raw, or the first file part of a
// multipart form), its basic blocks are extracted server-side, and the
// resulting corpus enters the same async job pipeline as a JSON corpus
// request. Job parameters arrive as query parameters since the body is
// the binary itself:
//
//	POST /v1/corpus?model=uica&arch=hsw&workers=4&stream=true&seed=1&coverage=1000
//
// Extraction is deterministic, so uploading a binary and running
// `comet -corpus elf:...` with the same model and config produce
// byte-identical explanations through the content-addressed store.
func (s *Server) handleCorpusUpload(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readUpload(w, r)
	if !ok {
		return
	}
	if !ingest.IsELF(data) {
		writeError(w, http.StatusBadRequest, "upload is not an ELF binary (bad magic)")
		return
	}

	// The extraction stage joins the request's span tree, so per-binary
	// ingest timing shows up in /debug/traces alongside job execution.
	_, span := obs.StartSpan(r.Context(), "ingest.extract")
	res, err := ingest.ExtractBytes(data, ingest.Options{})
	if err != nil {
		span.SetErr(err)
		span.End()
		s.metrics.ingestRejected.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := res.Stats
	span.SetInt("sections", int64(st.Sections))
	span.SetInt("bytes", int64(st.Bytes))
	span.SetInt("blocks", int64(st.Blocks))
	span.SetInt("deduped", int64(st.Deduped))
	span.SetInt("unsupported", int64(st.Unsupported))
	span.End()

	s.metrics.ingestBinaries.Add(1)
	s.metrics.ingestSections.Add(uint64(st.Sections))
	s.metrics.ingestBytes.Add(uint64(st.Bytes))
	s.metrics.ingestBlocks.Add(uint64(st.Blocks))
	s.metrics.ingestDeduped.Add(uint64(st.Deduped))
	s.metrics.ingestSkipped.Add(uint64(st.Unsupported))

	if len(res.Blocks) == 0 {
		writeError(w, http.StatusBadRequest, "binary contains no supported basic blocks (%s)", st)
		return
	}
	if len(res.Blocks) > s.cfg.MaxCorpusBlocks {
		writeError(w, http.StatusRequestEntityTooLarge,
			"binary yields %d blocks, exceeding the limit of %d", len(res.Blocks), s.cfg.MaxCorpusBlocks)
		return
	}

	blocks := make([]*x86.BasicBlock, len(res.Blocks))
	for i, b := range res.Blocks {
		blocks[i] = b.Block
	}

	q := r.URL.Query()
	workers, _ := strconv.Atoi(q.Get("workers"))
	stream, _ := strconv.ParseBool(q.Get("stream"))
	overrides := uploadOverrides(q)

	s.log.Info("corpus upload ingested",
		"upload_bytes", len(data), "stats", st.String())
	s.submitCorpusJob(w, r, blocks, q.Get("model"), q.Get("arch"), overrides, workers, stream)
}

// uploadOverrides translates upload query parameters into the config
// overrides a JSON corpus request would carry inline.
func uploadOverrides(q map[string][]string) *wire.ConfigOverrides {
	get := func(k string) string {
		if v, ok := q[k]; ok && len(v) > 0 {
			return v[0]
		}
		return ""
	}
	var o wire.ConfigOverrides
	set := false
	if v, err := strconv.ParseInt(get("seed"), 10, 64); err == nil {
		o.Seed = v
		set = true
	}
	if v, err := strconv.Atoi(get("coverage")); err == nil {
		o.CoverageSamples = v
		set = true
	}
	if v, err := strconv.ParseFloat(get("epsilon"), 64); err == nil {
		o.Epsilon = v
		set = true
	}
	if v, err := strconv.Atoi(get("batch")); err == nil {
		o.BatchSize = v
		set = true
	}
	if !set {
		return nil
	}
	return &o
}

// readUpload reads the binary body under the MaxUploadBytes cap,
// answering 413 with a wire.Error when the cap is exceeded. Multipart
// bodies contribute their first file part.
func (s *Server) readUpload(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	mt, params, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mt != "multipart/form-data" {
		data, err := io.ReadAll(body)
		if err != nil {
			s.uploadReadError(w, err)
			return nil, false
		}
		return data, true
	}
	boundary := params["boundary"]
	if boundary == "" {
		writeError(w, http.StatusBadRequest, "multipart upload without boundary")
		return nil, false
	}
	mr := multipart.NewReader(body, boundary)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			writeError(w, http.StatusBadRequest, "multipart upload has no file part")
			return nil, false
		}
		if err != nil {
			s.uploadReadError(w, err)
			return nil, false
		}
		if part.FileName() == "" {
			continue
		}
		data, err := io.ReadAll(part)
		if err != nil {
			s.uploadReadError(w, err)
			return nil, false
		}
		return data, true
	}
}

// uploadReadError maps a body-read failure to 413 (limit exceeded) or
// 400 as wire.Error JSON.
func (s *Server) uploadReadError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.metrics.ingestRejected.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge,
			"upload exceeds %d bytes (raise -max-upload-bytes to accept larger binaries)", tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "bad upload body: %v", err)
}
