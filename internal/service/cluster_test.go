package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/cluster"
	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/wire"
)

// TestReadyzGatesOnWarmup: /readyz is 503 until SetReady, 200 after, and
// 503 again while draining — while /healthz stays a pure liveness probe.
func TestReadyzGatesOnWarmup(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp := getJSON(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("cold /readyz status %d, want 503", resp.StatusCode)
	}
	resp = getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cold /healthz status %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}

	s.SetReady()
	var body map[string]string
	resp = getJSON(t, ts.URL+"/readyz", &body)
	if resp.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Errorf("ready /readyz = %d %v, want 200 ready", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp = getJSON(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz status %d, want 503", resp.StatusCode)
	}
}

// shardConfigFor reproduces the effective config a corpus job built from
// the given overrides runs under — what a coordinator puts on the wire.
func shardConfigFor(t *testing.T, s *Server, overrides *wire.ConfigOverrides) wire.ConfigSnapshot {
	t.Helper()
	entry, err := s.models.get("uica", "hsw", true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ApplyOptions(s.cfg.Base, requestOptions(entry, overrides)...)
	return wire.SnapshotConfig(cfg)
}

// normalizeAccounting zeroes the cache-warmth-dependent counters; all
// other explanation bytes must match exactly.
func normalizeAccounting(t *testing.T, res []wire.CorpusResult) map[int]string {
	t.Helper()
	out := make(map[int]string, len(res))
	for _, r := range res {
		if r.Explanation == nil {
			t.Fatalf("block %d has no explanation: %+v", r.Index, r)
		}
		e := *r.Explanation
		e.CacheHits, e.ModelCalls = 0, 0
		raw, err := json.Marshal(&e)
		if err != nil {
			t.Fatal(err)
		}
		out[r.Index] = string(raw)
	}
	return out
}

// runCorpusJob submits a corpus job and polls it to a terminal state.
func runCorpusJob(t *testing.T, baseURL string, req wire.CorpusRequest) wire.JobStatus {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/corpus", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("corpus: status %d: %s", resp.StatusCode, body)
	}
	var acc wire.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(4 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		var st wire.JobStatus
		getJSON(t, baseURL+"/v1/jobs/"+acc.ID, &st)
		if st.State == wire.JobDone || st.State == wire.JobFailed || st.State == wire.JobCanceled {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
}

var clusterTestBlocks = []string{
	"add rcx, rax\nmov rdx, rcx\npop rbx",
	"imul rax, rbx\nimul rax, rcx",
	"add rax, rbx\nsub rcx, rdx\nxor rsi, rsi",
	"imul rdx, rsi\nadd rdx, rdi\nmov rax, rdx",
}

// TestShardEndpointMatchesLocalJob: POST /v1/shard on a fresh worker
// produces per-block explanation bytes identical to a local corpus job
// for the same blocks at the same seeds — the worker-side half of the
// cluster determinism contract.
func TestShardEndpointMatchesLocalJob(t *testing.T) {
	local, localTS := newTestServer(t, Config{})
	st := runCorpusJob(t, localTS.URL, wire.CorpusRequest{
		Blocks: clusterTestBlocks, Model: "uica", Config: fastOverrides(),
	})
	if st.State != wire.JobDone {
		t.Fatalf("local job: %+v", st)
	}

	snap := shardConfigFor(t, local, fastOverrides())
	worker, workerTS := newTestServer(t, Config{})
	worker.SetReady()
	sreq := wire.ShardRequest{
		JobID:  "job-x",
		Lease:  "job-x/l0",
		Spec:   "uica@hsw",
		Config: snap,
	}
	for i, b := range clusterTestBlocks {
		sreq.Blocks = append(sreq.Blocks, wire.ShardBlock{
			Index: i,
			Seed:  core.BlockSeed(snap.Seed, i),
			Block: b,
		})
	}
	resp, body := postJSON(t, workerTS.URL+"/v1/shard", sreq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard: status %d: %s", resp.StatusCode, body)
	}
	var sres wire.ShardResponse
	if err := json.Unmarshal(body, &sres); err != nil {
		t.Fatal(err)
	}
	if sres.Lease != "job-x/l0" || len(sres.Results) != len(clusterTestBlocks) {
		t.Fatalf("shard response: %+v", sres)
	}

	want := normalizeAccounting(t, st.Results)
	got := normalizeAccounting(t, sres.Results)
	for i := range clusterTestBlocks {
		if got[i] != want[i] {
			t.Errorf("block %d: shard bytes differ from local job:\n got %s\nwant %s", i, got[i], want[i])
		}
	}
}

// TestShardColdWorkerSheds: a worker that has not reported ready refuses
// leases with 503, so a coordinator retry lands elsewhere.
func TestShardColdWorkerSheds(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // no SetReady
	resp, body := postJSON(t, ts.URL+"/v1/shard", wire.ShardRequest{
		Spec:   "uica@hsw",
		Blocks: []wire.ShardBlock{{Index: 0, Seed: 1, Block: testBlock}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold shard: status %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestJobProgressFields: GET /v1/jobs/{id} carries the blocks_* progress
// fields in lockstep with the legacy counters.
func TestJobProgressFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := runCorpusJob(t, ts.URL, wire.CorpusRequest{
		Blocks: clusterTestBlocks[:2], Model: "uica", Config: fastOverrides(),
	})
	if st.State != wire.JobDone {
		t.Fatalf("job: %+v", st)
	}
	if st.BlocksTotal != 2 || st.BlocksDone != 2 || st.BlocksFailed != 0 {
		t.Errorf("progress fields %d/%d/%d, want 2/2/0", st.BlocksDone, st.BlocksTotal, st.BlocksFailed)
	}
	if st.BlocksTotal != st.Total || st.BlocksDone != st.Done || st.BlocksFailed != st.Failed {
		t.Errorf("progress fields diverge from legacy counters: %+v", st)
	}
}

// TestCoordinatorShardsJobAcrossWorkers is the in-process version of the
// cluster acceptance criterion: a coordinator with two static workers
// runs a corpus job with results byte-identical to a plain single-server
// job, attributes blocks to the workers, and exposes comet_cluster_*
// metrics.
func TestCoordinatorShardsJobAcrossWorkers(t *testing.T) {
	w1, ts1 := newTestServer(t, Config{})
	w2, ts2 := newTestServer(t, Config{})
	w1.SetReady()
	w2.SetReady()

	fast := cluster.Options{
		LeaseBlocks:  1,
		ProbeBackoff: 10 * time.Millisecond,
		Tick:         5 * time.Millisecond,
	}
	_, coordTS := newTestServer(t, Config{
		ClusterWorkers: []string{ts1.URL, ts2.URL},
		Cluster:        fast,
	})

	req := wire.CorpusRequest{Blocks: clusterTestBlocks, Model: "uica", Config: fastOverrides()}
	distributed := runCorpusJob(t, coordTS.URL, req)
	if distributed.State != wire.JobDone || distributed.Failed != 0 {
		t.Fatalf("distributed job: %+v", distributed)
	}

	_, plainTS := newTestServer(t, Config{})
	local := runCorpusJob(t, plainTS.URL, req)
	if local.State != wire.JobDone {
		t.Fatalf("local job: %+v", local)
	}

	want := normalizeAccounting(t, local.Results)
	got := normalizeAccounting(t, distributed.Results)
	for i := range clusterTestBlocks {
		if got[i] != want[i] {
			t.Errorf("block %d: distributed bytes differ from local:\n got %s\nwant %s", i, got[i], want[i])
		}
	}

	// Attribution: every block accounted to some worker, spread across
	// both (1-block leases over two ready workers).
	total := 0
	for _, wb := range distributed.Workers {
		if wb.Worker == "local" {
			t.Errorf("coordinator fell back to local execution: %+v", distributed.Workers)
		}
		total += wb.Blocks
	}
	if total != len(clusterTestBlocks) {
		t.Errorf("worker attribution covers %d blocks, want %d: %+v", total, len(clusterTestBlocks), distributed.Workers)
	}
	if len(distributed.Workers) != 2 {
		t.Errorf("expected both workers attributed, got %+v", distributed.Workers)
	}

	// Cluster status and metrics surfaces.
	var cs wire.ClusterStatus
	resp := getJSON(t, coordTS.URL+"/v1/cluster", &cs)
	if resp.StatusCode != http.StatusOK || len(cs.Workers) != 2 || cs.BlocksDone != uint64(len(clusterTestBlocks)) {
		t.Errorf("cluster status: %d %+v", resp.StatusCode, cs)
	}
	metricsResp, err := http.Get(coordTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := metricsResp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	metricsResp.Body.Close()
	for _, wantMetric := range []string{
		"comet_cluster_leases_dispatched_total",
		"comet_cluster_blocks_done_total 4",
		`comet_cluster_workers{state="ready"} 2`,
	} {
		if !strings.Contains(sb.String(), wantMetric) {
			t.Errorf("metrics missing %q", wantMetric)
		}
	}
}

// TestCoordinatorFallsBackWithoutWorkers: a coordinator whose pool never
// produces a ready worker still completes jobs — locally — and says so
// in the attribution.
func TestCoordinatorFallsBackWithoutWorkers(t *testing.T) {
	_, coordTS := newTestServer(t, Config{
		Coordinator: true,
		Cluster: cluster.Options{
			ReadyTimeout: 100 * time.Millisecond,
			Tick:         5 * time.Millisecond,
		},
	})
	st := runCorpusJob(t, coordTS.URL, wire.CorpusRequest{
		Blocks: clusterTestBlocks[:2], Model: "uica", Config: fastOverrides(),
	})
	if st.State != wire.JobDone || st.Done != 2 {
		t.Fatalf("fallback job: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].Worker != "local" || st.Workers[0].Blocks != 2 {
		t.Errorf("fallback attribution = %+v, want 2 blocks on local", st.Workers)
	}
}

// TestCoordinatorFallsBackOnAbandonedLeases: workers that pass /readyz
// but fail every shard exhaust the lease retries; the affected blocks
// must be finished by the coordinator's local engine (never recorded as
// failed), with attribution saying so.
func TestCoordinatorFallsBackOnAbandonedLeases(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	mux.HandleFunc("/v1/shard", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"worker cannot resolve this spec"}`, http.StatusBadRequest)
	})
	broken := httptest.NewServer(mux)
	defer broken.Close()

	_, coordTS := newTestServer(t, Config{
		ClusterWorkers: []string{broken.URL},
		Cluster: cluster.Options{
			LeaseBlocks:  2,
			LeaseRetries: 2,
			ProbeBackoff: 10 * time.Millisecond,
			Tick:         5 * time.Millisecond,
		},
	})
	st := runCorpusJob(t, coordTS.URL, wire.CorpusRequest{
		Blocks: clusterTestBlocks[:2], Model: "uica", Config: fastOverrides(),
	})
	if st.State != wire.JobDone || st.Done != 2 || st.Failed != 0 {
		t.Fatalf("job after abandoned leases: %+v (infrastructure failure must not fail blocks)", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].Worker != "local" || st.Workers[0].Blocks != 2 {
		t.Errorf("attribution = %+v, want 2 blocks on local", st.Workers)
	}
}

// TestClusterJoinEndpoint: dynamic worker self-registration shows up in
// the pool; non-coordinators 404 the cluster routes.
func TestClusterJoinEndpoint(t *testing.T) {
	_, coordTS := newTestServer(t, Config{Coordinator: true})
	resp, body := postJSON(t, coordTS.URL+"/v1/cluster/join", wire.JoinRequest{URL: "http://127.0.0.1:59999", Capacity: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d: %s", resp.StatusCode, body)
	}
	var jr wire.JoinResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Worker != "http://127.0.0.1:59999" || jr.TTLSeconds <= 0 {
		t.Errorf("join response: %+v", jr)
	}
	var cs wire.ClusterStatus
	getJSON(t, coordTS.URL+"/v1/cluster", &cs)
	if len(cs.Workers) != 1 || cs.Workers[0].Static || cs.Workers[0].Capacity != 2 {
		t.Errorf("pool after join: %+v", cs.Workers)
	}

	_, plainTS := newTestServer(t, Config{})
	resp, _ = postJSON(t, plainTS.URL+"/v1/cluster/join", wire.JoinRequest{URL: "http://x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("join on a non-coordinator: status %d, want 404", resp.StatusCode)
	}
}
