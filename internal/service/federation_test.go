package service

// Tests for the cluster-wide observability plane: /readyz reasons, the
// flight-recorder surface, explanation-quality telemetry, trace
// propagation through the binary-upload path, and federated trace views
// assembled across a coordinator and its workers.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/cluster"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
)

// TestReadyzReasons pins the machine-readable reason each non-200
// /readyz carries: "cold" (warm-up running), "restoring" (durable store
// attached, Restore not finished), "draining" (shutdown in progress).
func TestReadyzReasons(t *testing.T) {
	readyz := func(ts string) (int, map[string]string) {
		var body map[string]string
		resp := getJSON(t, ts+"/readyz", &body)
		return resp.StatusCode, body
	}

	// Cold: no store, SetReady not called yet.
	_, coldTS := newTestServer(t, Config{})
	if code, body := readyz(coldTS.URL); code != http.StatusServiceUnavailable ||
		body["status"] != "starting" || body["reason"] != "cold" {
		t.Errorf("cold /readyz = %d %v, want 503 starting/cold", code, body)
	}

	// Restoring: a durable store is attached and Restore has not run.
	store := openTestStore(t, t.TempDir())
	restoring, restoringTS := newTestServer(t, Config{Store: store})
	if code, body := readyz(restoringTS.URL); code != http.StatusServiceUnavailable ||
		body["reason"] != "restoring" {
		t.Errorf("pre-restore /readyz = %d %v, want 503 reason=restoring", code, body)
	}
	if _, err := restoring.Restore(); err != nil {
		t.Fatal(err)
	}
	// Restored but warm-up still pending: back to plain cold.
	if code, body := readyz(restoringTS.URL); code != http.StatusServiceUnavailable ||
		body["reason"] != "cold" {
		t.Errorf("post-restore /readyz = %d %v, want 503 reason=cold", code, body)
	}
	restoring.SetReady()
	if code, body := readyz(restoringTS.URL); code != http.StatusOK || body["status"] != "ready" {
		t.Errorf("ready /readyz = %d %v", code, body)
	}

	// Draining: shutdown flips the reason regardless of readiness.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := restoring.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := readyz(restoringTS.URL); code != http.StatusServiceUnavailable ||
		body["reason"] != "draining" {
		t.Errorf("draining /readyz = %d %v, want 503 reason=draining", code, body)
	}
}

// flightDump fetches and decodes GET /debug/flight.
func flightDump(t *testing.T, base string) (string, []map[string]any) {
	t.Helper()
	var dump struct {
		Process string           `json:"process"`
		Written uint64           `json:"written"`
		Records []map[string]any `json:"records"`
	}
	resp := getJSON(t, base+"/debug/flight", &dump)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flight: status %d", resp.StatusCode)
	}
	if dump.Written < uint64(len(dump.Records)) {
		t.Errorf("written %d < records held %d", dump.Written, len(dump.Records))
	}
	return dump.Process, dump.Records
}

// TestDebugFlightEndpoint drives requests and a corpus job through the
// server and asserts the flight recorder saw every request (sampling
// plays no part) and each job state transition.
func TestDebugFlightEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	st := runCorpusJob(t, ts.URL, wire.CorpusRequest{
		Blocks: []string{testBlock}, Model: "uica", Arch: "hsw", Config: fastOverrides(),
	})
	if st.State != wire.JobDone {
		t.Fatalf("job: %+v", st)
	}

	process, recs := flightDump(t, ts.URL)
	if process != "local" {
		t.Errorf("process label %q, want %q", process, "local")
	}
	routes := map[string]bool{}
	jobStates := map[string]bool{}
	for _, r := range recs {
		switch r["kind"] {
		case "request":
			routes[r["route"].(string)] = true
			if r["status"] == nil || r["latency_us"] == nil {
				t.Errorf("request record missing status/latency: %v", r)
			}
		case "job":
			jobStates[r["state"].(string)] = true
			if r["id"] != st.ID {
				t.Errorf("job record for %v, want %s", r["id"], st.ID)
			}
			if r["trace_id"] == nil {
				t.Errorf("job record carries no trace (jobs are force-traced): %v", r)
			}
		}
	}
	for _, want := range []string{"explain", "corpus", "jobs"} {
		if !routes[want] {
			t.Errorf("no flight record for route %q (have %v)", want, routes)
		}
	}
	for _, want := range []string{wire.JobQueued, wire.JobRunning, wire.JobDone} {
		if !jobStates[want] {
			t.Errorf("no flight record for job state %q (have %v)", want, jobStates)
		}
	}
}

// TestQualityTelemetryPerSpec asserts computed explanations feed the
// per-spec quality families: precision/coverage/queries histograms plus
// the sample and epsilon-violation counters.
func TestQualityTelemetryPerSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 3
	for i := 0; i < n; i++ {
		block := fmt.Sprintf("%s\nadd rax, %d", testBlock, i+1)
		if resp, body := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
			Block: block, Model: "uica", Arch: "hsw", Config: fastOverrides(),
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("explain %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	text := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		`comet_explanation_precision_count{spec="uica@hsw"} ` + fmt.Sprint(n),
		`comet_explanation_coverage_count{spec="uica@hsw"} ` + fmt.Sprint(n),
		`comet_explanation_queries_count{spec="uica@hsw"} ` + fmt.Sprint(n),
		`comet_explanation_quality_samples_total{spec="uica@hsw"} ` + fmt.Sprint(n),
		`comet_explanation_epsilon_violations_total{spec="uica@hsw"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Precision lives in [0,1]: the +Inf bucket count equals the le="1"
	// bucket count.
	if !strings.Contains(text, `comet_explanation_precision_bucket{spec="uica@hsw",le="1"} `+fmt.Sprint(n)) {
		t.Errorf("precision histogram le=1 bucket does not hold all %d samples:\n%s", n, text)
	}

	// A cache hit is not a computed explanation: repeating a block must
	// not inflate the sample count.
	if resp, _ := postJSON(t, ts.URL+"/v1/explain", wire.ExplainRequest{
		Block: testBlock + "\nadd rax, 1", Model: "uica", Arch: "hsw", Config: fastOverrides(),
	}); resp.StatusCode != http.StatusOK {
		t.Fatal("repeat explain failed")
	}
	text = fetchMetrics(t, ts.URL)
	if !strings.Contains(text, `comet_explanation_quality_samples_total{spec="uica@hsw"} `+fmt.Sprint(n)) {
		t.Errorf("cache hit inflated quality samples:\n%s", text)
	}
}

// TestUploadTracePropagation (PR-8 regression coverage): the spans of a
// binary upload form one connected trace — ingest.extract parents under
// the http.corpus root, and the async job.run span carries the same
// trace ID after the accepting request has finished.
func TestUploadTracePropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := uploadBinary(t, ts.URL,
		"?model=uica&arch=hsw&coverage_samples=150&seed=1",
		"application/octet-stream", readFixtureELF(t))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get("X-Comet-Trace-Id")
	if traceID == "" {
		t.Fatal("upload response carries no X-Comet-Trace-Id (corpus is a force-traced route)")
	}
	var acc wire.JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if _, st := pollJob(t, ts.URL, acc.ID); st.State != wire.JobDone {
		t.Fatalf("upload job: %+v", st)
	}

	// job.run ends asynchronously after the job flips to done.
	byName := map[string]obs.SpanRecord{}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got struct {
			Spans []obs.SpanRecord `json:"spans"`
		}
		getJSON(t, ts.URL+"/debug/traces/"+traceID, &got)
		byName = map[string]obs.SpanRecord{}
		for _, sp := range got.Spans {
			byName[sp.Name] = sp
		}
		if _, ok := byName["job.run"]; ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job.run span never reached trace %s (have %v)", traceID, byName)
		}
		time.Sleep(10 * time.Millisecond)
	}

	root, ok := byName["http.corpus"]
	if !ok {
		t.Fatalf("trace %s has no http.corpus root (have %v)", traceID, byName)
	}
	extract, ok := byName["ingest.extract"]
	if !ok {
		t.Fatalf("trace %s has no ingest.extract span", traceID)
	}
	if extract.ParentID != root.SpanID {
		t.Errorf("ingest.extract parent %q, want the http.corpus span %q", extract.ParentID, root.SpanID)
	}
	if run := byName["job.run"]; run.TraceID != traceID || run.ParentID == "" {
		t.Errorf("job.run did not resume the upload trace: %+v", run)
	}
}

// TestFederatedTraceAcrossProcesses: a coordinator shards a traced job
// across two in-process workers, then GET /debug/traces/{id}?cluster=1
// on the coordinator returns one merged span set containing spans
// labeled with all three processes, which WriteTree renders as a single
// parent-linked tree.
func TestFederatedTraceAcrossProcesses(t *testing.T) {
	w1, ts1 := newTestServer(t, Config{})
	w2, ts2 := newTestServer(t, Config{})
	w1.SetReady()
	w2.SetReady()

	_, coordTS := newTestServer(t, Config{
		ClusterWorkers: []string{ts1.URL, ts2.URL},
		Cluster: cluster.Options{
			LeaseBlocks:  1,
			ProbeBackoff: 10 * time.Millisecond,
			Tick:         5 * time.Millisecond,
		},
	})

	raw, _ := json.Marshal(wire.CorpusRequest{
		Blocks: clusterTestBlocks, Model: "uica", Config: fastOverrides(),
	})
	resp, err := http.Post(coordTS.URL+"/v1/corpus", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	var acc wire.JobAccepted
	err = json.NewDecoder(resp.Body).Decode(&acc)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("corpus: status %d, err %v", resp.StatusCode, err)
	}
	traceID := resp.Header.Get("X-Comet-Trace-Id")
	if traceID == "" {
		t.Fatal("corpus submission carries no trace ID")
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var st wire.JobStatus
		getJSON(t, coordTS.URL+"/v1/jobs/"+acc.ID, &st)
		if st.State == wire.JobDone {
			break
		}
		if st.State == wire.JobFailed || st.State == wire.JobCanceled || time.Now().After(deadline) {
			t.Fatalf("job: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Workers finish their shard spans asynchronously; poll the federated
	// view until spans from all three processes are present.
	var fed struct {
		TraceID   string `json:"trace_id"`
		Cluster   bool   `json:"cluster"`
		Processes []struct {
			Process string `json:"process"`
			Spans   int    `json:"spans"`
			Error   string `json:"error"`
		} `json:"processes"`
		Spans []obs.SpanRecord `json:"spans"`
	}
	procSpans := map[string]int{}
	deadline = time.Now().Add(10 * time.Second)
	for {
		getJSON(t, coordTS.URL+"/debug/traces/"+traceID+"?cluster=1", &fed)
		procSpans = map[string]int{}
		for _, sp := range fed.Spans {
			procSpans[sp.Process]++
		}
		if len(procSpans) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated trace never gathered spans from 3 processes: %v\nprocesses: %+v",
				procSpans, fed.Processes)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if !fed.Cluster || fed.TraceID != traceID {
		t.Errorf("federated envelope: cluster=%v trace=%s", fed.Cluster, fed.TraceID)
	}
	if len(fed.Processes) != 3 {
		t.Errorf("federated view lists %d processes, want 3: %+v", len(fed.Processes), fed.Processes)
	}
	for _, p := range fed.Processes {
		if p.Error != "" {
			t.Errorf("process %s unreachable during federation: %s", p.Process, p.Error)
		}
	}
	for _, proc := range []string{"coordinator", ts1.URL, ts2.URL} {
		if procSpans[proc] == 0 {
			t.Errorf("no spans from process %q in federated trace (have %v)", proc, procSpans)
		}
	}

	// The merged set is one connected tree: every span's parent is either
	// present or absent-because-remote — but the worker roots must parent
	// under coordinator spans (traceparent propagated across the lease).
	byID := map[string]bool{}
	for _, sp := range fed.Spans {
		byID[sp.SpanID] = true
	}
	for _, sp := range fed.Spans {
		if sp.Process != "coordinator" && sp.Name == "http.shard" && !byID[sp.ParentID] {
			t.Errorf("worker shard span %s (parent %q) is orphaned in the merged view", sp.SpanID, sp.ParentID)
		}
	}

	// And the tree renders: every process label appears in WriteTree
	// output, the human surface comet-trace prints.
	var sb strings.Builder
	obs.WriteTree(&sb, fed.Spans, 30)
	rendered := sb.String()
	for _, proc := range []string{"process=coordinator", "process=" + ts1.URL, "process=" + ts2.URL} {
		if !strings.Contains(rendered, proc) {
			t.Errorf("rendered tree missing %q:\n%s", proc, rendered)
		}
	}

	// A plain (non-cluster) fetch on the coordinator stays local: no
	// process labels, no federation envelope.
	var local struct {
		Cluster bool             `json:"cluster"`
		Spans   []obs.SpanRecord `json:"spans"`
	}
	getJSON(t, coordTS.URL+"/debug/traces/"+traceID, &local)
	if local.Cluster {
		t.Error("plain trace fetch returned the federated envelope")
	}
	for _, sp := range local.Spans {
		if sp.Process != "" {
			t.Errorf("local span %s carries a process label %q", sp.Name, sp.Process)
		}
	}
}
