package service

// Trace inspection endpoints. Finished spans live in a bounded
// in-process ring (obs.Ring); these handlers are the only way out. They
// are debugging surface, not an export pipeline: the ring forgets, the
// JSON is small, and a trace that spans processes (coordinator + worker)
// is assembled by querying each process for the same trace ID.

import (
	"net/http"
	"strings"

	"github.com/comet-explain/comet/internal/obs"
)

// handleTraces serves GET /debug/traces: recently finished traces, most
// recent first, capped by ?limit= (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.tracer.Enabled() {
		writeError(w, http.StatusNotFound, "tracing is disabled (trace sample rate < 0)")
		return
	}
	limit, err := queryInt(r, "limit", 100)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	traces := s.tracer.Ring().Traces(limit)
	if traces == nil {
		traces = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": traces})
}

// handleTrace serves GET /debug/traces/{id}: every span the ring still
// holds for one trace, oldest first.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.tracer.Enabled() {
		writeError(w, http.StatusNotFound, "tracing is disabled (trace sample rate < 0)")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such trace")
		return
	}
	spans := s.tracer.Ring().Trace(id)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "no spans recorded for trace %q (the ring is bounded; old traces age out)", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace_id": id, "spans": spans})
}
