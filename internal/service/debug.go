package service

// Trace inspection endpoints. Finished spans live in a bounded
// in-process ring (obs.Ring); these handlers are the only way out. They
// are debugging surface, not an export pipeline: the ring forgets, the
// JSON is small, and a trace that spans processes (coordinator + worker)
// is assembled by GET /debug/traces/{id}?cluster=1 — the coordinator
// fans the trace ID out to every worker in its pool and merges the
// remote spans with its own into one parent-linked tree.
//
// GET /debug/traces?outliers=1 lists the retained outlier traces: the
// slow/5xx requests whose full span trees were committed at request end
// regardless of head sampling. ?route= and ?min_ms= filter both
// listings; ?cluster=1 federates the outlier view like the trace view.
//
// GET /debug/flight dumps the flight recorder: the black-box ring of
// request/lease/job/outlier records kept regardless of trace sampling.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/comet-explain/comet/internal/obs"
)

// handleTraces serves GET /debug/traces: recently finished traces, most
// recent first — or, with ?outliers=1, the retained slow/5xx traces.
// ?limit= caps the listing (default 100), ?route= keeps one route, and
// ?min_ms= drops entries faster than the threshold.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.tracer.Enabled() {
		writeError(w, http.StatusNotFound, "tracing is disabled (trace sample rate < 0)")
		return
	}
	limit, err := queryInt(r, "limit", 100)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	minMS, err := queryInt(r, "min_ms", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := r.URL.Query()
	route := q.Get("route")
	if q.Get("outliers") == "1" {
		if q.Get("cluster") == "1" && s.coordinator != nil {
			s.serveFederatedOutliers(w, r, route, minMS, limit)
			return
		}
		outliers, written := s.outliers.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"outliers": filterOutliers(outliers, "", route, minMS, limit),
			"written":  written,
		})
		return
	}
	all := s.tracer.Ring().Traces(0)
	traces := make([]obs.TraceSummary, 0, len(all))
	for _, ts := range all {
		if route != "" && ts.Root != route && ts.Root != "http."+route {
			continue
		}
		if minMS > 0 && ts.DurationUS < int64(minMS)*1000 {
			continue
		}
		traces = append(traces, ts)
		if limit > 0 && len(traces) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": traces})
}

// filterOutliers applies the listing filters to an already newest-first
// outlier snapshot, labeling each entry with process when non-empty.
func filterOutliers(in []obs.OutlierTrace, process, route string, minMS, limit int) []obs.OutlierTrace {
	out := make([]obs.OutlierTrace, 0, len(in))
	for _, o := range in {
		if route != "" && o.Route != route {
			continue
		}
		if minMS > 0 && o.DurationUS < int64(minMS)*1000 {
			continue
		}
		if process != "" {
			o.Process = process
		}
		out = append(out, o)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// handleTrace serves GET /debug/traces/{id}: every span the ring still
// holds for one trace, oldest first. With ?cluster=1 on a coordinator,
// the response is the federated view: local spans merged with the spans
// every pool worker holds for the same trace ID, each labeled with the
// process that recorded it.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.tracer.Enabled() {
		writeError(w, http.StatusNotFound, "tracing is disabled (trace sample rate < 0)")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such trace")
		return
	}
	spans := s.tracer.Ring().Trace(id)
	if r.URL.Query().Get("cluster") == "1" && s.coordinator != nil {
		s.serveFederatedTrace(w, r, id, spans)
		return
	}
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "no spans recorded for trace %q (the ring is bounded; old traces age out)", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace_id": id, "spans": spans})
}

// peerClient fetches remote debug views during federation; the short
// timeout bounds the whole fan-out — a dead worker costs one timeout,
// not a hung request.
var peerClient = &http.Client{Timeout: 5 * time.Second}

// peerResult is one live worker's raw answer from a federated fan-out.
type peerResult struct {
	worker string
	found  bool   // false when the worker answered 404 (no data — a normal answer)
	body   []byte // raw JSON body when found
	err    error  // transport failure or non-200/404 status
}

// fanOutWorkers queries path on every live pool worker (static pool plus
// dynamic joins; workers whose heartbeats have expired are skipped)
// concurrently, each bounded by peerClient's timeout. Federated views
// never fail on a down worker: its error rides in its peerResult.
func (s *Server) fanOutWorkers(ctx context.Context, path string) []peerResult {
	workers := s.coordinator.Pool().Snapshot()
	out := make([]peerResult, 0, len(workers))
	for _, worker := range workers {
		if worker.State == "expired" {
			continue
		}
		out = append(out, peerResult{worker: worker.ID})
	}
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(p *peerResult) {
			defer wg.Done()
			p.body, p.found, p.err = fetchPeerJSON(ctx, p.worker, path)
		}(&out[i])
	}
	wg.Wait()
	return out
}

// fetchPeerJSON performs one federation GET. A 404 reports (nil, false,
// nil): the worker holds no data for the query, which is an answer, not
// a failure.
func fetchPeerJSON(ctx context.Context, baseURL, path string) ([]byte, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(baseURL, "/")+path, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := peerClient.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, false, err
	}
	return body, true, nil
}

// decodePeerBody unmarshals a peer's raw federation answer.
func decodePeerBody(body []byte, v any) error { return json.Unmarshal(body, v) }

// traceProcess summarizes one process's contribution to a federated
// view (spans of one trace, or retained outliers).
type traceProcess struct {
	Process  string `json:"process"`
	Spans    int    `json:"spans,omitempty"`
	Outliers int    `json:"outliers,omitempty"`
	// Error is set when the process could not be queried (down worker,
	// timeout); its contribution is simply missing from the merged view.
	Error string `json:"error,omitempty"`
}

// serveFederatedTrace answers GET /debug/traces/{id}?cluster=1 on a
// coordinator: concurrent fan-out of the trace ID to every live worker,
// then a merge of remote and local spans into one parent-linked set.
// Workers are queried without ?cluster=1, so federation never recurses.
func (s *Server) serveFederatedTrace(w http.ResponseWriter, r *http.Request, id string, local []obs.SpanRecord) {
	for i := range local {
		local[i].Process = s.cfg.ProcessLabel
	}
	processes := []traceProcess{{Process: s.cfg.ProcessLabel, Spans: len(local)}}
	groups := [][]obs.SpanRecord{local}
	workerCount := 0

	for _, pr := range s.fanOutWorkers(r.Context(), "/debug/traces/"+url.PathEscape(id)) {
		workerCount++
		var spans []obs.SpanRecord
		if pr.err == nil && pr.found {
			var body struct {
				Spans []obs.SpanRecord `json:"spans"`
			}
			if err := decodePeerBody(pr.body, &body); err != nil {
				pr.err = err
			} else {
				spans = body.Spans
			}
		}
		for k := range spans {
			spans[k].Process = pr.worker
		}
		p := traceProcess{Process: pr.worker, Spans: len(spans)}
		if pr.err != nil {
			p.Error = pr.err.Error()
		}
		processes = append(processes, p)
		groups = append(groups, spans)
	}

	merged := obs.MergeSpans(groups...)
	if len(merged) == 0 {
		writeError(w, http.StatusNotFound,
			"no spans recorded for trace %q on the coordinator or any of %d workers", id, workerCount)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id":  id,
		"cluster":   true,
		"processes": processes,
		"spans":     merged,
	})
}

// serveFederatedOutliers answers GET /debug/traces?outliers=1&cluster=1:
// the coordinator's retained outliers merged with every live worker's,
// newest first, each labeled with the process that retained it. Filters
// are forwarded, so workers ship only what the view keeps.
func (s *Server) serveFederatedOutliers(w http.ResponseWriter, r *http.Request, route string, minMS, limit int) {
	local, _ := s.outliers.Snapshot()
	merged := filterOutliers(local, s.cfg.ProcessLabel, route, minMS, 0)
	processes := []traceProcess{{Process: s.cfg.ProcessLabel, Outliers: len(merged)}}

	path := "/debug/traces?outliers=1"
	if route != "" {
		path += "&route=" + url.QueryEscape(route)
	}
	if minMS > 0 {
		path += fmt.Sprintf("&min_ms=%d", minMS)
	}
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	for _, pr := range s.fanOutWorkers(r.Context(), path) {
		p := traceProcess{Process: pr.worker}
		if pr.err == nil && pr.found {
			var body struct {
				Outliers []obs.OutlierTrace `json:"outliers"`
			}
			if err := decodePeerBody(pr.body, &body); err != nil {
				pr.err = err
			} else {
				for k := range body.Outliers {
					body.Outliers[k].Process = pr.worker
				}
				p.Outliers = len(body.Outliers)
				merged = append(merged, body.Outliers...)
			}
		}
		if pr.err != nil {
			p.Error = pr.err.Error()
		}
		processes = append(processes, p)
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Start.After(merged[j].Start) })
	if limit > 0 && len(merged) > limit {
		merged = merged[:limit]
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cluster":   true,
		"processes": processes,
		"outliers":  merged,
	})
}

// handleFlight serves GET /debug/flight: the flight recorder's current
// contents as one JSON document — the same dump a SIGQUIT writes to
// stderr.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.flight.WriteJSON(w, s.cfg.ProcessLabel)
}
