package service

// Trace inspection endpoints. Finished spans live in a bounded
// in-process ring (obs.Ring); these handlers are the only way out. They
// are debugging surface, not an export pipeline: the ring forgets, the
// JSON is small, and a trace that spans processes (coordinator + worker)
// is assembled by GET /debug/traces/{id}?cluster=1 — the coordinator
// fans the trace ID out to every worker in its pool and merges the
// remote spans with its own into one parent-linked tree.
//
// GET /debug/flight dumps the flight recorder: the black-box ring of
// request/lease/job records kept regardless of trace sampling.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/comet-explain/comet/internal/obs"
)

// handleTraces serves GET /debug/traces: recently finished traces, most
// recent first, capped by ?limit= (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.tracer.Enabled() {
		writeError(w, http.StatusNotFound, "tracing is disabled (trace sample rate < 0)")
		return
	}
	limit, err := queryInt(r, "limit", 100)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	traces := s.tracer.Ring().Traces(limit)
	if traces == nil {
		traces = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": traces})
}

// handleTrace serves GET /debug/traces/{id}: every span the ring still
// holds for one trace, oldest first. With ?cluster=1 on a coordinator,
// the response is the federated view: local spans merged with the spans
// every pool worker holds for the same trace ID, each labeled with the
// process that recorded it.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if !s.tracer.Enabled() {
		writeError(w, http.StatusNotFound, "tracing is disabled (trace sample rate < 0)")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such trace")
		return
	}
	spans := s.tracer.Ring().Trace(id)
	if r.URL.Query().Get("cluster") == "1" && s.coordinator != nil {
		s.serveFederatedTrace(w, r, id, spans)
		return
	}
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "no spans recorded for trace %q (the ring is bounded; old traces age out)", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace_id": id, "spans": spans})
}

// peerTraceClient fetches remote trace spans during federation; the
// short timeout bounds the whole fan-out — a dead worker costs one
// timeout, not a hung request.
var peerTraceClient = &http.Client{Timeout: 5 * time.Second}

// traceProcess summarizes one process's contribution to a federated
// trace.
type traceProcess struct {
	Process string `json:"process"`
	Spans   int    `json:"spans"`
	// Error is set when the process could not be queried (down worker,
	// timeout); its spans are simply missing from the merged view.
	Error string `json:"error,omitempty"`
}

// serveFederatedTrace answers GET /debug/traces/{id}?cluster=1 on a
// coordinator: concurrent fan-out of the trace ID to every known worker
// (static pool plus dynamic joins; only workers whose heartbeats have
// expired are skipped), then a merge of remote and local spans into one
// parent-linked set. A worker that holds no spans for the trace (404)
// contributes zero spans, not an error. Workers are queried without
// ?cluster=1, so federation never recurses.
func (s *Server) serveFederatedTrace(w http.ResponseWriter, r *http.Request, id string, local []obs.SpanRecord) {
	for i := range local {
		local[i].Process = s.cfg.ProcessLabel
	}
	processes := []traceProcess{{Process: s.cfg.ProcessLabel, Spans: len(local)}}
	groups := [][]obs.SpanRecord{local}

	workers := s.coordinator.Pool().Snapshot()
	remote := make([][]obs.SpanRecord, len(workers))
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, worker := range workers {
		if worker.State == "expired" {
			continue
		}
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			remote[i], errs[i] = fetchPeerTrace(r.Context(), url, id)
		}(i, worker.ID)
	}
	wg.Wait()
	for i, worker := range workers {
		if worker.State == "expired" {
			continue
		}
		spans := remote[i]
		for k := range spans {
			spans[k].Process = worker.ID
		}
		p := traceProcess{Process: worker.ID, Spans: len(spans)}
		if errs[i] != nil {
			p.Error = errs[i].Error()
		}
		processes = append(processes, p)
		groups = append(groups, spans)
	}

	merged := obs.MergeSpans(groups...)
	if len(merged) == 0 {
		writeError(w, http.StatusNotFound,
			"no spans recorded for trace %q on the coordinator or any of %d workers", id, len(workers))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id":  id,
		"cluster":   true,
		"processes": processes,
		"spans":     merged,
	})
}

// fetchPeerTrace fetches one worker's spans for a trace ID. A 404 means
// the worker holds no spans for that trace — a normal answer, not a
// failure.
func fetchPeerTrace(ctx context.Context, baseURL, id string) ([]obs.SpanRecord, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(baseURL, "/")+"/debug/traces/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := peerTraceClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Spans []obs.SpanRecord `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Spans, nil
}

// handleFlight serves GET /debug/flight: the flight recorder's current
// contents as one JSON document — the same dump a SIGQUIT writes to
// stderr.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.flight.WriteJSON(w, s.cfg.ProcessLabel)
}
