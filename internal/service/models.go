package service

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/comet-explain/comet"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// The service resolves every model through the public comet registry
// (comet.ResolveModel), so any spec the registry knows — zoo models,
// parameterized neural models, remote backends, application-registered
// custom models — is servable without the service knowing its name. What
// this file adds on top of the registry is instance sharing: one warmed
// model and one prediction cache per canonical spec, for the life of the
// process.

// errRegistryFull signals that the per-spec instance table is at
// capacity; the HTTP layer maps it to 429. Distinct specs (each a
// potentially expensive warm-up plus a prediction cache) are allocated on
// client demand, so the table is bounded like every other queue here.
var errRegistryFull = errors.New("model instance table full (too many distinct model specs)")

// errRestrictedSpec refuses client-supplied specs whose resolution
// exercises ambient authority — dialing URLs (remote@...), reading
// server files (ithemal?load=...). The HTTP layer maps it to 403;
// operators opt in with Config.AllowRestrictedSpecs, and
// operator-initiated resolution (RegisterModel, WarmModel/-preload) is
// never restricted.
var errRestrictedSpec = errors.New("spec resolves a restricted model (network or filesystem access at warm-up); start the server with -allow-restricted-specs to serve it")

// modelEntry is one warmed canonical spec: the model instance, its batch
// view, and the prediction cache every request against it shares.
// Warm-up (construction, training, remote handshake) happens exactly
// once, on first use, guarded by the entry's once.
type modelEntry struct {
	spec    comet.ModelSpec
	once    sync.Once
	warm    atomic.Bool // set after once completes; lets /metrics skip in-flight warm-ups racelessly
	model   costmodel.Model
	batch   costmodel.BatchModel
	cache   *costmodel.Cache
	epsilon float64 // model-recommended ε (analytical models quantize)
	err     error
}

// modelRegistry owns the per-spec instance table. Entries are keyed by
// canonical spec string and built lazily; every request for the same
// canonical spec shares the same instance and prediction cache for the
// life of the process.
type modelRegistry struct {
	mu          sync.Mutex
	entries     map[string]*modelEntry
	cacheSize   int
	trainBlocks int
	maxEntries  int
	// allowRestricted permits client-supplied restricted specs
	// (remote@..., ithemal?load=...).
	allowRestricted bool
	// warmGate, when non-nil, brackets client-initiated warm-ups — the
	// server passes its explain-slot semaphore so an expensive warm-up
	// (training, remote handshake) is backpressured like any other
	// computation instead of running unbounded on the handler.
	warmGate func() (release func(), err error)
}

func newModelRegistry(cacheSize, trainBlocks, maxEntries int, allowRestricted bool) *modelRegistry {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	return &modelRegistry{
		entries:         make(map[string]*modelEntry),
		cacheSize:       cacheSize,
		trainBlocks:     trainBlocks,
		maxEntries:      maxEntries,
		allowRestricted: allowRestricted,
	}
}

// register installs a ready-made model (tests inject counting models;
// deployments can preload trained neural models) under name@arch,
// bypassing the comet registry. Epsilon 0 means the standard 0.5-cycle
// ball.
func (r *modelRegistry) register(name string, arch x86.Arch, m costmodel.Model, epsilon float64) {
	if epsilon <= 0 {
		epsilon = 0.5
	}
	if def, ok := comet.LookupModel(name); ok {
		name = def.Name // fold aliases onto the canonical name
	}
	spec := comet.ModelSpec{Name: name, Target: wire.ArchName(arch)}
	e := &modelEntry{
		spec:    spec,
		model:   m,
		batch:   costmodel.AsBatch(m),
		cache:   costmodel.NewCache(r.cacheSize),
		epsilon: epsilon,
	}
	e.once.Do(func() {}) // already warm
	e.warm.Store(true)
	r.mu.Lock()
	r.entries[spec.String()] = e
	r.mu.Unlock()
}

// get returns the warmed entry for a model spec string, building it on
// first use. archDefault (a wire arch name) fills in the spec's target
// when the model targets an arch and the spec has none. trusted marks
// operator-initiated resolution (boot preload), which bypasses the
// restricted-spec policy and the warm-up gate; client requests pass
// false. Concurrent callers for the same entry block until the single
// warm-up finishes; callers for other entries proceed independently.
func (r *modelRegistry) get(modelStr, archDefault string, trusted bool) (*modelEntry, error) {
	spec, err := comet.ParseModelSpec(modelStr)
	if err != nil {
		return nil, err
	}
	spec = spec.WithDefaultTarget(archDefault)
	// Directly registered entries (injected instances, keyed name@arch)
	// take precedence over lazy registry resolution.
	r.mu.Lock()
	if e, ok := r.entries[spec.String()]; ok {
		r.mu.Unlock()
		return r.warm(e, spec.String(), true)
	}
	r.mu.Unlock()

	// The server's -train-blocks default applies to neural specs that
	// don't pin their own training-set size; injecting it before
	// canonicalization keeps the canonical spec honest about the model
	// actually served.
	if r.trainBlocks > 0 {
		spec = spec.WithDefaultParam("ithemal", "train", strconv.Itoa(r.trainBlocks))
	}
	canon, err := comet.CanonicalSpec(spec)
	if err != nil {
		return nil, err
	}
	if def, ok := comet.LookupModel(canon.Name); ok && !trusted && !r.allowRestricted && def.RestrictedFor(canon) {
		return nil, errRestrictedSpec
	}
	key := canon.String()
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok {
		// The bounded table sheds untrusted demand; operator-initiated
		// entries (preload, the default model) always allocate, so a
		// full table can't lock the server's own configuration out.
		if !trusted && len(r.entries) >= r.maxEntries {
			r.mu.Unlock()
			return nil, errRegistryFull
		}
		e = &modelEntry{spec: canon, cache: costmodel.NewCache(r.cacheSize)}
		r.entries[key] = e
	}
	r.mu.Unlock()
	return r.warm(e, key, trusted)
}

// warm blocks until the entry is warm (resolving it if this caller is
// first) and returns it. Untrusted first-callers hold a warm-up gate
// slot while resolving, so expensive warm-ups share the explain
// concurrency budget. A failed warm-up is evicted from the table — the
// failure (a briefly unreachable remote backend, say) is returned to
// every waiter but not cached forever, and it stops counting against
// maxEntries.
func (r *modelRegistry) warm(e *modelEntry, key string, trusted bool) (*modelEntry, error) {
	if !e.warm.Load() && !trusted && r.warmGate != nil {
		release, err := r.warmGate()
		if err != nil {
			return nil, err
		}
		defer release()
	}
	e.once.Do(func() {
		rm, err := comet.ResolveModel(e.spec)
		if err != nil {
			e.err = err
		} else {
			e.model = rm.Model
			e.batch = costmodel.AsBatch(rm.Model)
			e.epsilon = rm.Epsilon
		}
		e.warm.Store(true)
	})
	if e.err != nil {
		r.mu.Lock()
		if r.entries[key] == e {
			delete(r.entries, key)
		}
		r.mu.Unlock()
		return nil, e.err
	}
	return e, nil
}

// specString returns the entry's canonical spec string (its cache and
// single-flight identity).
func (e *modelEntry) specString() string { return e.spec.String() }

// warmedSpecs lists the canonical specs with a live warmed instance,
// sorted.
func (r *modelRegistry) warmedSpecs() []string {
	r.mu.Lock()
	entries := make([]*modelEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	var out []string
	for _, e := range entries {
		if e.warm.Load() && e.err == nil {
			out = append(out, e.specString())
		}
	}
	sort.Strings(out)
	return out
}

// cacheGauges snapshots every warmed entry's prediction cache for
// /metrics, in stable key order.
func (r *modelRegistry) cacheGauges() []gauge {
	r.mu.Lock()
	keys := make([]string, 0, len(r.entries))
	byKey := make(map[string]*modelEntry, len(r.entries))
	for k, e := range r.entries {
		keys = append(keys, k)
		byKey[k] = e
	}
	r.mu.Unlock()
	sort.Strings(keys)
	var out []gauge
	for _, k := range keys {
		e := byKey[k]
		if !e.warm.Load() || e.err != nil {
			// Warm-up still in flight (or failed); its cache is empty anyway.
			continue
		}
		stats := e.cache.Stats()
		labels := fmt.Sprintf("model=%q,arch=%q", e.spec.Name, wire.ArchName(e.model.Arch()))
		out = append(out,
			gauge{name: "comet_prediction_cache_hits_total", labels: labels, value: float64(stats.Hits)},
			gauge{name: "comet_prediction_cache_misses_total", labels: labels, value: float64(stats.Misses)},
			gauge{name: "comet_prediction_cache_hit_rate", labels: labels, value: stats.HitRate()},
			gauge{name: "comet_prediction_cache_entries", labels: labels, value: float64(stats.Entries)},
		)
	}
	return out
}

// cacheTotals sums prediction-cache hits and misses across every warmed
// entry — the aggregate counters behind the history's
// hit_rate.prediction_cache series.
func (r *modelRegistry) cacheTotals() (hits, misses uint64) {
	r.mu.Lock()
	entries := make([]*modelEntry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for _, e := range entries {
		if !e.warm.Load() || e.err != nil {
			continue
		}
		st := e.cache.Stats()
		hits += st.Hits
		misses += st.Misses
	}
	return hits, misses
}
