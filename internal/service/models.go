package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/comet-explain/comet/internal/analytical"
	"github.com/comet-explain/comet/internal/bhive"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/hwsim"
	"github.com/comet-explain/comet/internal/ithemal"
	"github.com/comet-explain/comet/internal/mca"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// modelEntry is one warmed (model, arch) pair: the model instance and the
// prediction cache every request against it shares. Warm-up (construction,
// and for the neural model a full training run) happens exactly once, on
// first use, guarded by the entry's once.
type modelEntry struct {
	name    string
	arch    x86.Arch
	once    sync.Once
	warm    atomic.Bool // set after once completes; lets /metrics skip in-flight warm-ups racelessly
	model   costmodel.Model
	cache   *costmodel.Cache
	epsilon float64 // model-recommended ε (analytical models quantize)
	err     error
}

// modelRegistry owns the model zoo. Entries are keyed "name|arch" and
// built lazily; every request for the same (model, arch) shares the same
// instance and prediction cache for the life of the process.
type modelRegistry struct {
	mu          sync.Mutex
	entries     map[string]*modelEntry
	cacheSize   int
	trainBlocks int
	trainSeed   int64
}

func newModelRegistry(cacheSize, trainBlocks int) *modelRegistry {
	if trainBlocks <= 0 {
		trainBlocks = 1500
	}
	return &modelRegistry{
		entries:     make(map[string]*modelEntry),
		cacheSize:   cacheSize,
		trainBlocks: trainBlocks,
		trainSeed:   42,
	}
}

// register installs a ready-made model (tests inject counting models;
// comet-serve preloads zoo models at boot). Epsilon 0 means the standard
// 0.5-cycle ball.
func (r *modelRegistry) register(name string, arch x86.Arch, m costmodel.Model, epsilon float64) {
	if epsilon <= 0 {
		epsilon = 0.5
	}
	e := &modelEntry{name: name, arch: arch, model: m, cache: costmodel.NewCache(r.cacheSize), epsilon: epsilon}
	e.once.Do(func() {}) // already warm
	e.warm.Store(true)
	r.mu.Lock()
	r.entries[modelKey(name, arch)] = e
	r.mu.Unlock()
}

func modelKey(name string, arch x86.Arch) string {
	return name + "|" + wire.ArchName(arch)
}

// get returns the warmed entry for (name, arch), building it on first use.
// Concurrent callers for the same entry block until the single warm-up
// finishes; callers for other entries proceed independently.
func (r *modelRegistry) get(name string, arch x86.Arch) (*modelEntry, error) {
	name = canonicalModelName(name)
	key := modelKey(name, arch)
	r.mu.Lock()
	e, ok := r.entries[key]
	if !ok {
		if !isZooModel(name) {
			// Refuse to allocate registry entries for arbitrary client
			// strings; only zoo models build lazily.
			r.mu.Unlock()
			return nil, fmt.Errorf("unknown model %q (want c, uica, mca, hwsim, or ithemal)", name)
		}
		e = &modelEntry{name: name, arch: arch, cache: costmodel.NewCache(r.cacheSize)}
		r.entries[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		e.model, e.epsilon, e.err = r.build(name, arch)
		e.warm.Store(true)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// canonicalModelName folds aliases onto the zoo names; unknown names map
// to "" unless already registered (custom test models keep their name).
func canonicalModelName(name string) string {
	switch strings.ToLower(name) {
	case "c", "analytical":
		return "c"
	case "", "uica":
		return "uica"
	case "mca":
		return "mca"
	case "hwsim", "hardware":
		return "hwsim"
	case "ithemal", "neural":
		return "ithemal"
	}
	return name
}

// isZooModel reports whether name is one of the built-in zoo models.
func isZooModel(name string) bool {
	switch name {
	case "c", "uica", "mca", "hwsim", "ithemal":
		return true
	}
	return false
}

// build constructs (and for ithemal, trains) a zoo model.
func (r *modelRegistry) build(name string, arch x86.Arch) (costmodel.Model, float64, error) {
	switch name {
	case "c":
		return analytical.New(arch), analytical.Epsilon, nil
	case "uica":
		return uica.New(arch), 0.5, nil
	case "mca":
		return mca.New(arch), 0.5, nil
	case "hwsim":
		return hwsim.New(hwsim.HardwareConfig(arch)), 0.5, nil
	case "ithemal":
		blocks := bhive.Generate(bhive.Config{
			N: r.trainBlocks, MinInstrs: 1, MaxInstrs: 12, Seed: r.trainSeed,
		})
		samples := make([]ithemal.Sample, len(blocks))
		for i, b := range blocks {
			samples[i] = ithemal.Sample{Block: b.Block, Throughput: b.Throughput[arch]}
		}
		m := ithemal.New(ithemal.DefaultConfig(arch))
		m.Train(samples, nil)
		return m, 0.5, nil
	}
	return nil, 0, fmt.Errorf("unknown model %q (want c, uica, mca, hwsim, or ithemal)", name)
}

// cacheGauges snapshots every warmed entry's prediction cache for
// /metrics, in stable key order.
func (r *modelRegistry) cacheGauges() []gauge {
	r.mu.Lock()
	keys := make([]string, 0, len(r.entries))
	byKey := make(map[string]*modelEntry, len(r.entries))
	for k, e := range r.entries {
		keys = append(keys, k)
		byKey[k] = e
	}
	r.mu.Unlock()
	sort.Strings(keys)
	var out []gauge
	for _, k := range keys {
		e := byKey[k]
		if !e.warm.Load() {
			// Warm-up still in flight; its cache is empty anyway.
			continue
		}
		stats := e.cache.Stats()
		labels := fmt.Sprintf("model=%q,arch=%q", e.name, wire.ArchName(e.arch))
		out = append(out,
			gauge{name: "comet_prediction_cache_hits_total", labels: labels, value: float64(stats.Hits)},
			gauge{name: "comet_prediction_cache_misses_total", labels: labels, value: float64(stats.Misses)},
			gauge{name: "comet_prediction_cache_hit_rate", labels: labels, value: stats.HitRate()},
			gauge{name: "comet_prediction_cache_entries", labels: labels, value: float64(stats.Entries)},
		)
	}
	return out
}
