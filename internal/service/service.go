// Package service implements cometd, the explanation-serving subsystem:
// a stdlib-only HTTP/JSON server that owns the model zoo, the shared
// prediction caches, and the batched corpus engine, and exposes them as a
// long-lived, multi-tenant API.
//
// Routes:
//
//	POST /v1/explain        synchronous single-block explanation
//	POST /v1/predict        batch cost-model queries (the remote-model backend)
//	POST /v1/corpus         asynchronous corpus job (bounded queue, 429 on overflow)
//	GET  /v1/jobs           list every known job (queued, running, finished, restored)
//	GET  /v1/jobs/{id}      job status + paginated results (?offset=&limit=)
//	GET  /v1/jobs/{id}/stream  chunked result stream (NDJSON, or binary frames via Accept)
//	GET  /v1/models         registered model specs + their default configs
//	POST /v1/shard          execute one lease of a sharded corpus job (cluster worker)
//	POST /v1/cluster/join   worker self-registration + heartbeat (coordinator mode)
//	GET  /v1/cluster        worker pool + lease-scheduler counters (coordinator mode)
//	GET  /healthz           liveness
//	GET  /readyz            readiness (200 only after SetReady: warm-up + Restore done)
//	GET  /metrics           Prometheus text metrics
//
// Every route speaks JSON by default; /v1/explain, /v1/predict,
// /v1/shard, and the job stream additionally negotiate the COMET binary
// frame codec — a request with Content-Type: application/x-comet-frame
// carries a binary body, an Accept header listing it selects a binary
// response (see internal/wire).
//
// Models are addressed by registry spec strings ("uica", "c@skl",
// "ithemal@hsw?hidden=64&train=2000", "remote@http://other:8372") and
// resolved through the public comet registry, so any registered model —
// including another comet-serve, via the remote spec — is servable.
//
// Serving invariants:
//
//   - One warmed model instance and one prediction cache per canonical
//     model spec, shared by every request for the life of the process.
//   - Identical in-flight explain requests coalesce onto one computation
//     (single-flight keyed by model, arch, config, and canonical block text).
//   - Finished explanations land in a capped LRU result store; repeat
//     queries are O(1) and cost zero model work.
//   - Explain concurrency is bounded by a worker-slot semaphore with a
//     bounded wait queue; overflow is rejected with 429, never buffered
//     without bound.
//   - Explanations are reproducible: per-request sampling parallelism
//     defaults to 1, so the same request body always yields the same
//     explanation, equal to a library Explain call at the same seed.
//   - With a durable store (Config.Store), computed explanations and
//     corpus-job checkpoints outlive the process: Restore reloads warm
//     results and resumes interrupted jobs with output identical to an
//     uninterrupted run. The store is an accelerator, never a
//     dependency — its failures are counted, not surfaced.
//   - In coordinator mode (Config.Coordinator / ClusterWorkers), corpus
//     jobs shard across the worker pool through internal/cluster; leases
//     carry the original per-block seeds, so distributed results are
//     byte-identical to local ones, and the local engine remains the
//     fallback when no worker is ready.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/comet-explain/comet/internal/cluster"
	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/persist"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// Config sizes the server. Zero values get production-sane defaults.
type Config struct {
	// Base is the default explanation configuration; zero means
	// core.DefaultConfig. Request ConfigOverrides overlay it.
	Base core.Config
	// DefaultModel is the model spec used when a request omits "model"
	// (default "uica").
	DefaultModel string
	// TrainBlocks sizes the ithemal model's warm-up training set for
	// specs that don't pin their own train= parameter.
	TrainBlocks int
	// MaxModelEntries bounds the distinct canonical model specs this
	// server will warm (each is a model instance plus a prediction
	// cache); overflow gets 429 (0 = 64).
	MaxModelEntries int
	// AllowRestrictedSpecs permits client-supplied specs whose
	// resolution exercises ambient authority — remote@<url> (the server
	// dials the URL) and ithemal?load=<path> (the server reads the
	// file). Off by default: only operator-initiated resolution
	// (RegisterModel, WarmModel/-preload) may do either. Enable it on
	// trusted networks to let clients chain servers.
	AllowRestrictedSpecs bool
	// PredictionCacheSize bounds each (model, arch) prediction cache in
	// entries (0 = package default of about a million).
	PredictionCacheSize int
	// MaxConcurrentExplains bounds simultaneously computing explain
	// requests (0 = GOMAXPROCS).
	MaxConcurrentExplains int
	// MaxQueuedExplains bounds explain requests waiting for a slot
	// beyond the ones computing; overflow gets 429 (0 = 4×concurrent).
	MaxQueuedExplains int
	// JobWorkers is the number of corpus jobs executing at once (0 = 1).
	JobWorkers int
	// JobQueueDepth bounds queued corpus jobs; overflow gets 429 (0 = 16).
	JobQueueDepth int
	// MaxCorpusBlocks caps the corpus size a single job may carry
	// (0 = 10000); larger requests get 413.
	MaxCorpusBlocks int
	// ResultStoreSize caps the explanation LRU result store (0 = 1024).
	ResultStoreSize int
	// InternTableSize caps the binary-request intern table, which maps
	// SHA-256 over raw frame bytes to pre-encoded responses (0 =
	// ResultStoreSize).
	InternTableSize int
	// StreamRingSize bounds the results retained in memory by a
	// streaming corpus job (CorpusRequest.Stream) for catch-up reads on
	// GET /v1/jobs/{id}/stream; a reader that falls further behind than
	// the ring gets a lag error instead of stalling the job (0 = 4096).
	StreamRingSize int
	// JobHistorySize caps retained finished jobs (0 = 64).
	JobHistorySize int
	// MaxBodyBytes caps request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// Store, when non-nil, is the durable explanation/job store: every
	// computed explanation and every corpus-job checkpoint is persisted
	// to it, and Restore reloads warm results and resumes interrupted
	// jobs after a restart. The caller opens and closes it (see
	// persist.Open and the comet-serve -store-dir flag).
	Store persist.Store
	// JobCheckpointEvery fsyncs the store every N completed corpus-job
	// blocks (0 = 16). Individual results are OS-durable (survive
	// SIGKILL) as soon as they complete; the checkpoint cadence only
	// bounds what a power loss can lose.
	JobCheckpointEvery int
	// Coordinator enables cluster-coordinator mode: corpus jobs are
	// sharded across the worker pool (static ClusterWorkers plus workers
	// that self-register via POST /v1/cluster/join), falling back to the
	// local engine when no worker is ready. Results are byte-identical
	// either way.
	Coordinator bool
	// ClusterWorkers seeds the coordinator's pool with static worker
	// base URLs; a non-empty list implies Coordinator.
	ClusterWorkers []string
	// Cluster tunes the coordinator's lease scheduler (lease size,
	// timeouts, retry budget, heartbeat TTL).
	Cluster cluster.Options
}

func (c Config) withDefaults() Config {
	if c.Base.Epsilon == 0 && c.Base.CoverageSamples == 0 {
		base := core.DefaultConfig()
		base.Seed = c.Base.Seed
		if c.Base.Seed == 0 {
			base.Seed = 1
		}
		c.Base = base
	}
	if c.DefaultModel == "" {
		c.DefaultModel = "uica"
	}
	if c.MaxConcurrentExplains <= 0 {
		c.MaxConcurrentExplains = defaultParallelism()
	}
	if c.MaxQueuedExplains <= 0 {
		c.MaxQueuedExplains = 4 * c.MaxConcurrentExplains
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 16
	}
	if c.MaxCorpusBlocks <= 0 {
		c.MaxCorpusBlocks = 10000
	}
	if c.ResultStoreSize <= 0 {
		c.ResultStoreSize = 1024
	}
	if c.InternTableSize <= 0 {
		c.InternTableSize = c.ResultStoreSize
	}
	if c.StreamRingSize <= 0 {
		c.StreamRingSize = 4096
	}
	if c.JobHistorySize <= 0 {
		c.JobHistorySize = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.JobCheckpointEvery <= 0 {
		c.JobCheckpointEvery = 16
	}
	return c
}

func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Server is the cometd HTTP server. Construct with New, mount Handler,
// and call Shutdown on the way out.
type Server struct {
	cfg    Config
	models *modelRegistry
	// flights and results are keyed by interned content IDs — 32 fixed
	// bytes derived once per request — instead of hex strings.
	flights flightGroup[wire.ContentID]
	results *lruStore[wire.ContentID, *cachedExplanation]
	// intern maps SHA-256 over raw binary request frames to cached
	// responses: the binary fast path that skips parsing entirely.
	intern      *lruStore[wire.ContentID, *cachedExplanation]
	jobs        *jobManager
	metrics     *metrics
	mux         *http.ServeMux
	store       persist.Store
	coordinator *cluster.Coordinator

	explainSlots   chan struct{}
	explainWaiting atomic.Int64

	ctx      context.Context
	cancel   context.CancelFunc
	draining atomic.Bool
	restored atomic.Bool
	ready    atomic.Bool
}

// New builds a server. Models warm lazily on first use; use RegisterModel
// or a warm-up request to front-load expensive construction.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		models:       newModelRegistry(cfg.PredictionCacheSize, cfg.TrainBlocks, cfg.MaxModelEntries, cfg.AllowRestrictedSpecs),
		results:      newLRUStore[wire.ContentID, *cachedExplanation](cfg.ResultStoreSize),
		intern:       newLRUStore[wire.ContentID, *cachedExplanation](cfg.InternTableSize),
		metrics:      newMetrics(),
		mux:          http.NewServeMux(),
		store:        cfg.Store,
		explainSlots: make(chan struct{}, cfg.MaxConcurrentExplains),
		ctx:          ctx,
		cancel:       cancel,
	}
	if cfg.Coordinator || len(cfg.ClusterWorkers) > 0 {
		copts := cfg.Cluster
		if copts.Logf == nil {
			copts.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "comet-serve: cluster: "+format+"\n", args...)
			}
		}
		s.coordinator = cluster.New(cluster.NewPool(cfg.ClusterWorkers, copts), copts)
	}
	s.jobs = newJobManager(ctx, cfg.JobWorkers, cfg.JobQueueDepth, cfg.JobHistorySize,
		cfg.JobCheckpointEvery, cfg.Store, s.storeError)
	s.jobs.cluster = s.coordinator
	// Client-initiated model warm-ups (training, remote handshakes) share
	// the explain concurrency budget instead of running unbounded.
	s.models.warmGate = func() (func(), error) {
		if err := s.acquireExplainSlot(); err != nil {
			return nil, err
		}
		return s.releaseExplainSlot, nil
	}
	s.mux.HandleFunc("/v1/explain", s.instrument("explain", s.handleExplain))
	s.mux.HandleFunc("/v1/predict", s.instrument("predict", s.handlePredict))
	s.mux.HandleFunc("/v1/corpus", s.instrument("corpus", s.handleCorpus))
	s.mux.HandleFunc("/v1/jobs", s.instrument("jobs", s.handleJobs))
	s.mux.HandleFunc("/v1/jobs/", s.instrument("jobs", s.handleJob))
	s.mux.HandleFunc("/v1/models", s.instrument("models", s.handleModels))
	s.mux.HandleFunc("/v1/shard", s.instrument("shard", s.handleShard))
	if s.coordinator != nil {
		s.mux.HandleFunc("/v1/cluster/join", s.instrument("join", s.handleClusterJoin))
		s.mux.HandleFunc("/v1/cluster", s.instrument("cluster", s.handleCluster))
	}
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	return s
}

// SetReady flips /readyz to 200. Call it after warm-up is complete —
// Restore has run and -preload models are resolved — so load balancers
// and cluster coordinators never route to a cold server. Handlers other
// than /v1/shard still answer before readiness (a cold server can serve
// cache hits); readiness is a routing signal, not a gate.
func (s *Server) SetReady() { s.ready.Store(true) }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// RegisterModel installs a ready-made model instance under (name, arch),
// replacing any lazily built entry for that spec. Tests inject counting
// models; deployments can preload trained neural models. Epsilon 0 means
// the standard 0.5-cycle ball. Models that should be addressable by
// richer specs belong in the comet registry (comet.RegisterModel), which
// the server resolves automatically.
func (s *Server) RegisterModel(name string, arch x86.Arch, m costmodel.Model, epsilon float64) {
	s.models.register(name, arch, m, epsilon)
}

// WarmModel resolves (and for the neural model, trains) a model spec
// ahead of the first request. archDefault ("hsw"/"skl", "" = hsw) fills
// in the spec's target when it has none. Warming is operator-initiated,
// so restricted specs (remote@..., ithemal?load=...) are allowed here
// regardless of AllowRestrictedSpecs.
func (s *Server) WarmModel(spec, archDefault string) error {
	arch, err := wire.ParseArch(archDefault)
	if err != nil {
		return err
	}
	_, err = s.models.get(spec, wire.ArchName(arch), true)
	return err
}

// Shutdown drains the server: new work is rejected (503), running corpus
// jobs skip their unstarted blocks and are marked canceled, and the call
// waits (bounded by ctx) for job workers to wind down. The HTTP listener
// itself is the caller's to close (http.Server.Shutdown), normally before
// calling this.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cancel()
	return s.jobs.shutdown(ctx)
}

// instrument wraps a handler with request counting and latency recording.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.observe(route, rec.code, time.Since(start).Seconds())
	}
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.Error{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body with a size cap. On failure it
// writes the error response itself — 413 for oversized bodies, 400 for
// malformed JSON — and reports false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

// requestOptions compiles a request into the library's per-request
// explain options: the model's recommended ε and a Parallelism pin of 1
// first (so a request's explanation is independent of server load and
// equal to a library ExplainContext call with the same options), then the
// client's overrides in wire order — exactly what a library caller would
// pass to comet.ExplainContext.
func requestOptions(entry *modelEntry, o *wire.ConfigOverrides) []core.ExplainOption {
	opts := []core.ExplainOption{
		core.WithEpsilon(entry.epsilon),
		core.WithParallelism(1),
	}
	return append(opts, o.Options()...)
}

// explainKey is the single-flight / result-store / durable-store
// identity of a request: the content address over everything that can
// change the explanation bytes — canonical spec, effective config,
// canonical block text. snap must be the snapshot of the explainer's
// effective config for the request's options, so the in-memory LRU and
// the on-disk store agree on keys across processes.
func explainKey(entry *modelEntry, snap wire.ConfigSnapshot, blockText string) wire.ContentID {
	return persist.ExplanationID(entry.specString(), snap, blockText)
}

// persistLookup consults the durable store on a result-store miss,
// rehydrating the in-memory LRU on a hit. (On disk the key is the
// content ID's hex form — the same bytes previous store versions wrote.)
func (s *Server) persistLookup(key wire.ContentID) (*cachedExplanation, bool) {
	if s.store == nil {
		return nil, false
	}
	rec, ok := s.store.Get(wire.RecordExplanation, key.Hex())
	if !ok || rec.Explanation == nil {
		s.metrics.persistMisses.Add(1)
		return nil, false
	}
	s.metrics.persistHits.Add(1)
	c := newCachedExplanation(rec.Explanation)
	s.results.put(key, c)
	return c, true
}

// persistPut deposits a freshly computed explanation in the durable
// store. Persistence failures are counted, never surfaced to the client.
func (s *Server) persistPut(key wire.ContentID, spec string, snap wire.ConfigSnapshot, expl *wire.Explanation) {
	if s.store == nil {
		return
	}
	err := s.store.Put(&wire.Record{
		V:           wire.RecordVersion,
		Kind:        wire.RecordExplanation,
		Key:         key.Hex(),
		Spec:        spec,
		Config:      &snap,
		Explanation: expl,
	})
	if err != nil {
		s.storeError(err)
	}
}

// storeError counts a durable-store failure. The store is an
// accelerator, not a dependency: requests and jobs proceed without it.
func (s *Server) storeError(err error) {
	s.metrics.storeErrors.Add(1)
	fmt.Fprintf(os.Stderr, "comet-serve: durable store: %v\n", err)
}

// handleExplain serves POST /v1/explain on either wire format. A
// binary-framed request takes the interned fast path first: SHA-256 over
// the raw frame bytes (a canonical encoding of the request) is a complete
// request identity, so a warm hit writes pre-encoded response bytes
// without decoding the frame, parsing the block, or touching the model
// registry.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	binResp := acceptsFrame(r)
	if r.Method != http.MethodPost {
		s.writeErrorNeg(w, binResp, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	var req wire.ExplainRequest
	var ikey wire.ContentID
	interned := false
	if isFrameRequest(r) {
		buf := s.readRawBody(w, r, binResp)
		if buf == nil {
			return
		}
		ikey = wire.InternBytes(*buf)
		interned = true
		if c, ok := s.intern.get(ikey); ok {
			wire.PutBuffer(buf)
			s.metrics.internHits.Add(1)
			s.metrics.resultStoreHits.Add(1)
			s.writeExplanation(w, binResp, c)
			return
		}
		msg, err := wire.DecodeBinary(*buf)
		wire.PutBuffer(buf)
		if err != nil {
			s.writeErrorNeg(w, binResp, http.StatusBadRequest, "bad frame: %v", err)
			return
		}
		s.metrics.frameRequests.Add(1)
		preq, ok := msg.(*wire.ExplainRequest)
		if !ok {
			s.writeErrorNeg(w, binResp, http.StatusBadRequest, "frame carries %T, want *wire.ExplainRequest", msg)
			return
		}
		req = *preq
	} else if !s.decodeBody(w, r, &req) {
		return
	}
	arch, err := wire.ParseArch(req.Arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "%v", err)
		return
	}
	block, err := x86.ParseBlock(req.Block)
	if err != nil {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "bad block: %v", err)
		return
	}
	entry, err := s.lookupModel(req.Model, arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, modelErrorStatus(err), "%v", err)
		return
	}
	opts := requestOptions(entry, req.Config)
	cfg := core.ApplyOptions(s.cfg.Base, opts...)
	snap := wire.SnapshotConfig(cfg)
	key := explainKey(entry, snap, block.String())

	finish := func(c *cachedExplanation) {
		if interned {
			s.intern.put(ikey, c)
		}
		s.writeExplanation(w, binResp, c)
	}
	if c, ok := s.results.get(key); ok {
		s.metrics.resultStoreHits.Add(1)
		finish(c)
		return
	}
	if c, ok := s.persistLookup(key); ok {
		finish(c)
		return
	}

	val, err, shared := s.flights.Do(key, func() (any, error) {
		// Double-check the store: a previous flight for this key may have
		// finished (and stored its result) between our store miss and
		// entering the flight.
		if c, ok := s.results.get(key); ok {
			s.metrics.resultStoreHits.Add(1)
			return c, nil
		}
		// The flight is shared by every coalesced caller, so its slot wait
		// and computation are bound to the server's lifetime (s.ctx), not
		// the originating request's context — one client disconnecting must
		// not fail the followers.
		if err := s.acquireExplainSlot(); err != nil {
			return nil, err
		}
		defer s.releaseExplainSlot()
		explainer := core.NewExplainerWithCache(entry.model, s.cfg.Base, entry.cache)
		expl, err := explainer.ExplainContext(s.ctx, block, opts...)
		if err != nil {
			return nil, err
		}
		s.metrics.explanations.Add(1)
		c := newCachedExplanation(wire.FromExplanation(expl))
		s.results.put(key, c)
		s.persistPut(key, entry.specString(), snap, c.expl)
		return c, nil
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		switch {
		case errors.Is(err, errOverloaded):
			s.writeErrorNeg(w, binResp, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, errDraining), errors.Is(err, context.Canceled):
			s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "%v", errDraining)
		default:
			s.writeErrorNeg(w, binResp, http.StatusInternalServerError, "explain failed: %v", err)
		}
		return
	}
	finish(val.(*cachedExplanation))
}

// lookupModel resolves a request's model spec (falling back to the
// server default) to a warmed entry. Client input is untrusted: it may
// not resolve restricted specs unless the server allows them, and any
// warm-up it triggers holds an explain slot.
func (s *Server) lookupModel(modelStr string, arch x86.Arch) (*modelEntry, error) {
	trusted := false
	if modelStr == "" {
		// The operator chose the default model; resolving it is as
		// trusted as a -preload.
		modelStr = s.cfg.DefaultModel
		trusted = true
	}
	return s.models.get(modelStr, wire.ArchName(arch), trusted)
}

// modelErrorStatus maps a model-resolution failure to its HTTP status:
// backpressure on a full instance table or a gated warm-up, forbidden
// for restricted specs, bad request otherwise.
func modelErrorStatus(err error) int {
	switch {
	case errors.Is(err, errRegistryFull), errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errRestrictedSpec):
		return http.StatusForbidden
	}
	return http.StatusBadRequest
}

// errOverloaded signals explain backpressure; the handler maps it to 429.
var errOverloaded = errors.New("too many concurrent explain requests")

// acquireExplainSlot takes a computation slot, waiting in a bounded queue.
// When MaxQueuedExplains callers are already waiting, it fails fast — the
// server sheds load instead of building an unbounded backlog. The wait is
// interrupted only by server shutdown.
func (s *Server) acquireExplainSlot() error {
	select {
	case s.explainSlots <- struct{}{}:
		return nil
	default:
	}
	if s.explainWaiting.Add(1) > int64(s.cfg.MaxQueuedExplains) {
		s.explainWaiting.Add(-1)
		return errOverloaded
	}
	defer s.explainWaiting.Add(-1)
	select {
	case s.explainSlots <- struct{}{}:
		return nil
	case <-s.ctx.Done():
		return errDraining
	}
}

func (s *Server) releaseExplainSlot() { <-s.explainSlots }

// handleCorpus serves POST /v1/corpus.
func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	var req wire.CorpusRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Blocks) == 0 {
		writeError(w, http.StatusBadRequest, "corpus has no blocks")
		return
	}
	if len(req.Blocks) > s.cfg.MaxCorpusBlocks {
		writeError(w, http.StatusRequestEntityTooLarge,
			"corpus of %d blocks exceeds the limit of %d", len(req.Blocks), s.cfg.MaxCorpusBlocks)
		return
	}
	arch, err := wire.ParseArch(req.Arch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	blocks := make([]*x86.BasicBlock, len(req.Blocks))
	for i, src := range req.Blocks {
		b, err := x86.ParseBlock(src)
		if err != nil {
			writeError(w, http.StatusBadRequest, "block %d: %v", i, err)
			return
		}
		blocks[i] = b
	}
	entry, err := s.lookupModel(req.Model, arch)
	if err != nil {
		writeError(w, modelErrorStatus(err), "%v", err)
		return
	}
	cfg := core.ApplyOptions(s.cfg.Base, requestOptions(entry, req.Config)...)
	j := &job{
		blocks:   blocks,
		entry:    entry,
		cfg:      cfg,
		workers:  req.Workers,
		spec:     entry.specString(),
		snapshot: wire.SnapshotConfig(cfg),
	}
	if req.Stream {
		// Stream-only job: results are delivered through
		// GET /v1/jobs/{id}/stream and only a bounded catch-up ring is
		// retained, so memory stays flat however large the corpus is.
		j.streamOnly = true
		j.ringCap = s.cfg.StreamRingSize
	}
	if err := s.jobs.submit(j); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			writeError(w, http.StatusTooManyRequests, "%v", err)
		default:
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, wire.JobAccepted{ID: j.id, State: wire.JobQueued, Total: len(blocks)})
}

// handleJob serves GET /v1/jobs/{id}?offset=&limit= and dispatches
// GET /v1/jobs/{id}/stream to the streaming handler.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if stream, ok := strings.CutSuffix(id, "/stream"); ok && stream != "" && !strings.Contains(stream, "/") {
		s.handleJobStream(w, r, stream)
		return
	}
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q (finished jobs are evicted after %d newer ones)", id, s.cfg.JobHistorySize)
		return
	}
	writeJSON(w, http.StatusOK, j.status(offset, limit))
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// handleHealthz serves GET /healthz: pure liveness — the process is up
// and serving HTTP. Restart on failure; do not route on it (that is
// /readyz's job).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		state = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": state})
}

// handleReadyz serves GET /readyz: readiness — 200 only after the
// operator called SetReady (model warm-up and store Restore complete)
// and while not draining. Load balancers and cluster coordinators route
// on this, so cold or draining servers receive no traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	extra := []gauge{
		{name: "comet_explain_inflight", value: float64(len(s.explainSlots))},
		{name: "comet_explain_waiting", value: float64(s.explainWaiting.Load())},
		{name: "comet_result_store_entries", value: float64(s.results.len())},
		{name: "comet_intern_entries", value: float64(s.intern.len())},
	}
	extra = append(extra, s.jobs.gauges()...)
	extra = append(extra, s.models.cacheGauges()...)
	extra = append(extra, s.clusterGauges()...)
	if s.store != nil {
		st := s.store.Stats()
		extra = append(extra,
			gauge{name: "comet_store_entries", value: float64(st.Entries)},
			gauge{name: "comet_store_live_bytes", value: float64(st.LiveBytes)},
			gauge{name: "comet_store_total_bytes", value: float64(st.TotalBytes)},
			gauge{name: "comet_store_segments", value: float64(st.Segments)},
			gauge{name: "comet_store_hits_total", value: float64(st.Hits)},
			gauge{name: "comet_store_misses_total", value: float64(st.Misses)},
			gauge{name: "comet_store_puts_total", value: float64(st.Puts)},
			gauge{name: "comet_store_corrupt_records_total", value: float64(st.CorruptRecords)},
			gauge{name: "comet_store_evictions_total", value: float64(st.Evictions)},
			gauge{name: "comet_store_compactions_total", value: float64(st.Compactions)},
		)
	}
	s.metrics.render(&sb, extra)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(sb.String()))
}
