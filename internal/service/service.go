// Package service implements cometd, the explanation-serving subsystem:
// a stdlib-only HTTP/JSON server that owns the model zoo, the shared
// prediction caches, and the batched corpus engine, and exposes them as a
// long-lived, multi-tenant API.
//
// Routes:
//
//	POST /v1/explain        synchronous single-block explanation
//	POST /v1/predict        batch cost-model queries (the remote-model backend)
//	POST /v1/corpus         asynchronous corpus job (bounded queue, 429 on overflow)
//	GET  /v1/jobs           list every known job (queued, running, finished, restored)
//	GET  /v1/jobs/{id}      job status + paginated results (?offset=&limit=)
//	GET  /v1/jobs/{id}/stream  chunked result stream (NDJSON, or binary frames via Accept)
//	GET  /v1/models         registered model specs + their default configs
//	POST /v1/shard          execute one lease of a sharded corpus job (cluster worker)
//	POST /v1/cluster/join   worker self-registration + heartbeat (coordinator mode)
//	GET  /v1/cluster        worker pool + lease-scheduler counters (coordinator mode)
//	GET  /healthz           liveness
//	GET  /readyz            readiness (200 only after SetReady: warm-up + Restore done)
//	GET  /metrics           Prometheus text metrics
//	GET  /debug/traces      recently finished traces (?limit=&route=&min_ms=; ?outliers=1 for retained slow/5xx traces)
//	GET  /debug/traces/{id} every recorded span of one trace (?cluster=1 federates)
//	GET  /debug/flight      flight-recorder dump (the black-box request/lease/job ring)
//	GET  /debug/history     telemetry time-series: per-route rates and latency quantiles, cache hit rates, queues, quality (?cluster=1 federates)
//
// Every request is assigned (or joins, via an incoming W3C traceparent
// header) a trace; the trace ID comes back in the X-Comet-Trace-Id
// response header, sampled traces record per-stage spans into a bounded
// in-process ring served by /debug/traces, and ?trace=1 or ?profile=1
// forces sampling for the one request being debugged. ?profile=1 on
// /v1/explain additionally attaches the per-stage wall-time profile to
// the response body.
//
// Every route speaks JSON by default; /v1/explain, /v1/predict,
// /v1/shard, and the job stream additionally negotiate the COMET binary
// frame codec — a request with Content-Type: application/x-comet-frame
// carries a binary body, an Accept header listing it selects a binary
// response (see internal/wire).
//
// Models are addressed by registry spec strings ("uica", "c@skl",
// "ithemal@hsw?hidden=64&train=2000", "remote@http://other:8372") and
// resolved through the public comet registry, so any registered model —
// including another comet-serve, via the remote spec — is servable.
//
// Serving invariants:
//
//   - One warmed model instance and one prediction cache per canonical
//     model spec, shared by every request for the life of the process.
//   - Identical in-flight explain requests coalesce onto one computation
//     (single-flight keyed by model, arch, config, and canonical block text).
//   - Finished explanations land in a capped LRU result store; repeat
//     queries are O(1) and cost zero model work.
//   - Explain concurrency is bounded by a worker-slot semaphore with a
//     bounded wait queue; overflow is rejected with 429, never buffered
//     without bound.
//   - Explanations are reproducible: per-request sampling parallelism
//     defaults to 1, so the same request body always yields the same
//     explanation, equal to a library Explain call at the same seed.
//   - With a durable store (Config.Store), computed explanations and
//     corpus-job checkpoints outlive the process: Restore reloads warm
//     results and resumes interrupted jobs with output identical to an
//     uninterrupted run. The store is an accelerator, never a
//     dependency — its failures are counted, not surfaced.
//   - In coordinator mode (Config.Coordinator / ClusterWorkers), corpus
//     jobs shard across the worker pool through internal/cluster; leases
//     carry the original per-block seeds, so distributed results are
//     byte-identical to local ones, and the local engine remains the
//     fallback when no worker is ready.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/comet-explain/comet/internal/cluster"
	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/persist"
	"github.com/comet-explain/comet/internal/version"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// Config sizes the server. Zero values get production-sane defaults.
type Config struct {
	// Base is the default explanation configuration; zero means
	// core.DefaultConfig. Request ConfigOverrides overlay it.
	Base core.Config
	// DefaultModel is the model spec used when a request omits "model"
	// (default "uica").
	DefaultModel string
	// TrainBlocks sizes the ithemal model's warm-up training set for
	// specs that don't pin their own train= parameter.
	TrainBlocks int
	// MaxModelEntries bounds the distinct canonical model specs this
	// server will warm (each is a model instance plus a prediction
	// cache); overflow gets 429 (0 = 64).
	MaxModelEntries int
	// AllowRestrictedSpecs permits client-supplied specs whose
	// resolution exercises ambient authority — remote@<url> (the server
	// dials the URL) and ithemal?load=<path> (the server reads the
	// file). Off by default: only operator-initiated resolution
	// (RegisterModel, WarmModel/-preload) may do either. Enable it on
	// trusted networks to let clients chain servers.
	AllowRestrictedSpecs bool
	// PredictionCacheSize bounds each (model, arch) prediction cache in
	// entries (0 = package default of about a million).
	PredictionCacheSize int
	// MaxConcurrentExplains bounds simultaneously computing explain
	// requests (0 = GOMAXPROCS).
	MaxConcurrentExplains int
	// MaxQueuedExplains bounds explain requests waiting for a slot
	// beyond the ones computing; overflow gets 429 (0 = 4×concurrent).
	MaxQueuedExplains int
	// JobWorkers is the number of corpus jobs executing at once (0 = 1).
	JobWorkers int
	// JobQueueDepth bounds queued corpus jobs; overflow gets 429 (0 = 16).
	JobQueueDepth int
	// MaxCorpusBlocks caps the corpus size a single job may carry
	// (0 = 10000); larger requests get 413.
	MaxCorpusBlocks int
	// ResultStoreSize caps the explanation LRU result store (0 = 1024).
	ResultStoreSize int
	// InternTableSize caps the binary-request intern table, which maps
	// SHA-256 over raw frame bytes to pre-encoded responses (0 =
	// ResultStoreSize).
	InternTableSize int
	// StreamRingSize bounds the results retained in memory by a
	// streaming corpus job (CorpusRequest.Stream) for catch-up reads on
	// GET /v1/jobs/{id}/stream; a reader that falls further behind than
	// the ring gets a lag error instead of stalling the job (0 = 4096).
	StreamRingSize int
	// JobHistorySize caps retained finished jobs (0 = 64).
	JobHistorySize int
	// MaxBodyBytes caps request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxUploadBytes caps binary uploads to POST /v1/corpus (ELF
	// ingestion); oversized uploads get 413 (0 = 64 MiB).
	MaxUploadBytes int64
	// Store, when non-nil, is the durable explanation/job store: every
	// computed explanation and every corpus-job checkpoint is persisted
	// to it, and Restore reloads warm results and resumes interrupted
	// jobs after a restart. The caller opens and closes it (see
	// persist.Open and the comet-serve -store-dir flag).
	Store persist.Store
	// JobCheckpointEvery fsyncs the store every N completed corpus-job
	// blocks (0 = 16). Individual results are OS-durable (survive
	// SIGKILL) as soon as they complete; the checkpoint cadence only
	// bounds what a power loss can lose.
	JobCheckpointEvery int
	// Coordinator enables cluster-coordinator mode: corpus jobs are
	// sharded across the worker pool (static ClusterWorkers plus workers
	// that self-register via POST /v1/cluster/join), falling back to the
	// local engine when no worker is ready. Results are byte-identical
	// either way.
	Coordinator bool
	// ClusterWorkers seeds the coordinator's pool with static worker
	// base URLs; a non-empty list implies Coordinator.
	ClusterWorkers []string
	// Cluster tunes the coordinator's lease scheduler (lease size,
	// timeouts, retry budget, heartbeat TTL).
	Cluster cluster.Options
	// Logger is the root structured logger; the service, cluster, and
	// persistence layers log through component-tagged children of it
	// (nil = slog.Default()).
	Logger *slog.Logger
	// TraceRingSize bounds the finished-span ring served by
	// GET /debug/traces (0 = 4096 spans).
	TraceRingSize int
	// TraceSample records one in N traces on the hot routes —
	// /v1/explain, /v1/predict, and the health/metrics probes. Corpus
	// jobs, shard leases, and cluster operations matter individually and
	// are always traced. 0 = 64; negative disables tracing entirely.
	TraceSample int
	// FlightRecorderSize bounds the flight recorder — the black-box ring
	// holding one compact record per request, lease transition, and job
	// transition regardless of trace sampling, served by GET /debug/flight
	// and dumped on SIGQUIT (0 = 2048 records).
	FlightRecorderSize int
	// TraceSlowMS is the outlier threshold in milliseconds: a hot-route
	// request slower than this (or any request with status ≥ 500) commits
	// its full span tree to the outlier ring regardless of head sampling
	// (0 = 500; negative disables outlier retention).
	TraceSlowMS int
	// OutlierRingSize bounds the retained outlier traces served by
	// GET /debug/traces?outliers=1 (0 = 256).
	OutlierRingSize int
	// HistoryRingSize bounds the per-series telemetry history served by
	// GET /debug/history, in samples (0 = 600 — ten minutes at the
	// default interval).
	HistoryRingSize int
	// HistoryInterval is the telemetry sampling cadence (0 = 1s; negative
	// disables the background sampler, leaving /debug/history empty).
	HistoryInterval time.Duration
	// ProcessLabel names this process in federated trace views and flight
	// dumps ("coordinator", "worker-1", an advertise URL). Defaults to
	// "coordinator" when coordinator mode is on, "local" otherwise.
	ProcessLabel string
}

func (c Config) withDefaults() Config {
	if c.Base.Epsilon == 0 && c.Base.CoverageSamples == 0 {
		base := core.DefaultConfig()
		base.Seed = c.Base.Seed
		if c.Base.Seed == 0 {
			base.Seed = 1
		}
		c.Base = base
	}
	if c.DefaultModel == "" {
		c.DefaultModel = "uica"
	}
	if c.MaxConcurrentExplains <= 0 {
		c.MaxConcurrentExplains = defaultParallelism()
	}
	if c.MaxQueuedExplains <= 0 {
		c.MaxQueuedExplains = 4 * c.MaxConcurrentExplains
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 16
	}
	if c.MaxCorpusBlocks <= 0 {
		c.MaxCorpusBlocks = 10000
	}
	if c.ResultStoreSize <= 0 {
		c.ResultStoreSize = 1024
	}
	if c.InternTableSize <= 0 {
		c.InternTableSize = c.ResultStoreSize
	}
	if c.StreamRingSize <= 0 {
		c.StreamRingSize = 4096
	}
	if c.JobHistorySize <= 0 {
		c.JobHistorySize = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.JobCheckpointEvery <= 0 {
		c.JobCheckpointEvery = 16
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.TraceRingSize <= 0 {
		c.TraceRingSize = 4096
	}
	if c.TraceSample == 0 {
		c.TraceSample = 64
	}
	if c.FlightRecorderSize <= 0 {
		c.FlightRecorderSize = 2048
	}
	if c.TraceSlowMS == 0 {
		c.TraceSlowMS = 500
	}
	if c.OutlierRingSize <= 0 {
		c.OutlierRingSize = 256
	}
	if c.HistoryRingSize <= 0 {
		c.HistoryRingSize = 600
	}
	if c.HistoryInterval == 0 {
		c.HistoryInterval = time.Second
	}
	if c.ProcessLabel == "" {
		if c.Coordinator || len(c.ClusterWorkers) > 0 {
			c.ProcessLabel = "coordinator"
		} else {
			c.ProcessLabel = "local"
		}
	}
	return c
}

func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Server is the cometd HTTP server. Construct with New, mount Handler,
// and call Shutdown on the way out.
type Server struct {
	cfg    Config
	models *modelRegistry
	// flights and results are keyed by interned content IDs — 32 fixed
	// bytes derived once per request — instead of hex strings.
	flights flightGroup[wire.ContentID]
	results *lruStore[wire.ContentID, *cachedExplanation]
	// intern maps SHA-256 over raw binary request frames to cached
	// responses: the binary fast path that skips parsing entirely.
	intern      *lruStore[wire.ContentID, *cachedExplanation]
	jobs        *jobManager
	metrics     *metrics
	mux         *http.ServeMux
	store       persist.Store
	coordinator *cluster.Coordinator
	tracer      *obs.Tracer
	flight      *obs.FlightRecorder
	outliers    *obs.OutlierRing
	history     *obs.History
	// slowThreshold is the outlier latency cutoff; 0 disables retention.
	slowThreshold time.Duration
	log           *slog.Logger // component=service
	logPersist    *slog.Logger // component=persist

	explainSlots   chan struct{}
	explainWaiting atomic.Int64

	ctx      context.Context
	cancel   context.CancelFunc
	draining atomic.Bool
	restored atomic.Bool
	ready    atomic.Bool
}

// New builds a server. Models warm lazily on first use; use RegisterModel
// or a warm-up request to front-load expensive construction.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		models:       newModelRegistry(cfg.PredictionCacheSize, cfg.TrainBlocks, cfg.MaxModelEntries, cfg.AllowRestrictedSpecs),
		results:      newLRUStore[wire.ContentID, *cachedExplanation](cfg.ResultStoreSize),
		intern:       newLRUStore[wire.ContentID, *cachedExplanation](cfg.InternTableSize),
		metrics:      newMetrics(),
		mux:          http.NewServeMux(),
		store:        cfg.Store,
		explainSlots: make(chan struct{}, cfg.MaxConcurrentExplains),
		ctx:          ctx,
		cancel:       cancel,
		log:          obs.Component(cfg.Logger, "service"),
		logPersist:   obs.Component(cfg.Logger, "persist"),
	}
	sampleN := uint64(cfg.TraceSample)
	if cfg.TraceSample < 0 {
		sampleN = 0
	}
	s.tracer = obs.NewTracer(cfg.TraceRingSize, sampleN)
	s.flight = obs.NewFlightRecorder(cfg.FlightRecorderSize)
	s.outliers = obs.NewOutlierRing(cfg.OutlierRingSize)
	if cfg.TraceSlowMS > 0 {
		s.slowThreshold = time.Duration(cfg.TraceSlowMS) * time.Millisecond
	}
	historyInterval := cfg.HistoryInterval
	if historyInterval < 0 {
		historyInterval = time.Second // sampler stays stopped; the cadence only labels the dump
	}
	s.history = obs.NewHistory(cfg.HistoryRingSize, historyInterval)
	if cfg.Coordinator || len(cfg.ClusterWorkers) > 0 {
		copts := cfg.Cluster
		if copts.Log == nil {
			copts.Log = obs.Component(cfg.Logger, "cluster")
		}
		if copts.Flight == nil {
			copts.Flight = s.flight
		}
		s.coordinator = cluster.New(cluster.NewPool(cfg.ClusterWorkers, copts), copts)
	}
	s.jobs = newJobManager(ctx, cfg.JobWorkers, cfg.JobQueueDepth, cfg.JobHistorySize,
		cfg.JobCheckpointEvery, cfg.Store, s.storeError)
	s.jobs.cluster = s.coordinator
	s.jobs.tracer = s.tracer
	s.jobs.log = s.log
	s.jobs.metrics = s.metrics
	s.jobs.flight = s.flight
	// Client-initiated model warm-ups (training, remote handshakes) share
	// the explain concurrency budget instead of running unbounded.
	s.models.warmGate = func() (func(), error) {
		if err := s.acquireExplainSlot(); err != nil {
			return nil, err
		}
		return s.releaseExplainSlot, nil
	}
	s.mux.HandleFunc("/v1/explain", s.instrument("explain", s.handleExplain))
	s.mux.HandleFunc("/v1/predict", s.instrument("predict", s.handlePredict))
	s.mux.HandleFunc("/v1/corpus", s.instrument("corpus", s.handleCorpus))
	s.mux.HandleFunc("/v1/jobs", s.instrument("jobs", s.handleJobs))
	s.mux.HandleFunc("/v1/jobs/", s.instrument("jobs", s.handleJob))
	s.mux.HandleFunc("/v1/models", s.instrument("models", s.handleModels))
	s.mux.HandleFunc("/v1/shard", s.instrument("shard", s.handleShard))
	if s.coordinator != nil {
		s.mux.HandleFunc("/v1/cluster/join", s.instrument("join", s.handleClusterJoin))
		s.mux.HandleFunc("/v1/cluster", s.instrument("cluster", s.handleCluster))
	}
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReadyz))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/debug/traces", s.instrument("debug", s.handleTraces))
	s.mux.HandleFunc("/debug/traces/", s.instrument("debug", s.handleTrace))
	s.mux.HandleFunc("/debug/flight", s.instrument("debug", s.handleFlight))
	s.mux.HandleFunc("/debug/history", s.instrument("debug", s.handleHistory))
	s.registerHistory()
	if cfg.HistoryInterval >= 0 {
		s.history.Start()
	}
	return s
}

// FlightRecorder exposes the server's black-box ring so the binary can
// dump it on SIGQUIT (see cmd/comet-serve).
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// ProcessLabel reports the label this server uses for itself in
// federated trace views and flight dumps.
func (s *Server) ProcessLabel() string { return s.cfg.ProcessLabel }

// SetReady flips /readyz to 200. Call it after warm-up is complete —
// Restore has run and -preload models are resolved — so load balancers
// and cluster coordinators never route to a cold server. Handlers other
// than /v1/shard still answer before readiness (a cold server can serve
// cache hits); readiness is a routing signal, not a gate.
func (s *Server) SetReady() { s.ready.Store(true) }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// RegisterModel installs a ready-made model instance under (name, arch),
// replacing any lazily built entry for that spec. Tests inject counting
// models; deployments can preload trained neural models. Epsilon 0 means
// the standard 0.5-cycle ball. Models that should be addressable by
// richer specs belong in the comet registry (comet.RegisterModel), which
// the server resolves automatically.
func (s *Server) RegisterModel(name string, arch x86.Arch, m costmodel.Model, epsilon float64) {
	s.models.register(name, arch, m, epsilon)
}

// WarmModel resolves (and for the neural model, trains) a model spec
// ahead of the first request. archDefault ("hsw"/"skl", "" = hsw) fills
// in the spec's target when it has none. Warming is operator-initiated,
// so restricted specs (remote@..., ithemal?load=...) are allowed here
// regardless of AllowRestrictedSpecs.
func (s *Server) WarmModel(spec, archDefault string) error {
	arch, err := wire.ParseArch(archDefault)
	if err != nil {
		return err
	}
	_, err = s.models.get(spec, wire.ArchName(arch), true)
	return err
}

// Shutdown drains the server: new work is rejected (503), running corpus
// jobs skip their unstarted blocks and are marked canceled, and the call
// waits (bounded by ctx) for job workers to wind down. The HTTP listener
// itself is the caller's to close (http.Server.Shutdown), normally before
// calling this.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.history.Stop()
	s.cancel()
	return s.jobs.shutdown(ctx)
}

// sampledRoutes are the routes traced at the configured 1-in-N rate:
// high-volume request paths and the probes load balancers hammer. Every
// other route (corpus jobs, shard leases, cluster management) matters
// individually and is always traced.
var sampledRoutes = map[string]bool{
	"explain": true, "predict": true,
	"healthz": true, "readyz": true, "metrics": true, "debug": true,
}

// instrument wraps a handler with the per-request observability stack:
// trace extraction/minting (W3C traceparent in, X-Comet-Trace-Id out), a
// root span for sampled traces, lock-free request counting and latency
// recording, outlier retention, and a structured request log line. The
// route's stats slot and span name are resolved once at wiring time.
//
// Hot-route requests additionally buffer their spans into a pooled
// SpanBuffer regardless of the head-sampling decision; at request end a
// request that turned out slow (past the configured threshold) or broken
// (status ≥ 500) commits the full buffered trace to the outlier ring —
// tail-based retention of exactly the traces head sampling would have
// thrown away. The interned binary warm path is exempt (it must not pay
// even a pool Get — see the bench gate), as are force-traced routes,
// whose spans are already in the main ring.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	rs := s.metrics.route(route)
	spanName := "http." + route
	force := !sampledRoutes[route]
	logLevel := slog.LevelInfo
	if sampledRoutes[route] {
		// Hot routes and probes log per-request lines only at debug;
		// anything rarer is worth a line at the default level.
		logLevel = slog.LevelDebug
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		var parent obs.SpanContext
		if tp := r.Header.Get("Traceparent"); tp != "" {
			parent, _ = obs.ParseTraceparent(tp)
		}
		forced := force || forcedTrace(r)
		var (
			ctx   context.Context
			span  *obs.Span
			trace obs.TraceID
			buf   *obs.SpanBuffer
		)
		if !forced && s.slowThreshold > 0 && s.tracer.Enabled() && !isFrameRequest(r) {
			buf = obs.GetSpanBuffer()
			ctx, span, trace = s.tracer.StartRootBuffered(r.Context(), spanName, parent, buf)
		} else {
			ctx, span, trace = s.tracer.StartRoot(r.Context(), spanName, parent, forced)
		}
		if !trace.IsZero() {
			w.Header().Set("X-Comet-Trace-Id", trace.String())
		}
		if span != nil {
			r = r.WithContext(ctx)
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		rs.observe(rec.code, elapsed.Seconds())
		// The flight recorder sees every request regardless of sampling: a
		// struct copy of pre-existing strings into the ring, no allocation.
		s.flight.Record(obs.FlightRecord{
			Kind:      obs.FlightRequest,
			Route:     route,
			Status:    rec.code,
			LatencyUS: elapsed.Microseconds(),
			Trace:     trace,
		})
		if span != nil {
			span.Set("method", r.Method)
			span.Set("status", statusLabel(rec.code))
			span.End()
		}
		outlier := s.slowThreshold > 0 && (elapsed >= s.slowThreshold || rec.code >= 500)
		if buf != nil {
			// The commit decision: a healthy fast request recycles its buffer
			// untouched (no conversion, no allocation); a sampled one flushes
			// to the main ring; an outlier lands in the outlier ring with its
			// full span tree.
			if outlier || buf.Sampled() {
				recs := buf.Records(time.Now())
				if buf.Sampled() {
					s.tracer.Flush(recs)
				}
				if outlier {
					s.commitOutlier(rs, route, trace, rec.code, start, elapsed, recs)
				}
			}
			obs.PutSpanBuffer(buf)
		} else if outlier {
			// Force-traced (or frame-path) outliers: the spans, if any, are
			// already in the main ring — retain a copy with the trace.
			var spans []obs.SpanRecord
			if span != nil {
				spans = s.tracer.Ring().Trace(trace.String())
			}
			s.commitOutlier(rs, route, trace, rec.code, start, elapsed, spans)
		}
		if s.log.Enabled(r.Context(), logLevel) {
			s.log.LogAttrs(r.Context(), logLevel, "request",
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("status", rec.code),
				slog.Duration("elapsed", elapsed),
				obs.TraceAttr(trace))
		}
	}
}

// commitOutlier retains one slow-or-5xx request: its trace in the
// outlier ring, a per-route counter tick, a flight record
// cross-referencing the trace ID, and one structured warning — the four
// places an operator looks, all agreeing.
func (s *Server) commitOutlier(rs *routeStats, route string, trace obs.TraceID,
	code int, start time.Time, elapsed time.Duration, spans []obs.SpanRecord) {
	reason := obs.OutlierSlow
	if code >= 500 {
		reason = obs.OutlierError
	}
	s.outliers.Add(obs.OutlierTrace{
		TraceID:    trace.String(),
		Route:      route,
		Status:     code,
		Reason:     reason,
		Start:      start.UTC(),
		DurationUS: elapsed.Microseconds(),
		Spans:      spans,
	})
	rs.slow.Add(1)
	s.flight.Record(obs.FlightRecord{
		Kind:      obs.FlightOutlier,
		Route:     route,
		Status:    code,
		LatencyUS: elapsed.Microseconds(),
		Trace:     trace,
		State:     reason,
	})
	s.log.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
		slog.String("route", route),
		slog.Int("status", code),
		slog.Duration("elapsed", elapsed),
		slog.String("reason", reason),
		obs.TraceAttr(trace))
}

// statusLabel formats an HTTP status without allocating for the codes
// this server actually writes. Since outlier retention, every buffered
// request sets the attribute (not just the 1-in-N sampled ones), so the
// formatting sits on the JSON warm path's alloc budget.
func statusLabel(code int) string {
	switch code {
	case 200:
		return "200"
	case 202:
		return "202"
	case 400:
		return "400"
	case 403:
		return "403"
	case 404:
		return "404"
	case 405:
		return "405"
	case 413:
		return "413"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	}
	return strconv.Itoa(code)
}

// forcedTrace reports whether the request explicitly asked to be traced:
// ?trace=1 forces sampling, and ?profile=1 implies it (a profile without
// its trace is half an answer). The query string is only parsed when one
// is present, so the hot path never pays for it.
func forcedTrace(r *http.Request) bool {
	if r.URL.RawQuery == "" {
		return false
	}
	q := r.URL.Query()
	return q.Get("trace") == "1" || q.Get("profile") == "1"
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// writeJSON writes a JSON response body with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, wire.Error{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON request body with a size cap. On failure it
// writes the error response itself — 413 for oversized bodies, 400 for
// malformed JSON — and reports false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		}
		return false
	}
	return true
}

// requestOptions compiles a request into the library's per-request
// explain options: the model's recommended ε and a Parallelism pin of 1
// first (so a request's explanation is independent of server load and
// equal to a library ExplainContext call with the same options), then the
// client's overrides in wire order — exactly what a library caller would
// pass to comet.ExplainContext.
func requestOptions(entry *modelEntry, o *wire.ConfigOverrides) []core.ExplainOption {
	opts := []core.ExplainOption{
		core.WithEpsilon(entry.epsilon),
		core.WithParallelism(1),
	}
	return append(opts, o.Options()...)
}

// explainKey is the single-flight / result-store / durable-store
// identity of a request: the content address over everything that can
// change the explanation bytes — canonical spec, effective config,
// canonical block text. snap must be the snapshot of the explainer's
// effective config for the request's options, so the in-memory LRU and
// the on-disk store agree on keys across processes.
func explainKey(entry *modelEntry, snap wire.ConfigSnapshot, blockText string) wire.ContentID {
	return persist.ExplanationID(entry.specString(), snap, blockText)
}

// persistLookup consults the durable store on a result-store miss,
// rehydrating the in-memory LRU on a hit. (On disk the key is the
// content ID's hex form — the same bytes previous store versions wrote.)
func (s *Server) persistLookup(key wire.ContentID) (*cachedExplanation, bool) {
	if s.store == nil {
		return nil, false
	}
	rec, ok := s.store.Get(wire.RecordExplanation, key.Hex())
	if !ok || rec.Explanation == nil {
		s.metrics.persistMisses.Add(1)
		return nil, false
	}
	s.metrics.persistHits.Add(1)
	c := newCachedExplanation(rec.Explanation)
	s.results.put(key, c)
	return c, true
}

// persistPut deposits a freshly computed explanation in the durable
// store. Persistence failures are counted, never surfaced to the client.
func (s *Server) persistPut(key wire.ContentID, spec string, snap wire.ConfigSnapshot, expl *wire.Explanation) {
	if s.store == nil {
		return
	}
	err := s.store.Put(&wire.Record{
		V:           wire.RecordVersion,
		Kind:        wire.RecordExplanation,
		Key:         key.Hex(),
		Spec:        spec,
		Config:      &snap,
		Explanation: expl,
	})
	if err != nil {
		s.storeError(err)
	}
}

// storeError counts and logs a durable-store failure. The store is an
// accelerator, not a dependency: requests and jobs proceed without it.
func (s *Server) storeError(err error) {
	s.metrics.storeErrors.Add(1)
	s.logPersist.Error("durable store failure", "error", err)
}

// handleExplain serves POST /v1/explain on either wire format. A
// binary-framed request takes the interned fast path first: SHA-256 over
// the raw frame bytes (a canonical encoding of the request) is a complete
// request identity, so a warm hit writes pre-encoded response bytes
// without decoding the frame, parsing the block, or touching the model
// registry.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	binResp := acceptsFrame(r)
	if r.Method != http.MethodPost {
		s.writeErrorNeg(w, binResp, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	// ?profile=1 attaches the per-stage wall-time profile to the response
	// (computed or cached); the query string is only parsed when present,
	// so the hot path never pays for it.
	profileReq := false
	if r.URL.RawQuery != "" {
		profileReq = r.URL.Query().Get("profile") == "1"
	}
	span := obs.SpanFromContext(r.Context())
	var req wire.ExplainRequest
	var ikey wire.ContentID
	interned := false
	if isFrameRequest(r) {
		buf := s.readRawBody(w, r, binResp)
		if buf == nil {
			return
		}
		ikey = wire.InternBytes(*buf)
		interned = true
		if c, ok := s.intern.get(ikey); ok {
			wire.PutBuffer(buf)
			s.metrics.internHits.Add(1)
			s.metrics.resultStoreHits.Add(1)
			span.Set("source", "intern")
			if profileReq {
				s.writeExplanationProfile(w, binResp, c, "intern")
				return
			}
			s.writeExplanation(w, binResp, c)
			return
		}
		msg, err := wire.DecodeBinary(*buf)
		wire.PutBuffer(buf)
		if err != nil {
			s.writeErrorNeg(w, binResp, http.StatusBadRequest, "bad frame: %v", err)
			return
		}
		s.metrics.frameRequests.Add(1)
		preq, ok := msg.(*wire.ExplainRequest)
		if !ok {
			s.writeErrorNeg(w, binResp, http.StatusBadRequest, "frame carries %T, want *wire.ExplainRequest", msg)
			return
		}
		req = *preq
	} else if !s.decodeBody(w, r, &req) {
		return
	}
	arch, err := wire.ParseArch(req.Arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "%v", err)
		return
	}
	block, err := x86.ParseBlock(req.Block)
	if err != nil {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "bad block: %v", err)
		return
	}
	entry, err := s.lookupModel(req.Model, arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, modelErrorStatus(err), "%v", err)
		return
	}
	opts := requestOptions(entry, req.Config)
	cfg := core.ApplyOptions(s.cfg.Base, opts...)
	snap := wire.SnapshotConfig(cfg)
	key := explainKey(entry, snap, block.String())
	if span != nil {
		span.Set("spec", entry.specString())
		span.Set("content_id", key.Hex())
	}

	finish := func(c *cachedExplanation, source string) {
		span.Set("source", source)
		if interned {
			s.intern.put(ikey, c)
		}
		if profileReq {
			s.writeExplanationProfile(w, binResp, c, source)
			return
		}
		s.writeExplanation(w, binResp, c)
	}
	if c, ok := s.results.get(key); ok {
		s.metrics.resultStoreHits.Add(1)
		finish(c, "result-store")
		return
	}
	_, lspan := obs.StartSpan(r.Context(), "svc.persist_lookup")
	c, lookupHit := s.persistLookup(key)
	lspan.SetBool("hit", lookupHit)
	lspan.End()
	if lookupHit {
		finish(c, "persist")
		return
	}

	val, err, shared := s.flights.Do(key, func() (any, error) {
		// Double-check the store: a previous flight for this key may have
		// finished (and stored its result) between our store miss and
		// entering the flight.
		if c, ok := s.results.get(key); ok {
			s.metrics.resultStoreHits.Add(1)
			return c, nil
		}
		// The flight is shared by every coalesced caller, so its slot wait
		// and computation are bound to the server's lifetime (s.ctx), not
		// the originating request's context — one client disconnecting must
		// not fail the followers. It does inherit the first caller's trace:
		// the computation is that request's most interesting part.
		if err := s.acquireExplainSlot(); err != nil {
			return nil, err
		}
		defer s.releaseExplainSlot()
		cctx := s.ctx
		var cspan *obs.Span
		if span != nil {
			cctx, cspan = obs.StartSpan(obs.ContextWithSpan(s.ctx, span), "svc.compute")
			defer cspan.End()
		}
		explainer := core.NewExplainerWithCache(traceModel(cctx, entry.model), s.cfg.Base, entry.cache)
		computeStart := time.Now()
		expl, err := explainer.ExplainContext(cctx, block, opts...)
		if err != nil {
			cspan.SetErr(err)
			return nil, err
		}
		elapsed := time.Since(computeStart)
		s.metrics.explanations.Add(1)
		s.metrics.observeExplanation(entry.specString(), elapsed.Seconds())
		s.metrics.observeQuality(entry.specString(), expl.Precision, expl.Coverage, expl.Queries, expl.Certified)
		// The per-explanation profile stages ride the compute span as
		// attributes, so a federated trace view shows where the wall time
		// went without a second lookup.
		if cspan != nil && expl.Profile != nil {
			p := expl.Profile
			cspan.SetInt("setup_us", p.Setup.Microseconds())
			cspan.SetInt("search_us", p.Search.Microseconds())
			cspan.SetInt("model_us", p.Model.Microseconds())
			cspan.SetInt("precision_us", p.Precision.Microseconds())
			cspan.SetInt("coverage_us", p.Coverage.Microseconds())
			cspan.SetInt("queries", int64(p.Queries))
			cspan.SetInt("model_calls", int64(p.ModelCalls))
		}
		c := newCachedExplanation(wire.FromExplanation(expl))
		c.profile = wire.FromProfile(expl.Profile)
		s.results.put(key, c)
		s.persistPut(key, entry.specString(), snap, c.expl)
		if s.log.Enabled(cctx, slog.LevelDebug) {
			s.log.LogAttrs(cctx, slog.LevelDebug, "explanation computed",
				slog.String("spec", entry.specString()),
				slog.String("content_id", key.Hex()),
				slog.Duration("elapsed", elapsed),
				obs.TraceAttr(cspan.TraceID()))
		}
		return c, nil
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		span.SetErr(err)
		switch {
		case errors.Is(err, errOverloaded):
			s.writeErrorNeg(w, binResp, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, errDraining), errors.Is(err, context.Canceled):
			s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "%v", errDraining)
		default:
			s.writeErrorNeg(w, binResp, http.StatusInternalServerError, "explain failed: %v", err)
		}
		return
	}
	source := "computed"
	if shared {
		source = "coalesced"
	}
	finish(val.(*cachedExplanation), source)
}

// traceparentCarrier is implemented by models that can propagate a trace
// across their backend hop (remote.Model). WithTraceparent returns a
// per-request shallow copy; the shared registry model is never mutated.
type traceparentCarrier interface {
	WithTraceparent(tp string) costmodel.Model
}

// traceModel wraps model with the active trace's propagation header when
// the model supports it, so a sampled request chains into one trace
// across every comet-serve a remote@url model fans out to.
func traceModel(ctx context.Context, model costmodel.Model) costmodel.Model {
	sc := obs.ContextSpanContext(ctx)
	if sc.IsZero() {
		return model
	}
	if tc, ok := model.(traceparentCarrier); ok {
		return tc.WithTraceparent(sc.Traceparent())
	}
	return model
}

// lookupModel resolves a request's model spec (falling back to the
// server default) to a warmed entry. Client input is untrusted: it may
// not resolve restricted specs unless the server allows them, and any
// warm-up it triggers holds an explain slot.
func (s *Server) lookupModel(modelStr string, arch x86.Arch) (*modelEntry, error) {
	trusted := false
	if modelStr == "" {
		// The operator chose the default model; resolving it is as
		// trusted as a -preload.
		modelStr = s.cfg.DefaultModel
		trusted = true
	}
	return s.models.get(modelStr, wire.ArchName(arch), trusted)
}

// modelErrorStatus maps a model-resolution failure to its HTTP status:
// backpressure on a full instance table or a gated warm-up, forbidden
// for restricted specs, bad request otherwise.
func modelErrorStatus(err error) int {
	switch {
	case errors.Is(err, errRegistryFull), errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errRestrictedSpec):
		return http.StatusForbidden
	}
	return http.StatusBadRequest
}

// errOverloaded signals explain backpressure; the handler maps it to 429.
var errOverloaded = errors.New("too many concurrent explain requests")

// acquireExplainSlot takes a computation slot, waiting in a bounded queue.
// When MaxQueuedExplains callers are already waiting, it fails fast — the
// server sheds load instead of building an unbounded backlog. The wait is
// interrupted only by server shutdown.
func (s *Server) acquireExplainSlot() error {
	select {
	case s.explainSlots <- struct{}{}:
		return nil
	default:
	}
	if s.explainWaiting.Add(1) > int64(s.cfg.MaxQueuedExplains) {
		s.explainWaiting.Add(-1)
		return errOverloaded
	}
	defer s.explainWaiting.Add(-1)
	select {
	case s.explainSlots <- struct{}{}:
		return nil
	case <-s.ctx.Done():
		return errDraining
	}
}

func (s *Server) releaseExplainSlot() { <-s.explainSlots }

// handleCorpus serves POST /v1/corpus. JSON bodies carry a
// wire.CorpusRequest of pre-parsed block texts; binary-upload bodies
// (Content-Type application/x-elf, application/octet-stream, or
// multipart/form-data) carry an ELF binary whose basic blocks are
// extracted server-side (see handleCorpusUpload).
func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	if isUploadContentType(r.Header.Get("Content-Type")) {
		s.handleCorpusUpload(w, r)
		return
	}
	var req wire.CorpusRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Blocks) == 0 {
		writeError(w, http.StatusBadRequest, "corpus has no blocks")
		return
	}
	if len(req.Blocks) > s.cfg.MaxCorpusBlocks {
		writeError(w, http.StatusRequestEntityTooLarge,
			"corpus of %d blocks exceeds the limit of %d", len(req.Blocks), s.cfg.MaxCorpusBlocks)
		return
	}
	blocks := make([]*x86.BasicBlock, len(req.Blocks))
	for i, src := range req.Blocks {
		b, err := x86.ParseBlock(src)
		if err != nil {
			writeError(w, http.StatusBadRequest, "block %d: %v", i, err)
			return
		}
		blocks[i] = b
	}
	s.submitCorpusJob(w, r, blocks, req.Model, req.Arch, req.Config, req.Workers, req.Stream)
}

// submitCorpusJob resolves the model and queues an async corpus job over
// already-parsed blocks — the shared tail of the JSON and binary-upload
// corpus entry points.
func (s *Server) submitCorpusJob(w http.ResponseWriter, r *http.Request, blocks []*x86.BasicBlock,
	model, archStr string, overrides *wire.ConfigOverrides, workers int, stream bool) {
	arch, err := wire.ParseArch(archStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	entry, err := s.lookupModel(model, arch)
	if err != nil {
		writeError(w, modelErrorStatus(err), "%v", err)
		return
	}
	cfg := core.ApplyOptions(s.cfg.Base, requestOptions(entry, overrides)...)
	j := &job{
		blocks:   blocks,
		entry:    entry,
		cfg:      cfg,
		workers:  workers,
		spec:     entry.specString(),
		snapshot: wire.SnapshotConfig(cfg),
	}
	if stream {
		// Stream-only job: results are delivered through
		// GET /v1/jobs/{id}/stream and only a bounded catch-up ring is
		// retained, so memory stays flat however large the corpus is.
		j.streamOnly = true
		j.ringCap = s.cfg.StreamRingSize
	}
	// The accepting request's span context rides on the job so its async
	// execution — and every worker lease it fans out to — shares this
	// trace ID (corpus is a force-sampled route).
	j.trace = obs.ContextSpanContext(r.Context())
	if span := obs.SpanFromContext(r.Context()); span != nil {
		span.Set("spec", j.spec)
		span.SetInt("blocks", int64(len(blocks)))
	}
	if err := s.jobs.submit(j); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			writeError(w, http.StatusTooManyRequests, "%v", err)
		default:
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	s.log.Info("corpus job accepted",
		"job_id", j.id, "spec", j.spec, "blocks", len(blocks),
		obs.TraceAttr(j.trace.Trace))
	writeJSON(w, http.StatusAccepted, wire.JobAccepted{ID: j.id, State: wire.JobQueued, Total: len(blocks)})
}

// handleJob serves GET /v1/jobs/{id}?offset=&limit= and dispatches
// GET /v1/jobs/{id}/stream to the streaming handler.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if stream, ok := strings.CutSuffix(id, "/stream"); ok && stream != "" && !strings.Contains(stream, "/") {
		s.handleJobStream(w, r, stream)
		return
	}
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q (finished jobs are evicted after %d newer ones)", id, s.cfg.JobHistorySize)
		return
	}
	writeJSON(w, http.StatusOK, j.status(offset, limit))
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s %q", name, v)
	}
	return n, nil
}

// handleHealthz serves GET /healthz: pure liveness — the process is up
// and serving HTTP. Restart on failure; do not route on it (that is
// /readyz's job).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		state = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": state})
}

// handleReadyz serves GET /readyz: readiness — 200 only after the
// operator called SetReady (model warm-up and store Restore complete)
// and while not draining. Load balancers and cluster coordinators route
// on this, so cold or draining servers receive no traffic. Non-200
// responses carry a machine-readable reason — "draining" (shutdown in
// progress), "restoring" (a durable store is attached and Restore has
// not finished), or "cold" (warm-up still running) — so operators and
// coordinators can tell the cases apart.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "draining", "reason": "draining"})
	case !s.ready.Load():
		reason := "cold"
		if s.store != nil && !s.restored.Load() {
			reason = "restoring"
		}
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "starting", "reason": reason})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var sb strings.Builder
	// Runtime health is sampled at render time — gauges cost their reader,
	// not the request path.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	extra := []gauge{
		{name: "comet_build_info",
			labels: fmt.Sprintf("version=%q,goversion=%q", version.Version, runtime.Version()),
			value:  1},
		{name: "comet_explain_inflight", value: float64(len(s.explainSlots))},
		{name: "comet_explain_waiting", value: float64(s.explainWaiting.Load())},
		{name: "comet_result_store_entries", value: float64(s.results.len())},
		{name: "comet_intern_entries", value: float64(s.intern.len())},
		{name: "comet_goroutines", value: float64(runtime.NumGoroutine())},
		{name: "comet_heap_bytes", value: float64(ms.HeapAlloc)},
		{name: "comet_gc_pause_seconds_total", value: float64(ms.PauseTotalNs) / 1e9},
		{name: "comet_gc_cycles_total", value: float64(ms.NumGC)},
	}
	extra = append(extra, s.jobs.gauges()...)
	extra = append(extra, s.models.cacheGauges()...)
	extra = append(extra, s.clusterGauges()...)
	if s.store != nil {
		st := s.store.Stats()
		extra = append(extra,
			gauge{name: "comet_store_entries", value: float64(st.Entries)},
			gauge{name: "comet_store_live_bytes", value: float64(st.LiveBytes)},
			gauge{name: "comet_store_total_bytes", value: float64(st.TotalBytes)},
			gauge{name: "comet_store_segments", value: float64(st.Segments)},
			gauge{name: "comet_store_hits_total", value: float64(st.Hits)},
			gauge{name: "comet_store_misses_total", value: float64(st.Misses)},
			gauge{name: "comet_store_puts_total", value: float64(st.Puts)},
			gauge{name: "comet_store_corrupt_records_total", value: float64(st.CorruptRecords)},
			gauge{name: "comet_store_evictions_total", value: float64(st.Evictions)},
			gauge{name: "comet_store_compactions_total", value: float64(st.Compactions)},
		)
	}
	s.metrics.render(&sb, extra)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = w.Write([]byte(sb.String()))
}
