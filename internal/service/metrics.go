package service

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metrics is cometd's stdlib-only instrumentation: request counters by
// (route, status), per-route latency histograms, and service-level
// counters (coalesced requests, result-store hits). Everything renders in
// the Prometheus text exposition format on GET /metrics; gauges sourced
// from live structures (queue depth, cache stats, job states) are appended
// by the server at render time.
type metrics struct {
	mu       sync.Mutex
	requests map[string]*atomic.Uint64 // "route|code" → count
	latency  map[string]*histogram     // route → histogram

	coalesced       atomic.Uint64 // explain requests served by single-flight
	resultStoreHits atomic.Uint64 // explain requests served by the LRU store
	explanations    atomic.Uint64 // explanations actually computed
	predictions     atomic.Uint64 // blocks predicted via /v1/predict
	shardBlocks     atomic.Uint64 // blocks explained for coordinators via /v1/shard
	persistHits     atomic.Uint64 // explain requests served by the durable store
	persistMisses   atomic.Uint64 // durable-store lookups that fell through
	storeErrors     atomic.Uint64 // durable-store write/sync failures
	internHits      atomic.Uint64 // binary requests answered from the intern table (no decode)
	frameRequests   atomic.Uint64 // binary-framed request bodies decoded
	streamedResults atomic.Uint64 // corpus results delivered over job streams
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]*atomic.Uint64),
		latency:  make(map[string]*histogram),
	}
}

// observe records one finished request.
func (m *metrics) observe(route string, code int, seconds float64) {
	key := fmt.Sprintf("%s|%d", route, code)
	m.mu.Lock()
	c, ok := m.requests[key]
	if !ok {
		c = &atomic.Uint64{}
		m.requests[key] = c
	}
	h, ok := m.latency[route]
	if !ok {
		h = newHistogram()
		m.latency[route] = h
	}
	m.mu.Unlock()
	c.Add(1)
	h.observe(seconds)
}

// gauge is one extra sample appended by the server at render time.
type gauge struct {
	name   string
	labels string // rendered label set, "" or `model="uica",arch="hsw"`
	value  float64
}

// render writes the exposition text. Extra gauges come from the server
// (queue depth, prediction-cache stats, job states, store sizes).
func (m *metrics) render(sb *strings.Builder, extra []gauge) {
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(latKeys)

	sb.WriteString("# HELP comet_requests_total HTTP requests served, by route and status code.\n")
	sb.WriteString("# TYPE comet_requests_total counter\n")
	for _, k := range reqKeys {
		route, code, _ := strings.Cut(k, "|")
		m.mu.Lock()
		c := m.requests[k]
		m.mu.Unlock()
		fmt.Fprintf(sb, "comet_requests_total{route=%q,code=%q} %d\n", route, code, c.Load())
	}

	sb.WriteString("# HELP comet_request_seconds Request latency, by route.\n")
	sb.WriteString("# TYPE comet_request_seconds histogram\n")
	for _, route := range latKeys {
		m.mu.Lock()
		h := m.latency[route]
		m.mu.Unlock()
		h.render(sb, "comet_request_seconds", fmt.Sprintf("route=%q", route))
	}

	fmt.Fprintf(sb, "# HELP comet_explain_coalesced_total Explain requests coalesced onto an identical in-flight computation.\n")
	fmt.Fprintf(sb, "# TYPE comet_explain_coalesced_total counter\n")
	fmt.Fprintf(sb, "comet_explain_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(sb, "# HELP comet_result_store_hits_total Explain requests served from the explanation result store.\n")
	fmt.Fprintf(sb, "# TYPE comet_result_store_hits_total counter\n")
	fmt.Fprintf(sb, "comet_result_store_hits_total %d\n", m.resultStoreHits.Load())
	fmt.Fprintf(sb, "# HELP comet_explanations_computed_total Explanations actually computed (not coalesced or cached).\n")
	fmt.Fprintf(sb, "# TYPE comet_explanations_computed_total counter\n")
	fmt.Fprintf(sb, "comet_explanations_computed_total %d\n", m.explanations.Load())
	fmt.Fprintf(sb, "# HELP comet_predictions_served_total Blocks predicted through POST /v1/predict.\n")
	fmt.Fprintf(sb, "# TYPE comet_predictions_served_total counter\n")
	fmt.Fprintf(sb, "comet_predictions_served_total %d\n", m.predictions.Load())
	fmt.Fprintf(sb, "# HELP comet_shard_blocks_total Blocks explained on behalf of cluster coordinators through POST /v1/shard.\n")
	fmt.Fprintf(sb, "# TYPE comet_shard_blocks_total counter\n")
	fmt.Fprintf(sb, "comet_shard_blocks_total %d\n", m.shardBlocks.Load())
	fmt.Fprintf(sb, "# HELP comet_persist_hits_total Explain requests served from the durable store.\n")
	fmt.Fprintf(sb, "# TYPE comet_persist_hits_total counter\n")
	fmt.Fprintf(sb, "comet_persist_hits_total %d\n", m.persistHits.Load())
	fmt.Fprintf(sb, "# HELP comet_persist_misses_total Durable-store lookups that fell through to computation.\n")
	fmt.Fprintf(sb, "# TYPE comet_persist_misses_total counter\n")
	fmt.Fprintf(sb, "comet_persist_misses_total %d\n", m.persistMisses.Load())
	fmt.Fprintf(sb, "# HELP comet_store_errors_total Durable-store write or sync failures (requests are never failed on them).\n")
	fmt.Fprintf(sb, "# TYPE comet_store_errors_total counter\n")
	fmt.Fprintf(sb, "comet_store_errors_total %d\n", m.storeErrors.Load())
	fmt.Fprintf(sb, "# HELP comet_intern_hits_total Binary explain requests answered from the intern table without decoding.\n")
	fmt.Fprintf(sb, "# TYPE comet_intern_hits_total counter\n")
	fmt.Fprintf(sb, "comet_intern_hits_total %d\n", m.internHits.Load())
	fmt.Fprintf(sb, "# HELP comet_frame_requests_total Binary-framed request bodies decoded.\n")
	fmt.Fprintf(sb, "# TYPE comet_frame_requests_total counter\n")
	fmt.Fprintf(sb, "comet_frame_requests_total %d\n", m.frameRequests.Load())
	fmt.Fprintf(sb, "# HELP comet_streamed_results_total Corpus results delivered over GET /v1/jobs/{id}/stream.\n")
	fmt.Fprintf(sb, "# TYPE comet_streamed_results_total counter\n")
	fmt.Fprintf(sb, "comet_streamed_results_total %d\n", m.streamedResults.Load())

	byName := make(map[string][]gauge)
	var names []string
	for _, g := range extra {
		if _, ok := byName[g.name]; !ok {
			names = append(names, g.name)
		}
		byName[g.name] = append(byName[g.name], g)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(sb, "# TYPE %s gauge\n", name)
		for _, g := range byName[name] {
			if g.labels == "" {
				fmt.Fprintf(sb, "%s %s\n", name, formatFloat(g.value))
			} else {
				fmt.Fprintf(sb, "%s{%s} %s\n", name, g.labels, formatFloat(g.value))
			}
		}
	}
}

// histogram is a fixed-bucket latency histogram with atomic counters.
type histogram struct {
	bounds []float64 // upper bounds in seconds; +Inf implied
	counts []atomic.Uint64
	sumMu  sync.Mutex
	sum    float64
	count  atomic.Uint64
}

// Latency buckets from 1ms to ~2min; explanations of big blocks on slow
// models legitimately take seconds.
var latencyBounds = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 120}

func newHistogram() *histogram {
	return &histogram{
		bounds: latencyBounds,
		counts: make([]atomic.Uint64, len(latencyBounds)+1),
	}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

func (h *histogram) render(sb *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket{%s,le=%q} %d\n", name, labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	h.sumMu.Lock()
	sum := h.sum
	h.sumMu.Unlock()
	fmt.Fprintf(sb, "%s_sum{%s} %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(sb, "%s_count{%s} %d\n", name, labels, h.count.Load())
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
