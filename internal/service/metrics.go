package service

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metrics is cometd's stdlib-only instrumentation: request counters by
// (route, status), per-route latency histograms, per-spec explanation
// latency histograms, and service-level counters (coalesced requests,
// result-store hits). Everything renders in the Prometheus text
// exposition format on GET /metrics; gauges sourced from live structures
// (queue depth, cache stats, job states, runtime) are appended by the
// server at render time.
//
// The request hot path is allocation- and lock-free: routes are
// registered once at mux wiring time, each holding a fixed array of
// per-status atomic counters, so observe is two atomic adds and a bucket
// search — no fmt, no map, no mutex. (The previous implementation built
// a "route|code" key with fmt.Sprintf under a global mutex per request,
// which was measurable at the binary warm path's request rates.)
type metrics struct {
	mu     sync.Mutex
	routes []*routeStats // registration order; sorted at render

	// specLatency maps model spec → *histogram of computed-explanation
	// wall times. Entries are created on first computation for a spec;
	// cardinality is bounded by the model registry's entry cap.
	specLatency sync.Map

	// specQuality maps model spec → *qualityStats: the explanation-quality
	// telemetry (achieved precision, coverage, perturbation count,
	// ε-violation rate) recorded wherever an explanation is actually
	// computed — sync request, local corpus job, worker shard lease — and
	// never on the coordinator's merge path, so cluster runs count each
	// explanation exactly once (on the process that computed it).
	specQuality sync.Map

	coalesced       atomic.Uint64 // explain requests served by single-flight
	resultStoreHits atomic.Uint64 // explain requests served by the LRU store
	explanations    atomic.Uint64 // explanations actually computed
	predictions     atomic.Uint64 // blocks predicted via /v1/predict
	shardBlocks     atomic.Uint64 // blocks explained for coordinators via /v1/shard
	persistHits     atomic.Uint64 // explain requests served by the durable store
	persistMisses   atomic.Uint64 // durable-store lookups that fell through
	storeErrors     atomic.Uint64 // durable-store write/sync failures
	internHits      atomic.Uint64 // binary requests answered from the intern table (no decode)
	frameRequests   atomic.Uint64 // binary-framed request bodies decoded
	streamedResults atomic.Uint64 // corpus results delivered over job streams

	// Binary-ingestion counters (POST /v1/corpus upload mode).
	ingestBinaries atomic.Uint64 // ELF uploads successfully extracted
	ingestSections atomic.Uint64 // executable sections scanned
	ingestBytes    atomic.Uint64 // code bytes examined
	ingestBlocks   atomic.Uint64 // unique basic blocks emitted
	ingestDeduped  atomic.Uint64 // duplicate blocks dropped
	ingestSkipped  atomic.Uint64 // unmodeled instructions skipped
	ingestRejected atomic.Uint64 // uploads rejected (oversized or unextractable)
}

func newMetrics() *metrics {
	return &metrics{}
}

// routeStats holds one route's pre-registered counters. Status codes
// index a fixed array (100–599), so recording a request touches no
// shared lock and allocates nothing.
type routeStats struct {
	name    string
	codes   [500]atomic.Uint64 // status code − 100
	latency histogram
	// slow counts requests committed to the outlier trace ring (latency
	// over the slow threshold, or status ≥ 500); incremented by the
	// commit path, not by observe.
	slow atomic.Uint64
}

// routeList snapshots the registered routes, registration order. The
// history sampler uses it to wire per-route series after the mux is
// built.
func (m *metrics) routeList() []*routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*routeStats(nil), m.routes...)
}

// route registers (or returns) the stats slot for a route name. Called
// once per route when the mux is wired, never on the request path.
func (m *metrics) route(name string) *routeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rs := range m.routes {
		if rs.name == name {
			return rs
		}
	}
	rs := &routeStats{name: name}
	rs.latency.init(latencyBounds)
	m.routes = append(m.routes, rs)
	return rs
}

// observe records one finished request: two atomic adds plus the
// histogram's bucket add.
func (rs *routeStats) observe(code int, seconds float64) {
	if code < 100 || code >= 600 {
		code = 599 // never drop a sample; 599 is the "invalid status" bucket
	}
	rs.codes[code-100].Add(1)
	rs.latency.observe(seconds)
}

// observeExplanation records one computed explanation's wall time under
// its model spec. The sync.Map lookup is lock-free after the first
// computation for a spec.
func (m *metrics) observeExplanation(spec string, seconds float64) {
	v, ok := m.specLatency.Load(spec)
	if !ok {
		h := &histogram{}
		h.init(latencyBounds)
		v, _ = m.specLatency.LoadOrStore(spec, h)
	}
	v.(*histogram).observe(seconds)
}

// qualityStats aggregates one model spec's explanation quality. The hot
// path is the same atomized discipline as the latency histograms: after
// the first explanation for a spec, recording is a lock-free sync.Map
// load plus atomic histogram observes — no allocation, no mutex.
type qualityStats struct {
	precision histogram // achieved Prec(F), fraction
	coverage  histogram // achieved Cov(F), fraction of the coverage pool
	queries   histogram // perturbations (cost-model queries) per explanation
	// violations counts explanations whose KL lower bound failed to clear
	// the 1−δ precision threshold (Certified == false); the ε-violation
	// rate is violations / count.
	violations atomic.Uint64
	count      atomic.Uint64
}

// Fraction buckets for precision/coverage in [0, 1]; the top buckets are
// dense because that is where the certification threshold lives.
var fractionBounds = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}

// Perturbation-count buckets: cheap anchors run tens of queries, hard
// blocks on tight thresholds run thousands.
var queryBounds = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000}

// observeQuality records one computed explanation's quality signals
// under its model spec.
func (m *metrics) observeQuality(spec string, precision, coverage float64, queries int, certified bool) {
	v, ok := m.specQuality.Load(spec)
	if !ok {
		q := &qualityStats{}
		q.precision.init(fractionBounds)
		q.coverage.init(fractionBounds)
		q.queries.init(queryBounds)
		v, _ = m.specQuality.LoadOrStore(spec, q)
	}
	q := v.(*qualityStats)
	q.precision.observe(precision)
	q.coverage.observe(coverage)
	q.queries.observe(float64(queries))
	q.count.Add(1)
	if !certified {
		q.violations.Add(1)
	}
}

// renderQuality writes the per-spec explanation-quality families.
func (m *metrics) renderQuality(sb *strings.Builder) {
	var specs []string
	m.specQuality.Range(func(k, _ any) bool {
		specs = append(specs, k.(string))
		return true
	})
	if len(specs) == 0 {
		return
	}
	sort.Strings(specs)
	stats := func(spec string) *qualityStats {
		v, _ := m.specQuality.Load(spec)
		return v.(*qualityStats)
	}
	sb.WriteString("# HELP comet_explanation_precision Achieved precision Prec(F) of computed explanations, by model spec.\n")
	sb.WriteString("# TYPE comet_explanation_precision histogram\n")
	for _, spec := range specs {
		stats(spec).precision.render(sb, "comet_explanation_precision", fmt.Sprintf("spec=%q", spec))
	}
	sb.WriteString("# HELP comet_explanation_coverage Achieved coverage Cov(F) of computed explanations (fraction of the coverage pool), by model spec.\n")
	sb.WriteString("# TYPE comet_explanation_coverage histogram\n")
	for _, spec := range specs {
		stats(spec).coverage.render(sb, "comet_explanation_coverage", fmt.Sprintf("spec=%q", spec))
	}
	sb.WriteString("# HELP comet_explanation_queries Cost-model queries (perturbations) issued per computed explanation, by model spec.\n")
	sb.WriteString("# TYPE comet_explanation_queries histogram\n")
	for _, spec := range specs {
		stats(spec).queries.render(sb, "comet_explanation_queries", fmt.Sprintf("spec=%q", spec))
	}
	sb.WriteString("# HELP comet_explanation_epsilon_violations_total Computed explanations whose precision bound failed certification (Certified=false), by model spec.\n")
	sb.WriteString("# TYPE comet_explanation_epsilon_violations_total counter\n")
	for _, spec := range specs {
		fmt.Fprintf(sb, "comet_explanation_epsilon_violations_total{spec=%q} %d\n", spec, stats(spec).violations.Load())
	}
	sb.WriteString("# HELP comet_explanation_quality_samples_total Computed explanations feeding the quality histograms, by model spec.\n")
	sb.WriteString("# TYPE comet_explanation_quality_samples_total counter\n")
	for _, spec := range specs {
		fmt.Fprintf(sb, "comet_explanation_quality_samples_total{spec=%q} %d\n", spec, stats(spec).count.Load())
	}
}

// gauge is one extra sample appended by the server at render time.
type gauge struct {
	name   string
	labels string // rendered label set, "" or `model="uica",arch="hsw"`
	value  float64
}

// render writes the exposition text. Extra gauges come from the server
// (queue depth, prediction-cache stats, job states, store sizes,
// runtime).
func (m *metrics) render(sb *strings.Builder, extra []gauge) {
	m.mu.Lock()
	routes := append([]*routeStats(nil), m.routes...)
	m.mu.Unlock()
	sort.Slice(routes, func(i, j int) bool { return routes[i].name < routes[j].name })

	sb.WriteString("# HELP comet_requests_total HTTP requests served, by route and status code.\n")
	sb.WriteString("# TYPE comet_requests_total counter\n")
	for _, rs := range routes {
		for i := range rs.codes {
			if n := rs.codes[i].Load(); n > 0 {
				fmt.Fprintf(sb, "comet_requests_total{route=%q,code=\"%d\"} %d\n", rs.name, i+100, n)
			}
		}
	}

	sb.WriteString("# HELP comet_slow_requests_total Requests committed to the outlier trace ring (latency over the slow threshold, or status >= 500), by route.\n")
	sb.WriteString("# TYPE comet_slow_requests_total counter\n")
	for _, rs := range routes {
		if n := rs.slow.Load(); n > 0 {
			fmt.Fprintf(sb, "comet_slow_requests_total{route=%q} %d\n", rs.name, n)
		}
	}

	sb.WriteString("# HELP comet_request_seconds Request latency, by route.\n")
	sb.WriteString("# TYPE comet_request_seconds histogram\n")
	for _, rs := range routes {
		if rs.latency.count.Load() > 0 {
			rs.latency.render(sb, "comet_request_seconds", fmt.Sprintf("route=%q", rs.name))
		}
	}

	var specs []string
	m.specLatency.Range(func(k, _ any) bool {
		specs = append(specs, k.(string))
		return true
	})
	if len(specs) > 0 {
		sort.Strings(specs)
		sb.WriteString("# HELP comet_explanation_seconds Computed-explanation wall time, by model spec (cache hits excluded).\n")
		sb.WriteString("# TYPE comet_explanation_seconds histogram\n")
		for _, spec := range specs {
			v, _ := m.specLatency.Load(spec)
			v.(*histogram).render(sb, "comet_explanation_seconds", fmt.Sprintf("spec=%q", spec))
		}
	}

	m.renderQuality(sb)

	fmt.Fprintf(sb, "# HELP comet_explain_coalesced_total Explain requests coalesced onto an identical in-flight computation.\n")
	fmt.Fprintf(sb, "# TYPE comet_explain_coalesced_total counter\n")
	fmt.Fprintf(sb, "comet_explain_coalesced_total %d\n", m.coalesced.Load())
	fmt.Fprintf(sb, "# HELP comet_result_store_hits_total Explain requests served from the explanation result store.\n")
	fmt.Fprintf(sb, "# TYPE comet_result_store_hits_total counter\n")
	fmt.Fprintf(sb, "comet_result_store_hits_total %d\n", m.resultStoreHits.Load())
	fmt.Fprintf(sb, "# HELP comet_explanations_computed_total Explanations actually computed (not coalesced or cached).\n")
	fmt.Fprintf(sb, "# TYPE comet_explanations_computed_total counter\n")
	fmt.Fprintf(sb, "comet_explanations_computed_total %d\n", m.explanations.Load())
	fmt.Fprintf(sb, "# HELP comet_predictions_served_total Blocks predicted through POST /v1/predict.\n")
	fmt.Fprintf(sb, "# TYPE comet_predictions_served_total counter\n")
	fmt.Fprintf(sb, "comet_predictions_served_total %d\n", m.predictions.Load())
	fmt.Fprintf(sb, "# HELP comet_shard_blocks_total Blocks explained on behalf of cluster coordinators through POST /v1/shard.\n")
	fmt.Fprintf(sb, "# TYPE comet_shard_blocks_total counter\n")
	fmt.Fprintf(sb, "comet_shard_blocks_total %d\n", m.shardBlocks.Load())
	fmt.Fprintf(sb, "# HELP comet_persist_hits_total Explain requests served from the durable store.\n")
	fmt.Fprintf(sb, "# TYPE comet_persist_hits_total counter\n")
	fmt.Fprintf(sb, "comet_persist_hits_total %d\n", m.persistHits.Load())
	fmt.Fprintf(sb, "# HELP comet_persist_misses_total Durable-store lookups that fell through to computation.\n")
	fmt.Fprintf(sb, "# TYPE comet_persist_misses_total counter\n")
	fmt.Fprintf(sb, "comet_persist_misses_total %d\n", m.persistMisses.Load())
	fmt.Fprintf(sb, "# HELP comet_store_errors_total Durable-store write or sync failures (requests are never failed on them).\n")
	fmt.Fprintf(sb, "# TYPE comet_store_errors_total counter\n")
	fmt.Fprintf(sb, "comet_store_errors_total %d\n", m.storeErrors.Load())
	fmt.Fprintf(sb, "# HELP comet_intern_hits_total Binary explain requests answered from the intern table without decoding.\n")
	fmt.Fprintf(sb, "# TYPE comet_intern_hits_total counter\n")
	fmt.Fprintf(sb, "comet_intern_hits_total %d\n", m.internHits.Load())
	fmt.Fprintf(sb, "# HELP comet_frame_requests_total Binary-framed request bodies decoded.\n")
	fmt.Fprintf(sb, "# TYPE comet_frame_requests_total counter\n")
	fmt.Fprintf(sb, "comet_frame_requests_total %d\n", m.frameRequests.Load())
	fmt.Fprintf(sb, "# HELP comet_streamed_results_total Corpus results delivered over GET /v1/jobs/{id}/stream.\n")
	fmt.Fprintf(sb, "# TYPE comet_streamed_results_total counter\n")
	fmt.Fprintf(sb, "comet_streamed_results_total %d\n", m.streamedResults.Load())
	fmt.Fprintf(sb, "# HELP comet_ingest_binaries_total ELF binaries ingested through POST /v1/corpus uploads.\n")
	fmt.Fprintf(sb, "# TYPE comet_ingest_binaries_total counter\n")
	fmt.Fprintf(sb, "comet_ingest_binaries_total %d\n", m.ingestBinaries.Load())
	fmt.Fprintf(sb, "# HELP comet_ingest_sections_total Executable sections scanned during binary ingestion.\n")
	fmt.Fprintf(sb, "# TYPE comet_ingest_sections_total counter\n")
	fmt.Fprintf(sb, "comet_ingest_sections_total %d\n", m.ingestSections.Load())
	fmt.Fprintf(sb, "# HELP comet_ingest_bytes_total Code bytes decoded during binary ingestion.\n")
	fmt.Fprintf(sb, "# TYPE comet_ingest_bytes_total counter\n")
	fmt.Fprintf(sb, "comet_ingest_bytes_total %d\n", m.ingestBytes.Load())
	fmt.Fprintf(sb, "# HELP comet_ingest_blocks_total Unique basic blocks extracted during binary ingestion.\n")
	fmt.Fprintf(sb, "# TYPE comet_ingest_blocks_total counter\n")
	fmt.Fprintf(sb, "comet_ingest_blocks_total %d\n", m.ingestBlocks.Load())
	fmt.Fprintf(sb, "# HELP comet_ingest_deduped_total Duplicate basic blocks dropped during binary ingestion.\n")
	fmt.Fprintf(sb, "# TYPE comet_ingest_deduped_total counter\n")
	fmt.Fprintf(sb, "comet_ingest_deduped_total %d\n", m.ingestDeduped.Load())
	fmt.Fprintf(sb, "# HELP comet_ingest_skipped_total Instructions outside the modeled subset skipped during binary ingestion.\n")
	fmt.Fprintf(sb, "# TYPE comet_ingest_skipped_total counter\n")
	fmt.Fprintf(sb, "comet_ingest_skipped_total %d\n", m.ingestSkipped.Load())
	fmt.Fprintf(sb, "# HELP comet_ingest_rejected_total Binary uploads rejected (oversized or unextractable).\n")
	fmt.Fprintf(sb, "# TYPE comet_ingest_rejected_total counter\n")
	fmt.Fprintf(sb, "comet_ingest_rejected_total %d\n", m.ingestRejected.Load())

	byName := make(map[string][]gauge)
	var names []string
	for _, g := range extra {
		if _, ok := byName[g.name]; !ok {
			names = append(names, g.name)
		}
		byName[g.name] = append(byName[g.name], g)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(sb, "# TYPE %s gauge\n", name)
		for _, g := range byName[name] {
			if g.labels == "" {
				fmt.Fprintf(sb, "%s %s\n", name, formatFloat(g.value))
			} else {
				fmt.Fprintf(sb, "%s{%s} %s\n", name, g.labels, formatFloat(g.value))
			}
		}
	}
}

// histogram is a fixed-bucket latency histogram with atomic counters.
// The sum is an atomic float (CAS over its bits), so observe never takes
// a lock.
type histogram struct {
	bounds  []float64 // upper bounds in seconds; +Inf implied
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Latency buckets from 1ms to ~2min; explanations of big blocks on slow
// models legitimately take seconds.
var latencyBounds = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 120}

func (h *histogram) init(bounds []float64) {
	h.bounds = bounds
	h.counts = make([]atomic.Uint64, len(bounds)+1)
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// sum reads the histogram's running sum of observed values.
func (h *histogram) sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

func (h *histogram) render(sb *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(sb, "%s_bucket{%s,le=%q} %d\n", name, labels, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(sb, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	sum := math.Float64frombits(h.sumBits.Load())
	fmt.Fprintf(sb, "%s_sum{%s} %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(sb, "%s_count{%s} %d\n", name, labels, h.count.Load())
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
