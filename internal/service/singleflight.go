package service

import "sync"

// flightGroup is a minimal single-flight: concurrent Do calls with the same
// key share one execution of fn. cometd keys explain work by the interned
// content ID over (model, arch, config, canonical block text), so a burst
// of identical requests — the common shape when a compiler pass or CI
// fleet asks about the same hot block — costs exactly one explanation
// computation, and key comparison is 32 fixed bytes instead of a hex
// string.
//
// (The x/sync/singleflight package is the reference design; this is a
// dependency-free reimplementation of the subset cometd needs.)
type flightGroup[K comparable] struct {
	mu sync.Mutex
	m  map[K]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do executes fn once per key among concurrent callers. The boolean
// reports whether this caller shared another caller's execution.
func (g *flightGroup[K]) Do(key K, fn func() (any, error)) (any, error, bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
