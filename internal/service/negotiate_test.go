package service

// End-to-end tests of the binary wire negotiation: byte identity between
// the JSON facade and decoded binary frames on every binary-capable
// endpoint, the interned zero-parse fast path, and the streaming job
// endpoint in both encodings — including the bounded catch-up ring's lag
// behavior.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// postFrame sends msg as a binary frame with a binary Accept header and
// returns the response plus its raw body.
func postFrame(t *testing.T, url string, msg any) (*http.Response, []byte) {
	t.Helper()
	frame, err := wire.EncodeBinary(msg)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.FrameContentType)
	req.Header.Set("Accept", wire.FrameContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// decodeFrameBody verifies the response is a well-formed frame and
// returns the decoded message.
func decodeFrameResponse(t *testing.T, resp *http.Response, body []byte) any {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != wire.FrameContentType {
		t.Fatalf("binary response Content-Type = %q, want %q", ct, wire.FrameContentType)
	}
	msg, err := wire.DecodeBinary(body)
	if err != nil {
		t.Fatalf("decoding response frame: %v", err)
	}
	return msg
}

// requireJSONIdentity asserts that the decoded binary message marshals to
// exactly the JSON-path body (which writeJSON terminates with a newline).
func requireJSONIdentity(t *testing.T, what string, decoded any, jsonBody []byte) {
	t.Helper()
	remarshaled, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(remarshaled, '\n'), jsonBody) {
		t.Errorf("%s: decoded binary response is not JSON-identical:\n binary %s\n   json %s",
			what, remarshaled, jsonBody)
	}
}

// TestBinaryExplainMatchesJSONByteForByte: the same explain request over
// both encodings produces the same explanation, byte for byte once the
// frame is decoded and re-marshaled.
func TestBinaryExplainMatchesJSONByteForByte(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &wire.ExplainRequest{Block: testBlock, Model: "uica", Arch: "hsw", Config: fastOverrides()}

	jsonResp, jsonBody := postJSON(t, ts.URL+"/v1/explain", req)
	if jsonResp.StatusCode != http.StatusOK {
		t.Fatalf("json explain: status %d: %s", jsonResp.StatusCode, jsonBody)
	}
	binResp, binBody := postFrame(t, ts.URL+"/v1/explain", req)
	if binResp.StatusCode != http.StatusOK {
		t.Fatalf("binary explain: status %d", binResp.StatusCode)
	}
	decoded := decodeFrameResponse(t, binResp, binBody)
	if _, ok := decoded.(*wire.Explanation); !ok {
		t.Fatalf("binary explain returned %T, want *wire.Explanation", decoded)
	}
	requireJSONIdentity(t, "explain", decoded, jsonBody)
}

// TestBinaryInternFastPath: a repeated identical binary request is served
// from the intern table — no frame decode, no model work — and still
// returns the identical bytes.
func TestBinaryInternFastPath(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	model := &countingModel{inner: uica.New(x86.Haswell)}
	s.RegisterModel("counting", x86.Haswell, model, 0)
	req := &wire.ExplainRequest{Block: testBlock, Model: "counting", Config: fastOverrides()}

	_, first := postFrame(t, ts.URL+"/v1/explain", req)
	callsAfterFirst := model.calls.Load()
	if callsAfterFirst == 0 {
		t.Fatal("first request did not reach the model")
	}
	hitsBefore := s.metrics.internHits.Load()

	_, second := postFrame(t, ts.URL+"/v1/explain", req)
	if !bytes.Equal(first, second) {
		t.Error("interned response differs from the computed one")
	}
	if got := s.metrics.internHits.Load(); got != hitsBefore+1 {
		t.Errorf("intern hits = %d, want %d", got, hitsBefore+1)
	}
	if got := model.calls.Load(); got != callsAfterFirst {
		t.Errorf("model called %d more times on the interned request", got-callsAfterFirst)
	}
}

// TestBinaryPredictMatchesJSON: /v1/predict over frames decodes to the
// JSON-identical batch response.
func TestBinaryPredictMatchesJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &wire.PredictRequest{Blocks: []string{testBlock, "add rax, rbx"}, Model: "uica", Arch: "hsw"}

	jsonResp, jsonBody := postJSON(t, ts.URL+"/v1/predict", req)
	if jsonResp.StatusCode != http.StatusOK {
		t.Fatalf("json predict: status %d: %s", jsonResp.StatusCode, jsonBody)
	}
	binResp, binBody := postFrame(t, ts.URL+"/v1/predict", req)
	if binResp.StatusCode != http.StatusOK {
		t.Fatalf("binary predict: status %d", binResp.StatusCode)
	}
	decoded := decodeFrameResponse(t, binResp, binBody)
	requireJSONIdentity(t, "predict", decoded, jsonBody)
}

// TestBinaryShardMatchesJSON: a shard lease over frames returns the same
// per-block results as over JSON — the encoding must never perturb the
// cluster determinism contract.
func TestBinaryShardMatchesJSON(t *testing.T) {
	// Two fresh workers, one per encoding: explanation accounting fields
	// (cache_hits, model_calls) depend on prediction-cache warmth, so only
	// cold-for-cold runs are byte-comparable.
	jsonSrv, jsonTS := newTestServer(t, Config{})
	jsonSrv.SetReady()
	binSrv, binTS := newTestServer(t, Config{})
	binSrv.SetReady()
	snap := shardConfigFor(t, jsonSrv, fastOverrides())
	sreq := wire.ShardRequest{
		JobID:  "job-neg",
		Lease:  "job-neg/l0",
		Spec:   "uica@hsw",
		Config: snap,
	}
	for i, b := range clusterTestBlocks[:3] {
		sreq.Blocks = append(sreq.Blocks, wire.ShardBlock{
			Index: i, Seed: core.BlockSeed(snap.Seed, i), Block: b,
		})
	}

	jsonResp, jsonBody := postJSON(t, jsonTS.URL+"/v1/shard", sreq)
	if jsonResp.StatusCode != http.StatusOK {
		t.Fatalf("json shard: status %d: %s", jsonResp.StatusCode, jsonBody)
	}
	binResp, binBody := postFrame(t, binTS.URL+"/v1/shard", &sreq)
	if binResp.StatusCode != http.StatusOK {
		t.Fatalf("binary shard: status %d", binResp.StatusCode)
	}
	decoded := decodeFrameResponse(t, binResp, binBody)
	sres, ok := decoded.(*wire.ShardResponse)
	if !ok {
		t.Fatalf("binary shard returned %T, want *wire.ShardResponse", decoded)
	}
	if len(sres.Results) != 3 {
		t.Fatalf("shard results = %d, want 3", len(sres.Results))
	}
	requireJSONIdentity(t, "shard", decoded, jsonBody)
}

// TestBinaryErrorResponses: a binary-negotiated failure comes back as a
// framed wire.Error, not a JSON envelope the frame decoder would choke on.
func TestBinaryErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := &wire.ExplainRequest{Block: testBlock, Model: "no-such-model"}
	resp, body := postFrame(t, ts.URL+"/v1/explain", req)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("unknown model succeeded")
	}
	decoded := decodeFrameResponse(t, resp, body)
	if e, ok := decoded.(*wire.Error); !ok || e.Error == "" {
		t.Fatalf("binary error response decoded to %#v, want non-empty *wire.Error", decoded)
	}
}

// streamJob submits a stream-only corpus job and returns its ID.
func streamJob(t *testing.T, baseURL string, blocks []string) string {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/corpus", wire.CorpusRequest{
		Blocks: blocks, Model: "uica", Config: fastOverrides(), Stream: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("corpus: status %d: %s", resp.StatusCode, body)
	}
	var accepted wire.JobAccepted
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	return accepted.ID
}

// waitJobDone polls job status until the job reaches a terminal state.
func waitJobDone(t *testing.T, baseURL, id string) wire.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st wire.JobStatus
		getJSON(t, baseURL+"/v1/jobs/"+id, &st)
		switch st.State {
		case wire.JobDone, wire.JobFailed, wire.JobCanceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestJobStreamNDJSON: the default stream encoding delivers every result
// as a wire.StreamEvent line, ends with a done summary, and the
// stream-only job's status endpoint never pages results.
func TestJobStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	blocks := []string{testBlock, "add rax, rbx", "pop rcx"}
	id := streamJob(t, ts.URL, blocks)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	seen := make(map[int]bool)
	var done *wire.JobSummary
	dec := json.NewDecoder(resp.Body)
	for {
		var ev wire.StreamEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		switch {
		case ev.Result != nil:
			if ev.Result.Error != "" {
				t.Fatalf("block %d failed: %s", ev.Result.Index, ev.Result.Error)
			}
			seen[ev.Result.Index] = true
		case ev.Done != nil:
			done = ev.Done
		default:
			t.Fatalf("stream error event: %s", ev.Error)
		}
	}
	if len(seen) != len(blocks) {
		t.Errorf("streamed %d distinct results, want %d", len(seen), len(blocks))
	}
	if done == nil || done.State != wire.JobDone || done.Done != len(blocks) {
		t.Errorf("terminal summary = %+v, want done with %d blocks", done, len(blocks))
	}

	st := waitJobDone(t, ts.URL, id)
	if len(st.Results) != 0 {
		t.Errorf("stream-only job status carries %d results, want none", len(st.Results))
	}
}

// TestJobStreamBinaryFrames: Accept: application/x-comet-frame turns the
// stream into raw frames — CorpusResult frames then a terminal
// JobSummary — each JSON-identical to the NDJSON event payloads.
func TestJobStreamBinaryFrames(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	blocks := []string{testBlock, "add rax, rbx"}
	id := streamJob(t, ts.URL, blocks)
	waitJobDone(t, ts.URL, id)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.FrameContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != wire.FrameContentType {
		t.Fatalf("binary stream Content-Type = %q, want %q", ct, wire.FrameContentType)
	}

	fr := wire.NewFrameReader(resp.Body)
	results := 0
	var done *wire.JobSummary
	for {
		payload, err := fr.Next()
		if err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		msg, err := wire.DecodeBinaryPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		switch m := msg.(type) {
		case *wire.CorpusResult:
			if done != nil {
				t.Fatal("result frame after the terminal summary")
			}
			if m.Error != "" {
				t.Fatalf("block %d failed: %s", m.Index, m.Error)
			}
			results++
		case *wire.JobSummary:
			done = m
		default:
			t.Fatalf("unexpected stream frame %T", msg)
		}
	}
	if results != len(blocks) {
		t.Errorf("binary stream carried %d results, want %d", results, len(blocks))
	}
	if done == nil || done.State != wire.JobDone {
		t.Errorf("terminal summary = %+v, want done", done)
	}
}

// TestJobStreamLagError: a reader that starts after the catch-up ring has
// trimmed gets a deterministic lag error event instead of silently
// missing results.
func TestJobStreamLagError(t *testing.T) {
	_, ts := newTestServer(t, Config{StreamRingSize: 4})
	blocks := make([]string, 12)
	for i := range blocks {
		// Distinct blocks so every result is a real computation.
		blocks[i] = fmt.Sprintf("add rax, %d\nadd rbx, rax", i+1)
	}
	id := streamJob(t, ts.URL, blocks)
	waitJobDone(t, ts.URL, id)

	// 12 results through a ring of 4 necessarily trimmed the front, so a
	// fresh reader at cursor 0 has already lost data.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawLag bool
	dec := json.NewDecoder(resp.Body)
	for {
		var ev wire.StreamEvent
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if ev.Result == nil && ev.Done == nil {
			sawLag = true
			if ev.Error == "" {
				t.Error("lag event has empty error")
			}
		}
	}
	if !sawLag {
		t.Error("late reader on a trimmed stream job saw no lag error event")
	}
}
