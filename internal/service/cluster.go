package service

// Cluster endpoints. Every server is a capable worker: POST /v1/shard
// executes one lease of a sharded corpus job with the exact per-block
// seeds and effective config the lease carries, so its results are
// byte-identical to the single-process run that would have produced
// them. Servers started in coordinator mode additionally accept worker
// self-registration (POST /v1/cluster/join, which doubles as the
// heartbeat) and expose the pool and lease-scheduler counters on
// GET /v1/cluster; their corpus jobs route through the cluster
// scheduler (see jobs.go) instead of the local engine.

import (
	"context"
	"net/http"
	"sort"
	"time"

	"github.com/comet-explain/comet/internal/cluster"
	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// handleShard serves POST /v1/shard: one lease of a sharded corpus job.
// The response carries one result per leased block, sorted by corpus
// index; per-block explanation failures surface in CorpusResult.Error,
// never as a non-2xx status (the coordinator must be able to tell "the
// block is hard" from "the worker is broken").
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	binResp := acceptsFrame(r)
	if r.Method != http.MethodPost {
		s.writeErrorNeg(w, binResp, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	if !s.ready.Load() {
		// A cold worker sheds leases; the coordinator's readiness probe
		// keeps them away in the first place.
		s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "server is warming up")
		return
	}
	var req wire.ShardRequest
	if isFrameRequest(r) {
		p, ok := decodeFrameBody[wire.ShardRequest](s, w, r, binResp)
		if !ok {
			return
		}
		req = *p
	} else if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Blocks) == 0 {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "shard has no blocks")
		return
	}
	if len(req.Blocks) > s.cfg.MaxCorpusBlocks {
		s.writeErrorNeg(w, binResp, http.StatusRequestEntityTooLarge,
			"shard of %d blocks exceeds the limit of %d", len(req.Blocks), s.cfg.MaxCorpusBlocks)
		return
	}
	arch, err := wire.ParseArch(req.Arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, http.StatusBadRequest, "%v", err)
		return
	}
	blocks := make([]*x86.BasicBlock, len(req.Blocks))
	for i, sb := range req.Blocks {
		b, err := x86.ParseBlock(sb.Block)
		if err != nil {
			s.writeErrorNeg(w, binResp, http.StatusBadRequest, "block %d (index %d): %v", i, sb.Index, err)
			return
		}
		blocks[i] = b
	}
	entry, err := s.lookupModel(req.Spec, arch)
	if err != nil {
		s.writeErrorNeg(w, binResp, modelErrorStatus(err), "%v", err)
		return
	}
	// The lease's config snapshot is authoritative: it is the job's
	// effective configuration, Parallelism pin included, so the worker
	// computes exactly what the coordinator would have.
	cfg := req.Config.Apply(s.cfg.Base)

	// The request span (shard is a force-traced route, parented on the
	// coordinator's traceparent) identifies the lease this worker ran.
	leaseStart := time.Now()
	span := obs.SpanFromContext(r.Context())
	if span != nil {
		span.Set("job_id", req.JobID)
		span.Set("lease", req.Lease)
		span.Set("spec", req.Spec)
		span.SetInt("blocks", int64(len(req.Blocks)))
	}

	// One explain slot bounds the whole lease — the coordinator controls
	// fan-out by lease count, the worker by its slot budget.
	if err := s.acquireExplainSlot(); err != nil {
		s.writeErrorNeg(w, binResp, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer s.releaseExplainSlot()

	// The run stops when the coordinator hangs up (lease timeout,
	// re-lease, its own death) as well as on server shutdown — an
	// abandoned lease must not keep burning this worker's slot.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(s.ctx, cancel)()

	explainer := core.NewExplainerWithCache(traceModel(ctx, entry.model), cfg, entry.cache)
	results := make([]wire.CorpusResult, 0, len(blocks))
	// Seeds and Index remap the lease's local slice positions onto the
	// original corpus: results (error messages included) come out
	// exactly as the whole-corpus run would have produced them.
	for res := range explainer.ExplainAll(blocks, core.CorpusOptions{
		Workers: req.Workers,
		Context: ctx,
		Seeds:   func(i int) int64 { return req.Blocks[i].Seed },
		Index:   func(i int) int { return req.Blocks[i].Index },
	}) {
		if res.Explanation != nil {
			if res.Explanation.Profile != nil {
				s.metrics.observeExplanation(req.Spec, res.Explanation.Profile.Total.Seconds())
			}
			s.metrics.observeQuality(req.Spec, res.Explanation.Precision,
				res.Explanation.Coverage, res.Explanation.Queries, res.Explanation.Certified)
		}
		results = append(results, wire.FromCorpusResult(res))
	}
	if len(results) < len(blocks) {
		// The run was cut short (shutdown or a vanished coordinator); an
		// incomplete lease is a failed lease.
		s.writeErrorNeg(w, binResp, http.StatusServiceUnavailable, "shard interrupted after %d of %d blocks", len(results), len(blocks))
		return
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })
	s.metrics.shardBlocks.Add(uint64(len(results)))
	failed := 0
	for _, res := range results {
		if res.Error != "" {
			failed++
		}
	}
	// The worker's flight recorder keeps its own record of every lease it
	// executed — after a crash, the worker-side black box tells which
	// leases this process actually ran.
	s.flight.Record(obs.FlightRecord{
		Kind:      obs.FlightLease,
		ID:        req.Lease,
		State:     "executed",
		Spec:      req.Spec,
		LatencyUS: time.Since(leaseStart).Microseconds(),
		Trace:     span.TraceID(),
	})
	s.log.Info("shard lease executed",
		"job_id", req.JobID, "lease", req.Lease, "spec", req.Spec,
		"blocks", len(results), "failed", failed,
		"elapsed", time.Since(leaseStart),
		obs.TraceAttr(span.TraceID()))
	writeNegotiated(w, binResp, http.StatusOK, &wire.ShardResponse{
		JobID:   req.JobID,
		Lease:   req.Lease,
		Results: results,
	})
}

// handleClusterJoin serves POST /v1/cluster/join (coordinator mode
// only): worker self-registration and heartbeats.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return
	}
	var req wire.JoinRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	id, ttl, err := s.coordinator.Pool().Join(req.URL, req.Capacity)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wire.JoinResponse{Worker: id, TTLSeconds: ttl.Seconds()})
}

// handleCluster serves GET /v1/cluster (coordinator mode only): the
// worker pool and lease-scheduler counters.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.coordinator.Status())
}

// clusterGauges renders the comet_cluster_* metrics (coordinator mode
// only).
func (s *Server) clusterGauges() []gauge {
	if s.coordinator == nil {
		return nil
	}
	st := s.coordinator.Status()
	byState := map[string]int{}
	for _, w := range st.Workers {
		byState[w.State]++
	}
	out := []gauge{
		{name: "comet_cluster_leases_dispatched_total", value: float64(st.LeasesDispatched)},
		{name: "comet_cluster_leases_released_total", value: float64(st.LeasesReleased)},
		{name: "comet_cluster_straggler_dispatches_total", value: float64(st.StragglerDispatches)},
		{name: "comet_cluster_worker_deaths_total", value: float64(st.WorkerDeaths)},
		{name: "comet_cluster_blocks_done_total", value: float64(st.BlocksDone)},
		{name: "comet_cluster_shard_errors_total", value: float64(st.ShardErrors)},
	}
	states := make([]string, 0, len(byState))
	for state := range byState {
		states = append(states, state)
	}
	sort.Strings(states)
	for _, state := range states {
		out = append(out, gauge{
			name:   "comet_cluster_workers",
			labels: `state="` + state + `"`,
			value:  float64(byState[state]),
		})
	}
	return out
}

// runCluster executes a corpus job through the cluster scheduler,
// feeding every emitted result into the same bookkeeping and durable
// checkpoints the local engine uses. ctx carries the job's resumed span
// (see jobManager.run); its trace context rides every lease dispatch. It
// returns cluster.ErrNoWorkers when dispatch starved — the caller falls
// back to the local engine for whatever was not emitted.
func (m *jobManager) runCluster(ctx context.Context, j *job) error {
	j.mu.Lock()
	skip := j.restored.Clone()
	arch := ""
	if j.entry != nil && j.entry.model != nil {
		arch = wire.ArchName(j.entry.model.Arch())
	}
	j.mu.Unlock()

	traceparent := ""
	if sc := obs.ContextSpanContext(ctx); !sc.IsZero() {
		traceparent = sc.Traceparent()
	}
	completed := 0
	err := m.cluster.Run(ctx, cluster.Job{
		ID:          j.id,
		Spec:        j.spec,
		Arch:        arch,
		Config:      j.snapshot,
		Blocks:      j.blockTexts(),
		Skip:        skip.Has,
		Workers:     j.workers,
		Traceparent: traceparent,
	}, func(res cluster.Result) {
		j.appendResult(res.CorpusResult, res.Worker)
		m.persistResult(j, res.CorpusResult)
		completed++
		if m.store != nil && completed%m.checkpointEvery == 0 {
			if err := m.store.Sync(); err != nil {
				m.storeErr(err)
			}
		}
	})
	return err
}
