package service

// Telemetry history wiring: which live counters the background sampler
// (obs.History) snapshots each tick, and the GET /debug/history endpoint
// that serves the retained windows — locally, or federated across the
// cluster with ?cluster=1.
//
// Series names are dot-paths grouped by subsystem so clients (comet-top)
// can select by prefix:
//
//	route.<r>.rps            requests per second, plus .rps_2xx/.rps_4xx/.rps_5xx
//	route.<r>.p50_ms/.p99_ms per-tick latency quantiles (gap when idle)
//	hit_rate.*               per-tick cache hit fractions (prediction_cache,
//	                         intern, persist, result_store)
//	queue.*                  explain wait/inflight depth, corpus job queue
//	jobs.running             corpus jobs executing
//	runtime.*                goroutines, heap bytes
//	explain.*                computed and coalesced explanations per second
//	outliers.rps             slow/5xx traces committed per second
//	spec.<spec>.*            per-model-spec explanation rate and per-tick
//	                         mean precision (registered as specs appear)
//
// Every reader is a handful of atomic loads; the sampler's tick cost is
// independent of request volume.

import (
	"net/http"
	"runtime"
	"time"

	"github.com/comet-explain/comet/internal/obs"
)

// registerHistory wires every history series. Called once in New, after
// the mux (and therefore every route's stats slot) is built.
func (s *Server) registerHistory() {
	h := s.history
	for _, rs := range s.metrics.routeList() {
		rs := rs
		prefix := "route." + rs.name
		h.Rate(prefix+".rps", func() float64 { return float64(rs.latency.count.Load()) })
		h.Rate(prefix+".rps_2xx", codeRange(rs, 200, 300))
		h.Rate(prefix+".rps_4xx", codeRange(rs, 400, 500))
		h.Rate(prefix+".rps_5xx", codeRange(rs, 500, 600))
		h.Value(prefix+".p50_ms", quantileSeries(&rs.latency, 0.50))
		h.Value(prefix+".p99_ms", quantileSeries(&rs.latency, 0.99))
	}
	h.Value("hit_rate.prediction_cache", ratioSeries(
		func() uint64 { hits, _ := s.models.cacheTotals(); return hits },
		func() uint64 { hits, misses := s.models.cacheTotals(); return hits + misses },
	))
	h.Value("hit_rate.intern", ratioSeries(
		func() uint64 { return s.metrics.internHits.Load() },
		// Every binary frame request consults the intern table: hits answer
		// from it, misses go on to decode (frameRequests).
		func() uint64 { return s.metrics.internHits.Load() + s.metrics.frameRequests.Load() },
	))
	h.Value("hit_rate.persist", ratioSeries(
		func() uint64 { return s.metrics.persistHits.Load() },
		func() uint64 { return s.metrics.persistHits.Load() + s.metrics.persistMisses.Load() },
	))
	explainRoute := s.metrics.route("explain")
	h.Value("hit_rate.result_store", ratioSeries(
		func() uint64 { return s.metrics.resultStoreHits.Load() },
		func() uint64 { return explainRoute.latency.count.Load() },
	))
	h.Gauge("queue.explain_waiting", func() float64 { return float64(s.explainWaiting.Load()) })
	h.Gauge("queue.explain_inflight", func() float64 { return float64(len(s.explainSlots)) })
	h.Gauge("queue.jobs", func() float64 { return float64(s.jobs.queued.Load()) })
	h.Gauge("jobs.running", func() float64 { return float64(s.jobs.running.Load()) })
	h.Gauge("runtime.goroutines", func() float64 { return float64(runtime.NumGoroutine()) })
	h.Gauge("runtime.heap_bytes", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	h.Rate("explain.computed_rps", func() float64 { return float64(s.metrics.explanations.Load()) })
	h.Rate("explain.coalesced_rps", func() float64 { return float64(s.metrics.coalesced.Load()) })
	h.Rate("outliers.rps", func() float64 { return float64(s.outliers.Written()) })

	// Per-spec quality series appear as specs do: the hook re-offers every
	// known spec each tick, and registration is idempotent (first wins).
	h.BeforeSample = func() {
		s.metrics.specQuality.Range(func(k, v any) bool {
			spec, q := k.(string), v.(*qualityStats)
			h.Rate("spec."+spec+".explanations_rps", func() float64 { return float64(q.count.Load()) })
			h.Value("spec."+spec+".precision_mean", histMeanSeries(&q.precision))
			return true
		})
	}
}

// codeRange returns a reader summing a route's status counters over
// [lo, hi) — the monotonic counter behind a status-class rate series.
func codeRange(rs *routeStats, lo, hi int) func() float64 {
	return func() float64 {
		var n uint64
		for c := lo; c < hi; c++ {
			n += rs.codes[c-100].Load()
		}
		return float64(n)
	}
}

// ratioSeries returns a value reader computing num-delta / den-delta per
// tick — a windowed hit rate over a pair of monotonic counters. Ticks
// with no denominator traffic (and the baseline-priming first tick) are
// gaps, not zeros.
func ratioSeries(num, den func() uint64) func() (float64, bool) {
	var prevNum, prevDen uint64
	first := true
	return func() (float64, bool) {
		n, d := num(), den()
		dn, dd := n-prevNum, d-prevDen
		prevNum, prevDen = n, d
		if first {
			first = false
			return 0, false
		}
		if dd == 0 {
			return 0, false
		}
		return float64(dn) / float64(dd), true
	}
}

// quantileSeries returns a value reader estimating a latency quantile in
// milliseconds over each tick's histogram bucket deltas (the bucket's
// upper bound, the standard conservative estimate). The closure keeps
// its previous snapshot in reused slices, so a tick allocates nothing;
// the sampler goroutine is its only caller. An idle tick is a gap.
func quantileSeries(hist *histogram, q float64) func() (float64, bool) {
	prev := make([]uint64, len(hist.counts))
	cur := make([]uint64, len(hist.counts))
	return func() (float64, bool) {
		var total uint64
		for i := range hist.counts {
			cur[i] = hist.counts[i].Load()
			total += cur[i] - prev[i]
		}
		defer copy(prev, cur)
		if total == 0 {
			return 0, false
		}
		rank := uint64(float64(total) * q)
		if rank >= total {
			rank = total - 1
		}
		var cum uint64
		for i, bound := range hist.bounds {
			cum += cur[i] - prev[i]
			if cum > rank {
				return bound * 1000, true
			}
		}
		// Overflow bucket: everything past the largest bound.
		return hist.bounds[len(hist.bounds)-1] * 1000, true
	}
}

// histMeanSeries returns a value reader computing a histogram's per-tick
// mean (delta sum over delta count) — the windowed average precision of
// explanations computed during the tick.
func histMeanSeries(hist *histogram) func() (float64, bool) {
	var prevCount uint64
	var prevSum float64
	first := true
	return func() (float64, bool) {
		count := hist.count.Load()
		sum := hist.sum()
		dc, ds := count-prevCount, sum-prevSum
		prevCount, prevSum = count, sum
		if first {
			first = false
			return 0, false
		}
		if dc == 0 {
			return 0, false
		}
		return ds / float64(dc), true
	}
}

// handleHistory serves GET /debug/history: every retained telemetry
// series, oldest point first. With ?cluster=1 on a coordinator, the
// response carries one history dump per cluster process (local plus
// every live worker), each labeled; a down worker contributes an error
// entry, never a failed view.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if r.URL.Query().Get("cluster") == "1" && s.coordinator != nil {
		s.serveFederatedHistory(w, r)
		return
	}
	writeJSON(w, http.StatusOK, s.history.Dump(s.cfg.ProcessLabel))
}

// historyProcess is one process's entry in a federated history view.
type historyProcess struct {
	Process string `json:"process"`
	// Error is set when the process could not be queried (down worker,
	// timeout); History is then absent.
	Error   string           `json:"error,omitempty"`
	History *obs.HistoryDump `json:"history,omitempty"`
}

// serveFederatedHistory answers GET /debug/history?cluster=1 on a
// coordinator: the local dump plus a concurrent fan-out to every live
// worker (queried without ?cluster=1, so federation never recurses).
func (s *Server) serveFederatedHistory(w http.ResponseWriter, r *http.Request) {
	local := s.history.Dump(s.cfg.ProcessLabel)
	processes := []historyProcess{{Process: s.cfg.ProcessLabel, History: &local}}
	for _, pr := range s.fanOutWorkers(r.Context(), "/debug/history") {
		p := historyProcess{Process: pr.worker}
		if pr.err != nil {
			p.Error = pr.err.Error()
		} else if pr.found {
			var dump obs.HistoryDump
			if err := decodePeerBody(pr.body, &dump); err != nil {
				p.Error = err.Error()
			} else {
				dump.Process = pr.worker
				p.History = &dump
			}
		}
		processes = append(processes, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cluster":   true,
		"now":       time.Now().UTC(),
		"processes": processes,
	})
}
