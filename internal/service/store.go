package service

import (
	"container/list"
	"sync"
)

// lruStore is a capped, thread-safe LRU map, generic over the key so the
// hot stores key on interned 32-byte content IDs instead of hex strings.
// cometd uses three: the explanation result store (repeat explain queries
// are O(1) map hits, no model work at all — keyed by wire.ContentID), the
// request intern table (binary-path request identity → cached response
// bytes), and the job history (finished corpus jobs survive polling until
// capacity evicts them — keyed by job ID string).
type lruStore[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRUStore[K comparable, V any](capacity int) *lruStore[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruStore[K, V]{cap: capacity, ll: list.New(), m: make(map[K]*list.Element)}
}

// get returns the stored value and refreshes its recency.
func (s *lruStore[K, V]) get(key K) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.ll.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes a value, evicting the least recently used
// entry beyond capacity. It reports the key of the evicted entry, if any.
func (s *lruStore[K, V]) put(key K, val V) (evicted K, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero K
	if el, hit := s.m[key]; hit {
		el.Value.(*lruEntry[K, V]).val = val
		s.ll.MoveToFront(el)
		return zero, false
	}
	s.m[key] = s.ll.PushFront(&lruEntry[K, V]{key: key, val: val})
	if s.ll.Len() <= s.cap {
		return zero, false
	}
	oldest := s.ll.Back()
	s.ll.Remove(oldest)
	e := oldest.Value.(*lruEntry[K, V])
	delete(s.m, e.key)
	return e.key, true
}

// values snapshots the stored values, most recently used first.
func (s *lruStore[K, V]) values() []V {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]V, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[K, V]).val)
	}
	return out
}

// len returns the number of stored entries.
func (s *lruStore[K, V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
