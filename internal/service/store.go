package service

import (
	"container/list"
	"sync"
)

// lruStore is a capped, thread-safe LRU map. cometd uses two: the
// explanation result store (repeat explain queries are O(1) map hits, no
// model work at all) and the job history (finished corpus jobs survive
// polling until capacity evicts them).
type lruStore[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRUStore[V any](capacity int) *lruStore[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruStore[V]{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the stored value and refreshes its recency.
func (s *lruStore[V]) get(key string) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		s.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes a value, evicting the least recently used
// entry beyond capacity. It reports the key of the evicted entry, if any.
func (s *lruStore[V]) put(key string, val V) (evicted string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, hit := s.m[key]; hit {
		el.Value.(*lruEntry[V]).val = val
		s.ll.MoveToFront(el)
		return "", false
	}
	s.m[key] = s.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if s.ll.Len() <= s.cap {
		return "", false
	}
	oldest := s.ll.Back()
	s.ll.Remove(oldest)
	e := oldest.Value.(*lruEntry[V])
	delete(s.m, e.key)
	return e.key, true
}

// values snapshots the stored values, most recently used first.
func (s *lruStore[V]) values() []V {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]V, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry[V]).val)
	}
	return out
}

// len returns the number of stored entries.
func (s *lruStore[V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
