# Fixture binary for the ingestion tests. Regenerate fixture.elf with
# ./regen.sh (requires GNU as + ld); the committed binary is what the
# tests and `make test-e2e` actually ingest, so CI never needs an
# assembler.
#
# The functions are arranged to exercise every extractor code path:
#   _start  two blocks split by the terminating syscall
#   alu     blocks split by a conditional branch and its target label
#   vec     one block with an unsupported instruction (cdqe) skipped
#           mid-block, and an unsupported lea (rip-relative) before a
#           supported tail
#   dup     a duplicate of alu's label block, exercising dedup
#
# No alignment directives: gas would pad with zero bytes, which decode
# as `add byte ptr [rax], al` and pollute the corpus.

	.intel_syntax noprefix
	.text

	.globl _start
	.type _start, @function
_start:
	mov rdi, 1
	mov rsi, 2
	call alu
	mov eax, 60
	xor edi, edi
	syscall

	.type alu, @function
alu:
	mov rax, rdi
	add rax, rsi
	imul rax, rax
	cmp rax, 64
	jle .Lsmall
	sub rax, 64
	shl rax, 2
	ret
.Lsmall:
	add rax, 1
	ret

	.type vec, @function
vec:
	movaps xmm0, [rdi]
	addps xmm0, xmm1
	mulps xmm0, xmm0
	cdqe                    # outside the modeled subset: skipped
	movaps [rdi], xmm0
	addss xmm1, xmm2
	ret

	.type dup, @function
dup:
	add rax, 1              # duplicate of alu's .Lsmall block
	ret

	.type ripuse, @function
ripuse:
	lea rax, [rip + data_sym]   # rip-relative: unsupported, skipped
	mov rbx, 7
	ret

	.data
data_sym:
	.quad 42
