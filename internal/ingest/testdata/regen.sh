#!/bin/sh
# Regenerates fixture.elf from fixture.s. Run from this directory.
# Requires GNU as and ld (any recent binutils). The output is committed
# so CI and tests never need an assembler.
set -eu
cd "$(dirname "$0")"
as --64 -g -o fixture.o fixture.s
ld -o fixture.elf fixture.o
rm -f fixture.o
echo "rebuilt fixture.elf"
