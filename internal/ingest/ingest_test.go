package ingest

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"

	"github.com/comet-explain/comet/internal/x86"
)

const fixturePath = "testdata/fixture.elf"

// fixtureBlocks is the expected corpus of testdata/fixture.elf, in
// extraction order. Regenerating the fixture (testdata/regen.sh) must
// not change it — that is the determinism contract.
var fixtureBlocks = []string{
	"mov rdi, 1\nmov rsi, 2",
	"mov eax, 60\nxor edi, edi",
	"mov rax, rdi\nadd rax, rsi\nimul rax, rax\ncmp rax, 64",
	"sub rax, 64\nshl rax, 2",
	"add rax, 1",
	"movaps xmm0, xmmword ptr [rdi]\naddps xmm0, xmm1\nmulps xmm0, xmm0\nmovaps xmmword ptr [rdi], xmm0\naddss xmm1, xmm2",
	"mov rbx, 7",
}

func TestExtractFixture(t *testing.T) {
	res, err := ExtractFile(fixturePath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Blocks); got != len(fixtureBlocks) {
		t.Fatalf("extracted %d blocks, want %d", got, len(fixtureBlocks))
	}
	for i, want := range fixtureBlocks {
		if res.Blocks[i].Text != want {
			t.Errorf("block %d:\n%s\nwant:\n%s", i, res.Blocks[i].Text, want)
		}
		if err := res.Blocks[i].Block.Validate(); err != nil {
			t.Errorf("block %d does not validate: %v", i, err)
		}
	}

	s := res.Stats
	want := Stats{
		Sections: 1, Functions: 5, Bytes: 97,
		Instructions: 28, Unsupported: 2, Branches: 8,
		Undecodable: 0, Blocks: 7, Deduped: 1,
	}
	if s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}

	// Function attribution from the symbol table.
	funcs := make([]string, len(res.Blocks))
	for i, b := range res.Blocks {
		funcs[i] = b.Func
	}
	wantFuncs := []string{"_start", "_start", "alu", "alu", "alu", "vec", "ripuse"}
	if !reflect.DeepEqual(funcs, wantFuncs) {
		t.Errorf("funcs = %q, want %q", funcs, wantFuncs)
	}

	// Source attribution from DWARF (the fixture is assembled with -g).
	for i, b := range res.Blocks {
		if !strings.HasSuffix(b.File, "fixture.s") || b.Line <= 0 {
			t.Errorf("block %d: missing DWARF attribution (file=%q line=%d)", i, b.File, b.Line)
		}
		if b.Addr == 0 {
			t.Errorf("block %d: zero address", i)
		}
	}
}

// TestExtractDeterministic is the contract the byte-identical
// server/CLI explanation guarantee rests on: extracting the same bytes
// twice yields deeply equal results.
func TestExtractDeterministic(t *testing.T) {
	data, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExtractBytes(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractBytes(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two extractions of the same image differ")
	}
}

// TestWriteCorpusRoundTrip renders the corpus and reparses every block
// through the text frontend, confirming the emitted file is loadable.
func TestWriteCorpusRoundTrip(t *testing.T) {
	res, err := ExtractFile(fixturePath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, res.Blocks); err != nil {
		t.Fatal(err)
	}
	sections := strings.Split(buf.String(), "\n---\n")
	if len(sections) != len(res.Blocks) {
		t.Fatalf("corpus has %d sections, want %d", len(sections), len(res.Blocks))
	}
	for i, sec := range sections {
		bb, err := x86.ParseBlock(sec)
		if err != nil {
			t.Fatalf("section %d does not reparse: %v\n%s", i, err, sec)
		}
		if !bb.Equal(res.Blocks[i].Block) {
			t.Errorf("section %d reparses to a different block", i)
		}
	}
	if !strings.Contains(buf.String(), "# func:alu ") {
		t.Error("corpus lacks provenance comments")
	}
}

func TestExtractMaxBlockLen(t *testing.T) {
	res, err := ExtractFile(fixturePath, Options{MaxBlockLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res.Blocks {
		if n := len(b.Block.Instructions); n > 2 {
			t.Errorf("block %d has %d instructions, limit 2", i, n)
		}
	}
	// The 4-instruction alu block must now split.
	if len(res.Blocks) <= len(fixtureBlocks) {
		t.Errorf("expected more, shorter blocks; got %d", len(res.Blocks))
	}
}

func TestExtractRejectsGarbage(t *testing.T) {
	if _, err := ExtractBytes([]byte("not an elf at all"), Options{}); err == nil {
		t.Error("garbage accepted")
	}
	if IsELF([]byte("not an elf")) {
		t.Error("IsELF accepted garbage")
	}
	data, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if !IsELF(data) {
		t.Error("IsELF rejected the fixture")
	}
}

// TestExtractRegionSplitting exercises the block splitter white-box on
// synthetic code: a backward branch target must open a new block even
// with no branch immediately before it.
func TestExtractRegionSplitting(t *testing.T) {
	// 0: mov eax, 1        B8 01 00 00 00
	// 5: add eax, 2        83 C0 02        <- jumped to from 10
	// 8: sub eax, 3        83 E8 03
	// 11: jne -8 (to 5)    75 F8
	// 13: ret              C3
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00,
		0x83, 0xC0, 0x02,
		0x83, 0xE8, 0x03,
		0x75, 0xF8,
		0xC3,
	}
	var res Result
	res.extractRegion(region{name: "f", addr: 0x1000, code: code}, nil, map[string]int{}, DefaultMaxBlockLen)
	want := []string{
		"mov eax, 1",
		"add eax, 2\nsub eax, 3",
	}
	if len(res.Blocks) != len(want) {
		t.Fatalf("got %d blocks, want %d", len(res.Blocks), len(want))
	}
	for i, w := range want {
		if res.Blocks[i].Text != w {
			t.Errorf("block %d:\n%s\nwant:\n%s", i, res.Blocks[i].Text, w)
		}
	}
	if res.Stats.Branches != 2 {
		t.Errorf("branches = %d, want 2", res.Stats.Branches)
	}
}

// TestExtractRegionUndecodable: a decode error abandons the region
// remainder but keeps what was already collected.
func TestExtractRegionUndecodable(t *testing.T) {
	code := []byte{
		0xB8, 0x01, 0x00, 0x00, 0x00, // mov eax, 1
		0x06,             // invalid in 64-bit mode
		0x90, 0x90, 0x90, // unreachable to the decoder
	}
	var res Result
	res.extractRegion(region{name: "f", addr: 0, code: code}, nil, map[string]int{}, DefaultMaxBlockLen)
	if len(res.Blocks) != 1 || res.Blocks[0].Text != "mov eax, 1" {
		t.Fatalf("blocks = %+v, want the one mov", res.Blocks)
	}
	if res.Stats.Undecodable != 4 {
		t.Errorf("undecodable = %d, want 4", res.Stats.Undecodable)
	}
}
