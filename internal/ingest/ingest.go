// Package ingest extracts basic-block corpora from real binaries.
//
// It walks the executable sections of an ELF file, decodes the machine
// code with internal/x86/decode, attributes bytes to functions via the
// symbol table (and to source lines via DWARF when present), and splits
// the instruction stream into basic blocks at branches, calls and
// branch-target labels. Instructions outside the modeled x86 subset are
// skipped with accounting rather than aborting the block, so real-world
// binaries — which always contain unmodeled instructions — still yield
// a usable corpus.
//
// Extraction is deterministic: the same binary always produces the same
// ordered, deduplicated corpus. Sections are visited in file order,
// functions in ascending address order, and duplicate blocks (by
// canonical text) keep their first occurrence. That determinism is what
// lets server-side and CLI-side ingestion of the same ELF produce
// byte-identical explanations through the content-addressed store.
package ingest

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/comet-explain/comet/internal/x86"
	"github.com/comet-explain/comet/internal/x86/decode"
)

// DefaultMaxBlockLen bounds block length when no limit is configured:
// a block is flushed after this many supported instructions even
// without an intervening branch.
const DefaultMaxBlockLen = 32

// Options configures extraction.
type Options struct {
	// MaxBlockLen flushes a block after this many instructions
	// (0 = DefaultMaxBlockLen).
	MaxBlockLen int
}

// Block is one extracted basic block with provenance.
type Block struct {
	// Block is the parsed basic block.
	Block *x86.BasicBlock
	// Text is the canonical rendering (Block.String()), the dedup key
	// and the corpus payload.
	Text string
	// Func is the symbol the block was extracted from ("" when the
	// binary is stripped).
	Func string
	// File and Line locate the block's first instruction in source,
	// when DWARF line tables are present.
	File string
	Line int
	// Addr is the virtual address of the block's first instruction.
	Addr uint64
}

// Stats accounts for everything the extractor saw.
type Stats struct {
	// Sections is the number of executable sections scanned.
	Sections int
	// Functions is the number of symbol-table function regions walked.
	Functions int
	// Bytes is the total number of code bytes examined.
	Bytes int
	// Instructions is the number of instructions decoded (supported or
	// not), excluding undecodable gaps.
	Instructions int
	// Unsupported counts decoded instructions outside the modeled
	// subset, skipped with accounting.
	Unsupported int
	// Branches counts control-transfer instructions (block splitters).
	Branches int
	// Undecodable is the number of bytes abandoned after a decode error
	// (data in text, overlong padding, truncated tail).
	Undecodable int
	// Blocks is the number of unique blocks emitted.
	Blocks int
	// Deduped counts duplicate blocks dropped in favor of their first
	// occurrence.
	Deduped int
}

// Result is the outcome of extracting one binary.
type Result struct {
	Blocks []Block
	Stats  Stats
}

// region is a contiguous run of code attributed to one function.
type region struct {
	name string
	addr uint64
	code []byte
}

// extractRegion decodes one function region and appends its basic
// blocks. Blocks split at branches (the branch itself is excluded — a
// basic block is the straight-line work between control transfers), at
// intra-region branch targets (labels), and at the MaxBlockLen bound.
func (r *Result) extractRegion(reg region, lines lineTable, seen map[string]int, maxLen int) {
	r.Stats.Bytes += len(reg.code)

	// Pass 1: collect intra-region branch targets so blocks also split
	// where control flow can re-enter.
	labels := make(map[int]bool)
	for off := 0; off < len(reg.code); {
		inst, err := decode.Decode(reg.code[off:])
		if err != nil {
			break
		}
		if inst.RelValid {
			tgt := off + inst.Len + int(inst.RelDisp)
			if tgt >= 0 && tgt < len(reg.code) {
				labels[tgt] = true
			}
		}
		off += inst.Len
	}

	// Pass 2: split into blocks.
	var cur []x86.Instruction
	var curAddr uint64
	flush := func() {
		if len(cur) == 0 {
			return
		}
		bb := &x86.BasicBlock{Instructions: cur}
		cur = nil
		text := bb.String()
		if _, dup := seen[text]; dup {
			r.Stats.Deduped++
			return
		}
		seen[text] = len(r.Blocks)
		b := Block{Block: bb, Text: text, Func: reg.name, Addr: curAddr}
		if e, ok := lines.lookup(curAddr); ok {
			b.File, b.Line = e.file, e.line
		}
		r.Blocks = append(r.Blocks, b)
	}

	for off := 0; off < len(reg.code); {
		if labels[off] {
			flush()
		}
		inst, err := decode.Decode(reg.code[off:])
		if err != nil {
			// Out of sync (data in text, or a truncated tail): flush
			// what we have and abandon the region remainder.
			r.Stats.Undecodable += len(reg.code) - off
			break
		}
		r.Stats.Instructions++
		switch {
		case inst.Branch:
			r.Stats.Branches++
			flush()
		case !inst.Supported:
			r.Stats.Unsupported++
		default:
			if len(cur) == 0 {
				curAddr = reg.addr + uint64(off)
			}
			cur = append(cur, inst.X86)
			if len(cur) >= maxLen {
				flush()
			}
		}
		off += inst.Len
	}
	flush()
}

// lineEntry maps a code address to a source position.
type lineEntry struct {
	addr uint64
	file string
	line int
}

// lineTable is a sorted address → source-line mapping.
type lineTable []lineEntry

// lookup returns the line entry covering addr.
func (t lineTable) lookup(addr uint64) (lineEntry, bool) {
	i := sort.Search(len(t), func(i int) bool { return t[i].addr > addr })
	if i == 0 {
		return lineEntry{}, false
	}
	return t[i-1], true
}

// WriteCorpus writes blocks in the repository's corpus format: blocks
// separated by "---" lines, each preceded by a provenance comment
// (`# func:<sym> <file>:<line>`) that loaders treat as a comment.
func WriteCorpus(w io.Writer, blocks []Block) error {
	for i, b := range blocks {
		if i > 0 {
			if _, err := io.WriteString(w, "---\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, provenanceComment(b)); err != nil {
			return err
		}
		if _, err := io.WriteString(w, b.Text+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func provenanceComment(b Block) string {
	var sb strings.Builder
	sb.WriteString("# ")
	if b.Func != "" {
		fmt.Fprintf(&sb, "func:%s ", b.Func)
	}
	if b.File != "" {
		fmt.Fprintf(&sb, "%s:%d ", b.File, b.Line)
	}
	fmt.Fprintf(&sb, "addr:%#x\n", b.Addr)
	return sb.String()
}

// String summarizes the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("sections=%d functions=%d bytes=%d instructions=%d unsupported=%d branches=%d undecodable=%d blocks=%d deduped=%d",
		s.Sections, s.Functions, s.Bytes, s.Instructions, s.Unsupported, s.Branches, s.Undecodable, s.Blocks, s.Deduped)
}
