package ingest

import (
	"bytes"
	"debug/dwarf"
	"debug/elf"
	"fmt"
	"io"
	"os"
	"sort"
)

// elfMagic is the ELF identification prefix.
var elfMagic = []byte{0x7F, 'E', 'L', 'F'}

// IsELF reports whether data starts with the ELF magic.
func IsELF(data []byte) bool { return bytes.HasPrefix(data, elfMagic) }

// ExtractFile extracts a corpus from the ELF binary at path.
func ExtractFile(path string, opts Options) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := Extract(f, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// ExtractBytes extracts a corpus from an in-memory ELF image.
func ExtractBytes(data []byte, opts Options) (*Result, error) {
	return Extract(bytes.NewReader(data), opts)
}

// Extract extracts a corpus from an ELF image. Only x86-64 binaries are
// accepted: the decoder is specific to that architecture.
func Extract(r io.ReaderAt, opts Options) (*Result, error) {
	f, err := elf.NewFile(r)
	if err != nil {
		return nil, fmt.Errorf("ingest: not a valid ELF: %w", err)
	}
	defer f.Close()
	if f.Machine != elf.EM_X86_64 {
		return nil, fmt.Errorf("ingest: unsupported machine %v (need EM_X86_64)", f.Machine)
	}

	maxLen := opts.MaxBlockLen
	if maxLen <= 0 {
		maxLen = DefaultMaxBlockLen
	}

	funcs := functionSymbols(f)
	lines := lineEntries(f)

	res := &Result{}
	seen := make(map[string]int)
	for _, sec := range f.Sections {
		if sec.Type != elf.SHT_PROGBITS || sec.Flags&elf.SHF_EXECINSTR == 0 {
			continue
		}
		code, err := sec.Data()
		if err != nil {
			return nil, fmt.Errorf("ingest: section %s: %w", sec.Name, err)
		}
		res.Stats.Sections++
		regions := sectionRegions(sec, code, funcs)
		res.Stats.Functions += len(regions)
		for _, reg := range regions {
			res.extractRegion(reg, lines, seen, maxLen)
		}
	}
	res.Stats.Blocks = len(res.Blocks)
	return res, nil
}

// funcSym is a function symbol with its address range start.
type funcSym struct {
	name string
	addr uint64
	size uint64
}

// functionSymbols returns the binary's STT_FUNC symbols sorted by
// address. An empty result (stripped binary) makes each executable
// section one region.
func functionSymbols(f *elf.File) []funcSym {
	syms, err := f.Symbols()
	if err != nil {
		return nil
	}
	var funcs []funcSym
	for _, s := range syms {
		if elf.ST_TYPE(s.Info) != elf.STT_FUNC || s.Name == "" {
			continue
		}
		funcs = append(funcs, funcSym{name: s.Name, addr: s.Value, size: s.Size})
	}
	sort.Slice(funcs, func(i, j int) bool {
		if funcs[i].addr != funcs[j].addr {
			return funcs[i].addr < funcs[j].addr
		}
		return funcs[i].name < funcs[j].name
	})
	return funcs
}

// sectionRegions splits a section's code into function-attributed
// regions. A function extends to the next function's start (symbol
// sizes are advisory and often zero in hand-written assembly), and
// bytes before the first symbol form an unnamed region.
func sectionRegions(sec *elf.Section, code []byte, funcs []funcSym) []region {
	lo, hi := sec.Addr, sec.Addr+uint64(len(code))
	var inSec []funcSym
	for _, fs := range funcs {
		if fs.addr >= lo && fs.addr < hi {
			inSec = append(inSec, fs)
		}
	}
	if len(inSec) == 0 {
		return []region{{name: "", addr: lo, code: code}}
	}
	var regs []region
	if first := inSec[0].addr; first > lo {
		regs = append(regs, region{name: "", addr: lo, code: code[:first-lo]})
	}
	for i, fs := range inSec {
		end := hi
		if i+1 < len(inSec) {
			end = inSec[i+1].addr
		}
		regs = append(regs, region{name: fs.name, addr: fs.addr, code: code[fs.addr-lo : end-lo]})
	}
	return regs
}

// lineEntries builds the sorted DWARF address → line mapping, or an
// empty table when debug info is absent or unreadable.
func lineEntries(f *elf.File) lineTable {
	d, err := f.DWARF()
	if err != nil {
		return nil
	}
	var table lineTable
	dr := d.Reader()
	for {
		ent, err := dr.Next()
		if err != nil || ent == nil {
			break
		}
		if ent.Tag != dwarf.TagCompileUnit {
			continue
		}
		lr, err := d.LineReader(ent)
		if err != nil || lr == nil {
			continue
		}
		var le dwarf.LineEntry
		for lr.Next(&le) == nil {
			if le.EndSequence || le.File == nil {
				continue
			}
			table = append(table, lineEntry{addr: le.Address, file: le.File.Name, line: le.Line})
		}
	}
	sort.Slice(table, func(i, j int) bool { return table[i].addr < table[j].addr })
	return table
}
