package mca

import (
	"math"
	"testing"

	"github.com/comet-explain/comet/internal/hwsim"
	"github.com/comet-explain/comet/internal/stats"
	"github.com/comet-explain/comet/internal/x86"
)

func predict(t *testing.T, src string) float64 {
	t.Helper()
	b, err := x86.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	return New(x86.Haswell).Predict(b)
}

func TestFrontendBound(t *testing.T) {
	got := predict(t, `add rax, 1
		add rbx, 1
		add rcx, 1
		add rdx, 1
		add rsi, 1
		add rdi, 1
		add r8, 1
		add r9, 1`)
	if math.Abs(got-2.0) > 0.01 {
		t.Errorf("8 independent adds = %.2f, want 2 (8 uops / width 4)", got)
	}
}

func TestChainBound(t *testing.T) {
	got := predict(t, "imul rax, rbx\nimul rax, rcx\nimul rax, rdx")
	if got < 8.5 || got > 9.5 {
		t.Errorf("imul chain = %.2f, want ≈9", got)
	}
}

func TestDivDominates(t *testing.T) {
	withDiv := predict(t, "div rcx\nadd rax, rbx")
	without := predict(t, "mov rdx, rcx\nadd rax, rbx")
	if !(withDiv > 5*without) {
		t.Errorf("div should dominate: %.2f vs %.2f", withDiv, without)
	}
}

func TestStorePressure(t *testing.T) {
	got := predict(t, `mov qword ptr [rdi], rax
		mov qword ptr [rsi + 8], rbx
		mov qword ptr [rdx + 16], rcx`)
	if math.Abs(got-3.0) > 0.2 {
		t.Errorf("3 stores = %.2f, want ≈3 (store-data port)", got)
	}
}

func TestHigherErrorThanSimulator(t *testing.T) {
	// The paper's observation (§1): static-analysis models err more than a
	// careful simulator. Measure both against the hardware stand-in.
	blocks := []string{
		"add rcx, rax\nmov rdx, rcx\npop rbx",
		"mov rax, qword ptr [rbx]\nimul rax, rcx\nmov qword ptr [rbx], rax",
		"div rcx\nadd rax, rbx\nxor rdx, rdx",
		"vaddss xmm0, xmm1, xmm2\nvmulss xmm3, xmm0, xmm0",
		"lea rdx, [rax + 1]\nmov qword ptr [rdi + 24], rdx\nmov byte ptr [rax], 80",
		"imul rax, rbx\nimul rax, rcx\nadd rsi, rdi\nshl r8, 2",
	}
	hw := hwsim.New(hwsim.HardwareConfig(x86.Haswell))
	approx := hwsim.New(hwsim.ApproxConfig(x86.Haswell))
	static := New(x86.Haswell)
	var hwVals, simVals, mcaVals []float64
	for _, src := range blocks {
		b := x86.MustParseBlock(src)
		hwVals = append(hwVals, hw.Throughput(b))
		simVals = append(simVals, approx.Throughput(b))
		mcaVals = append(mcaVals, static.Predict(b))
	}
	simErr := stats.MAPE(simVals, hwVals)
	mcaErr := stats.MAPE(mcaVals, hwVals)
	if !(mcaErr >= simErr) {
		t.Errorf("static analyzer (%.1f%%) should err at least as much as the simulator (%.1f%%)", mcaErr, simErr)
	}
}

func TestPredictionsFiniteAndPositive(t *testing.T) {
	blocks := []string{
		"nop", "push rbp", "pop rbp", "cqo",
		"mov byte ptr [rax], 80",
		"vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0",
	}
	m := New(x86.Skylake)
	for _, src := range blocks {
		b := x86.MustParseBlock(src)
		got := m.Predict(b)
		if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
			t.Errorf("%q: predicted %v", src, got)
		}
	}
}

func TestInvalidBlockInf(t *testing.T) {
	m := New(x86.Haswell)
	if got := m.Predict(&x86.BasicBlock{}); !math.IsInf(got, 1) {
		t.Errorf("empty block = %v, want +Inf", got)
	}
}

func TestInterface(t *testing.T) {
	m := New(x86.Haswell)
	if m.Name() != "mca" || m.Arch() != x86.Haswell {
		t.Errorf("metadata wrong: %q %v", m.Name(), m.Arch())
	}
}
