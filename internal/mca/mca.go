// Package mca implements a static-analysis cost model in the style of
// LLVM-MCA / IACA / OSACA — the third traditional model family the paper
// discusses (§1). Instead of simulating execution cycle by cycle, it
// computes closed-form resource bounds from the instruction stream:
//
//	throughput = max( uops / issue width,
//	                  per-port pressure,
//	                  loop-carried dependency-chain latency )
//
// with port pressure distributed fractionally across eligible ports (the
// optimistic assumption real static analyzers make). The paper notes such
// models "often have a high error in their predictions" relative to
// simulators like uiCA — a property this implementation reproduces, which
// makes it a useful third subject for COMET's comparative explanations.
package mca

import (
	"math"

	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/x86"
)

// Model is the static-analysis throughput model.
type Model struct {
	arch   x86.Arch
	params x86.ArchParams
}

var (
	_ costmodel.Model      = (*Model)(nil)
	_ costmodel.BatchModel = (*Model)(nil)
)

// New builds the static analyzer for a microarchitecture.
func New(arch x86.Arch) *Model {
	return &Model{arch: arch, params: x86.Params(arch)}
}

// Name implements costmodel.Model.
func (m *Model) Name() string { return "mca" }

// Arch implements costmodel.Model.
func (m *Model) Arch() x86.Arch { return m.arch }

// Predict implements costmodel.Model. Invalid blocks yield +Inf.
func (m *Model) Predict(b *x86.BasicBlock) float64 {
	if b == nil || b.Len() == 0 {
		return math.Inf(1)
	}
	uops := 0
	pressure := make([]float64, m.params.NumPorts)
	for _, inst := range b.Instructions {
		spec, ok := inst.Spec()
		if !ok {
			return math.Inf(1)
		}
		perf := x86.PerfOf(m.arch, inst)
		loads, stores := x86.MemUops(spec, inst)
		hasCompute := true
		switch spec.Class {
		case x86.ClassMov, x86.ClassVecMov, x86.ClassPush, x86.ClassPop:
			if loads+stores > 0 {
				hasCompute = false
			}
		}
		if hasCompute {
			uops++
			occ := 1.0
			if perf.Unpipelined {
				occ = math.Ceil(perf.RThru)
			}
			spread(pressure, perf.Ports, occ)
		}
		for l := 0; l < loads; l++ {
			uops++
			spread(pressure, m.params.LoadPorts, 1)
		}
		for s := 0; s < stores; s++ {
			uops += 2
			spread(pressure, m.params.StoreDataPts, 1)
			spread(pressure, m.params.StoreAddrPts, 1)
		}
	}

	bound := float64(uops) / float64(m.params.IssueWidth)
	for _, p := range pressure {
		if p > bound {
			bound = p
		}
	}
	if chain := m.chainBound(b); chain > bound {
		bound = chain
	}
	return bound
}

// PredictBatch implements costmodel.BatchModel by parallel fan-out; the
// analysis is closed-form and stateless.
func (m *Model) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	return costmodel.FanOut(blocks, 0, m.Predict)
}

// spread divides occupancy evenly across the eligible ports — static
// analyzers assume an ideal scheduler.
func spread(pressure []float64, ports x86.PortSet, occupancy float64) {
	n := ports.Count()
	if n == 0 {
		return
	}
	share := occupancy / float64(n)
	for p := 0; p < len(pressure); p++ {
		if ports.Contains(p) {
			pressure[p] += share
		}
	}
}

// chainBound computes the longest loop-carried dependency cycle by
// unrolling the block twice and taking the longest path that crosses the
// iteration boundary, using per-instruction latencies. This is the static
// analogue of the simulator's dependency pacing; it ignores load latency
// unless the chain goes through memory, like llvm-mca's default.
func (m *Model) chainBound(b *x86.BasicBlock) float64 {
	g, err := deps.Build(b, deps.Options{LastWriterOnly: true})
	if err != nil {
		return 0
	}
	lat := make([]float64, b.Len())
	for i, inst := range b.Instructions {
		p := x86.PerfOf(m.arch, inst)
		lat[i] = float64(p.Lat)
		spec, _ := inst.Spec()
		if loads, _ := x86.MemUops(spec, inst); loads > 0 {
			lat[i] += float64(m.params.LoadLat)
		}
	}
	// Longest path over two unrolled iterations, RAW edges only (true
	// dependencies).
	n := b.Len()
	dist := make([]float64, 2*n)
	for i := 0; i < 2*n; i++ {
		dist[i] = lat[i%n]
	}
	relax := func(src, dst int) {
		if d := dist[src] + lat[dst%n]; d > dist[dst] {
			dist[dst] = d
		}
	}
	for iter := 0; iter < 2; iter++ {
		for _, e := range g.Edges {
			if e.Hazard != deps.RAW {
				continue
			}
			src, dst := e.Src+iter*n, e.Dst+iter*n
			relax(src, dst)
		}
		if iter == 0 {
			// Cross-iteration edges: a write in iteration 0 feeding a read
			// at the same or earlier position in iteration 1.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if crossDep(g, b, i, j) {
						relax(i, j+n)
					}
				}
			}
		}
	}
	best := 0.0
	for i := n; i < 2*n; i++ {
		if gain := dist[i] - dist[i%n]; gain > best {
			best = gain
		}
	}
	return best
}

// crossDep reports whether instruction i's writes feed instruction j's
// reads across the loop back-edge.
func crossDep(g *deps.Graph, b *x86.BasicBlock, i, j int) bool {
	wi, err1 := deps.AccessOf(b.Instructions[i], deps.Options{})
	rj, err2 := deps.AccessOf(b.Instructions[j], deps.Options{})
	if err1 != nil || err2 != nil {
		return false
	}
	for _, w := range wi.Writes {
		for _, r := range rj.Reads {
			if w == r {
				// Only a loop-carried dependency if no later write in the
				// same iteration kills it before the back edge... static
				// analyzers approximate; we require i to be the last
				// writer of the location.
				if lastWriter(b, w) == i {
					return true
				}
			}
		}
	}
	return false
}

func lastWriter(b *x86.BasicBlock, loc deps.Loc) int {
	last := -1
	for i := range b.Instructions {
		acc, err := deps.AccessOf(b.Instructions[i], deps.Options{})
		if err != nil {
			continue
		}
		for _, w := range acc.Writes {
			if w == loc {
				last = i
			}
		}
	}
	return last
}
