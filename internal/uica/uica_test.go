package uica

import (
	"testing"

	"github.com/comet-explain/comet/internal/hwsim"
	"github.com/comet-explain/comet/internal/stats"
	"github.com/comet-explain/comet/internal/x86"
)

func TestUICAIsAccurateButNotPerfect(t *testing.T) {
	// uiCA's defining property (its MAPE is ~1% on real hardware): the
	// surrogate should be within a few percent of the hardware-grade
	// simulator on average, but not identical everywhere.
	hw := hwsim.New(hwsim.HardwareConfig(x86.Haswell))
	m := New(x86.Haswell)

	blocks := []string{
		"add rcx, rax\nmov rdx, rcx\npop rbx",
		"imul rax, rbx\nimul rax, rcx\nimul rax, rdx",
		"mov qword ptr [rdi], rax\nmov qword ptr [rsi + 8], rbx",
		"mov rax, qword ptr [rbx]\nadd rax, rcx\nmov qword ptr [rbx], rax",
		"div rcx\nadd rax, rbx",
		"vaddss xmm0, xmm1, xmm2\nvmulss xmm3, xmm0, xmm0\nvdivss xmm4, xmm3, xmm1",
		"shl eax, 3\nadd rbx, rax\nxor rcx, rcx\nlea rdx, [rbx + 8]",
	}
	var preds, actuals []float64
	different := false
	for _, src := range blocks {
		b := x86.MustParseBlock(src)
		h, p := hw.Throughput(b), m.Predict(b)
		preds = append(preds, p)
		actuals = append(actuals, h)
		if h != p {
			different = true
		}
	}
	mape := stats.MAPE(preds, actuals)
	if mape > 15 {
		t.Errorf("uiCA surrogate MAPE %.1f%% too high — it must be a low-error model", mape)
	}
	if !different {
		t.Error("surrogate identical to hardware everywhere; it must have residual error")
	}
}

func TestUICAInterface(t *testing.T) {
	m := New(x86.Skylake)
	if m.Name() != "uica" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Arch() != x86.Skylake {
		t.Errorf("Arch = %v", m.Arch())
	}
	b := x86.MustParseBlock("add rax, rbx")
	if p := m.Predict(b); p <= 0 {
		t.Errorf("Predict = %v", p)
	}
}

func TestUICADeterministic(t *testing.T) {
	m := New(x86.Haswell)
	b := x86.MustParseBlock("imul rax, rbx\nadd rcx, rax")
	if m.Predict(b) != m.Predict(b) {
		t.Error("prediction must be deterministic")
	}
}
