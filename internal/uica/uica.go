// Package uica provides the reproduction's stand-in for uiCA (Abel &
// Reineke 2022), the accurate hand-engineered simulation-based throughput
// model the paper compares Ithemal against.
//
// The real uiCA is a detailed Python model of Intel frontends; here the
// surrogate is the shared pipeline simulator run at a deliberately
// coarsened fidelity (hwsim.ApproxConfig): store-address port pressure is
// ignored, load latency is one cycle optimistic, and divides are slightly
// cheap. This preserves uiCA's defining property for the paper's
// experiments — a *low-error* (but not perfect) simulation-based model that
// COMET treats as a black box — with its residual error concentrated on
// store- and divide-bound blocks, just as real analytical models deviate
// from silicon on microarchitectural corner cases.
package uica

import (
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/hwsim"
	"github.com/comet-explain/comet/internal/x86"
)

// Model is the uiCA-like simulation-based cost model.
type Model struct {
	sim *hwsim.Simulator
}

var (
	_ costmodel.Model      = (*Model)(nil)
	_ costmodel.BatchModel = (*Model)(nil)
)

// New builds the uiCA surrogate for a microarchitecture.
func New(arch x86.Arch) *Model {
	return &Model{sim: hwsim.New(hwsim.ApproxConfig(arch))}
}

// Name implements costmodel.Model.
func (m *Model) Name() string { return "uica" }

// Arch implements costmodel.Model.
func (m *Model) Arch() x86.Arch { return m.sim.Arch() }

// Predict implements costmodel.Model.
func (m *Model) Predict(b *x86.BasicBlock) float64 { return m.sim.Throughput(b) }

// PredictBatch implements costmodel.BatchModel by fanning the stateless
// simulation out across GOMAXPROCS goroutines.
func (m *Model) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	return costmodel.FanOut(blocks, 0, m.Predict)
}
