package x86

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBlock parses an Intel-syntax basic block, one instruction per line.
// Blank lines, leading "N:" line numbers, and ";"- or "#"-prefixed comments
// are ignored. The parsed block is validated against the instruction table.
func ParseBlock(src string) (*BasicBlock, error) {
	var insts []Instruction
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		inst, err := ParseInstruction(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		insts = append(insts, inst)
	}
	b := NewBlock(insts...)
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// MustParseBlock is ParseBlock that panics on error, for tests and examples
// with literal blocks.
func MustParseBlock(src string) *BasicBlock {
	b, err := ParseBlock(src)
	if err != nil {
		panic(err)
	}
	return b
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		return line[:i]
	}
	return line
}

// ParseInstruction parses a single Intel-syntax instruction such as
// "mov qword ptr [rdi + 24], rdx". An optional leading "N:" label
// (as used in the paper's listings) is skipped.
func ParseInstruction(line string) (Instruction, error) {
	line = strings.TrimSpace(line)
	// Skip a leading "3:"-style line number.
	if i := strings.IndexByte(line, ':'); i > 0 {
		if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
			line = strings.TrimSpace(line[i+1:])
		}
	}
	if line == "" {
		return Instruction{}, fmt.Errorf("x86: empty instruction")
	}
	opcode := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		opcode, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	opcode = strings.ToLower(opcode)
	spec, ok := Lookup(opcode)
	if !ok {
		return Instruction{}, fmt.Errorf("x86: unknown opcode %q", opcode)
	}

	var ops []Operand
	if rest != "" {
		for _, field := range splitOperands(rest) {
			op, err := parseOperand(field, opcode == "lea")
			if err != nil {
				return Instruction{}, fmt.Errorf("x86: %q: %w", line, err)
			}
			ops = append(ops, op)
		}
	}
	_ = spec // existence already checked; full form validation happens in Validate
	return Instruction{Opcode: opcode, Operands: ops}, nil
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	var fields []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				fields = append(fields, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	fields = append(fields, strings.TrimSpace(s[start:]))
	return fields
}

func parseOperand(s string, isLea bool) (Operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}

	// Register?
	if r, ok := LookupReg(s); ok {
		return NewReg(r), nil
	}

	// Memory with explicit width qualifier ("qword ptr [..]" or "qword [..]")?
	lower := strings.ToLower(s)
	for q, size := range qualifierSize {
		if !strings.HasPrefix(lower, q+" ") {
			continue
		}
		rest := strings.TrimSpace(s[len(q):])
		if restLower := strings.ToLower(rest); strings.HasPrefix(restLower, "ptr") {
			rest = strings.TrimSpace(rest[3:])
		}
		m, err := parseMemRef(rest)
		if err != nil {
			return Operand{}, err
		}
		return NewMem(m, size), nil
	}

	// Bare bracketed expression: address operand for lea, otherwise an
	// unsized memory operand (rejected — our subset requires widths).
	if strings.HasPrefix(s, "[") {
		m, err := parseMemRef(s)
		if err != nil {
			return Operand{}, err
		}
		if isLea {
			return NewAddr(m), nil
		}
		return Operand{}, fmt.Errorf("memory operand %q needs a size qualifier (e.g. \"qword ptr\")", s)
	}

	// Immediate.
	v, err := parseInt(s)
	if err != nil {
		return Operand{}, fmt.Errorf("cannot parse operand %q", s)
	}
	return NewImm(v, immWidth(v)), nil
}

func parseMemRef(s string) (MemRef, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return MemRef{}, fmt.Errorf("malformed memory reference %q", s)
	}
	inner := s[1 : len(s)-1]
	var m MemRef
	for _, term := range splitTerms(inner) {
		t := strings.TrimSpace(term.text)
		if t == "" {
			return MemRef{}, fmt.Errorf("malformed memory reference %q", s)
		}
		// reg*scale or scale*reg
		if i := strings.IndexByte(t, '*'); i >= 0 {
			a, b := strings.TrimSpace(t[:i]), strings.TrimSpace(t[i+1:])
			reg, regOK := LookupReg(a)
			scale, scaleErr := parseInt(b)
			if !regOK {
				reg, regOK = LookupReg(b)
				scale, scaleErr = parseInt(a)
			}
			if !regOK || scaleErr != nil {
				return MemRef{}, fmt.Errorf("malformed scaled index %q", t)
			}
			if term.neg {
				return MemRef{}, fmt.Errorf("negative index term %q", t)
			}
			if scale != 1 && scale != 2 && scale != 4 && scale != 8 {
				return MemRef{}, fmt.Errorf("invalid scale %d in %q", scale, t)
			}
			if !m.Index.IsZero() {
				return MemRef{}, fmt.Errorf("multiple index registers in %q", s)
			}
			m.Index, m.Scale = reg, int(scale)
			continue
		}
		if reg, ok := LookupReg(t); ok {
			if term.neg {
				return MemRef{}, fmt.Errorf("negative register term %q", t)
			}
			switch {
			case m.Base.IsZero():
				m.Base = reg
			case m.Index.IsZero():
				m.Index, m.Scale = reg, 1
			default:
				return MemRef{}, fmt.Errorf("too many registers in %q", s)
			}
			continue
		}
		v, err := parseInt(t)
		if err != nil {
			return MemRef{}, fmt.Errorf("malformed address term %q", t)
		}
		if term.neg {
			v = -v
		}
		m.Disp += v
	}
	return m, nil
}

type addrTerm struct {
	text string
	neg  bool
}

// splitTerms splits "rbp + rax*4 - 1" into signed terms.
func splitTerms(s string) []addrTerm {
	var terms []addrTerm
	start, neg := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '+', '-':
			if t := strings.TrimSpace(s[start:i]); t != "" {
				terms = append(terms, addrTerm{t, neg})
			}
			neg = s[i] == '-'
			start = i + 1
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		terms = append(terms, addrTerm{t, neg})
	}
	return terms
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case strings.HasSuffix(s, "h") && len(s) > 1:
		v, err = strconv.ParseUint(s[:len(s)-1], 16, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	out := int64(v)
	if neg {
		out = -out
	}
	return out, nil
}

// immWidth returns the narrowest operand width that can hold v.
func immWidth(v int64) int {
	switch {
	case v >= -128 && v <= 127:
		return Size8
	case v >= -32768 && v <= 32767:
		return Size16
	case v >= -(1<<31) && v < 1<<31:
		return Size32
	default:
		return Size64
	}
}
