package x86

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterNames(t *testing.T) {
	cases := []struct {
		name string
		fam  RegFamily
		size int
	}{
		{"rax", FamRAX, Size64},
		{"eax", FamRAX, Size32},
		{"ax", FamRAX, Size16},
		{"al", FamRAX, Size8},
		{"r8d", FamR8, Size32},
		{"r15b", FamR15, Size8},
		{"sil", FamRSI, Size8},
		{"xmm0", FamXMM0, Size128},
		{"ymm15", FamXMM15, Size256},
	}
	for _, c := range cases {
		r, ok := LookupReg(c.name)
		if !ok {
			t.Fatalf("LookupReg(%q) failed", c.name)
		}
		if r.Family != c.fam || r.Size != c.size {
			t.Errorf("LookupReg(%q) = %v/%d, want %v/%d", c.name, r.Family, r.Size, c.fam, c.size)
		}
		if r.String() != c.name {
			t.Errorf("Reg.String() = %q, want %q", r.String(), c.name)
		}
	}
}

func TestLookupRegUnknown(t *testing.T) {
	for _, name := range []string{"rfoo", "xmm16", "ymm16", "", "ah"} {
		if _, ok := LookupReg(name); ok {
			t.Errorf("LookupReg(%q) unexpectedly succeeded", name)
		}
	}
}

func TestLookupRegCaseInsensitive(t *testing.T) {
	r, ok := LookupReg("RAX")
	if !ok || r.Family != FamRAX {
		t.Fatalf("LookupReg(RAX) = %v, %v", r, ok)
	}
}

func TestParsePaperMotivatingExample(t *testing.T) {
	b, err := ParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 3 {
		t.Fatalf("got %d instructions, want 3", b.Len())
	}
	if b.Instructions[0].Opcode != "add" || b.Instructions[2].Opcode != "pop" {
		t.Errorf("unexpected opcodes: %v", b)
	}
}

func TestParseCaseStudy1(t *testing.T) {
	src := `
		lea rdx, [rax + 1]
		mov qword ptr [rdi + 24], rdx
		mov byte ptr [rax], 80
		mov rsi, qword ptr [r14 + 32]
		mov rdi, rbp`
	b, err := ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 5 {
		t.Fatalf("got %d instructions, want 5", b.Len())
	}
	lea := b.Instructions[0]
	if lea.Operands[1].Kind != KindAddr {
		t.Errorf("lea source should parse as KindAddr, got %v", lea.Operands[1].Kind)
	}
	store := b.Instructions[1]
	if store.Operands[0].Kind != KindMem || store.Operands[0].Size != Size64 {
		t.Errorf("store dst = %+v, want qword mem", store.Operands[0])
	}
	if store.Operands[0].Mem.Disp != 24 {
		t.Errorf("disp = %d, want 24", store.Operands[0].Mem.Disp)
	}
	byteStore := b.Instructions[2]
	if byteStore.Operands[0].Size != Size8 || byteStore.Operands[1].Imm != 80 {
		t.Errorf("byte store parsed wrong: %+v", byteStore)
	}
}

func TestParseCaseStudy2(t *testing.T) {
	src := `
		mov ecx, edx
		xor edx, edx
		lea rax, [rcx + rax - 1]
		div rcx
		mov rdx, rcx
		imul rax, rcx`
	b, err := ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	lea := b.Instructions[2]
	m := lea.Operands[1].Mem
	if m.Base.Family != FamRCX || m.Index.Family != FamRAX || m.Disp != -1 {
		t.Errorf("lea address parsed wrong: %+v", m)
	}
}

func TestParseAppendixFBlocks(t *testing.T) {
	beta1 := `
		vdivss xmm0, xmm0, xmm6
		vmulss xmm7, xmm0, xmm0
		vxorps xmm0, xmm0, xmm5
		vaddss xmm7, xmm7, xmm3
		vmulss xmm6, xmm6, xmm7
		vdivss xmm6, xmm3, xmm6
		vmulss xmm0, xmm6, xmm0`
	if _, err := ParseBlock(beta1); err != nil {
		t.Errorf("beta1: %v", err)
	}
	beta2 := `
		shl eax, 3
		imul rax, r15
		xor edx, edx
		add rax, 7
		shr rax, 3
		lea rax, [rbp + rax - 1]
		div rbp
		imul rax, rbp
		mov rbp, qword ptr [rsp + 8]
		sub rbp, rax`
	if _, err := ParseBlock(beta2); err != nil {
		t.Errorf("beta2: %v", err)
	}
}

func TestParseScaledIndex(t *testing.T) {
	inst, err := ParseInstruction("mov rax, qword ptr [rbx + rcx*8 + 16]")
	if err != nil {
		t.Fatal(err)
	}
	m := inst.Operands[1].Mem
	if m.Base.Family != FamRBX || m.Index.Family != FamRCX || m.Scale != 8 || m.Disp != 16 {
		t.Errorf("parsed %+v", m)
	}
}

func TestParseNumberedLines(t *testing.T) {
	b, err := ParseBlock("1: add rcx, rax\n2: mov rdx, rcx")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("got %d instructions", b.Len())
	}
}

func TestParseComments(t *testing.T) {
	b, err := ParseBlock("add rcx, rax ; RAW with next\nmov rdx, rcx # comment")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("got %d instructions", b.Len())
	}
}

func TestParseHexImmediate(t *testing.T) {
	inst, err := ParseInstruction("add rax, 0x10")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Operands[1].Imm != 16 {
		t.Errorf("imm = %d, want 16", inst.Operands[1].Imm)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus rax, rbx",                       // unknown opcode
		"mov rax",                              // missing operand
		"mov rax, ebx",                         // size mismatch
		"add qword ptr [rax], qword ptr [rbx]", // two memory operands
		"mov [rax], rbx",                       // unsized memory operand
		"jmp rax",                              // control flow excluded by design
		"shl rax, rbx",                         // shift count must be imm8 or cl
		"mov rax, qword ptr [rbx + rcx*3]",     // invalid scale
	}
	for _, src := range bad {
		if _, err := ParseBlock(src); err == nil {
			t.Errorf("ParseBlock(%q) unexpectedly succeeded", src)
		}
	}
}

func TestShiftByCL(t *testing.T) {
	if _, err := ParseBlock("shl rax, cl"); err != nil {
		t.Errorf("shl rax, cl should be valid: %v", err)
	}
	if _, err := ParseBlock("shl rax, dl"); err == nil {
		t.Error("shl rax, dl should be invalid")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"add rcx, rax",
		"mov qword ptr [rdi + 24], rdx",
		"mov byte ptr [rax], 80",
		"lea rax, [rcx + rax - 1]",
		"lea rdx, [rax + 1]",
		"vdivss xmm0, xmm0, xmm6",
		"vaddps ymm1, ymm2, ymm3",
		"movups xmm3, xmmword ptr [rsi]",
		"push rbp",
		"div rcx",
		"shl eax, 3",
		"mov rax, qword ptr [rbx + rcx*8 + 16]",
		"mov rax, qword ptr [rbx + rcx*8 - 5]",
		"nop",
		"cqo",
	}
	for _, src := range srcs {
		inst, err := ParseInstruction(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := inst.String()
		again, err := ParseInstruction(printed)
		if err != nil {
			t.Fatalf("reparse %q (printed from %q): %v", printed, src, err)
		}
		if printed != again.String() {
			t.Errorf("round trip unstable: %q -> %q", printed, again.String())
		}
	}
}

func TestValidateBlock(t *testing.T) {
	b := MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &BasicBlock{}
	if err := empty.Validate(); err == nil {
		t.Error("empty block should not validate")
	}
}

func TestFormAccess(t *testing.T) {
	inst, _ := ParseInstruction("add rcx, rax")
	f, err := inst.Form()
	if err != nil {
		t.Fatal(err)
	}
	if f.Ops[0].Access != AccRW || f.Ops[1].Access != AccR {
		t.Errorf("add access = %v/%v, want RW/R", f.Ops[0].Access, f.Ops[1].Access)
	}
	inst, _ = ParseInstruction("mov rcx, rax")
	f, _ = inst.Form()
	if f.Ops[0].Access != AccW {
		t.Errorf("mov dst access = %v, want W", f.Ops[0].Access)
	}
	inst, _ = ParseInstruction("cmp rcx, rax")
	f, _ = inst.Form()
	if f.Ops[0].Access != AccR {
		t.Errorf("cmp dst access = %v, want R", f.Ops[0].Access)
	}
}

func TestReplacementCandidatesLeaHasNone(t *testing.T) {
	inst, _ := ParseInstruction("lea rdx, [rax + 1]")
	if cands := ReplacementCandidates(inst); len(cands) != 0 {
		t.Errorf("lea should have no replacements (Appendix D), got %v", cands)
	}
}

func TestReplacementCandidatesALU(t *testing.T) {
	inst, _ := ParseInstruction("add rcx, rax")
	cands := ReplacementCandidates(inst)
	want := map[string]bool{"sub": true, "mov": true, "xor": true, "cmp": true}
	found := map[string]bool{}
	for _, c := range cands {
		if c == "add" {
			t.Error("candidates must exclude the original opcode")
		}
		found[c] = true
	}
	for w := range want {
		if !found[w] {
			t.Errorf("expected %q among candidates for add rcx, rax; got %v", w, cands)
		}
	}
	// lea must not appear: its operand kind is distinct.
	if found["lea"] {
		t.Error("lea must not be a candidate for reg,reg operands")
	}
}

func TestReplacementCandidatesRespectOperandKinds(t *testing.T) {
	inst, _ := ParseInstruction("div rcx")
	cands := ReplacementCandidates(inst)
	found := map[string]bool{}
	for _, c := range cands {
		found[c] = true
	}
	for _, want := range []string{"mul", "idiv", "inc", "neg", "push"} {
		if !found[want] {
			t.Errorf("expected %q among unary candidates, got %v", want, cands)
		}
	}
	if found["add"] {
		t.Error("two-operand add cannot replace unary div")
	}
}

func TestReplacementCandidatesVector(t *testing.T) {
	inst, _ := ParseInstruction("vdivss xmm0, xmm0, xmm6")
	cands := ReplacementCandidates(inst)
	found := map[string]bool{}
	for _, c := range cands {
		found[c] = true
	}
	for _, want := range []string{"vaddss", "vmulss", "vsubss"} {
		if !found[want] {
			t.Errorf("expected %q among AVX scalar candidates, got %v", want, cands)
		}
	}
	if found["addss"] {
		t.Error("two-operand addss cannot replace three-operand vdivss")
	}
}

func TestReplacementProducesValidInstruction(t *testing.T) {
	srcs := []string{
		"add rcx, rax", "mov rdx, rcx", "div rcx", "vmulss xmm7, xmm0, xmm0",
		"mov qword ptr [rdi + 24], rdx", "shl eax, 3", "push rbp",
	}
	for _, src := range srcs {
		inst, _ := ParseInstruction(src)
		for _, cand := range ReplacementCandidates(inst) {
			repl := Instruction{Opcode: cand, Operands: inst.Operands}
			if err := repl.Validate(); err != nil {
				t.Errorf("replacement %q of %q invalid: %v", cand, src, err)
			}
		}
	}
}

func TestMemRefLocKey(t *testing.T) {
	a, _ := ParseInstruction("mov rax, qword ptr [rbx + 8]")
	b, _ := ParseInstruction("mov ecx, dword ptr [rbx + 8]")
	c, _ := ParseInstruction("mov rax, qword ptr [rbx + 16]")
	if a.Operands[1].Mem.LocKey() != b.Operands[1].Mem.LocKey() {
		t.Error("same address at different widths should share a location key")
	}
	if a.Operands[1].Mem.LocKey() == c.Operands[1].Mem.LocKey() {
		t.Error("different displacements must have different location keys")
	}
}

func TestPerfOrdering(t *testing.T) {
	for _, arch := range Arches() {
		div, _ := ParseInstruction("div rcx")
		imul, _ := ParseInstruction("imul rax, rcx")
		addI, _ := ParseInstruction("add rax, rcx")
		movI, _ := ParseInstruction("mov rax, rcx")
		vdiv, _ := ParseInstruction("vdivss xmm0, xmm1, xmm2")
		vmul, _ := ParseInstruction("vmulss xmm0, xmm1, xmm2")

		if !(InstThroughput(arch, div) > InstThroughput(arch, imul)) {
			t.Errorf("%v: div should out-cost imul", arch)
		}
		if !(InstThroughput(arch, imul) > InstThroughput(arch, addI)) {
			t.Errorf("%v: imul should out-cost add", arch)
		}
		if InstThroughput(arch, addI) != InstThroughput(arch, movI) {
			t.Errorf("%v: add and mov reciprocal throughputs should match", arch)
		}
		if !(InstThroughput(arch, vdiv) > InstThroughput(arch, vmul)) {
			t.Errorf("%v: vdivss should out-cost vmulss", arch)
		}
		if !(PerfOf(arch, div).Lat > PerfOf(arch, imul).Lat) {
			t.Errorf("%v: div latency should exceed imul latency", arch)
		}
	}
}

func TestSkylakeFasterDivide(t *testing.T) {
	div, _ := ParseInstruction("div rcx")
	if !(InstThroughput(Skylake, div) < InstThroughput(Haswell, div)) {
		t.Error("Skylake divide should be faster than Haswell (as on real parts)")
	}
}

func TestStoreThroughput(t *testing.T) {
	store, _ := ParseInstruction("mov qword ptr [rdi], rdx")
	load, _ := ParseInstruction("mov rdx, qword ptr [rdi]")
	regmov, _ := ParseInstruction("mov rdx, rdi")
	if !(InstThroughput(Haswell, store) > InstThroughput(Haswell, regmov)) {
		t.Error("stores should out-cost register moves")
	}
	if !(InstThroughput(Haswell, load) > InstThroughput(Haswell, regmov)) {
		t.Error("loads should out-cost register moves")
	}
}

func TestMemAccessCounts(t *testing.T) {
	cases := []struct {
		src           string
		loads, stores int
	}{
		{"mov rax, qword ptr [rbx]", 1, 0},
		{"mov qword ptr [rbx], rax", 0, 1},
		{"add qword ptr [rbx], rax", 1, 1},
		{"push rbp", 0, 1},
		{"pop rbp", 1, 0},
		{"lea rax, [rbx + 8]", 0, 0},
		{"add rax, rbx", 0, 0},
	}
	for _, c := range cases {
		inst, err := ParseInstruction(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		spec, _ := inst.Spec()
		loads, stores := memAccessCounts(spec, inst)
		if loads != c.loads || stores != c.stores {
			t.Errorf("%q: loads/stores = %d/%d, want %d/%d", c.src, loads, stores, c.loads, c.stores)
		}
	}
}

func TestOpcodesTableConsistency(t *testing.T) {
	names := Opcodes()
	if len(names) < 60 {
		t.Fatalf("expected a rich opcode table, got %d opcodes", len(names))
	}
	for _, name := range names {
		spec, ok := Lookup(name)
		if !ok || spec.Name != name {
			t.Errorf("Lookup(%q) inconsistent", name)
		}
		if len(spec.Forms) == 0 {
			t.Errorf("%q has no forms", name)
		}
	}
	for _, banned := range []string{"jmp", "call", "ret", "je", "jne", "loop"} {
		if _, ok := Lookup(banned); ok {
			t.Errorf("control-flow opcode %q must not be in the basic-block table", banned)
		}
	}
}

// randomValidInstruction builds a random but guaranteed-valid instruction
// for property tests.
func randomValidInstruction(rng *rand.Rand) Instruction {
	gpr := func(size int) Operand {
		fams := GPFamilies()
		return NewReg(Reg{Family: fams[rng.Intn(len(fams))], Size: size})
	}
	xmm := func() Operand {
		fams := VecFamilies()
		return NewReg(Reg{Family: fams[rng.Intn(len(fams))], Size: Size128})
	}
	mem := func(size int) Operand {
		fams := GPFamilies()
		m := MemRef{Base: Reg{Family: fams[rng.Intn(len(fams))], Size: Size64}, Disp: int64(rng.Intn(64)) * 8}
		return NewMem(m, size)
	}
	size := []int{Size32, Size64}[rng.Intn(2)]
	switch rng.Intn(8) {
	case 0:
		return Instruction{Opcode: "add", Operands: []Operand{gpr(size), gpr(size)}}
	case 1:
		return Instruction{Opcode: "mov", Operands: []Operand{gpr(size), mem(size)}}
	case 2:
		return Instruction{Opcode: "mov", Operands: []Operand{mem(size), gpr(size)}}
	case 3:
		return Instruction{Opcode: "imul", Operands: []Operand{gpr(size), gpr(size)}}
	case 4:
		return Instruction{Opcode: "mulss", Operands: []Operand{xmm(), xmm()}}
	case 5:
		return Instruction{Opcode: "vaddss", Operands: []Operand{xmm(), xmm(), xmm()}}
	case 6:
		return Instruction{Opcode: "push", Operands: []Operand{gpr(Size64)}}
	default:
		return Instruction{Opcode: "xor", Operands: []Operand{gpr(size), NewImm(int64(rng.Intn(100)), Size8)}}
	}
}

func TestPropertyRoundTripRandomInstructions(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomValidInstruction(rng)
		if err := inst.Validate(); err != nil {
			t.Logf("invalid generated instruction %v: %v", inst, err)
			return false
		}
		printed := inst.String()
		again, err := ParseInstruction(printed)
		if err != nil {
			t.Logf("reparse %q: %v", printed, err)
			return false
		}
		return again.String() == printed
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyReplacementsAlwaysValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomValidInstruction(rng)
		for _, cand := range ReplacementCandidates(inst) {
			repl := Instruction{Opcode: cand, Operands: inst.Operands}
			if repl.Validate() != nil {
				t.Logf("invalid replacement %v for %v", repl, inst)
				return false
			}
			if strings.EqualFold(cand, inst.Opcode) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPortSet(t *testing.T) {
	s := Port(0, 1, 5, 6)
	if s.Count() != 4 || !s.Contains(5) || s.Contains(4) {
		t.Errorf("PortSet misbehaves: %b", s)
	}
}

func TestBlockCloneIndependent(t *testing.T) {
	b := MustParseBlock("add rcx, rax\nmov rdx, rcx")
	c := b.Clone()
	c.Instructions[0].Opcode = "sub"
	if b.Instructions[0].Opcode != "add" {
		t.Error("Clone must not share instruction storage")
	}
	if !b.Equal(b.Clone()) {
		t.Error("block should equal its clone")
	}
	if b.Equal(c) {
		t.Error("modified clone should differ")
	}
}
