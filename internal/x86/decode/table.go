package decode

// This file holds the decoder's data tables.
//
// The attribute tables drive LENGTH decoding: for every opcode in the
// one-byte, 0F, 0F38 and 0F3A maps they record whether a ModRM byte
// follows and which immediate class trails the operands. Keeping these
// total (every byte classified, with aInvalid for reserved slots) is
// what lets the decoder stay byte-synchronized across instructions it
// does not model.
//
// The SSE/VEX/FMA tables drive SEMANTIC decoding for the vector subset:
// they map (opcode, mandatory-prefix) pairs to a mnemonic plus an
// operand shape. Entries may name instructions the spec table lacks
// (sqrtps, vmovupd, ...) — those still decode length-correct and are
// downgraded to Supported == false by the final spec-table validation,
// so adding an entry here is always safe.
//
// To extend the modeled subset: add the opcode's Spec to
// internal/x86/spec.go first, then add (or just rely on) the semantic
// entry here; the round-trip test and fuzz target pick the new opcode
// up automatically.

// attr is a bitset of opcode attributes.
type attr uint16

const (
	aModRM   attr = 1 << iota // ModRM byte (and possible SIB/disp) follows
	aImm8                     // trailing imm8
	aImm16                    // trailing imm16 (ret imm16; with aImm8: enter)
	aImmZ                     // imm16 under 66h, else imm32
	aImmV                     // imm16/imm32/imm64 by effective operand size
	aRel8                     // 8-bit branch displacement
	aRel32                    // 32-bit branch displacement
	aMoffs                    // 64-bit (or 32-bit under 67h) absolute moffs
	aGrp3                     // F6/F7: immediate only for /0 and /1 (test)
	aInvalid                  // reserved encoding in 64-bit mode
)

// oneByteAttr classifies the one-byte opcode map. Prefix bytes
// (26/2E/36/3E/64-67/F0/F2/F3, 40-4F) and the 0F/C4/C5/62 escapes are
// consumed before this table is consulted; their slots are unreachable.
var oneByteAttr [256]attr

// twoByteAttr classifies the 0F map.
var twoByteAttr [256]attr

func init() {
	ob := &oneByteAttr
	// The eight ALU rows: op r/m,r | r,r/m | al,imm8 | rAX,immz.
	for g := byte(0); g < 8; g++ {
		base := g << 3
		for i := byte(0); i < 4; i++ {
			ob[base+i] = aModRM
		}
		ob[base+4] = aImm8
		ob[base+5] = aImmZ
	}
	// 64-bit-mode invalid slots (old push/pop seg, BCD, far forms).
	for _, b := range []byte{0x06, 0x07, 0x0E, 0x16, 0x17, 0x1E, 0x1F,
		0x27, 0x2F, 0x37, 0x3F, 0x60, 0x61, 0x82, 0x9A,
		0xCE, 0xD4, 0xD5, 0xD6, 0xEA} {
		ob[b] = aInvalid
	}
	// 50-5F push/pop: no operands beyond the opcode byte.
	ob[0x63] = aModRM // movsxd
	ob[0x68] = aImmZ  // push immz
	ob[0x69] = aModRM | aImmZ
	ob[0x6A] = aImm8 // push imm8
	ob[0x6B] = aModRM | aImm8
	for b := 0x70; b <= 0x7F; b++ { // jcc rel8
		ob[b] = aRel8
	}
	ob[0x80] = aModRM | aImm8
	ob[0x81] = aModRM | aImmZ
	ob[0x83] = aModRM | aImm8
	for b := 0x84; b <= 0x8F; b++ { // test/xchg/mov/lea/pop
		ob[b] = aModRM
	}
	for b := 0xA0; b <= 0xA3; b++ { // mov moffs forms
		ob[b] = aMoffs
	}
	ob[0xA8] = aImm8                // test al, imm8
	ob[0xA9] = aImmZ                // test rAX, immz
	for b := 0xB0; b <= 0xB7; b++ { // mov r8, imm8
		ob[b] = aImm8
	}
	for b := 0xB8; b <= 0xBF; b++ { // mov r, immv (the sole imm64 form)
		ob[b] = aImmV
	}
	ob[0xC0] = aModRM | aImm8
	ob[0xC1] = aModRM | aImm8
	ob[0xC2] = aImm16 // ret imm16
	ob[0xC6] = aModRM | aImm8
	ob[0xC7] = aModRM | aImmZ
	ob[0xC8] = aImm16 | aImm8       // enter imm16, imm8
	ob[0xCA] = aImm16               // retf imm16
	ob[0xCD] = aImm8                // int imm8
	for b := 0xD0; b <= 0xD3; b++ { // shift groups
		ob[b] = aModRM
	}
	for b := 0xD8; b <= 0xDF; b++ { // x87 escape range
		ob[b] = aModRM
	}
	for b := 0xE0; b <= 0xE3; b++ { // loop/jrcxz rel8
		ob[b] = aRel8
	}
	ob[0xE4] = aImm8 // in/out imm8 port forms
	ob[0xE5] = aImm8
	ob[0xE6] = aImm8
	ob[0xE7] = aImm8
	ob[0xE8] = aRel32 // call rel32
	ob[0xE9] = aRel32 // jmp rel32
	ob[0xEB] = aRel8  // jmp rel8
	ob[0xF6] = aModRM | aGrp3
	ob[0xF7] = aModRM | aGrp3
	ob[0xFE] = aModRM
	ob[0xFF] = aModRM

	tb := &twoByteAttr
	// Most of the 0F map carries a ModRM byte; start from that and carve
	// out the exceptions.
	for b := 0; b < 256; b++ {
		tb[b] = aModRM
	}
	// No operands at all.
	for _, b := range []byte{0x05, 0x06, 0x07, 0x08, 0x09, 0x0B,
		0x30, 0x31, 0x32, 0x33, 0x34, 0x35, 0x77,
		0xA0, 0xA1, 0xA2, 0xA8, 0xA9, 0xAA} {
		tb[b] = 0
	}
	for b := 0xC8; b <= 0xCF; b++ { // bswap
		tb[b] = 0
	}
	// ModRM plus imm8.
	for _, b := range []byte{0x70, 0x71, 0x72, 0x73, // pshuf*/shift groups
		0xA4, 0xAC, // shld/shrd imm8
		0xBA,                     // group 8 bt imm8
		0xC2, 0xC4, 0xC5, 0xC6} { // cmpps/pinsrw/pextrw/shufps
		tb[b] = aModRM | aImm8
	}
	for b := 0x80; b <= 0x8F; b++ { // jcc rel32
		tb[b] = aRel32
	}
	// Reserved slots.
	for _, b := range []byte{0x04, 0x0A, 0x0C, 0x0E, 0x0F,
		0x24, 0x25, 0x26, 0x27, 0x36, 0x39, 0x3B, 0x3D} {
		tb[b] = aInvalid
	}
}

// attrFor returns the attributes of opcode b in map esc (0 = one-byte,
// 1 = 0F, 2 = 0F38, 3 = 0F3A).
func attrFor(esc, b byte) attr {
	switch esc {
	case 0:
		return oneByteAttr[b]
	case 1:
		return twoByteAttr[b]
	case 2:
		return aModRM // the whole 0F38 map is ModRM, no immediate
	default:
		return aModRM | aImm8 // the whole 0F3A map is ModRM + imm8
	}
}

// ---- SSE semantic tables ----------------------------------------------------

// sseKind is the operand shape of a legacy-SSE table entry.
type sseKind int

const (
	kRM128    sseKind = iota // xmm ← xmm/m128
	kRM32                    // xmm ← xmm/m32  (scalar single)
	kRM64                    // xmm ← xmm/m64  (scalar double)
	kStore128                // xmm/m128 ← xmm
	kStore32                 // xmm/m32 ← xmm
	kStore64                 // xmm/m64 ← xmm
	kGP2X                    // xmm ← r/m32 or r/m64 (cvtsi2ss/sd)
	kX2GP32                  // r32/64 ← xmm/m32 (cvttss2si)
	kX2GP64                  // r32/64 ← xmm/m64 (cvttsd2si)
)

type sseEntry struct {
	name string
	kind sseKind
}

// sseKey packs an opcode with its mandatory-prefix class (0 none,
// 1 = 66, 2 = F3, 3 = F2).
func sseKey(op, pp byte) uint16 { return uint16(op)<<2 | uint16(pp) }

// sseTable covers the 0F-map vector subset. pp0 rows with a 66-prefixed
// sibling are the MMX forms and are intentionally absent.
var sseTable = map[uint16]sseEntry{
	sseKey(0x10, 0): {"movups", kRM128},
	sseKey(0x10, 1): {"movupd", kRM128},
	sseKey(0x10, 2): {"movss", kRM32},
	sseKey(0x10, 3): {"movsd", kRM64},
	sseKey(0x11, 0): {"movups", kStore128},
	sseKey(0x11, 1): {"movupd", kStore128},
	sseKey(0x11, 2): {"movss", kStore32},
	sseKey(0x11, 3): {"movsd", kStore64},
	sseKey(0x12, 2): {"movsldup", kRM128},
	sseKey(0x14, 0): {"unpcklps", kRM128},
	sseKey(0x14, 1): {"unpcklpd", kRM128},
	sseKey(0x15, 0): {"unpckhps", kRM128},
	sseKey(0x15, 1): {"unpckhpd", kRM128},
	sseKey(0x16, 2): {"movshdup", kRM128},
	sseKey(0x28, 0): {"movaps", kRM128},
	sseKey(0x28, 1): {"movapd", kRM128},
	sseKey(0x29, 0): {"movaps", kStore128},
	sseKey(0x29, 1): {"movapd", kStore128},
	sseKey(0x2A, 2): {"cvtsi2ss", kGP2X},
	sseKey(0x2A, 3): {"cvtsi2sd", kGP2X},
	sseKey(0x2C, 2): {"cvttss2si", kX2GP32},
	sseKey(0x2C, 3): {"cvttsd2si", kX2GP64},
	sseKey(0x2E, 0): {"ucomiss", kRM32},
	sseKey(0x2E, 1): {"ucomisd", kRM64},
	sseKey(0x51, 0): {"sqrtps", kRM128},
	sseKey(0x51, 1): {"sqrtpd", kRM128},
	sseKey(0x51, 2): {"sqrtss", kRM32},
	sseKey(0x51, 3): {"sqrtsd", kRM64},
	sseKey(0x52, 2): {"rsqrtss", kRM32},
	sseKey(0x53, 2): {"rcpss", kRM32},
	sseKey(0x54, 0): {"andps", kRM128},
	sseKey(0x54, 1): {"andpd", kRM128},
	sseKey(0x55, 0): {"andnps", kRM128},
	sseKey(0x55, 1): {"andnpd", kRM128},
	sseKey(0x56, 0): {"orps", kRM128},
	sseKey(0x56, 1): {"orpd", kRM128},
	sseKey(0x57, 0): {"xorps", kRM128},
	sseKey(0x57, 1): {"xorpd", kRM128},
	sseKey(0x58, 0): {"addps", kRM128},
	sseKey(0x58, 1): {"addpd", kRM128},
	sseKey(0x58, 2): {"addss", kRM32},
	sseKey(0x58, 3): {"addsd", kRM64},
	sseKey(0x59, 0): {"mulps", kRM128},
	sseKey(0x59, 1): {"mulpd", kRM128},
	sseKey(0x59, 2): {"mulss", kRM32},
	sseKey(0x59, 3): {"mulsd", kRM64},
	sseKey(0x5C, 0): {"subps", kRM128},
	sseKey(0x5C, 1): {"subpd", kRM128},
	sseKey(0x5C, 2): {"subss", kRM32},
	sseKey(0x5C, 3): {"subsd", kRM64},
	sseKey(0x5D, 0): {"minps", kRM128},
	sseKey(0x5D, 1): {"minpd", kRM128},
	sseKey(0x5D, 2): {"minss", kRM32},
	sseKey(0x5D, 3): {"minsd", kRM64},
	sseKey(0x5E, 0): {"divps", kRM128},
	sseKey(0x5E, 1): {"divpd", kRM128},
	sseKey(0x5E, 2): {"divss", kRM32},
	sseKey(0x5E, 3): {"divsd", kRM64},
	sseKey(0x5F, 0): {"maxps", kRM128},
	sseKey(0x5F, 1): {"maxpd", kRM128},
	sseKey(0x5F, 2): {"maxss", kRM32},
	sseKey(0x5F, 3): {"maxsd", kRM64},
	sseKey(0x60, 1): {"punpcklbw", kRM128},
	sseKey(0x62, 1): {"punpckldq", kRM128},
	sseKey(0x64, 1): {"pcmpgtb", kRM128},
	sseKey(0x65, 1): {"pcmpgtw", kRM128},
	sseKey(0x66, 1): {"pcmpgtd", kRM128},
	sseKey(0x67, 1): {"packuswb", kRM128},
	sseKey(0x68, 1): {"punpckhbw", kRM128},
	sseKey(0x6A, 1): {"punpckhdq", kRM128},
	sseKey(0x6B, 1): {"packssdw", kRM128},
	sseKey(0x6F, 1): {"movdqa", kRM128},
	sseKey(0x6F, 2): {"movdqu", kRM128},
	sseKey(0x74, 1): {"pcmpeqb", kRM128},
	sseKey(0x75, 1): {"pcmpeqw", kRM128},
	sseKey(0x76, 1): {"pcmpeqd", kRM128},
	sseKey(0x7C, 1): {"haddpd", kRM128},
	sseKey(0x7C, 3): {"haddps", kRM128},
	sseKey(0x7D, 1): {"hsubpd", kRM128},
	sseKey(0x7D, 3): {"hsubps", kRM128},
	sseKey(0x7F, 1): {"movdqa", kStore128},
	sseKey(0x7F, 2): {"movdqu", kStore128},
	sseKey(0xD0, 1): {"addsubpd", kRM128},
	sseKey(0xD0, 3): {"addsubps", kRM128},
	sseKey(0xD4, 1): {"paddq", kRM128},
	sseKey(0xD5, 1): {"pmullw", kRM128},
	sseKey(0xDA, 1): {"pminub", kRM128},
	sseKey(0xDB, 1): {"pand", kRM128},
	sseKey(0xDE, 1): {"pmaxub", kRM128},
	sseKey(0xDF, 1): {"pandn", kRM128},
	sseKey(0xE0, 1): {"pavgb", kRM128},
	sseKey(0xE3, 1): {"pavgw", kRM128},
	sseKey(0xEB, 1): {"por", kRM128},
	sseKey(0xEF, 1): {"pxor", kRM128},
	sseKey(0xF4, 1): {"pmuludq", kRM128},
	sseKey(0xF8, 1): {"psubb", kRM128},
	sseKey(0xF9, 1): {"psubw", kRM128},
	sseKey(0xFA, 1): {"psubd", kRM128},
	sseKey(0xFB, 1): {"psubq", kRM128},
	sseKey(0xFC, 1): {"paddb", kRM128},
	sseKey(0xFD, 1): {"paddw", kRM128},
	sseKey(0xFE, 1): {"paddd", kRM128},
}

// sse38Table covers the modeled 0F38-map subset.
var sse38Table = map[uint16]sseEntry{
	sseKey(0x39, 1): {"pminsd", kRM128},
	sseKey(0x3D, 1): {"pmaxsd", kRM128},
	sseKey(0x40, 1): {"pmulld", kRM128},
}

// ---- VEX semantic tables ----------------------------------------------------

// vexKind is the operand shape of a VEX-encoded table entry.
type vexKind int

const (
	vMovLoad  vexKind = iota // v ← v/m, vvvv unused
	vMovStore                // v/m ← v, vvvv unused
	vScalar32                // xmm ← xmm(vvvv), xmm/m32
	vScalar64                // xmm ← xmm(vvvv), xmm/m64
	vPacked                  // v ← v(vvvv), v/m (width by VEX.L)
)

type vexEntry struct {
	name   string
	kind   vexKind
	vexMap byte // required escape map: 1 = 0F, 2 = 0F38
}

// vexTable covers the VEX-encoded subset, keyed like sseTable; the
// entry's vexMap must also match.
var vexTable = map[uint16]vexEntry{
	sseKey(0x10, 0): {"vmovups", vMovLoad, 1},
	sseKey(0x10, 1): {"vmovupd", vMovLoad, 1},
	sseKey(0x11, 0): {"vmovups", vMovStore, 1},
	sseKey(0x11, 1): {"vmovupd", vMovStore, 1},
	sseKey(0x14, 0): {"vunpcklps", vPacked, 1},
	sseKey(0x15, 0): {"vunpckhps", vPacked, 1},
	sseKey(0x28, 0): {"vmovaps", vMovLoad, 1},
	sseKey(0x28, 1): {"vmovapd", vMovLoad, 1},
	sseKey(0x29, 0): {"vmovaps", vMovStore, 1},
	sseKey(0x29, 1): {"vmovapd", vMovStore, 1},
	sseKey(0x51, 2): {"vsqrtss", vScalar32, 1},
	sseKey(0x51, 3): {"vsqrtsd", vScalar64, 1},
	sseKey(0x54, 0): {"vandps", vPacked, 1},
	sseKey(0x55, 0): {"vandnps", vPacked, 1},
	sseKey(0x56, 0): {"vorps", vPacked, 1},
	sseKey(0x57, 0): {"vxorps", vPacked, 1},
	sseKey(0x58, 0): {"vaddps", vPacked, 1},
	sseKey(0x58, 1): {"vaddpd", vPacked, 1},
	sseKey(0x58, 2): {"vaddss", vScalar32, 1},
	sseKey(0x58, 3): {"vaddsd", vScalar64, 1},
	sseKey(0x59, 0): {"vmulps", vPacked, 1},
	sseKey(0x59, 1): {"vmulpd", vPacked, 1},
	sseKey(0x59, 2): {"vmulss", vScalar32, 1},
	sseKey(0x59, 3): {"vmulsd", vScalar64, 1},
	sseKey(0x5C, 0): {"vsubps", vPacked, 1},
	sseKey(0x5C, 1): {"vsubpd", vPacked, 1},
	sseKey(0x5C, 2): {"vsubss", vScalar32, 1},
	sseKey(0x5C, 3): {"vsubsd", vScalar64, 1},
	sseKey(0x5D, 2): {"vminss", vScalar32, 1},
	sseKey(0x5D, 3): {"vminsd", vScalar64, 1},
	sseKey(0x5E, 0): {"vdivps", vPacked, 1},
	sseKey(0x5E, 1): {"vdivpd", vPacked, 1},
	sseKey(0x5E, 2): {"vdivss", vScalar32, 1},
	sseKey(0x5E, 3): {"vdivsd", vScalar64, 1},
	sseKey(0x5F, 2): {"vmaxss", vScalar32, 1},
	sseKey(0x5F, 3): {"vmaxsd", vScalar64, 1},
	sseKey(0x62, 1): {"vpunpckldq", vPacked, 1},
	sseKey(0x6F, 1): {"vmovdqa", vMovLoad, 1},
	sseKey(0x6F, 2): {"vmovdqu", vMovLoad, 1},
	sseKey(0x74, 1): {"vpcmpeqb", vPacked, 1},
	sseKey(0x76, 1): {"vpcmpeqd", vPacked, 1},
	sseKey(0x7C, 3): {"vhaddps", vPacked, 1},
	sseKey(0x7F, 1): {"vmovdqa", vMovStore, 1},
	sseKey(0x7F, 2): {"vmovdqu", vMovStore, 1},
	sseKey(0xD0, 3): {"vaddsubps", vPacked, 1},
	sseKey(0xD4, 1): {"vpaddq", vPacked, 1},
	sseKey(0xDB, 1): {"vpand", vPacked, 1},
	sseKey(0xE0, 1): {"vpavgb", vPacked, 1},
	sseKey(0xEB, 1): {"vpor", vPacked, 1},
	sseKey(0xEF, 1): {"vpxor", vPacked, 1},
	sseKey(0xFA, 1): {"vpsubd", vPacked, 1},
	sseKey(0xFE, 1): {"vpaddd", vPacked, 1},
	sseKey(0x39, 1): {"vpminsd", vPacked, 2},
	sseKey(0x3D, 1): {"vpmaxsd", vPacked, 2},
}

// fmaEntry describes one VEX.66.0F38 FMA opcode: the name prefix plus
// whether it is the scalar (ss/sd by VEX.W) or packed (ps/pd) variant.
type fmaEntry struct {
	base   string
	scalar bool
}

var fmaTable = map[byte]fmaEntry{
	0xA8: {"vfmadd213", false},
	0xA9: {"vfmadd213", true},
	0xAA: {"vfmsub213", false},
	0xAB: {"vfmsub213", true},
	0xAC: {"vfnmadd213", false},
	0xAD: {"vfnmadd213", true},
	0xB8: {"vfmadd231", false},
	0xB9: {"vfmadd231", true},
}
