// Package decode is a length-correct x86-64 machine-code decoder for the
// binary-ingestion pipeline (internal/ingest).
//
// It decodes one instruction at a time from raw bytes: legacy prefixes,
// REX, VEX (2- and 3-byte) and EVEX, ModRM/SIB addressing, displacements
// and immediates. Length decoding covers the full one-byte, 0F, 0F38 and
// 0F3A opcode maps, so the byte stream stays in sync even across
// instructions the explanation engine cannot model; semantic decoding —
// producing an x86.Instruction — covers exactly the opcode subset of the
// internal/x86 Spec table. The spec table is the single arbiter: every
// constructed instruction is validated against it, and anything that does
// not match a form is reported as length-only (Supported == false).
//
// Two invariants matter to callers:
//
//   - Determinism: the same bytes always decode to the same Inst, with no
//     dependence on maps, time, or environment.
//   - Round-trip: for every supported instruction,
//     x86.ParseInstruction(inst.X86.String()) reproduces an equal
//     instruction, locking the machine-code and text frontends together
//     (enforced by TestDecodeParserRoundTrip and FuzzDecodeX86).
package decode

import (
	"errors"
	"fmt"

	"github.com/comet-explain/comet/internal/x86"
)

// MaxInstLen is the architectural limit on one instruction's encoding.
const MaxInstLen = 15

// Decode errors. Errors mean the byte stream could not be kept in sync;
// an instruction that is merely outside the modeled subset is NOT an
// error — it decodes with Supported == false and a correct Len.
var (
	// ErrTruncated means the buffer ended inside an instruction.
	ErrTruncated = errors.New("decode: truncated instruction")
	// ErrInvalid means the bytes do not encode an instruction (reserved
	// opcode, overlong encoding, malformed VEX).
	ErrInvalid = errors.New("decode: invalid instruction")
)

// Inst is one decoded machine instruction.
type Inst struct {
	// Len is the number of bytes the instruction occupies (1..15).
	Len int
	// Mnemonic names the instruction when known, even outside the
	// modeled subset ("cmovle", "ret", ...); empty when the opcode is
	// only length-decoded (x87, EVEX, unhandled SSE slots).
	Mnemonic string
	// X86 is the modeled instruction; valid only when Supported.
	X86 x86.Instruction
	// Supported reports whether X86 is populated and validates against
	// the internal/x86 spec table.
	Supported bool
	// Branch reports a control transfer (jump, call, ret, syscall, ...):
	// the instruction ends a basic block and is never part of one.
	Branch bool
	// RelDisp is the signed displacement of a rel8/rel32 branch, counted
	// from the end of this instruction; valid only when RelValid.
	RelDisp  int64
	RelValid bool
}

// Decode decodes the instruction starting at code[0]. It never panics on
// arbitrary input and reads at most MaxInstLen bytes.
func Decode(code []byte) (Inst, error) {
	var d decoder
	d.code = code
	return d.run()
}

type decoder struct {
	code []byte
	pos  int

	// Legacy prefixes.
	has66 bool
	has67 bool
	rep   byte // 0, 0xF2 or 0xF3
	lock  bool
	seg   bool
	rex   byte // 0x40..0x4F, or 0

	// VEX/EVEX state.
	vex              bool
	evex             bool
	vexL             bool
	vexW             bool
	vexV             byte // decoded second-source register number
	vexR, vexX, vexB bool

	pp  byte // mandatory-prefix class: 0 none, 1 = 66, 2 = F3, 3 = F2
	esc byte // opcode map: 0 one-byte, 1 = 0F, 2 = 0F38, 3 = 0F3A

	opcode byte

	hasModRM bool
	mod      byte
	reg      byte // ModRM.reg, REX/VEX-extended
	rm       byte // ModRM.rm, REX/VEX-extended (register sense)

	mem memArg

	imm     int64
	immBits int
}

// memArg is the raw addressing operand of a ModRM byte.
type memArg struct {
	isReg             bool // mod == 3: rm names a register
	regNum            byte
	hasBase, hasIndex bool
	base, index       byte
	scale             int
	disp              int64
	ripRel            bool
}

func (d *decoder) run() (Inst, error) {
	if err := d.prefixes(); err != nil {
		return Inst{}, err
	}
	if err := d.opcodeAndOperands(); err != nil {
		return Inst{}, err
	}
	if d.pos > MaxInstLen {
		return Inst{}, fmt.Errorf("%w: %d-byte encoding exceeds the %d-byte limit", ErrInvalid, d.pos, MaxInstLen)
	}
	inst := d.semantic()
	inst.Len = d.pos
	return inst, nil
}

func (d *decoder) next() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, ErrTruncated
	}
	b := d.code[d.pos]
	d.pos++
	return b, nil
}

// prefixes consumes legacy and REX prefixes. A legacy prefix after REX
// cancels the REX (as on hardware, where REX must immediately precede
// the opcode).
func (d *decoder) prefixes() error {
	for {
		if d.pos >= len(d.code) {
			return ErrTruncated
		}
		if d.pos >= MaxInstLen {
			return fmt.Errorf("%w: prefix run exceeds the %d-byte limit", ErrInvalid, MaxInstLen)
		}
		switch b := d.code[d.pos]; {
		case b == 0x66:
			d.has66, d.rex = true, 0
		case b == 0x67:
			d.has67, d.rex = true, 0
		case b == 0xF0:
			d.lock, d.rex = true, 0
		case b == 0xF2 || b == 0xF3:
			d.rep, d.rex = b, 0
		case b == 0x26 || b == 0x2E || b == 0x36 || b == 0x3E || b == 0x64 || b == 0x65:
			d.seg, d.rex = true, 0
		case b >= 0x40 && b <= 0x4F:
			d.rex = b
		default:
			return nil
		}
		d.pos++
	}
}

// legacyBeforeVEX reports prefixes that make a following VEX/EVEX byte
// #UD on hardware (66/F2/F3, lock, REX).
func (d *decoder) legacyBeforeVEX() bool {
	return d.has66 || d.rep != 0 || d.lock || d.rex != 0
}

func (d *decoder) opcodeAndOperands() error {
	b, err := d.next()
	if err != nil {
		return err
	}

	switch b {
	case 0xC5: // two-byte VEX
		return d.vex2()
	case 0xC4: // three-byte VEX
		return d.vex3()
	case 0x62: // EVEX (always a prefix in 64-bit mode)
		return d.evexForm()
	}

	// Legacy maps: the mandatory-prefix class comes from the last
	// repeat/operand-size prefix.
	switch {
	case d.rep == 0xF3:
		d.pp = 2
	case d.rep == 0xF2:
		d.pp = 3
	case d.has66:
		d.pp = 1
	}
	if b == 0x0F {
		b2, err := d.next()
		if err != nil {
			return err
		}
		switch b2 {
		case 0x38:
			b3, err := d.next()
			if err != nil {
				return err
			}
			d.esc, b = 2, b3
		case 0x3A:
			b3, err := d.next()
			if err != nil {
				return err
			}
			d.esc, b = 3, b3
		default:
			d.esc, b = 1, b2
		}
	}

	d.opcode = b
	a := attrFor(d.esc, b)
	if a&aInvalid != 0 {
		return fmt.Errorf("%w: opcode %#02x in map %d", ErrInvalid, b, d.esc)
	}
	if a&aModRM != 0 {
		if err := d.modRM(); err != nil {
			return err
		}
	}
	return d.immediates(a)
}

func (d *decoder) vex2() error {
	if d.legacyBeforeVEX() {
		return fmt.Errorf("%w: VEX after 66/F2/F3/lock/REX", ErrInvalid)
	}
	p, err := d.next()
	if err != nil {
		return err
	}
	d.vex = true
	d.vexR = p&0x80 == 0
	d.vexV = ^(p >> 3) & 15
	d.vexL = p&4 != 0
	d.pp = p & 3
	d.esc = 1
	return d.vexTail()
}

func (d *decoder) vex3() error {
	if d.legacyBeforeVEX() {
		return fmt.Errorf("%w: VEX after 66/F2/F3/lock/REX", ErrInvalid)
	}
	p1, err := d.next()
	if err != nil {
		return err
	}
	p2, err := d.next()
	if err != nil {
		return err
	}
	d.vex = true
	d.vexR = p1&0x80 == 0
	d.vexX = p1&0x40 == 0
	d.vexB = p1&0x20 == 0
	d.esc = p1 & 0x1F
	if d.esc < 1 || d.esc > 3 {
		return fmt.Errorf("%w: VEX map %d", ErrInvalid, d.esc)
	}
	d.vexW = p2&0x80 != 0
	d.vexV = ^(p2 >> 3) & 15
	d.vexL = p2&4 != 0
	d.pp = p2 & 3
	return d.vexTail()
}

func (d *decoder) vexTail() error {
	op, err := d.next()
	if err != nil {
		return err
	}
	d.opcode = op
	if d.esc == 1 && op == 0x77 {
		return nil // vzeroupper/vzeroall: no ModRM
	}
	if err := d.modRM(); err != nil {
		return err
	}
	if d.esc == 3 {
		return d.readImm(8)
	}
	return nil
}

// evexForm length-decodes an EVEX-prefixed instruction. EVEX operands
// are never semantically modeled (the subset has no AVX-512), but the
// length must be exact to keep the stream in sync. The compressed disp8
// of EVEX is still one displacement byte, so the shared ModRM machinery
// applies unchanged.
func (d *decoder) evexForm() error {
	if d.legacyBeforeVEX() {
		return fmt.Errorf("%w: EVEX after 66/F2/F3/lock/REX", ErrInvalid)
	}
	p0, err := d.next()
	if err != nil {
		return err
	}
	if _, err := d.next(); err != nil { // P1: pp, W, vvvv
		return err
	}
	if _, err := d.next(); err != nil { // P2: z, L'L, b, V', aaa
		return err
	}
	d.evex = true
	d.esc = p0 & 7
	if d.esc < 1 || d.esc > 3 {
		return fmt.Errorf("%w: EVEX map %d", ErrInvalid, d.esc)
	}
	op, err := d.next()
	if err != nil {
		return err
	}
	d.opcode = op
	if err := d.modRM(); err != nil {
		return err
	}
	if d.esc == 3 {
		return d.readImm(8)
	}
	return nil
}

func (d *decoder) modRM() error {
	m, err := d.next()
	if err != nil {
		return err
	}
	d.hasModRM = true
	d.mod = m >> 6
	regBits := (m >> 3) & 7
	rmBits := m & 7

	var extR, extX, extB byte
	switch {
	case d.vex:
		if d.vexR {
			extR = 8
		}
		if d.vexX {
			extX = 8
		}
		if d.vexB {
			extB = 8
		}
	case d.evex:
		// Extensions ignored: EVEX is length-decoded only.
	default:
		if d.rex&4 != 0 {
			extR = 8
		}
		if d.rex&2 != 0 {
			extX = 8
		}
		if d.rex&1 != 0 {
			extB = 8
		}
	}
	d.reg = regBits | extR

	if d.mod == 3 {
		d.rm = rmBits | extB
		d.mem.isReg = true
		d.mem.regNum = d.rm
		return nil
	}

	switch {
	case rmBits == 4: // SIB follows
		s, err := d.next()
		if err != nil {
			return err
		}
		idx := (s>>3)&7 | extX
		if idx != 4 { // encoded index 100 without REX.X means "none"
			d.mem.hasIndex = true
			d.mem.index = idx
			d.mem.scale = 1 << (s >> 6)
		}
		if s&7 == 5 && d.mod == 0 {
			return d.readDisp(32) // no base, disp32
		}
		d.mem.hasBase = true
		d.mem.base = s&7 | extB
	case d.mod == 0 && rmBits == 5: // RIP-relative
		d.mem.ripRel = true
		return d.readDisp(32)
	default:
		d.mem.hasBase = true
		d.mem.base = rmBits | extB
	}
	switch d.mod {
	case 1:
		return d.readDisp(8)
	case 2:
		return d.readDisp(32)
	}
	return nil
}

func (d *decoder) readLE(bits int) (int64, error) {
	n := bits / 8
	if d.pos+n > len(d.code) {
		return 0, ErrTruncated
	}
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(d.code[d.pos+i]) << (8 * i)
	}
	d.pos += n
	shift := uint(64 - bits)
	return int64(v<<shift) >> shift, nil // sign-extend
}

func (d *decoder) readDisp(bits int) error {
	v, err := d.readLE(bits)
	if err != nil {
		return err
	}
	d.mem.disp = v
	return nil
}

func (d *decoder) readImm(bits int) error {
	v, err := d.readLE(bits)
	if err != nil {
		return err
	}
	d.imm = v
	d.immBits = bits
	return nil
}

func (d *decoder) skip(n int) error {
	if d.pos+n > len(d.code) {
		return ErrTruncated
	}
	d.pos += n
	return nil
}

// immediates reads the trailing immediate bytes the attribute table
// prescribes. immz is 16 bits under an operand-size prefix, else 32
// (never 64); immv follows the full effective operand size (mov r64,
// imm64). Near-branch displacements are fixed rel8/rel32 in 64-bit mode
// regardless of prefixes.
func (d *decoder) immediates(a attr) error {
	switch {
	case a&aImm16 != 0 && a&aImm8 != 0: // enter imm16, imm8
		return d.skip(3)
	case a&aImm8 != 0:
		return d.readImm(8)
	case a&aImm16 != 0:
		return d.readImm(16)
	case a&aImmZ != 0:
		if d.has66 {
			return d.readImm(16)
		}
		return d.readImm(32)
	case a&aImmV != 0:
		switch {
		case d.rex&8 != 0:
			return d.readImm(64)
		case d.has66:
			return d.readImm(16)
		default:
			return d.readImm(32)
		}
	case a&aRel8 != 0:
		return d.readImm(8)
	case a&aRel32 != 0:
		return d.readImm(32)
	case a&aMoffs != 0:
		if d.has67 {
			return d.skip(4)
		}
		return d.skip(8)
	case a&aGrp3 != 0:
		// F6/F7: /0 and /1 are test r/m, imm; the rest take none.
		if d.reg&7 > 1 {
			return nil
		}
		if d.opcode == 0xF6 {
			return d.readImm(8)
		}
		if d.has66 {
			return d.readImm(16)
		}
		return d.readImm(32)
	}
	return nil
}

// ---- effective sizes and register numbering --------------------------------

// gpOrder maps hardware register numbers (with REX extension) to the
// model's register families.
var gpOrder = [16]x86.RegFamily{
	x86.FamRAX, x86.FamRCX, x86.FamRDX, x86.FamRBX,
	x86.FamRSP, x86.FamRBP, x86.FamRSI, x86.FamRDI,
	x86.FamR8, x86.FamR9, x86.FamR10, x86.FamR11,
	x86.FamR12, x86.FamR13, x86.FamR14, x86.FamR15,
}

// gpReg resolves a hardware register number at a width. Without a REX
// prefix, byte registers 4..7 are ah/ch/dh/bh, which the register model
// deliberately cannot express — those decode as unsupported.
func gpReg(num byte, size int, haveREX bool) (x86.Reg, bool) {
	if size == x86.Size8 && !haveREX && num >= 4 && num <= 7 {
		return x86.Reg{}, false
	}
	return x86.Reg{Family: gpOrder[num&15], Size: size}, true
}

func xmmReg(num byte, size int) x86.Reg {
	return x86.Reg{Family: x86.FamXMM0 + x86.RegFamily(num&15), Size: size}
}

// opSize is the effective general-purpose operand size.
func (d *decoder) opSize() int {
	switch {
	case d.rex&8 != 0:
		return x86.Size64
	case d.has66:
		return x86.Size16
	default:
		return x86.Size32
	}
}

// stackSize is the effective size of push/pop operands (default 64-bit).
func (d *decoder) stackSize() int {
	if d.has66 {
		return x86.Size16
	}
	return x86.Size64
}

// cvtGPSize is the general-purpose operand size of the scalar-conversion
// instructions (REX.W selects 64-bit; 66 is a mandatory prefix here, not
// an operand-size override).
func (d *decoder) cvtGPSize() int {
	if d.rex&8 != 0 {
		return x86.Size64
	}
	return x86.Size32
}

func (d *decoder) rexB() byte {
	if d.rex&1 != 0 {
		return 8
	}
	return 0
}

// memRef converts the raw addressing operand into the model's MemRef.
// It fails (unsupported) for RIP-relative addresses, segment overrides
// and 32-bit address-size overrides, none of which the model expresses.
func (d *decoder) memRef() (x86.MemRef, bool) {
	if d.mem.ripRel || d.seg || d.has67 {
		return x86.MemRef{}, false
	}
	var m x86.MemRef
	m.Disp = d.mem.disp
	if d.mem.hasBase {
		m.Base = x86.Reg{Family: gpOrder[d.mem.base&15], Size: x86.Size64}
	}
	if d.mem.hasIndex {
		m.Index = x86.Reg{Family: gpOrder[d.mem.index&15], Size: x86.Size64}
		m.Scale = d.mem.scale
	}
	// Canonicalize a base-less scale-1 index as the base: the printer
	// renders both identically ("[rcx + 8]"), and the parser reads that
	// as a base, so only the base form survives a round trip.
	if !d.mem.hasBase && d.mem.hasIndex && m.Scale == 1 {
		m.Base, m.Index, m.Scale = m.Index, x86.Reg{}, 0
	}
	return m, true
}

// ---- operand builder --------------------------------------------------------

// opBuilder accumulates operands; any constraint the model cannot
// express flips ok and the instruction decodes as length-only.
type opBuilder struct {
	d   *decoder
	ops []x86.Operand
	ok  bool
}

func (d *decoder) newOps() *opBuilder { return &opBuilder{d: d, ok: true} }

func (b *opBuilder) add(op x86.Operand) { b.ops = append(b.ops, op) }

// gp appends a general-purpose register by hardware number.
func (b *opBuilder) gp(num byte, size int) {
	r, ok := gpReg(num, size, b.d.rex != 0)
	if !ok {
		b.ok = false
		return
	}
	b.add(x86.NewReg(r))
}

// regOp appends the ModRM.reg register.
func (b *opBuilder) regOp(size int) { b.gp(b.d.reg, size) }

// rmOp appends the ModRM.rm operand: a register or a sized memory ref.
func (b *opBuilder) rmOp(size int) {
	if b.d.mem.isReg {
		b.gp(b.d.mem.regNum, size)
		return
	}
	m, ok := b.d.memRef()
	if !ok {
		b.ok = false
		return
	}
	b.add(x86.NewMem(m, size))
}

// xmm appends a vector register by number.
func (b *opBuilder) xmm(num byte, size int) { b.add(x86.NewReg(xmmReg(num, size))) }

// xmmRegOp appends the ModRM.reg vector register.
func (b *opBuilder) xmmRegOp(size int) { b.xmm(b.d.reg, size) }

// xmmRM appends the ModRM.rm operand as a vector register or a memory
// ref of the instruction's memory width (which differs from the register
// width for scalar SSE ops).
func (b *opBuilder) xmmRM(regSize, memSize int) {
	if b.d.mem.isReg {
		b.xmm(b.d.mem.regNum, regSize)
		return
	}
	m, ok := b.d.memRef()
	if !ok {
		b.ok = false
		return
	}
	b.add(x86.NewMem(m, memSize))
}

// imm appends the decoded immediate at parser-canonical width.
func (b *opBuilder) imm() { b.add(x86.FitImm(b.d.imm)) }

// addrOp appends the lea effective-address operand.
func (b *opBuilder) addrOp() {
	if b.d.mem.isReg { // lea with a register source is #UD
		b.ok = false
		return
	}
	m, ok := b.d.memRef()
	if !ok {
		b.ok = false
		return
	}
	b.add(x86.NewAddr(m))
}

// emit finalizes the instruction under the given mnemonic. The lock
// prefix disqualifies any instruction: the model has no atomic-RMW
// semantics.
func (b *opBuilder) emit(inst *Inst, name string) {
	inst.Mnemonic = name
	if !b.ok || b.d.lock {
		return
	}
	inst.X86 = x86.Instruction{Opcode: name, Operands: b.ops}
	inst.Supported = true
}

// ---- semantics --------------------------------------------------------------

func (d *decoder) semantic() Inst {
	var inst Inst
	switch {
	case d.evex:
		// Length-only: AVX-512 is outside the model.
	case d.vex:
		d.semVEX(&inst)
	case d.esc == 1:
		d.sem0F(&inst)
	case d.esc == 2:
		d.sem0F38(&inst)
	case d.esc == 3:
		// Nothing in the modeled subset lives in map 0F3A.
	default:
		d.semOneByte(&inst)
	}
	if inst.Supported {
		// The spec table is the only arbiter of support: operand shapes
		// it has no form for (16-bit bswap, same-width movzx, rcl, ...)
		// downgrade to length-only here.
		if inst.X86.Validate() != nil {
			inst.Supported = false
			inst.X86 = x86.Instruction{}
		}
	}
	return inst
}

var aluNames = [8]string{"add", "or", "adc", "sbb", "and", "sub", "xor", "cmp"}
var shiftNames = [8]string{"rol", "ror", "rcl", "rcr", "shl", "shr", "shl", "sar"}
var grp3Names = [8]string{"test", "test", "not", "neg", "mul", "imul", "div", "idiv"}
var ccNames = [16]string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// branch marks a control transfer; rel notes a decoded rel8/rel32
// displacement (already in d.imm).
func (d *decoder) branch(inst *Inst, name string, rel bool) {
	inst.Mnemonic = name
	inst.Branch = true
	if rel {
		inst.RelValid = true
		inst.RelDisp = d.imm
	}
}

func (d *decoder) semOneByte(inst *Inst) {
	op := d.opcode
	size := d.opSize()
	switch {
	case op < 0x40 && op&7 <= 5: // the eight ALU rows
		name := aluNames[op>>3]
		b := d.newOps()
		switch op & 7 {
		case 0: // r/m8, r8
			b.rmOp(x86.Size8)
			b.regOp(x86.Size8)
		case 1: // r/m, r
			b.rmOp(size)
			b.regOp(size)
		case 2: // r8, r/m8
			b.regOp(x86.Size8)
			b.rmOp(x86.Size8)
		case 3: // r, r/m
			b.regOp(size)
			b.rmOp(size)
		case 4: // al, imm8
			b.gp(0, x86.Size8)
			b.imm()
		case 5: // rAX, immz
			b.gp(0, size)
			b.imm()
		}
		b.emit(inst, name)

	case op >= 0x50 && op <= 0x57:
		b := d.newOps()
		b.gp(op&7|d.rexB(), d.stackSize())
		b.emit(inst, "push")
	case op >= 0x58 && op <= 0x5F:
		b := d.newOps()
		b.gp(op&7|d.rexB(), d.stackSize())
		b.emit(inst, "pop")

	case op == 0x63:
		inst.Mnemonic = "movsxd" // sign-extending move, outside the subset

	case op >= 0x6C && op <= 0x6F:
		if op <= 0x6D {
			inst.Mnemonic = "ins"
		} else {
			inst.Mnemonic = "outs"
		}

	case op == 0x68 || op == 0x6A:
		b := d.newOps()
		b.imm()
		b.emit(inst, "push")
	case op == 0x69 || op == 0x6B: // imul r, r/m, imm
		b := d.newOps()
		b.regOp(size)
		b.rmOp(size)
		b.imm()
		b.emit(inst, "imul")

	case op >= 0x70 && op <= 0x7F:
		d.branch(inst, "j"+ccNames[op&15], true)

	case op >= 0x80 && op <= 0x83: // group 1: ALU r/m, imm
		sz := size
		if op == 0x80 {
			sz = x86.Size8
		}
		b := d.newOps()
		b.rmOp(sz)
		b.imm()
		b.emit(inst, aluNames[d.reg&7])

	case op == 0x84 || op == 0x85:
		sz := size
		if op == 0x84 {
			sz = x86.Size8
		}
		b := d.newOps()
		b.rmOp(sz)
		b.regOp(sz)
		b.emit(inst, "test")
	case op == 0x86 || op == 0x87:
		sz := size
		if op == 0x86 {
			sz = x86.Size8
		}
		b := d.newOps()
		b.rmOp(sz)
		b.regOp(sz)
		b.emit(inst, "xchg")

	case op == 0x88 || op == 0x89: // mov r/m, r
		sz := size
		if op == 0x88 {
			sz = x86.Size8
		}
		b := d.newOps()
		b.rmOp(sz)
		b.regOp(sz)
		b.emit(inst, "mov")
	case op == 0x8A || op == 0x8B: // mov r, r/m
		sz := size
		if op == 0x8A {
			sz = x86.Size8
		}
		b := d.newOps()
		b.regOp(sz)
		b.rmOp(sz)
		b.emit(inst, "mov")
	case op == 0x8C || op == 0x8E:
		inst.Mnemonic = "mov" // segment-register forms

	case op == 0x8D:
		b := d.newOps()
		b.regOp(size)
		b.addrOp()
		b.emit(inst, "lea")

	case op == 0x8F:
		if d.reg&7 == 0 {
			b := d.newOps()
			b.rmOp(d.stackSize())
			b.emit(inst, "pop")
		}

	case op >= 0x90 && op <= 0x97:
		if op == 0x90 && d.rexB() == 0 {
			if d.rep == 0xF3 {
				inst.Mnemonic = "pause"
				return
			}
			d.newOps().emit(inst, "nop")
			return
		}
		b := d.newOps()
		b.gp(op&7|d.rexB(), size)
		b.gp(0, size)
		b.emit(inst, "xchg")

	case op == 0x98:
		if d.rex&8 != 0 {
			inst.Mnemonic = "cdqe"
		} else {
			inst.Mnemonic = "cwde"
		}
	case op == 0x99:
		switch {
		case d.rex&8 != 0:
			d.newOps().emit(inst, "cqo")
		case d.has66:
			inst.Mnemonic = "cwd"
		default:
			d.newOps().emit(inst, "cdq")
		}

	case op == 0x9B:
		inst.Mnemonic = "fwait"
	case op == 0x9C:
		inst.Mnemonic = "pushfq"
	case op == 0x9D:
		inst.Mnemonic = "popfq"
	case op == 0x9E:
		inst.Mnemonic = "sahf"
	case op == 0x9F:
		inst.Mnemonic = "lahf"

	case op >= 0xA0 && op <= 0xA3:
		inst.Mnemonic = "mov" // moffs forms

	case op == 0xA4 || op == 0xA5:
		inst.Mnemonic = "movs"
	case op == 0xA6 || op == 0xA7:
		inst.Mnemonic = "cmps"
	case op >= 0xAA && op <= 0xAB:
		inst.Mnemonic = "stos"
	case op >= 0xAC && op <= 0xAD:
		inst.Mnemonic = "lods"
	case op >= 0xAE && op <= 0xAF:
		inst.Mnemonic = "scas"

	case op == 0xA8 || op == 0xA9: // test rAX, imm
		sz := size
		if op == 0xA8 {
			sz = x86.Size8
		}
		b := d.newOps()
		b.gp(0, sz)
		b.imm()
		b.emit(inst, "test")

	case op >= 0xB0 && op <= 0xB7: // mov r8, imm8
		b := d.newOps()
		b.gp(op&7|d.rexB(), x86.Size8)
		b.imm()
		b.emit(inst, "mov")
	case op >= 0xB8 && op <= 0xBF: // mov r, immv
		b := d.newOps()
		b.gp(op&7|d.rexB(), size)
		b.imm()
		b.emit(inst, "mov")

	case op == 0xC0 || op == 0xC1 || (op >= 0xD0 && op <= 0xD3): // shift groups
		sz := size
		if op == 0xC0 || op == 0xD0 || op == 0xD2 {
			sz = x86.Size8
		}
		b := d.newOps()
		b.rmOp(sz)
		switch op {
		case 0xC0, 0xC1:
			b.imm()
		case 0xD0, 0xD1:
			b.add(x86.FitImm(1))
		default: // D2, D3: shift by cl
			b.add(x86.NewReg(x86.Reg{Family: x86.FamRCX, Size: x86.Size8}))
		}
		b.emit(inst, shiftNames[d.reg&7])

	case op == 0xC2 || op == 0xC3:
		d.branch(inst, "ret", false)

	case op == 0xC6 || op == 0xC7: // group 11: mov r/m, imm
		if d.reg&7 != 0 {
			inst.Mnemonic = "xabort" // C6 F8 / C7 F8 (xbegin) and reserved slots
			if op == 0xC7 {
				inst.Mnemonic = "xbegin"
			}
			return
		}
		sz := size
		if op == 0xC6 {
			sz = x86.Size8
		}
		b := d.newOps()
		b.rmOp(sz)
		b.imm()
		b.emit(inst, "mov")

	case op == 0xC8:
		inst.Mnemonic = "enter"
	case op == 0xC9:
		inst.Mnemonic = "leave"
	case op == 0xCA || op == 0xCB:
		d.branch(inst, "retf", false)
	case op == 0xCC:
		d.branch(inst, "int3", false)
	case op == 0xCD:
		d.branch(inst, "int", false)
	case op == 0xCF:
		d.branch(inst, "iretq", false)

	case op == 0xD7:
		inst.Mnemonic = "xlat"
	case op >= 0xD8 && op <= 0xDF:
		inst.Mnemonic = "x87" // the entire x87 escape range

	case op == 0xE0:
		d.branch(inst, "loopne", true)
	case op == 0xE1:
		d.branch(inst, "loope", true)
	case op == 0xE2:
		d.branch(inst, "loop", true)
	case op == 0xE3:
		d.branch(inst, "jrcxz", true)
	case op >= 0xE4 && op <= 0xE7:
		if op <= 0xE5 {
			inst.Mnemonic = "in"
		} else {
			inst.Mnemonic = "out"
		}
	case op == 0xE8:
		d.branch(inst, "call", true)
	case op == 0xE9 || op == 0xEB:
		d.branch(inst, "jmp", true)
	case op >= 0xEC && op <= 0xEF:
		if op <= 0xED {
			inst.Mnemonic = "in"
		} else {
			inst.Mnemonic = "out"
		}

	case op == 0xF1:
		d.branch(inst, "int1", false)
	case op == 0xF4:
		d.branch(inst, "hlt", false)
	case op == 0xF5:
		inst.Mnemonic = "cmc"

	case op == 0xF6 || op == 0xF7: // group 3
		sz := size
		if op == 0xF6 {
			sz = x86.Size8
		}
		name := grp3Names[d.reg&7]
		b := d.newOps()
		b.rmOp(sz)
		if d.reg&7 <= 1 {
			b.imm()
		}
		// /5 is the one-operand imul, which the spec table has no form
		// for; emit lets Validate downgrade it.
		b.emit(inst, name)

	case op >= 0xF8 && op <= 0xFD:
		inst.Mnemonic = [...]string{"clc", "stc", "cli", "sti", "cld", "std"}[op-0xF8]

	case op == 0xFE: // group 4: inc/dec r/m8
		if d.reg&7 <= 1 {
			b := d.newOps()
			b.rmOp(x86.Size8)
			b.emit(inst, [...]string{"inc", "dec"}[d.reg&7])
		}

	case op == 0xFF: // group 5
		switch d.reg & 7 {
		case 0, 1:
			b := d.newOps()
			b.rmOp(size)
			b.emit(inst, [...]string{"inc", "dec"}[d.reg&7])
		case 2, 3:
			d.branch(inst, "call", false)
		case 4, 5:
			d.branch(inst, "jmp", false)
		case 6:
			b := d.newOps()
			b.rmOp(d.stackSize())
			b.emit(inst, "push")
		}
	}
}

func (d *decoder) sem0F(inst *Inst) {
	op := d.opcode
	size := d.opSize()
	switch {
	case op == 0x05:
		d.branch(inst, "syscall", false)
	case op == 0x0B:
		d.branch(inst, "ud2", false)

	case op == 0x18:
		inst.Mnemonic = "prefetch"
	case op >= 0x19 && op <= 0x1F:
		// Reserved/multi-byte NOPs (the compiler padding workhorses).
		// The memory operand is a pure hint, so it is dropped.
		d.newOps().emit(inst, "nop")

	case op == 0x31:
		inst.Mnemonic = "rdtsc"

	case op >= 0x40 && op <= 0x4F:
		inst.Mnemonic = "cmov" + ccNames[op&15]

	case op >= 0x80 && op <= 0x8F:
		d.branch(inst, "j"+ccNames[op&15], true)
	case op >= 0x90 && op <= 0x9F:
		inst.Mnemonic = "set" + ccNames[op&15]

	case op == 0xA0 || op == 0xA8:
		inst.Mnemonic = "push"
	case op == 0xA1 || op == 0xA9:
		inst.Mnemonic = "pop"
	case op == 0xA2:
		inst.Mnemonic = "cpuid"
	case op == 0xA3 || op == 0xAB || op == 0xB3 || op == 0xBB:
		inst.Mnemonic = [...]string{"bt", "bts", "btr", "btc"}[(op>>3)&3]
	case op == 0xBA: // group 8
		if d.reg&7 >= 4 {
			inst.Mnemonic = [...]string{"bt", "bts", "btr", "btc"}[d.reg&3]
		}
	case op == 0xA4 || op == 0xA5:
		inst.Mnemonic = "shld"
	case op == 0xAC || op == 0xAD:
		inst.Mnemonic = "shrd"
	case op == 0xAA:
		inst.Mnemonic = "rsm"
	case op == 0xAE:
		inst.Mnemonic = "fence" // group 15: fences, ldmxcsr, clflush, ...

	case op == 0xAF: // imul r, r/m
		b := d.newOps()
		b.regOp(size)
		b.rmOp(size)
		b.emit(inst, "imul")

	case op == 0xB0 || op == 0xB1:
		inst.Mnemonic = "cmpxchg"
	case op == 0xB6 || op == 0xB7 || op == 0xBE || op == 0xBF:
		name := "movzx"
		if op >= 0xBE {
			name = "movsx"
		}
		srcSize := x86.Size8
		if op&1 != 0 {
			srcSize = x86.Size16
		}
		b := d.newOps()
		b.regOp(size)
		b.rmOp(srcSize)
		b.emit(inst, name)

	case op == 0xB8:
		if d.pp == 2 {
			b := d.newOps()
			b.regOp(size)
			b.rmOp(size)
			b.emit(inst, "popcnt")
		} else {
			inst.Mnemonic = "jmpe"
		}
	case op == 0xB9:
		inst.Mnemonic = "ud1"
	case op == 0xBC || op == 0xBD:
		if d.pp == 2 {
			b := d.newOps()
			b.regOp(size)
			b.rmOp(size)
			b.emit(inst, [...]string{"tzcnt", "lzcnt"}[op&1])
		} else {
			inst.Mnemonic = [...]string{"bsf", "bsr"}[op&1]
		}

	case op == 0xC0 || op == 0xC1:
		inst.Mnemonic = "xadd"
	case op == 0xC7: // group 9
		switch d.reg & 7 {
		case 1:
			inst.Mnemonic = "cmpxchg16b"
		case 6:
			inst.Mnemonic = "rdrand"
		case 7:
			inst.Mnemonic = "rdseed"
		}
	case op >= 0xC8 && op <= 0xCF:
		b := d.newOps()
		b.gp(op&7|d.rexB(), size)
		b.emit(inst, "bswap")

	default:
		if e, ok := sseTable[sseKey(op, d.pp)]; ok {
			d.emitSSE(inst, e)
		}
	}
}

func (d *decoder) sem0F38(inst *Inst) {
	if e, ok := sse38Table[sseKey(d.opcode, d.pp)]; ok {
		d.emitSSE(inst, e)
	}
}

// emitSSE materializes an SSE table entry's operand shape.
func (d *decoder) emitSSE(inst *Inst, e sseEntry) {
	b := d.newOps()
	switch e.kind {
	case kRM128: // xmm ← xmm/m128
		b.xmmRegOp(x86.Size128)
		b.xmmRM(x86.Size128, x86.Size128)
	case kRM32: // xmm ← xmm/m32 (scalar single)
		b.xmmRegOp(x86.Size128)
		b.xmmRM(x86.Size128, x86.Size32)
	case kRM64: // xmm ← xmm/m64 (scalar double)
		b.xmmRegOp(x86.Size128)
		b.xmmRM(x86.Size128, x86.Size64)
	case kStore128: // xmm/m128 ← xmm
		b.xmmRM(x86.Size128, x86.Size128)
		b.xmmRegOp(x86.Size128)
	case kStore32:
		b.xmmRM(x86.Size128, x86.Size32)
		b.xmmRegOp(x86.Size128)
	case kStore64:
		b.xmmRM(x86.Size128, x86.Size64)
		b.xmmRegOp(x86.Size128)
	case kGP2X: // xmm ← r/m32/64 (cvtsi2ss/sd)
		b.xmmRegOp(x86.Size128)
		b.rmOp(d.cvtGPSize())
	case kX2GP32: // r32/64 ← xmm/m32 (cvttss2si)
		b.gp(d.reg, d.cvtGPSize())
		b.xmmRM(x86.Size128, x86.Size32)
	case kX2GP64: // r32/64 ← xmm/m64 (cvttsd2si)
		b.gp(d.reg, d.cvtGPSize())
		b.xmmRM(x86.Size128, x86.Size64)
	}
	b.emit(inst, e.name)
}

func (d *decoder) semVEX(inst *Inst) {
	vecSize := x86.Size128
	if d.vexL {
		vecSize = x86.Size256
	}
	if d.esc == 1 && d.opcode == 0x77 {
		if d.vexL {
			inst.Mnemonic = "vzeroall"
		} else {
			inst.Mnemonic = "vzeroupper"
		}
		return
	}
	if d.esc == 2 && d.pp == 1 {
		if fe, ok := fmaTable[d.opcode]; ok {
			d.emitFMA(inst, fe, vecSize)
			return
		}
	}
	e, ok := vexTable[sseKey(d.opcode, d.pp)]
	if !ok || d.esc != e.vexMap {
		return
	}
	b := d.newOps()
	switch e.kind {
	case vMovLoad, vMovStore: // two-operand moves: vvvv must be unused
		if d.vexV != 0 {
			inst.Mnemonic = e.name
			return
		}
		if e.kind == vMovLoad {
			b.xmmRegOp(vecSize)
			b.xmmRM(vecSize, vecSize)
		} else {
			b.xmmRM(vecSize, vecSize)
			b.xmmRegOp(vecSize)
		}
	case vScalar32, vScalar64: // dst, src1 (vvvv), src2 (r/m) — LIG
		memSize := x86.Size32
		if e.kind == vScalar64 {
			memSize = x86.Size64
		}
		b.xmmRegOp(x86.Size128)
		b.xmm(d.vexV, x86.Size128)
		b.xmmRM(x86.Size128, memSize)
	case vPacked:
		b.xmmRegOp(vecSize)
		b.xmm(d.vexV, vecSize)
		b.xmmRM(vecSize, vecSize)
	}
	b.emit(inst, e.name)
}

// emitFMA handles the VEX.66.0F38 FMA family, whose ss/sd (and ps/pd)
// variants share one opcode selected by VEX.W.
func (d *decoder) emitFMA(inst *Inst, fe fmaEntry, vecSize int) {
	b := d.newOps()
	var name string
	if fe.scalar {
		memSize := x86.Size32
		name = fe.base + "ss"
		if d.vexW {
			memSize = x86.Size64
			name = fe.base + "sd"
		}
		b.xmmRegOp(x86.Size128)
		b.xmm(d.vexV, x86.Size128)
		b.xmmRM(x86.Size128, memSize)
	} else {
		name = fe.base + "ps"
		if d.vexW {
			name = fe.base + "pd"
		}
		b.xmmRegOp(vecSize)
		b.xmm(d.vexV, vecSize)
		b.xmmRM(vecSize, vecSize)
	}
	b.emit(inst, name)
}
