package decode

import (
	"errors"
	"testing"

	"github.com/comet-explain/comet/internal/x86"
)

// vec is one hand-assembled test vector. want is the expected rendering
// of the decoded instruction ("" when the bytes are outside the modeled
// subset).
type vec struct {
	name   string
	code   []byte
	want   string
	len    int
	branch bool
}

var vectors = []vec{
	// Basic ALU, REX and operand sizes.
	{"add r64", []byte{0x48, 0x01, 0xD8}, "add rax, rbx", 3, false},
	{"add r32", []byte{0x01, 0xD8}, "add eax, ebx", 2, false},
	{"add r16", []byte{0x66, 0x01, 0xD8}, "add ax, bx", 3, false},
	{"add r8", []byte{0x00, 0xD8}, "add al, bl", 2, false},
	{"add reverse", []byte{0x48, 0x03, 0xC3}, "add rax, rbx", 3, false},
	{"xor al imm", []byte{0x34, 0x7F}, "xor al, 127", 2, false},
	{"cmp eax imm32", []byte{0x3D, 0x40, 0x42, 0x0F, 0x00}, "cmp eax, 1000000", 5, false},
	{"add imm8 sx", []byte{0x48, 0x83, 0xC0, 0x01}, "add rax, 1", 4, false},
	{"sub imm32", []byte{0x48, 0x81, 0xEC, 0x00, 0x01, 0x00, 0x00}, "sub rsp, 256", 7, false},
	{"and imm8 neg", []byte{0x83, 0xE1, 0xF0}, "and ecx, -16", 3, false},

	// REX extensions.
	{"r8-r15 dst", []byte{0x4D, 0x01, 0xC1}, "add r9, r8", 3, false},
	{"spl not ah", []byte{0x40, 0x00, 0xE0}, "add al, spl", 3, false},
	{"ah unsupported", []byte{0x00, 0xE0}, "", 2, false},

	// ModRM/SIB addressing.
	{"mov load", []byte{0x48, 0x8B, 0x03}, "mov rax, qword ptr [rbx]", 3, false},
	{"mov store disp8", []byte{0x89, 0x45, 0xFC}, "mov dword ptr [rbp - 4], eax", 3, false},
	{"mov sib scale8", []byte{0x48, 0x8B, 0x04, 0xC8}, "mov rax, qword ptr [rax + rcx*8]", 4, false},
	{"mov sib disp32", []byte{0x8B, 0x84, 0x24, 0x00, 0x01, 0x00, 0x00}, "mov eax, dword ptr [rsp + 256]", 7, false},
	{"mov abs sib", []byte{0x8B, 0x04, 0x25, 0x10, 0x00, 0x00, 0x00}, "mov eax, dword ptr [16]", 7, false},
	{"mov idx only", []byte{0x8B, 0x04, 0x4D, 0x00, 0x00, 0x00, 0x00}, "mov eax, dword ptr [rcx*2]", 7, false},
	{"mov idx scale1", []byte{0x8B, 0x04, 0x0D, 0x08, 0x00, 0x00, 0x00}, "mov eax, dword ptr [rcx + 8]", 7, false},
	{"r12 base sib", []byte{0x41, 0x8B, 0x04, 0x24}, "mov eax, dword ptr [r12]", 4, false},
	{"r13 base disp0", []byte{0x41, 0x8B, 0x45, 0x00}, "mov eax, dword ptr [r13]", 4, false},
	{"r12 index", []byte{0x42, 0x8B, 0x04, 0x60}, "mov eax, dword ptr [rax + r12*2]", 4, false},
	{"rip-rel unsupported", []byte{0x8B, 0x05, 0x10, 0x00, 0x00, 0x00}, "", 6, false},

	// mov immediates.
	{"mov r32 imm", []byte{0xB8, 0x2A, 0x00, 0x00, 0x00}, "mov eax, 42", 5, false},
	{"mov r64 imm64", []byte{0x48, 0xB8, 0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01}, "mov rax, 81985529216486895", 10, false},
	{"mov r8 imm", []byte{0xB3, 0x07}, "mov bl, 7", 2, false},
	{"mov rm imm", []byte{0x48, 0xC7, 0x45, 0xF8, 0x05, 0x00, 0x00, 0x00}, "mov qword ptr [rbp - 8], 5", 8, false},

	// lea (with register source it is invalid → unsupported, length 3).
	{"lea", []byte{0x48, 0x8D, 0x44, 0x24, 0x08}, "lea rax, [rsp + 8]", 5, false},
	{"lea reg invalid", []byte{0x48, 0x8D, 0xC1}, "", 3, false},

	// push/pop, xchg, nop.
	{"push r64", []byte{0x55}, "push rbp", 1, false},
	{"push r15", []byte{0x41, 0x57}, "push r15", 2, false},
	{"pop r64", []byte{0x5D}, "pop rbp", 1, false},
	{"push imm8", []byte{0x6A, 0x2A}, "push 42", 2, false},
	{"xchg", []byte{0x48, 0x87, 0xD8}, "xchg rax, rbx", 3, false},
	{"xchg rax r", []byte{0x48, 0x93}, "xchg rbx, rax", 2, false},
	{"nop", []byte{0x90}, "nop", 1, false},
	{"pause", []byte{0xF3, 0x90}, "", 2, false},
	{"nop multi", []byte{0x0F, 0x1F, 0x40, 0x00}, "nop", 4, false},
	{"nop 66 long", []byte{0x66, 0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00}, "nop", 9, false},

	// Shifts, unary group, wide ops.
	{"shl imm", []byte{0x48, 0xC1, 0xE0, 0x02}, "shl rax, 2", 4, false},
	{"shr 1", []byte{0xD1, 0xE8}, "shr eax, 1", 2, false},
	{"sar cl", []byte{0x48, 0xD3, 0xF8}, "sar rax, cl", 3, false},
	{"rcl unsupported", []byte{0xC1, 0xD0, 0x03}, "", 3, false},
	{"neg", []byte{0x48, 0xF7, 0xD8}, "neg rax", 3, false},
	{"not", []byte{0xF7, 0xD1}, "not ecx", 2, false},
	{"test imm", []byte{0xF7, 0xC1, 0x01, 0x00, 0x00, 0x00}, "test ecx, 1", 6, false},
	{"mul", []byte{0x48, 0xF7, 0xE3}, "mul rbx", 3, false},
	{"idiv", []byte{0x48, 0xF7, 0xFB}, "idiv rbx", 3, false},
	{"imul 2op", []byte{0x48, 0x0F, 0xAF, 0xC3}, "imul rax, rbx", 4, false},
	{"imul 3op", []byte{0x48, 0x6B, 0xC0, 0x09}, "imul rax, rax, 9", 4, false},
	{"inc", []byte{0xFF, 0xC0}, "inc eax", 2, false},
	{"dec mem", []byte{0x48, 0xFF, 0x4D, 0x00}, "dec qword ptr [rbp]", 4, false},
	{"cqo", []byte{0x48, 0x99}, "cqo", 2, false},
	{"cdq", []byte{0x99}, "cdq", 1, false},
	{"bswap", []byte{0x48, 0x0F, 0xC8}, "bswap rax", 3, false},
	{"bswap16 invalid", []byte{0x66, 0x0F, 0xC8}, "", 3, false},
	{"movzx", []byte{0x0F, 0xB6, 0xC3}, "movzx eax, bl", 3, false},
	{"movsx r64 m16", []byte{0x48, 0x0F, 0xBF, 0x03}, "movsx rax, word ptr [rbx]", 4, false},
	{"popcnt", []byte{0xF3, 0x48, 0x0F, 0xB8, 0xC3}, "popcnt rax, rbx", 5, false},
	{"tzcnt", []byte{0xF3, 0x0F, 0xBC, 0xC1}, "tzcnt eax, ecx", 4, false},
	{"bsf unsupported", []byte{0x0F, 0xBC, 0xC1}, "", 3, false},

	// Branches.
	{"jmp rel8", []byte{0xEB, 0x05}, "", 2, true},
	{"je rel8", []byte{0x74, 0x10}, "", 2, true},
	{"jne rel32", []byte{0x0F, 0x85, 0x00, 0x01, 0x00, 0x00}, "", 6, true},
	{"call rel32", []byte{0xE8, 0x00, 0x00, 0x00, 0x00}, "", 5, true},
	{"call indirect", []byte{0xFF, 0xD0}, "", 2, true},
	{"jmp indirect mem", []byte{0xFF, 0x25, 0x00, 0x00, 0x00, 0x00}, "", 6, true},
	{"ret", []byte{0xC3}, "", 1, true},
	{"ret imm", []byte{0xC2, 0x08, 0x00}, "", 3, true},
	{"syscall", []byte{0x0F, 0x05}, "", 2, true},
	{"int3", []byte{0xCC}, "", 1, true},
	{"ud2", []byte{0x0F, 0x0B}, "", 2, true},
	{"loop", []byte{0xE2, 0xFE}, "", 2, true},

	// Prefix-induced unsupported forms (length must still be exact).
	{"lock add", []byte{0xF0, 0x01, 0x03}, "", 3, false},
	{"fs segment", []byte{0x64, 0x48, 0x8B, 0x03}, "", 4, false},
	{"addr32", []byte{0x67, 0x8B, 0x03}, "", 3, false},
	{"cmov unsupported", []byte{0x48, 0x0F, 0x4E, 0xC3}, "", 4, false},
	{"setcc unsupported", []byte{0x0F, 0x94, 0xC0}, "", 3, false},
	{"movsxd unsupported", []byte{0x48, 0x63, 0xC1}, "", 3, false},
	{"enter", []byte{0xC8, 0x10, 0x00, 0x00}, "", 4, false},
	{"x87 fadd", []byte{0xD8, 0xC1}, "", 2, false},
	{"cmpxchg", []byte{0x48, 0x0F, 0xB1, 0x0B}, "", 4, false},
	{"xadd", []byte{0xF0, 0x0F, 0xC1, 0x03}, "", 4, false},
	{"movs rep", []byte{0xF3, 0xA4}, "", 2, false},
	{"mov moffs", []byte{0x48, 0xA1, 1, 2, 3, 4, 5, 6, 7, 8}, "", 10, false},

	// SSE scalar and packed.
	{"addss", []byte{0xF3, 0x0F, 0x58, 0xC1}, "addss xmm0, xmm1", 4, false},
	{"addsd mem", []byte{0xF2, 0x0F, 0x58, 0x03}, "addsd xmm0, qword ptr [rbx]", 4, false},
	{"movss load", []byte{0xF3, 0x0F, 0x10, 0x44, 0x24, 0x04}, "movss xmm0, dword ptr [rsp + 4]", 6, false},
	{"movss store", []byte{0xF3, 0x0F, 0x11, 0x44, 0x24, 0x04}, "movss dword ptr [rsp + 4], xmm0", 6, false},
	{"movaps", []byte{0x0F, 0x28, 0x07}, "movaps xmm0, xmmword ptr [rdi]", 3, false},
	{"movaps store", []byte{0x0F, 0x29, 0x07}, "movaps xmmword ptr [rdi], xmm0", 3, false},
	{"movdqu", []byte{0xF3, 0x0F, 0x6F, 0x01}, "movdqu xmm0, xmmword ptr [rcx]", 4, false},
	{"mulpd", []byte{0x66, 0x0F, 0x59, 0xC1}, "mulpd xmm0, xmm1", 4, false},
	{"pxor", []byte{0x66, 0x0F, 0xEF, 0xC0}, "pxor xmm0, xmm0", 4, false},
	{"paddd", []byte{0x66, 0x0F, 0xFE, 0xC1}, "paddd xmm0, xmm1", 4, false},
	{"xmm8-15", []byte{0x66, 0x45, 0x0F, 0xEF, 0xC9}, "pxor xmm9, xmm9", 5, false},
	{"cvtsi2sd", []byte{0xF2, 0x48, 0x0F, 0x2A, 0xC7}, "cvtsi2sd xmm0, rdi", 5, false},
	{"cvttsd2si", []byte{0xF2, 0x48, 0x0F, 0x2C, 0xF8}, "cvttsd2si rdi, xmm0", 5, false},
	{"ucomiss", []byte{0x0F, 0x2E, 0xC1}, "ucomiss xmm0, xmm1", 3, false},
	{"sqrtsd", []byte{0xF2, 0x0F, 0x51, 0xC1}, "sqrtsd xmm0, xmm1", 4, false},
	{"pmulld 0F38", []byte{0x66, 0x0F, 0x38, 0x40, 0xC1}, "pmulld xmm0, xmm1", 5, false},
	{"pminsd 0F38", []byte{0x66, 0x0F, 0x38, 0x39, 0xC1}, "pminsd xmm0, xmm1", 5, false},
	{"mmx unsupported", []byte{0x0F, 0xFE, 0xC1}, "", 3, false},
	{"sqrtps unsupported", []byte{0x0F, 0x51, 0xC1}, "", 3, false},

	// VEX.
	{"vaddps 2byte", []byte{0xC5, 0xF0, 0x58, 0xC2}, "vaddps xmm0, xmm1, xmm2", 4, false},
	{"vaddps ymm", []byte{0xC5, 0xF4, 0x58, 0xC2}, "vaddps ymm0, ymm1, ymm2", 4, false},
	{"vaddsd", []byte{0xC5, 0xF3, 0x58, 0xC2}, "vaddsd xmm0, xmm1, xmm2", 4, false},
	{"vmovups load", []byte{0xC5, 0xFC, 0x10, 0x07}, "vmovups ymm0, ymmword ptr [rdi]", 4, false},
	{"vmovdqa store", []byte{0xC5, 0xF9, 0x7F, 0x00}, "vmovdqa xmmword ptr [rax], xmm0", 4, false},
	{"vpxor", []byte{0xC5, 0xF1, 0xEF, 0xC2}, "vpxor xmm0, xmm1, xmm2", 4, false},
	{"vex3 vaddps", []byte{0xC4, 0xE1, 0x70, 0x58, 0xC2}, "vaddps xmm0, xmm1, xmm2", 5, false},
	{"vex3 high regs", []byte{0xC4, 0x41, 0x30, 0x58, 0xC2}, "vaddps xmm8, xmm9, xmm10", 5, false},
	{"vfmadd213ss", []byte{0xC4, 0xE2, 0x71, 0xA9, 0xC2}, "vfmadd213ss xmm0, xmm1, xmm2", 5, false},
	{"vfmadd231sd", []byte{0xC4, 0xE2, 0xF1, 0xB9, 0xC2}, "vfmadd231sd xmm0, xmm1, xmm2", 5, false},
	{"vfmadd213ps", []byte{0xC4, 0xE2, 0x71, 0xA8, 0xC2}, "vfmadd213ps xmm0, xmm1, xmm2", 5, false},
	{"vpminsd vex38", []byte{0xC4, 0xE2, 0x71, 0x39, 0xC2}, "vpminsd xmm0, xmm1, xmm2", 5, false},
	{"vzeroupper", []byte{0xC5, 0xF8, 0x77}, "", 3, false},
	{"vmovaps vvvv!=0", []byte{0xC5, 0xF0, 0x28, 0xC2}, "", 4, false},

	// EVEX: length-only.
	{"evex vaddps", []byte{0x62, 0xF1, 0x74, 0x48, 0x58, 0xC2}, "", 6, false},
	{"evex disp8", []byte{0x62, 0xF1, 0x7C, 0x48, 0x10, 0x40, 0x01}, "", 7, false},
}

func TestDecodeVectors(t *testing.T) {
	for _, v := range vectors {
		t.Run(v.name, func(t *testing.T) {
			inst, err := Decode(v.code)
			if err != nil {
				t.Fatalf("Decode(% x): %v", v.code, err)
			}
			if inst.Len != v.len {
				t.Errorf("Len = %d, want %d", inst.Len, v.len)
			}
			if inst.Branch != v.branch {
				t.Errorf("Branch = %v, want %v", inst.Branch, v.branch)
			}
			if v.want == "" {
				if inst.Supported {
					t.Errorf("decoded as supported %q, want unsupported", inst.X86.String())
				}
				return
			}
			if !inst.Supported {
				t.Fatalf("unsupported (mnemonic %q), want %q", inst.Mnemonic, v.want)
			}
			if got := inst.X86.String(); got != v.want {
				t.Errorf("decoded %q, want %q", got, v.want)
			}
		})
	}
}

func TestDecodeBranchDisplacements(t *testing.T) {
	cases := []struct {
		code []byte
		rel  int64
	}{
		{[]byte{0xEB, 0x05}, 5},
		{[]byte{0xEB, 0xFE}, -2},
		{[]byte{0x74, 0x10}, 16},
		{[]byte{0xE8, 0x00, 0x01, 0x00, 0x00}, 256},
		{[]byte{0x0F, 0x84, 0xFC, 0xFF, 0xFF, 0xFF}, -4},
	}
	for _, c := range cases {
		inst, err := Decode(c.code)
		if err != nil {
			t.Fatalf("Decode(% x): %v", c.code, err)
		}
		if !inst.Branch || !inst.RelValid {
			t.Fatalf("Decode(% x): Branch=%v RelValid=%v, want true/true", c.code, inst.Branch, inst.RelValid)
		}
		if inst.RelDisp != c.rel {
			t.Errorf("Decode(% x): RelDisp = %d, want %d", c.code, inst.RelDisp, c.rel)
		}
	}
	// Indirect and ret branches carry no displacement.
	for _, code := range [][]byte{{0xC3}, {0xFF, 0xD0}} {
		inst, err := Decode(code)
		if err != nil {
			t.Fatalf("Decode(% x): %v", code, err)
		}
		if !inst.Branch || inst.RelValid {
			t.Fatalf("Decode(% x): Branch=%v RelValid=%v, want true/false", code, inst.Branch, inst.RelValid)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		code []byte
		err  error
	}{
		{"empty", nil, ErrTruncated},
		{"prefix only", []byte{0x66}, ErrTruncated},
		{"rex only", []byte{0x48}, ErrTruncated},
		{"truncated modrm", []byte{0x01}, ErrTruncated},
		{"truncated disp", []byte{0x8B, 0x84, 0x24, 0x00}, ErrTruncated},
		{"truncated imm", []byte{0xB8, 0x01, 0x02}, ErrTruncated},
		{"invalid opcode", []byte{0x06}, ErrInvalid},
		{"invalid 0F slot", []byte{0x0F, 0x04}, ErrInvalid},
		{"vex after 66", []byte{0x66, 0xC5, 0xF0, 0x58, 0xC2}, ErrInvalid},
		{"vex after rex", []byte{0x48, 0xC5, 0xF0, 0x58, 0xC2}, ErrInvalid},
		{"vex bad map", []byte{0xC4, 0xE4, 0x70, 0x58, 0xC2}, ErrInvalid},
		{"prefix runaway", []byte{0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x90}, ErrInvalid},
		{"overlong total", []byte{0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x48, 0xB8, 1, 2, 3, 4, 5, 6, 7, 8}, ErrInvalid},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Decode(c.code)
			if !errors.Is(err, c.err) {
				t.Errorf("Decode(% x) error = %v, want %v", c.code, err, c.err)
			}
		})
	}
}

// TestDecodeTruncationProperty checks that every proper prefix of a
// decodable instruction fails with ErrTruncated — i.e. the decoder never
// reads beyond what it reports and never accepts a shorter parse.
func TestDecodeTruncationProperty(t *testing.T) {
	for _, v := range vectors {
		inst, err := Decode(v.code)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if inst.Len != len(v.code) {
			// Vectors are exact encodings; Len is checked elsewhere.
			continue
		}
		for n := 0; n < len(v.code); n++ {
			if _, err := Decode(v.code[:n]); !errors.Is(err, ErrTruncated) {
				t.Errorf("%s: Decode(prefix %d/%d) = %v, want ErrTruncated", v.name, n, len(v.code), err)
			}
		}
	}
}

// TestDecodeParserRoundTrip is the satellite property test: every
// supported decode must reparse, via the text frontend, to an equal
// instruction. It sweeps the vectors plus a systematic space of
// prefix × opcode × ModRM combinations.
func TestDecodeParserRoundTrip(t *testing.T) {
	checkRoundTrip := func(t *testing.T, code []byte, inst Inst) {
		t.Helper()
		text := inst.X86.String()
		re, err := x86.ParseInstruction(text)
		if err != nil {
			t.Errorf("decode(% x) → %q does not reparse: %v", code, text, err)
			return
		}
		if !instEqual(inst.X86, re) {
			t.Errorf("decode(% x) → %q reparses to %q (structural mismatch)", code, text, re.String())
		}
	}

	supported := 0
	for _, v := range vectors {
		inst, err := Decode(v.code)
		if err != nil || !inst.Supported {
			continue
		}
		checkRoundTrip(t, v.code, inst)
		supported++
	}

	// Systematic sweep: every one-byte and 0F opcode under a spread of
	// prefixes and ModRM/SIB shapes. Everything that decodes as
	// supported must round-trip.
	prefixes := [][]byte{
		{}, {0x66}, {0x48}, {0x4F}, {0xF3}, {0xF2},
		{0x66, 0x48}, {0xF3, 0x48}, {0xF2, 0x4C},
	}
	modrms := [][]byte{
		{0xC1},                               // reg, reg
		{0xD8},                               // reg, reg (other direction)
		{0x03},                               // [rbx]
		{0x45, 0xFC},                         // [rbp-4]
		{0x04, 0xC8},                         // [rax+rcx*8]
		{0x84, 0x24, 0x00, 0x01, 0x00, 0x00}, // [rsp+256]
		{0x0C, 0x4D, 0x08, 0x00, 0x00, 0x00}, // [rcx*2+8]
	}
	tail := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA}
	for _, pfx := range prefixes {
		for _, esc := range [][]byte{{}, {0x0F}, {0x0F, 0x38}} {
			for op := 0; op < 256; op++ {
				for _, mrm := range modrms {
					code := append(append(append(append([]byte{}, pfx...), esc...), byte(op)), mrm...)
					code = append(code, tail...)
					inst, err := Decode(code)
					if err != nil || !inst.Supported {
						continue
					}
					checkRoundTrip(t, code[:inst.Len], inst)
					supported++
				}
			}
		}
	}
	// VEX sweep.
	for _, p1 := range []byte{0xF0, 0xF1, 0xF4, 0xF8, 0xE9, 0xF2, 0xF3} {
		for op := 0; op < 256; op++ {
			for _, mrm := range modrms {
				code := append([]byte{0xC5, p1, byte(op)}, mrm...)
				code = append(code, tail...)
				inst, err := Decode(code)
				if err != nil || !inst.Supported {
					continue
				}
				checkRoundTrip(t, code[:inst.Len], inst)
				supported++
			}
			for _, p2 := range []byte{0x71, 0xF1, 0x75} {
				for _, mrm := range modrms {
					code := append([]byte{0xC4, 0xE2, p2, byte(op)}, mrm...)
					code = append(code, tail...)
					inst, err := Decode(code)
					if err != nil || !inst.Supported {
						continue
					}
					checkRoundTrip(t, code[:inst.Len], inst)
					supported++
				}
			}
		}
	}
	// The sweep must actually exercise a large supported surface; a
	// regression that silently drops decoding coverage should fail here.
	if supported < 2000 {
		t.Errorf("round-trip sweep covered only %d supported decodes, want >= 2000", supported)
	}
	t.Logf("round-trip checked %d supported decodes", supported)
}

// instEqual compares instructions structurally.
func instEqual(a, b x86.Instruction) bool {
	if a.Opcode != b.Opcode || len(a.Operands) != len(b.Operands) {
		return false
	}
	for i := range a.Operands {
		if !a.Operands[i].Equal(b.Operands[i]) {
			return false
		}
	}
	return true
}
