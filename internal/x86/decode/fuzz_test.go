package decode

import (
	"errors"
	"testing"

	"github.com/comet-explain/comet/internal/x86"
)

// FuzzDecodeX86 feeds hostile byte streams to the decoder and checks
// the safety invariants: no panic, no read past the reported length, a
// sane length, and — for every supported decode — a spec-valid
// instruction that survives a text round trip. Wired into
// `make fuzz-smoke`.
func FuzzDecodeX86(f *testing.F) {
	for _, v := range vectors {
		f.Add(v.code)
	}
	f.Add([]byte{0x62, 0xF1, 0x74, 0x48, 0x58, 0xC2})
	f.Add([]byte{0xC4, 0xE2, 0x71, 0xA9, 0xC2})
	f.Add([]byte{0xF0, 0x66, 0x48, 0x0F, 0xAF, 0x04, 0xC8})

	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrInvalid) {
				t.Fatalf("Decode(% x): unexpected error class %v", data, err)
			}
			return
		}
		if inst.Len <= 0 || inst.Len > MaxInstLen || inst.Len > len(data) {
			t.Fatalf("Decode(% x): bad length %d (input %d bytes)", data, inst.Len, len(data))
		}
		// The decode must not depend on bytes past the reported length.
		again, err := Decode(data[:inst.Len])
		if err != nil {
			t.Fatalf("Decode(% x) ok but truncation to own length %d fails: %v", data, inst.Len, err)
		}
		if again.Len != inst.Len || again.Supported != inst.Supported {
			t.Fatalf("Decode(% x): unstable under self-truncation", data)
		}
		if !inst.Supported {
			return
		}
		if err := inst.X86.Validate(); err != nil {
			t.Fatalf("Decode(% x): supported instruction fails validation: %v", data, err)
		}
		text := inst.X86.String()
		re, err := x86.ParseInstruction(text)
		if err != nil {
			t.Fatalf("Decode(% x) → %q does not reparse: %v", data, text, err)
		}
		if !instEqual(inst.X86, re) {
			t.Fatalf("Decode(% x) → %q reparses differently as %q", data, text, re.String())
		}
	})
}
