package x86

import (
	"sort"
	"strings"
	"sync"
)

// Access describes how an instruction form uses one of its operands.
type Access uint8

const (
	// AccNone means the operand is not accessed as data (unused).
	AccNone Access = 0
	// AccR means the operand value is read.
	AccR Access = 1 << 0
	// AccW means the operand is written.
	AccW Access = 1 << 1
	// AccRW means the operand is both read and written.
	AccRW Access = AccR | AccW
)

// Class groups opcodes by execution resource requirements; the performance
// tables in perf.go and the pipeline simulator key off it.
type Class int

// Instruction classes.
const (
	ClassIntALU Class = iota
	ClassIntMul
	ClassIntDiv
	ClassShift
	ClassMov
	ClassMovExt
	ClassLea
	ClassPush
	ClassPop
	ClassXchg
	ClassBitCount
	ClassVecMov
	ClassVecFPAdd
	ClassVecFPMul
	ClassVecFPDiv
	ClassVecFPSqrt
	ClassVecIntALU
	ClassVecIntMul
	ClassVecLogic
	ClassVecCmp
	ClassConvert
	ClassNop
)

// String returns a short class name for diagnostics.
func (c Class) String() string {
	names := [...]string{"int-alu", "int-mul", "int-div", "shift", "mov",
		"mov-ext", "lea", "push", "pop", "xchg", "bit-count", "vec-mov",
		"vec-fp-add", "vec-fp-mul", "vec-fp-div", "vec-fp-sqrt",
		"vec-int-alu", "vec-int-mul", "vec-logic", "vec-cmp", "convert", "nop"}
	if int(c) < len(names) {
		return names[c]
	}
	return "class(?)"
}

// OpTemplate constrains one operand slot of an instruction form.
type OpTemplate struct {
	Kinds      []OperandKind // allowed operand kinds
	Sizes      []int         // allowed widths in bits; nil means any
	Access     Access        // how the form accesses this operand
	SameSizeAs int           // index of operand that must match width, or -1
	RequireReg Reg           // if set, operand must be exactly this register
	VecOnly    bool          // register must be xmm/ymm
	GPOnly     bool          // register must be general-purpose
}

// Form is one legal operand arrangement for an opcode.
type Form struct {
	Ops []OpTemplate
	// Check optionally imposes extra constraints that templates cannot
	// express (e.g. movzx requires the source narrower than the destination).
	Check func(ops []Operand) bool
}

// Match reports whether the operand list satisfies this form.
func (f Form) Match(ops []Operand) bool {
	if len(ops) != len(f.Ops) {
		return false
	}
	memCount := 0
	for i, t := range f.Ops {
		o := ops[i]
		if !kindAllowed(t.Kinds, o.Kind) {
			return false
		}
		if o.Kind == KindMem {
			memCount++
		}
		if o.Kind == KindReg {
			if t.VecOnly && !o.Reg.IsVec() {
				return false
			}
			if t.GPOnly && !o.Reg.IsGP() {
				return false
			}
		}
		if t.Sizes != nil && !sizeAllowed(t.Sizes, o.Size) {
			return false
		}
		if t.SameSizeAs >= 0 && t.SameSizeAs < len(ops) {
			want := ops[t.SameSizeAs].Size
			if o.Kind == KindImm {
				// Immediates may be narrower than the operand they pair with.
				if o.Size > want {
					return false
				}
			} else if o.Size != want {
				return false
			}
		}
		if !t.RequireReg.IsZero() && (o.Kind != KindReg || o.Reg != t.RequireReg) {
			return false
		}
	}
	if memCount > 1 {
		return false // x86 allows at most one memory operand
	}
	if f.Check != nil && !f.Check(ops) {
		return false
	}
	return true
}

// Spec is the full description of one opcode.
type Spec struct {
	Name           string
	Class          Class
	Forms          []Form
	ImplicitReads  []RegFamily
	ImplicitWrites []RegFamily
	ReadsFlags     bool
	WritesFlags    bool
	StackRead      bool // pop-like: reads the stack slot
	StackWrite     bool // push-like: writes the stack slot
}

// MatchForm returns the first form satisfied by ops, or nil.
func (s *Spec) MatchForm(ops []Operand) *Form {
	for i := range s.Forms {
		if s.Forms[i].Match(ops) {
			return &s.Forms[i]
		}
	}
	return nil
}

func kindAllowed(kinds []OperandKind, k OperandKind) bool {
	for _, kk := range kinds {
		if kk == k {
			return true
		}
	}
	return false
}

func sizeAllowed(sizes []int, s int) bool {
	for _, ss := range sizes {
		if ss == s {
			return true
		}
	}
	return false
}

// ---- template constructors -------------------------------------------------

var (
	gpSizes    = []int{Size8, Size16, Size32, Size64}
	gpSizesW   = []int{Size16, Size32, Size64}
	vecSizes   = []int{Size128, Size256}
	xmmOnly    = []int{Size128}
	scalarSS   = []int{Size32}
	scalarSD   = []int{Size64}
	packed128  = []int{Size128}
	packedBoth = []int{Size128, Size256}
)

func tReg(acc Access, sizes []int, same int) OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindReg}, Sizes: sizes, Access: acc, SameSizeAs: same, GPOnly: true}
}

func tRM(acc Access, sizes []int, same int) OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindReg, KindMem}, Sizes: sizes, Access: acc, SameSizeAs: same, GPOnly: true}
}

func tMem(acc Access, sizes []int, same int) OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindMem}, Sizes: sizes, Access: acc, SameSizeAs: same}
}

func tImm(same int) OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindImm}, Access: AccR, SameSizeAs: same}
}

func tImm8() OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindImm}, Sizes: []int{Size8}, Access: AccR, SameSizeAs: -1}
}

func tVec(acc Access, sizes []int, same int) OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindReg}, Sizes: sizes, Access: acc, SameSizeAs: same, VecOnly: true}
}

func tVM(acc Access, regSizes, memSizes []int, same int) OpTemplate {
	// Vector reg-or-mem template. regSizes and memSizes are merged: the
	// kind check plus Form.Match size checks keep them consistent enough
	// for this subset (scalar mem widths only occur with KindMem).
	sizes := append(append([]int{}, regSizes...), memSizes...)
	return OpTemplate{Kinds: []OperandKind{KindReg, KindMem}, Sizes: sizes, Access: acc, SameSizeAs: same, VecOnly: true}
}

func tAddr() OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindAddr}, Access: AccR, SameSizeAs: -1}
}

func tCL(acc Access) OpTemplate {
	return OpTemplate{Kinds: []OperandKind{KindReg}, Sizes: []int{Size8}, Access: acc,
		SameSizeAs: -1, RequireReg: Reg{Family: FamRCX, Size: Size8}}
}

// ---- form constructors ------------------------------------------------------

// binaryGPForms returns the canonical two-operand integer forms:
// (r/m, reg), (reg, r/m), (r/m, imm), with the given destination access.
func binaryGPForms(dst Access) []Form {
	return []Form{
		{Ops: []OpTemplate{tRM(dst, gpSizes, -1), tReg(AccR, gpSizes, 0)}},
		{Ops: []OpTemplate{tReg(dst, gpSizes, -1), tRM(AccR, gpSizes, 0)}},
		{Ops: []OpTemplate{tRM(dst, gpSizes, -1), tImm(0)}},
	}
}

func unaryGPForms(acc Access) []Form {
	return []Form{{Ops: []OpTemplate{tRM(acc, gpSizes, -1)}}}
}

func shiftForms() []Form {
	return []Form{
		{Ops: []OpTemplate{tRM(AccRW, gpSizes, -1), tImm8()}},
		{Ops: []OpTemplate{tRM(AccRW, gpSizes, -1), tCL(AccR)}},
	}
}

// scalarSSEForms returns (xmm dst, xmm/mN src) for scalar FP math, where the
// memory form uses the scalar width.
func scalarSSEForms(dst Access, memSize []int) []Form {
	return []Form{
		{Ops: []OpTemplate{tVec(dst, xmmOnly, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tVec(dst, xmmOnly, -1), tMem(AccR, memSize, -1)}},
	}
}

// packedSSEForms returns (xmm dst, xmm/m128 src).
func packedSSEForms(dst Access) []Form {
	return []Form{
		{Ops: []OpTemplate{tVec(dst, xmmOnly, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tVec(dst, xmmOnly, -1), tMem(AccR, packed128, -1)}},
	}
}

// avxScalarForms returns the 3-operand scalar AVX forms
// (xmm W, xmm R, xmm/mN R).
func avxScalarForms(memSize []int) []Form {
	return []Form{
		{Ops: []OpTemplate{tVec(AccW, xmmOnly, -1), tVec(AccR, xmmOnly, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tVec(AccW, xmmOnly, -1), tVec(AccR, xmmOnly, -1), tMem(AccR, memSize, -1)}},
	}
}

// avxPackedForms returns the 3-operand packed AVX forms over xmm or ymm.
func avxPackedForms() []Form {
	return []Form{
		{Ops: []OpTemplate{tVec(AccW, vecSizes, -1), tVec(AccR, vecSizes, 0), tVec(AccR, vecSizes, 0)}},
		{Ops: []OpTemplate{tVec(AccW, vecSizes, -1), tVec(AccR, vecSizes, 0), tMem(AccR, packedBoth, 0)}},
	}
}

func vecMovForms(sizes []int) []Form {
	return []Form{
		{Ops: []OpTemplate{tVec(AccW, sizes, -1), tVec(AccR, sizes, 0)}},
		{Ops: []OpTemplate{tVec(AccW, sizes, -1), tMem(AccR, sizes, 0)}},
		{Ops: []OpTemplate{tMem(AccW, sizes, -1), tVec(AccR, sizes, 0)}},
	}
}

func scalarMovForms(memSize []int) []Form {
	return []Form{
		{Ops: []OpTemplate{tVec(AccW, xmmOnly, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tVec(AccW, xmmOnly, -1), tMem(AccR, memSize, -1)}},
		{Ops: []OpTemplate{tMem(AccW, memSize, -1), tVec(AccR, xmmOnly, -1)}},
	}
}

// ---- the opcode table -------------------------------------------------------

var specTable = buildSpecTable()

func buildSpecTable() map[string]*Spec {
	var specs []*Spec

	add := func(s *Spec) { specs = append(specs, s) }

	// Integer data movement.
	add(&Spec{Name: "mov", Class: ClassMov, Forms: []Form{
		{Ops: []OpTemplate{tRM(AccW, gpSizes, -1), tReg(AccR, gpSizes, 0)}},
		{Ops: []OpTemplate{tReg(AccW, gpSizes, -1), tRM(AccR, gpSizes, 0)}},
		{Ops: []OpTemplate{tRM(AccW, gpSizes, -1), tImm(0)}},
	}})
	extCheck := func(ops []Operand) bool { return ops[1].Size < ops[0].Size }
	add(&Spec{Name: "movzx", Class: ClassMovExt, Forms: []Form{
		{Ops: []OpTemplate{tReg(AccW, gpSizesW, -1), tRM(AccR, []int{Size8, Size16}, -1)}, Check: extCheck},
	}})
	add(&Spec{Name: "movsx", Class: ClassMovExt, Forms: []Form{
		{Ops: []OpTemplate{tReg(AccW, gpSizesW, -1), tRM(AccR, []int{Size8, Size16}, -1)}, Check: extCheck},
	}})
	add(&Spec{Name: "lea", Class: ClassLea, Forms: []Form{
		{Ops: []OpTemplate{tReg(AccW, gpSizesW, -1), tAddr()}},
	}})

	// Two-operand integer arithmetic/logic. adc/sbb additionally read flags.
	for _, name := range []string{"add", "sub", "and", "or", "xor"} {
		add(&Spec{Name: name, Class: ClassIntALU, Forms: binaryGPForms(AccRW), WritesFlags: true})
	}
	for _, name := range []string{"adc", "sbb"} {
		add(&Spec{Name: name, Class: ClassIntALU, Forms: binaryGPForms(AccRW), ReadsFlags: true, WritesFlags: true})
	}
	add(&Spec{Name: "cmp", Class: ClassIntALU, Forms: binaryGPForms(AccR), WritesFlags: true})
	add(&Spec{Name: "test", Class: ClassIntALU, WritesFlags: true, Forms: []Form{
		{Ops: []OpTemplate{tRM(AccR, gpSizes, -1), tReg(AccR, gpSizes, 0)}},
		{Ops: []OpTemplate{tRM(AccR, gpSizes, -1), tImm(0)}},
	}})

	// One-operand integer arithmetic/logic.
	for _, name := range []string{"inc", "dec", "neg"} {
		add(&Spec{Name: name, Class: ClassIntALU, Forms: unaryGPForms(AccRW), WritesFlags: true})
	}
	add(&Spec{Name: "not", Class: ClassIntALU, Forms: unaryGPForms(AccRW)})
	add(&Spec{Name: "bswap", Class: ClassIntALU, Forms: []Form{
		{Ops: []OpTemplate{tReg(AccRW, []int{Size32, Size64}, -1)}},
	}})

	// Multiplication and division.
	add(&Spec{Name: "imul", Class: ClassIntMul, WritesFlags: true, Forms: []Form{
		{Ops: []OpTemplate{tReg(AccRW, gpSizesW, -1), tRM(AccR, gpSizesW, 0)}},
		{Ops: []OpTemplate{tReg(AccW, gpSizesW, -1), tRM(AccR, gpSizesW, 0), tImm(0)}},
	}})
	add(&Spec{Name: "mul", Class: ClassIntMul, WritesFlags: true,
		ImplicitReads:  []RegFamily{FamRAX},
		ImplicitWrites: []RegFamily{FamRAX, FamRDX},
		Forms:          unaryGPForms(AccR)})
	for _, name := range []string{"div", "idiv"} {
		add(&Spec{Name: name, Class: ClassIntDiv, WritesFlags: true,
			ImplicitReads:  []RegFamily{FamRAX, FamRDX},
			ImplicitWrites: []RegFamily{FamRAX, FamRDX},
			Forms:          unaryGPForms(AccR)})
	}
	add(&Spec{Name: "cqo", Class: ClassIntALU,
		ImplicitReads: []RegFamily{FamRAX}, ImplicitWrites: []RegFamily{FamRDX},
		Forms: []Form{{Ops: nil}}})
	add(&Spec{Name: "cdq", Class: ClassIntALU,
		ImplicitReads: []RegFamily{FamRAX}, ImplicitWrites: []RegFamily{FamRDX},
		Forms: []Form{{Ops: nil}}})

	// Shifts and rotates.
	for _, name := range []string{"shl", "shr", "sar", "rol", "ror"} {
		add(&Spec{Name: name, Class: ClassShift, Forms: shiftForms(), WritesFlags: true})
	}

	// Bit counting.
	for _, name := range []string{"popcnt", "lzcnt", "tzcnt"} {
		add(&Spec{Name: name, Class: ClassBitCount, WritesFlags: true, Forms: []Form{
			{Ops: []OpTemplate{tReg(AccW, gpSizesW, -1), tRM(AccR, gpSizesW, 0)}},
		}})
	}

	// Stack operations.
	add(&Spec{Name: "push", Class: ClassPush, StackWrite: true,
		ImplicitReads: []RegFamily{FamRSP}, ImplicitWrites: []RegFamily{FamRSP},
		Forms: []Form{
			{Ops: []OpTemplate{tReg(AccR, []int{Size16, Size64}, -1)}},
			{Ops: []OpTemplate{tMem(AccR, []int{Size16, Size64}, -1)}},
			{Ops: []OpTemplate{tImm(-1)}},
		}})
	add(&Spec{Name: "pop", Class: ClassPop, StackRead: true,
		ImplicitReads: []RegFamily{FamRSP}, ImplicitWrites: []RegFamily{FamRSP},
		Forms: []Form{
			{Ops: []OpTemplate{tReg(AccW, []int{Size16, Size64}, -1)}},
			{Ops: []OpTemplate{tMem(AccW, []int{Size16, Size64}, -1)}},
		}})

	add(&Spec{Name: "xchg", Class: ClassXchg, Forms: []Form{
		{Ops: []OpTemplate{tRM(AccRW, gpSizes, -1), tReg(AccRW, gpSizes, 0)}},
	}})
	add(&Spec{Name: "nop", Class: ClassNop, Forms: []Form{{Ops: nil}}})

	// SSE scalar moves and arithmetic (ss = float32, sd = float64).
	add(&Spec{Name: "movss", Class: ClassVecMov, Forms: scalarMovForms(scalarSS)})
	add(&Spec{Name: "movsd", Class: ClassVecMov, Forms: scalarMovForms(scalarSD)})
	type vecOp struct {
		name  string
		class Class
		dst   Access
	}
	scalarOps := []vecOp{
		{"addss", ClassVecFPAdd, AccRW}, {"subss", ClassVecFPAdd, AccRW},
		{"mulss", ClassVecFPMul, AccRW}, {"divss", ClassVecFPDiv, AccRW},
		{"minss", ClassVecFPAdd, AccRW}, {"maxss", ClassVecFPAdd, AccRW},
		{"sqrtss", ClassVecFPSqrt, AccW},
	}
	for _, op := range scalarOps {
		add(&Spec{Name: op.name, Class: op.class, Forms: scalarSSEForms(op.dst, scalarSS)})
		sd := strings.TrimSuffix(op.name, "ss") + "sd"
		add(&Spec{Name: sd, Class: op.class, Forms: scalarSSEForms(op.dst, scalarSD)})
	}
	add(&Spec{Name: "ucomiss", Class: ClassVecCmp, WritesFlags: true, Forms: []Form{
		{Ops: []OpTemplate{tVec(AccR, xmmOnly, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tVec(AccR, xmmOnly, -1), tMem(AccR, scalarSS, -1)}},
	}})
	add(&Spec{Name: "ucomisd", Class: ClassVecCmp, WritesFlags: true, Forms: []Form{
		{Ops: []OpTemplate{tVec(AccR, xmmOnly, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tVec(AccR, xmmOnly, -1), tMem(AccR, scalarSD, -1)}},
	}})

	// Conversions.
	add(&Spec{Name: "cvtsi2ss", Class: ClassConvert, Forms: []Form{
		{Ops: []OpTemplate{tVec(AccRW, xmmOnly, -1), tRM(AccR, []int{Size32, Size64}, -1)}},
	}})
	add(&Spec{Name: "cvtsi2sd", Class: ClassConvert, Forms: []Form{
		{Ops: []OpTemplate{tVec(AccRW, xmmOnly, -1), tRM(AccR, []int{Size32, Size64}, -1)}},
	}})
	add(&Spec{Name: "cvttss2si", Class: ClassConvert, Forms: []Form{
		{Ops: []OpTemplate{tReg(AccW, []int{Size32, Size64}, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tReg(AccW, []int{Size32, Size64}, -1), tMem(AccR, scalarSS, -1)}},
	}})
	add(&Spec{Name: "cvttsd2si", Class: ClassConvert, Forms: []Form{
		{Ops: []OpTemplate{tReg(AccW, []int{Size32, Size64}, -1), tVec(AccR, xmmOnly, -1)}},
		{Ops: []OpTemplate{tReg(AccW, []int{Size32, Size64}, -1), tMem(AccR, scalarSD, -1)}},
	}})

	// SSE packed moves and arithmetic.
	for _, name := range []string{"movaps", "movups", "movapd", "movupd", "movdqa", "movdqu"} {
		add(&Spec{Name: name, Class: ClassVecMov, Forms: vecMovForms(packed128)})
	}
	packedOps := []vecOp{
		{"addps", ClassVecFPAdd, AccRW}, {"addpd", ClassVecFPAdd, AccRW},
		{"subps", ClassVecFPAdd, AccRW}, {"subpd", ClassVecFPAdd, AccRW},
		{"mulps", ClassVecFPMul, AccRW}, {"mulpd", ClassVecFPMul, AccRW},
		{"divps", ClassVecFPDiv, AccRW}, {"divpd", ClassVecFPDiv, AccRW},
		{"minps", ClassVecFPAdd, AccRW}, {"maxps", ClassVecFPAdd, AccRW},
	}
	for _, op := range packedOps {
		add(&Spec{Name: op.name, Class: op.class, Forms: packedSSEForms(op.dst)})
	}
	for _, name := range []string{"xorps", "xorpd", "andps", "andpd", "orps", "orpd",
		"andnps", "andnpd", "pand", "por", "pxor", "pandn"} {
		add(&Spec{Name: name, Class: ClassVecLogic, Forms: packedSSEForms(AccRW)})
	}
	// The breadth of cheap packed-integer ops matters: it keeps the
	// probability that Γ replaces a cheap vector op with an expensive one
	// (div/sqrt) realistically small, as on real x86 where hundreds of
	// single-cycle SIMD opcodes share each operand signature.
	for _, name := range []string{"paddb", "paddw", "paddd", "paddq",
		"psubb", "psubw", "psubd", "psubq",
		"pavgb", "pavgw", "pmaxsd", "pminsd", "pmaxub", "pminub",
		"pcmpeqb", "pcmpeqw", "pcmpeqd", "pcmpgtb", "pcmpgtw", "pcmpgtd",
		"punpcklbw", "punpckhbw", "punpckldq", "punpckhdq",
		"packssdw", "packuswb",
		"unpcklps", "unpckhps", "unpcklpd", "unpckhpd"} {
		add(&Spec{Name: name, Class: ClassVecIntALU, Forms: packedSSEForms(AccRW)})
	}
	for _, name := range []string{"haddps", "haddpd", "hsubps", "hsubpd", "addsubps", "addsubpd"} {
		add(&Spec{Name: name, Class: ClassVecFPAdd, Forms: packedSSEForms(AccRW)})
	}
	for _, name := range []string{"pmulld", "pmullw", "pmuludq"} {
		add(&Spec{Name: name, Class: ClassVecIntMul, Forms: packedSSEForms(AccRW)})
	}
	for _, name := range []string{"rcpss", "rsqrtss"} {
		add(&Spec{Name: name, Class: ClassVecFPMul, Forms: scalarSSEForms(AccW, scalarSS)})
	}
	for _, name := range []string{"movsldup", "movshdup"} {
		add(&Spec{Name: name, Class: ClassVecMov, Forms: packedSSEForms(AccW)})
	}

	// AVX three-operand encodings.
	for _, name := range []string{"vmovaps", "vmovups", "vmovdqa", "vmovdqu"} {
		add(&Spec{Name: name, Class: ClassVecMov, Forms: []Form{
			{Ops: []OpTemplate{tVec(AccW, vecSizes, -1), tVec(AccR, vecSizes, 0)}},
			{Ops: []OpTemplate{tVec(AccW, vecSizes, -1), tMem(AccR, packedBoth, 0)}},
			{Ops: []OpTemplate{tMem(AccW, packedBoth, -1), tVec(AccR, vecSizes, 0)}},
		}})
	}
	avxScalar := []vecOp{
		{"vaddss", ClassVecFPAdd, AccW}, {"vsubss", ClassVecFPAdd, AccW},
		{"vmulss", ClassVecFPMul, AccW}, {"vdivss", ClassVecFPDiv, AccW},
		{"vminss", ClassVecFPAdd, AccW}, {"vmaxss", ClassVecFPAdd, AccW},
		{"vsqrtss", ClassVecFPSqrt, AccW},
	}
	for _, op := range avxScalar {
		add(&Spec{Name: op.name, Class: op.class, Forms: avxScalarForms(scalarSS)})
		sd := strings.TrimSuffix(op.name, "ss") + "sd"
		add(&Spec{Name: sd, Class: op.class, Forms: avxScalarForms(scalarSD)})
	}
	// Scalar FMA family: same three-operand shape as vaddss/vmulss, with a
	// read-modify destination. Costed like a multiply.
	fmaScalarForms := func(memSize []int) []Form {
		return []Form{
			{Ops: []OpTemplate{tVec(AccRW, xmmOnly, -1), tVec(AccR, xmmOnly, -1), tVec(AccR, xmmOnly, -1)}},
			{Ops: []OpTemplate{tVec(AccRW, xmmOnly, -1), tVec(AccR, xmmOnly, -1), tMem(AccR, memSize, -1)}},
		}
	}
	for _, base := range []string{"vfmadd213", "vfmadd231", "vfmsub213", "vfnmadd213"} {
		add(&Spec{Name: base + "ss", Class: ClassVecFPMul, Forms: fmaScalarForms(scalarSS)})
		add(&Spec{Name: base + "sd", Class: ClassVecFPMul, Forms: fmaScalarForms(scalarSD)})
	}
	avxPacked := []vecOp{
		{"vaddps", ClassVecFPAdd, AccW}, {"vaddpd", ClassVecFPAdd, AccW},
		{"vsubps", ClassVecFPAdd, AccW}, {"vsubpd", ClassVecFPAdd, AccW},
		{"vmulps", ClassVecFPMul, AccW}, {"vmulpd", ClassVecFPMul, AccW},
		{"vdivps", ClassVecFPDiv, AccW}, {"vdivpd", ClassVecFPDiv, AccW},
		{"vxorps", ClassVecLogic, AccW}, {"vandps", ClassVecLogic, AccW},
		{"vorps", ClassVecLogic, AccW},
		{"vpaddd", ClassVecIntALU, AccW}, {"vpaddq", ClassVecIntALU, AccW},
		{"vpsubd", ClassVecIntALU, AccW}, {"vpavgb", ClassVecIntALU, AccW},
		{"vpminsd", ClassVecIntALU, AccW}, {"vpmaxsd", ClassVecIntALU, AccW},
		{"vpcmpeqb", ClassVecIntALU, AccW}, {"vpcmpeqd", ClassVecIntALU, AccW},
		{"vpunpckldq", ClassVecIntALU, AccW}, {"vunpcklps", ClassVecIntALU, AccW},
		{"vunpckhps", ClassVecIntALU, AccW},
		{"vhaddps", ClassVecFPAdd, AccW}, {"vaddsubps", ClassVecFPAdd, AccW},
		{"vpand", ClassVecLogic, AccW}, {"vpor", ClassVecLogic, AccW},
		{"vpxor", ClassVecLogic, AccW}, {"vandnps", ClassVecLogic, AccW},
		{"vfmadd213ps", ClassVecFPMul, AccW}, {"vfmadd231ps", ClassVecFPMul, AccW},
		{"vfmsub213ps", ClassVecFPMul, AccW},
	}
	for _, op := range avxPacked {
		add(&Spec{Name: op.name, Class: op.class, Forms: avxPackedForms()})
	}

	table := make(map[string]*Spec, len(specs))
	for _, s := range specs {
		table[s.Name] = s
	}
	return table
}

// Lookup returns the spec for an opcode mnemonic, case-insensitively.
func Lookup(opcode string) (*Spec, bool) {
	s, ok := specTable[strings.ToLower(opcode)]
	return s, ok
}

// Opcodes returns all known opcode mnemonics in sorted order.
func Opcodes() []string {
	names := make([]string, 0, len(specTable))
	for name := range specTable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ---- opcode replacement candidates -----------------------------------------

var (
	candMu    sync.Mutex
	candCache = make(map[string][]string)
)

// ReplacementCandidates returns the opcodes (other than inst's own) that
// accept inst's exact operand list, i.e. the valid vertex perturbations of
// the paper's Γ algorithm. The result is sorted and cached; callers must
// not mutate it.
func ReplacementCandidates(inst Instruction) []string {
	key := inst.shapeKey()
	candMu.Lock()
	cached, ok := candCache[key]
	candMu.Unlock()
	if !ok {
		var names []string
		for _, name := range Opcodes() {
			spec := specTable[name]
			if spec.MatchForm(inst.Operands) != nil {
				names = append(names, name)
			}
		}
		candMu.Lock()
		candCache[key] = names
		candMu.Unlock()
		cached = names
	}
	out := make([]string, 0, len(cached))
	for _, name := range cached {
		if name != strings.ToLower(inst.Opcode) {
			out = append(out, name)
		}
	}
	return out
}

// shapeKey canonicalizes the operand list for the candidate cache. It must
// capture everything Form.Match can observe: kinds, sizes, exact registers
// (for RequireReg and size-relation checks) and immediate magnitudes are
// reduced to width only.
func (inst Instruction) shapeKey() string {
	var b strings.Builder
	for _, o := range inst.Operands {
		switch o.Kind {
		case KindReg:
			b.WriteString("r:")
			b.WriteString(o.Reg.String())
		case KindMem:
			b.WriteString("m:")
		case KindImm:
			b.WriteString("i:")
		case KindAddr:
			b.WriteString("a:")
		}
		b.WriteByte(';')
		b.WriteString(itoa(o.Size))
		b.WriteByte('|')
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
