package x86

import (
	"fmt"
	"strings"
)

// OperandKind classifies an instruction operand.
type OperandKind int

const (
	// KindReg is a register operand.
	KindReg OperandKind = iota
	// KindMem is a memory operand with an explicit width ("qword ptr [...]").
	KindMem
	// KindImm is an immediate (constant) operand.
	KindImm
	// KindAddr is an effective-address operand: the bracketed operand of
	// lea. It reads the address components but never touches memory, and —
	// deliberately — no other opcode in the table accepts it, so lea has no
	// valid opcode replacement (Appendix D of the paper).
	KindAddr
)

// String returns a short human-readable kind name.
func (k OperandKind) String() string {
	switch k {
	case KindReg:
		return "reg"
	case KindMem:
		return "mem"
	case KindImm:
		return "imm"
	case KindAddr:
		return "addr"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MemRef is an x86 addressing expression base + index*scale + disp.
type MemRef struct {
	Base  Reg   // zero if absent
	Index Reg   // zero if absent
	Scale int   // 1, 2, 4 or 8; 0 when Index is absent
	Disp  int64 // signed displacement
}

// LocKey returns a canonical identity for the addressed location, at
// register-family granularity. Two memory operands are considered to alias
// exactly when their keys are equal (syntactic aliasing, as in the paper's
// multigraph construction).
func (m MemRef) LocKey() string {
	var b strings.Builder
	b.WriteByte('[')
	if !m.Base.IsZero() {
		b.WriteString(FamilyName(m.Base.Family))
	}
	if !m.Index.IsZero() {
		fmt.Fprintf(&b, "+%s*%d", FamilyName(m.Index.Family), m.Scale)
	}
	fmt.Fprintf(&b, "%+d]", m.Disp)
	return b.String()
}

// String renders the bracketed addressing expression in Intel syntax.
func (m MemRef) String() string {
	var parts []string
	if !m.Base.IsZero() {
		parts = append(parts, m.Base.String())
	}
	if !m.Index.IsZero() {
		if m.Scale > 1 {
			parts = append(parts, fmt.Sprintf("%s*%d", m.Index, m.Scale))
		} else {
			parts = append(parts, m.Index.String())
		}
	}
	expr := strings.Join(parts, " + ")
	switch {
	case m.Disp < 0:
		expr = fmt.Sprintf("%s - %d", expr, -m.Disp)
	case m.Disp > 0 && expr != "":
		expr = fmt.Sprintf("%s + %d", expr, m.Disp)
	case expr == "":
		expr = fmt.Sprintf("%d", m.Disp)
	}
	return "[" + expr + "]"
}

// Regs returns the register families the address expression reads.
func (m MemRef) Regs() []RegFamily {
	var fams []RegFamily
	if !m.Base.IsZero() {
		fams = append(fams, m.Base.Family)
	}
	if !m.Index.IsZero() {
		fams = append(fams, m.Index.Family)
	}
	return fams
}

// Operand is a single instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg    // valid when Kind == KindReg
	Mem  MemRef // valid when Kind == KindMem or KindAddr
	Imm  int64  // valid when Kind == KindImm
	Size int    // operand width in bits
}

// NewReg returns a register operand.
func NewReg(r Reg) Operand { return Operand{Kind: KindReg, Reg: r, Size: r.Size} }

// NewImm returns an immediate operand of the given width.
func NewImm(v int64, size int) Operand { return Operand{Kind: KindImm, Imm: v, Size: size} }

// FitImm returns an immediate operand at the narrowest width that can hold
// v — the same sizing rule the parser applies to immediate literals, so
// machine-code decoders that build immediates with it produce operands
// that survive a print/parse round trip unchanged.
func FitImm(v int64) Operand { return NewImm(v, immWidth(v)) }

// NewMem returns a memory operand of the given width.
func NewMem(m MemRef, size int) Operand { return Operand{Kind: KindMem, Mem: m, Size: size} }

// NewAddr returns a lea-style effective-address operand.
func NewAddr(m MemRef) Operand { return Operand{Kind: KindAddr, Mem: m, Size: Size64} }

var sizeQualifier = map[int]string{
	Size8:   "byte ptr",
	Size16:  "word ptr",
	Size32:  "dword ptr",
	Size64:  "qword ptr",
	Size128: "xmmword ptr",
	Size256: "ymmword ptr",
}

var qualifierSize = map[string]int{
	"byte":    Size8,
	"word":    Size16,
	"dword":   Size32,
	"qword":   Size64,
	"xmmword": Size128,
	"ymmword": Size256,
}

// String renders the operand in Intel syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindMem:
		q, ok := sizeQualifier[o.Size]
		if !ok {
			q = fmt.Sprintf("size%d ptr", o.Size)
		}
		return q + " " + o.Mem.String()
	case KindAddr:
		return o.Mem.String()
	}
	return "<bad operand>"
}

// Equal reports structural equality of two operands.
func (o Operand) Equal(p Operand) bool { return o == p }
