// Package x86 models the subset of the x86-64 instruction set that COMET
// perturbs and explains: general-purpose and SSE/AVX registers, operand
// kinds and sizes, an instruction specification table with per-form operand
// access information, an Intel-syntax parser and printer, and per-
// microarchitecture performance attributes consumed by the cost models.
//
// The package is self-contained (stdlib only) and deterministic; the
// instruction table is synthetic but follows the qualitative orderings
// published by uops.info and Agner Fog's tables (div is far more expensive
// than imul, which is more expensive than simple ALU ops; loads take a few
// cycles; vector divides dominate vector multiplies).
package x86

import (
	"fmt"
	"strings"
)

// RegFamily identifies an architectural register ignoring its access width:
// eax and rax belong to the same family. Data dependencies are tracked at
// family granularity, which matches how modern renamed register files (and
// the paper's multigraph) treat partial-width accesses.
type RegFamily int

// Register families. FamNone is the zero value, used for absent base/index
// registers in memory operands.
const (
	FamNone RegFamily = iota
	FamRAX
	FamRBX
	FamRCX
	FamRDX
	FamRSI
	FamRDI
	FamRBP
	FamRSP
	FamR8
	FamR9
	FamR10
	FamR11
	FamR12
	FamR13
	FamR14
	FamR15
	FamXMM0
	FamXMM1
	FamXMM2
	FamXMM3
	FamXMM4
	FamXMM5
	FamXMM6
	FamXMM7
	FamXMM8
	FamXMM9
	FamXMM10
	FamXMM11
	FamXMM12
	FamXMM13
	FamXMM14
	FamXMM15
	FamFlags // pseudo-family for RFLAGS

	numFamilies
)

// Operand and register widths, in bits.
const (
	Size8   = 8
	Size16  = 16
	Size32  = 32
	Size64  = 64
	Size128 = 128
	Size256 = 256
)

// Reg is a concrete architectural register: a family viewed at a width.
// The zero Reg (FamNone) means "no register".
type Reg struct {
	Family RegFamily
	Size   int // bits
}

// IsZero reports whether r denotes the absence of a register.
func (r Reg) IsZero() bool { return r.Family == FamNone }

// IsGP reports whether r is a general-purpose integer register.
func (r Reg) IsGP() bool { return r.Family >= FamRAX && r.Family <= FamR15 }

// IsVec reports whether r is an SSE/AVX vector register.
func (r Reg) IsVec() bool { return r.Family >= FamXMM0 && r.Family <= FamXMM15 }

var gpNames = map[RegFamily][4]string{
	// order: 64, 32, 16, 8-bit names
	FamRAX: {"rax", "eax", "ax", "al"},
	FamRBX: {"rbx", "ebx", "bx", "bl"},
	FamRCX: {"rcx", "ecx", "cx", "cl"},
	FamRDX: {"rdx", "edx", "dx", "dl"},
	FamRSI: {"rsi", "esi", "si", "sil"},
	FamRDI: {"rdi", "edi", "di", "dil"},
	FamRBP: {"rbp", "ebp", "bp", "bpl"},
	FamRSP: {"rsp", "esp", "sp", "spl"},
	FamR8:  {"r8", "r8d", "r8w", "r8b"},
	FamR9:  {"r9", "r9d", "r9w", "r9b"},
	FamR10: {"r10", "r10d", "r10w", "r10b"},
	FamR11: {"r11", "r11d", "r11w", "r11b"},
	FamR12: {"r12", "r12d", "r12w", "r12b"},
	FamR13: {"r13", "r13d", "r13w", "r13b"},
	FamR14: {"r14", "r14d", "r14w", "r14b"},
	FamR15: {"r15", "r15d", "r15w", "r15b"},
}

func sizeIndex(size int) int {
	switch size {
	case Size64:
		return 0
	case Size32:
		return 1
	case Size16:
		return 2
	case Size8:
		return 3
	}
	return -1
}

// String returns the canonical Intel-syntax name of the register
// ("rax", "eax", "xmm3", "ymm3", ...).
func (r Reg) String() string {
	switch {
	case r.IsZero():
		return "<none>"
	case r.Family == FamFlags:
		return "rflags"
	case r.IsGP():
		i := sizeIndex(r.Size)
		if i < 0 {
			return fmt.Sprintf("<bad gp size %d>", r.Size)
		}
		return gpNames[r.Family][i]
	case r.IsVec():
		n := int(r.Family - FamXMM0)
		switch r.Size {
		case Size128:
			return fmt.Sprintf("xmm%d", n)
		case Size256:
			return fmt.Sprintf("ymm%d", n)
		}
		return fmt.Sprintf("<bad vec size %d>", r.Size)
	}
	return fmt.Sprintf("<bad reg %d/%d>", r.Family, r.Size)
}

var regByName = buildRegByName()

func buildRegByName() map[string]Reg {
	m := make(map[string]Reg)
	for fam, names := range gpNames {
		for i, name := range names {
			size := []int{Size64, Size32, Size16, Size8}[i]
			m[name] = Reg{Family: fam, Size: size}
		}
	}
	for i := 0; i < 16; i++ {
		fam := FamXMM0 + RegFamily(i)
		m[fmt.Sprintf("xmm%d", i)] = Reg{Family: fam, Size: Size128}
		m[fmt.Sprintf("ymm%d", i)] = Reg{Family: fam, Size: Size256}
	}
	return m
}

// LookupReg resolves an Intel-syntax register name, case-insensitively.
func LookupReg(name string) (Reg, bool) {
	r, ok := regByName[strings.ToLower(name)]
	return r, ok
}

// GPFamilies lists the sixteen general-purpose register families in
// encoding order. RSP is included; callers that must avoid perturbing the
// stack pointer filter it out explicitly.
func GPFamilies() []RegFamily {
	fams := make([]RegFamily, 0, 16)
	for f := FamRAX; f <= FamR15; f++ {
		fams = append(fams, f)
	}
	return fams
}

// VecFamilies lists the sixteen xmm/ymm register families.
func VecFamilies() []RegFamily {
	fams := make([]RegFamily, 0, 16)
	for f := FamXMM0; f <= FamXMM15; f++ {
		fams = append(fams, f)
	}
	return fams
}

// FamilyName returns the 64-bit (or xmm) name of a family, used in
// dependency-location keys and diagnostics.
func FamilyName(f RegFamily) string {
	switch {
	case f == FamNone:
		return "<none>"
	case f == FamFlags:
		return "rflags"
	case f >= FamRAX && f <= FamR15:
		return gpNames[f][0]
	case f >= FamXMM0 && f <= FamXMM15:
		return fmt.Sprintf("xmm%d", int(f-FamXMM0))
	}
	return fmt.Sprintf("<fam %d>", int(f))
}
