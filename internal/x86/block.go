package x86

import (
	"fmt"
	"strings"
)

// Instruction is one decoded assembly instruction.
type Instruction struct {
	Opcode   string // canonical lower-case mnemonic
	Operands []Operand
}

// String renders the instruction in Intel syntax.
func (inst Instruction) String() string {
	if len(inst.Operands) == 0 {
		return inst.Opcode
	}
	parts := make([]string, len(inst.Operands))
	for i, o := range inst.Operands {
		parts[i] = o.String()
	}
	return inst.Opcode + " " + strings.Join(parts, ", ")
}

// Spec returns the instruction's opcode specification.
func (inst Instruction) Spec() (*Spec, bool) { return Lookup(inst.Opcode) }

// Form returns the matched operand form, or an error when the instruction
// is not valid under the modeled ISA subset.
func (inst Instruction) Form() (*Form, error) {
	spec, ok := inst.Spec()
	if !ok {
		return nil, fmt.Errorf("x86: unknown opcode %q", inst.Opcode)
	}
	f := spec.MatchForm(inst.Operands)
	if f == nil {
		return nil, fmt.Errorf("x86: %s: operands do not match any form of %q", inst, inst.Opcode)
	}
	return f, nil
}

// Validate checks that the instruction is well-formed.
func (inst Instruction) Validate() error {
	_, err := inst.Form()
	return err
}

// Clone returns a deep copy of the instruction.
func (inst Instruction) Clone() Instruction {
	ops := make([]Operand, len(inst.Operands))
	copy(ops, inst.Operands)
	return Instruction{Opcode: inst.Opcode, Operands: ops}
}

// BasicBlock is a straight-line sequence of instructions with no control
// flow, the unit COMET explains.
type BasicBlock struct {
	Instructions []Instruction
}

// NewBlock builds a block from instructions.
func NewBlock(insts ...Instruction) *BasicBlock {
	return &BasicBlock{Instructions: insts}
}

// Len returns the number of instructions.
func (b *BasicBlock) Len() int { return len(b.Instructions) }

// String renders the block, one instruction per line.
func (b *BasicBlock) String() string {
	var sb strings.Builder
	for i, inst := range b.Instructions {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(inst.String())
	}
	return sb.String()
}

// Validate checks every instruction in the block.
func (b *BasicBlock) Validate() error {
	if len(b.Instructions) == 0 {
		return fmt.Errorf("x86: empty basic block")
	}
	for i, inst := range b.Instructions {
		if err := inst.Validate(); err != nil {
			return fmt.Errorf("instruction %d: %w", i+1, err)
		}
	}
	return nil
}

// Clone returns a deep copy of the block.
func (b *BasicBlock) Clone() *BasicBlock {
	insts := make([]Instruction, len(b.Instructions))
	for i, inst := range b.Instructions {
		insts[i] = inst.Clone()
	}
	return &BasicBlock{Instructions: insts}
}

// Equal reports whether two blocks are structurally identical.
func (b *BasicBlock) Equal(o *BasicBlock) bool {
	if b.Len() != o.Len() {
		return false
	}
	for i := range b.Instructions {
		x, y := b.Instructions[i], o.Instructions[i]
		if x.Opcode != y.Opcode || len(x.Operands) != len(y.Operands) {
			return false
		}
		for j := range x.Operands {
			if !x.Operands[j].Equal(y.Operands[j]) {
				return false
			}
		}
	}
	return true
}
