package x86

// Arch selects a target microarchitecture for performance attributes.
type Arch int

// Supported microarchitectures (the two the paper evaluates).
const (
	Haswell Arch = iota
	Skylake
)

// String returns the common short name (HSW, SKL).
func (a Arch) String() string {
	switch a {
	case Haswell:
		return "HSW"
	case Skylake:
		return "SKL"
	}
	return "arch(?)"
}

// Arches lists the supported microarchitectures.
func Arches() []Arch { return []Arch{Haswell, Skylake} }

// PortSet is a bitmask over execution ports 0..7.
type PortSet uint8

// Port returns the set containing only the given port number.
func Port(ns ...int) PortSet {
	var s PortSet
	for _, n := range ns {
		s |= 1 << uint(n)
	}
	return s
}

// Contains reports whether port n is in the set.
func (s PortSet) Contains(n int) bool { return s&(1<<uint(n)) != 0 }

// Count returns the number of ports in the set.
func (s PortSet) Count() int {
	c := 0
	for n := 0; n < 8; n++ {
		if s.Contains(n) {
			c++
		}
	}
	return c
}

// Perf describes the execution cost of one compute micro-op.
//
// The numbers are synthetic but track the qualitative structure of the
// published uops.info / Agner Fog tables: latencies and reciprocal
// throughputs follow the ordering div ≫ sqrt > fp-mul ≥ fp-add > imul >
// shift ≥ alu ≈ mov, loads take several cycles, and divides occupy their
// port unpipelined.
type Perf struct {
	Lat         int     // result latency in cycles
	RThru       float64 // reciprocal throughput of the compute uop
	Ports       PortSet // eligible execution ports
	Unpipelined bool    // the uop occupies its port for ceil(RThru) cycles
}

// ArchParams captures frontend and memory-subsystem parameters.
type ArchParams struct {
	IssueWidth   int     // uops issued per cycle
	LoadLat      int     // L1 load-to-use latency
	LoadPorts    PortSet // ports executing load uops
	StoreDataPts PortSet // ports executing store-data uops
	StoreAddrPts PortSet // ports executing store-address uops
	NumPorts     int
}

// Params returns the frontend/memory parameters for the architecture.
func Params(a Arch) ArchParams {
	switch a {
	case Skylake:
		return ArchParams{
			IssueWidth:   4,
			LoadLat:      4,
			LoadPorts:    Port(2, 3),
			StoreDataPts: Port(4),
			StoreAddrPts: Port(2, 3, 7),
			NumPorts:     8,
		}
	default: // Haswell
		return ArchParams{
			IssueWidth:   4,
			LoadLat:      5,
			LoadPorts:    Port(2, 3),
			StoreDataPts: Port(4),
			StoreAddrPts: Port(2, 3, 7),
			NumPorts:     8,
		}
	}
}

// classPerf returns the default compute-uop cost of an instruction class.
func classPerf(a Arch, c Class) Perf {
	hsw := a == Haswell
	switch c {
	case ClassIntALU:
		return Perf{Lat: 1, RThru: 0.25, Ports: Port(0, 1, 5, 6)}
	case ClassMov:
		return Perf{Lat: 1, RThru: 0.25, Ports: Port(0, 1, 5, 6)}
	case ClassMovExt:
		return Perf{Lat: 1, RThru: 0.5, Ports: Port(0, 1, 5, 6)}
	case ClassLea:
		return Perf{Lat: 1, RThru: 0.5, Ports: Port(1, 5)}
	case ClassIntMul:
		return Perf{Lat: 3, RThru: 1, Ports: Port(1)}
	case ClassIntDiv:
		if hsw {
			return Perf{Lat: 28, RThru: 22, Ports: Port(0), Unpipelined: true}
		}
		return Perf{Lat: 24, RThru: 18, Ports: Port(0), Unpipelined: true}
	case ClassShift:
		return Perf{Lat: 1, RThru: 0.5, Ports: Port(0, 6)}
	case ClassBitCount:
		return Perf{Lat: 3, RThru: 1, Ports: Port(1)}
	case ClassPush:
		return Perf{Lat: 1, RThru: 1, Ports: Port(4)} // store-data modeled separately
	case ClassPop:
		return Perf{Lat: 1, RThru: 0.5, Ports: Port(2, 3)}
	case ClassXchg:
		return Perf{Lat: 2, RThru: 1, Ports: Port(0, 1, 5, 6)}
	case ClassVecMov:
		return Perf{Lat: 1, RThru: 0.33, Ports: Port(0, 1, 5)}
	case ClassVecFPAdd:
		if hsw {
			return Perf{Lat: 3, RThru: 1, Ports: Port(1)}
		}
		return Perf{Lat: 4, RThru: 0.5, Ports: Port(0, 1)}
	case ClassVecFPMul:
		if hsw {
			return Perf{Lat: 5, RThru: 0.5, Ports: Port(0, 1)}
		}
		return Perf{Lat: 4, RThru: 0.5, Ports: Port(0, 1)}
	case ClassVecFPDiv:
		if hsw {
			return Perf{Lat: 13, RThru: 8, Ports: Port(0), Unpipelined: true}
		}
		return Perf{Lat: 11, RThru: 5, Ports: Port(0), Unpipelined: true}
	case ClassVecFPSqrt:
		if hsw {
			return Perf{Lat: 16, RThru: 9, Ports: Port(0), Unpipelined: true}
		}
		return Perf{Lat: 13, RThru: 6, Ports: Port(0), Unpipelined: true}
	case ClassVecIntALU:
		return Perf{Lat: 1, RThru: 0.5, Ports: Port(1, 5)}
	case ClassVecIntMul:
		return Perf{Lat: 5, RThru: 1, Ports: Port(0)}
	case ClassVecLogic:
		return Perf{Lat: 1, RThru: 0.33, Ports: Port(0, 1, 5)}
	case ClassVecCmp:
		return Perf{Lat: 2, RThru: 1, Ports: Port(1)}
	case ClassConvert:
		return Perf{Lat: 5, RThru: 1, Ports: Port(1)}
	case ClassNop:
		return Perf{Lat: 0, RThru: 0.25, Ports: Port(0, 1, 5, 6)}
	}
	return Perf{Lat: 1, RThru: 1, Ports: Port(0, 1, 5, 6)}
}

// opcodePerfOverride adjusts costs for opcodes that deviate from their
// class default (narrow divides are cheaper; double-precision divides are
// slower than single-precision; packed divides slower still).
func opcodePerfOverride(a Arch, opcode string, size int, p Perf) Perf {
	hsw := a == Haswell
	switch opcode {
	case "div", "idiv":
		// Narrower divides retire faster.
		switch size {
		case Size8, Size16:
			p.Lat, p.RThru = p.Lat-8, p.RThru-8
		case Size32:
			p.Lat, p.RThru = p.Lat-4, p.RThru-6
		}
	case "divsd", "vdivsd":
		p.Lat += 3
		p.RThru += 2
	case "divpd", "vdivpd":
		p.Lat += 6
		p.RThru += 6
	case "divps", "vdivps":
		p.Lat += 2
		p.RThru += 3
	case "sqrtsd", "vsqrtsd":
		p.Lat += 4
		p.RThru += 3
	case "mov":
		// Register-to-register moves are eliminated at rename on both
		// microarchitectures; still one uop for frontend purposes.
		_ = hsw
	}
	if p.Lat < 1 && opcode != "nop" {
		p.Lat = 1
	}
	if p.RThru < 0.25 {
		p.RThru = 0.25
	}
	return p
}

// PerfOf returns the compute-uop cost of an instruction on arch a.
// The instruction must be valid.
func PerfOf(a Arch, inst Instruction) Perf {
	spec, ok := inst.Spec()
	if !ok {
		return Perf{Lat: 1, RThru: 1, Ports: Port(0)}
	}
	size := 0
	if len(inst.Operands) > 0 {
		size = inst.Operands[0].Size
	}
	p := classPerf(a, spec.Class)
	return opcodePerfOverride(a, inst.Opcode, size, p)
}

// InstThroughput returns the standalone reciprocal throughput of the
// instruction (cycles per instruction when running back-to-back with no
// dependencies), used by the crude analytical cost model C as
// cost_inst(inst). It accounts for load/store uops alongside the compute
// uop, mirroring how uops.info reports measured instruction throughputs.
func InstThroughput(a Arch, inst Instruction) float64 {
	spec, ok := inst.Spec()
	if !ok {
		return 1
	}
	p := PerfOf(a, inst)
	t := p.RThru
	loads, stores := memAccessCounts(spec, inst)
	// A load or store uop binds one of two (load) / one (store-data) ports.
	if loads > 0 && float64(loads)*0.5 > t {
		t = float64(loads) * 0.5
	}
	if stores > 0 && float64(stores) > t {
		t = float64(stores)
	}
	return t
}

// MemUops returns how many load and store micro-ops the instruction
// performs; the pipeline simulator schedules one uop per access.
func MemUops(spec *Spec, inst Instruction) (loads, stores int) {
	return memAccessCounts(spec, inst)
}

// memAccessCounts returns how many load and store micro-ops the instruction
// performs, based on its matched form and stack behaviour.
func memAccessCounts(spec *Spec, inst Instruction) (loads, stores int) {
	if spec.StackRead {
		loads++
	}
	if spec.StackWrite {
		stores++
	}
	f := spec.MatchForm(inst.Operands)
	if f == nil {
		return loads, stores
	}
	for i, t := range f.Ops {
		if i >= len(inst.Operands) || inst.Operands[i].Kind != KindMem {
			continue
		}
		if t.Access&AccR != 0 {
			loads++
		}
		if t.Access&AccW != 0 {
			stores++
		}
	}
	return loads, stores
}
