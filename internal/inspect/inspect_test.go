package inspect

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNormalizeBase(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8372":  "http://127.0.0.1:8372",
		"http://host:1/":  "http://host:1",
		" https://host ":  "https://host",
		"localhost:8372/": "http://localhost:8372",
		"":                "",
	}
	for in, want := range cases {
		if got := NormalizeBase(in); got != want {
			t.Errorf("NormalizeBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGetJSONErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/ok":
			w.Write([]byte(`{"n": 7}`))
		case "/enveloped":
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error": "tracing is disabled"}`))
		default:
			http.Error(w, "plain", http.StatusTeapot)
		}
	}))
	defer ts.Close()
	c := NewClient(0)

	var out struct {
		N int `json:"n"`
	}
	if err := c.GetJSON(ts.URL+"/ok", &out); err != nil || out.N != 7 {
		t.Fatalf("ok: %v n=%d", err, out.N)
	}
	err := c.GetJSON(ts.URL+"/enveloped", &out)
	if err == nil || !strings.Contains(err.Error(), "tracing is disabled") {
		t.Errorf("envelope error not surfaced: %v", err)
	}
	err = c.GetJSON(ts.URL+"/other", &out)
	if err == nil || !strings.Contains(err.Error(), "418") {
		t.Errorf("plain non-200 not surfaced: %v", err)
	}
}

func TestFormatUS(t *testing.T) {
	cases := map[int64]string{
		412:       "412µs",
		1500:      "1.5ms",
		412_300:   "412.3ms",
		2_500_000: "2.50s",
	}
	for us, want := range cases {
		if got := FormatUS(us); got != want {
			t.Errorf("FormatUS(%d) = %q, want %q", us, got, want)
		}
	}
}

func TestSparkline(t *testing.T) {
	nan := math.NaN()
	if got := Sparkline([]float64{0, 1, 2, 4}, 4); got != "▁▂▄█" {
		t.Errorf("ramp = %q", got)
	}
	// Gaps are spaces; everything scales to the window max.
	if got := Sparkline([]float64{nan, 4, nan, 2}, 4); got != " █ ▄" {
		t.Errorf("gaps = %q", got)
	}
	// Narrow window keeps the newest points.
	if got := Sparkline([]float64{9, 9, 0, 4}, 2); got != "▁█" {
		t.Errorf("window = %q", got)
	}
	// Short series right-aligns into the width.
	if got := Sparkline([]float64{4}, 3); got != "  █" {
		t.Errorf("pad = %q", got)
	}
	// All-zero and all-gap windows stay flat/blank, never divide by zero.
	if got := Sparkline([]float64{0, 0}, 2); got != "▁▁" {
		t.Errorf("zeros = %q", got)
	}
	if got := Sparkline([]float64{nan, nan}, 2); got != "  " {
		t.Errorf("all-gap = %q", got)
	}
	if got := Sparkline(nil, 3); got != "   " {
		t.Errorf("empty = %q", got)
	}
}
