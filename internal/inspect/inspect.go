// Package inspect is the shared client-side plumbing for the
// observability CLIs (comet-trace, comet-top): base-URL normalization,
// a JSON GET that surfaces the server's error envelope, duration
// formatting, and unicode sparklines for history series.
//
// It is deliberately tiny and stdlib-only — the CLIs stay single-file
// tools, and the server never imports it.
package inspect

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"
)

// NormalizeBase turns a user-supplied server address into a base URL:
// trailing slashes dropped, "http://" assumed when no scheme is given
// (comet-serve is plain HTTP; anything fronting it with TLS can be
// named explicitly).
func NormalizeBase(addr string) string {
	base := strings.TrimSuffix(strings.TrimSpace(addr), "/")
	if base != "" && !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return base
}

// Client fetches JSON debug views from comet-serve processes.
type Client struct {
	HTTP *http.Client
}

// NewClient returns a Client with the given timeout (0 means 15s).
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	return &Client{HTTP: &http.Client{Timeout: timeout}}
}

// GetJSON fetches url and decodes the JSON body into v. On a non-200 it
// decodes the server's {"error": "..."} envelope when present, so the
// user sees the server's own message ("tracing is disabled ...") rather
// than a bare status line.
func (c *Client) GetJSON(url string, v any) error {
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// FormatUS renders a microsecond duration the way the dashboards do:
// µs below a millisecond, one-decimal ms below a second, seconds above.
func FormatUS(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", us)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(us)/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// sparkLevels are the eight block-element heights of a sparkline cell.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as one unicode cell per point, scaled to the
// window's own max (a flat nonzero series renders low, not tall — the
// eye reads shape, not absolute height). NaN points (series gaps: idle
// ticks, pre-registration history) render as spaces. An all-gap or
// empty window is all spaces, width cells wide.
func Sparkline(values []float64, width int) string {
	if width <= 0 {
		width = len(values)
	}
	// Keep the newest points when the window is narrower than the data.
	if len(values) > width {
		values = values[len(values)-width:]
	}
	max := 0.0
	for _, v := range values {
		if !math.IsNaN(v) && v > max {
			max = v
		}
	}
	var sb strings.Builder
	for i := 0; i < width-len(values); i++ {
		sb.WriteByte(' ')
	}
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			sb.WriteByte(' ')
		case max == 0:
			sb.WriteRune(sparkLevels[0])
		default:
			idx := int(v / max * float64(len(sparkLevels)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
			sb.WriteRune(sparkLevels[idx])
		}
	}
	return sb.String()
}
