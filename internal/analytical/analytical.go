// Package analytical implements C, the paper's crude-but-interpretable
// analytical cost model (Section 6, eq. 8 and Appendix G), together with
// its closed-form ground-truth explanations GT(β) (eq. 9). C exists so
// COMET's explanation *accuracy* can be measured objectively: because C's
// bottleneck feature is known analytically, an explanation is accurate iff
// it names at least one maximum-cost feature and nothing else.
//
// Cost functions (Appendix G):
//
//	cost_inst(inst) = the instruction's standalone reciprocal throughput
//	                  (from the embedded uops.info-style table);
//	cost_dep(δij)   = cost_inst(i) + cost_inst(j) for RAW (a true
//	                  dependency serializes the pair), 0 for WAR/WAW
//	                  (resolved by register renaming);
//	cost_η(n)       = n/4 (the issue-width baseline of Abel & Reineke).
//
// C(β) = max(cost_η, max_i cost_inst, max_ij cost_dep).
package analytical

import (
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/features"
	"github.com/comet-explain/comet/internal/x86"
)

// Model is the crude interpretable cost model C for one microarchitecture.
type Model struct {
	arch    x86.Arch
	depOpts deps.Options
}

var (
	_ costmodel.Model      = (*Model)(nil)
	_ costmodel.BatchModel = (*Model)(nil)
)

// New builds C for the given microarchitecture.
func New(arch x86.Arch) *Model {
	return &Model{arch: arch}
}

// Name implements costmodel.Model.
func (m *Model) Name() string { return "C" }

// Arch implements costmodel.Model.
func (m *Model) Arch() x86.Arch { return m.arch }

// Epsilon is the ε-ball radius the paper uses when explaining C: a quarter
// unit, the smallest possible change of cost_η.
const Epsilon = 0.25

// CostInst returns cost_inst for one instruction.
func (m *Model) CostInst(inst x86.Instruction) float64 {
	return x86.InstThroughput(m.arch, inst)
}

// CostDep returns cost_dep for a dependency edge between the two
// instructions (eq. 10 in Appendix G).
func (m *Model) CostDep(h deps.Hazard, src, dst x86.Instruction) float64 {
	if h != deps.RAW {
		return 0
	}
	return m.CostInst(src) + m.CostInst(dst)
}

// CostEta returns cost_η(n) = n/4.
func (m *Model) CostEta(n int) float64 { return float64(n) / 4 }

// Predict implements costmodel.Model: C(β) per eq. 8. Invalid blocks cost 0.
func (m *Model) Predict(b *x86.BasicBlock) float64 {
	cost, _, err := m.evaluate(b)
	if err != nil {
		return 0
	}
	return cost
}

// PredictBatch implements costmodel.BatchModel by parallel fan-out; the
// model is stateless, so evaluations are independent.
func (m *Model) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	return costmodel.FanOut(blocks, 0, m.Predict)
}

// GroundTruth returns GT(β): every feature of ˆP whose cost equals C(β)
// (eq. 9). The set may contain several equally-critical features.
func (m *Model) GroundTruth(b *x86.BasicBlock) (features.Set, error) {
	_, gt, err := m.evaluate(b)
	return gt, err
}

// evaluate computes C(β) and the argmax feature set in one pass.
func (m *Model) evaluate(b *x86.BasicBlock) (float64, features.Set, error) {
	g, err := deps.Build(b, m.depOpts)
	if err != nil {
		return 0, nil, err
	}
	all := features.Extract(g)

	cost := func(f features.Feature) float64 {
		switch f.Kind {
		case features.KindInstr:
			return m.CostInst(b.Instructions[f.Index])
		case features.KindDep:
			return m.CostDep(f.Hazard, b.Instructions[f.Src], b.Instructions[f.Dst])
		case features.KindCount:
			return m.CostEta(f.Count)
		}
		return 0
	}

	max := 0.0
	for _, f := range all {
		if c := cost(f); c > max {
			max = c
		}
	}
	var gt features.Set
	const tie = 1e-9
	for _, f := range all {
		if cost(f) >= max-tie {
			gt = append(gt, f)
		}
	}
	return max, gt, nil
}

// FeatureCost exposes the per-feature cost, used by tests and the
// experiment harness to cross-check GT(β).
func (m *Model) FeatureCost(b *x86.BasicBlock, f features.Feature) float64 {
	switch f.Kind {
	case features.KindInstr:
		if f.Index < b.Len() {
			return m.CostInst(b.Instructions[f.Index])
		}
	case features.KindDep:
		if f.Src < b.Len() && f.Dst < b.Len() {
			return m.CostDep(f.Hazard, b.Instructions[f.Src], b.Instructions[f.Dst])
		}
	case features.KindCount:
		return m.CostEta(f.Count)
	}
	return 0
}
