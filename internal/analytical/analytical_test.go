package analytical

import (
	"math"
	"testing"

	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/features"
	"github.com/comet-explain/comet/internal/x86"
)

func TestCostEta(t *testing.T) {
	m := New(x86.Haswell)
	if got := m.CostEta(8); got != 2.0 {
		t.Errorf("cost_η(8) = %v, want 2 (n/4)", got)
	}
}

func TestCostDepOnlyRAWCounts(t *testing.T) {
	m := New(x86.Haswell)
	a := x86.MustParseBlock("add rax, rbx").Instructions[0]
	b := x86.MustParseBlock("imul rcx, rax").Instructions[0]
	raw := m.CostDep(deps.RAW, a, b)
	if want := m.CostInst(a) + m.CostInst(b); math.Abs(raw-want) > 1e-9 {
		t.Errorf("RAW cost = %v, want sum of instruction costs %v", raw, want)
	}
	if m.CostDep(deps.WAR, a, b) != 0 || m.CostDep(deps.WAW, a, b) != 0 {
		t.Error("WAR/WAW must cost 0 (resolved by renaming, eq. 10)")
	}
}

func TestPredictIsMaxOfFeatureCosts(t *testing.T) {
	// Block dominated by its div instruction.
	m := New(x86.Haswell)
	b := x86.MustParseBlock("mov rax, rbx\ndiv rcx\nadd rsi, rdi")
	div := b.Instructions[1]
	pred := m.Predict(b)
	if pred < m.CostInst(div) {
		t.Errorf("C(β) = %v must be ≥ cost of div %v", pred, m.CostInst(div))
	}
	// The RAW between mov (writes rax) and div (reads rax) is the actual max:
	// cost_inst(mov) + cost_inst(div).
	want := m.CostInst(b.Instructions[0]) + m.CostInst(div)
	if math.Abs(pred-want) > 1e-9 {
		t.Errorf("C(β) = %v, want RAW-dominated %v", pred, want)
	}
}

func TestPredictEtaDominatedBlock(t *testing.T) {
	// Many independent cheap instructions: cost_η = n/4 wins over
	// individual costs (0.25 each) and there are no RAW deps.
	m := New(x86.Haswell)
	b := x86.MustParseBlock(`add rax, 1
		add rbx, 1
		add rcx, 1
		add rdx, 1
		add rsi, 1
		add rdi, 1
		add r8, 1
		add r9, 1`)
	if got, want := m.Predict(b), 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("C = %v, want η-dominated %v", got, want)
	}
	gt, err := m.GroundTruth(b)
	if err != nil {
		t.Fatal(err)
	}
	if !gt.HasKind(features.KindCount) {
		t.Errorf("GT should contain η; got %v", gt)
	}
}

func TestGroundTruthDivBlock(t *testing.T) {
	m := New(x86.Haswell)
	b := x86.MustParseBlock("mov rax, rbx\ndiv rcx\nadd rsi, rdi")
	gt, err := m.GroundTruth(b)
	if err != nil {
		t.Fatal(err)
	}
	// Max cost is the RAW(1→2): it must be in GT. div alone costs less, so
	// inst2 must NOT be in GT.
	foundRAW, foundDivInst := false, false
	for _, f := range gt {
		if f.Kind == features.KindDep && f.Src == 0 && f.Dst == 1 && f.Hazard == deps.RAW {
			foundRAW = true
		}
		if f.Kind == features.KindInstr && f.Index == 1 {
			foundDivInst = true
		}
	}
	if !foundRAW {
		t.Errorf("GT missing the dominating RAW: %v", gt)
	}
	if foundDivInst {
		t.Errorf("GT should not contain the div instruction alone: %v", gt)
	}
}

func TestGroundTruthTies(t *testing.T) {
	// Two identical divs with no deps: both instruction features tie.
	m := New(x86.Haswell)
	b := x86.MustParseBlock("div rcx\nadd rbx, rsi")
	// div implicitly writes rax/rdx; add doesn't touch them → no RAW into div.
	gt, err := m.GroundTruth(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) == 0 {
		t.Fatal("empty ground truth")
	}
	max := 0.0
	for _, f := range gt {
		if c := m.FeatureCost(b, f); c > max {
			max = c
		}
	}
	for _, f := range gt {
		if math.Abs(m.FeatureCost(b, f)-max) > 1e-9 {
			t.Errorf("GT member %v does not achieve the max cost", f)
		}
	}
}

func TestGroundTruthConsistentWithPredict(t *testing.T) {
	m := New(x86.Skylake)
	blocks := []string{
		"add rcx, rax\nmov rdx, rcx\npop rbx",
		"imul rax, rbx\nimul rax, rcx",
		"mov qword ptr [rdi], rax\nmov rbx, qword ptr [rdi]",
		"vdivss xmm0, xmm1, xmm2\nvmulss xmm3, xmm0, xmm0",
	}
	for _, src := range blocks {
		b := x86.MustParseBlock(src)
		gt, err := m.GroundTruth(b)
		if err != nil {
			t.Fatal(err)
		}
		pred := m.Predict(b)
		for _, f := range gt {
			if math.Abs(m.FeatureCost(b, f)-pred) > 1e-9 {
				t.Errorf("%q: GT feature %v cost %v ≠ C(β) %v", src, f, m.FeatureCost(b, f), pred)
			}
		}
	}
}

func TestArchesDiffer(t *testing.T) {
	// The div cost differs between HSW and SKL, so C differs on div blocks.
	b := x86.MustParseBlock("div rcx")
	h := New(x86.Haswell).Predict(b)
	s := New(x86.Skylake).Predict(b)
	if h == s {
		t.Errorf("C_HSW and C_SKL should differ on div blocks, both %v", h)
	}
}

func TestPredictInvalidBlockZero(t *testing.T) {
	m := New(x86.Haswell)
	if got := m.Predict(&x86.BasicBlock{}); got != 0 {
		t.Errorf("invalid block cost = %v, want 0", got)
	}
}
