package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(64)
	for i := 0; i < 100; i++ {
		f.Record(FlightRecord{Kind: FlightRequest, Status: i})
	}
	recs, written := f.Snapshot()
	if written != 100 {
		t.Errorf("written = %d, want 100", written)
	}
	if len(recs) != 64 {
		t.Fatalf("ring holds %d records, want 64", len(recs))
	}
	// Oldest-first: the ring forgot records 0..35, keeps 36..99 in order.
	for i, r := range recs {
		if r.Status != 36+i {
			t.Fatalf("recs[%d].Status = %d, want %d (not oldest-first?)", i, r.Status, 36+i)
		}
	}
}

func TestFlightRecorderSizeFloorAndPartialRing(t *testing.T) {
	f := NewFlightRecorder(0) // sized up to the 64 minimum
	f.Record(FlightRecord{Kind: FlightJob, ID: "job-1", State: "queued"})
	f.Record(FlightRecord{Kind: FlightLease, ID: "lease-1", State: "dispatched"})
	recs, written := f.Snapshot()
	if written != 2 || len(recs) != 2 {
		t.Fatalf("written=%d len=%d, want 2 and 2", written, len(recs))
	}
	if recs[0].ID != "job-1" || recs[1].ID != "lease-1" {
		t.Errorf("partial ring out of order: %+v", recs)
	}
	if recs[0].When == 0 {
		t.Error("Record did not stamp When")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightRecord{Kind: FlightRequest}) // must not panic
	if recs, written := f.Snapshot(); recs != nil || written != 0 {
		t.Errorf("nil recorder snapshot = %v, %d", recs, written)
	}
}

// TestFlightDumpShape pins the JSON contract /debug/flight and the
// SIGQUIT handler serve: kind strings, omitempty on per-kind fields, hex
// trace IDs, and the written-vs-held drop indicator.
func TestFlightDumpShape(t *testing.T) {
	f := NewFlightRecorder(64)
	trace := NewTraceID()
	f.Record(FlightRecord{
		Kind: FlightRequest, Route: "explain", Status: 200, LatencyUS: 1234, Trace: trace,
	})
	f.Record(FlightRecord{
		Kind: FlightLease, ID: "lease-7", State: "abandoned", Spec: "uica@hsw", Err: "worker down",
	})
	f.Record(FlightRecord{Kind: FlightJob, ID: "job-3", State: "done", Spec: "uica@hsw"})

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf, "coordinator"); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 1 {
		t.Errorf("dump is %d lines, want a single JSON line (SIGQUIT output is scanned per line)", n)
	}
	var dump struct {
		Process string           `json:"process"`
		Written uint64           `json:"written"`
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, buf.String())
	}
	if dump.Process != "coordinator" || dump.Written != 3 || len(dump.Records) != 3 {
		t.Fatalf("envelope: %+v", dump)
	}

	req := dump.Records[0]
	if req["kind"] != "request" || req["route"] != "explain" || req["status"] != float64(200) {
		t.Errorf("request record: %v", req)
	}
	if req["trace_id"] != trace.String() {
		t.Errorf("trace_id = %v, want %s", req["trace_id"], trace)
	}
	if _, has := req["id"]; has {
		t.Errorf("request record leaks empty lease/job fields: %v", req)
	}

	lease := dump.Records[1]
	if lease["kind"] != "lease" || lease["state"] != "abandoned" || lease["error"] != "worker down" {
		t.Errorf("lease record: %v", lease)
	}
	if _, has := lease["trace_id"]; has {
		t.Errorf("zero trace ID must be omitted: %v", lease)
	}

	job := dump.Records[2]
	if job["kind"] != "job" || job["id"] != "job-3" || job["spec"] != "uica@hsw" {
		t.Errorf("job record: %v", job)
	}
}

// TestFlightRecordAllocFree guards the warm-path budget: recording must
// not allocate (the binary hot path's 6-alloc bench gate includes a
// flight record per request).
func TestFlightRecordAllocFree(t *testing.T) {
	f := NewFlightRecorder(128)
	rec := FlightRecord{Kind: FlightRequest, Route: "explain", Status: 200, LatencyUS: 99}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(rec)
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f times per call, want 0", allocs)
	}
}
