package obs

import (
	"strings"
	"testing"
	"time"
)

func fedSpan(id, parent, name string, start time.Time, durUS int64) SpanRecord {
	return SpanRecord{
		TraceID: "t0", SpanID: id, ParentID: parent, Name: name,
		Start: start, DurationUS: durUS,
	}
}

func TestMergeSpansDedupesAndOrders(t *testing.T) {
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	coord := []SpanRecord{
		fedSpan("aa", "", "http.corpus", base, 5000),
		fedSpan("bb", "aa", "job.run", base.Add(time.Millisecond), 4000),
	}
	worker := []SpanRecord{
		fedSpan("cc", "bb", "svc.shard", base.Add(2*time.Millisecond), 1000),
		// Straggler re-dispatch: the same span reported twice; first
		// occurrence (from coord's group) must win.
		{TraceID: "t0", SpanID: "bb", Name: "job.run.DUPLICATE", Start: base},
		{TraceID: "t0", SpanID: "", Name: "empty-id-dropped", Start: base},
	}
	merged := MergeSpans(coord, worker)
	if len(merged) != 3 {
		t.Fatalf("merged %d spans, want 3: %+v", len(merged), merged)
	}
	var names []string
	for _, sp := range merged {
		names = append(names, sp.Name)
	}
	want := []string{"http.corpus", "job.run", "svc.shard"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("merged order %v, want %v", names, want)
		}
	}
}

func TestMergeSpansTieBreaksBySpanID(t *testing.T) {
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	merged := MergeSpans([]SpanRecord{
		fedSpan("zz", "", "late-id", base, 10),
		fedSpan("aa", "", "early-id", base, 10),
	})
	if merged[0].SpanID != "aa" || merged[1].SpanID != "zz" {
		t.Errorf("equal-start spans not ordered by span ID: %+v", merged)
	}
}

func TestWriteTreeRendersHierarchyAndAttrs(t *testing.T) {
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	root := fedSpan("aa", "", "http.corpus", base, 4000)
	root.Process = "coordinator"
	child := fedSpan("bb", "aa", "job.run", base.Add(time.Millisecond), 3000)
	child.Attrs = map[string]string{"job_id": "job-1", "blocks": "8"}
	grand := fedSpan("cc", "bb", "svc.shard", base.Add(2*time.Millisecond), 1000)
	grand.Process = "http://127.0.0.1:9999"
	orphan := fedSpan("dd", "gone", "core.search", base.Add(time.Millisecond), 500)

	var b strings.Builder
	WriteTree(&b, MergeSpans([]SpanRecord{root, child, grand, orphan}), 20)
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "http.corpus") {
		t.Errorf("root not first:\n%s", out)
	}
	if !strings.Contains(lines[0], "process=coordinator") {
		t.Errorf("process label missing from root line:\n%s", out)
	}
	// Children indent two spaces per depth.
	childLine, grandLine := "", ""
	for _, l := range lines {
		if strings.Contains(l, "job.run") {
			childLine = l
		}
		if strings.Contains(l, "svc.shard") {
			grandLine = l
		}
	}
	if !strings.HasPrefix(childLine, "  job.run") {
		t.Errorf("child not indented once: %q", childLine)
	}
	if !strings.HasPrefix(grandLine, "    svc.shard") {
		t.Errorf("grandchild not indented twice: %q", grandLine)
	}
	// Attrs render sorted by key.
	if b := strings.Index(childLine, "blocks=8"); b < 0 || b > strings.Index(childLine, "job_id=job-1") {
		t.Errorf("attrs missing or unsorted: %q", childLine)
	}
	// An orphan (parent aged out) renders as an extra root, not vanishes.
	orphanLine := ""
	for _, l := range lines {
		if strings.Contains(l, "core.search") {
			orphanLine = l
		}
	}
	if !strings.HasPrefix(orphanLine, "core.search") {
		t.Errorf("orphan span not rendered as a root: %q", orphanLine)
	}
	// Every line carries a wall-time bar.
	for _, l := range lines {
		if !strings.Contains(l, "▐") || !strings.Contains(l, "▌") {
			t.Errorf("line missing time bar: %q", l)
		}
	}
}

func TestWriteTreeEmptyAndZeroDuration(t *testing.T) {
	var b strings.Builder
	WriteTree(&b, nil, 30)
	if b.Len() != 0 {
		t.Errorf("empty span set rendered output: %q", b.String())
	}
	// All spans at the same instant with zero duration must not divide by
	// zero and still show one visible bar cell.
	base := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	WriteTree(&b, []SpanRecord{fedSpan("aa", "", "instant", base, 0)}, 10)
	if !strings.Contains(b.String(), "█") {
		t.Errorf("zero-duration span has no visible bar: %q", b.String())
	}
}

func TestFormatDuration(t *testing.T) {
	for _, tc := range []struct {
		us   int64
		want string
	}{
		{5, "5µs"},
		{999, "999µs"},
		{1500, "1.5ms"},
		{2_340_000, "2.34s"},
	} {
		if got := formatDuration(tc.us); got != tc.want {
			t.Errorf("formatDuration(%d) = %q, want %q", tc.us, got, tc.want)
		}
	}
}
