package obs

import (
	"context"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Tracer mints and records spans. Sampling is decided once per trace,
// deterministically from the trace ID, so every process in a cluster
// agrees on whether a trace is recorded without coordinating: a sampled
// coordinator trace is sampled on every worker it touches.
type Tracer struct {
	ring *Ring
	// sampleN is the hot-route sampling rate: 0 disables tracing
	// entirely, 1 records every trace, N records roughly one in N.
	// Routes that matter individually (jobs, shards, cluster ops) force
	// sampling regardless.
	sampleN uint64
}

// NewTracer builds a tracer recording finished spans into a ring of
// ringSize spans (minimum 64), sampling one in sampleN hot-route traces.
func NewTracer(ringSize int, sampleN uint64) *Tracer {
	if ringSize < 64 {
		ringSize = 64
	}
	return &Tracer{ring: newRing(ringSize), sampleN: sampleN}
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil && t.sampleN > 0 }

// Ring exposes the span ring for the /debug/traces handler.
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// sampled is the deterministic per-trace sampling decision.
func (t *Tracer) sampled(id TraceID) bool {
	if t == nil || t.sampleN == 0 {
		return false
	}
	if t.sampleN == 1 {
		return true
	}
	return binary.LittleEndian.Uint64(id[8:])%t.sampleN == 0
}

// StartRoot begins the root span of a request. parent is the parsed
// incoming traceparent (zero when the request starts a new trace); force
// records the trace regardless of the sampling rate (debug endpoints,
// ?profile=1, job submissions). The returned trace ID is valid even when
// the trace is unsampled — the X-Comet-Trace-Id response header always
// carries it — and the returned span is nil (and ctx untouched, costing
// nothing) for unsampled traces.
func (t *Tracer) StartRoot(ctx context.Context, name string, parent SpanContext, force bool) (context.Context, *Span, TraceID) {
	if t == nil || t.sampleN == 0 {
		return ctx, nil, TraceID{}
	}
	var trace TraceID
	var parentID SpanID
	var record bool
	if !parent.IsZero() {
		trace, parentID = parent.Trace, parent.Span
		record = parent.Sampled || force
	} else {
		trace = NewTraceID()
		record = force || t.sampled(trace)
	}
	if !record {
		return ctx, nil, trace
	}
	s := &Span{
		tracer:  t,
		trace:   trace,
		id:      NewSpanID(),
		parent:  parentID,
		name:    name,
		start:   time.Now(),
		sampled: true,
	}
	return ContextWithSpan(ctx, s), s, trace
}

// Resume begins a span parented on a stored or remote span context — the
// async half of a trace: a queued corpus job resuming after its accepting
// request finished, or a worker lease carrying the coordinator's span.
// Returns (ctx, nil) when parent is unsampled or zero.
func (t *Tracer) Resume(ctx context.Context, name string, parent SpanContext) (context.Context, *Span) {
	if t == nil || t.sampleN == 0 || parent.IsZero() || !parent.Sampled {
		return ctx, nil
	}
	s := &Span{
		tracer:  t,
		trace:   parent.Trace,
		id:      NewSpanID(),
		parent:  parent.Span,
		name:    name,
		start:   time.Now(),
		sampled: true,
	}
	return ContextWithSpan(ctx, s), s
}

// StartSpan begins a child of the span active in ctx. When ctx carries no
// sampled span this is two pointer loads and returns (ctx, nil): stage
// spans in the core engine cost nothing for unsampled requests. A child
// of a buffered span is allocated from the same buffer, so outlier
// retention captures the full stage tree.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	if parent.buf != nil {
		s := parent.buf.startSpan(parent.tracer, parent.trace, parent.id, name, parent.sampled)
		return ContextWithSpan(ctx, s), s
	}
	s := &Span{
		tracer:  parent.tracer,
		trace:   parent.trace,
		id:      NewSpanID(),
		parent:  parent.id,
		name:    name,
		start:   time.Now(),
		sampled: true,
	}
	return ContextWithSpan(ctx, s), s
}

// Span is one recorded operation. Attributes are set by the goroutine
// that owns the span; End publishes it to the tracer's ring — or, for a
// buffered span (outlier retention), marks it finished in its SpanBuffer
// for the commit decision at request end. All methods are nil-safe so
// call sites never branch on sampling.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	// sampled is the head-sampling decision the span propagates. Ring
	// spans are sampled by definition; buffered spans exist regardless of
	// sampling and must not upgrade downstream hops.
	sampled bool
	// buf, when non-nil, is the SpanBuffer this span lives in; bufGen is
	// the buffer generation at allocation, so writes after the buffer was
	// recycled become no-ops instead of corrupting the slot's next life.
	buf    *SpanBuffer
	bufGen uint64

	mu    sync.Mutex
	attrs []attr
	ended bool
	end   time.Time // buffered spans: set by End, read at commit
}

type attr struct{ key, value string }

// expired reports whether a buffered span outlived its buffer.
func (s *Span) expired() bool {
	return s.buf != nil && s.buf.gen.Load() != s.bufGen
}

// Context returns the span's propagation fragment, carrying the trace's
// head-sampling decision.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id, Sampled: s.sampled}
}

// TraceID returns the span's trace ID, or the zero ID for a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// Set attaches a string attribute.
func (s *Span) Set(key, value string) {
	if s == nil || s.expired() {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attr{key, value})
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	s.Set(key, strconv.FormatInt(v, 10))
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	s.Set(key, strconv.FormatBool(v))
}

// SetErr attaches err as the span's "error" attribute when non-nil.
func (s *Span) SetErr(err error) {
	if s == nil || err == nil {
		return
	}
	s.Set("error", err.Error())
}

// End finishes the span. A ring span publishes to the tracer's ring; a
// buffered span just records its end time — whether it ever becomes a
// SpanRecord is decided when its buffer commits. Safe to call more than
// once; only the first call records.
func (s *Span) End() {
	if s == nil || s.expired() {
		return
	}
	end := time.Now()
	if s.buf != nil {
		s.mu.Lock()
		if !s.ended {
			s.ended = true
			s.end = end
		}
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.key] = a.value
		}
	}
	s.mu.Unlock()
	s.tracer.ring.add(SpanRecord{
		TraceID:    s.trace.String(),
		SpanID:     s.id.String(),
		ParentID:   parentString(s.parent),
		Name:       s.name,
		Start:      s.start,
		DurationUS: end.Sub(s.start).Microseconds(),
		Attrs:      attrs,
	})
}

// record converts a buffered span to its SpanRecord at commit time. A
// span still open is reported with its duration up to now.
func (s *Span) record(now time.Time) SpanRecord {
	s.mu.Lock()
	end := s.end
	if !s.ended {
		end = now
	}
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.key] = a.value
		}
	}
	s.mu.Unlock()
	return SpanRecord{
		TraceID:    s.trace.String(),
		SpanID:     s.id.String(),
		ParentID:   parentString(s.parent),
		Name:       s.name,
		Start:      s.start,
		DurationUS: end.Sub(s.start).Microseconds(),
		Attrs:      attrs,
	}
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

// SpanRecord is a finished span as served by GET /debug/traces.
type SpanRecord struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	// Process labels which process recorded the span in a federated
	// (cross-process) trace view; empty in a single process's own ring.
	Process string `json:"process,omitempty"`
}

// TraceSummary is one trace in the GET /debug/traces listing.
type TraceSummary struct {
	TraceID string    `json:"trace_id"`
	Root    string    `json:"root"` // name of the oldest span (the best root guess in a ring)
	Spans   int       `json:"spans"`
	Start   time.Time `json:"start"`
	// DurationUS covers first span start to last span end — wall clock of
	// everything the ring still holds for this trace.
	DurationUS int64 `json:"duration_us"`
}

// Ring is a bounded buffer of finished spans. Old spans are overwritten;
// a trace that outlives the ring simply loses its oldest spans.
type Ring struct {
	mu   sync.Mutex
	buf  []SpanRecord
	next int // write cursor
	full bool
}

func newRing(size int) *Ring {
	return &Ring{buf: make([]SpanRecord, size)}
}

func (r *Ring) add(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// snapshot returns the ring contents oldest-first.
func (r *Ring) snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]SpanRecord(nil), r.buf[:r.next]...)
	}
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Traces lists the traces currently in the ring, most recent first,
// capped at limit (0 means no cap).
func (r *Ring) Traces(limit int) []TraceSummary {
	spans := r.snapshot()
	byTrace := make(map[string]*TraceSummary)
	lastEnd := make(map[string]time.Time)
	var order []string // trace IDs by first (oldest) appearance
	for _, sp := range spans {
		end := sp.Start.Add(time.Duration(sp.DurationUS) * time.Microsecond)
		ts, ok := byTrace[sp.TraceID]
		if !ok {
			ts = &TraceSummary{TraceID: sp.TraceID, Root: sp.Name, Start: sp.Start}
			byTrace[sp.TraceID] = ts
			order = append(order, sp.TraceID)
		}
		ts.Spans++
		if sp.Start.Before(ts.Start) {
			ts.Start, ts.Root = sp.Start, sp.Name
		}
		if end.After(lastEnd[sp.TraceID]) {
			lastEnd[sp.TraceID] = end
		}
	}
	out := make([]TraceSummary, 0, len(byTrace))
	for i := len(order) - 1; i >= 0; i-- { // most recent trace first
		ts := *byTrace[order[i]]
		ts.DurationUS = lastEnd[ts.TraceID].Sub(ts.Start).Microseconds()
		out = append(out, ts)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	return out
}

// Trace returns every span the ring holds for one trace ID, oldest
// first, with ties broken by span ID for deterministic output.
func (r *Ring) Trace(id string) []SpanRecord {
	var out []SpanRecord
	for _, sp := range r.snapshot() {
		if sp.TraceID == id {
			out = append(out, sp)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}
