package obs

// Telemetry history: a background sampler that snapshots live counters
// and gauges into fixed-size per-series rings, so /metrics stops being
// point-in-time — a traffic spike, a cache-hit collapse, or a latency
// regression is visible for the retention window even when no external
// scraper was attached. Storage is allocation-bounded: every series owns
// one []float64 ring sized at construction; a sample writes one slot per
// series and allocates nothing.
//
// Three series kinds cover everything the service exposes:
//
//   - gauge: the reader's value is stored as-is (queue depth, goroutines).
//   - rate: the reader returns a monotonic counter; the stored point is
//     the per-second rate over the tick, computed server-side so clients
//     never see raw counters. A counter reset (restart of the underlying
//     structure) yields the new count over one tick, not a negative rate.
//   - value: the reader returns (value, ok); !ok stores a gap (NaN,
//     serialized as null) — per-tick quantiles and hit rates are undefined
//     on ticks with no traffic, and the history says so instead of lying
//     with a zero.

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// SeriesKind classifies how a history series' points were derived.
type SeriesKind string

const (
	SeriesGauge SeriesKind = "gauge"
	SeriesRate  SeriesKind = "rate"
	SeriesValue SeriesKind = "value"
)

// History holds the per-series rings and the sampling loop. Construct
// with NewHistory, register series, then Start the background sampler
// (or call Sample directly — tests and single-shot tools do).
type History struct {
	mu       sync.Mutex
	interval time.Duration
	size     int
	samples  uint64 // total ticks ever taken
	series   map[string]*histSeries

	// BeforeSample, when set, runs at the start of every Sample, outside
	// the history lock — the hook where dynamic series (per model spec,
	// per tenant) are registered as they appear. Set it before Start.
	BeforeSample func()

	started  bool
	stop     chan struct{}
	stopOnce sync.Once
}

type histSeries struct {
	name    string
	kind    SeriesKind
	read    func() float64         // gauge and rate kinds
	value   func() (float64, bool) // value kind
	prev    float64                // last raw counter value (rate kind)
	hasPrev bool
	points  []float64 // ring, NaN where never sampled
}

// NewHistory builds a history retaining size samples per series (minimum
// 16) at the given interval (minimum 1ms; the interval is also the rate
// denominator, so it must reflect the real cadence of Sample calls).
func NewHistory(size int, interval time.Duration) *History {
	if size < 16 {
		size = 16
	}
	if interval < time.Millisecond {
		interval = time.Second
	}
	return &History{
		interval: interval,
		size:     size,
		series:   make(map[string]*histSeries),
		stop:     make(chan struct{}),
	}
}

// Interval reports the sampling cadence.
func (h *History) Interval() time.Duration { return h.interval }

// Gauge registers a series storing read() as-is each tick. Registering a
// name twice is a no-op (the first registration wins), so dynamic
// registration hooks can re-offer known series every tick.
func (h *History) Gauge(name string, read func() float64) {
	h.register(&histSeries{name: name, kind: SeriesGauge, read: read})
}

// Rate registers a series over a monotonic counter: each tick stores
// (current − previous) / interval. The first tick after registration has
// no baseline and stores a gap; a counter reset stores current/interval.
func (h *History) Rate(name string, read func() float64) {
	h.register(&histSeries{name: name, kind: SeriesRate, read: read})
}

// Value registers a series whose reader computes the point itself
// (per-tick quantiles, hit ratios); !ok stores a gap.
func (h *History) Value(name string, read func() (float64, bool)) {
	h.register(&histSeries{name: name, kind: SeriesValue, value: read})
}

func (h *History) register(s *histSeries) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.series[s.name]; ok {
		return
	}
	s.points = make([]float64, h.size)
	for i := range s.points {
		s.points[i] = math.NaN()
	}
	h.series[s.name] = s
}

// Sample takes one synchronous sample of every series. The background
// loop calls it each tick; tests and snapshot tools call it directly.
func (h *History) Sample() {
	if h == nil {
		return
	}
	if fn := h.BeforeSample; fn != nil {
		fn() // outside the lock: the hook registers series
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	slot := int(h.samples % uint64(h.size))
	secs := h.interval.Seconds()
	for _, s := range h.series {
		s.points[slot] = s.sample(secs)
	}
	h.samples++
}

func (s *histSeries) sample(intervalSecs float64) float64 {
	switch s.kind {
	case SeriesGauge:
		return s.read()
	case SeriesRate:
		raw := s.read()
		prev, had := s.prev, s.hasPrev
		s.prev, s.hasPrev = raw, true
		if !had {
			return math.NaN()
		}
		delta := raw - prev
		if delta < 0 {
			// Counter reset: the new count is everything we know about
			// this tick. Never emit a negative rate.
			delta = raw
		}
		return delta / intervalSecs
	case SeriesValue:
		v, ok := s.value()
		if !ok {
			return math.NaN()
		}
		return v
	}
	return math.NaN()
}

// Start launches the background sampling goroutine. Idempotent; pair
// with Stop.
func (h *History) Start() {
	h.mu.Lock()
	if h.started {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()
	go func() {
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Sample()
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop terminates the background sampler. Safe to call more than once,
// and before Start.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
}

// Point is one history sample; NaN marshals as JSON null (a gap), since
// NaN is not representable in JSON.
type Point float64

// MarshalJSON renders NaN/±Inf as null.
func (p Point) MarshalJSON() ([]byte, error) {
	v := float64(p)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts null as NaN.
func (p *Point) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*p = Point(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return err
	}
	*p = Point(v)
	return nil
}

// Points is a series' sample window, oldest first.
type Points []Point

// HistorySeries is one series in a HistoryDump.
type HistorySeries struct {
	Name string     `json:"name"`
	Kind SeriesKind `json:"kind"`
	// Last is the most recent point (null when the series has no samples
	// yet or the last tick was a gap).
	Last   Point  `json:"last"`
	Points Points `json:"points"`
}

// HistoryDump is the JSON document served by GET /debug/history: every
// series' retained window, oldest point first, all windows aligned on
// the same ticks.
type HistoryDump struct {
	// Process labels the sampled process in federated views.
	Process string `json:"process,omitempty"`
	// IntervalMS is the tick cadence; point i+1 was taken IntervalMS
	// after point i.
	IntervalMS int64 `json:"interval_ms"`
	// Retention is the ring size: the maximum points a series holds.
	Retention int `json:"retention"`
	// Samples is the total ticks ever taken; when it exceeds the window
	// length the ring has forgotten the difference.
	Samples uint64          `json:"samples"`
	Now     time.Time       `json:"now"`
	Series  []HistorySeries `json:"series"`
}

// Dump snapshots every series, names sorted, points oldest first.
func (h *History) Dump(process string) HistoryDump {
	out := HistoryDump{Process: process, Now: time.Now().UTC()}
	if h == nil {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out.IntervalMS = h.interval.Milliseconds()
	out.Retention = h.size
	out.Samples = h.samples
	names := make([]string, 0, len(h.series))
	for name := range h.series {
		names = append(names, name)
	}
	sort.Strings(names)
	n := h.size
	if h.samples < uint64(n) {
		n = int(h.samples)
	}
	out.Series = make([]HistorySeries, 0, len(names))
	for _, name := range names {
		s := h.series[name]
		pts := make(Points, n)
		for i := 0; i < n; i++ {
			tick := h.samples - uint64(n) + uint64(i)
			pts[i] = Point(s.points[tick%uint64(h.size)])
		}
		last := Point(math.NaN())
		if n > 0 {
			last = pts[n-1]
		}
		out.Series = append(out.Series, HistorySeries{
			Name: name, Kind: s.kind, Last: last, Points: pts,
		})
	}
	return out
}
