package obs

// Trace federation helpers: merging the span sets that a coordinator and
// its workers each hold for one trace ID into a single parent-linked
// tree, and rendering that tree for humans (cmd/comet-trace, and tests).
// Spans already cross processes correctly — every hop propagates the W3C
// traceparent, so a worker's root span carries the coordinator's span as
// its parent — federation is just collection, dedup, and ordering.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// MergeSpans merges span sets collected from several processes for the
// same trace: duplicates (by span ID — straggler re-dispatch can record
// one lease twice) keep the first occurrence, and the result is ordered
// by start time with span-ID tie-breaks, the same order a single ring
// would serve.
func MergeSpans(groups ...[]SpanRecord) []SpanRecord {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]SpanRecord, 0, total)
	seen := make(map[string]bool, total)
	for _, g := range groups {
		for _, sp := range g {
			if sp.SpanID == "" || seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			out = append(out, sp)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// WriteTree renders spans as an indented tree with wall-time bars:
//
//	http.corpus                      2.1ms ▐█────────────────────────────▌ process=coordinator status=202
//	  job.run                      401.3ms ▐─████████████████████████████▌ job_id=job-..-1 state=done
//	    cluster.lease              120.0ms ▐─███████──────────────────────▌ worker=http://127.0.0.1:401
//
// Parentage follows ParentID; spans whose parent is missing from the set
// (aged out of a ring, or the remote process was unreachable) render as
// additional roots. width is the bar width in cells (0 = 30). Attrs
// render sorted by key, so per-explanation profile stages attached as
// span attributes (setup_us, search_us, ...) appear inline.
func WriteTree(w io.Writer, spans []SpanRecord, width int) {
	if len(spans) == 0 {
		return
	}
	if width <= 0 {
		width = 30
	}
	children := make(map[string][]int, len(spans))
	byID := make(map[string]bool, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = true
	}
	var roots []int
	for i, sp := range spans {
		if sp.ParentID != "" && byID[sp.ParentID] {
			children[sp.ParentID] = append(children[sp.ParentID], i)
		} else {
			roots = append(roots, i)
		}
	}

	start := spans[0].Start
	end := spans[0].Start
	for _, sp := range spans {
		if sp.Start.Before(start) {
			start = sp.Start
		}
		if e := spanEnd(sp); e.After(end) {
			end = e
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		total = time.Microsecond
	}

	nameWidth := 0
	var measure func(idx, depth int)
	measure = func(idx, depth int) {
		if n := 2*depth + len(spans[idx].Name); n > nameWidth {
			nameWidth = n
		}
		for _, c := range children[spans[idx].SpanID] {
			measure(c, depth+1)
		}
	}
	for _, r := range roots {
		measure(r, 0)
	}

	var render func(idx, depth int)
	render = func(idx, depth int) {
		sp := spans[idx]
		name := strings.Repeat("  ", depth) + sp.Name
		bar := timeBar(sp, start, total, width)
		fmt.Fprintf(w, "%-*s %10s ▐%s▌%s\n",
			nameWidth, name, formatDuration(sp.DurationUS), bar, attrSuffix(sp))
		for _, c := range children[sp.SpanID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
}

func spanEnd(sp SpanRecord) time.Time {
	return sp.Start.Add(time.Duration(sp.DurationUS) * time.Microsecond)
}

// timeBar places the span's wall time on a fixed-width track spanning
// the whole trace.
func timeBar(sp SpanRecord, start time.Time, total time.Duration, width int) string {
	from := int(int64(width) * int64(sp.Start.Sub(start)) / int64(total))
	to := int(int64(width) * int64(spanEnd(sp).Sub(start)) / int64(total))
	if from >= width {
		from = width - 1
	}
	if to <= from {
		to = from + 1 // every span gets at least one visible cell
	}
	if to > width {
		to = width
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		if i >= from && i < to {
			b.WriteRune('█')
		} else {
			b.WriteRune('─')
		}
	}
	return b.String()
}

// attrSuffix renders " process=... k=v ..." — the process label first,
// then attrs sorted by key.
func attrSuffix(sp SpanRecord) string {
	if sp.Process == "" && len(sp.Attrs) == 0 {
		return ""
	}
	var b strings.Builder
	if sp.Process != "" {
		fmt.Fprintf(&b, " process=%s", sp.Process)
	}
	keys := make([]string, 0, len(sp.Attrs))
	for k := range sp.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := sp.Attrs[k]
		if strings.ContainsAny(v, " \t\n\"") || v == "" {
			v = fmt.Sprintf("%q", v)
		}
		fmt.Fprintf(&b, " %s=%s", k, v)
	}
	return b.String()
}

// formatDuration renders microseconds human-first (µs/ms/s) in 10 cells.
func formatDuration(us int64) string {
	switch {
	case us < 1000:
		return fmt.Sprintf("%dµs", us)
	case us < 1_000_000:
		return fmt.Sprintf("%.1fms", float64(us)/1000)
	default:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	}
}
