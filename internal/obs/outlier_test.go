package obs

import (
	"context"
	"testing"
	"time"
)

// TestSpanBufferCommit: a buffered root with children converts to records
// preserving the trace topology and attributes, only at commit time.
func TestSpanBufferCommit(t *testing.T) {
	tr := NewTracer(64, 1<<30) // sampling effectively never fires
	buf := GetSpanBuffer()
	defer PutSpanBuffer(buf)

	ctx, root, trace := tr.StartRootBuffered(context.Background(), "GET /v1/explain", SpanContext{}, buf)
	if root == nil {
		t.Fatal("buffered root must be non-nil even when unsampled")
	}
	if trace.IsZero() {
		t.Fatal("buffered root must mint a trace ID")
	}
	if buf.Sampled() {
		t.Fatal("1-in-2^30 sampling should not have sampled this trace")
	}
	root.Set("http.route", "explain")

	cctx, child := StartSpan(ctx, "stage.predict")
	if child == nil {
		t.Fatal("child of a buffered span must be buffered, not dropped")
	}
	if child.Context().Trace != trace {
		t.Fatal("child must share the root's trace")
	}
	if child.Context().Sampled {
		t.Fatal("buffered child must propagate the real (unsampled) head decision")
	}
	_, grand := StartSpan(cctx, "stage.score")
	grand.Set("k", "v")
	grand.End()
	child.End()
	root.End()

	recs := buf.Records(time.Now())
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Name != "GET /v1/explain" || recs[0].ParentID != "" {
		t.Fatalf("root record: %+v", recs[0])
	}
	if recs[0].Attrs["http.route"] != "explain" {
		t.Fatalf("root attrs: %+v", recs[0].Attrs)
	}
	if recs[1].Name != "stage.predict" || recs[1].ParentID != recs[0].SpanID {
		t.Fatalf("child record: %+v", recs[1])
	}
	if recs[2].Name != "stage.score" || recs[2].ParentID != recs[1].SpanID || recs[2].Attrs["k"] != "v" {
		t.Fatalf("grandchild record: %+v", recs[2])
	}
	for _, r := range recs {
		if r.TraceID != trace.String() {
			t.Fatalf("record %s carries trace %s, want %s", r.Name, r.TraceID, trace)
		}
	}
}

// TestSpanBufferSampledFlush: a head-sampled buffered request's records
// flush into the tracer's main ring, same as an unbuffered trace.
func TestSpanBufferSampledFlush(t *testing.T) {
	tr := NewTracer(64, 1) // sample everything
	buf := GetSpanBuffer()
	defer PutSpanBuffer(buf)

	ctx, root, trace := tr.StartRootBuffered(context.Background(), "root", SpanContext{}, buf)
	if !buf.Sampled() || !root.Context().Sampled {
		t.Fatal("1-in-1 sampling must mark the buffer sampled")
	}
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()

	tr.Flush(buf.Records(time.Now()))
	got := tr.Ring().Trace(trace.String())
	if len(got) != 2 {
		t.Fatalf("ring holds %d spans for the trace, want 2", len(got))
	}
}

// TestSpanBufferParentPropagation: an incoming traceparent pins trace ID,
// parent span, and the upstream sampling decision.
func TestSpanBufferParentPropagation(t *testing.T) {
	tr := NewTracer(64, 1<<30)
	buf := GetSpanBuffer()
	defer PutSpanBuffer(buf)

	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	_, root, trace := tr.StartRootBuffered(context.Background(), "root", parent, buf)
	if trace != parent.Trace {
		t.Fatalf("trace = %s, want parent's %s", trace, parent.Trace)
	}
	if !buf.Sampled() {
		t.Fatal("an upstream-sampled trace stays sampled locally")
	}
	root.End()
	recs := buf.Records(time.Now())
	if recs[0].ParentID != parent.Span.String() {
		t.Fatalf("root parent = %q, want %s", recs[0].ParentID, parent.Span)
	}
}

// TestSpanBufferRecycleInvalidatesSpans: writes through a handle that
// outlived its buffer are dropped, not applied to the slot's next life.
func TestSpanBufferRecycleInvalidatesSpans(t *testing.T) {
	tr := NewTracer(64, 1<<30)
	buf := newSpanBuffer() // private buffer: the pool must not see stale handles

	_, stale, _ := tr.StartRootBuffered(context.Background(), "first life", SpanContext{}, buf)
	buf.reset()

	// The recycle window: the buffer was reset but its slots not yet
	// reissued. Writes through the old handle must be dropped here — this
	// is the race PutSpanBuffer exposes when a request goroutine leaks a
	// span past its own end.
	stale.Set("stale", "write")
	stale.End()

	_, fresh, _ := tr.StartRootBuffered(context.Background(), "second life", SpanContext{}, buf)
	fresh.End()

	recs := buf.Records(time.Now())
	if len(recs) != 1 || recs[0].Name != "second life" {
		t.Fatalf("records after recycle: %+v", recs)
	}
	if len(recs[0].Attrs) != 0 {
		t.Fatalf("stale write leaked into the recycled slot: %+v", recs[0].Attrs)
	}
}

// TestSpanBufferArenaOverflow: spans past the arena spill to the heap and
// are still recorded in order.
func TestSpanBufferArenaOverflow(t *testing.T) {
	tr := NewTracer(64, 1<<30)
	buf := GetSpanBuffer()
	defer PutSpanBuffer(buf)

	ctx, root, _ := tr.StartRootBuffered(context.Background(), "root", SpanContext{}, buf)
	n := spanBufferArena + 5
	for i := 1; i < n; i++ {
		_, s := StartSpan(ctx, "child")
		s.End()
	}
	root.End()
	if got := buf.Len(); got != n {
		t.Fatalf("buffer holds %d spans, want %d", got, n)
	}
	recs := buf.Records(time.Now())
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	if recs[n-1].Name != "child" || recs[n-1].ParentID != recs[0].SpanID {
		t.Fatalf("overflow span lost its parent: %+v", recs[n-1])
	}
}

// TestSpanBufferSteadyStateAllocs: the buffering machinery for a healthy
// unsampled request — get a buffer, record a root and two children with
// constant attributes, recycle — allocates nothing once the pool is warm.
// (Context propagation via ContextWithSpan is measured separately by the
// service bench gate; here we bound the buffer itself, so spans start
// through the in-package allocator.)
func TestSpanBufferSteadyStateAllocs(t *testing.T) {
	tr := NewTracer(64, 1<<30)
	trace := NewTraceID()
	// Warm the pool and the arena attribute slices.
	warm := func() {
		buf := GetSpanBuffer()
		root := buf.startSpan(tr, trace, SpanID{}, "root", false)
		root.Set("route", "explain")
		c1 := buf.startSpan(tr, trace, root.id, "stage.predict", false)
		c1.Set("cache", "hit")
		c2 := buf.startSpan(tr, trace, c1.id, "stage.score", false)
		c2.End()
		c1.End()
		root.End()
		PutSpanBuffer(buf)
	}
	warm()
	if got := testing.AllocsPerRun(200, warm); got != 0 {
		t.Fatalf("steady-state buffered request allocates %.1f times, want 0", got)
	}
}

// TestOutlierRingNewestFirst: Snapshot returns newest first and reports
// how many commits the ring has seen in total.
func TestOutlierRingNewestFirst(t *testing.T) {
	r := NewOutlierRing(16)
	for i := 0; i < 20; i++ {
		r.Add(OutlierTrace{Status: 500 + i})
	}
	got, seq := r.Snapshot()
	if seq != 20 || r.Written() != 20 {
		t.Fatalf("seq = %d, want 20", seq)
	}
	if len(got) != 16 {
		t.Fatalf("ring retains %d, want 16", len(got))
	}
	for i, o := range got {
		if want := 500 + 19 - i; o.Status != want {
			t.Fatalf("snapshot[%d].Status = %d, want %d (newest first)", i, o.Status, want)
		}
	}
}

// TestStartRootBufferedDisabledTracer: with tracing off, the buffered
// entry point degrades to the plain no-op path.
func TestStartRootBufferedDisabledTracer(t *testing.T) {
	var tr *Tracer
	buf := GetSpanBuffer()
	defer PutSpanBuffer(buf)
	ctx := context.Background()
	got, s, trace := tr.StartRootBuffered(ctx, "root", SpanContext{}, buf)
	if got != ctx || s != nil || !trace.IsZero() {
		t.Fatalf("nil tracer: span=%v trace=%s", s, trace)
	}
	if buf.Len() != 0 {
		t.Fatal("disabled tracer must not touch the buffer")
	}
}
