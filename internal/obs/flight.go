package obs

// The flight recorder is the process's black box: a fixed-size,
// allocation-bounded ring holding one compact record per request served,
// lease transition, and corpus-job state change — regardless of trace
// sampling, which only decides whether *spans* are recorded. When a
// server wedges or crashes, the recorder is what is left to read: dumped
// as JSON by GET /debug/flight while the process lives, and to stderr on
// SIGQUIT on the way out.
//
// Recording must be cheap enough for the binary warm path's alloc budget:
// a record is a flat struct of pre-existing strings and a raw trace ID,
// copied by value into a preallocated slot under a mutex. Nothing is
// formatted, boxed, or hex-encoded until dump time.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// FlightKind classifies a flight record. New kinds append to the list —
// see CONTRIBUTING.md before adding one.
type FlightKind uint8

const (
	// FlightRequest is one finished HTTP request (every route, every
	// status, sampled or not).
	FlightRequest FlightKind = iota
	// FlightLease is one cluster-lease transition: dispatched, completed,
	// failed, abandoned (coordinator side) or executed (worker side).
	FlightLease
	// FlightJob is one corpus-job state transition (queued, running,
	// done, failed, canceled).
	FlightJob
	// FlightOutlier is one request committed to the outlier trace ring
	// (slower than the slow threshold, or status ≥ 500); State carries
	// the reason, so a SIGQUIT dump cross-references the retained traces
	// in /debug/traces?outliers=1 by trace ID.
	FlightOutlier
)

// String renders the kind for dumps.
func (k FlightKind) String() string {
	switch k {
	case FlightRequest:
		return "request"
	case FlightLease:
		return "lease"
	case FlightJob:
		return "job"
	case FlightOutlier:
		return "outlier"
	}
	return "unknown"
}

// FlightRecord is one black-box entry. Fields are populated per kind:
// requests carry Route/Status/LatencyUS, leases and jobs carry
// ID/State/Spec; Trace is set whenever the event belongs to a trace
// (even an unsampled one). All strings must be pre-existing (route
// names, state constants, IDs already in memory) so recording never
// allocates.
type FlightRecord struct {
	Kind      FlightKind
	When      int64 // unix nanoseconds; stamped by Record when zero
	Route     string
	Status    int
	LatencyUS int64
	Trace     TraceID
	Spec      string
	ID        string // job or lease ID
	State     string // transition: running, completed, abandoned, ...
	Err       string // error class, "" when the event succeeded
}

// FlightRecorder is the bounded ring. The zero size is sized up to a
// minimum; a nil recorder records nothing (so wiring is optional).
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []FlightRecord
	next int
	full bool
	seq  uint64 // total records ever written (dump metadata)
}

// NewFlightRecorder builds a recorder holding size records (minimum 64).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 64 {
		size = 64
	}
	return &FlightRecorder{buf: make([]FlightRecord, size)}
}

// Record appends one record, overwriting the oldest when full. It is a
// struct copy into a preallocated slot under a mutex: no allocation, no
// formatting, safe from any goroutine.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	if rec.When == 0 {
		rec.When = time.Now().UnixNano()
	}
	f.mu.Lock()
	f.buf[f.next] = rec
	f.next++
	f.seq++
	if f.next == len(f.buf) {
		f.next, f.full = 0, true
	}
	f.mu.Unlock()
}

// Snapshot returns the ring contents oldest-first, plus the total number
// of records ever written (so a reader can tell how much history the
// ring has already forgotten).
func (f *FlightRecorder) Snapshot() ([]FlightRecord, uint64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]FlightRecord(nil), f.buf[:f.next]...), f.seq
	}
	out := make([]FlightRecord, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	return append(out, f.buf[:f.next]...), f.seq
}

// flightJSON is the dump form of one record; expensive encodings (hex
// trace IDs, RFC 3339 times) happen only here.
type flightJSON struct {
	Kind      string    `json:"kind"`
	Time      time.Time `json:"time"`
	Route     string    `json:"route,omitempty"`
	Status    int       `json:"status,omitempty"`
	LatencyUS int64     `json:"latency_us,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
	Spec      string    `json:"spec,omitempty"`
	ID        string    `json:"id,omitempty"`
	State     string    `json:"state,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// FlightDump is the JSON envelope written by WriteJSON — also the shape
// GET /debug/flight serves and the SIGQUIT handler prints.
type FlightDump struct {
	// Process labels the dumping process (a role or address); optional.
	Process string `json:"process,omitempty"`
	// Written is the total number of records ever recorded; when it
	// exceeds len(Records) the ring has dropped the difference.
	Written uint64       `json:"written"`
	Records []flightJSON `json:"records"`
}

// Dump snapshots the recorder into its JSON envelope.
func (f *FlightRecorder) Dump(process string) FlightDump {
	recs, seq := f.Snapshot()
	out := FlightDump{Process: process, Written: seq, Records: make([]flightJSON, len(recs))}
	for i, r := range recs {
		j := flightJSON{
			Kind:      r.Kind.String(),
			Time:      time.Unix(0, r.When).UTC(),
			Route:     r.Route,
			Status:    r.Status,
			LatencyUS: r.LatencyUS,
			Spec:      r.Spec,
			ID:        r.ID,
			State:     r.State,
			Error:     r.Err,
		}
		if !r.Trace.IsZero() {
			j.TraceID = r.Trace.String()
		}
		out.Records[i] = j
	}
	return out
}

// WriteJSON writes the dump envelope as a single JSON document.
func (f *FlightRecorder) WriteJSON(w io.Writer, process string) error {
	return json.NewEncoder(w).Encode(f.Dump(process))
}
