package obs

// Outlier trace retention. Head sampling (1-in-N by trace ID) is the
// right economics for the hot routes, but it throws away exactly the
// trace you need when a request turns out slow or broken. The fix is
// tail-based: every eligible hot-route request records its spans
// provisionally into a pooled, recycled SpanBuffer regardless of the
// head-sampling decision; at request end the server either commits the
// buffer (to the main ring if head-sampled, to the OutlierRing if the
// request was slow or 5xx) or recycles it untouched.
//
// The buffer is built for a zero-allocation steady state: spans come
// from a preallocated arena, attribute slices keep their capacity across
// recycles, and nothing is hex-encoded or map-boxed until a commit
// actually happens — the overwhelmingly common fast-and-healthy request
// pays a pool Get/Put and struct writes, nothing more. (The interned
// binary warm path skips buffering entirely; see service.instrument.)

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// spanBufferArena is the per-buffer preallocated span count. Requests
// that somehow exceed it fall back to heap spans (still recorded) rather
// than dropping data.
const spanBufferArena = 64

// SpanBuffer holds one request's provisional spans. Obtain from
// GetSpanBuffer, hand to Tracer.StartRootBuffered, and recycle with
// PutSpanBuffer after the request ends. Spans must not be touched after
// their buffer is recycled — a generation counter turns late writes into
// no-ops, but they are bugs in the caller.
type SpanBuffer struct {
	// gen invalidates outstanding *Span handles at recycle time: a span
	// whose captured generation no longer matches drops writes instead of
	// corrupting the arena slot's next occupant.
	gen atomic.Uint64

	mu      sync.Mutex
	sampled bool
	used    int
	arena   []Span
	extra   []*Span // overflow beyond the arena; rare, heap-allocated
}

func newSpanBuffer() *SpanBuffer {
	return &SpanBuffer{arena: make([]Span, spanBufferArena)}
}

var spanBufferPool = sync.Pool{New: func() any { return newSpanBuffer() }}

// GetSpanBuffer fetches a recycled buffer from the shared pool.
func GetSpanBuffer() *SpanBuffer {
	return spanBufferPool.Get().(*SpanBuffer)
}

// PutSpanBuffer invalidates the buffer's spans and returns it to the
// pool. The caller must be done with every *Span the buffer produced.
func PutSpanBuffer(b *SpanBuffer) {
	if b == nil {
		return
	}
	b.reset()
	spanBufferPool.Put(b)
}

func (b *SpanBuffer) reset() {
	b.gen.Add(1)
	b.mu.Lock()
	b.used = 0
	b.sampled = false
	for i := range b.extra {
		b.extra[i] = nil
	}
	b.extra = b.extra[:0]
	b.mu.Unlock()
}

// startSpan hands out the next arena slot (or a heap span past the
// arena), initialized for (trace, parent). Zero-allocation while the
// arena lasts: the slot's attribute slice keeps its capacity from
// previous lives.
func (b *SpanBuffer) startSpan(t *Tracer, trace TraceID, parent SpanID, name string, sampled bool) *Span {
	b.mu.Lock()
	var s *Span
	if b.used < len(b.arena) {
		s = &b.arena[b.used]
		b.used++
	} else {
		s = &Span{}
		b.extra = append(b.extra, s)
	}
	b.mu.Unlock()
	s.tracer = t
	s.trace = trace
	s.id = NewSpanID()
	s.parent = parent
	s.name = name
	s.start = time.Now()
	s.attrs = s.attrs[:0]
	s.ended = false
	s.end = time.Time{}
	s.sampled = sampled
	s.buf = b
	s.bufGen = b.gen.Load()
	return s
}

// Sampled reports the head-sampling decision of the buffered trace.
func (b *SpanBuffer) Sampled() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sampled
}

// Len reports how many spans the buffer holds.
func (b *SpanBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used + len(b.extra)
}

// Records converts the buffered spans to SpanRecords, creation order. A
// span still open at commit time is reported with its duration up to
// now. This is the commit path: it allocates (records, hex IDs, attr
// maps), which is why it only runs for sampled or outlier requests.
func (b *SpanBuffer) Records(now time.Time) []SpanRecord {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]SpanRecord, 0, b.used+len(b.extra))
	for i := 0; i < b.used; i++ {
		out = append(out, b.arena[i].record(now))
	}
	for _, s := range b.extra {
		out = append(out, s.record(now))
	}
	return out
}

// StartRootBuffered is StartRoot for outlier retention: the root span is
// recorded provisionally into buf whether or not the trace is
// head-sampled, and the sampling decision travels on the buffer (and in
// each span's Context, so downstream propagation is unchanged). Returns
// a nil span only when tracing is disabled entirely.
func (t *Tracer) StartRootBuffered(ctx context.Context, name string, parent SpanContext, buf *SpanBuffer) (context.Context, *Span, TraceID) {
	if t == nil || t.sampleN == 0 || buf == nil {
		return t.StartRoot(ctx, name, parent, false)
	}
	var trace TraceID
	var parentID SpanID
	var sampled bool
	if !parent.IsZero() {
		trace, parentID = parent.Trace, parent.Span
		sampled = parent.Sampled
	} else {
		trace = NewTraceID()
		sampled = t.sampled(trace)
	}
	buf.mu.Lock()
	buf.sampled = sampled
	buf.mu.Unlock()
	s := buf.startSpan(t, trace, parentID, name, sampled)
	return ContextWithSpan(ctx, s), s, trace
}

// Flush publishes already-converted span records into the tracer's main
// ring — the commit half of a head-sampled buffered request.
func (t *Tracer) Flush(recs []SpanRecord) {
	if t == nil {
		return
	}
	for _, r := range recs {
		t.ring.add(r)
	}
}

// Outlier commit reasons.
const (
	OutlierSlow  = "slow"  // latency exceeded the slow threshold
	OutlierError = "error" // status ≥ 500
)

// OutlierTrace is one retained slow-or-error request: its identity, the
// outcome that got it committed, and the full span set captured despite
// head sampling.
type OutlierTrace struct {
	TraceID    string    `json:"trace_id"`
	Route      string    `json:"route"`
	Status     int       `json:"status"`
	Reason     string    `json:"reason"` // OutlierSlow or OutlierError
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	// Process labels the recording process in federated views.
	Process string       `json:"process,omitempty"`
	Spans   []SpanRecord `json:"spans,omitempty"`
}

// OutlierRing is the bounded buffer of committed outlier traces, one per
// slow/5xx request, newest overwriting oldest.
type OutlierRing struct {
	mu   sync.Mutex
	buf  []OutlierTrace
	next int
	full bool
	seq  uint64 // total outliers ever committed
}

// NewOutlierRing builds a ring holding size outlier traces (minimum 16).
func NewOutlierRing(size int) *OutlierRing {
	if size < 16 {
		size = 16
	}
	return &OutlierRing{buf: make([]OutlierTrace, size)}
}

// Add commits one outlier trace.
func (r *OutlierRing) Add(t OutlierTrace) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	r.seq++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained outliers newest-first, plus the total
// ever committed (so readers can tell how much the ring has forgotten).
func (r *OutlierRing) Snapshot() ([]OutlierTrace, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]OutlierTrace, 0, n)
	for i := 1; i <= n; i++ { // walk backwards from the write cursor
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out, r.seq
}

// Written reports the total outliers ever committed — the counter behind
// the history's outlier-rate series.
func (r *OutlierRing) Written() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
