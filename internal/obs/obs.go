// Package obs is COMET's stdlib-only observability kit: trace and span
// identifiers with W3C-traceparent propagation, in-process span recording
// into a bounded ring (served by GET /debug/traces), and the slog setup
// shared by every binary. It deliberately has no third-party dependencies
// and no exporters — traces live in memory, logs go to stderr, and the
// wire cost of tracing an unsampled request is two PRNG calls.
//
// The identifier and header formats follow the W3C Trace Context
// recommendation (https://www.w3.org/TR/trace-context/): a 16-byte trace
// ID and 8-byte span ID, carried between processes as
//
//	traceparent: 00-<32 lowercase hex>-<16 lowercase hex>-<2 hex flags>
//
// so COMET's coordinator→worker and service→remote-model hops interoperate
// with any other Trace Context system that may sit in front of them.
package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
)

// TraceID identifies one end-to-end request tree across processes.
type TraceID [16]byte

// SpanID identifies one operation within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	var b [32]byte
	hex.Encode(b[:], t[:])
	return string(b[:])
}

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string {
	var b [16]byte
	hex.Encode(b[:], s[:])
	return string(b[:])
}

// NewTraceID mints a random, non-zero trace ID. The global math/rand/v2
// generator (ChaCha8, OS-seeded) is used instead of crypto/rand: IDs need
// uniqueness, not secrecy, and the explain hot path cannot afford a
// syscall.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		binary.LittleEndian.PutUint64(t[:8], rand.Uint64())
		binary.LittleEndian.PutUint64(t[8:], rand.Uint64())
	}
	return t
}

// NewSpanID mints a random, non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		binary.LittleEndian.PutUint64(s[:], rand.Uint64())
	}
	return s
}

// SpanContext is the propagated fragment of a span: just enough to parent
// remote children and carry the sampling decision across a hop.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// IsZero reports whether the context carries no trace.
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() }

// Traceparent renders the context as a W3C traceparent header value.
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	var t [32]byte
	hex.Encode(t[:], sc.Trace[:])
	b = append(b, t[:]...)
	b = append(b, '-')
	var s [16]byte
	hex.Encode(s[:], sc.Span[:])
	b = append(b, s[:]...)
	if sc.Sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

// ParseTraceparent parses a W3C traceparent header value. Unknown
// (future) versions are accepted as long as the 00-version field layout
// holds, per the recommendation; a zero trace or span ID is invalid.
func ParseTraceparent(s string) (SpanContext, bool) {
	// "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes minimum.
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[:2])); err != nil || ver[0] == 0xff {
		return SpanContext{}, false // non-hex version, or the forbidden 0xff
	}
	if len(s) > 55 && (s[55] != '-' || (s[0] == '0' && s[1] == '0')) {
		return SpanContext{}, false // version 00 has no trailing fields
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	if sc.Trace.IsZero() || sc.Span.IsZero() {
		return SpanContext{}, false
	}
	sc.Sampled = flags[0]&0x01 != 0
	return sc, true
}

// ctxKey carries the active *Span through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx with span installed as the active span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// SpanFromContext returns the active span, or nil when the request is
// untraced or unsampled. All *Span methods are nil-safe, so callers never
// need to branch.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextSpanContext returns the propagation fragment of the active span,
// or the zero SpanContext when there is none.
func ContextSpanContext(ctx context.Context) SpanContext {
	if s := SpanFromContext(ctx); s != nil {
		return s.Context()
	}
	return SpanContext{}
}
