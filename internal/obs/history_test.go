package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestHistoryRingWrapAround: more samples than the ring holds keeps only
// the newest window, oldest first, with the total tick count intact.
func TestHistoryRingWrapAround(t *testing.T) {
	h := NewHistory(16, time.Second)
	var n float64
	h.Gauge("n", func() float64 { n++; return n })
	for i := 0; i < 23; i++ {
		h.Sample()
	}
	d := h.Dump("test")
	if d.Samples != 23 || d.Retention != 16 {
		t.Fatalf("samples=%d retention=%d, want 23/16", d.Samples, d.Retention)
	}
	if len(d.Series) != 1 || d.Series[0].Name != "n" || d.Series[0].Kind != SeriesGauge {
		t.Fatalf("series: %+v", d.Series)
	}
	pts := d.Series[0].Points
	if len(pts) != 16 {
		t.Fatalf("window holds %d points, want 16", len(pts))
	}
	// Samples 1..23 were taken; the ring keeps 8..23.
	for i, p := range pts {
		if want := float64(8 + i); float64(p) != want {
			t.Errorf("point %d = %v, want %v", i, p, want)
		}
	}
	if float64(d.Series[0].Last) != 23 {
		t.Errorf("last = %v, want 23", d.Series[0].Last)
	}
}

// TestHistoryRateAcrossCounterReset: a rate series yields per-second
// rates, a gap on its first tick, and never a negative rate when the
// underlying counter resets.
func TestHistoryRateAcrossCounterReset(t *testing.T) {
	h := NewHistory(16, 2*time.Second)
	counter := 0.0
	h.Rate("r", func() float64 { return counter })

	h.Sample() // primes the baseline: gap
	counter = 10
	h.Sample()  // Δ10 over 2s → 5/s
	counter = 4 // reset: a restart dropped the counter
	h.Sample()  // best estimate: 4 over 2s → 2/s
	counter = 4
	h.Sample() // Δ0 → 0/s

	pts := h.Dump("").Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	if !math.IsNaN(float64(pts[0])) {
		t.Errorf("first tick = %v, want gap (NaN)", pts[0])
	}
	for i, want := range []float64{5, 2, 0} {
		if got := float64(pts[i+1]); got != want {
			t.Errorf("tick %d rate = %v, want %v", i+1, got, want)
		}
	}
}

// TestHistoryValueGapsAndJSON: value-kind gaps serialize as null and
// round-trip back to NaN.
func TestHistoryValueGapsAndJSON(t *testing.T) {
	h := NewHistory(16, time.Second)
	ok := false
	h.Value("v", func() (float64, bool) { return 7.5, ok })
	h.Sample() // gap
	ok = true
	h.Sample() // 7.5

	raw, err := json.Marshal(h.Dump("p1"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"points":[null,7.5]`) {
		t.Fatalf("gap did not serialize as null: %s", raw)
	}
	var back HistoryDump
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Process != "p1" || len(back.Series) != 1 {
		t.Fatalf("round-trip: %+v", back)
	}
	pts := back.Series[0].Points
	if !math.IsNaN(float64(pts[0])) || float64(pts[1]) != 7.5 {
		t.Errorf("round-tripped points = %v, want [NaN, 7.5]", pts)
	}
}

// TestHistoryLateRegistration: a series registered mid-stream is aligned
// on the shared tick axis, gaps before it existed.
func TestHistoryLateRegistration(t *testing.T) {
	h := NewHistory(16, time.Second)
	h.Gauge("early", func() float64 { return 1 })
	h.Sample()
	h.Sample()
	h.Gauge("late", func() float64 { return 2 })
	h.Sample()

	d := h.Dump("")
	byName := map[string]HistorySeries{}
	for _, s := range d.Series {
		byName[s.Name] = s
	}
	late := byName["late"].Points
	if len(late) != 3 {
		t.Fatalf("late series has %d points, want 3 (aligned with the dump window)", len(late))
	}
	if !math.IsNaN(float64(late[0])) || !math.IsNaN(float64(late[1])) || float64(late[2]) != 2 {
		t.Errorf("late series = %v, want [NaN, NaN, 2]", late)
	}
}

// TestHistoryBeforeSampleHook: the hook runs per tick and can register
// series (the dynamic per-spec path), idempotently.
func TestHistoryBeforeSampleHook(t *testing.T) {
	h := NewHistory(16, time.Second)
	calls := 0
	h.BeforeSample = func() {
		calls++
		h.Gauge("dyn", func() float64 { return 42 }) // re-offered every tick
	}
	h.Sample()
	h.Sample()
	if calls != 2 {
		t.Fatalf("hook ran %d times, want 2", calls)
	}
	d := h.Dump("")
	if len(d.Series) != 1 || d.Series[0].Name != "dyn" || float64(d.Series[0].Last) != 42 {
		t.Fatalf("dynamic series: %+v", d.Series)
	}
	if len(d.Series[0].Points) != 2 {
		t.Errorf("dynamic series has %d points, want 2 (registered on the first tick)", len(d.Series[0].Points))
	}
}

// TestHistoryStartStop: the background sampler ticks and stops cleanly.
func TestHistoryStartStop(t *testing.T) {
	h := NewHistory(64, 5*time.Millisecond)
	h.Gauge("g", func() float64 { return 1 })
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for h.Dump("").Samples < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background sampler never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	n := h.Dump("").Samples
	time.Sleep(30 * time.Millisecond)
	if got := h.Dump("").Samples; got > n+1 {
		// One in-flight tick may land after Stop; more means it kept going.
		t.Errorf("sampler still running after Stop: %d → %d samples", n, got)
	}
}
