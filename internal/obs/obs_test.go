package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	hdr := sc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent format: %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
	sc.Sampled = false
	got, ok = ParseTraceparent(sc.Traceparent())
	if !ok || got != sc {
		t.Fatalf("unsampled round trip: got %+v ok=%v", got, ok)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	valid := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}.Traceparent()
	bad := []string{
		"",
		"00",
		valid[:54],                          // truncated
		"ff" + valid[2:],                    // forbidden version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + valid[35:],      // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span ID
		strings.Replace(valid, "0", "g", 1),               // non-hex
		valid + "-extra",                                  // version 00 with trailing fields
		valid + "x",                                       // trailing junk
	}
	for _, s := range bad {
		if sc, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted: %+v", s, sc)
		}
	}
}

func TestStartRootSamplingAndPropagation(t *testing.T) {
	// sampleN=1: every trace records.
	tr := NewTracer(64, 1)
	ctx, span, id := tr.StartRoot(context.Background(), "explain", SpanContext{}, false)
	if span == nil || id.IsZero() {
		t.Fatal("always-sample tracer returned no span")
	}
	if SpanFromContext(ctx) != span {
		t.Fatal("span not installed in context")
	}
	// A child inherits trace and parent linkage.
	_, child := StartSpan(ctx, "model")
	if child == nil || child.trace != span.trace || child.parent != span.id {
		t.Fatalf("child linkage: %+v vs parent %+v", child, span)
	}
	child.SetInt("queries", 42)
	child.End()
	span.End()
	span.End() // double End is a no-op
	recs := tr.Ring().Trace(id.String())
	if len(recs) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(recs))
	}
	if recs[1].Attrs["queries"] != "42" {
		t.Errorf("child attrs = %v", recs[1].Attrs)
	}

	// sampleN=0: tracing off, but nothing breaks.
	off := NewTracer(64, 0)
	ctx2, span2, id2 := off.StartRoot(context.Background(), "explain", SpanContext{}, true)
	if span2 != nil || !id2.IsZero() || SpanFromContext(ctx2) != nil {
		t.Fatal("disabled tracer produced a span")
	}
}

func TestSamplingHonorsParentDecision(t *testing.T) {
	tr := NewTracer(64, 1_000_000_000) // local sampling effectively never fires
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	_, span, id := tr.StartRoot(context.Background(), "shard", parent, false)
	if span == nil {
		t.Fatal("sampled parent was not honored")
	}
	if id != parent.Trace || span.parent != parent.Span {
		t.Fatal("parent linkage lost")
	}
	parent.Sampled = false
	_, span, id = tr.StartRoot(context.Background(), "shard", parent, false)
	if span != nil {
		t.Fatal("unsampled parent was recorded")
	}
	if id != parent.Trace {
		t.Fatal("trace ID must still propagate for the response header")
	}
	// force overrides the parent's negative decision.
	if _, span, _ = tr.StartRoot(context.Background(), "shard", parent, true); span == nil {
		t.Fatal("force did not override the unsampled parent")
	}
}

func TestResume(t *testing.T) {
	tr := NewTracer(64, 1)
	parent := SpanContext{Trace: NewTraceID(), Span: NewSpanID(), Sampled: true}
	ctx, span := tr.Resume(context.Background(), "job", parent)
	if span == nil || SpanFromContext(ctx) != span {
		t.Fatal("resume did not produce an active span")
	}
	if span.trace != parent.Trace || span.parent != parent.Span {
		t.Fatal("resume linkage lost")
	}
	if _, s := tr.Resume(context.Background(), "job", SpanContext{}); s != nil {
		t.Fatal("resume from zero context produced a span")
	}
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.Set("k", "v")
	s.SetInt("k", 1)
	s.SetBool("k", true)
	s.SetErr(nil)
	s.End()
	if !s.Context().IsZero() || !s.TraceID().IsZero() {
		t.Fatal("nil span leaked identity")
	}
	ctx, child := StartSpan(context.Background(), "x")
	if child != nil || SpanFromContext(ctx) != nil {
		t.Fatal("span minted without a parent")
	}
}

func TestRingEvictionAndTraces(t *testing.T) {
	tr := NewTracer(64, 1)
	var last TraceID
	for i := 0; i < 100; i++ {
		_, span, id := tr.StartRoot(context.Background(), "req", SpanContext{}, false)
		span.End()
		last = id
	}
	traces := tr.Ring().Traces(0)
	if len(traces) != 64 {
		t.Fatalf("ring retains %d traces, want 64", len(traces))
	}
	if traces[0].TraceID != last.String() {
		t.Fatal("most recent trace not listed first")
	}
	if got := tr.Ring().Traces(5); len(got) != 5 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	if recs := tr.Ring().Trace(last.String()); len(recs) != 1 || recs[0].Name != "req" {
		t.Fatalf("single-trace fetch: %+v", recs)
	}
}

func TestSpanRecordJSONShape(t *testing.T) {
	tr := NewTracer(64, 1)
	_, span, id := tr.StartRoot(context.Background(), "explain", SpanContext{}, false)
	span.Set("spec", "uica@hsw")
	span.End()
	data, err := json.Marshal(tr.Ring().Trace(id.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trace_id"`, `"span_id"`, `"name":"explain"`, `"duration_us"`, `"spec":"uica@hsw"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("trace JSON missing %s: %s", want, data)
		}
	}
	if bytes.Contains(data, []byte(`"parent_id"`)) {
		t.Errorf("root span rendered a parent_id: %s", data)
	}
}

func TestNewLoggerFormatsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	id := NewTraceID()
	Component(lg, "service").Info("request", TraceAttr(id), "route", "explain")
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("not JSON: %v (%s)", err, buf.Bytes())
	}
	if line["component"] != "service" || line["trace_id"] != id.String() || line["route"] != "explain" {
		t.Fatalf("log line: %v", line)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", TraceAttr(TraceID{})) // zero trace ID elided
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level filtering: %q", out)
	}
	if strings.Contains(out, "trace_id") {
		t.Fatalf("zero trace ID rendered: %q", out)
	}

	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}
