package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for every COMET binary. One process builds one root
// logger with NewLogger and derives component loggers with Component;
// every log line then carries component=<service|cluster|persist|remote>
// and — on request/lease/job lines — trace_id, so logs and /debug/traces
// cross-reference.

// NewLogger builds the process root logger. format is "text" or "json";
// level is "debug", "info", "warn", or "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// Component tags a child logger with its subsystem name. A nil root
// yields the default logger so library code never nil-checks.
func Component(root *slog.Logger, name string) *slog.Logger {
	if root == nil {
		root = slog.Default()
	}
	return root.With("component", name)
}

// TraceAttr renders a trace ID as the conventional trace_id attribute,
// or an empty group (which slog elides) for the zero ID — log call sites
// can pass it unconditionally.
func TraceAttr(id TraceID) slog.Attr {
	if id.IsZero() {
		return slog.Attr{Key: "", Value: slog.GroupValue()}
	}
	return slog.String("trace_id", id.String())
}
