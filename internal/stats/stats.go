// Package stats provides the statistical utilities COMET builds on:
// summary statistics (mean, standard deviation, MAPE), the Bernoulli
// KL divergence, and the KL confidence bounds of Kaufmann &
// Kalyanakrishnan (2013) that the anchor search uses to certify
// explanation precision.
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 when len < 2).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanStd returns both the mean and sample standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), Std(xs)
}

// MAPE returns the mean absolute percentage error of predictions against
// reference values, in percent. Pairs with a zero reference are skipped.
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: MAPE length mismatch")
	}
	s, n := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * s / float64(n)
}

// KLBern returns the KL divergence KL(p ‖ q) between Bernoulli
// distributions, with the conventional 0·log0 = 0 limits.
func KLBern(p, q float64) float64 {
	const eps = 1e-12
	p = math.Min(math.Max(p, 0), 1)
	q = math.Min(math.Max(q, eps), 1-eps)
	kl := 0.0
	if p > 0 {
		kl += p * math.Log(p/q)
	}
	if p < 1 {
		kl += (1 - p) * math.Log((1-p)/(1-q))
	}
	return kl
}

// KLUpperBound returns the largest q ≥ p̂ with n·KL(p̂ ‖ q) ≤ level: the
// upper confidence bound of the KL-LUCB procedure.
func KLUpperBound(phat float64, n int, level float64) float64 {
	if n == 0 {
		return 1
	}
	budget := level / float64(n)
	lo, hi := phat, 1.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if KLBern(phat, mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// KLLowerBound returns the smallest q ≤ p̂ with n·KL(p̂ ‖ q) ≤ level: the
// lower confidence bound of the KL-LUCB procedure.
func KLLowerBound(phat float64, n int, level float64) float64 {
	if n == 0 {
		return 0
	}
	budget := level / float64(n)
	lo, hi := 0.0, phat
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if KLBern(phat, mid) > budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// HoeffdingLowerBound returns the classical Hoeffding lower confidence
// bound p̂ − sqrt(level / 2n), clamped to [0, 1]. Kept alongside the KL
// bounds as an ablation: Hoeffding's interval is far looser near p̂ = 1,
// which is exactly where anchor certification operates.
func HoeffdingLowerBound(phat float64, n int, level float64) float64 {
	if n == 0 {
		return 0
	}
	lb := phat - math.Sqrt(level/(2*float64(n)))
	if lb < 0 {
		return 0
	}
	return lb
}

// HoeffdingUpperBound returns p̂ + sqrt(level / 2n), clamped to [0, 1].
func HoeffdingUpperBound(phat float64, n int, level float64) float64 {
	if n == 0 {
		return 1
	}
	ub := phat + math.Sqrt(level/(2*float64(n)))
	if ub > 1 {
		return 1
	}
	return ub
}

// Beta returns the exploration level β(t, δ) used by KL-LUCB with k arms
// after t rounds, following the Anchors reference implementation
// (α = 1.1, k₁ = 405.5).
func Beta(k, t int, delta float64) float64 {
	const alpha = 1.1
	const k1 = 405.5
	if k < 1 {
		k = 1
	}
	if t < 1 {
		t = 1
	}
	temp := math.Log(k1 * float64(k) * math.Pow(float64(t), alpha) / delta)
	if temp < 1 {
		temp = 1
	}
	return temp + math.Log(temp)
}

// PearsonR returns the Pearson correlation coefficient of two series
// (0 when undefined). The utility experiments use it to quantify the
// paper's inverse error/granularity correlation.
func PearsonR(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
