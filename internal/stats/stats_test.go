package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Errorf("Std = %v, want ≈2.138", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90}
	actual := []float64{100, 100}
	if m := MAPE(pred, actual); math.Abs(m-10) > 1e-9 {
		t.Errorf("MAPE = %v, want 10", m)
	}
	if m := MAPE([]float64{1, 5}, []float64{0, 5}); m != 0 {
		t.Errorf("zero-reference pairs should be skipped, got %v", m)
	}
}

func TestKLBernProperties(t *testing.T) {
	if kl := KLBern(0.3, 0.3); kl > 1e-9 {
		t.Errorf("KL(p‖p) = %v, want 0", kl)
	}
	if KLBern(0.2, 0.8) <= 0 {
		t.Error("KL between distinct distributions must be positive")
	}
	f := func(a, b uint8) bool {
		p := float64(a%100) / 100
		q := 0.01 + 0.98*float64(b%100)/100
		return KLBern(p, q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKLBoundsBracketEstimate(t *testing.T) {
	f := func(succ, n uint16, lv uint8) bool {
		nn := int(n%500) + 1
		s := int(succ) % (nn + 1)
		phat := float64(s) / float64(nn)
		level := 0.5 + float64(lv%50)
		lb := KLLowerBound(phat, nn, level)
		ub := KLUpperBound(phat, nn, level)
		return lb <= phat+1e-9 && ub >= phat-1e-9 && lb >= -1e-9 && ub <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKLBoundsShrinkWithSamples(t *testing.T) {
	phat := 0.7
	level := 3.0
	prevWidth := math.Inf(1)
	for _, n := range []int{10, 100, 1000, 10000} {
		w := KLUpperBound(phat, n, level) - KLLowerBound(phat, n, level)
		if w >= prevWidth {
			t.Errorf("bound width should shrink with n: n=%d width=%v prev=%v", n, w, prevWidth)
		}
		prevWidth = w
	}
}

func TestKLBoundCoverage(t *testing.T) {
	// The true parameter should fall inside the interval with high
	// frequency at a generous level.
	rng := rand.New(rand.NewSource(1))
	trueP := 0.7
	misses := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		n, succ := 200, 0
		for j := 0; j < 200; j++ {
			if rng.Float64() < trueP {
				succ++
			}
		}
		phat := float64(succ) / float64(n)
		level := Beta(1, 1, 0.05)
		if trueP < KLLowerBound(phat, n, level) || trueP > KLUpperBound(phat, n, level) {
			misses++
		}
	}
	if rate := float64(misses) / trials; rate > 0.05 {
		t.Errorf("true parameter escaped the interval %.1f%% of the time", rate*100)
	}
}

func TestBetaIncreasesWithRounds(t *testing.T) {
	if !(Beta(5, 10, 0.05) > Beta(5, 1, 0.05)) {
		t.Error("β must grow with t")
	}
	if !(Beta(50, 10, 0.05) > Beta(5, 10, 0.05)) {
		t.Error("β must grow with the number of arms")
	}
}

func TestPearsonR(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r := PearsonR(xs, []float64{2, 4, 6, 8}); math.Abs(r-1) > 1e-9 {
		t.Errorf("perfect positive correlation: r = %v", r)
	}
	if r := PearsonR(xs, []float64{8, 6, 4, 2}); math.Abs(r+1) > 1e-9 {
		t.Errorf("perfect negative correlation: r = %v", r)
	}
	if r := PearsonR(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant series: r = %v, want 0", r)
	}
}
