package wire

// Interned content identities. The service layer hashes every request's
// identity-bearing bytes (canonical block text, model spec, effective
// config) exactly once at ingress; everything downstream — the result
// LRU, single-flight coalescing, the intern table, cluster result dedup —
// compares and routes on the fixed-size ContentID (or its u64-prefixed
// Handle) instead of re-hashing or carrying canonical-text strings.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// ContentID is a 32-byte content address: a SHA-256 over a domain-tagged
// preimage. The zero value is never a valid address in practice.
type ContentID [32]byte

// InternBytes hashes raw bytes into a ContentID.
func InternBytes(data []byte) ContentID {
	return ContentID(sha256.Sum256(data))
}

// InternParts hashes a sequence of length-delimited string parts into a
// ContentID. Each part is prefixed with its length, so no two distinct
// part sequences collide by concatenation.
func InternParts(parts ...string) ContentID {
	h := sha256.New()
	var lenBuf [binary.MaxVarintLen64]byte
	for _, p := range parts {
		n := binary.PutUvarint(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:n])
		h.Write([]byte(p))
	}
	var id ContentID
	h.Sum(id[:0])
	return id
}

// Hex renders the ID as the 64-character lowercase hex string used for
// on-disk persist keys (the durable format predates interning and stays
// string-keyed for compatibility).
func (id ContentID) Hex() string {
	return hex.EncodeToString(id[:])
}

// ParseContentID parses the hex rendering back into an ID.
func ParseContentID(s string) (ContentID, bool) {
	var id ContentID
	if len(s) != 64 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, false
	}
	return id, true
}

// Handle is the ID's u64 prefix (big-endian), the cheap comparand used
// for shard routing and map bucketing where 64 bits of the address are
// plenty. Full-ID equality still decides identity; the handle only
// routes.
func (id ContentID) Handle() uint64 {
	return binary.BigEndian.Uint64(id[:8])
}
