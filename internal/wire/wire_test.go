package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/features"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/x86"
)

// explain produces a real explanation to project onto the wire.
func explain(t *testing.T) *core.Explanation {
	t.Helper()
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	cfg := core.DefaultConfig()
	cfg.CoverageSamples = 200
	cfg.Parallelism = 1
	expl, err := core.NewExplainer(uica.New(x86.Haswell), cfg).Explain(b)
	if err != nil {
		t.Fatal(err)
	}
	return expl
}

func TestExplanationLibraryRoundTrip(t *testing.T) {
	orig := explain(t)
	w := FromExplanation(orig)
	back, err := w.Core()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Block.Equal(orig.Block) {
		t.Errorf("block mismatch: %q vs %q", back.Block, orig.Block)
	}
	if back.Features.Key() != orig.Features.Key() {
		t.Errorf("feature identity mismatch: %s vs %s", back.Features.Key(), orig.Features.Key())
	}
	if back.Features.String() != orig.Features.String() {
		t.Errorf("feature rendering mismatch: %s vs %s", back.Features, orig.Features)
	}
	if back.Model != orig.Model || back.Prediction != orig.Prediction ||
		back.Precision != orig.Precision || back.Coverage != orig.Coverage ||
		back.Certified != orig.Certified || back.Queries != orig.Queries ||
		back.CacheHits != orig.CacheHits || back.ModelCalls != orig.ModelCalls {
		t.Errorf("scalar mismatch:\n got %+v\nwant %+v", back, orig)
	}
}

// TestExplanationByteStableRoundTrip is the wire-format contract the
// service acceptance criterion leans on: unmarshal → marshal reproduces
// the exact bytes.
func TestExplanationByteStableRoundTrip(t *testing.T) {
	first, err := json.Marshal(FromExplanation(explain(t)))
	if err != nil {
		t.Fatal(err)
	}
	var decoded Explanation
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("marshal not byte-stable:\n first %s\nsecond %s", first, second)
	}
}

func TestFeatureRoundTripAllKinds(t *testing.T) {
	fs := []features.Feature{
		{Kind: features.KindInstr, Index: 0, Opcode: "add", Text: "inst1: add rcx, rax"},
		{Kind: features.KindInstr, Index: 2, Opcode: "pop", Text: "inst3: pop rbx"},
		{Kind: features.KindDep, Src: 0, Dst: 1, Hazard: deps.RAW},
		{Kind: features.KindDep, Src: 1, Dst: 2, Hazard: deps.WAR},
		{Kind: features.KindDep, Src: 0, Dst: 2, Hazard: deps.WAW},
		{Kind: features.KindCount, Count: 3},
	}
	for _, f := range fs {
		w := FromFeature(f)
		back, err := w.Lib()
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if back.Key() != f.Key() {
			t.Errorf("key mismatch: %s vs %s", back.Key(), f.Key())
		}
		if back.String() != f.String() {
			t.Errorf("rendering mismatch: %s vs %s", back, f)
		}
		raw, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var dec Feature
		if err := json.Unmarshal(raw, &dec); err != nil {
			t.Fatal(err)
		}
		raw2, err := json.Marshal(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Errorf("feature marshal not byte-stable: %s vs %s", raw, raw2)
		}
	}
}

func TestFeatureSetPreservesOrderAndIdentity(t *testing.T) {
	set := features.NewSet(
		features.Feature{Kind: features.KindCount, Count: 2},
		features.Feature{Kind: features.KindInstr, Index: 1, Opcode: "mov"},
	)
	back, err := FromFeatureSet(set).Lib()
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != set.Key() {
		t.Errorf("set key mismatch: %s vs %s", back.Key(), set.Key())
	}
	for i := range set {
		if back[i].Key() != set[i].Key() {
			t.Errorf("order not preserved at %d: %s vs %s", i, back[i].Key(), set[i].Key())
		}
	}
}

func TestCorpusResultProjection(t *testing.T) {
	b := x86.MustParseBlock("add rcx, rax")
	ok := FromCorpusResult(core.CorpusResult{Index: 3, Block: b, Explanation: &core.Explanation{
		Block: b, Model: "uica", Prediction: 1.0, Features: features.NewSet(),
	}})
	if ok.Index != 3 || ok.Block != "add rcx, rax" || ok.Explanation == nil || ok.Error != "" {
		t.Errorf("unexpected success projection: %+v", ok)
	}
	bad := FromCorpusResult(core.CorpusResult{Index: 1, Block: b, Err: errors.New("boom")})
	if bad.Error != "boom" || bad.Explanation != nil {
		t.Errorf("unexpected failure projection: %+v", bad)
	}
	raw, _ := json.Marshal(bad)
	var dec CorpusResult
	if err := json.Unmarshal(raw, &dec); err != nil {
		t.Fatal(err)
	}
	raw2, _ := json.Marshal(dec)
	if !bytes.Equal(raw, raw2) {
		t.Errorf("corpus result marshal not byte-stable: %s vs %s", raw, raw2)
	}
}

func TestConfigOverridesOptions(t *testing.T) {
	base := core.DefaultConfig()
	if opts := (*ConfigOverrides)(nil).Options(); len(opts) != 0 {
		t.Errorf("nil overrides produced %d options", len(opts))
	}
	o := &ConfigOverrides{Epsilon: 0.25, CoverageSamples: 42, Seed: 7, Parallelism: 2}
	got := core.ApplyOptions(base, o.Options()...)
	if got.Epsilon != 0.25 || got.CoverageSamples != 42 || got.Seed != 7 || got.Parallelism != 2 {
		t.Errorf("overrides not applied: %+v", got)
	}
	if got.PrecisionThreshold != base.PrecisionThreshold || got.BatchSize != base.BatchSize {
		t.Errorf("zero overrides clobbered defaults: %+v", got)
	}
}

func TestParseArchAndHazard(t *testing.T) {
	for _, name := range []string{"", "hsw", "haswell", "HSW", "HASWELL", "Haswell"} {
		if a, err := ParseArch(name); err != nil || a != x86.Haswell {
			t.Errorf("ParseArch(%q) = %v, %v", name, a, err)
		}
	}
	if a, err := ParseArch("skl"); err != nil || a != x86.Skylake {
		t.Errorf("ParseArch(skl) = %v, %v", a, err)
	}
	if _, err := ParseArch("znver4"); err == nil {
		t.Error("ParseArch accepted unknown arch")
	}
	if ArchName(x86.Haswell) != "hsw" || ArchName(x86.Skylake) != "skl" {
		t.Error("ArchName wire names changed")
	}
	for s, want := range map[string]deps.Hazard{"RAW": deps.RAW, "WAR": deps.WAR, "WAW": deps.WAW} {
		if h, err := ParseHazard(s); err != nil || h != want {
			t.Errorf("ParseHazard(%q) = %v, %v", s, h, err)
		}
	}
	if _, err := ParseHazard("RAR"); err == nil {
		t.Error("ParseHazard accepted unknown hazard")
	}
	if _, err := (Feature{Kind: "nope"}).Lib(); err == nil {
		t.Error("Feature.Lib accepted unknown kind")
	}
}

// TestClusterEnvelopesByteStable extends the byte-stability contract to
// the shard protocol: leases and their envelopes cross machine
// boundaries, so unmarshal → marshal must reproduce exact bytes.
func TestClusterEnvelopesByteStable(t *testing.T) {
	check := func(name string, v any, decoded any) {
		t.Helper()
		first, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(first, decoded); err != nil {
			t.Fatal(err)
		}
		second, err := json.Marshal(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%s marshal not byte-stable:\n first %s\nsecond %s", name, first, second)
		}
	}
	check("ShardRequest", &ShardRequest{
		JobID: "job-1", Lease: "job-1/l0", Spec: "uica@hsw", Arch: "hsw",
		Config: ConfigSnapshot{Epsilon: 0.5, PrecisionThreshold: 0.7, CoverageSamples: 1000, BatchSize: 64, Parallelism: 1, Seed: 7},
		Blocks: []ShardBlock{{Index: 3, Seed: -12345, Block: "add rcx, rax"}},
	}, &ShardRequest{})
	check("ShardResponse", &ShardResponse{
		JobID: "job-1", Lease: "job-1/l0",
		Results: []CorpusResult{{Index: 3, Block: "add rcx, rax", Explanation: FromExplanation(explain(t))}},
	}, &ShardResponse{})
	check("JoinRequest", &JoinRequest{URL: "http://w1:8372", Capacity: 2}, &JoinRequest{})
	check("JoinResponse", &JoinResponse{Worker: "http://w1:8372", TTLSeconds: 15}, &JoinResponse{})
	check("ClusterStatus", &ClusterStatus{
		Workers:          []ClusterWorker{{ID: "http://w1:8372", State: "ready", Static: true, Capacity: 1, Inflight: 1, BlocksDone: 9, LeasesDone: 3, Failures: 1}},
		LeasesDispatched: 4, LeasesReleased: 1, StragglerDispatches: 1, WorkerDeaths: 1, BlocksDone: 9, ShardErrors: 2,
	}, &ClusterStatus{})
	check("JobStatus", &JobStatus{
		ID: "job-1", State: JobRunning, Total: 4, Done: 2, Failed: 1,
		BlocksTotal: 4, BlocksDone: 2, BlocksFailed: 1,
		Workers: []WorkerBlocks{{Worker: "http://w1:8372", Blocks: 2}},
	}, &JobStatus{})
}
