package wire

// The COMET frame: the length-prefixed, CRC-32C-checksummed envelope the
// persist layer has always written to disk, promoted to a shared format
// so the network can speak it too. One frame is
//
//	magic "CMT1" (4B) | payload length (4B LE) | CRC-32C of payload (4B LE) | payload
//
// On disk (internal/persist) the payload is a JSON Record; on the wire
// (Content-Type: application/x-comet-frame) it is a versioned binary
// message (see binary.go). The framing guarantees are identical in both
// places: a torn tail is detectable, a corrupted header resynchronizes
// on the next magic marker, and a flipped payload bit fails the checksum.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// FrameContentType is the HTTP content type negotiating COMET frames on
// the wire. Requests carrying it have a single-frame body; responses are
// produced in kind when a request's Accept header lists it. JSON remains
// the default facade on every endpoint.
const FrameContentType = "application/x-comet-frame"

const (
	// FrameHeaderSize is the fixed frame header: magic, payload length,
	// payload CRC-32C.
	FrameHeaderSize = 12
	// MaxFramePayload is the sanity bound on a single frame's payload,
	// shared by the segment log and the network decoder.
	MaxFramePayload = 64 << 20
)

var (
	frameMagic = []byte("CMT1")
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// AppendFrame appends one complete frame carrying payload to dst and
// returns the extended slice. Payloads over MaxFramePayload are refused.
func AppendFrame(dst, payload []byte) ([]byte, error) {
	if len(payload) > MaxFramePayload {
		return dst, fmt.Errorf("wire: frame payload of %d bytes exceeds the %d-byte bound", len(payload), MaxFramePayload)
	}
	dst = append(dst, frameMagic...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...), nil
}

// finishFrame fills in the header of a frame whose payload was appended
// directly after a FrameHeaderSize placeholder at start (the in-place
// counterpart of AppendFrame, for encoders that build the payload into
// the destination buffer).
func finishFrame(buf []byte, start int) ([]byte, error) {
	payload := buf[start+FrameHeaderSize:]
	if len(payload) > MaxFramePayload {
		return buf, fmt.Errorf("wire: frame payload of %d bytes exceeds the %d-byte bound", len(payload), MaxFramePayload)
	}
	copy(buf[start:], frameMagic)
	binary.LittleEndian.PutUint32(buf[start+4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+8:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// VerifyFrame checks that data is exactly one intact frame — magic,
// length, checksum, no trailing bytes — and returns its payload (aliasing
// data, not a copy).
func VerifyFrame(data []byte) ([]byte, error) {
	if len(data) < FrameHeaderSize {
		return nil, fmt.Errorf("wire: frame of %d bytes is shorter than the %d-byte header", len(data), FrameHeaderSize)
	}
	if !bytes.Equal(data[:4], frameMagic) {
		return nil, fmt.Errorf("wire: bad frame magic")
	}
	n := int(binary.LittleEndian.Uint32(data[4:]))
	if n > MaxFramePayload {
		return nil, fmt.Errorf("wire: frame payload length %d exceeds the %d-byte bound", n, MaxFramePayload)
	}
	if FrameHeaderSize+n != len(data) {
		return nil, fmt.Errorf("wire: frame length %d does not match %d payload bytes", len(data), n)
	}
	payload := data[FrameHeaderSize:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[8:]) {
		return nil, fmt.Errorf("wire: frame checksum mismatch")
	}
	return payload, nil
}

// ScanResult reports one ScanFrames pass.
type ScanResult struct {
	// Frames counts intact frames (magic, length, and checksum all good).
	Frames int
	// Corrupt counts framing-level corruption events: bad magic, an
	// oversized length, a failed checksum, or a torn tail.
	Corrupt int
	// GoodEnd is the offset just past the last complete frame — the
	// truncation point when the bytes beyond it are a torn tail.
	GoodEnd int64
}

// ScanFrames walks a byte stream of concatenated frames, invoking cb with
// the payload of every frame that passes the checksum. A corrupted header
// resynchronizes on the next magic marker; an incomplete frame at the end
// is counted as torn. The payload slice aliases data and is only valid
// for the duration of the callback.
func ScanFrames(data []byte, cb func(off, size int64, payload []byte)) ScanResult {
	var res ScanResult
	off := 0
	for off < len(data) {
		if len(data)-off < FrameHeaderSize {
			res.Corrupt++ // torn tail: not even a full header
			return res
		}
		if !bytes.Equal(data[off:off+4], frameMagic) {
			// Corrupted header: count once and resynchronize on the next
			// magic marker.
			res.Corrupt++
			i := bytes.Index(data[off+1:], frameMagic)
			if i < 0 {
				return res
			}
			off += 1 + i
			continue
		}
		n := int(binary.LittleEndian.Uint32(data[off+4:]))
		if n > MaxFramePayload {
			res.Corrupt++
			i := bytes.Index(data[off+1:], frameMagic)
			if i < 0 {
				return res
			}
			off += 1 + i
			continue
		}
		if off+FrameHeaderSize+n > len(data) {
			res.Corrupt++ // torn tail: payload cut short
			return res
		}
		payload := data[off+FrameHeaderSize : off+FrameHeaderSize+n]
		frameSize := int64(FrameHeaderSize + n)
		frameOff := int64(off)
		off += FrameHeaderSize + n
		res.GoodEnd = int64(off)
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[frameOff+8:]) {
			res.Corrupt++
			continue
		}
		res.Frames++
		if cb != nil {
			cb(frameOff, frameSize, payload)
		}
	}
	return res
}

// FrameReader reads a stream of concatenated frames (the body of a
// chunked /v1/jobs/{id}/stream response, for example). Unlike ScanFrames
// it is strict: any framing error fails the stream, because a live HTTP
// body — unlike a crashed segment file — has no legitimate torn tail.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewFrameReader wraps r for frame-at-a-time reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Next returns the payload of the next frame, or io.EOF at a clean
// end-of-stream. The returned slice is reused by the next call.
func (fr *FrameReader) Next() ([]byte, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return nil, err // io.EOF: clean boundary
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("wire: truncated frame header: %w", err)
	}
	if !bytes.Equal(hdr[:4], frameMagic) {
		return nil, fmt.Errorf("wire: bad frame magic in stream")
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	if n > MaxFramePayload {
		return nil, fmt.Errorf("wire: stream frame payload length %d exceeds the %d-byte bound", n, MaxFramePayload)
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		return nil, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(hdr[8:]) {
		return nil, fmt.Errorf("wire: frame checksum mismatch in stream")
	}
	return buf, nil
}

// bufPool recycles encode buffers across the explain, shard, and stream
// paths so steady-state encoding allocates nothing.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer borrows a zero-length byte buffer from the shared pool.
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer returns a buffer to the pool. Oversized buffers (from a rare
// giant response) are dropped instead of pinned.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > 1<<20 {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
