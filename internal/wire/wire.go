// Package wire defines the stable JSON wire format shared by the comet
// CLI (-json) and the cometd explanation service (cmd/comet-serve). The
// format is a faithful, versionable projection of the library types —
// features.Feature/Set, core.Explanation, core.CorpusResult — onto plain
// JSON-friendly structs, plus the request and job envelopes the HTTP API
// speaks.
//
// Two guarantees hold for every type in this package:
//
//  1. Round-trip with the library: FromExplanation followed by
//     Explanation.Core (and likewise for features) reconstructs a value
//     whose identity — feature keys, prediction, accounting — is equal to
//     the original.
//  2. Byte stability: unmarshal followed by marshal reproduces the exact
//     bytes produced by this package. All types marshal through ordered
//     struct fields (never maps), so encoding/json output is
//     deterministic.
package wire

import (
	"fmt"
	"strings"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/features"
	"github.com/comet-explain/comet/internal/x86"
)

// Feature is the wire form of one explanation feature.
type Feature struct {
	// Kind is "inst", "dep", or "count".
	Kind string `json:"kind"`
	// Index is the 0-based instruction position (kind "inst").
	Index int `json:"index,omitempty"`
	// Opcode is the instruction mnemonic (kind "inst").
	Opcode string `json:"opcode,omitempty"`
	// Src and Dst are 0-based endpoints of a dependency edge (kind "dep").
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// Hazard is "RAW", "WAR", or "WAW" (kind "dep").
	Hazard string `json:"hazard,omitempty"`
	// Count is the instruction count η (kind "count").
	Count int `json:"count,omitempty"`
	// Text is the human-readable rendering fixed at extraction time.
	Text string `json:"text,omitempty"`
}

// Wire names for the feature kinds (these match features.Kind.String for
// "inst"; the dependency and count kinds use ASCII-safe names instead of
// the paper's δ and η glyphs).
const (
	KindInstr = "inst"
	KindDep   = "dep"
	KindCount = "count"
)

// kindName maps a library feature kind to its wire name.
func kindName(k features.Kind) string {
	switch k {
	case features.KindInstr:
		return KindInstr
	case features.KindDep:
		return KindDep
	case features.KindCount:
		return KindCount
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// parseKind maps a wire kind name back to the library kind.
func parseKind(s string) (features.Kind, error) {
	switch s {
	case KindInstr:
		return features.KindInstr, nil
	case KindDep:
		return features.KindDep, nil
	case KindCount:
		return features.KindCount, nil
	}
	return 0, fmt.Errorf("wire: unknown feature kind %q", s)
}

// ParseHazard maps "RAW"/"WAR"/"WAW" to the library hazard type.
func ParseHazard(s string) (deps.Hazard, error) {
	switch s {
	case "RAW":
		return deps.RAW, nil
	case "WAR":
		return deps.WAR, nil
	case "WAW":
		return deps.WAW, nil
	}
	return 0, fmt.Errorf("wire: unknown hazard %q", s)
}

// FromFeature projects a library feature onto the wire.
func FromFeature(f features.Feature) Feature {
	w := Feature{Kind: kindName(f.Kind), Text: f.String()}
	switch f.Kind {
	case features.KindInstr:
		w.Index, w.Opcode = f.Index, f.Opcode
	case features.KindDep:
		w.Src, w.Dst, w.Hazard = f.Src, f.Dst, f.Hazard.String()
	case features.KindCount:
		w.Count = f.Count
	}
	return w
}

// Lib reconstructs the library feature. The reconstructed feature has the
// same Key (identity) and String rendering as the original.
func (w Feature) Lib() (features.Feature, error) {
	kind, err := parseKind(w.Kind)
	if err != nil {
		return features.Feature{}, err
	}
	f := features.Feature{Kind: kind, Text: w.Text}
	switch kind {
	case features.KindInstr:
		f.Index, f.Opcode = w.Index, w.Opcode
	case features.KindDep:
		h, err := ParseHazard(w.Hazard)
		if err != nil {
			return features.Feature{}, err
		}
		f.Src, f.Dst, f.Hazard = w.Src, w.Dst, h
	case features.KindCount:
		f.Count = w.Count
	}
	return f, nil
}

// FeatureSet is the wire form of an ordered feature set.
type FeatureSet []Feature

// FromFeatureSet projects a library feature set onto the wire, preserving
// order.
func FromFeatureSet(s features.Set) FeatureSet {
	out := make(FeatureSet, len(s))
	for i, f := range s {
		out[i] = FromFeature(f)
	}
	return out
}

// Lib reconstructs the library feature set.
func (ws FeatureSet) Lib() (features.Set, error) {
	fs := make([]features.Feature, len(ws))
	for i, w := range ws {
		f, err := w.Lib()
		if err != nil {
			return nil, fmt.Errorf("feature %d: %w", i, err)
		}
		fs[i] = f
	}
	return features.NewSet(fs...), nil
}

// Explanation is the wire form of core.Explanation. Block is the block's
// canonical Intel-syntax text (one instruction per line) — exactly the
// input a cost model sees, and exactly what ParseBlock accepts back.
type Explanation struct {
	Block      string     `json:"block"`
	Model      string     `json:"model"`
	Prediction float64    `json:"prediction"`
	Features   FeatureSet `json:"features"`
	Precision  float64    `json:"precision"`
	Coverage   float64    `json:"coverage"`
	Certified  bool       `json:"certified"`
	Queries    int        `json:"queries"`
	CacheHits  int        `json:"cache_hits"`
	ModelCalls int        `json:"model_calls"`
	// Profile is the optional per-explanation profile, attached only when
	// a caller asks for it (?profile=1, comet -profile). It is never set
	// on corpus results, persisted records, or shard responses: its wall
	// times are nondeterministic, and those paths are covered by a
	// byte-identity contract (see FromExplanation).
	Profile *Profile `json:"profile,omitempty"`
}

// Profile breaks one explanation down by pipeline stage: where the wall
// time went (microseconds), how many model queries it took, and which
// layer served the request. Source is one of "computed", "coalesced",
// "result-store", "intern", or "persist" — for anything but "computed"
// the stage times describe the original computation that produced the
// cached value, not the serving request.
type Profile struct {
	Source      string `json:"source,omitempty"`
	SetupUS     int64  `json:"setup_us,omitempty"`     // parse, canonicalize, perturbation-space construction
	SearchUS    int64  `json:"search_us,omitempty"`    // anchors beam search, including its model queries
	ModelUS     int64  `json:"model_us,omitempty"`     // time inside cost-model batch calls
	PrecisionUS int64  `json:"precision_us,omitempty"` // final KL-LUCB precision sampling
	CoverageUS  int64  `json:"coverage_us,omitempty"`  // coverage pool construction and estimate
	StoreUS     int64  `json:"store_us,omitempty"`     // artifact-store write
	TotalUS     int64  `json:"total_us,omitempty"`
	Queries     int    `json:"queries,omitempty"`
	CacheHits   int    `json:"cache_hits,omitempty"`
	ModelCalls  int    `json:"model_calls,omitempty"`
	Batches     int    `json:"batches,omitempty"` // cost-model batch calls issued
}

// FromExplanation projects a library explanation onto the wire. The
// engine's profile is deliberately dropped: corpus, cluster, and persist
// paths all compare results byte-for-byte across runs, and wall times
// never reproduce. Callers that want the profile attach it explicitly
// with FromProfile on a fresh copy.
func FromExplanation(e *core.Explanation) *Explanation {
	if e == nil {
		return nil
	}
	return &Explanation{
		Block:      e.Block.String(),
		Model:      e.Model,
		Prediction: e.Prediction,
		Features:   FromFeatureSet(e.Features),
		Precision:  e.Precision,
		Coverage:   e.Coverage,
		Certified:  e.Certified,
		Queries:    e.Queries,
		CacheHits:  e.CacheHits,
		ModelCalls: e.ModelCalls,
	}
}

// Core reconstructs the library explanation, reparsing the block text.
func (w *Explanation) Core() (*core.Explanation, error) {
	b, err := x86.ParseBlock(w.Block)
	if err != nil {
		return nil, fmt.Errorf("wire: block: %w", err)
	}
	set, err := w.Features.Lib()
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return &core.Explanation{
		Block:      b,
		Model:      w.Model,
		Prediction: w.Prediction,
		Features:   set,
		Precision:  w.Precision,
		Coverage:   w.Coverage,
		Certified:  w.Certified,
		Queries:    w.Queries,
		CacheHits:  w.CacheHits,
		ModelCalls: w.ModelCalls,
	}, nil
}

// FromProfile projects the engine's stage profile onto the wire with
// Source "computed".
func FromProfile(p *core.Profile) *Profile {
	if p == nil {
		return nil
	}
	return &Profile{
		Source:      "computed",
		SetupUS:     p.Setup.Microseconds(),
		SearchUS:    p.Search.Microseconds(),
		ModelUS:     p.Model.Microseconds(),
		PrecisionUS: p.Precision.Microseconds(),
		CoverageUS:  p.Coverage.Microseconds(),
		StoreUS:     p.Store.Microseconds(),
		TotalUS:     p.Total.Microseconds(),
		Queries:     p.Queries,
		CacheHits:   p.CacheHits,
		ModelCalls:  p.ModelCalls,
		Batches:     p.Batches,
	}
}

// CorpusResult is the wire form of one corpus outcome: exactly one of
// Explanation and Error is set.
type CorpusResult struct {
	Index       int          `json:"index"`
	Block       string       `json:"block"`
	Explanation *Explanation `json:"explanation,omitempty"`
	Error       string       `json:"error,omitempty"`
}

// FromCorpusResult projects a streamed corpus result onto the wire.
func FromCorpusResult(r core.CorpusResult) CorpusResult {
	w := CorpusResult{Index: r.Index}
	if r.Block != nil {
		w.Block = r.Block.String()
	}
	if r.Err != nil {
		w.Error = r.Err.Error()
	} else {
		w.Explanation = FromExplanation(r.Explanation)
	}
	return w
}

// ConfigOverrides carries the per-request explanation hyperparameters the
// API exposes. Zero values mean "server default"; Parallelism defaults to
// 1 on the server so explanations are reproducible regardless of
// concurrent load (precision sampling is deterministic per worker count).
type ConfigOverrides struct {
	Epsilon            float64 `json:"epsilon,omitempty"`
	PrecisionThreshold float64 `json:"precision_threshold,omitempty"`
	CoverageSamples    int     `json:"coverage_samples,omitempty"`
	BatchSize          int     `json:"batch_size,omitempty"`
	Parallelism        int     `json:"parallelism,omitempty"`
	Seed               int64   `json:"seed,omitempty"`
}

// Options compiles the non-zero overrides down to the library's
// per-request functional options — the same ExplainOption values a direct
// comet.ExplainContext caller would pass, so served explanations and
// library explanations share one configuration path.
func (o *ConfigOverrides) Options() []core.ExplainOption {
	if o == nil {
		return nil
	}
	var opts []core.ExplainOption
	if o.Epsilon > 0 {
		opts = append(opts, core.WithEpsilon(o.Epsilon))
	}
	if o.PrecisionThreshold > 0 {
		opts = append(opts, core.WithPrecisionThreshold(o.PrecisionThreshold))
	}
	if o.CoverageSamples > 0 {
		opts = append(opts, core.WithCoverageSamples(o.CoverageSamples))
	}
	if o.BatchSize > 0 {
		opts = append(opts, core.WithBatchSize(o.BatchSize))
	}
	if o.Parallelism > 0 {
		opts = append(opts, core.WithParallelism(o.Parallelism))
	}
	if o.Seed != 0 {
		opts = append(opts, core.WithSeed(o.Seed))
	}
	return opts
}

// ExplainRequest is the body of POST /v1/explain.
type ExplainRequest struct {
	// Block is the basic block in Intel syntax, one instruction per line.
	Block string `json:"block"`
	// Model selects the cost model: c | uica | mca | hwsim | ithemal
	// (default: the server's configured default, normally uica).
	Model string `json:"model,omitempty"`
	// Arch selects the microarchitecture: hsw | skl (default hsw).
	Arch string `json:"arch,omitempty"`
	// Config overrides individual explanation hyperparameters.
	Config *ConfigOverrides `json:"config,omitempty"`
}

// CorpusRequest is the body of POST /v1/corpus.
type CorpusRequest struct {
	// Blocks are the corpus blocks, each in Intel syntax.
	Blocks []string `json:"blocks"`
	// Model, Arch, Config: as in ExplainRequest.
	Model  string           `json:"model,omitempty"`
	Arch   string           `json:"arch,omitempty"`
	Config *ConfigOverrides `json:"config,omitempty"`
	// Workers bounds the job's block-level concurrency (0 = server
	// default). Explanations are identical at any worker count.
	Workers int `json:"workers,omitempty"`
	// Stream marks the job stream-only: results are delivered exclusively
	// through GET /v1/jobs/{id}/stream and the server retains only a
	// bounded ring of recent results instead of the full result set, so
	// arbitrarily large corpus jobs run in flat memory. Poll responses for
	// a stream-only job carry progress counts but no Results pages, and a
	// stream reader that falls behind the ring is disconnected with an
	// error event.
	Stream bool `json:"stream,omitempty"`
}

// StreamEvent is one NDJSON line of GET /v1/jobs/{id}/stream (in binary
// negotiation each event is one frame instead). Exactly one field is set:
// Result for each completed block, then a final Done carrying the job's
// terminal summary, or Error if the stream aborts (for example a lagged
// reader on a stream-only job).
type StreamEvent struct {
	Result *CorpusResult `json:"result,omitempty"`
	Done   *JobSummary   `json:"done,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// PredictRequest is the body of POST /v1/predict, the batch cost-model
// endpoint that turns any comet-serve instance into a queryable cost
// model backend. An empty Blocks slice is the discovery handshake: the
// server resolves the model and returns its identity (canonical spec,
// name, arch, ε) with no predictions.
type PredictRequest struct {
	// Blocks are basic blocks in Intel syntax, one prediction each.
	Blocks []string `json:"blocks"`
	// Model is a model spec (name[@target][?k=v]); empty means the
	// server's default model.
	Model string `json:"model,omitempty"`
	// Arch is the target microarchitecture used when the spec has no
	// explicit target: hsw | skl (default hsw).
	Arch string `json:"arch,omitempty"`
}

// PredictResponse is the body of a successful POST /v1/predict.
type PredictResponse struct {
	// Model is the resolved model's name (e.g. "uica").
	Model string `json:"model"`
	// Arch is the resolved model's microarchitecture ("hsw"/"skl").
	Arch string `json:"arch"`
	// Spec is the canonical spec the server resolved the request to.
	Spec string `json:"spec"`
	// Epsilon is the model's recommended ε-ball radius.
	Epsilon float64 `json:"epsilon"`
	// Predictions has one throughput per request block, in order.
	Predictions []float64 `json:"predictions"`
}

// ModelParam is one key=value default in a model's discovery record
// (an ordered struct pair rather than a map, keeping the wire package's
// byte-stability guarantee).
type ModelParam struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// ModelInfo is one registered model family in GET /v1/models.
type ModelInfo struct {
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description,omitempty"`
	// Spec is the canonical spec string resolving the model with every
	// default ("uica@hsw", "remote@<url>").
	Spec    string  `json:"spec"`
	Epsilon float64 `json:"epsilon,omitempty"`
	// Defaults enumerates the accepted parameters and their default
	// values, sorted by key.
	Defaults []ModelParam `json:"defaults,omitempty"`
}

// ModelsResponse is the body of GET /v1/models.
type ModelsResponse struct {
	// Models lists every registered model family, sorted by name.
	Models []ModelInfo `json:"models"`
	// Warmed lists the canonical specs with a live, warmed instance in
	// this server (one shared model + prediction cache each).
	Warmed []string `json:"warmed,omitempty"`
}

// ShardBlock is one block of a shard lease: the block's canonical text,
// its index in the original corpus, and the per-block seed the
// coordinator derived from the job's base seed (core.BlockSeed). Seeds
// travel with the lease so any worker — on any machine, at any worker
// count — produces bytes identical to a single-process run.
type ShardBlock struct {
	Index int    `json:"index"`
	Seed  int64  `json:"seed"`
	Block string `json:"block"`
}

// ShardRequest is the body of POST /v1/shard: one lease of a sharded
// corpus job, dispatched by a cluster coordinator to a worker. Spec is
// the canonical model spec and Config the job's full effective
// configuration, so the worker reconstructs exactly the computation the
// coordinator would have run locally.
type ShardRequest struct {
	JobID string `json:"job_id"`
	Lease string `json:"lease"`
	// Spec is the canonical model spec the job runs under.
	Spec string `json:"spec"`
	// Arch fills in the spec's target when it has none ("" = hsw).
	Arch string `json:"arch,omitempty"`
	// Config is the job's effective explanation configuration.
	Config ConfigSnapshot `json:"config"`
	// Blocks are the leased blocks with their corpus indices and seeds.
	Blocks []ShardBlock `json:"blocks"`
	// Workers bounds the worker's block-level concurrency for this lease
	// (0 = the worker's default). Results are identical at any count.
	Workers int `json:"workers,omitempty"`
}

// ShardResponse is the body of a successful POST /v1/shard. Results
// carry the original corpus indices and are sorted by index.
type ShardResponse struct {
	JobID   string         `json:"job_id"`
	Lease   string         `json:"lease"`
	Results []CorpusResult `json:"results"`
}

// JoinRequest is the body of POST /v1/cluster/join — a worker's initial
// self-registration with a coordinator and every subsequent heartbeat
// (join is idempotent; re-joining refreshes the heartbeat clock).
type JoinRequest struct {
	// URL is the worker's advertised base URL ("http://host:port").
	URL string `json:"url"`
	// Capacity is how many leases the worker accepts concurrently (0 = 1).
	Capacity int `json:"capacity,omitempty"`
}

// JoinResponse is the body of a successful POST /v1/cluster/join.
type JoinResponse struct {
	// Worker is the coordinator's id for this worker (its canonical URL).
	Worker string `json:"worker"`
	// TTLSeconds is how long the registration lasts without another
	// heartbeat; workers should re-join at a comfortably shorter interval.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// ClusterWorker is one worker in GET /v1/cluster.
type ClusterWorker struct {
	ID string `json:"id"`
	// State is "ready", "joining" (readiness not yet probed), "down"
	// (failed a dispatch or probe; re-probed after a backoff), or
	// "expired" (a dynamic worker whose heartbeats stopped).
	State string `json:"state"`
	// Static marks workers from the coordinator's -workers list (they
	// never expire; dynamic workers joined via POST /v1/cluster/join).
	Static   bool `json:"static,omitempty"`
	Capacity int  `json:"capacity"`
	// Inflight is the number of leases currently dispatched to the worker.
	Inflight int `json:"inflight"`
	// BlocksDone and LeasesDone count completed work; Failures counts
	// failed dispatches attributed to this worker.
	BlocksDone int `json:"blocks_done"`
	LeasesDone int `json:"leases_done"`
	Failures   int `json:"failures"`
}

// ClusterStatus is the body of GET /v1/cluster: the worker pool and the
// lease scheduler's lifetime counters.
type ClusterStatus struct {
	Workers             []ClusterWorker `json:"workers"`
	LeasesDispatched    uint64          `json:"leases_dispatched"`
	LeasesReleased      uint64          `json:"leases_released"`
	StragglerDispatches uint64          `json:"straggler_dispatches"`
	WorkerDeaths        uint64          `json:"worker_deaths"`
	BlocksDone          uint64          `json:"blocks_done"`
	ShardErrors         uint64          `json:"shard_errors"`
}

// Job states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobAccepted is the 202 body of POST /v1/corpus.
type JobAccepted struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Total int    `json:"total"`
}

// JobStatus is the body of GET /v1/jobs/{id}. Results are paginated with
// ?offset=&limit= over the job's completed results in block-index order;
// NextOffset is the offset of the first result not included (equal to
// Offset+len(Results); poll again from there).
type JobStatus struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// BlocksTotal/BlocksDone/BlocksFailed are the progress fields under
	// the names dashboards and load balancers consume; they always equal
	// Total/Done/Failed (which predate them and stay for compatibility).
	BlocksTotal  int    `json:"blocks_total"`
	BlocksDone   int    `json:"blocks_done"`
	BlocksFailed int    `json:"blocks_failed"`
	Error        string `json:"error,omitempty"`
	// Workers attributes completed blocks to the cluster workers that
	// produced them (coordinator-run jobs only; "local" for blocks the
	// coordinator computed itself on fallback). Sorted by worker id.
	Workers    []WorkerBlocks `json:"workers,omitempty"`
	Offset     int            `json:"offset"`
	NextOffset int            `json:"next_offset"`
	Results    []CorpusResult `json:"results,omitempty"`
}

// WorkerBlocks is one worker's completed-block count in a cluster job.
type WorkerBlocks struct {
	Worker string `json:"worker"`
	Blocks int    `json:"blocks"`
}

// Error is the JSON error envelope every non-2xx response carries.
type Error struct {
	Error string `json:"error"`
}

// ArchName returns the wire name of a microarchitecture.
func ArchName(a x86.Arch) string {
	switch a {
	case x86.Haswell:
		return "hsw"
	case x86.Skylake:
		return "skl"
	}
	return a.String()
}

// ParseArch maps a wire arch name ("hsw"/"haswell"/"skl"/"skylake", any
// case) to the library arch. The empty string means Haswell.
func ParseArch(name string) (x86.Arch, error) {
	switch strings.ToLower(name) {
	case "", "hsw", "haswell":
		return x86.Haswell, nil
	case "skl", "skylake":
		return x86.Skylake, nil
	}
	return x86.Haswell, fmt.Errorf("wire: unknown arch %q (want hsw or skl)", name)
}
