package wire

// The persisted record envelope: internal/persist appends wire-format
// records to its segment log, so the on-disk schema is the same stable,
// byte-deterministic JSON the HTTP API speaks. Every persisted record is
// wrapped in a Record carrying the envelope version, the record kind, and
// the store key; exactly one payload field is set, matching Kind.

import (
	"github.com/comet-explain/comet/internal/core"
)

// RecordVersion is the current version of the persisted record envelope.
// Readers skip records with a version they don't understand instead of
// failing the whole store, so the format can evolve without migrations.
const RecordVersion = 1

// Record kinds. Explanation records are content-addressed artifacts;
// job and job-result records checkpoint asynchronous corpus jobs so a
// restarted server resumes them where they stopped.
const (
	RecordExplanation = "explanation"
	RecordJob         = "job"
	RecordJobResult   = "job_result"
)

// Record is the versioned envelope internal/persist writes to disk, one
// length-prefixed, checksummed frame per record.
type Record struct {
	// V is the envelope version (RecordVersion at write time).
	V int `json:"v"`
	// Kind is one of the Record* kind constants.
	Kind string `json:"kind"`
	// Key is the store key: the content address for explanations, the
	// job ID for job envelopes, "jobID/index" for job results.
	Key string `json:"key"`
	// Spec is the canonical model spec the artifact was computed under
	// (explanations and jobs), kept alongside the hashed key so stores
	// are auditable with comet-store without external context.
	Spec string `json:"spec,omitempty"`
	// Config is the effective explanation configuration for explanation
	// records (jobs carry theirs inside the envelope).
	Config *ConfigSnapshot `json:"config,omitempty"`

	Explanation *Explanation `json:"explanation,omitempty"`
	Job         *JobEnvelope `json:"job,omitempty"`
	Result      *JobResult   `json:"result,omitempty"`
}

// ConfigSnapshot is the fully resolved explanation configuration an
// artifact was computed under — every field that changes explanation
// bytes (the Γ perturbation and beam-search settings are assumed to be
// the package defaults). Unlike ConfigOverrides, all fields are written:
// a snapshot records what actually ran, not what a client requested.
type ConfigSnapshot struct {
	Epsilon            float64 `json:"epsilon"`
	PrecisionThreshold float64 `json:"precision_threshold"`
	CoverageSamples    int     `json:"coverage_samples"`
	BatchSize          int     `json:"batch_size"`
	Parallelism        int     `json:"parallelism"`
	Seed               int64   `json:"seed"`
}

// SnapshotConfig captures the identity-bearing fields of an effective
// config. cfg should already be normalized (core.ApplyOptions or
// Explainer.EffectiveConfig), so zero values never reach the snapshot.
func SnapshotConfig(cfg core.Config) ConfigSnapshot {
	return ConfigSnapshot{
		Epsilon:            cfg.Epsilon,
		PrecisionThreshold: cfg.PrecisionThreshold,
		CoverageSamples:    cfg.CoverageSamples,
		BatchSize:          cfg.BatchSize,
		Parallelism:        cfg.Parallelism,
		Seed:               cfg.Seed,
	}
}

// Apply overlays the snapshot onto a base config and normalizes the
// result, reconstructing the effective config a persisted artifact ran
// under — the resume path's counterpart to SnapshotConfig.
func (s ConfigSnapshot) Apply(base core.Config) core.Config {
	base.Epsilon = s.Epsilon
	base.PrecisionThreshold = s.PrecisionThreshold
	base.CoverageSamples = s.CoverageSamples
	base.BatchSize = s.BatchSize
	base.Parallelism = s.Parallelism
	base.Seed = s.Seed
	return core.ApplyOptions(base)
}

// JobEnvelope persists everything needed to resume a corpus job on a
// fresh process: identity, input blocks, the canonical model spec, and
// the effective configuration. Completed results are persisted separately
// as RecordJobResult records, so the envelope is written only on state
// transitions while results append as blocks finish.
type JobEnvelope struct {
	ID      string         `json:"id"`
	State   string         `json:"state"`
	Spec    string         `json:"spec"`
	Blocks  []string       `json:"blocks"`
	Config  ConfigSnapshot `json:"config"`
	Workers int            `json:"workers,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// JobResult is one persisted completed block of a corpus job.
type JobResult struct {
	JobID string `json:"job_id"`
	CorpusResult
}

// JobSummary is one job in GET /v1/jobs.
type JobSummary struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	Error  string `json:"error,omitempty"`
	// Restored marks jobs reloaded from the durable store at startup
	// (finished jobs served from history, or interrupted jobs resumed).
	Restored bool `json:"restored,omitempty"`
}

// JobsResponse is the body of GET /v1/jobs: every job the server knows —
// queued, running, finished (until history eviction), and jobs restored
// from the durable store after a restart — sorted by ID.
type JobsResponse struct {
	Jobs []JobSummary `json:"jobs"`
}
