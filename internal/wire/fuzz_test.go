package wire

// Go-native fuzz targets for the frame scanner, the binary payload
// decoder, and the JSON wire types. The committed seed corpus lives in
// testdata/fuzz/<FuzzName>/; regenerate it after changing the codec with
//
//	COMET_WRITE_FUZZ_SEEDS=1 go test -run TestWriteFuzzSeeds ./internal/wire
//
// CI runs each target briefly via `make fuzz-smoke`; the invariant under
// fuzz is that hostile bytes never panic, never decode to something that
// re-encodes differently, and never size an allocation from an
// unvalidated length field.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// fuzzBinarySeeds: one intact frame per message type, plus framing edge
// cases (empty input, bare header, torn and corrupted frames).
func fuzzBinarySeeds(tb testing.TB) [][]byte {
	seeds := [][]byte{
		{},
		[]byte("CMT1"),
		[]byte("not a frame at all"),
	}
	for _, msg := range sampleMessages() {
		data, err := EncodeBinary(msg)
		if err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, data)
		if len(data) > FrameHeaderSize+2 {
			seeds = append(seeds, data[:len(data)-3]) // torn tail
			mut := append([]byte(nil), data...)
			mut[len(mut)-1] ^= 0xFF // checksum failure
			seeds = append(seeds, mut)
		}
	}
	return seeds
}

// fuzzScanSeeds: concatenated frame streams with garbage between frames,
// the shape ScanFrames exists to resynchronize over.
func fuzzScanSeeds(tb testing.TB) [][]byte {
	msgs := sampleMessages()
	frame := func(i int) []byte {
		data, err := EncodeBinary(msgs[i%len(msgs)])
		if err != nil {
			tb.Fatal(err)
		}
		return data
	}
	var stream []byte
	for i := 0; i < 4; i++ {
		stream = append(stream, frame(i)...)
	}
	withGarbage := append([]byte(nil), frame(0)...)
	withGarbage = append(withGarbage, []byte("garbage between frames")...)
	withGarbage = append(withGarbage, frame(1)...)
	torn := append(append([]byte(nil), frame(2)...), frame(3)[:9]...)
	return append(fuzzBinarySeeds(tb), stream, withGarbage, torn)
}

// jsonFuzzTargets returns fresh zero values of every wire type the JSON
// facade parses, for FuzzWireJSON to attempt in turn.
func jsonFuzzTargets() []any {
	return []any{
		&Explanation{}, &CorpusResult{}, &ExplainRequest{}, &CorpusRequest{},
		&PredictRequest{}, &PredictResponse{}, &ShardRequest{}, &ShardResponse{},
		&JoinRequest{}, &Error{}, &JobSummary{}, &StreamEvent{},
	}
}

// FuzzDecodeBinary: arbitrary bytes through the full frame+payload
// decoder. A successful decode must re-encode to a frame that decodes to
// the JSON-identical message — the codec has exactly one representation
// per value.
func FuzzDecodeBinary(f *testing.F) {
	for _, s := range fuzzBinarySeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeBinary(data)
		if err != nil {
			return
		}
		re, err := EncodeBinary(msg)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, err)
		}
		msg2, err := DecodeBinary(re)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", msg, err)
		}
		j1, err1 := json.Marshal(msg)
		j2, err2 := json.Marshal(msg2)
		if err1 != nil || err2 != nil || !bytes.Equal(j1, j2) {
			t.Fatalf("round trip changed %T:\n first %s (%v)\nsecond %s (%v)",
				msg, j1, err1, j2, err2)
		}
	})
}

// FuzzScanFrames: the resynchronizing scanner over arbitrary bytes. Every
// yielded payload must be a genuine checksummed frame (re-framing it
// verifies), offsets must stay in bounds, and the strict FrameReader over
// the same bytes must never panic.
func FuzzScanFrames(f *testing.F) {
	for _, s := range fuzzScanSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		res := ScanFrames(data, func(off, size int64, payload []byte) {
			if off < 0 || size < FrameHeaderSize || off+size > int64(len(data)) {
				t.Fatalf("frame out of bounds: off=%d size=%d len=%d", off, size, len(data))
			}
			payloads = append(payloads, append([]byte(nil), payload...))
		})
		if res.Frames != len(payloads) {
			t.Fatalf("Frames=%d but callback ran %d times", res.Frames, len(payloads))
		}
		if res.GoodEnd < 0 || res.GoodEnd > int64(len(data)) {
			t.Fatalf("GoodEnd=%d outside [0,%d]", res.GoodEnd, len(data))
		}
		for _, p := range payloads {
			framed, err := AppendFrame(nil, p)
			if err != nil {
				t.Fatalf("yielded payload does not re-frame: %v", err)
			}
			v, err := VerifyFrame(framed)
			if err != nil || !bytes.Equal(v, p) {
				t.Fatalf("re-framed payload does not verify: %v", err)
			}
		}
		fr := NewFrameReader(bytes.NewReader(data))
		strict := 0
		for {
			if _, err := fr.Next(); err != nil {
				break
			}
			strict++
			if strict > res.Frames {
				// The strict reader stops at the first framing error, so it
				// can never read more intact frames than the scanner found.
				t.Fatalf("FrameReader read %d frames, scanner found %d", strict, res.Frames)
			}
		}
	})
}

// FuzzWireJSON: arbitrary bytes through the JSON facade's unmarshal
// paths. Anything that parses must marshal to a stable fixed point
// (marshal→unmarshal→marshal is byte-identical), the property the
// byte-identity guarantee between encodings is built on.
func FuzzWireJSON(f *testing.F) {
	for _, msg := range sampleMessages() {
		data, err := json.Marshal(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"block":"add rax, rbx","config":{"seed":-1}}`))
	f.Add([]byte(`{"event":"error","error":"stream lagged"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, proto := range jsonFuzzTargets() {
			tgt := reflect.New(reflect.TypeOf(proto).Elem()).Interface()
			if json.Unmarshal(data, tgt) != nil {
				continue
			}
			m1, err := json.Marshal(tgt)
			if err != nil {
				t.Fatalf("%T unmarshaled but does not marshal: %v", tgt, err)
			}
			again := reflect.New(reflect.TypeOf(proto).Elem()).Interface()
			if err := json.Unmarshal(m1, again); err != nil {
				t.Fatalf("%T does not re-parse its own output %s: %v", tgt, m1, err)
			}
			m2, err := json.Marshal(again)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(m1, m2) {
				t.Fatalf("%T JSON not a fixed point:\n first %s\nsecond %s", tgt, m1, m2)
			}
		}
	})
}

// TestWriteFuzzSeeds regenerates the committed corpus under
// testdata/fuzz/ when COMET_WRITE_FUZZ_SEEDS=1; otherwise it verifies
// the corpus directories are present (so a codec change that forgets to
// re-run the generator still ships *a* corpus).
func TestWriteFuzzSeeds(t *testing.T) {
	write := os.Getenv("COMET_WRITE_FUZZ_SEEDS") == "1"
	jsonSeeds := make([][]byte, 0, len(sampleMessages()))
	for _, msg := range sampleMessages() {
		data, err := json.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		jsonSeeds = append(jsonSeeds, data)
	}
	corpora := map[string][][]byte{
		"FuzzDecodeBinary": fuzzBinarySeeds(t),
		"FuzzScanFrames":   fuzzScanSeeds(t),
		"FuzzWireJSON":     jsonSeeds,
	}
	for name, seeds := range corpora {
		dir := filepath.Join("testdata", "fuzz", name)
		if !write {
			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) == 0 {
				t.Errorf("%s: committed seed corpus missing (regenerate with COMET_WRITE_FUZZ_SEEDS=1)", dir)
			}
			continue
		}
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			path := filepath.Join(dir, fmt.Sprintf("seed-%03d", i))
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("%s: wrote %d seeds", dir, len(seeds))
	}
}
