package wire

// Tests for the binary frame codec: every message type round-trips
// binary→struct→JSON byte-identically to the JSON-only path, hostile
// inputs (truncations, bit flips, lying length fields) error instead of
// panicking or over-allocating, and the encode path stays allocation-free
// when the destination buffer is reused.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// sampleExplanation populates every Explanation field, including one
// feature of each kind.
func sampleExplanation() *Explanation {
	return &Explanation{
		Block:      "add rcx, rax\nmov rdx, rcx\npop rbx",
		Model:      "uica",
		Prediction: 1.75,
		Features: FeatureSet{
			{Kind: KindInstr, Index: 1, Opcode: "mov", Text: "instruction 1 (mov)"},
			{Kind: KindDep, Src: 0, Dst: 1, Hazard: "RAW", Text: "dep 0->1 (RAW)"},
			{Kind: KindCount, Count: 3, Text: "count = 3"},
		},
		Precision:  0.9875,
		Coverage:   0.421,
		Certified:  true,
		Queries:    1234,
		CacheHits:  567,
		ModelCalls: 890,
		Profile: &Profile{
			Source:      "computed",
			SetupUS:     120,
			SearchUS:    45000,
			ModelUS:     30000,
			PrecisionUS: 12000,
			CoverageUS:  800,
			StoreUS:     95,
			TotalUS:     46015,
			Queries:     1234,
			CacheHits:   567,
			ModelCalls:  890,
			Batches:     14,
		},
	}
}

// sampleMessages covers every binary message kind, with both fully
// populated values and the zero-ish edge shapes (nil config, empty
// batches, error results).
func sampleMessages() []any {
	expl := sampleExplanation()
	snap := ConfigSnapshot{
		Epsilon:            0.5,
		PrecisionThreshold: 0.95,
		CoverageSamples:    1000,
		BatchSize:          64,
		Parallelism:        1,
		Seed:               -42,
	}
	return []any{
		expl,
		&Explanation{Block: "pop rbx", Model: "c"}, // no profile
		&CorpusResult{Index: 7, Block: expl.Block, Explanation: expl},
		&CorpusResult{Index: 8, Block: "pop rbx", Error: "model exploded"},
		&ExplainRequest{Block: expl.Block, Model: "c", Arch: "skl",
			Config: &ConfigOverrides{Epsilon: 0.25, PrecisionThreshold: 0.9,
				CoverageSamples: 200, BatchSize: 32, Parallelism: 2, Seed: -7}},
		&ExplainRequest{Block: "add rax, rbx"},
		&PredictRequest{Blocks: []string{"add rax, rbx", "pop rcx"}, Model: "uica", Arch: "hsw"},
		&PredictRequest{},
		&PredictResponse{Model: "uica", Arch: "hsw", Spec: "uica@hsw",
			Epsilon: 0.5, Predictions: []float64{1, 2.5, -3.75}},
		&ShardRequest{JobID: "job-1", Lease: "job-1/l0", Spec: "uica@hsw", Arch: "hsw",
			Config: snap,
			Blocks: []ShardBlock{
				{Index: 3, Seed: -9, Block: "add rax, rbx"},
				{Index: 5, Seed: 11, Block: "pop rcx"},
			},
			Workers: 2},
		&ShardResponse{JobID: "job-1", Lease: "job-1/l0",
			Results: []CorpusResult{
				{Index: 3, Block: expl.Block, Explanation: expl},
				{Index: 5, Block: "pop rcx", Error: "nope"},
			}},
		&Error{Error: "no such model"},
		&JobSummary{ID: "job-1", State: JobDone, Total: 10, Done: 10,
			Failed: 1, Error: "1 of 10 blocks failed", Restored: true},
	}
}

// TestBinaryRoundTripAllTypes is the codec's core contract: encode →
// decode reconstructs the exact struct, and its JSON marshaling is
// byte-identical to marshaling the original — so a binary-negotiated
// response decodes to exactly the JSON-path result.
func TestBinaryRoundTripAllTypes(t *testing.T) {
	for _, msg := range sampleMessages() {
		name := fmt.Sprintf("%T", msg)
		data, err := EncodeBinary(msg)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, msg)
		}
		wantJSON, err := json.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%s: JSON byte identity lost:\n got %s\nwant %s", name, gotJSON, wantJSON)
		}
	}
}

// TestAppendBinaryReusesBuffer: appending into a warmed buffer is
// allocation-free — the property the explain and shard hot paths rely on.
func TestAppendBinaryReusesBuffer(t *testing.T) {
	expl := sampleExplanation()
	buf, err := EncodeBinary(expl)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendBinary(buf[:0], expl)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("AppendBinary into a reused buffer allocates %.1f times per run, want 0", allocs)
	}
}

// TestBinaryTruncationsNeverPanic: every proper prefix of a valid frame
// must decode to an error (not a panic, not a success).
func TestBinaryTruncationsNeverPanic(t *testing.T) {
	for _, msg := range sampleMessages() {
		data, err := EncodeBinary(msg)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(data); n++ {
			if _, err := DecodeBinary(data[:n]); err == nil {
				t.Fatalf("%T: decoding %d of %d bytes succeeded", msg, n, len(data))
			}
		}
	}
}

// TestBinaryBitFlipsDetected: any single corrupted byte fails the frame
// checksum (or the header checks) — no corrupt frame is ever decoded.
func TestBinaryBitFlipsDetected(t *testing.T) {
	data, err := EncodeBinary(sampleExplanation())
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeBinary(mut); err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(data))
		}
	}
}

// TestBinaryHostileLengthRejected: a payload whose length field claims
// more elements than the payload could hold is rejected before any
// allocation is sized from it.
func TestBinaryHostileLengthRejected(t *testing.T) {
	// version | kind=PredictResponse | three empty strings | ε | huge count
	payload := []byte{BinaryVersion, msgPredictResponse}
	payload = appendStr(payload, "")
	payload = appendStr(payload, "")
	payload = appendStr(payload, "")
	payload = appendF64(payload, 0)
	payload = binary.AppendUvarint(payload, 1<<40) // predictions "count"
	frame, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeBinary(frame)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("hostile length: err = %v, want length-guard error", err)
	}
}

// TestBinaryRejectsVersionKindTrailing covers the payload prologue:
// unknown version, unknown kind, and trailing bytes all fail.
func TestBinaryRejectsVersionKindTrailing(t *testing.T) {
	frame := func(payload []byte) []byte {
		f, err := AppendFrame(nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if _, err := DecodeBinary(frame([]byte{99, msgError, 0})); err == nil {
		t.Error("unknown version accepted")
	}
	if _, err := DecodeBinary(frame([]byte{BinaryVersion, 200, 0})); err == nil {
		t.Error("unknown kind accepted")
	}
	good, err := EncodeBinary(&Error{Error: "x"})
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append([]byte(nil), good[FrameHeaderSize:]...), 0)
	if _, err := DecodeBinary(frame(payload)); err == nil {
		t.Error("trailing payload byte accepted")
	}
}

// TestBinaryDecodesVersion1: the codec's compatibility promise. A
// version-1 explanation — encoded by a pre-profile peer, so its body ends
// at ModelCalls with no profile bool — must decode to the same
// explanation with a nil Profile. This is what lets a new coordinator
// read frames from not-yet-upgraded workers.
func TestBinaryDecodesVersion1(t *testing.T) {
	want := sampleExplanation()
	want.Profile = nil

	payload := []byte{1, msgExplanation}
	payload = appendStr(payload, want.Block)
	payload = appendStr(payload, want.Model)
	payload = appendF64(payload, want.Prediction)
	payload = appendLen(payload, len(want.Features))
	for i := range want.Features {
		payload = appendFeature(payload, &want.Features[i])
	}
	payload = appendF64(payload, want.Precision)
	payload = appendF64(payload, want.Coverage)
	payload = appendBool(payload, want.Certified)
	payload = appendInt(payload, want.Queries)
	payload = appendInt(payload, want.CacheHits)
	payload = appendInt(payload, want.ModelCalls)
	frame, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}

	got, err := DecodeBinary(frame)
	if err != nil {
		t.Fatalf("decoding a version-1 explanation: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v1 decode mismatch:\n got %+v\nwant %+v", got, want)
	}

	// A version-1 corpus result (nested explanation) decodes too.
	payload = []byte{1, msgCorpusResult}
	payload = appendInt(payload, 7)
	payload = appendStr(payload, want.Block)
	payload = appendBool(payload, true)
	payload = appendStr(payload, want.Block)
	payload = appendStr(payload, want.Model)
	payload = appendF64(payload, want.Prediction)
	payload = appendLen(payload, len(want.Features))
	for i := range want.Features {
		payload = appendFeature(payload, &want.Features[i])
	}
	payload = appendF64(payload, want.Precision)
	payload = appendF64(payload, want.Coverage)
	payload = appendBool(payload, want.Certified)
	payload = appendInt(payload, want.Queries)
	payload = appendInt(payload, want.CacheHits)
	payload = appendInt(payload, want.ModelCalls)
	payload = appendStr(payload, "") // CorpusResult.Error
	frame, err = AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeBinary(frame)
	if err != nil {
		t.Fatalf("decoding a version-1 corpus result: %v", err)
	}
	wantCR := &CorpusResult{Index: 7, Block: want.Block, Explanation: want}
	if !reflect.DeepEqual(got, wantCR) {
		t.Errorf("v1 corpus result mismatch:\n got %+v\nwant %+v", got, wantCR)
	}
}

// --- JSON vs binary benchmarks (b.ReportAllocs is the CI-stable signal;
// wall clock varies with the runner) ---

func BenchmarkExplanationEncodeJSON(b *testing.B) {
	expl := sampleExplanation()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(expl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplanationEncodeBinary(b *testing.B) {
	expl := sampleExplanation()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendBinary(buf[:0], expl)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplanationDecodeJSON(b *testing.B) {
	data, err := json.Marshal(sampleExplanation())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Explanation
		if err := json.Unmarshal(data, &e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplanationDecodeBinary(b *testing.B) {
	data, err := EncodeBinary(sampleExplanation())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardRequestEncodeBinary(b *testing.B) {
	msgs := sampleMessages()
	var sreq *ShardRequest
	for _, m := range msgs {
		if r, ok := m.(*ShardRequest); ok {
			sreq = r
		}
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendBinary(buf[:0], sreq)
		if err != nil {
			b.Fatal(err)
		}
	}
}
