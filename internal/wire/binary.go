package wire

// The versioned binary codec carried inside COMET frames on the network.
// A binary message payload is
//
//	version (1B) | kind (1B) | body
//
// where the body is a flat field-by-field encoding: varints for ints,
// IEEE-754 bits (8B LE) for floats, uvarint-length-prefixed bytes for
// strings, one byte for bools. Every field of a struct is always encoded
// (zero values cost one byte under varint), so decode reconstructs the
// struct exactly and the package's JSON byte-stability guarantee carries
// over: a binary-negotiated response, decoded and re-marshaled as JSON,
// is byte-identical to the JSON the server would have sent directly.
//
// The decoder is hostile-input safe: every read is bounds-checked, every
// slice allocation is capped by the bytes remaining in the payload, and
// no input can make it panic (fuzzed in fuzz_test.go).

import (
	"encoding/binary"
	"fmt"
	"math"
)

// BinaryVersion is the current binary message version. Decoders reject
// versions they don't understand instead of guessing.
//
// Version history:
//
//	1 — initial codec (PR 6).
//	2 — Explanation gained an optional trailing Profile (bool-prefixed,
//	    like ConfigOverrides). Encoders always emit version 2; the decoder
//	    still accepts version 1, whose explanations simply carry no
//	    profile — so a new coordinator reads old workers' frames, while an
//	    old peer rejecting version 2 triggers the existing per-worker JSON
//	    downgrade.
const BinaryVersion = 2

// binaryVersionV1 is the oldest version the decoder accepts.
const binaryVersionV1 = 1

// Binary message kinds.
const (
	msgExplanation     byte = 1
	msgCorpusResult    byte = 2
	msgExplainRequest  byte = 3
	msgPredictRequest  byte = 4
	msgPredictResponse byte = 5
	msgShardRequest    byte = 6
	msgShardResponse   byte = 7
	msgError           byte = 8
	msgJobSummary      byte = 9
)

// EncodeBinary returns one complete frame carrying the binary encoding
// of msg. Supported messages: *Explanation, *CorpusResult,
// *ExplainRequest, *PredictRequest, *PredictResponse, *ShardRequest,
// *ShardResponse, *Error, *JobSummary.
func EncodeBinary(msg any) ([]byte, error) {
	return AppendBinary(nil, msg)
}

// AppendBinary appends one complete frame carrying the binary encoding
// of msg to dst and returns the extended slice. The payload is built in
// place, so a caller reusing dst across messages amortizes to zero
// allocations.
func AppendBinary(dst []byte, msg any) ([]byte, error) {
	start := len(dst)
	var hdr [FrameHeaderSize]byte
	dst = append(dst, hdr[:]...)
	dst = append(dst, BinaryVersion)
	switch m := msg.(type) {
	case *Explanation:
		dst = append(dst, msgExplanation)
		dst = appendExplanation(dst, m)
	case *CorpusResult:
		dst = append(dst, msgCorpusResult)
		dst = appendCorpusResult(dst, m)
	case *ExplainRequest:
		dst = append(dst, msgExplainRequest)
		dst = appendExplainRequest(dst, m)
	case *PredictRequest:
		dst = append(dst, msgPredictRequest)
		dst = appendPredictRequest(dst, m)
	case *PredictResponse:
		dst = append(dst, msgPredictResponse)
		dst = appendPredictResponse(dst, m)
	case *ShardRequest:
		dst = append(dst, msgShardRequest)
		dst = appendShardRequest(dst, m)
	case *ShardResponse:
		dst = append(dst, msgShardResponse)
		dst = appendShardResponse(dst, m)
	case *Error:
		dst = append(dst, msgError)
		dst = appendStr(dst, m.Error)
	case *JobSummary:
		dst = append(dst, msgJobSummary)
		dst = appendJobSummary(dst, m)
	default:
		return dst[:start], fmt.Errorf("wire: no binary encoding for %T", msg)
	}
	return finishFrame(dst, start)
}

// DecodeBinary verifies that data is exactly one intact frame and decodes
// its binary message, returning one of the pointer types AppendBinary
// accepts.
func DecodeBinary(data []byte) (any, error) {
	payload, err := VerifyFrame(data)
	if err != nil {
		return nil, err
	}
	return DecodeBinaryPayload(payload)
}

// DecodeBinaryPayload decodes one binary message payload (the frame
// already stripped — what ScanFrames or FrameReader hand out).
func DecodeBinaryPayload(payload []byte) (any, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("wire: binary message of %d bytes is shorter than its 2-byte prologue", len(payload))
	}
	if payload[0] < binaryVersionV1 || payload[0] > BinaryVersion {
		return nil, fmt.Errorf("wire: unsupported binary message version %d", payload[0])
	}
	kind := payload[1]
	d := &bdec{buf: payload, off: 2, ver: payload[0]}
	var msg any
	switch kind {
	case msgExplanation:
		msg = decodeExplanation(d)
	case msgCorpusResult:
		msg = decodeCorpusResult(d)
	case msgExplainRequest:
		msg = decodeExplainRequest(d)
	case msgPredictRequest:
		msg = decodePredictRequest(d)
	case msgPredictResponse:
		msg = decodePredictResponse(d)
	case msgShardRequest:
		msg = decodeShardRequest(d)
	case msgShardResponse:
		msg = decodeShardResponse(d)
	case msgError:
		msg = &Error{Error: d.str()}
	case msgJobSummary:
		msg = decodeJobSummary(d)
	default:
		return nil, fmt.Errorf("wire: unknown binary message kind %d", kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("wire: %d trailing bytes after binary message", len(d.buf)-d.off)
	}
	return msg, nil
}

// --- encode primitives ---

func appendInt(dst []byte, v int) []byte   { return binary.AppendVarint(dst, int64(v)) }
func appendI64(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }
func appendLen(dst []byte, n int) []byte   { return binary.AppendUvarint(dst, uint64(n)) }
func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}
func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// --- decode primitives ---

// bdec is a bounds-checked cursor over one message payload. The first
// error sticks; every subsequent read returns a zero value, so decode
// functions read straight through without per-field error plumbing.
type bdec struct {
	buf []byte
	off int
	ver byte // message version; gates fields added after version 1
	err error
}

func (d *bdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (d *bdec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *bdec) int_() int { return int(d.varint()) }

func (d *bdec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf)-d.off < 8 {
		d.fail("truncated float at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

func (d *bdec) bool_() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("invalid bool byte %d at offset %d", b, d.off-1)
		return false
	}
	return b == 1
}

// length reads a collection or string length and refuses any count that
// could not possibly fit in the remaining payload at elemSize bytes per
// element — the over-allocation guard: a hostile 4-byte length field can
// never make the decoder allocate more than the payload it arrived in.
func (d *bdec) length(elemSize int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	remaining := len(d.buf) - d.off
	if v > uint64(remaining/elemSize) {
		d.fail("length %d exceeds %d remaining payload bytes", v, remaining)
		return 0
	}
	return int(v)
}

func (d *bdec) str() string {
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// --- per-type bodies ---

func appendFeature(dst []byte, f *Feature) []byte {
	dst = appendStr(dst, f.Kind)
	dst = appendInt(dst, f.Index)
	dst = appendStr(dst, f.Opcode)
	dst = appendInt(dst, f.Src)
	dst = appendInt(dst, f.Dst)
	dst = appendStr(dst, f.Hazard)
	dst = appendInt(dst, f.Count)
	return appendStr(dst, f.Text)
}

func decodeFeature(d *bdec, f *Feature) {
	f.Kind = d.str()
	f.Index = d.int_()
	f.Opcode = d.str()
	f.Src = d.int_()
	f.Dst = d.int_()
	f.Hazard = d.str()
	f.Count = d.int_()
	f.Text = d.str()
}

func appendExplanation(dst []byte, e *Explanation) []byte {
	dst = appendStr(dst, e.Block)
	dst = appendStr(dst, e.Model)
	dst = appendF64(dst, e.Prediction)
	dst = appendLen(dst, len(e.Features))
	for i := range e.Features {
		dst = appendFeature(dst, &e.Features[i])
	}
	dst = appendF64(dst, e.Precision)
	dst = appendF64(dst, e.Coverage)
	dst = appendBool(dst, e.Certified)
	dst = appendInt(dst, e.Queries)
	dst = appendInt(dst, e.CacheHits)
	dst = appendInt(dst, e.ModelCalls)
	// Version 2: optional trailing profile.
	dst = appendBool(dst, e.Profile != nil)
	if e.Profile != nil {
		dst = appendProfile(dst, e.Profile)
	}
	return dst
}

func appendProfile(dst []byte, p *Profile) []byte {
	dst = appendStr(dst, p.Source)
	dst = appendI64(dst, p.SetupUS)
	dst = appendI64(dst, p.SearchUS)
	dst = appendI64(dst, p.ModelUS)
	dst = appendI64(dst, p.PrecisionUS)
	dst = appendI64(dst, p.CoverageUS)
	dst = appendI64(dst, p.StoreUS)
	dst = appendI64(dst, p.TotalUS)
	dst = appendInt(dst, p.Queries)
	dst = appendInt(dst, p.CacheHits)
	dst = appendInt(dst, p.ModelCalls)
	return appendInt(dst, p.Batches)
}

func decodeProfile(d *bdec) *Profile {
	p := &Profile{}
	p.Source = d.str()
	p.SetupUS = d.varint()
	p.SearchUS = d.varint()
	p.ModelUS = d.varint()
	p.PrecisionUS = d.varint()
	p.CoverageUS = d.varint()
	p.StoreUS = d.varint()
	p.TotalUS = d.varint()
	p.Queries = d.int_()
	p.CacheHits = d.int_()
	p.ModelCalls = d.int_()
	p.Batches = d.int_()
	return p
}

func decodeExplanation(d *bdec) *Explanation {
	e := &Explanation{}
	e.Block = d.str()
	e.Model = d.str()
	e.Prediction = d.f64()
	// A feature encodes to at least 8 bytes (8 fields, ≥1 byte each).
	if n := d.length(8); n > 0 {
		e.Features = make(FeatureSet, n)
		for i := range e.Features {
			decodeFeature(d, &e.Features[i])
		}
	}
	e.Precision = d.f64()
	e.Coverage = d.f64()
	e.Certified = d.bool_()
	e.Queries = d.int_()
	e.CacheHits = d.int_()
	e.ModelCalls = d.int_()
	// Version 1 explanations end here; version 2 appends the optional
	// profile.
	if d.ver >= 2 && d.bool_() && d.err == nil {
		e.Profile = decodeProfile(d)
	}
	return e
}

func appendCorpusResult(dst []byte, r *CorpusResult) []byte {
	dst = appendInt(dst, r.Index)
	dst = appendStr(dst, r.Block)
	dst = appendBool(dst, r.Explanation != nil)
	if r.Explanation != nil {
		dst = appendExplanation(dst, r.Explanation)
	}
	return appendStr(dst, r.Error)
}

func decodeCorpusResult(d *bdec) *CorpusResult {
	r := &CorpusResult{}
	r.Index = d.int_()
	r.Block = d.str()
	if d.bool_() {
		r.Explanation = decodeExplanation(d)
	}
	r.Error = d.str()
	return r
}

func appendOverrides(dst []byte, o *ConfigOverrides) []byte {
	dst = appendBool(dst, o != nil)
	if o == nil {
		return dst
	}
	dst = appendF64(dst, o.Epsilon)
	dst = appendF64(dst, o.PrecisionThreshold)
	dst = appendInt(dst, o.CoverageSamples)
	dst = appendInt(dst, o.BatchSize)
	dst = appendInt(dst, o.Parallelism)
	return appendI64(dst, o.Seed)
}

func decodeOverrides(d *bdec) *ConfigOverrides {
	if !d.bool_() || d.err != nil {
		return nil
	}
	o := &ConfigOverrides{}
	o.Epsilon = d.f64()
	o.PrecisionThreshold = d.f64()
	o.CoverageSamples = d.int_()
	o.BatchSize = d.int_()
	o.Parallelism = d.int_()
	o.Seed = d.varint()
	return o
}

func appendSnapshot(dst []byte, s *ConfigSnapshot) []byte {
	dst = appendF64(dst, s.Epsilon)
	dst = appendF64(dst, s.PrecisionThreshold)
	dst = appendInt(dst, s.CoverageSamples)
	dst = appendInt(dst, s.BatchSize)
	dst = appendInt(dst, s.Parallelism)
	return appendI64(dst, s.Seed)
}

func decodeSnapshot(d *bdec, s *ConfigSnapshot) {
	s.Epsilon = d.f64()
	s.PrecisionThreshold = d.f64()
	s.CoverageSamples = d.int_()
	s.BatchSize = d.int_()
	s.Parallelism = d.int_()
	s.Seed = d.varint()
}

func appendExplainRequest(dst []byte, r *ExplainRequest) []byte {
	dst = appendStr(dst, r.Block)
	dst = appendStr(dst, r.Model)
	dst = appendStr(dst, r.Arch)
	return appendOverrides(dst, r.Config)
}

func decodeExplainRequest(d *bdec) *ExplainRequest {
	r := &ExplainRequest{}
	r.Block = d.str()
	r.Model = d.str()
	r.Arch = d.str()
	r.Config = decodeOverrides(d)
	return r
}

func appendPredictRequest(dst []byte, r *PredictRequest) []byte {
	dst = appendLen(dst, len(r.Blocks))
	for _, b := range r.Blocks {
		dst = appendStr(dst, b)
	}
	dst = appendStr(dst, r.Model)
	return appendStr(dst, r.Arch)
}

func decodePredictRequest(d *bdec) *PredictRequest {
	r := &PredictRequest{}
	if n := d.length(1); n > 0 {
		r.Blocks = make([]string, n)
		for i := range r.Blocks {
			r.Blocks[i] = d.str()
		}
	}
	r.Model = d.str()
	r.Arch = d.str()
	return r
}

func appendPredictResponse(dst []byte, r *PredictResponse) []byte {
	dst = appendStr(dst, r.Model)
	dst = appendStr(dst, r.Arch)
	dst = appendStr(dst, r.Spec)
	dst = appendF64(dst, r.Epsilon)
	dst = appendLen(dst, len(r.Predictions))
	for _, p := range r.Predictions {
		dst = appendF64(dst, p)
	}
	return dst
}

func decodePredictResponse(d *bdec) *PredictResponse {
	r := &PredictResponse{}
	r.Model = d.str()
	r.Arch = d.str()
	r.Spec = d.str()
	r.Epsilon = d.f64()
	if n := d.length(8); n > 0 {
		r.Predictions = make([]float64, n)
		for i := range r.Predictions {
			r.Predictions[i] = d.f64()
		}
	}
	return r
}

func appendShardRequest(dst []byte, r *ShardRequest) []byte {
	dst = appendStr(dst, r.JobID)
	dst = appendStr(dst, r.Lease)
	dst = appendStr(dst, r.Spec)
	dst = appendStr(dst, r.Arch)
	dst = appendSnapshot(dst, &r.Config)
	dst = appendLen(dst, len(r.Blocks))
	for i := range r.Blocks {
		b := &r.Blocks[i]
		dst = appendInt(dst, b.Index)
		dst = appendI64(dst, b.Seed)
		dst = appendStr(dst, b.Block)
	}
	return appendInt(dst, r.Workers)
}

func decodeShardRequest(d *bdec) *ShardRequest {
	r := &ShardRequest{}
	r.JobID = d.str()
	r.Lease = d.str()
	r.Spec = d.str()
	r.Arch = d.str()
	decodeSnapshot(d, &r.Config)
	// A shard block encodes to at least 3 bytes (index, seed, block len).
	if n := d.length(3); n > 0 {
		r.Blocks = make([]ShardBlock, n)
		for i := range r.Blocks {
			r.Blocks[i].Index = d.int_()
			r.Blocks[i].Seed = d.varint()
			r.Blocks[i].Block = d.str()
		}
	}
	r.Workers = d.int_()
	return r
}

func appendShardResponse(dst []byte, r *ShardResponse) []byte {
	dst = appendStr(dst, r.JobID)
	dst = appendStr(dst, r.Lease)
	dst = appendLen(dst, len(r.Results))
	for i := range r.Results {
		dst = appendCorpusResult(dst, &r.Results[i])
	}
	return dst
}

func decodeShardResponse(d *bdec) *ShardResponse {
	r := &ShardResponse{}
	r.JobID = d.str()
	r.Lease = d.str()
	// A corpus result encodes to at least 4 bytes.
	if n := d.length(4); n > 0 {
		r.Results = make([]CorpusResult, n)
		for i := range r.Results {
			cr := decodeCorpusResult(d)
			if d.err != nil {
				return r
			}
			r.Results[i] = *cr
		}
	}
	return r
}

func appendJobSummary(dst []byte, s *JobSummary) []byte {
	dst = appendStr(dst, s.ID)
	dst = appendStr(dst, s.State)
	dst = appendInt(dst, s.Total)
	dst = appendInt(dst, s.Done)
	dst = appendInt(dst, s.Failed)
	dst = appendStr(dst, s.Error)
	return appendBool(dst, s.Restored)
}

func decodeJobSummary(d *bdec) *JobSummary {
	s := &JobSummary{}
	s.ID = d.str()
	s.State = d.str()
	s.Total = d.int_()
	s.Done = d.int_()
	s.Failed = d.int_()
	s.Error = d.str()
	s.Restored = d.bool_()
	return s
}
