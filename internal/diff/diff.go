// Package diff finds and explains disagreements between two cost models —
// the differential-analysis use case the paper contrasts with (Ritter &
// Hack's AnICA, §2) and the model-comparison workflow it motivates (§7:
// "COMET's explanations can be used to select a model from a collection of
// similar performing neural models").
//
// Given two models over the same microarchitecture and a pool of blocks,
// Find ranks the blocks by relative disagreement; Explain then runs COMET
// on both models for a disagreeing block, so the user can see *which
// features* each model bases its diverging prediction on — exactly the
// §6.4 case-study methodology, automated.
package diff

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/x86"
)

// Disagreement is one block on which two models diverge.
type Disagreement struct {
	Block    *x86.BasicBlock
	PredA    float64
	PredB    float64
	Relative float64 // |a−b| / max(min(a,b), 0.25)
}

// Find ranks blocks by relative disagreement between the two models,
// largest first. Blocks where either model returns a non-finite cost are
// skipped.
func Find(a, b costmodel.Model, blocks []*x86.BasicBlock) []Disagreement {
	var out []Disagreement
	for _, blk := range blocks {
		pa, pb := a.Predict(blk), b.Predict(blk)
		if math.IsNaN(pa) || math.IsInf(pa, 0) || math.IsNaN(pb) || math.IsInf(pb, 0) {
			continue
		}
		base := math.Min(pa, pb)
		if base < 0.25 {
			base = 0.25
		}
		out = append(out, Disagreement{
			Block:    blk,
			PredA:    pa,
			PredB:    pb,
			Relative: math.Abs(pa-pb) / base,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Relative > out[j].Relative })
	return out
}

// Explained pairs a disagreement with both models' COMET explanations.
type Explained struct {
	Disagreement
	ModelA, ModelB string
	ExplA, ExplB   *core.Explanation
}

// String renders the comparison in the §6.4 case-study format.
func (e Explained) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "block:\n%s\n", e.Block)
	fmt.Fprintf(&b, "%-10s predicts %6.2f; explanation: %s\n", e.ModelA, e.PredA, e.ExplA.Features)
	fmt.Fprintf(&b, "%-10s predicts %6.2f; explanation: %s\n", e.ModelB, e.PredB, e.ExplB.Features)
	return b.String()
}

// Explain runs COMET on both models for a disagreeing block.
func Explain(a, b costmodel.Model, d Disagreement, cfg core.Config) (Explained, error) {
	ea, err := core.NewExplainer(a, cfg).Explain(d.Block)
	if err != nil {
		return Explained{}, fmt.Errorf("diff: explaining with %s: %w", a.Name(), err)
	}
	eb, err := core.NewExplainer(b, cfg).Explain(d.Block)
	if err != nil {
		return Explained{}, fmt.Errorf("diff: explaining with %s: %w", b.Name(), err)
	}
	return Explained{
		Disagreement: d,
		ModelA:       a.Name(),
		ModelB:       b.Name(),
		ExplA:        ea,
		ExplB:        eb,
	}, nil
}

// Top finds and explains the n largest disagreements in one call.
func Top(a, b costmodel.Model, blocks []*x86.BasicBlock, n int, cfg core.Config) ([]Explained, error) {
	ranked := Find(a, b, blocks)
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]Explained, 0, n)
	for _, d := range ranked[:n] {
		e, err := Explain(a, b, d, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
