package diff

import (
	"math"
	"strings"
	"testing"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/hwsim"
	"github.com/comet-explain/comet/internal/mca"
	"github.com/comet-explain/comet/internal/uica"
	"github.com/comet-explain/comet/internal/x86"
)

func pool(t *testing.T) []*x86.BasicBlock {
	t.Helper()
	srcs := []string{
		"add rcx, rax\nmov rdx, rcx\npop rbx",
		"div rcx\nadd rax, rbx",
		"mov qword ptr [rdi], rax\nmov rbx, qword ptr [rdi]",
		"imul rax, rbx\nimul rax, rcx",
		"vaddss xmm0, xmm1, xmm2\nvmulss xmm3, xmm0, xmm0",
	}
	blocks := make([]*x86.BasicBlock, len(srcs))
	for i, src := range srcs {
		blocks[i] = x86.MustParseBlock(src)
	}
	return blocks
}

func TestFindRanksByRelativeDisagreement(t *testing.T) {
	hw := hwsim.New(hwsim.HardwareConfig(x86.Haswell))
	static := mca.New(x86.Haswell)
	ranked := Find(hw, static, pool(t))
	if len(ranked) == 0 {
		t.Fatal("no disagreements returned")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Relative > ranked[i-1].Relative+1e-12 {
			t.Fatalf("not sorted: %v then %v", ranked[i-1].Relative, ranked[i].Relative)
		}
	}
	for _, d := range ranked {
		if math.IsNaN(d.Relative) || d.Relative < 0 {
			t.Errorf("bad relative disagreement %v", d.Relative)
		}
	}
}

func TestFindSkipsNonFinite(t *testing.T) {
	inf := costmodel.Func{ModelName: "inf", ModelArch: x86.Haswell,
		Fn: func(*x86.BasicBlock) float64 { return math.Inf(1) }}
	u := uica.New(x86.Haswell)
	if got := Find(inf, u, pool(t)); len(got) != 0 {
		t.Errorf("non-finite predictions should be skipped, got %d", len(got))
	}
}

func TestIdenticalModelsDisagreeNowhere(t *testing.T) {
	u := uica.New(x86.Haswell)
	for _, d := range Find(u, u, pool(t)) {
		if d.Relative != 0 {
			t.Errorf("model disagrees with itself on\n%s", d.Block)
		}
	}
}

func TestTopExplainsDisagreements(t *testing.T) {
	hw := hwsim.New(hwsim.HardwareConfig(x86.Haswell))
	static := mca.New(x86.Haswell)
	cfg := core.DefaultConfig()
	cfg.CoverageSamples = 200
	cfg.Anchor.MaxSamplesPerCand = 600
	out, err := Top(hw, static, pool(t), 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d explained disagreements", len(out))
	}
	for _, e := range out {
		if len(e.ExplA.Features) == 0 || len(e.ExplB.Features) == 0 {
			t.Errorf("empty explanation in %v", e)
		}
		s := e.String()
		if !strings.Contains(s, "hwsim") || !strings.Contains(s, "mca") {
			t.Errorf("rendering missing model names:\n%s", s)
		}
	}
}
