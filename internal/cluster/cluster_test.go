package cluster

// Scheduler tests against scripted fake workers: the failure matrix
// (worker death, lease timeout, bounded retries, stragglers) is
// exercised with deterministic HTTP stand-ins so every path is fast and
// reliable. End-to-end determinism against real comet-serve processes
// lives in cmd/comet-serve's cluster e2e test.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/wire"
)

// fastOpts keeps scheduler test iterations tight.
func fastOpts() Options {
	return Options{
		LeaseBlocks:    2,
		LeaseTimeout:   2 * time.Second,
		LeaseRetries:   3,
		ProbeBackoff:   10 * time.Millisecond,
		StragglerAfter: 10 * time.Second, // off unless a test shrinks it
		ReadyTimeout:   2 * time.Second,
		Tick:           5 * time.Millisecond,
	}
}

// fakeWorker is a scripted shard endpoint. Its explanation "bytes" are a
// pure function of (block, seed), so any two fake workers agree — the
// same property real workers get from deterministic seeding.
type fakeWorker struct {
	ts *httptest.Server
	// shards counts shard requests; behave, if non-nil, may hijack a
	// request (return false to have the handler produce the normal
	// deterministic response).
	shards atomic.Int64
	behave func(w http.ResponseWriter, r *http.Request, req wire.ShardRequest) bool
}

func newFakeWorker(t *testing.T, behave func(http.ResponseWriter, *http.Request, wire.ShardRequest) bool) *fakeWorker {
	t.Helper()
	f := &fakeWorker{behave: behave}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/v1/shard", func(w http.ResponseWriter, r *http.Request) {
		var req wire.ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.shards.Add(1)
		if f.behave != nil && f.behave(w, r, req) {
			return
		}
		resp := wire.ShardResponse{JobID: req.JobID, Lease: req.Lease}
		for _, b := range req.Blocks {
			resp.Results = append(resp.Results, fakeResult(b))
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// fakeResult derives a deterministic result from a shard block.
func fakeResult(b wire.ShardBlock) wire.CorpusResult {
	return wire.CorpusResult{
		Index: b.Index,
		Block: b.Block,
		Explanation: &wire.Explanation{
			Block:      b.Block,
			Model:      "fake",
			Prediction: float64(b.Seed%1000) + float64(b.Index),
		},
	}
}

func testJob(n int) Job {
	blocks := make([]string, n)
	for i := range blocks {
		blocks[i] = fmt.Sprintf("add rcx, rax ; %d", i)
	}
	return Job{
		ID:     "job-test",
		Spec:   "uica@hsw",
		Config: wire.ConfigSnapshot{Epsilon: 0.5, CoverageSamples: 100, Parallelism: 1, Seed: 7},
		Blocks: blocks,
	}
}

// collect runs the job and gathers emitted results by index.
func collect(t *testing.T, c *Coordinator, job Job) (map[int]Result, error) {
	t.Helper()
	got := make(map[int]Result)
	err := c.Run(context.Background(), job, func(res Result) {
		if _, dup := got[res.Index]; dup {
			t.Errorf("block %d emitted twice", res.Index)
		}
		got[res.Index] = res
	})
	return got, err
}

// TestRunShardsAllBlocks: the happy path — every block emitted exactly
// once, with the coordinator-derived per-block seed, across two workers.
func TestRunShardsAllBlocks(t *testing.T) {
	w1 := newFakeWorker(t, nil)
	w2 := newFakeWorker(t, nil)
	opts := fastOpts()
	c := New(NewPool([]string{w1.ts.URL, w2.ts.URL}, opts), opts)
	job := testJob(10)

	got, err := collect(t, c, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("emitted %d blocks, want 10", len(got))
	}
	for i := 0; i < 10; i++ {
		res, ok := got[i]
		if !ok {
			t.Fatalf("block %d never emitted", i)
		}
		// The lease carried BlockSeed(base, i); the fake worker folded it
		// into the prediction, so a wrong seed is visible here.
		want := fakeResult(wire.ShardBlock{Index: i, Seed: core.BlockSeed(job.Config.Seed, i), Block: job.Blocks[i]})
		if res.Explanation == nil || res.Explanation.Prediction != want.Explanation.Prediction {
			t.Errorf("block %d: got %+v, want prediction %v", i, res.Explanation, want.Explanation.Prediction)
		}
		if res.Worker == "" {
			t.Errorf("block %d has no worker attribution", i)
		}
	}
	if w1.shards.Load() == 0 || w2.shards.Load() == 0 {
		t.Errorf("work was not spread: w1=%d w2=%d shards", w1.shards.Load(), w2.shards.Load())
	}
	if got := c.Stats().BlocksDone.Load(); got != 10 {
		t.Errorf("stats.BlocksDone = %d, want 10", got)
	}
}

// TestWorkerDeathReleases: a worker that dies mid-lease (connection
// errors) has its leases re-dispatched to the live worker, and the job
// still completes with every block.
func TestWorkerDeathReleases(t *testing.T) {
	dead := newFakeWorker(t, nil)
	live := newFakeWorker(t, nil)
	// Kill the "dead" worker's listener after readiness has been probed
	// by pointing its behavior at a hard close.
	var killed atomic.Bool
	dead.behave = func(w http.ResponseWriter, r *http.Request, req wire.ShardRequest) bool {
		if killed.Load() {
			panic(http.ErrAbortHandler) // slam the connection: worker death mid-lease
		}
		killed.Store(true)
		panic(http.ErrAbortHandler)
	}
	opts := fastOpts()
	c := New(NewPool([]string{dead.ts.URL, live.ts.URL}, opts), opts)

	got, err := collect(t, c, testJob(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("emitted %d blocks, want 8", len(got))
	}
	for i, res := range got {
		if res.Error != "" {
			t.Errorf("block %d failed: %s", i, res.Error)
		}
	}
	if c.Stats().LeasesReleased.Load() == 0 {
		t.Error("no lease was re-leased despite a dying worker")
	}
	if c.Stats().ShardErrors.Load() == 0 {
		t.Error("no shard error recorded despite a dying worker")
	}
}

// TestLeaseTimeoutReleases: a hung worker trips the lease timeout and
// the lease lands on the live worker.
func TestLeaseTimeoutReleases(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	slow := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request, req wire.ShardRequest) bool {
		select {
		case <-hang:
		case <-r.Context().Done():
		}
		return true
	})
	live := newFakeWorker(t, nil)
	opts := fastOpts()
	opts.LeaseTimeout = 100 * time.Millisecond
	c := New(NewPool([]string{slow.ts.URL, live.ts.URL}, opts), opts)

	got, err := collect(t, c, testJob(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("emitted %d blocks, want 6", len(got))
	}
	for i, res := range got {
		if res.Error != "" {
			t.Errorf("block %d failed: %s", i, res.Error)
		}
	}
	if c.Stats().LeasesReleased.Load() == 0 {
		t.Error("hung worker never tripped a lease timeout")
	}
}

// TestBoundedRetriesAbandon: when every dispatch fails, each lease is
// retried exactly LeaseRetries times and then abandoned — the run
// terminates with ErrLeasesAbandoned and the blocks are NOT emitted
// (they were never computed; the caller's fallback engine owns them).
func TestBoundedRetriesAbandon(t *testing.T) {
	broken := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request, req wire.ShardRequest) bool {
		http.Error(w, `{"error":"shard exploded"}`, http.StatusInternalServerError)
		return true
	})
	opts := fastOpts()
	opts.LeaseRetries = 2
	opts.LeaseBlocks = 4
	c := New(NewPool([]string{broken.ts.URL}, opts), opts)

	got, err := collect(t, c, testJob(4))
	if !errors.Is(err, ErrLeasesAbandoned) {
		t.Fatalf("err = %v, want ErrLeasesAbandoned", err)
	}
	if len(got) != 0 {
		t.Fatalf("emitted %d blocks for abandoned leases, want 0: %v", len(got), got)
	}
	// One lease of 4 blocks, 2 attempts.
	if got := c.Stats().LeasesDispatched.Load(); got != 2 {
		t.Errorf("dispatched %d times, want exactly LeaseRetries=2", got)
	}
}

// TestDuplicateResultIndicesRejected: a worker answering the right
// number of results but duplicating an index must fail validation — a
// silent accept would lose the un-answered block.
func TestDuplicateResultIndicesRejected(t *testing.T) {
	var saneWorker atomic.Bool
	buggy := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request, req wire.ShardRequest) bool {
		if saneWorker.Load() || len(req.Blocks) < 2 {
			return false
		}
		resp := wire.ShardResponse{JobID: req.JobID, Lease: req.Lease}
		dup := fakeResult(req.Blocks[0])
		for range req.Blocks {
			resp.Results = append(resp.Results, dup)
		}
		_ = json.NewEncoder(w).Encode(resp)
		saneWorker.Store(true) // behave on the retry
		return true
	})
	opts := fastOpts()
	opts.LeaseBlocks = 2
	c := New(NewPool([]string{buggy.ts.URL}, opts), opts)

	got, err := collect(t, c, testJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("emitted %d blocks, want 2 (duplicate response must be retried, not accepted)", len(got))
	}
	if c.Stats().ShardErrors.Load() == 0 {
		t.Error("duplicate-index response was not counted as a shard error")
	}
}

// TestStragglerRedispatch: with the pending queue dry and an idle
// worker, an in-flight lease older than StragglerAfter is duplicated;
// the fast copy wins and the job finishes without waiting out the hang.
func TestStragglerRedispatch(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var hangs atomic.Int64
	slow := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request, req wire.ShardRequest) bool {
		if hangs.Add(1) == 1 {
			select { // hang only the first lease; stay "alive" otherwise
			case <-release:
			case <-r.Context().Done():
			}
			return true
		}
		return false
	})
	fast := newFakeWorker(t, nil)
	opts := fastOpts()
	opts.LeaseBlocks = 3
	opts.StragglerAfter = 50 * time.Millisecond
	opts.LeaseTimeout = 30 * time.Second // only the straggler path can rescue
	c := New(NewPool([]string{slow.ts.URL, fast.ts.URL}, opts), opts)

	done := make(chan struct{})
	var got map[int]Result
	var err error
	go func() {
		defer close(done)
		got, err = collect(t, c, testJob(6))
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("straggler re-dispatch never rescued the hung lease")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("emitted %d blocks, want 6", len(got))
	}
	if c.Stats().StragglerDispatches.Load() == 0 {
		t.Error("no straggler re-dispatch recorded")
	}

	// The hung worker's abandoned dispatch must hand its inflight slot
	// back once Run's context cancels it — the pool outlives the run, and
	// a leaked slot would make the worker undispatchable for every later
	// job.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stuck := 0
		for _, w := range c.Pool().Snapshot() {
			stuck += w.Inflight
		}
		if stuck == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflight slots leaked after Run returned: %+v", c.Pool().Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNoWorkers: an empty pool fails fast; a pool of unreachable workers
// fails after ReadyTimeout. Both return ErrNoWorkers so callers can fall
// back to local execution.
func TestNoWorkers(t *testing.T) {
	opts := fastOpts()
	c := New(NewPool(nil, opts), opts)
	if err := c.Run(context.Background(), testJob(2), func(Result) {}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("empty pool: err = %v, want ErrNoWorkers", err)
	}

	opts = fastOpts()
	opts.ReadyTimeout = 200 * time.Millisecond
	c = New(NewPool([]string{"http://127.0.0.1:1"}, opts), opts)
	start := time.Now()
	err := c.Run(context.Background(), testJob(2), func(Result) {})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("unreachable pool: err = %v, want ErrNoWorkers", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("starvation took %v to surface, want about ReadyTimeout", elapsed)
	}
}

// TestSkipAndPartition: skipped indices are never leased (the resume
// path), and leases chunk the remaining blocks with their original
// indices and seeds.
func TestSkipAndPartition(t *testing.T) {
	var mu sync.Mutex
	leased := make(map[int]bool)
	w := newFakeWorker(t, func(_ http.ResponseWriter, _ *http.Request, req wire.ShardRequest) bool {
		mu.Lock()
		for _, b := range req.Blocks {
			leased[b.Index] = true
		}
		mu.Unlock()
		return false
	})
	opts := fastOpts()
	c := New(NewPool([]string{w.ts.URL}, opts), opts)
	job := testJob(9)
	job.Skip = func(i int) bool { return i%3 == 0 }

	got, err := collect(t, c, job)
	if err != nil {
		t.Fatal(err)
	}
	var wantIdx []int
	for i := 0; i < 9; i++ {
		if i%3 != 0 {
			wantIdx = append(wantIdx, i)
		}
	}
	var gotIdx []int
	for i := range got {
		gotIdx = append(gotIdx, i)
	}
	sort.Ints(gotIdx)
	if fmt.Sprint(gotIdx) != fmt.Sprint(wantIdx) {
		t.Errorf("emitted indices %v, want %v", gotIdx, wantIdx)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 9; i += 3 {
		if leased[i] {
			t.Errorf("skipped block %d was leased", i)
		}
	}
}

// TestDynamicJoinAndExpiry: a worker joined via the pool becomes
// dispatchable, and one whose heartbeats stop is not.
func TestDynamicJoinAndExpiry(t *testing.T) {
	w := newFakeWorker(t, nil)
	opts := fastOpts()
	opts.HeartbeatTTL = 80 * time.Millisecond
	pool := NewPool(nil, opts)
	c := New(pool, opts)
	if _, _, err := pool.Join(w.ts.URL, 2); err != nil {
		t.Fatal(err)
	}

	got, err := collect(t, c, testJob(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("emitted %d blocks, want 4", len(got))
	}

	// Let the heartbeat lapse: the worker must stop being dispatchable
	// and the next run starves out.
	time.Sleep(120 * time.Millisecond)
	opts2 := fastOpts()
	opts2.ReadyTimeout = 150 * time.Millisecond
	c2 := New(pool, opts2)
	if err := c2.Run(context.Background(), testJob(2), func(Result) {}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("expired worker still served: err = %v, want ErrNoWorkers", err)
	}

	// A fresh heartbeat revives it.
	if _, _, err := pool.Join(w.ts.URL, 1); err != nil {
		t.Fatal(err)
	}
	got, err = collect(t, c, testJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("revived worker emitted %d blocks, want 2", len(got))
	}
}

// TestRunContextCancel: canceling the run's context stops the scheduler
// promptly.
func TestRunContextCancel(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	w := newFakeWorker(t, func(w http.ResponseWriter, r *http.Request, req wire.ShardRequest) bool {
		select {
		case <-hang:
		case <-r.Context().Done():
		}
		return true
	})
	opts := fastOpts()
	c := New(NewPool([]string{w.ts.URL}, opts), opts)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.Run(ctx, testJob(4), func(Result) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
