package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/comet-explain/comet/internal/wire"
)

// worker is one pool member. All fields are guarded by the pool's mutex;
// the scheduler only ever touches workers through Pool methods.
type worker struct {
	id     string // canonical base URL
	static bool   // from the coordinator's static list; never expires

	capacity int       // concurrent leases the worker accepts
	inflight int       // leases currently dispatched to it
	lastBeat time.Time // last join/heartbeat (dynamic workers)

	ready   bool      // last /readyz probe succeeded and nothing failed since
	probing bool      // a readiness probe is in flight
	probeAt time.Time // no re-probe before this instant

	blocksDone int
	leasesDone int
	failures   int
}

// Pool is the coordinator's worker registry: static members seeded from
// configuration plus dynamic members that self-register via
// POST /v1/cluster/join and stay alive by heartbeating. A worker is
// dispatchable only when a /readyz probe has succeeded since it was last
// seen failing, so cold or restarting workers never receive leases.
type Pool struct {
	mu      sync.Mutex
	workers map[string]*worker
	opts    Options
	deaths  uint64 // ready→down transitions, for stats
}

// NewPool builds a pool with the given static worker base URLs.
func NewPool(staticURLs []string, opts Options) *Pool {
	opts = opts.withDefaults()
	p := &Pool{workers: make(map[string]*worker), opts: opts}
	for _, u := range staticURLs {
		u = CanonicalURL(u)
		if u == "" {
			continue
		}
		p.workers[u] = &worker{id: u, static: true, capacity: 1}
	}
	return p
}

// CanonicalURL normalizes a worker base URL ("host:port" gets http://,
// trailing slashes are dropped). Empty input stays empty.
func CanonicalURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Join registers (or refreshes) a dynamic worker and returns its id and
// heartbeat TTL. Joining an id already present — static or dynamic —
// refreshes its heartbeat clock and capacity.
func (p *Pool) Join(url string, capacity int) (string, time.Duration, error) {
	url = CanonicalURL(url)
	if url == "" {
		return "", 0, fmt.Errorf("cluster: join with empty worker URL")
	}
	if capacity < 1 {
		capacity = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	w, ok := p.workers[url]
	if !ok {
		w = &worker{id: url}
		p.workers[url] = w
	}
	w.capacity = capacity
	w.lastBeat = time.Now()
	return url, p.opts.HeartbeatTTL, nil
}

// Size reports how many workers the pool knows (alive or not).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.workers)
}

// expired reports whether a dynamic worker's heartbeats have lapsed.
// Caller holds the pool mutex.
func (w *worker) expired(ttl time.Duration, now time.Time) bool {
	return !w.static && now.Sub(w.lastBeat) > ttl
}

// acquire picks a ready worker with spare capacity, preferring the least
// loaded (then lexicographic id, for determinism in tests), and bumps its
// inflight count. It returns "" when no worker is dispatchable.
func (p *Pool) acquire(now time.Time) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *worker
	for _, w := range p.workers {
		if !w.ready || w.inflight >= w.capacity || w.expired(p.opts.HeartbeatTTL, now) {
			continue
		}
		if best == nil || w.inflight < best.inflight ||
			(w.inflight == best.inflight && w.id < best.id) {
			best = w
		}
	}
	if best == nil {
		return ""
	}
	best.inflight++
	return best.id
}

// release records a dispatch outcome: success credits the worker's
// counters; failure marks it down (not dispatchable until a fresh
// readiness probe succeeds, after a backoff).
func (p *Pool) release(id string, ok bool, blocks int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w, found := p.workers[id]
	if !found {
		return
	}
	if w.inflight > 0 {
		w.inflight--
	}
	if ok {
		w.leasesDone++
		w.blocksDone += blocks
		return
	}
	w.failures++
	if w.ready {
		w.ready = false
		p.deaths++
	}
	w.probeAt = time.Now().Add(p.opts.ProbeBackoff)
}

// releaseQuiet returns a worker's inflight slot without recording an
// outcome — for dispatches abandoned by a finished Run, where neither
// success nor failure of the worker was established.
func (p *Pool) releaseQuiet(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w, ok := p.workers[id]; ok && w.inflight > 0 {
		w.inflight--
	}
}

// probe kicks asynchronous /readyz probes for workers that are not
// currently dispatchable: never-probed members, members marked down whose
// backoff elapsed, and revived dynamic members. Probes run in their own
// goroutines; the pool is never locked across a network call. It also
// prunes long-expired dynamic workers, so a churn of ephemeral worker
// URLs (autoscaled containers, per-restart ports) cannot grow the pool
// without bound.
func (p *Pool) probe(client *http.Client) {
	now := time.Now()
	p.mu.Lock()
	var due []*worker
	for id, w := range p.workers {
		if w.expired(p.opts.HeartbeatTTL, now) {
			if w.inflight == 0 && now.Sub(w.lastBeat) > 10*p.opts.HeartbeatTTL {
				delete(p.workers, id)
			}
			continue
		}
		if w.ready || w.probing || now.Before(w.probeAt) {
			continue
		}
		w.probing = true
		due = append(due, w)
	}
	p.mu.Unlock()
	for _, w := range due {
		go p.probeOne(client, w)
	}
}

// probeOne performs one readiness probe and records its outcome.
func (p *Pool) probeOne(client *http.Client, w *worker) {
	ok := probeReady(client, w.id)
	p.mu.Lock()
	w.probing = false
	if ok {
		w.ready = true
	} else {
		w.probeAt = time.Now().Add(p.opts.ProbeBackoff)
	}
	p.mu.Unlock()
}

// probeReady GETs url/readyz and reports whether the worker is ready.
// The probe carries its own deadline: a blackholed worker must not wedge
// its probing flag forever (the shared client has no overall timeout —
// shard dispatches are bounded by LeaseTimeout instead).
func probeReady(client *http.Client, url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// readyCount reports how many workers are currently dispatchable.
func (p *Pool) readyCount() int {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.ready && !w.expired(p.opts.HeartbeatTTL, now) {
			n++
		}
	}
	return n
}

// Snapshot renders the pool for GET /v1/cluster and /metrics, sorted by
// worker id.
func (p *Pool) Snapshot() []wire.ClusterWorker {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]wire.ClusterWorker, 0, len(p.workers))
	for _, w := range p.workers {
		state := "joining"
		switch {
		case w.expired(p.opts.HeartbeatTTL, now):
			state = "expired"
		case w.ready:
			state = "ready"
		case !w.probeAt.IsZero():
			state = "down"
		}
		out = append(out, wire.ClusterWorker{
			ID:         w.id,
			State:      state,
			Static:     w.static,
			Capacity:   w.capacity,
			Inflight:   w.inflight,
			BlocksDone: w.blocksDone,
			LeasesDone: w.leasesDone,
			Failures:   w.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
