// Package cluster implements the coordinator/worker fan-out that shards
// corpus jobs across comet-serve processes. The coordinator partitions a
// job's blocks into leases, dispatches them over POST /v1/shard to the
// workers in its Pool, and re-leases on the full failure matrix — lease
// timeouts, worker death mid-lease, stragglers — with bounded retries.
//
// Determinism is the core invariant: every lease carries the original
// per-block seeds (core.BlockSeed over the job's base seed) and the
// job's full effective configuration, so any worker produces per-block
// bytes identical to a single-process ExplainAll at the same seed —
// modulo the cache_hits/model_calls accounting fields, which report
// cache warmth and so depend on placement — no matter how blocks are
// partitioned, which workers run them, or how many times a lease is
// re-dispatched. Duplicate results from straggler re-dispatch are
// deduplicated by block index; since the bytes are deterministic,
// whichever copy wins is the same answer.
//
// The package is service-agnostic: it speaks the wire shard protocol to
// any HTTP endpoint, so the comet CLI drives the same coordinator that
// cometd uses for its async jobs.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/comet-explain/comet/internal/bitset"
	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
)

// ErrNoWorkers reports that a job could not be (or stopped being)
// dispatchable: the pool is empty, or no worker became ready within
// ReadyTimeout. Callers with a local engine should fall back to it —
// determinism makes local and sharded execution interchangeable.
var ErrNoWorkers = errors.New("cluster: no ready workers")

// ErrLeasesAbandoned reports that some leases exhausted their retry
// budget. Their blocks were NOT emitted — a lease failing is an
// infrastructure problem, not a property of the blocks, so the blocks
// are left to the caller's fallback (cometd finishes them on the
// coordinator's local engine) rather than recorded as failed.
var ErrLeasesAbandoned = errors.New("cluster: leases abandoned after exhausting retries")

// Options tunes the coordinator. Zero values get production-sane
// defaults; tests shrink the timeouts.
type Options struct {
	// LeaseBlocks is how many blocks one lease carries (default 4).
	// Smaller leases spread better and re-lease cheaper; larger leases
	// amortize HTTP round trips.
	LeaseBlocks int
	// LeaseTimeout bounds one dispatch: a worker that holds a lease
	// longer is presumed dead and the lease is re-dispatched (default 5m).
	LeaseTimeout time.Duration
	// LeaseRetries is the total dispatch attempts a lease gets before its
	// blocks are abandoned with error results (default 3). Straggler
	// re-dispatches spend from the same budget.
	LeaseRetries int
	// HeartbeatTTL is how long a dynamic worker stays registered without
	// a heartbeat (default 15s). Static workers never expire.
	HeartbeatTTL time.Duration
	// ProbeBackoff is the delay before re-probing a worker that failed a
	// dispatch or a readiness probe (default 2s).
	ProbeBackoff time.Duration
	// StragglerAfter re-dispatches an in-flight lease to an idle worker
	// once it has been out this long with no pending leases left
	// (default 30s; the first finished copy wins, bytes are identical).
	StragglerAfter time.Duration
	// ReadyTimeout is how long Run waits for a first ready worker — and
	// how long it tolerates a ready-worker drought mid-job — before
	// giving up with ErrNoWorkers (default 1m).
	ReadyTimeout time.Duration
	// Tick is the scheduler's re-evaluation interval (default 50ms).
	Tick time.Duration
	// Client is the HTTP client for shard dispatch and readiness probes
	// (nil = a client with no overall timeout; LeaseTimeout bounds each
	// dispatch via its context).
	Client *http.Client
	// Log, if non-nil, receives scheduler events (lease completions,
	// re-leases, abandonments, codec downgrades) as structured records.
	// Every record carries the job's trace ID when the job is traced.
	Log *slog.Logger
	// Flight, if non-nil, receives one black-box record per lease
	// transition (dispatched, completed, failed, abandoned) — the
	// coordinator side of the flight recorder (see internal/obs).
	Flight *obs.FlightRecorder
}

func (o Options) withDefaults() Options {
	if o.LeaseBlocks <= 0 {
		o.LeaseBlocks = 4
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 5 * time.Minute
	}
	if o.LeaseRetries <= 0 {
		o.LeaseRetries = 3
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = 15 * time.Second
	}
	if o.ProbeBackoff <= 0 {
		o.ProbeBackoff = 2 * time.Second
	}
	if o.StragglerAfter <= 0 {
		o.StragglerAfter = 30 * time.Second
	}
	if o.ReadyTimeout <= 0 {
		o.ReadyTimeout = time.Minute
	}
	if o.Tick <= 0 {
		o.Tick = 50 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Stats are the coordinator's lifetime counters (atomic; read with Load).
type Stats struct {
	// LeasesDispatched counts every dispatch attempt, including retries
	// and straggler duplicates.
	LeasesDispatched atomic.Uint64
	// LeasesReleased counts leases requeued after a failed or timed-out
	// dispatch — the "re-lease" events of the failure matrix.
	LeasesReleased atomic.Uint64
	// StragglerDispatches counts duplicate dispatches of still-in-flight
	// leases to idle workers.
	StragglerDispatches atomic.Uint64
	// BlocksDone counts blocks whose results were emitted.
	BlocksDone atomic.Uint64
	// ShardErrors counts failed dispatches (transport errors, non-2xx,
	// malformed responses, timeouts).
	ShardErrors atomic.Uint64
}

// Job is one corpus job to shard: the canonical model spec, the full
// effective configuration, and the corpus blocks in canonical text form
// (index = corpus index). Skip marks indices already done (resume).
type Job struct {
	ID     string
	Spec   string
	Arch   string
	Config wire.ConfigSnapshot
	Blocks []string
	// Skip, if non-nil, reports corpus indices whose results already
	// exist (restored from a durable store); they are never leased.
	Skip func(index int) bool
	// Workers is the per-lease block concurrency hint sent to workers
	// (0 = worker default). Results are identical at any value.
	Workers int
	// Traceparent, when non-empty, is the W3C trace context of the span
	// driving this job. It rides every shard dispatch as the traceparent
	// header, so worker-side spans land in the same trace the coordinator
	// records. It never affects results.
	Traceparent string
}

// traceAttr renders the job's trace ID for scheduler log records (an
// empty, elided attr when the job is untraced).
func (j Job) traceAttr() slog.Attr {
	if sc, ok := obs.ParseTraceparent(j.Traceparent); ok {
		return obs.TraceAttr(sc.Trace)
	}
	return obs.TraceAttr(obs.TraceID{})
}

// traceID extracts the job's raw trace ID for flight records (zero when
// untraced).
func (j Job) traceID() obs.TraceID {
	if sc, ok := obs.ParseTraceparent(j.Traceparent); ok {
		return sc.Trace
	}
	return obs.TraceID{}
}

// Result is one completed block, attributed to the worker that ran it.
type Result struct {
	wire.CorpusResult
	Worker string
}

// Coordinator shards jobs across a worker pool. One coordinator serves
// any number of sequential or concurrent Run calls; the pool, options,
// and stats are shared across all of them.
type Coordinator struct {
	pool  *Pool
	opts  Options
	stats Stats
	// binaryOff disables the frame codec for shard dispatch once any
	// worker rejects a framed request (a mixed fleet downgrades the
	// whole coordinator to JSON — correct either way, just slower).
	binaryOff atomic.Bool
}

// New builds a coordinator over a pool.
func New(pool *Pool, opts Options) *Coordinator {
	return &Coordinator{pool: pool, opts: opts.withDefaults()}
}

// Pool returns the coordinator's worker pool (for join handling and
// status rendering).
func (c *Coordinator) Pool() *Pool { return c.pool }

// flightLease records one lease transition in the flight recorder (a
// no-op when Options.Flight is nil).
func (c *Coordinator) flightLease(job Job, l *lease, worker, state string, err error) {
	if c.opts.Flight == nil {
		return
	}
	rec := obs.FlightRecord{
		Kind:  obs.FlightLease,
		ID:    l.id,
		State: state,
		Spec:  job.Spec,
		Route: worker,
		Trace: job.traceID(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	c.opts.Flight.Record(rec)
}

// Stats returns the coordinator's lifetime counters.
func (c *Coordinator) Stats() *Stats { return &c.stats }

// Status renders the coordinator for GET /v1/cluster.
func (c *Coordinator) Status() wire.ClusterStatus {
	c.pool.mu.Lock()
	deaths := c.pool.deaths
	c.pool.mu.Unlock()
	return wire.ClusterStatus{
		Workers:             c.pool.Snapshot(),
		LeasesDispatched:    c.stats.LeasesDispatched.Load(),
		LeasesReleased:      c.stats.LeasesReleased.Load(),
		StragglerDispatches: c.stats.StragglerDispatches.Load(),
		WorkerDeaths:        deaths,
		BlocksDone:          c.stats.BlocksDone.Load(),
		ShardErrors:         c.stats.ShardErrors.Load(),
	}
}

// lease is one unit of dispatch: a slice of shard blocks plus its retry
// accounting. All fields are owned by the Run goroutine.
type lease struct {
	id       string
	blocks   []wire.ShardBlock
	attempts int       // dispatches started
	inflight int       // dispatches outstanding
	done     bool      // results emitted (or abandoned)
	lastSent time.Time // most recent dispatch start, for straggler aging
	lastErr  error
}

// dispatchResult is one finished dispatch, reported to the Run loop.
type dispatchResult struct {
	lease   *lease
	worker  string
	results []wire.CorpusResult
	err     error
}

// Run shards one job across the pool, calling emit at most once per
// non-skipped block, from the Run goroutine, in completion order.
// Worker-side per-block failures surface in CorpusResult.Error and
// never abort the run. It returns nil when every block was emitted;
// ErrNoWorkers when dispatch starved, or ErrLeasesAbandoned when some
// leases ran out of retries — in both cases the blocks not emitted were
// never computed, and callers with a local engine should run them there
// (determinism makes the mixed result identical either way); or ctx.Err
// on cancellation.
func (c *Coordinator) Run(ctx context.Context, job Job, emit func(Result)) error {
	if c.pool.Size() == 0 {
		return ErrNoWorkers
	}
	leases := c.partition(job)
	if len(leases) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	pending := make([]*lease, len(leases))
	copy(pending, leases)
	remaining := len(leases)
	emitted := bitset.New(len(job.Blocks))
	resc := make(chan dispatchResult)
	ticker := time.NewTicker(c.opts.Tick)
	defer ticker.Stop()
	// starved tracks how long the scheduler has been unable to dispatch
	// anything: pending (or straggling) leases exist but no worker is
	// ready. A drought longer than ReadyTimeout ends the run.
	var starvedSince time.Time
	abandoned := 0

	for remaining > 0 {
		dispatched := c.fill(ctx, job, &pending, leases, resc)
		if dispatched || !c.starving(pending, leases) {
			starvedSince = time.Time{}
		} else if starvedSince.IsZero() {
			starvedSince = time.Now()
		} else if time.Since(starvedSince) > c.opts.ReadyTimeout {
			if l := c.opts.Log; l != nil {
				l.Warn("no ready workers, giving up",
					"job_id", job.ID, "waited", c.opts.ReadyTimeout,
					"blocks_undone", undoneBlocks(leases), job.traceAttr())
			}
			return ErrNoWorkers
		}
		c.pool.probe(c.opts.Client)

		select {
		case r := <-resc:
			l := r.lease
			l.inflight--
			c.pool.release(r.worker, r.err == nil, len(r.results))
			if r.err != nil {
				c.stats.ShardErrors.Add(1)
				l.lastErr = r.err
				if l.done {
					break
				}
				if lg := c.opts.Log; lg != nil {
					lg.Warn("lease failed",
						"job_id", job.ID, "lease", l.id, "worker", r.worker,
						"attempt", l.attempts, "retries", c.opts.LeaseRetries,
						"error", r.err, job.traceAttr())
				}
				c.flightLease(job, l, r.worker, "failed", r.err)
				if l.attempts < c.opts.LeaseRetries {
					if l.inflight == 0 {
						pending = append(pending, l)
						c.stats.LeasesReleased.Add(1)
					}
					// With a copy still in flight the lease stays out; the
					// surviving dispatch decides its fate.
					break
				}
				if l.inflight == 0 {
					// Retry budget exhausted and nothing left in flight:
					// abandon. The blocks are NOT emitted — they were never
					// computed, and the caller's fallback engine runs them.
					if lg := c.opts.Log; lg != nil {
						lg.Warn("lease abandoned",
							"job_id", job.ID, "lease", l.id, "attempts", l.attempts,
							"blocks_left", len(l.blocks), "error", l.lastErr, job.traceAttr())
					}
					c.flightLease(job, l, r.worker, "abandoned", l.lastErr)
					l.done = true
					remaining--
					abandoned++
				}
				break
			}
			if l.done {
				break // late straggler duplicate; bytes identical, drop it
			}
			if lg := c.opts.Log; lg != nil {
				lg.Info("lease completed",
					"job_id", job.ID, "lease", l.id, "worker", r.worker,
					"blocks", len(r.results), "elapsed", time.Since(l.lastSent),
					job.traceAttr())
			}
			c.flightLease(job, l, r.worker, "completed", nil)
			for _, res := range r.results {
				if !emitted.Add(res.Index) {
					continue
				}
				c.stats.BlocksDone.Add(1)
				emit(Result{Worker: r.worker, CorpusResult: res})
			}
			l.done = true
			remaining--
		case <-ticker.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if abandoned > 0 {
		return fmt.Errorf("%w (%d of %d leases)", ErrLeasesAbandoned, abandoned, len(leases))
	}
	return nil
}

// fill dispatches pending leases to idle ready workers, then straggler
// re-dispatches when the pending queue is dry. It reports whether
// anything was dispatched.
func (c *Coordinator) fill(ctx context.Context, job Job, pending *[]*lease, leases []*lease, resc chan<- dispatchResult) bool {
	dispatched := false
	now := time.Now()
	for len(*pending) > 0 {
		w := c.pool.acquire(now)
		if w == "" {
			break
		}
		l := (*pending)[0]
		*pending = (*pending)[1:]
		c.send(ctx, job, l, w, resc, false)
		dispatched = true
	}
	if len(*pending) == 0 {
		// Straggler re-dispatch: duplicate old in-flight leases onto idle
		// workers, oldest first, spending from the same retry budget.
		var old []*lease
		for _, l := range leases {
			if !l.done && l.inflight > 0 && l.attempts < c.opts.LeaseRetries &&
				now.Sub(l.lastSent) > c.opts.StragglerAfter {
				old = append(old, l)
			}
		}
		sort.Slice(old, func(i, j int) bool { return old[i].lastSent.Before(old[j].lastSent) })
		for _, l := range old {
			w := c.pool.acquire(now)
			if w == "" {
				break
			}
			c.send(ctx, job, l, w, resc, true)
			dispatched = true
		}
	}
	return dispatched
}

// send starts one dispatch goroutine for a lease.
func (c *Coordinator) send(ctx context.Context, job Job, l *lease, workerID string, resc chan<- dispatchResult, straggler bool) {
	l.attempts++
	l.inflight++
	l.lastSent = time.Now()
	c.stats.LeasesDispatched.Add(1)
	c.flightLease(job, l, workerID, "dispatched", nil)
	if straggler {
		c.stats.StragglerDispatches.Add(1)
		if lg := c.opts.Log; lg != nil {
			lg.Info("straggler re-dispatch",
				"job_id", job.ID, "lease", l.id, "worker", workerID, job.traceAttr())
		}
	}
	req := wire.ShardRequest{
		JobID:   job.ID,
		Lease:   l.id,
		Spec:    job.Spec,
		Arch:    job.Arch,
		Config:  job.Config,
		Blocks:  l.blocks,
		Workers: job.Workers,
	}
	go func() {
		results, err := c.dispatch(ctx, workerID, req, job.Traceparent)
		select {
		case resc <- dispatchResult{lease: l, worker: workerID, results: results, err: err}:
		case <-ctx.Done():
			// Run has returned (job done, starved, or canceled) and will
			// never read this result. The pool outlives the run, so the
			// worker's inflight slot must still come back — quietly: a
			// dispatch nobody waited for says nothing about the worker.
			c.pool.releaseQuiet(workerID)
		}
	}()
}

// dispatch performs one POST /v1/shard round trip, bounded by
// LeaseTimeout, and validates the response against the lease. Leases
// ride the binary frame codec until any worker rejects one, which
// downgrades the coordinator to JSON and retries the round trip
// immediately.
func (c *Coordinator) dispatch(ctx context.Context, workerURL string, sreq wire.ShardRequest, traceparent string) ([]wire.CorpusResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.LeaseTimeout)
	defer cancel()
	binary := !c.binaryOff.Load()
	var body []byte
	var err error
	if binary {
		body, err = wire.EncodeBinary(&sreq)
	} else {
		body, err = json.Marshal(sreq)
	}
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/v1/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if binary {
		req.Header.Set("Content-Type", wire.FrameContentType)
		req.Header.Set("Accept", wire.FrameContentType)
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceparent != "" {
		// The worker joins the coordinator's trace: its /v1/shard spans
		// record under the same trace ID, so GET /debug/traces on either
		// process shows its half of the job.
		req.Header.Set("Traceparent", traceparent)
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if binary && (resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusUnsupportedMediaType) {
			// A worker from before the codec existed; fall back to JSON
			// for every future lease. A genuinely bad request fails the
			// same way on the JSON retry.
			c.binaryOff.Store(true)
			if lg := c.opts.Log; lg != nil {
				lg.Warn("worker rejected a binary lease; downgrading to JSON",
					"worker", workerURL, "status", resp.StatusCode)
			}
			return c.dispatch(ctx, workerURL, sreq, traceparent)
		}
		return nil, shardStatusError(resp)
	}
	out, err := decodeShardResponse(resp)
	if err != nil {
		return nil, err
	}
	// The response must answer exactly the leased blocks: a worker that
	// dropped or invented indices is as wrong as a transport failure.
	want := bitset.New(len(sreq.Blocks))
	for _, b := range sreq.Blocks {
		want.Add(b.Index)
	}
	if len(out.Results) != len(sreq.Blocks) {
		return nil, fmt.Errorf("worker answered %d of %d leased blocks", len(out.Results), len(sreq.Blocks))
	}
	seen := bitset.New(len(sreq.Blocks))
	for _, r := range out.Results {
		if !want.Has(r.Index) || !seen.Add(r.Index) {
			return nil, fmt.Errorf("worker answered unleased or duplicate block index %d", r.Index)
		}
	}
	return out.Results, nil
}

// shardStatusError extracts the error envelope (framed or JSON) from a
// non-2xx shard response.
func shardStatusError(resp *http.Response) error {
	limited := io.LimitReader(resp.Body, 1<<16)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), wire.FrameContentType) {
		if b, err := io.ReadAll(limited); err == nil {
			if msg, derr := wire.DecodeBinary(b); derr == nil {
				if werr, ok := msg.(*wire.Error); ok && werr.Error != "" {
					return fmt.Errorf("worker status %d: %s", resp.StatusCode, werr.Error)
				}
			}
		}
		return fmt.Errorf("worker status %d", resp.StatusCode)
	}
	var werr wire.Error
	if json.NewDecoder(limited).Decode(&werr) == nil && werr.Error != "" {
		return fmt.Errorf("worker status %d: %s", resp.StatusCode, werr.Error)
	}
	return fmt.Errorf("worker status %d", resp.StatusCode)
}

// decodeShardResponse parses a 200 shard response on either wire format.
func decodeShardResponse(resp *http.Response) (*wire.ShardResponse, error) {
	if strings.HasPrefix(resp.Header.Get("Content-Type"), wire.FrameContentType) {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, fmt.Errorf("reading shard response: %w", err)
		}
		msg, err := wire.DecodeBinary(b)
		if err != nil {
			return nil, fmt.Errorf("decoding shard frame: %w", err)
		}
		out, ok := msg.(*wire.ShardResponse)
		if !ok {
			return nil, fmt.Errorf("shard response frame carries %T", msg)
		}
		return out, nil
	}
	out := &wire.ShardResponse{}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("decoding shard response: %w", err)
	}
	return out, nil
}

// partition slices the job's non-skipped blocks into leases of
// LeaseBlocks, each block carrying its corpus index and its original
// per-block seed — the whole determinism contract in one struct.
func (c *Coordinator) partition(job Job) []*lease {
	var leases []*lease
	var cur []wire.ShardBlock
	flush := func() {
		if len(cur) == 0 {
			return
		}
		leases = append(leases, &lease{
			id:     fmt.Sprintf("%s/l%d", job.ID, len(leases)),
			blocks: cur,
		})
		cur = nil
	}
	for i, text := range job.Blocks {
		if job.Skip != nil && job.Skip(i) {
			continue
		}
		cur = append(cur, wire.ShardBlock{
			Index: i,
			Seed:  core.BlockSeed(job.Config.Seed, i),
			Block: text,
		})
		if len(cur) >= c.opts.LeaseBlocks {
			flush()
		}
	}
	flush()
	return leases
}

// starving reports whether there is undispatched work the pool cannot
// currently absorb — the condition the ReadyTimeout drought clock runs
// under.
func (c *Coordinator) starving(pending []*lease, leases []*lease) bool {
	if c.pool.readyCount() > 0 {
		return false
	}
	if len(pending) > 0 {
		return true
	}
	for _, l := range leases {
		if !l.done && l.inflight == 0 {
			return true
		}
	}
	return false
}

// undoneBlocks counts blocks in leases that have not completed.
func undoneBlocks(leases []*lease) int {
	n := 0
	for _, l := range leases {
		if !l.done {
			n += len(l.blocks)
		}
	}
	return n
}
