// Package bitset provides a dense bit set over small-integer indices —
// the bookkeeping structure for corpus-scale jobs, where a map[int]bool
// over a million block indices costs tens of megabytes and a bit set
// costs 125 KiB. Used for completed-block tracking in the service job
// manager and duplicate-result suppression in the cluster scheduler.
package bitset

import "math/bits"

// Set is a growable dense bit set. The zero value is an empty set.
type Set struct {
	words []uint64
	n     int
}

// New returns a set pre-sized for indices [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+63)/64)}
}

// Add inserts i (growing the set as needed) and reports whether it was
// newly added. Negative indices are ignored and report false.
func (s *Set) Add(i int) bool {
	if i < 0 {
		return false
	}
	w := i >> 6
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	mask := uint64(1) << (i & 63)
	if s.words[w]&mask != 0 {
		return false
	}
	s.words[w] |= mask
	s.n++
	return true
}

// Has reports whether i is in the set. A nil set contains nothing.
func (s *Set) Has(i int) bool {
	if s == nil || i < 0 {
		return false
	}
	w := i >> 6
	return w < len(s.words) && s.words[w]&(uint64(1)<<(i&63)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Clone returns an independent copy; cloning a nil set yields an empty
// one.
func (s *Set) Clone() *Set {
	if s == nil {
		return &Set{}
	}
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// Range calls fn for every element in ascending order until fn returns
// false.
func (s *Set) Range(fn func(i int) bool) {
	if s == nil {
		return
	}
	for w, word := range s.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			if !fn(w<<6 | b) {
				return
			}
			word &^= 1 << b
		}
	}
}
