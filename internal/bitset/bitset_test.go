package bitset

import "testing"

func TestSet(t *testing.T) {
	s := New(10)
	if s.Len() != 0 {
		t.Fatalf("new set has %d elements", s.Len())
	}
	if !s.Add(3) || !s.Add(200) || !s.Add(0) {
		t.Fatal("fresh adds reported false")
	}
	if s.Add(3) {
		t.Fatal("duplicate add reported true")
	}
	if s.Add(-1) || s.Has(-1) {
		t.Fatal("negative index accepted")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, i := range []int{0, 3, 200} {
		if !s.Has(i) {
			t.Fatalf("Has(%d) = false", i)
		}
	}
	if s.Has(1) || s.Has(64) || s.Has(1000) {
		t.Fatal("Has reported an absent element")
	}
	var got []int
	s.Range(func(i int) bool { got = append(got, i); return true })
	want := []int{0, 3, 200}
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range visited %v, want %v", got, want)
		}
	}
	got = got[:0]
	s.Range(func(i int) bool { got = append(got, i); return false })
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("early-stop Range visited %v", got)
	}
	var nilSet *Set
	if nilSet.Len() != 0 {
		t.Fatal("nil set Len != 0")
	}
	var zero Set
	if !zero.Add(5) || !zero.Has(5) {
		t.Fatal("zero-value set unusable")
	}
}
