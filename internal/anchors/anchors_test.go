package anchors

import (
	"math/rand"
	"sort"
	"testing"
)

// banditSpace is a synthetic Space where each candidate subset has a known
// true precision (the max of its members' weights, saturating at 1) and a
// coverage that decays with subset size.
type banditSpace struct {
	weights  []float64 // per-feature true precision contribution
	coverage []float64 // per-feature coverage
}

func (s *banditSpace) NumFeatures() int { return len(s.weights) }

func (s *banditSpace) truePrecision(cand []int) float64 {
	p := 0.0
	for _, i := range cand {
		if s.weights[i] > p {
			p = s.weights[i]
		}
	}
	if p > 1 {
		p = 1
	}
	return p
}

func (s *banditSpace) SamplePrecision(rng *rand.Rand, cand []int, n int) int {
	p := s.truePrecision(cand)
	succ := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			succ++
		}
	}
	return succ
}

func (s *banditSpace) Coverage(cand []int) float64 {
	c := 1.0
	for _, i := range cand {
		c *= s.coverage[i]
	}
	return c
}

func TestSearchFindsHighPrecisionSingleton(t *testing.T) {
	// Feature 2 is precise enough alone; it should be certified with its
	// (high) singleton coverage.
	space := &banditSpace{
		weights:  []float64{0.2, 0.4, 0.95, 0.3},
		coverage: []float64{0.5, 0.5, 0.4, 0.5},
	}
	res := Search(space, Options{PrecisionThreshold: 0.7}, rand.New(rand.NewSource(1)))
	if !res.Certified {
		t.Fatalf("expected certified anchor, got %+v", res)
	}
	if len(res.Anchor) != 1 || res.Anchor[0] != 2 {
		t.Errorf("anchor = %v, want [2]", res.Anchor)
	}
	if res.Precision < 0.7 {
		t.Errorf("reported precision %v below threshold", res.Precision)
	}
}

func TestSearchPrefersMaxCoverageAmongAnchors(t *testing.T) {
	// Features 0 and 1 both clear the threshold; 1 has better coverage.
	space := &banditSpace{
		weights:  []float64{0.9, 0.92, 0.1},
		coverage: []float64{0.2, 0.6, 0.9},
	}
	res := Search(space, Options{PrecisionThreshold: 0.7}, rand.New(rand.NewSource(2)))
	if !res.Certified {
		t.Fatalf("expected certified anchor, got %+v", res)
	}
	if len(res.Anchor) != 1 || res.Anchor[0] != 1 {
		t.Errorf("anchor = %v, want the max-coverage anchor [1]", res.Anchor)
	}
}

func TestSearchGrowsAnchorWhenSingletonsFail(t *testing.T) {
	// No singleton reaches 0.9, but {0,1} does (max weight 0.95 only via
	// combining? here we emulate synergy with a special space).
	space := &synergySpace{}
	res := Search(space, Options{PrecisionThreshold: 0.9}, rand.New(rand.NewSource(3)))
	if !res.Certified {
		t.Fatalf("expected certified anchor, got %+v", res)
	}
	got := append([]int(nil), res.Anchor...)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("anchor = %v, want [0 1]", got)
	}
}

// synergySpace: precision 0.6 for {0} or {1} alone, 0.97 for both together,
// 0.05 for anything else.
type synergySpace struct{}

func (s *synergySpace) NumFeatures() int { return 4 }

func (s *synergySpace) truePrecision(cand []int) float64 {
	has0, has1, other := false, false, false
	for _, i := range cand {
		switch i {
		case 0:
			has0 = true
		case 1:
			has1 = true
		default:
			other = true
		}
	}
	switch {
	case has0 && has1:
		return 0.97
	case (has0 || has1) && !other:
		return 0.6
	default:
		return 0.05
	}
}

func (s *synergySpace) SamplePrecision(rng *rand.Rand, cand []int, n int) int {
	p := s.truePrecision(cand)
	succ := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			succ++
		}
	}
	return succ
}

func (s *synergySpace) Coverage(cand []int) float64 {
	return 1.0 / float64(1+len(cand))
}

func TestSearchFallbackWhenNothingCertifies(t *testing.T) {
	space := &banditSpace{
		weights:  []float64{0.1, 0.3, 0.2},
		coverage: []float64{0.5, 0.5, 0.5},
	}
	res := Search(space, Options{PrecisionThreshold: 0.99, MaxAnchorSize: 2},
		rand.New(rand.NewSource(4)))
	if res.Certified {
		t.Fatalf("nothing should certify at 0.99: %+v", res)
	}
	if len(res.Anchor) == 0 {
		t.Error("fallback should still return the best candidate")
	}
	// The best candidate contains the strongest feature (index 1).
	found := false
	for _, i := range res.Anchor {
		if i == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback anchor %v should contain the best feature 1", res.Anchor)
	}
}

func TestSearchEmptySpace(t *testing.T) {
	space := &banditSpace{}
	res := Search(space, Options{}, rand.New(rand.NewSource(5)))
	if res.Certified || len(res.Anchor) != 0 {
		t.Errorf("empty space must return empty result, got %+v", res)
	}
}

func TestSearchDeterministicGivenSeed(t *testing.T) {
	space := &banditSpace{
		weights:  []float64{0.2, 0.8, 0.5, 0.75},
		coverage: []float64{0.3, 0.4, 0.5, 0.6},
	}
	a := Search(space, Options{}, rand.New(rand.NewSource(6)))
	b := Search(space, Options{}, rand.New(rand.NewSource(6)))
	if a.Precision != b.Precision || len(a.Anchor) != len(b.Anchor) {
		t.Errorf("search not deterministic: %+v vs %+v", a, b)
	}
}

func TestSearchQueryBudgetRespected(t *testing.T) {
	space := &banditSpace{
		weights:  []float64{0.69, 0.70, 0.71}, // adversarially close to threshold
		coverage: []float64{0.5, 0.5, 0.5},
	}
	opts := Options{PrecisionThreshold: 0.7, MaxSamplesPerCand: 300, BatchSize: 50, MaxAnchorSize: 2}
	res := Search(space, opts, rand.New(rand.NewSource(7)))
	// 3 singletons + ≤6 pairs, each capped at ~300+batch samples.
	if res.Queries > 9*400 {
		t.Errorf("query budget blown: %d samples", res.Queries)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.PrecisionThreshold != 0.7 || o.BeamWidth != 2 || o.MaxAnchorSize != 4 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	if o.BatchGrowth != 1 {
		t.Errorf("BatchGrowth default = %v, want 1 (fixed batches)", o.BatchGrowth)
	}
}

func TestSearchBatchGrowthStaysCorrectAndBounded(t *testing.T) {
	space := &banditSpace{
		weights:  []float64{0.2, 0.95, 0.3},
		coverage: []float64{0.5, 0.4, 0.5},
	}
	// Growing batches must still certify the right feature and must still
	// respect the per-candidate sample cap.
	opts := Options{PrecisionThreshold: 0.7, BatchGrowth: 2, MaxSamplesPerCand: 300, BatchSize: 20, MaxAnchorSize: 2}
	res := Search(space, opts, rand.New(rand.NewSource(3)))
	if !res.Certified || len(res.Anchor) != 1 || res.Anchor[0] != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Queries > 9*320 {
		t.Errorf("grown batches blew the sample budget: %d", res.Queries)
	}
}
