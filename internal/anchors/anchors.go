// Package anchors implements the beam-search anchor construction of
// Ribeiro et al. (2018), adapted to COMET's optimization problem (eq. 7 of
// the paper): among feature sets F ⊆ ˆP with Prec(F) ≥ 1−δ, return the one
// with maximum coverage. Precision is certified with the KL-LUCB
// confidence bounds of Kaufmann & Kalyanakrishnan (2013); coverage is
// estimated empirically on a shared pool of unconstrained perturbations.
//
// The package is deliberately independent of basic blocks: a Space exposes
// candidate features as integer indices plus precision sampling and
// coverage evaluation, so the search is reusable (and testable) on
// synthetic bandit problems.
package anchors

import (
	"math/rand"
	"sort"

	"github.com/comet-explain/comet/internal/stats"
)

// Space abstracts the domain the anchor search runs over.
type Space interface {
	// NumFeatures returns |ˆP|, the number of candidate features.
	NumFeatures() int
	// SamplePrecision draws n perturbations that retain the candidate
	// feature subset and returns how many keep the model's prediction
	// within the ε-ball (the precision successes).
	SamplePrecision(rng *rand.Rand, candidate []int, n int) int
	// Coverage returns the empirical coverage of the candidate subset.
	Coverage(candidate []int) float64
}

// BoundKind selects the concentration inequality used to certify
// precision. KL bounds (the paper's choice, via Kaufmann &
// Kalyanakrishnan 2013) are tighter near 0 and 1; Hoeffding is the
// classical alternative kept as an ablation hook.
type BoundKind int

const (
	// KLBounds uses Chernoff-information (KL) confidence bounds.
	KLBounds BoundKind = iota
	// HoeffdingBounds uses the distribution-free Hoeffding interval.
	HoeffdingBounds
)

// Options tunes the search. Zero values are replaced by defaults matching
// the paper's setup ("default hyperparameters in the Anchor algorithm").
type Options struct {
	PrecisionThreshold float64 // 1−δ in the paper; default 0.7
	Delta              float64 // KL-LUCB confidence; default 0.05
	BeamWidth          int     // beam size; default 2
	BatchSize          int     // samples per refinement step; default 50
	// BatchGrowth multiplies a candidate's sample batch each time the KL
	// bounds stay inconclusive (default 1 = fixed batches). Values > 1
	// amortize per-batch model-invocation overhead on hard candidates:
	// batches reach the BatchModel beneath the Space in ever larger
	// chunks, while the union bound stays valid because the confidence
	// level grows with exploration rounds, not samples.
	BatchGrowth       float64
	MaxSamplesPerCand int // sampling cap per candidate; default 2500
	MaxAnchorSize     int // largest explanation cardinality; default 4
	Bounds            BoundKind
}

func (o Options) withDefaults() Options {
	if o.PrecisionThreshold == 0 {
		o.PrecisionThreshold = 0.7
	}
	if o.Delta == 0 {
		o.Delta = 0.05
	}
	if o.BeamWidth == 0 {
		o.BeamWidth = 2
	}
	if o.BatchSize == 0 {
		o.BatchSize = 50
	}
	if o.BatchGrowth < 1 {
		o.BatchGrowth = 1
	}
	if o.MaxSamplesPerCand == 0 {
		o.MaxSamplesPerCand = 2500
	}
	if o.MaxAnchorSize == 0 {
		o.MaxAnchorSize = 4
	}
	return o
}

// Result is the outcome of a search.
type Result struct {
	Anchor    []int   // selected feature indices (sorted)
	Precision float64 // empirical precision estimate of the anchor
	Coverage  float64 // empirical coverage of the anchor
	Certified bool    // whether the KL lower bound cleared the threshold
	Queries   int     // total precision samples drawn
}

// candidate tracks the sampling state of one feature subset.
type candidate struct {
	idxs     []int
	n, succ  int
	batches  int // exploration rounds spent on this candidate
	coverage float64
}

func (c *candidate) mean() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.succ) / float64(c.n)
}

func key(idxs []int) string {
	b := make([]byte, 0, len(idxs)*3)
	for _, i := range idxs {
		b = append(b, byte('A'+i%64), byte('a'+(i/64)%26), ',')
	}
	return string(b)
}

// Search runs the beam search and returns the best anchor found. When no
// candidate reaches the precision threshold within MaxAnchorSize, the
// highest-precision candidate seen is returned with Certified == false
// (the Anchors "best of size" fallback).
func Search(space Space, opts Options, rng *rand.Rand) Result {
	opts = opts.withDefaults()
	nf := space.NumFeatures()
	res := Result{}
	if nf == 0 {
		return res
	}

	// Level-1 candidates: every singleton.
	beam := make([]*candidate, 0, nf)
	for i := 0; i < nf; i++ {
		beam = append(beam, &candidate{idxs: []int{i}, coverage: space.Coverage([]int{i})})
	}

	var bestFallback *candidate
	round := 0

	for size := 1; size <= opts.MaxAnchorSize; size++ {
		anchorsFound := refine(space, opts, rng, beam, &res.Queries, &round)

		// Track the best-precision candidate as a fallback.
		for _, c := range beam {
			if bestFallback == nil || c.mean() > bestFallback.mean() ||
				(c.mean() == bestFallback.mean() && c.coverage > bestFallback.coverage) {
				bestFallback = c
			}
		}

		if len(anchorsFound) > 0 {
			// Coverage shrinks as anchors grow (Π is monotone), so the
			// first level with a certified anchor holds the maximum-
			// coverage one.
			best := anchorsFound[0]
			for _, c := range anchorsFound[1:] {
				if c.coverage > best.coverage {
					best = c
				}
			}
			return Result{
				Anchor:    append([]int(nil), best.idxs...),
				Precision: best.mean(),
				Coverage:  best.coverage,
				Certified: true,
				Queries:   res.Queries,
			}
		}
		if size == opts.MaxAnchorSize {
			break
		}

		// Extend the top-BeamWidth candidates by one feature each.
		sort.Slice(beam, func(i, j int) bool {
			if beam[i].mean() != beam[j].mean() {
				return beam[i].mean() > beam[j].mean()
			}
			return beam[i].coverage > beam[j].coverage
		})
		top := beam
		if len(top) > opts.BeamWidth {
			top = top[:opts.BeamWidth]
		}
		seen := make(map[string]bool)
		var next []*candidate
		for _, c := range top {
			used := make(map[int]bool, len(c.idxs))
			for _, i := range c.idxs {
				used[i] = true
			}
			for f := 0; f < nf; f++ {
				if used[f] {
					continue
				}
				idxs := append(append([]int(nil), c.idxs...), f)
				sort.Ints(idxs)
				k := key(idxs)
				if seen[k] {
					continue
				}
				seen[k] = true
				next = append(next, &candidate{idxs: idxs, coverage: space.Coverage(idxs)})
			}
		}
		if len(next) == 0 {
			break
		}
		beam = next
	}

	if bestFallback != nil {
		res.Anchor = append([]int(nil), bestFallback.idxs...)
		res.Precision = bestFallback.mean()
		res.Coverage = bestFallback.coverage
	}
	return res
}

// refine evaluates candidates in coverage-descending order, sampling each
// with KL-LUCB bounds until it is certified (lower bound clears the
// threshold), rejected (upper bound falls below it), or its sample budget
// is exhausted. Because the outer objective is maximum coverage subject to
// the precision constraint, the first certified candidate in this order is
// the level's answer; later (lower-coverage) candidates need no further
// queries. When nothing certifies, every candidate ends up with a
// precision estimate, which the beam extension uses.
func refine(space Space, opts Options, rng *rand.Rand, cands []*candidate, queries *int, round *int) []*candidate {
	nArms := len(cands)
	order := make([]*candidate, len(cands))
	copy(order, cands)
	sort.SliceStable(order, func(i, j int) bool { return order[i].coverage > order[j].coverage })

	for _, c := range order {
		batchN := opts.BatchSize
		for {
			if c.n >= opts.MaxSamplesPerCand {
				break
			}
			if rem := opts.MaxSamplesPerCand - c.n; batchN > rem {
				batchN = rem
			}
			sample(space, rng, c, batchN, queries)
			c.batches++
			batchN = int(float64(batchN) * opts.BatchGrowth)
			*round++
			// Confidence level per Kaufmann & Kalyanakrishnan: union bound
			// over arms, growing with the candidate's own exploration
			// rounds.
			level := stats.Beta(nArms, c.batches, opts.Delta)
			lb, ub := bounds(opts.Bounds, c.mean(), c.n, level)
			if lb >= opts.PrecisionThreshold {
				return []*candidate{c}
			}
			if ub < opts.PrecisionThreshold {
				break
			}
		}
	}
	return nil
}

// bounds computes the (lower, upper) confidence interval for the selected
// concentration inequality.
func bounds(kind BoundKind, phat float64, n int, level float64) (lb, ub float64) {
	switch kind {
	case HoeffdingBounds:
		return stats.HoeffdingLowerBound(phat, n, level), stats.HoeffdingUpperBound(phat, n, level)
	default:
		return stats.KLLowerBound(phat, n, level), stats.KLUpperBound(phat, n, level)
	}
}

func sample(space Space, rng *rand.Rand, c *candidate, n int, queries *int) {
	succ := space.SamplePrecision(rng, c.idxs, n)
	c.n += n
	c.succ += succ
	*queries += n
}
