package hwsim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/x86"
)

// Report explains where the simulated pipeline spends its capacity — the
// kind of insight the paper credits uiCA with ("it can output detailed
// insights into its process ... such as where in the CPU's pipeline its
// simulator identified a bottleneck"). The experiment harness does not
// need it; it exists for users debugging cost-model explanations against
// microarchitectural reality.
type Report struct {
	Throughput    float64         // steady-state cycles per iteration
	FrontendBound float64         // uops / issue width
	PortBound     float64         // busiest execution port, cycles/iteration
	PortPressure  map[int]float64 // per-port busy cycles per iteration
	DepChainBound float64         // throughput with structural hazards removed
	Bottleneck    string          // "frontend", "port N", or "dependency chain"
}

// String renders the report as a short multi-line summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "throughput: %.2f cycles/iter (bottleneck: %s)\n", r.Throughput, r.Bottleneck)
	fmt.Fprintf(&b, "  frontend bound:  %.2f\n", r.FrontendBound)
	fmt.Fprintf(&b, "  dep-chain bound: %.2f\n", r.DepChainBound)
	ports := make([]int, 0, len(r.PortPressure))
	for p := range r.PortPressure {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	for _, p := range ports {
		if r.PortPressure[p] > 0 {
			fmt.Fprintf(&b, "  port %d pressure: %.2f\n", p, r.PortPressure[p])
		}
	}
	return b.String()
}

// Analyze simulates the block and attributes its throughput to the
// binding resource: the frontend, the busiest execution port, or the
// loop-carried dependency chain.
func (s *Simulator) Analyze(b *x86.BasicBlock) (Report, error) {
	plans, ok := s.plan(b)
	if !ok {
		return Report{}, fmt.Errorf("hwsim: cannot analyze invalid block")
	}
	r := Report{PortPressure: map[int]float64{}}
	r.Throughput = s.Throughput(b)

	// Frontend bound: total uops per iteration over the issue width.
	uops := 0
	for _, p := range plans {
		uops += p.uops
	}
	r.FrontendBound = float64(uops) / float64(s.params.IssueWidth)

	// Port pressure: bin one steady-state iteration's uops onto ports,
	// ignoring data dependencies (pure capacity accounting). Uops with the
	// fewest eligible ports are placed first — the standard
	// most-constrained-first heuristic, which approximates the balanced
	// assignment an out-of-order scheduler converges to.
	type uop struct {
		ports x86.PortSet
		occ   float64
	}
	var uopsList []uop
	for _, p := range plans {
		for l := 0; l < p.loads; l++ {
			uopsList = append(uopsList, uop{s.params.LoadPorts, 1})
		}
		if p.hasCompute {
			occ := 1.0
			if p.perf.Unpipelined {
				rthru := p.perf.RThru + s.cfg.DivRThruDelta
				if rthru < 1 {
					rthru = 1
				}
				occ = math.Ceil(rthru)
			}
			uopsList = append(uopsList, uop{p.perf.Ports, occ})
		}
		for st := 0; st < p.stores; st++ {
			uopsList = append(uopsList, uop{s.params.StoreDataPts, 1})
			if s.cfg.ModelStoreAddr {
				uopsList = append(uopsList, uop{s.params.StoreAddrPts, 1})
			}
		}
	}
	sort.SliceStable(uopsList, func(i, j int) bool {
		return uopsList[i].ports.Count() < uopsList[j].ports.Count()
	})
	busy := make([]float64, s.params.NumPorts)
	for _, u := range uopsList {
		best, bestBusy := -1, math.Inf(1)
		for n := 0; n < len(busy); n++ {
			if u.ports.Contains(n) && busy[n] < bestBusy {
				best, bestBusy = n, busy[n]
			}
		}
		if best >= 0 {
			busy[best] += u.occ
		}
	}
	for n, v := range busy {
		r.PortPressure[n] = v
		if v > r.PortBound {
			r.PortBound = v
		}
	}

	// Dependency-chain bound: rerun with structural hazards removed (an
	// effectively infinite frontend and fully-ported backend), leaving
	// only data dependencies to pace the loop.
	r.DepChainBound = s.depChainThroughput(plans)

	r.Bottleneck = classify(r, busy)
	return r, nil
}

func classify(r Report, busy []float64) string {
	// Ties go to the most upstream resource: frontend, then ports, then
	// the dependency chain.
	if r.FrontendBound >= r.PortBound && r.FrontendBound >= r.DepChainBound {
		return "frontend"
	}
	if r.PortBound >= r.DepChainBound {
		for n, v := range busy {
			if v == r.PortBound {
				return fmt.Sprintf("port %d", n)
			}
		}
	}
	return "dependency chain"
}

// depChainThroughput measures cycles/iteration when only data dependencies
// constrain execution.
func (s *Simulator) depChainThroughput(plans []instPlan) float64 {
	loadLat := float64(s.params.LoadLat + s.cfg.LoadLatDelta)
	if loadLat < 1 {
		loadLat = 1
	}
	iters := s.cfg.Iterations
	ready := make(map[deps.Loc]float64)
	iterEnd := make([]float64, iters)
	for iter := 0; iter < iters; iter++ {
		end := 0.0
		for _, p := range plans {
			src := 0.0
			for _, l := range p.reads {
				if t := ready[l]; t > src {
					src = t
				}
			}
			lat := 0.0
			if p.loads > 0 {
				lat += loadLat
			}
			if p.hasCompute {
				lat += float64(p.perf.Lat)
			}
			if p.stores > 0 {
				lat += float64(s.cfg.StoreForwardLat)
			}
			done := src + lat
			for _, l := range p.writes {
				// Same write-latency semantics as the full simulator: the
				// stack engine renames rsp immediately.
				if p.rspFast && l.Kind == deps.LocReg && l.Fam == x86.FamRSP {
					ready[l] = src + 1
					continue
				}
				ready[l] = done
			}
			if done > end {
				end = done
			}
		}
		if iter > 0 && iterEnd[iter-1] > end {
			end = iterEnd[iter-1]
		}
		iterEnd[iter] = end
	}
	half := iters / 2
	tp := (iterEnd[iters-1] - iterEnd[half-1]) / float64(iters-half)
	if tp < 0 {
		return 0
	}
	return tp
}
