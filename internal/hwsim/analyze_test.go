package hwsim

import (
	"strings"
	"testing"

	"github.com/comet-explain/comet/internal/x86"
)

func analyze(t *testing.T, src string) Report {
	t.Helper()
	b := x86.MustParseBlock(src)
	r, err := hsw().Analyze(b)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeStoreBoundBlock(t *testing.T) {
	// Case study 1: two stores on the single store-data port.
	r := analyze(t, `lea rdx, [rax + 1]
		mov qword ptr [rdi + 24], rdx
		mov byte ptr [rax], 80
		mov rsi, qword ptr [r14 + 32]
		mov rdi, rbp`)
	if !strings.HasPrefix(r.Bottleneck, "port") {
		t.Errorf("store-heavy block should be port bound, got %q\n%s", r.Bottleneck, r)
	}
	if r.PortPressure[4] < 1.9 {
		t.Errorf("store-data port pressure = %.2f, want ≈2", r.PortPressure[4])
	}
}

func TestAnalyzeFrontendBoundBlock(t *testing.T) {
	r := analyze(t, `add rax, 1
		add rbx, 1
		add rcx, 1
		add rdx, 1
		add rsi, 1
		add rdi, 1
		add r8, 1
		add r9, 1`)
	if r.Bottleneck != "frontend" {
		t.Errorf("independent add block should be frontend bound, got %q\n%s", r.Bottleneck, r)
	}
	if r.FrontendBound != 2.0 {
		t.Errorf("frontend bound = %.2f, want 2 (8 uops / width 4)", r.FrontendBound)
	}
}

func TestAnalyzeDependencyBoundBlock(t *testing.T) {
	r := analyze(t, "imul rax, rbx\nimul rax, rcx\nimul rax, rdx")
	if r.Bottleneck != "dependency chain" {
		t.Errorf("imul chain should be dependency bound, got %q\n%s", r.Bottleneck, r)
	}
	if r.DepChainBound < 8 || r.DepChainBound > 10 {
		t.Errorf("dep-chain bound = %.2f, want ≈9", r.DepChainBound)
	}
}

func TestAnalyzeBoundsAreLowerBounds(t *testing.T) {
	// Every resource bound must be ≤ the simulated throughput (with slack
	// for scheduling artifacts).
	blocks := []string{
		"add rcx, rax\nmov rdx, rcx\npop rbx",
		"div rcx\nadd rax, rbx",
		"mov qword ptr [rdi], rax\nmov rbx, qword ptr [rdi]",
		"vdivss xmm0, xmm0, xmm6\nvmulss xmm7, xmm0, xmm0",
	}
	for _, src := range blocks {
		r := analyze(t, src)
		slack := r.Throughput*1.15 + 0.5
		if r.FrontendBound > slack || r.PortBound > slack || r.DepChainBound > slack {
			t.Errorf("%q: bounds exceed throughput %.2f: %+v", src, r.Throughput, r)
		}
	}
}

func TestAnalyzeInvalidBlock(t *testing.T) {
	if _, err := hsw().Analyze(&x86.BasicBlock{}); err == nil {
		t.Error("expected error for empty block")
	}
}

func TestReportString(t *testing.T) {
	r := analyze(t, "add rax, rbx")
	s := r.String()
	for _, want := range []string{"throughput", "frontend bound", "dep-chain bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}
