// Package hwsim is an out-of-order, port-based steady-state throughput
// simulator for the modeled x86 subset. It plays two roles in this
// reproduction (see DESIGN.md):
//
//   - at full fidelity it stands in for the real Haswell/Skylake hardware
//     that labeled the BHive dataset, producing the "actual throughput"
//     ground truth every cost model is scored against;
//   - with a coarsened configuration it becomes the uiCA surrogate — an
//     accurate but imperfect simulation-based cost model (see package
//     uica).
//
// The simulator issues each instruction's micro-ops (compute, load,
// store-data, store-address) in program order over many loop iterations,
// scheduling each uop at the earliest cycle permitted by its operand
// readiness (through the same location model the dependency analyzer
// uses), the availability of an eligible execution port, and the frontend
// issue width. Steady-state throughput is the cycle-per-iteration slope
// over the second half of the simulated iterations, which is how
// throughput is defined for BHive ("average cycles per iteration when
// looped in steady state").
package hwsim

import (
	"math"

	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/x86"
)

// Config selects the microarchitecture and the fidelity knobs. The zero
// value is not useful; start from HardwareConfig or ApproxConfig.
type Config struct {
	Arch       x86.Arch
	Iterations int // loop iterations to simulate (≥ 8)

	// Fidelity knobs. HardwareConfig leaves them at full fidelity; the
	// uiCA surrogate coarsens them, which is what gives it a small but
	// non-zero prediction error concentrated on store- and divide-heavy
	// blocks — mirroring how real analytical simulators deviate from
	// silicon.
	ModelStoreAddr  bool    // model store-address uop port pressure
	LoadLatDelta    int     // added to the arch's L1 load-to-use latency
	StoreForwardLat int     // store→load forwarding latency
	DivRThruDelta   float64 // added to divide reciprocal throughput
}

// HardwareConfig returns the full-fidelity configuration used as the
// stand-in for real hardware measurements.
func HardwareConfig(arch x86.Arch) Config {
	return Config{
		Arch:            arch,
		Iterations:      64,
		ModelStoreAddr:  true,
		StoreForwardLat: 3,
	}
}

// ApproxConfig returns the coarsened configuration behind the uiCA
// surrogate: no store-address port modeling, one cycle less load latency,
// cheaper store forwarding, and slightly optimistic divides.
func ApproxConfig(arch x86.Arch) Config {
	return Config{
		Arch:            arch,
		Iterations:      64,
		ModelStoreAddr:  false,
		LoadLatDelta:    -1,
		StoreForwardLat: 2,
		DivRThruDelta:   -2,
	}
}

// Simulator predicts basic-block throughput under one Config.
// It is stateless across Throughput calls and safe for concurrent use.
type Simulator struct {
	cfg    Config
	params x86.ArchParams
}

// New builds a simulator.
func New(cfg Config) *Simulator {
	if cfg.Iterations < 8 {
		cfg.Iterations = 64
	}
	return &Simulator{cfg: cfg, params: x86.Params(cfg.Arch)}
}

// Name implements costmodel.Model.
func (s *Simulator) Name() string { return "hwsim" }

// Arch implements costmodel.Model.
func (s *Simulator) Arch() x86.Arch { return s.cfg.Arch }

// Predict implements costmodel.Model.
func (s *Simulator) Predict(b *x86.BasicBlock) float64 { return s.Throughput(b) }

// PredictBatch implements costmodel.BatchModel by parallel fan-out: the
// simulator keeps no per-call state, so blocks simulate independently.
func (s *Simulator) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	return costmodel.FanOut(blocks, 0, s.Predict)
}

// instPlan is the per-instruction scheduling recipe, precomputed once per
// block.
type instPlan struct {
	reads, writes []deps.Loc
	perf          x86.Perf
	loads, stores int
	uops          int
	hasCompute    bool // pure loads/stores (mov/push/pop) have no ALU uop
	rspFast       bool // push/pop update rsp through the stack engine
}

// Throughput returns the predicted steady-state cycles per iteration.
// Invalid blocks yield +Inf (they cannot execute).
func (s *Simulator) Throughput(b *x86.BasicBlock) float64 {
	plans, ok := s.plan(b)
	if !ok {
		return math.Inf(1)
	}

	ready := make(map[deps.Loc]float64) // location → cycle value is ready
	portFree := make([]float64, s.params.NumPorts)
	uopCount := 0
	iterEnd := make([]float64, s.cfg.Iterations)

	loadLat := float64(s.params.LoadLat + s.cfg.LoadLatDelta)
	if loadLat < 1 {
		loadLat = 1
	}

	for iter := 0; iter < s.cfg.Iterations; iter++ {
		end := 0.0
		for _, p := range plans {
			// Frontend: uops enter the backend at issue-width per cycle.
			frontend := float64(uopCount) / float64(s.params.IssueWidth)
			uopCount += p.uops

			// Operand readiness.
			src := 0.0
			for _, l := range p.reads {
				if t, ok := ready[l]; ok && t > src {
					src = t
				}
			}

			start := math.Max(frontend, src)
			issue := start // cycle the first uop of the instruction issues

			// Load uops: issue on a load port, extend the data-ready chain.
			dataLat := 0.0
			for l := 0; l < p.loads; l++ {
				start = s.issueOnPort(start, s.params.LoadPorts, 1, portFree)
				issue = start
				dataLat = loadLat
			}

			// Compute uop.
			dataDone := start + dataLat
			if p.hasCompute {
				occupancy := 1.0
				if p.perf.Unpipelined {
					rthru := p.perf.RThru + s.cfg.DivRThruDelta
					if rthru < 1 {
						rthru = 1
					}
					occupancy = math.Ceil(rthru)
				}
				start = s.issueOnPort(start, p.perf.Ports, occupancy, portFree)
				issue = start
				dataDone = start + float64(p.perf.Lat) + dataLat
			}

			// Store uops: the written memory location becomes visible to
			// later loads after the store-forwarding latency.
			memDone := dataDone
			for st := 0; st < p.stores; st++ {
				start = s.issueOnPort(start, s.params.StoreDataPts, 1, portFree)
				issue = start
				if s.cfg.ModelStoreAddr {
					s.issueOnPort(start, s.params.StoreAddrPts, 1, portFree)
				}
				memDone = start + float64(s.cfg.StoreForwardLat)
			}

			done := math.Max(dataDone, memDone)
			for _, l := range p.writes {
				switch {
				case p.rspFast && l.Kind == deps.LocReg && l.Fam == x86.FamRSP:
					// The stack engine renames rsp at issue; push/pop
					// chains do not serialize on the memory access.
					ready[l] = issue + 1
				case l.Kind == deps.LocMem || l.Kind == deps.LocStack:
					ready[l] = memDone
				default:
					ready[l] = dataDone
				}
			}
			if done > end {
				end = done
			}
			if prev := iterEnd[maxInt(0, iter-1)]; iter > 0 && prev > end {
				end = prev
			}
		}
		iterEnd[iter] = end
	}

	half := s.cfg.Iterations / 2
	cycles := (iterEnd[s.cfg.Iterations-1] - iterEnd[half-1]) / float64(s.cfg.Iterations-half)
	if cycles < 0 {
		cycles = 0
	}
	return cycles
}

// issueOnPort finds the eligible port that frees earliest, issues the uop
// there no earlier than earliest, marks the port busy for occupancy
// cycles, and returns the issue cycle.
func (s *Simulator) issueOnPort(earliest float64, eligible x86.PortSet, occupancy float64, portFree []float64) float64 {
	best := -1
	bestFree := math.Inf(1)
	for n := 0; n < len(portFree); n++ {
		if !eligible.Contains(n) {
			continue
		}
		if portFree[n] < bestFree {
			bestFree = portFree[n]
			best = n
		}
	}
	if best < 0 {
		return earliest
	}
	start := math.Max(earliest, portFree[best])
	portFree[best] = start + occupancy
	return start
}

func (s *Simulator) plan(b *x86.BasicBlock) ([]instPlan, bool) {
	if b == nil || b.Len() == 0 {
		return nil, false
	}
	plans := make([]instPlan, 0, b.Len())
	for _, inst := range b.Instructions {
		spec, ok := inst.Spec()
		if !ok {
			return nil, false
		}
		acc, err := deps.AccessOf(inst, deps.Options{})
		if err != nil {
			return nil, false
		}
		perf := x86.PerfOf(s.cfg.Arch, inst)
		loads, stores := x86.MemUops(spec, inst)
		// Pure data movement to or from memory has no ALU uop: a store is
		// store-data (+ store-address), a load is just the load uop.
		hasCompute := true
		switch spec.Class {
		case x86.ClassMov, x86.ClassVecMov, x86.ClassPush, x86.ClassPop:
			if loads+stores > 0 {
				hasCompute = false
			}
		}
		uops := loads + stores
		if hasCompute {
			uops++
		}
		if s.cfg.ModelStoreAddr {
			uops += stores
		}
		plans = append(plans, instPlan{
			reads:      acc.Reads,
			writes:     acc.Writes,
			perf:       perf,
			loads:      loads,
			stores:     stores,
			uops:       uops,
			hasCompute: hasCompute,
			rspFast:    spec.StackRead || spec.StackWrite,
		})
	}
	return plans, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
