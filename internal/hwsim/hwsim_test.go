package hwsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/comet-explain/comet/internal/x86"
)

func hsw() *Simulator { return New(HardwareConfig(x86.Haswell)) }
func skl() *Simulator { return New(HardwareConfig(x86.Skylake)) }

func tput(t *testing.T, sim *Simulator, src string) float64 {
	t.Helper()
	b, err := x86.ParseBlock(src)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Throughput(b)
}

func TestCaseStudy1StoreBound(t *testing.T) {
	// Paper §6.4 case study 1: both models (and hardware) report 2 cycles;
	// the block is bound by its two stores sharing the store-data port.
	src := `lea rdx, [rax + 1]
		mov qword ptr [rdi + 24], rdx
		mov byte ptr [rax], 80
		mov rsi, qword ptr [r14 + 32]
		mov rdi, rbp`
	got := tput(t, hsw(), src)
	if got < 1.8 || got > 2.6 {
		t.Errorf("case study 1 throughput = %.2f, want ≈2 (store bound)", got)
	}
}

func TestCaseStudy2DivBound(t *testing.T) {
	// Paper §6.4 case study 2: a 64-bit div dominates (~30-40 cycles on
	// hardware). Our synthetic tables put it in the same regime.
	src := `mov ecx, edx
		xor edx, edx
		lea rax, [rcx + rax - 1]
		div rcx
		mov rdx, rcx
		imul rax, rcx`
	got := tput(t, hsw(), src)
	if got < 15 || got > 45 {
		t.Errorf("case study 2 throughput = %.2f, want div-dominated (15..45)", got)
	}
	// Removing the div should collapse the cost.
	noDiv := `mov ecx, edx
		xor edx, edx
		lea rax, [rcx + rax - 1]
		mov rdx, rcx
		imul rax, rcx`
	if without := tput(t, hsw(), noDiv); without >= got/3 {
		t.Errorf("deleting div should collapse cost: with=%.2f without=%.2f", got, without)
	}
}

func TestDependencyChainSlowsBlock(t *testing.T) {
	// Loop-carried RAW chain of imuls vs independent imuls.
	chain := "imul rax, rbx\nimul rax, rcx\nimul rax, rdx"
	indep := "imul rax, rbx\nimul rcx, rbx\nimul rdx, rbx"
	c := tput(t, hsw(), chain)
	i := tput(t, hsw(), indep)
	if !(c > i*1.5) {
		t.Errorf("dependency chain should be much slower: chain=%.2f indep=%.2f", c, i)
	}
	// Chain ≈ 3 × imul latency (3 cycles each).
	if c < 8 || c > 10 {
		t.Errorf("imul chain = %.2f, want ≈9 (3×lat 3)", c)
	}
}

func TestFrontendWidthBound(t *testing.T) {
	// Eight independent single-uop adds: bound by the 4-wide frontend at
	// 2 cycles per iteration (ports could do 4/cycle too).
	src := `add rax, 1
		add rbx, 1
		add rcx, 1
		add rdx, 1
		add rsi, 1
		add rdi, 1
		add r8, 1
		add r9, 1`
	got := tput(t, hsw(), src)
	if math.Abs(got-2.0) > 0.3 {
		t.Errorf("8 independent adds = %.2f cycles, want ≈2 (frontend bound)", got)
	}
}

func TestStorePortBound(t *testing.T) {
	// Three independent stores: bound by the single store-data port.
	src := `mov qword ptr [rdi], rax
		mov qword ptr [rsi + 8], rbx
		mov qword ptr [rdx + 16], rcx`
	got := tput(t, hsw(), src)
	if math.Abs(got-3.0) > 0.4 {
		t.Errorf("3 stores = %.2f cycles, want ≈3 (port 4 bound)", got)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// Store feeding a load from the same address is slower than
	// independent accesses.
	fwd := "mov qword ptr [rdi], rax\nmov rbx, qword ptr [rdi]\nadd rbx, 1\nmov qword ptr [rdi], rbx"
	got := tput(t, hsw(), fwd)
	if got < 3 {
		t.Errorf("store→load→store chain = %.2f, expected serialization ≥3", got)
	}
}

func TestSkylakeNotSlowerOnDivides(t *testing.T) {
	src := "div rcx\nadd rax, rbx"
	h := tput(t, hsw(), src)
	s := tput(t, skl(), src)
	if s > h {
		t.Errorf("Skylake divide (%.2f) should not be slower than Haswell (%.2f)", s, h)
	}
}

func TestApproxConfigCloseToHardware(t *testing.T) {
	// The uiCA surrogate must track the hardware closely (small relative
	// error) across a spread of blocks — its defining property.
	blocks := []string{
		"add rcx, rax\nmov rdx, rcx\npop rbx",
		"imul rax, rbx\nimul rax, rcx",
		"mov rax, qword ptr [rbx]\nadd rax, rcx\nmov qword ptr [rbx], rax",
		"vaddss xmm0, xmm1, xmm2\nvmulss xmm3, xmm0, xmm0",
		"shl eax, 3\nadd rbx, rax\nxor rcx, rcx",
	}
	hw := New(HardwareConfig(x86.Haswell))
	approx := New(ApproxConfig(x86.Haswell))
	for _, src := range blocks {
		b := x86.MustParseBlock(src)
		h, a := hw.Throughput(b), approx.Throughput(b)
		if h == 0 {
			continue
		}
		if rel := math.Abs(h-a) / h; rel > 0.35 {
			t.Errorf("approx config too far from hardware on %q: hw=%.2f approx=%.2f", src, h, a)
		}
	}
}

func TestInvalidBlockIsInf(t *testing.T) {
	sim := hsw()
	if got := sim.Throughput(&x86.BasicBlock{}); !math.IsInf(got, 1) {
		t.Errorf("empty block throughput = %v, want +Inf", got)
	}
	bad := &x86.BasicBlock{Instructions: []x86.Instruction{{Opcode: "bogus"}}}
	if got := sim.Throughput(bad); !math.IsInf(got, 1) {
		t.Errorf("invalid block throughput = %v, want +Inf", got)
	}
}

func TestThroughputDeterministic(t *testing.T) {
	src := "add rcx, rax\nmov rdx, rcx\npop rbx"
	if tput(t, hsw(), src) != tput(t, hsw(), src) {
		t.Error("simulation must be deterministic")
	}
}

func TestThroughputPositiveAndFinite(t *testing.T) {
	// Property: every valid block simulates to a positive finite cost that
	// is at least the frontend lower bound and at most a generous serial
	// upper bound.
	opcodes2 := []string{"add", "sub", "xor", "mov", "imul", "and", "or"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fams := x86.GPFamilies()
		n := 1 + rng.Intn(8)
		var insts []x86.Instruction
		for i := 0; i < n; i++ {
			op := opcodes2[rng.Intn(len(opcodes2))]
			r1 := x86.NewReg(x86.Reg{Family: fams[rng.Intn(8)], Size: x86.Size64})
			r2 := x86.NewReg(x86.Reg{Family: fams[rng.Intn(8)], Size: x86.Size64})
			insts = append(insts, x86.Instruction{Opcode: op, Operands: []x86.Operand{r1, r2}})
		}
		b := x86.NewBlock(insts...)
		if b.Validate() != nil {
			return true // imul 8-bit etc. — skip invalid draws
		}
		got := hsw().Throughput(b)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Logf("bad throughput %v for\n%s", got, b)
			return false
		}
		lower := float64(n)/4.0 - 0.6
		upper := float64(n) * 40
		return got >= lower && got <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestLongerBlocksNotFaster(t *testing.T) {
	// Appending an independent instruction never reduces throughput cost.
	base := x86.MustParseBlock("add rax, rbx\nimul rcx, rdx")
	ext := x86.MustParseBlock("add rax, rbx\nimul rcx, rdx\nadd rsi, rdi")
	if tput0, tput1 := hsw().Throughput(base), hsw().Throughput(ext); tput1+1e-9 < tput0 {
		t.Errorf("extended block got faster: %.3f → %.3f", tput0, tput1)
	}
}

func TestVectorDivideChain(t *testing.T) {
	// The Appendix F β1 block: two chained vdivss ops dominate.
	src := `vdivss xmm0, xmm0, xmm6
		vmulss xmm7, xmm0, xmm0
		vxorps xmm0, xmm0, xmm5
		vaddss xmm7, xmm7, xmm3
		vmulss xmm6, xmm6, xmm7
		vdivss xmm6, xmm3, xmm6
		vmulss xmm0, xmm6, xmm0`
	got := tput(t, hsw(), src)
	if got < 20 {
		t.Errorf("chained FP divides should dominate: %.2f cycles", got)
	}
}
