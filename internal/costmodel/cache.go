package costmodel

import (
	"sync"
	"sync/atomic"

	"github.com/comet-explain/comet/internal/x86"
)

// Cache is a sharded prediction cache keyed by the canonical text of a
// basic block. Perturbation draws collide constantly — deleting different
// subsets of a block, or renaming registers back to the same choice,
// frequently reproduces a block already queried — so a hit skips the model
// entirely. Cached values are exact previous predictions of a deterministic
// model, so caching never changes an explanation, only its cost.
//
// The cache is safe for concurrent use; sharding keeps lock contention
// negligible when a corpus run explains many blocks at once.
type Cache struct {
	shards      []cacheShard
	maxPerShard int
	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]float64
}

const (
	cacheShards         = 64
	defaultCacheEntries = 1 << 20
)

// NewCache allocates a cache bounded to roughly maxEntries predictions
// (0 = default of about one million). When a shard fills up it is dropped
// wholesale — crude epoch eviction, but eviction only ever costs recompute,
// never correctness.
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = defaultCacheEntries
	}
	perShard := maxEntries / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]cacheShard, cacheShards), maxPerShard: perShard}
	for i := range c.shards {
		c.shards[i].m = make(map[string]float64)
	}
	return c
}

// BlockKey returns the canonical cache key for a block: its rendered
// instruction text, which is exactly the information a cost model sees.
func BlockKey(b *x86.BasicBlock) string { return b.String() }

// fnv32a is an inlined, allocation-free FNV-1a over the key (hash/fnv's
// streaming hasher costs one allocation per call on this hot path).
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv32a(key)%cacheShards]
}

// Get returns the cached prediction for key, if present.
func (c *Cache) Get(key string) (float64, bool) {
	s := c.shard(key)
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put stores a prediction. Concurrent Puts of the same key are idempotent
// because predictions are deterministic per block.
func (c *Cache) Put(key string, pred float64) {
	s := c.shard(key)
	s.mu.Lock()
	if len(s.m) >= c.maxPerShard {
		c.evictions.Add(uint64(len(s.m)))
		s.m = make(map[string]float64)
	}
	s.m[key] = pred
	s.mu.Unlock()
}

// Len returns the number of cached predictions.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the global hit/miss counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}

// PredictThrough resolves a prediction for every block through the cache
// (which may be nil) and then the model, issuing at most batch blocks per
// PredictBatch call (batch <= 0 means one call for all misses). Duplicate
// blocks within the slice are predicted once. Results are written into
// preds, which must have len(blocks) elements. It returns how many of the
// queries were answered without a model evaluation (cache hits plus
// within-batch duplicates) and how many blocks the model actually evaluated.
func PredictThrough(cache *Cache, model BatchModel, blocks []*x86.BasicBlock, batch int, preds []float64) (saved, evaluated int) {
	if len(blocks) == 0 {
		return 0, 0
	}
	if batch <= 0 {
		batch = len(blocks)
	}
	// The dedup bookkeeping is pooled: every explanation calls
	// PredictThrough once per sampling round, and a fresh map plus three
	// slices per call dominated the query path's allocations. Duplicate
	// slots chain through next (an intrusive linked list over slot
	// indices) instead of per-key []int slices.
	sc := ptScratchPool.Get().(*predictScratch)
	defer sc.release()
	pending := sc.pending // canonical key → most recent slot wanting it
	if cap(sc.next) < len(blocks) {
		sc.next = make([]int, len(blocks))
	}
	next := sc.next[:len(blocks)]
	missKeys := sc.missKeys[:0]
	missBlocks := sc.missBlocks[:0]
	for i, b := range blocks {
		key := BlockKey(b)
		if cache != nil {
			if v, ok := cache.Get(key); ok {
				preds[i] = v
				saved++
				continue
			}
		}
		if head, ok := pending[key]; ok {
			next[i] = head
			pending[key] = i
			saved++
			continue
		}
		next[i] = -1
		pending[key] = i
		missKeys = append(missKeys, key)
		missBlocks = append(missBlocks, b)
	}
	sc.missKeys, sc.missBlocks = missKeys, missBlocks // keep grown buffers
	for start := 0; start < len(missBlocks); start += batch {
		end := start + batch
		if end > len(missBlocks) {
			end = len(missBlocks)
		}
		out := model.PredictBatch(missBlocks[start:end])
		for j, v := range out {
			key := missKeys[start+j]
			if cache != nil {
				cache.Put(key, v)
			}
			for slot := pending[key]; slot >= 0; slot = next[slot] {
				preds[slot] = v
			}
		}
	}
	return saved, len(missBlocks)
}

// predictScratch is PredictThrough's pooled working state.
type predictScratch struct {
	pending    map[string]int
	next       []int
	missKeys   []string
	missBlocks []*x86.BasicBlock
}

var ptScratchPool = sync.Pool{
	New: func() any {
		return &predictScratch{pending: make(map[string]int, 64)}
	},
}

// release clears pointer-bearing state (so pooled scratch never pins
// blocks or key strings) and returns the scratch to the pool. Scratch
// that ballooned on a giant batch is dropped rather than pinned.
func (sc *predictScratch) release() {
	if len(sc.pending) > 1<<16 || cap(sc.next) > 1<<20 {
		return
	}
	clear(sc.pending)
	for i := range sc.missKeys {
		sc.missKeys[i] = ""
	}
	for i := range sc.missBlocks {
		sc.missBlocks[i] = nil
	}
	sc.missKeys = sc.missKeys[:0]
	sc.missBlocks = sc.missBlocks[:0]
	ptScratchPool.Put(sc)
}

// CachedModel wraps a BatchModel with a prediction cache. It implements
// BatchModel itself, so caching composes with any explainer or pipeline
// that consumes the interface.
type CachedModel struct {
	model BatchModel
	cache *Cache
}

var _ BatchModel = (*CachedModel)(nil)

// WithCache wraps model. A nil cache allocates a default-sized one.
func WithCache(model BatchModel, cache *Cache) *CachedModel {
	if cache == nil {
		cache = NewCache(0)
	}
	return &CachedModel{model: model, cache: cache}
}

// Name implements Model.
func (m *CachedModel) Name() string { return m.model.Name() }

// Arch implements Model.
func (m *CachedModel) Arch() x86.Arch { return m.model.Arch() }

// Cache returns the underlying cache (for stats).
func (m *CachedModel) Cache() *Cache { return m.cache }

// Unwrap returns the wrapped model.
func (m *CachedModel) Unwrap() BatchModel { return m.model }

// Predict implements Model with a cache lookup first.
func (m *CachedModel) Predict(b *x86.BasicBlock) float64 {
	key := BlockKey(b)
	if v, ok := m.cache.Get(key); ok {
		return v
	}
	v := m.model.Predict(b)
	m.cache.Put(key, v)
	return v
}

// PredictBatch implements BatchModel: hits are served from the cache,
// misses are deduplicated and forwarded in one batch.
func (m *CachedModel) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	preds := make([]float64, len(blocks))
	PredictThrough(m.cache, m.model, blocks, 0, preds)
	return preds
}
