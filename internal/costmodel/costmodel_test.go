package costmodel

import (
	"testing"

	"github.com/comet-explain/comet/internal/x86"
)

func TestFuncAdapter(t *testing.T) {
	// The paper's Section 4 toy model M1: throughput 2 iff the block has 8
	// instructions.
	m1 := Func{
		ModelName: "M1",
		ModelArch: x86.Haswell,
		Fn: func(b *x86.BasicBlock) float64 {
			if b.Len() == 8 {
				return 2
			}
			return 1
		},
	}
	var m Model = m1
	if m.Name() != "M1" || m.Arch() != x86.Haswell {
		t.Errorf("adapter metadata wrong: %q %v", m.Name(), m.Arch())
	}
	short := x86.MustParseBlock("add rax, rbx")
	if got := m.Predict(short); got != 1 {
		t.Errorf("M1(short) = %v, want 1", got)
	}
	eight := x86.MustParseBlock(`add rax, 1
		add rbx, 1
		add rcx, 1
		add rdx, 1
		add rsi, 1
		add rdi, 1
		add r8, 1
		add r9, 1`)
	if got := m.Predict(eight); got != 2 {
		t.Errorf("M1(8 instrs) = %v, want 2", got)
	}
}
