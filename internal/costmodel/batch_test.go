package costmodel

import (
	"fmt"
	"sync"
	"testing"

	"github.com/comet-explain/comet/internal/x86"
)

// lenModel is a deterministic toy model that counts its evaluations.
type lenModel struct {
	mu    sync.Mutex
	calls int
}

func (m *lenModel) Name() string   { return "len" }
func (m *lenModel) Arch() x86.Arch { return x86.Haswell }
func (m *lenModel) Predict(b *x86.BasicBlock) float64 {
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	return float64(b.Len()) / 4
}

func testBlocks(t testing.TB, n int) []*x86.BasicBlock {
	t.Helper()
	blocks := make([]*x86.BasicBlock, n)
	for i := range blocks {
		src := "add rax, rbx"
		for j := 0; j < i%5; j++ {
			src += fmt.Sprintf("\nadd rcx, %d", j)
		}
		blocks[i] = x86.MustParseBlock(src)
	}
	return blocks
}

func TestBatcherMatchesSequential(t *testing.T) {
	model := &lenModel{}
	blocks := testBlocks(t, 37)
	batched := NewBatcher(model, 4).PredictBatch(blocks)
	for i, b := range blocks {
		if want := model.Predict(b); batched[i] != want {
			t.Errorf("block %d: batched %v != sequential %v", i, batched[i], want)
		}
	}
	if got := NewBatcher(model, 4).Name(); got != "len" {
		t.Errorf("Name() = %q", got)
	}
}

func TestAsBatchPassesThroughNativeImplementations(t *testing.T) {
	model := &lenModel{}
	wrapped := NewBatcher(model, 2)
	if AsBatch(wrapped) != BatchModel(wrapped) {
		t.Error("AsBatch should return a BatchModel unchanged")
	}
	if _, ok := AsBatch(model).(*Batcher); !ok {
		t.Error("AsBatch should wrap a plain Model in a Batcher")
	}
}

func TestFanOutSmallAndEmpty(t *testing.T) {
	model := &lenModel{}
	if out := FanOut(nil, 4, model.Predict); len(out) != 0 {
		t.Errorf("empty fan-out returned %v", out)
	}
	blocks := testBlocks(t, 2)
	out := FanOut(blocks, 8, model.Predict)
	for i, b := range blocks {
		if out[i] != model.Predict(b) {
			t.Errorf("block %d mismatch", i)
		}
	}
}

func TestCacheGetPutStats(t *testing.T) {
	c := NewCache(0)
	b := x86.MustParseBlock("add rax, rbx\nmov rcx, rax")
	key := BlockKey(b)
	if _, ok := c.Get(key); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(key, 1.25)
	v, ok := c.Get(key)
	if !ok || v != 1.25 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheEvictsWhenFull(t *testing.T) {
	c := NewCache(cacheShards) // one entry per shard
	blocks := testBlocks(t, 64)
	for i, b := range blocks {
		c.Put(BlockKey(b), float64(i))
	}
	if n := c.Len(); n > 2*cacheShards {
		t.Errorf("cache grew past its bound: %d entries", n)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(0)
	blocks := testBlocks(t, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, b := range blocks {
				key := BlockKey(b)
				if v, ok := c.Get(key); ok && v != float64(b.Len()) {
					t.Errorf("block %d: stale value %v", i, v)
				}
				c.Put(key, float64(b.Len()))
			}
		}()
	}
	wg.Wait()
}

func TestPredictThroughDeduplicatesAndCounts(t *testing.T) {
	model := &lenModel{}
	c := NewCache(0)
	b1 := x86.MustParseBlock("add rax, rbx")
	b2 := x86.MustParseBlock("mov rcx, rdx")
	blocks := []*x86.BasicBlock{b1, b2, b1, b1, b2}
	preds := make([]float64, len(blocks))
	saved, evaluated := PredictThrough(c, NewBatcher(model, 2), blocks, 2, preds)
	if evaluated != 2 {
		t.Errorf("evaluated = %d, want 2 (unique blocks)", evaluated)
	}
	if saved != 3 {
		t.Errorf("saved = %d, want 3 (duplicates)", saved)
	}
	for i, b := range blocks {
		if want := float64(b.Len()) / 4; preds[i] != want {
			t.Errorf("preds[%d] = %v, want %v", i, preds[i], want)
		}
	}
	// A second pass over the same blocks is all cache hits.
	saved, evaluated = PredictThrough(c, NewBatcher(model, 2), blocks, 2, preds)
	if saved != len(blocks) || evaluated != 0 {
		t.Errorf("warm pass: saved=%d evaluated=%d", saved, evaluated)
	}
}

func TestCachedModelMatchesUnderlying(t *testing.T) {
	model := &lenModel{}
	cached := WithCache(AsBatch(model), nil)
	blocks := testBlocks(t, 20)
	out := cached.PredictBatch(blocks)
	for i, b := range blocks {
		want := float64(b.Len()) / 4
		if out[i] != want {
			t.Errorf("batch preds[%d] = %v, want %v", i, out[i], want)
		}
		if got := cached.Predict(b); got != want {
			t.Errorf("Predict(%d) = %v, want %v", i, got, want)
		}
	}
	if cached.Cache().Len() == 0 {
		t.Error("cache should have been populated")
	}
	if cached.Name() != "len" || cached.Arch() != x86.Haswell {
		t.Error("CachedModel must pass through identity")
	}
}
