package costmodel

import (
	"runtime"
	"sync"

	"github.com/comet-explain/comet/internal/x86"
)

// BatchModel is a cost model that can answer many queries per invocation.
// Amortizing queries is COMET's single biggest throughput lever: precision
// certification spends thousands of model queries per block, and a batched
// model can share per-call overhead (goroutine fan-out for simulators,
// weight-matrix traversal for the neural model) across a whole batch.
//
// PredictBatch(blocks)[i] must equal Predict(blocks[i]) exactly — batching
// is a performance contract, never a numerical one — and implementations
// must remain safe for concurrent use.
type BatchModel interface {
	Model
	// PredictBatch returns one prediction per block, in order.
	PredictBatch(blocks []*x86.BasicBlock) []float64
}

// Batcher adapts any Model to BatchModel by fanning Predict calls out over
// a bounded worker pool. Models with a cheaper native batch path should
// implement BatchModel directly (see AsBatch).
type Batcher struct {
	model   Model
	workers int
}

var _ BatchModel = (*Batcher)(nil)

// NewBatcher wraps model; workers bounds the fan-out (0 = GOMAXPROCS).
func NewBatcher(model Model, workers int) *Batcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Batcher{model: model, workers: workers}
}

// Name implements Model.
func (b *Batcher) Name() string { return b.model.Name() }

// Arch implements Model.
func (b *Batcher) Arch() x86.Arch { return b.model.Arch() }

// Predict implements Model.
func (b *Batcher) Predict(blk *x86.BasicBlock) float64 { return b.model.Predict(blk) }

// Unwrap returns the wrapped model.
func (b *Batcher) Unwrap() Model { return b.model }

// PredictBatch implements BatchModel by parallel fan-out.
func (b *Batcher) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	return FanOut(blocks, b.workers, b.model.Predict)
}

// AsBatch returns model itself when it already implements BatchModel, and
// otherwise wraps it in a Batcher with the default worker count.
func AsBatch(model Model) BatchModel {
	if bm, ok := model.(BatchModel); ok {
		return bm
	}
	return NewBatcher(model, 0)
}

// FanOut evaluates predict over every block with at most workers goroutines
// (0 = GOMAXPROCS) and returns the predictions in block order. Small
// batches run inline, and workers are capped so each goroutine gets a
// meaningful slice of work — per-prediction cost can be microseconds
// (analytical model), where per-goroutine overhead would dominate.
func FanOut(blocks []*x86.BasicBlock, workers int, predict func(*x86.BasicBlock) float64) []float64 {
	const minPerWorker = 16
	out := make([]float64, len(blocks))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (len(blocks) + minPerWorker - 1) / minPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 || len(blocks) < 4 {
		for i, b := range blocks {
			out[i] = predict(b)
		}
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(blocks); i += workers {
				out[i] = predict(blocks[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}
