// Package costmodel defines the query-only interface COMET assumes of any
// cost model M (Section 4 of the paper): a black box mapping valid basic
// blocks to real-valued costs. The three model families the evaluation
// studies — the crude analytical model C, the uiCA-like simulator, and the
// Ithemal-like neural model — all implement Model.
package costmodel

import "github.com/comet-explain/comet/internal/x86"

// Model is a basic-block cost model with query access only.
// Implementations must be safe for concurrent Predict calls: the explainer
// issues queries from multiple goroutines.
type Model interface {
	// Name identifies the model in reports (e.g. "ithemal", "uica", "C").
	Name() string
	// Arch returns the microarchitecture the model targets.
	Arch() x86.Arch
	// Predict returns the block's predicted steady-state throughput in
	// cycles per iteration.
	Predict(b *x86.BasicBlock) float64
}

// QueryError is the panic payload a cost model raises when a query cannot
// be answered at all — a remote backend became unreachable, or the
// explainer's context was canceled mid-search. The Model interface has no
// error channel (COMET assumes an oracle), so models abort the querying
// computation instead of inventing values; the explainer recovers
// QueryError panics at its API boundary and surfaces Err as an ordinary
// error. Any other panic value propagates unchanged.
type QueryError struct{ Err error }

// Error implements error.
func (q QueryError) Error() string { return q.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (q QueryError) Unwrap() error { return q.Err }

// AbortQuery panics with a QueryError, aborting the in-flight explanation
// (which returns err from the explainer API).
func AbortQuery(err error) {
	panic(QueryError{Err: err})
}

// Func adapts a function to the Model interface, for tests and toy models
// (such as the 8-instruction example model M1 in Section 4).
type Func struct {
	ModelName string
	ModelArch x86.Arch
	Fn        func(b *x86.BasicBlock) float64
}

// Name implements Model.
func (f Func) Name() string { return f.ModelName }

// Arch implements Model.
func (f Func) Arch() x86.Arch { return f.ModelArch }

// Predict implements Model.
func (f Func) Predict(b *x86.BasicBlock) float64 { return f.Fn(b) }
