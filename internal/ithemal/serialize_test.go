package ithemal

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/comet-explain/comet/internal/x86"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	samples := trainingSamples(80, 11)
	m := New(tinyConfig(x86.Haswell))
	m.Train(samples, nil)

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for _, s := range samples[:10] {
		a, b := m.Predict(s.Block), loaded.Predict(s.Block)
		if a != b {
			t.Fatalf("loaded model predicts differently: %v vs %v", a, b)
		}
	}
	if loaded.Arch() != x86.Haswell {
		t.Errorf("loaded arch = %v", loaded.Arch())
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := New(tinyConfig(x86.Skylake))
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b := x86.MustParseBlock("add rax, rbx")
	if m.Predict(b) != loaded.Predict(b) {
		t.Error("file round trip changed predictions")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Load(strings.NewReader(`{"format":"other"}`)); err == nil {
		t.Error("expected format error")
	}
	if _, err := Load(strings.NewReader(`{"format":"comet-ithemal-v1","arch":"P4"}`)); err == nil {
		t.Error("expected arch error")
	}
	if _, err := Load(strings.NewReader(`{"format":"comet-ithemal-v1","arch":"HSW","embed_dim":4,"hidden":4,"params":{}}`)); err == nil {
		t.Error("expected missing-parameter error")
	}
}
