package ithemal

import (
	"sync"

	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/x86"
)

var _ costmodel.BatchModel = (*Model)(nil)

// PredictBatch implements costmodel.BatchModel natively: one padded,
// lockstep LSTM forward over all N blocks instead of N independent forward
// passes. Both LSTM stages batch across their natural unit — the token LSTM
// across every instruction of every block, the block LSTM across blocks —
// so each weight row is streamed through the cache once per timestep for
// the whole batch. Per-block results are bit-identical to Predict: batching
// reorders no floating-point operation within a block.
//
// Large batches are additionally split across cfg.Workers goroutines, each
// running its chunk in lockstep; chunking is invisible to the results.
func (m *Model) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	preds := make([]float64, len(blocks))
	workers := m.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	const minChunk = 8
	if workers == 1 || len(blocks) < 2*minChunk {
		m.predictLockstep(blocks, preds)
		return preds
	}
	chunk := (len(blocks) + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	var wg sync.WaitGroup
	for start := 0; start < len(blocks); start += chunk {
		end := start + chunk
		if end > len(blocks) {
			end = len(blocks)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			m.predictLockstep(blocks[start:end], preds[start:end])
		}(start, end)
	}
	wg.Wait()
	return preds
}

// predictLockstep runs the hierarchical forward pass for a chunk of blocks
// in lockstep, writing predictions into out (len(out) == len(blocks)).
func (m *Model) predictLockstep(blocks []*x86.BasicBlock, out []float64) {
	// Stage 1 items are instructions: tokenize everything up front.
	instStart := make([]int, len(blocks)+1)
	var ids [][]int
	maxTokens, maxInsts := 0, 0
	for bi, b := range blocks {
		instStart[bi] = len(ids)
		if b == nil || b.Len() == 0 {
			continue
		}
		if b.Len() > maxInsts {
			maxInsts = b.Len()
		}
		for _, inst := range b.Instructions {
			seq := m.tokenIDs(inst)
			if len(seq) > maxTokens {
				maxTokens = len(seq)
			}
			ids = append(ids, seq)
		}
	}
	instStart[len(blocks)] = len(ids)
	if len(ids) == 0 {
		return // every block empty; Predict returns 0 for those
	}

	// Token LSTM over all instructions in lockstep. An instruction drops
	// out of the active set once its token sequence ends, so its final
	// hidden state is exactly LSTM.Run's fold over its own length.
	stage1 := m.instLSTM.NewInferBatch(len(ids))
	xs := make([][]float64, len(ids))
	items := make([]int, 0, len(ids))
	for t := 0; t < maxTokens; t++ {
		items = items[:0]
		for i, seq := range ids {
			if t < len(seq) {
				xs[i] = m.emb.Row(seq[t])
				items = append(items, i)
			}
		}
		stage1.Step(xs, items)
	}

	// Block LSTM over instruction embeddings, batched across blocks.
	stage2 := m.blockLSTM.NewInferBatch(len(blocks))
	xs2 := make([][]float64, len(blocks))
	for t := 0; t < maxInsts; t++ {
		items = items[:0]
		for bi, b := range blocks {
			if b != nil && t < b.Len() {
				xs2[bi] = stage1.H[instStart[bi]+t]
				items = append(items, bi)
			}
		}
		stage2.Step(xs2, items)
	}

	for bi, b := range blocks {
		if b == nil || b.Len() == 0 {
			out[bi] = 0
			continue
		}
		pred := m.out.DotRow(0, stage2.H[bi]) + m.bias.W[0]
		if pred < 0.25 {
			pred = 0.25
		}
		out[bi] = pred
	}
}
