package ithemal

import (
	"math"
	"testing"

	"github.com/comet-explain/comet/internal/bhive"
	"github.com/comet-explain/comet/internal/x86"
)

func tinyConfig(arch x86.Arch) Config {
	return Config{
		Arch:      arch,
		EmbedDim:  12,
		Hidden:    20,
		LR:        5e-3,
		Epochs:    6,
		BatchSize: 16,
		Workers:   4,
		Seed:      1,
	}
}

func trainingSamples(n int, seed int64) []Sample {
	blocks := bhive.Generate(bhive.Config{N: n, MinInstrs: 2, MaxInstrs: 8, Seed: seed})
	samples := make([]Sample, len(blocks))
	for i, b := range blocks {
		samples[i] = Sample{Block: b.Block, Throughput: b.Throughput[x86.Haswell]}
	}
	return samples
}

func TestTokenizer(t *testing.T) {
	inst := x86.MustParseBlock("mov rax, qword ptr [rbx + rcx*8 + 16]").Instructions[0]
	toks := TokenizeInstruction(inst)
	want := []string{"mov", "<sep>", "rax", "<sep>", "[", "rbx", "rcx", "scale8", "dsmall", "]", "</s>"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizerImmediateAndLea(t *testing.T) {
	inst := x86.MustParseBlock("add rcx, 7").Instructions[0]
	toks := TokenizeInstruction(inst)
	found := false
	for _, tok := range toks {
		if tok == "<imm>" {
			found = true
		}
	}
	if !found {
		t.Errorf("immediate token missing: %v", toks)
	}
	lea := x86.MustParseBlock("lea rdx, [rax + 1]").Instructions[0]
	toks = TokenizeInstruction(lea)
	if toks[0] != "lea" {
		t.Errorf("lea tokens: %v", toks)
	}
}

func TestVocabularyCoversDataset(t *testing.T) {
	m := New(tinyConfig(x86.Haswell))
	if m.VocabSize() < 100 {
		t.Fatalf("vocabulary too small: %d", m.VocabSize())
	}
	unk := m.vocab["<unk>"]
	for _, b := range bhive.Generate(bhive.Config{N: 50, Seed: 2, SkipLabels: true}) {
		for _, inst := range b.Block.Instructions {
			for _, id := range m.tokenIDs(inst) {
				if id == unk {
					t.Fatalf("dataset token out of vocabulary in %s", inst)
				}
			}
		}
	}
}

func TestUntrainedPredictIsFiniteAndDeterministic(t *testing.T) {
	m := New(tinyConfig(x86.Haswell))
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx\npop rbx")
	p1 := m.Predict(b)
	p2 := m.Predict(b)
	if p1 != p2 {
		t.Error("prediction must be deterministic")
	}
	if math.IsNaN(p1) || math.IsInf(p1, 0) {
		t.Errorf("prediction = %v", p1)
	}
	if p1 < 0.25 {
		t.Errorf("prediction %v below the clamp", p1)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	samples := trainingSamples(150, 3)
	m := New(tinyConfig(x86.Haswell))
	res := m.Train(samples, nil)
	first, last := res.EpochLoss[0], res.EpochLoss[len(res.EpochLoss)-1]
	if !(last < first*0.7) {
		t.Errorf("training did not reduce loss: %.4f → %.4f", first, last)
	}
}

func TestTrainingImprovesMAPE(t *testing.T) {
	samples := trainingSamples(200, 4)
	m := New(tinyConfig(x86.Haswell))
	before := m.MAPE(samples)
	m.Train(samples, nil)
	after := m.MAPE(samples)
	if !(after < before) {
		t.Errorf("MAPE did not improve: %.1f%% → %.1f%%", before, after)
	}
	if after > 60 {
		t.Errorf("trained MAPE suspiciously high: %.1f%%", after)
	}
}

func TestTrainingDeterministicAcrossWorkerCounts(t *testing.T) {
	samples := trainingSamples(60, 5)
	cfg1 := tinyConfig(x86.Haswell)
	cfg1.Epochs = 2
	cfg1.Workers = 1
	cfg4 := cfg1
	cfg4.Workers = 4

	m1 := New(cfg1)
	m4 := New(cfg4)
	m1.Train(samples, nil)
	m4.Train(samples, nil)

	b := samples[0].Block
	p1, p4 := m1.Predict(b), m4.Predict(b)
	if math.Abs(p1-p4) > 1e-9 {
		t.Errorf("training must be deterministic across worker counts: %v vs %v", p1, p4)
	}
}

func TestPredictConcurrencySafe(t *testing.T) {
	m := New(tinyConfig(x86.Haswell))
	b := x86.MustParseBlock("add rcx, rax\nmov rdx, rcx")
	want := m.Predict(b)
	done := make(chan float64, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- m.Predict(b) }()
	}
	for i := 0; i < 16; i++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent prediction differs: %v vs %v", got, want)
		}
	}
}

func TestModelDistinguishesCheapFromExpensive(t *testing.T) {
	samples := trainingSamples(300, 6)
	m := New(tinyConfig(x86.Haswell))
	m.Train(samples, nil)
	cheap := x86.MustParseBlock("add rax, rbx\nxor rcx, rcx")
	expensive := x86.MustParseBlock("div rcx\ndiv rbx")
	pc, pe := m.Predict(cheap), m.Predict(expensive)
	if !(pe > pc) {
		t.Errorf("trained model should rank div blocks above add blocks: cheap=%.2f expensive=%.2f", pc, pe)
	}
}

func TestEmptyBlockPredictsZero(t *testing.T) {
	m := New(tinyConfig(x86.Haswell))
	if got := m.Predict(&x86.BasicBlock{}); got != 0 {
		t.Errorf("empty block = %v, want 0", got)
	}
}
