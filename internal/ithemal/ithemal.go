// Package ithemal implements the reproduction's stand-in for Ithemal
// (Mendis et al. 2019): a hierarchical LSTM throughput model (Appendix H.2
// of the COMET paper). Token embeddings of each instruction are combined by
// a first LSTM into instruction embeddings; a second LSTM combines those
// into a block embedding; a linear regressor maps it to a throughput.
//
// Unlike the original (a PyTorch model trained on hardware-measured BHive),
// this model is trained inside the repository with the pure-Go nn package
// on synthetic blocks labeled by the hwsim hardware stand-in. It is
// genuinely learned — its error profile (around 10-20% MAPE, versus the
// uiCA surrogate's few percent) and its bias toward coarse block features
// are emergent properties of training, exactly the regime the paper
// studies.
package ithemal

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/nn"
	"github.com/comet-explain/comet/internal/stats"
	"github.com/comet-explain/comet/internal/x86"
)

// Config selects the architecture and training hyperparameters.
type Config struct {
	Arch      x86.Arch
	EmbedDim  int
	Hidden    int
	LR        float64
	Epochs    int
	BatchSize int
	Workers   int   // data-parallel workers; 0 = GOMAXPROCS
	Seed      int64 // weight init and shuffling
}

// DefaultConfig returns the configuration used by the experiment harness.
func DefaultConfig(arch x86.Arch) Config {
	return Config{
		Arch:      arch,
		EmbedDim:  32,
		Hidden:    64,
		LR:        2e-3,
		Epochs:    8,
		BatchSize: 32,
		Seed:      1,
	}
}

// Sample is one training example: a block and its measured throughput.
type Sample struct {
	Block      *x86.BasicBlock
	Throughput float64
}

// Model is the hierarchical LSTM cost model.
type Model struct {
	cfg       Config
	vocab     map[string]int
	emb       *nn.Param
	instLSTM  *nn.LSTM
	blockLSTM *nn.LSTM
	out       *nn.Param
	bias      *nn.Param
}

var _ costmodel.Model = (*Model)(nil)

// New builds an untrained model with deterministic initialization.
func New(cfg Config) *Model {
	if cfg.EmbedDim == 0 || cfg.Hidden == 0 {
		def := DefaultConfig(cfg.Arch)
		def.Arch = cfg.Arch
		if cfg.Seed != 0 {
			def.Seed = cfg.Seed
		}
		cfg = def
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := buildVocab()
	m := &Model{
		cfg:       cfg,
		vocab:     vocab,
		emb:       nn.NewParam("emb", len(vocab), cfg.EmbedDim).InitXavier(rng),
		instLSTM:  nn.NewLSTM("inst", cfg.EmbedDim, cfg.Hidden, rng),
		blockLSTM: nn.NewLSTM("block", cfg.Hidden, cfg.Hidden, rng),
		out:       nn.NewParam("out", 1, cfg.Hidden).InitXavier(rng),
		bias:      nn.NewParam("bias", 1, 1),
	}
	return m
}

// Name implements costmodel.Model.
func (m *Model) Name() string { return "ithemal" }

// Arch implements costmodel.Model.
func (m *Model) Arch() x86.Arch { return m.cfg.Arch }

// params returns all trainable parameters in a fixed order.
func (m *Model) params() []*nn.Param {
	ps := []*nn.Param{m.emb}
	ps = append(ps, m.instLSTM.Params()...)
	ps = append(ps, m.blockLSTM.Params()...)
	ps = append(ps, m.out, m.bias)
	return ps
}

// buildVocab enumerates the token vocabulary deterministically from the ISA
// tables: every opcode, every register name, plus structural tokens.
func buildVocab() map[string]int {
	var tokens []string
	tokens = append(tokens, "<unk>", "<imm>", "[", "]", "<sep>", "</s>",
		"scale2", "scale4", "scale8", "d0", "dsmall", "dbig", "dneg")
	tokens = append(tokens, x86.Opcodes()...)
	var regs []string
	for _, fam := range x86.GPFamilies() {
		for _, size := range []int{x86.Size8, x86.Size16, x86.Size32, x86.Size64} {
			regs = append(regs, x86.Reg{Family: fam, Size: size}.String())
		}
	}
	for _, fam := range x86.VecFamilies() {
		for _, size := range []int{x86.Size128, x86.Size256} {
			regs = append(regs, x86.Reg{Family: fam, Size: size}.String())
		}
	}
	sort.Strings(regs)
	tokens = append(tokens, regs...)
	vocab := make(map[string]int, len(tokens))
	for _, tok := range tokens {
		if _, ok := vocab[tok]; !ok {
			vocab[tok] = len(vocab)
		}
	}
	return vocab
}

func dispBucket(d int64) string {
	switch {
	case d == 0:
		return "d0"
	case d < 0:
		return "dneg"
	case d <= 64:
		return "dsmall"
	default:
		return "dbig"
	}
}

// TokenizeInstruction canonicalizes one instruction into tokens (exported
// for tests and the dataset-exploration example).
func TokenizeInstruction(inst x86.Instruction) []string {
	toks := []string{inst.Opcode}
	for _, op := range inst.Operands {
		toks = append(toks, "<sep>")
		switch op.Kind {
		case x86.KindReg:
			toks = append(toks, op.Reg.String())
		case x86.KindImm:
			toks = append(toks, "<imm>")
		case x86.KindMem, x86.KindAddr:
			toks = append(toks, "[")
			if !op.Mem.Base.IsZero() {
				toks = append(toks, op.Mem.Base.String())
			}
			if !op.Mem.Index.IsZero() {
				toks = append(toks, op.Mem.Index.String())
				if op.Mem.Scale > 1 {
					toks = append(toks, fmt.Sprintf("scale%d", op.Mem.Scale))
				}
			}
			toks = append(toks, dispBucket(op.Mem.Disp), "]")
		}
	}
	toks = append(toks, "</s>")
	return toks
}

func (m *Model) tokenIDs(inst x86.Instruction) []int {
	toks := TokenizeInstruction(inst)
	ids := make([]int, len(toks))
	for i, tok := range toks {
		id, ok := m.vocab[tok]
		if !ok {
			id = m.vocab["<unk>"]
		}
		ids[i] = id
	}
	return ids
}

// forward runs the hierarchical network on one block.
func (m *Model) forward(tape *nn.Tape, b *x86.BasicBlock) nn.V {
	var instEmbeds []nn.V
	for _, inst := range b.Instructions {
		var seq []nn.V
		for _, id := range m.tokenIDs(inst) {
			seq = append(seq, tape.Lookup(m.emb, id))
		}
		instEmbeds = append(instEmbeds, m.instLSTM.Run(tape, seq))
	}
	blockEmbed := m.blockLSTM.Run(tape, instEmbeds)
	return tape.AddBias(tape.MatVec(m.out, blockEmbed), m.bias)
}

// Predict implements costmodel.Model. It is safe for concurrent use (the
// forward pass only reads the weights). Predictions are clamped to the
// minimum physical throughput of a 1-instruction block.
func (m *Model) Predict(b *x86.BasicBlock) float64 {
	if b == nil || b.Len() == 0 {
		return 0
	}
	tape := nn.NewTape()
	pred := m.forward(tape, b).Scalar()
	if pred < 0.25 {
		pred = 0.25
	}
	return pred
}

// TrainResult summarizes a training run.
type TrainResult struct {
	EpochLoss []float64 // mean normalized loss per epoch
	FinalMAPE float64   // MAPE on the training samples after the last epoch
}

// Train fits the model to the samples. Loss is a normalized squared error,
// (pred−y)²/(1+y)², which weighs relative error similarly across the wide
// dynamic range of block costs (0.25 to tens of cycles). Training is
// data-parallel over cfg.Workers goroutines with deterministic gradient
// merging; progress (if non-nil) is called after each epoch.
func (m *Model) Train(samples []Sample, progress func(epoch int, loss float64)) TrainResult {
	params := m.params()
	opt := nn.NewAdam(m.cfg.LR, params)
	rng := rand.New(rand.NewSource(m.cfg.Seed + 1000))
	res := TrainResult{}

	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		perm := rng.Perm(len(samples))
		epochLoss, batches := 0.0, 0
		for start := 0; start < len(perm); start += m.cfg.BatchSize {
			end := start + m.cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			batch := perm[start:end]
			loss := m.trainBatch(opt, params, samples, batch)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		res.EpochLoss = append(res.EpochLoss, epochLoss)
		if progress != nil {
			progress(epoch, epochLoss)
		}
	}
	res.FinalMAPE = m.MAPE(samples)
	return res
}

// trainBatch computes and applies one batch update, returning the mean
// normalized loss of the batch.
func (m *Model) trainBatch(opt *nn.Adam, params []*nn.Param, samples []Sample, batch []int) float64 {
	workers := m.cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	workerGrads := make([]map[*nn.Param][]float64, workers)
	workerLoss := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := make(map[*nn.Param][]float64)
			for k := w; k < len(batch); k += workers {
				s := samples[batch[k]]
				tape := nn.NewTape()
				pred := m.forward(tape, s.Block)
				scale := 1 / (1 + s.Throughput)
				loss := tape.MeanSquaredError(tape.ScaleConst(pred, scale), []float64{s.Throughput * scale})
				tape.Backward(loss)
				workerLoss[w] += loss.Scalar()
				for p, g := range tape.Grads {
					d, ok := acc[p]
					if !ok {
						d = make([]float64, len(g))
						acc[p] = d
					}
					for i := range g {
						d[i] += g[i]
					}
				}
			}
			workerGrads[w] = acc
		}(w)
	}
	wg.Wait()

	total := make(map[*nn.Param][]float64)
	nn.MergeGrads(total, workerGrads, params)
	nn.ScaleGrads(total, 1/float64(len(batch)))
	opt.Step(total)

	loss := 0.0
	for _, l := range workerLoss {
		loss += l
	}
	return loss / float64(len(batch))
}

// MAPE evaluates the model's mean absolute percentage error on samples.
func (m *Model) MAPE(samples []Sample) float64 {
	preds := make([]float64, len(samples))
	actuals := make([]float64, len(samples))
	var wg sync.WaitGroup
	workers := m.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(samples); i += workers {
				preds[i] = m.Predict(samples[i].Block)
				actuals[i] = samples[i].Throughput
			}
		}(w)
	}
	wg.Wait()
	return stats.MAPE(preds, actuals)
}

// VocabSize reports the tokenizer vocabulary size.
func (m *Model) VocabSize() int { return len(m.vocab) }
