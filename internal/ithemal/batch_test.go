package ithemal

import (
	"testing"

	"github.com/comet-explain/comet/internal/bhive"
	"github.com/comet-explain/comet/internal/x86"
)

func tinyModel(workers int) *Model {
	cfg := DefaultConfig(x86.Haswell)
	cfg.EmbedDim = 8
	cfg.Hidden = 12
	cfg.Workers = workers
	return New(cfg)
}

// TestPredictBatchBitIdentical is the batching contract: one padded
// lockstep forward must reproduce per-block Predict exactly, bit for bit,
// across blocks of different lengths (padding) and worker chunkings.
func TestPredictBatchBitIdentical(t *testing.T) {
	gen := bhive.Generate(bhive.Config{N: 40, MinInstrs: 1, MaxInstrs: 12, Seed: 11, SkipLabels: true})
	blocks := make([]*x86.BasicBlock, len(gen))
	for i, g := range gen {
		blocks[i] = g.Block
	}
	for _, workers := range []int{1, 3} {
		m := tinyModel(workers)
		batched := m.PredictBatch(blocks)
		if len(batched) != len(blocks) {
			t.Fatalf("workers=%d: got %d predictions for %d blocks", workers, len(batched), len(blocks))
		}
		for i, b := range blocks {
			if seq := m.Predict(b); batched[i] != seq {
				t.Errorf("workers=%d block %d: batched %v != sequential %v", workers, i, batched[i], seq)
			}
		}
	}
}

func TestPredictBatchEmptyAndNilBlocks(t *testing.T) {
	m := tinyModel(1)
	blocks := []*x86.BasicBlock{
		x86.MustParseBlock("add rax, rbx"),
		nil,
		{},
		x86.MustParseBlock("div rcx\nmov rdx, rax"),
	}
	out := m.PredictBatch(blocks)
	if out[1] != 0 || out[2] != 0 {
		t.Errorf("empty blocks must predict 0, got %v", out)
	}
	if out[0] != m.Predict(blocks[0]) || out[3] != m.Predict(blocks[3]) {
		t.Error("non-empty blocks mismatch sequential predictions")
	}
	if all := m.PredictBatch(nil); len(all) != 0 {
		t.Errorf("nil batch returned %v", all)
	}
}

func TestPredictBatchConcurrentUse(t *testing.T) {
	m := tinyModel(2)
	gen := bhive.Generate(bhive.Config{N: 10, Seed: 3, SkipLabels: true})
	blocks := make([]*x86.BasicBlock, len(gen))
	for i, g := range gen {
		blocks[i] = g.Block
	}
	want := m.PredictBatch(blocks)
	done := make(chan []float64, 4)
	for w := 0; w < 4; w++ {
		go func() { done <- m.PredictBatch(blocks) }()
	}
	for w := 0; w < 4; w++ {
		got := <-done
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("concurrent PredictBatch diverged at block %d", i)
			}
		}
	}
}
