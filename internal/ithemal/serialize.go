package ithemal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/comet-explain/comet/internal/x86"
)

// serialized is the on-disk JSON form of a trained model. The vocabulary
// is derived deterministically from the ISA tables, so only architecture,
// dimensions and weights need to be stored.
type serialized struct {
	Format   string               `json:"format"`
	Arch     string               `json:"arch"`
	EmbedDim int                  `json:"embed_dim"`
	Hidden   int                  `json:"hidden"`
	Params   map[string][]float64 `json:"params"`
}

const formatID = "comet-ithemal-v1"

// Save writes the model's weights as JSON.
func (m *Model) Save(w io.Writer) error {
	s := serialized{
		Format:   formatID,
		Arch:     m.cfg.Arch.String(),
		EmbedDim: m.cfg.EmbedDim,
		Hidden:   m.cfg.Hidden,
		Params:   map[string][]float64{},
	}
	for _, p := range m.params() {
		s.Params[p.Name] = p.W
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// Load reads a model saved with Save. The returned model predicts exactly
// as the saved one did.
func Load(r io.Reader) (*Model, error) {
	var s serialized
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("ithemal: decoding model: %w", err)
	}
	if s.Format != formatID {
		return nil, fmt.Errorf("ithemal: unknown model format %q", s.Format)
	}
	var arch x86.Arch
	switch s.Arch {
	case x86.Haswell.String():
		arch = x86.Haswell
	case x86.Skylake.String():
		arch = x86.Skylake
	default:
		return nil, fmt.Errorf("ithemal: unknown architecture %q", s.Arch)
	}
	cfg := DefaultConfig(arch)
	cfg.EmbedDim = s.EmbedDim
	cfg.Hidden = s.Hidden
	m := New(cfg)
	for _, p := range m.params() {
		w, ok := s.Params[p.Name]
		if !ok {
			return nil, fmt.Errorf("ithemal: saved model missing parameter %q", p.Name)
		}
		if len(w) != len(p.W) {
			return nil, fmt.Errorf("ithemal: parameter %q has %d weights, want %d (vocabulary drift?)",
				p.Name, len(w), len(p.W))
		}
		copy(p.W, w)
	}
	return m, nil
}

// LoadFile reads a model from a file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
