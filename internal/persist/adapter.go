package persist

import (
	"sync/atomic"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// ExplainerStore adapts a Store to core.ArtifactStore for one canonical
// model spec: the explainer consults it before computing and deposits
// every freshly computed explanation, so repeated CLI invocations and
// interrupted corpus runs reuse prior work across processes. Store
// failures degrade to recomputation — the adapter never surfaces them
// into an explanation.
type ExplainerStore struct {
	store Store
	spec  string
	hits  atomic.Uint64
	miss  atomic.Uint64
}

var _ core.ArtifactStore = (*ExplainerStore)(nil)

// NewExplainerStore binds a store to a canonical model spec string (the
// artifact keys' model identity — use comet.ResolvedModel's Spec, not a
// raw model name, or equal configurations of different models collide).
func NewExplainerStore(store Store, spec string) *ExplainerStore {
	return &ExplainerStore{store: store, spec: spec}
}

// Lookup implements core.ArtifactStore.
func (s *ExplainerStore) Lookup(cfg core.Config, b *x86.BasicBlock) (*core.Explanation, bool) {
	key := ExplanationKey(s.spec, wire.SnapshotConfig(cfg), b.String())
	rec, ok := s.store.Get(wire.RecordExplanation, key)
	if !ok || rec.Explanation == nil {
		s.miss.Add(1)
		return nil, false
	}
	expl, err := rec.Explanation.Core()
	if err != nil {
		s.miss.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return expl, true
}

// Store implements core.ArtifactStore.
func (s *ExplainerStore) Store(cfg core.Config, expl *core.Explanation) {
	snap := wire.SnapshotConfig(cfg)
	key := ExplanationKey(s.spec, snap, expl.Block.String())
	_ = s.store.Put(&wire.Record{
		V:           wire.RecordVersion,
		Kind:        wire.RecordExplanation,
		Key:         key,
		Spec:        s.spec,
		Config:      &snap,
		Explanation: wire.FromExplanation(expl),
	})
}

// Counters reports how many explainer lookups the store answered and how
// many fell through to computation.
func (s *ExplainerStore) Counters() (hits, misses uint64) {
	return s.hits.Load(), s.miss.Load()
}
