// Package persist is the durable explanation store: a crash-safe,
// disk-backed, content-addressed store for explanation artifacts and
// corpus-job checkpoints that outlives the process. COMET explanations
// are expensive (hundreds to thousands of cost-model queries per block)
// but deterministic given (canonical model spec, canonical block text,
// effective config, seed), which makes them ideal cache entries to
// persist across restarts, deploys, and crashes.
//
// # Layout
//
// A store is a directory of append-only segment files (00000001.seg,
// 00000002.seg, ...). Each segment holds a sequence of frames:
//
//	magic "CMT1" (4B) | payload length (4B LE) | CRC-32C of payload (4B LE) | payload
//
// The payload is one wire.Record in the same stable JSON the HTTP API
// speaks, so the on-disk schema is the versioned wire format. Records
// are never rewritten in place: a Put of an existing key appends a
// superseding record, and compaction later drops the shadowed frames.
//
// # Crash safety
//
// Every Put is a single write(2) of a complete frame, so a record is
// either fully in the OS page cache or not written at all; completed
// writes survive SIGKILL. Sync flushes to stable storage for power-loss
// durability — callers checkpoint at their own cadence. On open the log
// is scanned sequentially: a torn frame at the tail of the newest
// segment (a write cut short by a crash) is detected by its incomplete
// or checksum-failing frame, counted, and truncated away; a corrupt
// frame in the middle of a segment (bit rot, a flipped byte) is counted
// and skipped, resynchronizing on the next magic marker. Corruption is
// never a panic and never silently served.
//
// # Index, recency, and compaction
//
// An in-memory index (key → segment, offset) is rebuilt on open; reads
// are one ReadAt. Entries are tracked in recency order; Compact rewrites
// live records oldest-first into a fresh segment, dropping superseded
// frames and — when the store exceeds its size budget — the least
// recently used entries, then atomically replaces the old segments.
// Because compaction writes in recency order, a reopened store inherits
// the previous process's LRU order.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/comet-explain/comet/internal/wire"
)

// Frame layout constants. The framing itself (magic, length, CRC-32C)
// lives in internal/wire — the same envelope the network codec speaks —
// so the segment log only supplies the payload schema (JSON Records).
const (
	headerSize     = wire.FrameHeaderSize
	maxRecordBytes = wire.MaxFramePayload // sanity bound on a single frame's payload
)

var (
	errClosed   = errors.New("persist: store is closed")
	errReadOnly = errors.New("persist: store is read-only")
)

// Options sizes a store. Zero values get production-sane defaults.
type Options struct {
	// MaxBytes is the live-data budget enforced at compaction: when live
	// records exceed it, the least recently used entries are evicted
	// until the survivors fit (0 = 1 GiB; negative = unbounded).
	MaxBytes int64
	// SegmentBytes rotates the active segment once it grows past this
	// size (0 = 64 MiB).
	SegmentBytes int64
	// CompactFactor triggers automatic compaction from Put when total
	// on-disk bytes exceed CompactFactor × MaxBytes (0 = 2). Ignored
	// when MaxBytes is unbounded; Compact can always be called manually.
	CompactFactor float64
	// ReadOnly opens the store for inspection: torn tails are counted
	// but not truncated, and Put/Compact/Sync fail. comet-store uses
	// this so audits never mutate a live store.
	ReadOnly bool
}

func (o Options) withDefaults() Options {
	if o.MaxBytes == 0 {
		o.MaxBytes = 1 << 30
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CompactFactor <= 1 {
		o.CompactFactor = 2
	}
	return o
}

// Stats snapshots a store's size and effectiveness counters.
type Stats struct {
	// Entries is the number of live (indexed) records.
	Entries int `json:"entries"`
	// LiveBytes is the on-disk footprint of live records.
	LiveBytes int64 `json:"live_bytes"`
	// TotalBytes is the on-disk footprint of all segments, including
	// superseded frames awaiting compaction.
	TotalBytes int64 `json:"total_bytes"`
	// Segments is the number of segment files.
	Segments int `json:"segments"`

	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Puts   uint64 `json:"puts"`
	// CorruptRecords counts frames skipped for a bad checksum, a bad
	// length, or a torn tail — across every scan since open.
	CorruptRecords uint64 `json:"corrupt_records"`
	// Evictions counts entries dropped by compaction to honor MaxBytes.
	Evictions uint64 `json:"evictions"`
	// Compactions counts completed compaction passes.
	Compactions uint64 `json:"compactions"`
}

// Store is the durable-store interface the serving and CLI layers
// program against. Log is the segment-log implementation; tests may
// substitute in-memory fakes.
type Store interface {
	// Get returns the live record under (kind, key) and refreshes its
	// recency. A missing or unreadable record reports false.
	Get(kind, key string) (*wire.Record, bool)
	// Put appends a record, superseding any live record with the same
	// (kind, key). The frame is handed to the OS before Put returns
	// (SIGKILL-durable); call Sync for power-loss durability.
	Put(rec *wire.Record) error
	// Scan visits every live record from least to most recently used;
	// returning false stops the scan. The callback must not call back
	// into the store.
	Scan(fn func(rec *wire.Record) bool) error
	// Compact rewrites live records into a fresh segment, dropping
	// superseded frames and evicting LRU entries beyond the size budget.
	Compact() error
	// Sync flushes the active segment to stable storage.
	Sync() error
	// Stats snapshots the store counters.
	Stats() Stats
	// Close syncs and releases the store.
	Close() error
}

// entry locates one live record in the segment files.
type entry struct {
	key  string // index key: kind + "\x00" + key
	seg  int
	off  int64
	size int64 // full frame size including header
	prev *entry
	next *entry
}

// segment is one open log file.
type segment struct {
	seq  int
	path string
	f    *os.File
	size int64
}

// Log is the crash-safe segment-log Store implementation.
type Log struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	index  map[string]*entry
	head   *entry // most recently used
	tail   *entry // least recently used
	segs   map[int]*segment
	active *segment
	closed bool

	liveBytes  int64
	totalBytes int64
	stats      Stats
}

var _ Store = (*Log)(nil)

// Open opens (or creates) the store at dir, rebuilding the in-memory
// index by scanning every segment. Corrupt frames are counted and
// skipped; a torn tail on the newest segment is truncated away (unless
// ReadOnly) so subsequent appends start from the last intact frame.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	l := &Log{
		dir:   dir,
		opts:  opts,
		index: make(map[string]*entry),
		segs:  make(map[int]*segment),
	}
	seqs, err := segmentSeqs(dir)
	if err != nil {
		return nil, err
	}
	for i, seq := range seqs {
		last := i == len(seqs)-1
		if err := l.loadSegment(seq, last); err != nil {
			l.closeAll()
			return nil, err
		}
	}
	if len(seqs) == 0 && opts.ReadOnly {
		return l, nil // empty or missing dir: inspectable, trivially
	}
	if l.active == nil && !opts.ReadOnly {
		if err := l.openActive(1); err != nil {
			l.closeAll()
			return nil, err
		}
	}
	return l, nil
}

// segmentSeqs lists the segment sequence numbers in dir, ascending.
func segmentSeqs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: %w", err)
	}
	var seqs []int
	for _, de := range entries {
		name := de.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(name, ".seg"))
		if err != nil || seq <= 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%08d.seg", seq))
}

// loadSegment scans one segment into the index. For the newest segment a
// torn tail is truncated (read-write stores) so the file ends on a frame
// boundary and becomes the active segment.
func (l *Log) loadSegment(seq int, last bool) error {
	path := segPath(l.dir, seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	res := scanFrames(data, func(off int64, frameSize int64, rec *wire.Record) {
		l.indexRecord(rec.Kind, rec.Key, seq, off, frameSize)
	})
	l.stats.CorruptRecords += uint64(res.corrupt)
	size := int64(len(data))
	if res.goodEnd < size && last && !l.opts.ReadOnly {
		// Torn tail: a crash cut the final write short. Truncate back to
		// the last intact frame so the log appends cleanly from here.
		if err := os.Truncate(path, res.goodEnd); err != nil {
			return fmt.Errorf("persist: truncating torn tail of %s: %w", path, err)
		}
		size = res.goodEnd
	}
	flags := os.O_RDONLY
	if last && !l.opts.ReadOnly {
		flags = os.O_RDWR
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if flags == os.O_RDWR {
		if _, err := f.Seek(size, 0); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	s := &segment{seq: seq, path: path, f: f, size: size}
	l.segs[seq] = s
	if last && !l.opts.ReadOnly {
		l.active = s
	}
	l.totalBytes += size
	return nil
}

// openActive creates and activates a fresh segment.
func (l *Log) openActive(seq int) error {
	path := segPath(l.dir, seq)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	s := &segment{seq: seq, path: path, f: f}
	l.segs[seq] = s
	l.active = s
	return nil
}

// scanResult reports one segment scan.
type scanResult struct {
	records int
	corrupt int
	// goodEnd is the offset just past the last complete frame — the
	// truncation point when the bytes beyond it are a torn tail.
	goodEnd int64
}

// scanFrames walks a segment's frames, invoking cb for every record that
// passes the checksum and decodes. The framing pass (checksums, magic
// resynchronization, torn-tail detection) is wire.ScanFrames — shared
// with the network codec; this wrapper adds the payload schema: frames
// whose payload is not a decodable Record are counted as corrupt, and
// future envelope versions are left on disk unindexed.
func scanFrames(data []byte, cb func(off int64, frameSize int64, rec *wire.Record)) scanResult {
	var res scanResult
	frames := wire.ScanFrames(data, func(off, size int64, payload []byte) {
		var rec wire.Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Kind == "" || rec.Key == "" {
			res.corrupt++
			return
		}
		if rec.V > RecordVersionMax {
			// A future envelope version: not corruption, but not ours to
			// interpret either. Leave it on disk, don't index it.
			return
		}
		res.records++
		if cb != nil {
			cb(off, size, &rec)
		}
	})
	res.corrupt += frames.Corrupt
	res.goodEnd = frames.GoodEnd
	return res
}

// RecordVersionMax is the newest envelope version this build reads.
const RecordVersionMax = wire.RecordVersion

func indexKey(kind, key string) string { return kind + "\x00" + key }

// indexRecord installs (or supersedes) an index entry and marks it most
// recently used. Caller holds l.mu (or is single-threaded in Open).
func (l *Log) indexRecord(kind, key string, seg int, off, size int64) {
	ik := indexKey(kind, key)
	if old, ok := l.index[ik]; ok {
		l.liveBytes -= old.size
		l.unlink(old)
	}
	e := &entry{key: ik, seg: seg, off: off, size: size}
	l.index[ik] = e
	l.pushFront(e)
	l.liveBytes += size
}

// Intrusive recency list: head = most recently used.

func (l *Log) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *Log) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (l *Log) touch(e *entry) {
	if l.head == e {
		return
	}
	l.unlink(e)
	l.pushFront(e)
}

// Has reports whether a live record exists under (kind, key) without
// reading it — no disk I/O, no recency refresh, no hit/miss accounting.
// Progress pre-checks (comet -corpus -resume) use it to count stored
// work without paying a decode per block or skewing the LRU order.
func (l *Log) Has(kind, key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	_, ok := l.index[indexKey(kind, key)]
	return ok
}

// Get implements Store.
func (l *Log) Get(kind, key string) (*wire.Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, false
	}
	e, ok := l.index[indexKey(kind, key)]
	if !ok {
		l.stats.Misses++
		return nil, false
	}
	rec, err := l.readEntry(e)
	if err != nil {
		// The frame passed its checksum at open but is unreadable now
		// (I/O error, external tampering): drop it from the index rather
		// than serving garbage.
		l.stats.CorruptRecords++
		l.stats.Misses++
		l.liveBytes -= e.size
		l.unlink(e)
		delete(l.index, e.key)
		return nil, false
	}
	l.touch(e)
	l.stats.Hits++
	return rec, true
}

// readEntry reads and decodes one frame. Caller holds l.mu.
func (l *Log) readEntry(e *entry) (*wire.Record, error) {
	s, ok := l.segs[e.seg]
	if !ok {
		return nil, fmt.Errorf("persist: segment %d gone", e.seg)
	}
	buf := make([]byte, e.size)
	if _, err := s.f.ReadAt(buf, e.off); err != nil {
		return nil, err
	}
	payload, err := wire.VerifyFrame(buf)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var rec wire.Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Put implements Store.
func (l *Log) Put(rec *wire.Record) error {
	if rec == nil || rec.Kind == "" || rec.Key == "" {
		return errors.New("persist: record needs a kind and a key")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("persist: record of %d bytes exceeds the %d-byte frame bound", len(payload), maxRecordBytes)
	}
	frame, err := wire.AppendFrame(make([]byte, 0, headerSize+len(payload)), payload)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return errClosed
	case l.opts.ReadOnly:
		return errReadOnly
	}
	if l.active.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	// A single positional write of the complete frame: the record is
	// all-or-nothing in the OS page cache, so it survives SIGKILL; a
	// crash mid-write leaves a torn tail the next Open truncates. On a
	// failed or short write (ENOSPC, I/O error) the partial frame is
	// truncated away so the tracked size and the file stay aligned for
	// subsequent appends.
	if n, err := l.active.f.WriteAt(frame, l.active.size); err != nil {
		if n > 0 {
			_ = l.active.f.Truncate(l.active.size)
		}
		return fmt.Errorf("persist: %w", err)
	}
	off := l.active.size
	l.active.size += int64(len(frame))
	l.totalBytes += int64(len(frame))
	l.indexRecord(rec.Kind, rec.Key, l.active.seq, off, int64(len(frame)))
	l.stats.Puts++

	if l.opts.MaxBytes > 0 && float64(l.totalBytes) > l.opts.CompactFactor*float64(l.opts.MaxBytes) {
		return l.compactLocked()
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (l *Log) rotateLocked() error {
	if err := l.active.f.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return l.openActive(l.nextSeqLocked())
}

func (l *Log) nextSeqLocked() int {
	max := 0
	for seq := range l.segs {
		if seq > max {
			max = seq
		}
	}
	return max + 1
}

// Scan implements Store.
func (l *Log) Scan(fn func(rec *wire.Record) bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	for e := l.tail; e != nil; e = e.prev {
		rec, err := l.readEntry(e)
		if err != nil {
			l.stats.CorruptRecords++
			continue
		}
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// Compact implements Store.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return errClosed
	case l.opts.ReadOnly:
		return errReadOnly
	}
	return l.compactLocked()
}

// compactLocked rewrites live records into a fresh segment, oldest-first
// so a reopened store inherits this process's recency order, evicting
// LRU entries beyond the MaxBytes budget. The rewrite is crash-safe: the
// new segment is fully written and synced under a temporary name, then
// renamed into place before the old segments are removed. A crash
// between the rename and the removals leaves duplicate live records,
// which the next open resolves by scan order.
func (l *Log) compactLocked() error {
	// Select survivors newest-first until the budget is spent.
	var keep []*entry
	var kept int64
	evicted := 0
	for e := l.head; e != nil; e = e.next {
		if l.opts.MaxBytes > 0 && kept+e.size > l.opts.MaxBytes && len(keep) > 0 {
			evicted++
			continue
		}
		keep = append(keep, e)
		kept += e.size
	}

	newSeq := l.nextSeqLocked()
	tmpPath := filepath.Join(l.dir, "compact.tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	// Copy raw frames oldest-first (checksums carry over verbatim).
	type placed struct {
		e   *entry
		off int64
	}
	placements := make([]placed, 0, len(keep))
	var off int64
	for i := len(keep) - 1; i >= 0; i-- {
		e := keep[i]
		s, ok := l.segs[e.seg]
		if !ok {
			tmp.Close()
			return fmt.Errorf("persist: segment %d gone during compaction", e.seg)
		}
		buf := make([]byte, e.size)
		if _, err := s.f.ReadAt(buf, e.off); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
		placements = append(placements, placed{e: e, off: off})
		off += e.size
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	newPath := segPath(l.dir, newSeq)
	if err := os.Rename(tmpPath, newPath); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		tmp.Close()
		return err
	}

	// The compacted segment is durable; retire the old ones.
	for _, s := range l.segs {
		s.f.Close()
		os.Remove(s.path)
	}
	l.segs = map[int]*segment{newSeq: {seq: newSeq, path: newPath, f: tmp, size: off}}
	l.active = l.segs[newSeq]
	if _, err := tmp.Seek(off, 0); err != nil {
		return fmt.Errorf("persist: %w", err)
	}

	// Rebuild the index around the survivors; recency order is preserved.
	l.index = make(map[string]*entry, len(keep))
	l.head, l.tail = nil, nil
	for i := len(placements) - 1; i >= 0; i-- { // newest-first for pushFront order
		p := placements[i]
		e := &entry{key: p.e.key, seg: newSeq, off: p.off, size: p.e.size}
		l.index[e.key] = e
		l.pushBack(e)
	}
	l.liveBytes = off
	l.totalBytes = off
	l.stats.Evictions += uint64(evicted)
	l.stats.Compactions++
	return nil
}

// pushBack appends an entry at the LRU end (compaction rebuild walks
// newest-first, appending progressively older entries).
func (l *Log) pushBack(e *entry) {
	e.next = nil
	e.prev = l.tail
	if l.tail != nil {
		l.tail.next = e
	}
	l.tail = e
	if l.head == nil {
		l.head = e
	}
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Sync implements Store.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return errClosed
	case l.opts.ReadOnly:
		return errReadOnly
	}
	if err := l.active.f.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Stats implements Store.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.Entries = len(l.index)
	st.LiveBytes = l.liveBytes
	st.TotalBytes = l.totalBytes
	st.Segments = len(l.segs)
	return st
}

// Close implements Store.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	var err error
	if l.active != nil && !l.opts.ReadOnly {
		err = l.active.f.Sync()
	}
	l.closeAll()
	l.closed = true
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

func (l *Log) closeAll() {
	for _, s := range l.segs {
		s.f.Close()
	}
}
