package persist

import (
	"fmt"
	"os"
	"strings"

	"github.com/comet-explain/comet/internal/wire"
)

// Verification: a read-only integrity pass over a store directory, for
// comet-store verify and make verify-store. Unlike Open, VerifyDir never
// truncates torn tails or mutates anything — it only reports.

// SegmentReport is the verification outcome for one segment file.
type SegmentReport struct {
	Path    string `json:"path"`
	Bytes   int64  `json:"bytes"`
	Records int    `json:"records"`
	Corrupt int    `json:"corrupt"`
	// TornTail reports trailing bytes that do not form a complete frame
	// (the expected residue of a crash mid-write; Open truncates it).
	TornTail bool `json:"torn_tail,omitempty"`
}

// VerifyReport is the verification outcome for a store directory.
type VerifyReport struct {
	Segments []SegmentReport `json:"segments"`
	// Records counts frames that passed checksum and decode, across all
	// segments (superseded frames included).
	Records int `json:"records"`
	// LiveEntries counts distinct (kind, key) pairs after supersession.
	LiveEntries int `json:"live_entries"`
	// Corrupt counts skipped frames across all segments.
	Corrupt int `json:"corrupt"`
}

// Clean reports whether the store verified with no corrupt frames.
func (r VerifyReport) Clean() bool { return r.Corrupt == 0 }

// String renders the report for operators, one line per segment.
func (r VerifyReport) String() string {
	var sb strings.Builder
	for _, s := range r.Segments {
		fmt.Fprintf(&sb, "%s: %d bytes, %d records, %d corrupt", s.Path, s.Bytes, s.Records, s.Corrupt)
		if s.TornTail {
			sb.WriteString(" (torn tail)")
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "total: %d records (%d live), %d corrupt", r.Records, r.LiveEntries, r.Corrupt)
	return sb.String()
}

// VerifyDir scans every segment of the store at dir read-only, checking
// frame structure and checksums, and reports what it found. It never
// repairs, truncates, or reorders anything. A missing directory is an
// error, not a vacuously clean store — a typoed path must not pass a
// strict audit.
func VerifyDir(dir string) (VerifyReport, error) {
	var rep VerifyReport
	if _, err := os.Stat(dir); err != nil {
		return rep, fmt.Errorf("persist: %w", err)
	}
	seqs, err := segmentSeqs(dir)
	if err != nil {
		return rep, err
	}
	live := make(map[string]struct{})
	for _, seq := range seqs {
		path := segPath(dir, seq)
		data, err := os.ReadFile(path)
		if err != nil {
			return rep, fmt.Errorf("persist: %w", err)
		}
		res := scanFrames(data, func(off, size int64, rec *wire.Record) {
			live[indexKey(rec.Kind, rec.Key)] = struct{}{}
		})
		rep.Segments = append(rep.Segments, SegmentReport{
			Path:     path,
			Bytes:    int64(len(data)),
			Records:  res.records,
			Corrupt:  res.corrupt,
			TornTail: res.goodEnd < int64(len(data)),
		})
		rep.Records += res.records
		rep.Corrupt += res.corrupt
	}
	rep.LiveEntries = len(live)
	return rep, nil
}
