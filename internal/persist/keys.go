package persist

import (
	"crypto/sha256"
	"fmt"
	"io"

	"github.com/comet-explain/comet/internal/wire"
)

// Explanation artifacts are deterministic given (canonical model spec,
// canonical block text, effective config, seed) — the explainer is a
// pure function of those inputs — so their store keys are content
// addresses: a SHA-256 over exactly that identity. Two processes (or two
// machines, or two years) computing the same explanation agree on the
// key without coordination.

// ExplanationID returns the content address of an explanation artifact
// as an interned wire.ContentID — hashed once; compared, cached, and
// single-flighted as 32 fixed bytes. The on-disk store key is its Hex
// rendering (ExplanationKey), unchanged from before interning, so
// existing stores stay readable.
func ExplanationID(spec string, cfg wire.ConfigSnapshot, blockText string) wire.ContentID {
	h := sha256.New()
	fmt.Fprintf(h, "comet-explanation-v%d|%s|eps=%g|thr=%g|cov=%d|batch=%d|par=%d|seed=%d|",
		wire.RecordVersion, spec,
		cfg.Epsilon, cfg.PrecisionThreshold, cfg.CoverageSamples,
		cfg.BatchSize, cfg.Parallelism, cfg.Seed)
	io.WriteString(h, blockText)
	var id wire.ContentID
	h.Sum(id[:0])
	return id
}

// ExplanationKey returns the on-disk store key of an explanation
// artifact: the hex rendering of its ExplanationID.
func ExplanationKey(spec string, cfg wire.ConfigSnapshot, blockText string) string {
	return ExplanationID(spec, cfg, blockText).Hex()
}

// JobKey returns the store key of a corpus-job envelope.
func JobKey(id string) string { return id }

// JobResultKey returns the store key of one completed corpus-job block.
func JobResultKey(id string, index int) string {
	return fmt.Sprintf("%s/%d", id, index)
}
