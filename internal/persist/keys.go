package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"github.com/comet-explain/comet/internal/wire"
)

// Explanation artifacts are deterministic given (canonical model spec,
// canonical block text, effective config, seed) — the explainer is a
// pure function of those inputs — so their store keys are content
// addresses: a SHA-256 over exactly that identity. Two processes (or two
// machines, or two years) computing the same explanation agree on the
// key without coordination.

// ExplanationKey returns the content address of an explanation artifact.
// spec must be the canonical model spec string and blockText the block's
// canonical rendering (x86.BasicBlock.String); cfg must be the effective,
// normalized configuration the explanation ran (or would run) under.
func ExplanationKey(spec string, cfg wire.ConfigSnapshot, blockText string) string {
	h := sha256.New()
	fmt.Fprintf(h, "comet-explanation-v%d|%s|eps=%g|thr=%g|cov=%d|batch=%d|par=%d|seed=%d|",
		wire.RecordVersion, spec,
		cfg.Epsilon, cfg.PrecisionThreshold, cfg.CoverageSamples,
		cfg.BatchSize, cfg.Parallelism, cfg.Seed)
	io.WriteString(h, blockText)
	return hex.EncodeToString(h.Sum(nil))
}

// JobKey returns the store key of a corpus-job envelope.
func JobKey(id string) string { return id }

// JobResultKey returns the store key of one completed corpus-job block.
func JobResultKey(id string, index int) string {
	return fmt.Sprintf("%s/%d", id, index)
}
