package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/comet-explain/comet/internal/core"
	"github.com/comet-explain/comet/internal/wire"
)

// rec builds a minimal explanation record: key and a distinguishing
// prediction.
func rec(key string, pred float64) *wire.Record {
	return &wire.Record{
		V:    wire.RecordVersion,
		Kind: wire.RecordExplanation,
		Key:  key,
		Spec: "c@hsw",
		Explanation: &wire.Explanation{
			Block:      "add rcx, rax",
			Model:      "c",
			Prediction: pred,
		},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func mustPut(t *testing.T, l *Log, r *wire.Record) {
	t.Helper()
	if err := l.Put(r); err != nil {
		t.Fatalf("Put(%s): %v", r.Key, err)
	}
}

func wantGet(t *testing.T, l *Log, key string, pred float64) {
	t.Helper()
	got, ok := l.Get(wire.RecordExplanation, key)
	if !ok {
		t.Fatalf("Get(%s): missing", key)
	}
	if got.Explanation == nil || got.Explanation.Prediction != pred {
		t.Fatalf("Get(%s): prediction %+v, want %v", key, got.Explanation, pred)
	}
}

func wantMiss(t *testing.T, l *Log, key string) {
	t.Helper()
	if _, ok := l.Get(wire.RecordExplanation, key); ok {
		t.Fatalf("Get(%s): present, want miss", key)
	}
}

// soleSegment returns the path of the store's only segment file.
func soleSegment(t *testing.T, dir string) string {
	t.Helper()
	seqs, err := segmentSeqs(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", seqs, err)
	}
	return segPath(dir, seqs[0])
}

func TestPutGetSupersedeReopen(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	mustPut(t, l, rec("a", 1))
	mustPut(t, l, rec("b", 2))
	mustPut(t, l, rec("a", 3)) // supersedes
	wantGet(t, l, "a", 3)
	wantGet(t, l, "b", 2)
	wantMiss(t, l, "c")
	st := l.Stats()
	if st.Entries != 2 || st.Puts != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats %+v, want 2 entries / 3 puts / 2 hits / 1 miss", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	wantGet(t, l2, "a", 3)
	wantGet(t, l2, "b", 2)
	if st := l2.Stats(); st.Entries != 2 || st.CorruptRecords != 0 {
		t.Errorf("reopened stats %+v, want 2 clean entries", st)
	}
}

// TestTornTailRecovery is the crash-recovery acceptance criterion: a
// record truncated mid-byte (the residue of a SIGKILL or power loss
// during a write) is detected, counted, and truncated away; the store
// reopens clean and appends normally afterwards.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	mustPut(t, l, rec("a", 1))
	mustPut(t, l, rec("b", 2))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: cut the last record mid-payload.
	path := soleSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	if st := l2.Stats(); st.CorruptRecords != 1 {
		t.Errorf("corrupt counter = %d after torn tail, want 1", st.CorruptRecords)
	}
	wantGet(t, l2, "a", 1)
	wantMiss(t, l2, "b")

	// The torn bytes were truncated: appends land on a frame boundary
	// and the next open is clean.
	mustPut(t, l2, rec("c", 3))
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := mustOpen(t, dir, Options{})
	wantGet(t, l3, "a", 1)
	wantGet(t, l3, "c", 3)
	if st := l3.Stats(); st.CorruptRecords != 0 || st.Entries != 2 {
		t.Errorf("post-recovery stats %+v, want 2 clean entries", st)
	}
}

// TestChecksumFlipSkipsRecord is the other half of the crash-recovery
// criterion: a mid-file record whose checksum no longer matches (bit
// rot, tampering) is skipped and counted; its neighbors survive.
func TestChecksumFlipSkipsRecord(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	mustPut(t, l, rec("a", 1))
	off := l.Stats().TotalBytes // start of record b's frame
	mustPut(t, l, rec("b", 2))
	mustPut(t, l, rec("c", 3))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := soleSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off+8] ^= 0xFF // flip a byte of b's checksum field
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	if st := l2.Stats(); st.CorruptRecords != 1 || st.Entries != 2 {
		t.Errorf("stats %+v, want 1 corrupt record and 2 surviving entries", l2.Stats())
	}
	wantGet(t, l2, "a", 1)
	wantMiss(t, l2, "b")
	wantGet(t, l2, "c", 3)
}

// TestHeaderCorruptionResyncs: trashing a record's magic marker loses
// that record but the scanner resynchronizes on the next frame.
func TestHeaderCorruptionResyncs(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	mustPut(t, l, rec("a", 1))
	off := l.Stats().TotalBytes
	mustPut(t, l, rec("b", 2))
	mustPut(t, l, rec("c", 3))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	path := soleSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data[off:], []byte{0xDE, 0xAD, 0xBE, 0xEF}) // destroy b's magic
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{})
	wantGet(t, l2, "a", 1)
	wantMiss(t, l2, "b")
	wantGet(t, l2, "c", 3)
	if st := l2.Stats(); st.CorruptRecords == 0 {
		t.Error("header corruption not counted")
	}
}

func TestCompactionDropsSupersededAndEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{MaxBytes: -1})
	var frame int64
	for i := 1; i <= 5; i++ {
		before := l.Stats().TotalBytes
		mustPut(t, l, rec(fmt.Sprintf("k%d", i), float64(i)))
		frame = l.Stats().TotalBytes - before
	}
	mustPut(t, l, rec("k3", 33)) // supersede k3
	wantGet(t, l, "k1", 1)       // k1 is now most recently used

	// Budget for two records: keep the MRU two (k1, then k3's fresh
	// copy), evict the rest, drop the shadowed k3 frame.
	l.opts.MaxBytes = 2 * (frame + 8)
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Entries != 2 || st.Evictions != 3 || st.Compactions != 1 {
		t.Fatalf("stats %+v, want 2 entries / 3 evictions / 1 compaction", st)
	}
	if st.TotalBytes != st.LiveBytes {
		t.Errorf("compacted store has %d total vs %d live bytes, want equal", st.TotalBytes, st.LiveBytes)
	}
	wantGet(t, l, "k1", 1)
	wantGet(t, l, "k3", 33)
	wantMiss(t, l, "k2")
	wantMiss(t, l, "k4")
	wantMiss(t, l, "k5")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recency survives the restart: compaction wrote LRU→MRU order.
	l2 := mustOpen(t, dir, Options{})
	var order []string
	if err := l2.Scan(func(r *wire.Record) bool {
		order = append(order, r.Key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "k3" || order[1] != "k1" {
		t.Errorf("reopened LRU→MRU order %v, want [k3 k1]", order)
	}
}

func TestAutoCompactionBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	var frame int64
	{
		probe := mustOpen(t, t.TempDir(), Options{})
		mustPut(t, probe, rec("p", 1))
		frame = probe.Stats().TotalBytes
	}
	budget := 4 * frame
	l := mustOpen(t, dir, Options{MaxBytes: budget, CompactFactor: 2})
	for i := 0; i < 64; i++ {
		mustPut(t, l, rec(fmt.Sprintf("k%d", i), float64(i)))
	}
	st := l.Stats()
	if st.Compactions == 0 {
		t.Error("no automatic compaction despite exceeding the budget")
	}
	if st.TotalBytes > 3*budget {
		t.Errorf("disk usage %d not bounded (budget %d)", st.TotalBytes, budget)
	}
	// The most recent put always survives.
	wantGet(t, l, "k63", 63)
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 256, MaxBytes: -1})
	for i := 0; i < 10; i++ {
		mustPut(t, l, rec(fmt.Sprintf("k%d", i), float64(i)))
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("got %d segments, want rotation past 1", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		wantGet(t, l2, fmt.Sprintf("k%d", i), float64(i))
	}
}

func TestScanRecencyOrder(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	mustPut(t, l, rec("a", 1))
	mustPut(t, l, rec("b", 2))
	mustPut(t, l, rec("c", 3))
	wantGet(t, l, "a", 1) // refresh a to MRU
	var order []string
	if err := l.Scan(func(r *wire.Record) bool {
		order = append(order, r.Key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "a"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("scan order %v, want %v", order, want)
		}
	}
}

func TestReadOnlyOpenNeverMutates(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	mustPut(t, l, rec("a", 1))
	mustPut(t, l, rec("b", 2))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := soleSegment(t, dir)
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	tornSize := fi.Size() - 5

	ro := mustOpen(t, dir, Options{ReadOnly: true})
	wantGet(t, ro, "a", 1)
	if st := ro.Stats(); st.CorruptRecords != 1 {
		t.Errorf("read-only open counted %d corrupt, want 1", st.CorruptRecords)
	}
	if err := ro.Put(rec("c", 3)); err == nil {
		t.Error("Put succeeded on a read-only store")
	}
	if err := ro.Compact(); err == nil {
		t.Error("Compact succeeded on a read-only store")
	}
	fi2, _ := os.Stat(path)
	if fi2.Size() != tornSize {
		t.Errorf("read-only open changed the file size %d → %d", tornSize, fi2.Size())
	}
}

func TestVerifyDirReports(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	mustPut(t, l, rec("a", 1))
	off := l.Stats().TotalBytes
	mustPut(t, l, rec("b", 2))
	mustPut(t, l, rec("a", 3)) // supersede: 3 records, 2 live
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := VerifyDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Records != 3 || rep.LiveEntries != 2 {
		t.Errorf("clean store report %+v, want 3 records / 2 live / clean", rep)
	}

	// Flip a checksum byte and verify again — read-only, so the damage
	// is reported on every pass, never repaired.
	path := soleSegment(t, dir)
	data, _ := os.ReadFile(path)
	data[off+8] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		rep, err = VerifyDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Clean() || rep.Corrupt != 1 || rep.Records != 2 {
			t.Errorf("pass %d: corrupted store report %+v, want 2 records / 1 corrupt", pass, rep)
		}
	}
}

// TestExplainerStoreRoundTrip: the core.ArtifactStore adapter persists
// an explanation and serves it back equal, keyed by effective config —
// a different seed is a different artifact.
func TestExplainerStoreRoundTrip(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	es := NewExplainerStore(l, "c@hsw")

	w := &wire.Explanation{
		Block:      "add rcx, rax\nmov rdx, rcx",
		Model:      "c",
		Prediction: 1.25,
		Precision:  0.8,
		Coverage:   0.5,
		Certified:  true,
		Queries:    10,
	}
	expl, err := w.Core()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ApplyOptions(core.Config{Seed: 7, Parallelism: 1})
	es.Store(cfg, expl)

	got, ok := es.Lookup(cfg, expl.Block)
	if !ok {
		t.Fatal("stored explanation not found")
	}
	if got.Prediction != expl.Prediction || got.Precision != expl.Precision ||
		got.Certified != expl.Certified || got.Block.String() != expl.Block.String() {
		t.Errorf("round trip changed the explanation: %+v vs %+v", got, expl)
	}
	other := cfg
	other.Seed = 8
	if _, ok := es.Lookup(other, expl.Block); ok {
		t.Error("a different seed served the same artifact")
	}
	if hits, misses := es.Counters(); hits != 1 || misses != 1 {
		t.Errorf("counters hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestVerifyDirMissingIsAnError: a typoed path must not pass a strict
// audit as a vacuously clean store.
func TestVerifyDirMissingIsAnError(t *testing.T) {
	if _, err := VerifyDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("VerifyDir on a missing directory reported a clean store")
	}
}

// TestHasProbesWithoutAccounting: Has answers from the index alone —
// no hit/miss accounting, no recency refresh.
func TestHasProbesWithoutAccounting(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	mustPut(t, l, rec("a", 1))
	mustPut(t, l, rec("b", 2)) // b is MRU
	if !l.Has(wire.RecordExplanation, "a") || l.Has(wire.RecordExplanation, "zzz") {
		t.Fatal("Has answered wrong")
	}
	if st := l.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Has touched the hit/miss counters: %+v", st)
	}
	var order []string
	if err := l.Scan(func(r *wire.Record) bool { order = append(order, r.Key); return true }); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("Has changed recency order: %v", order)
	}
}
