// Package remote implements the HTTP cost-model client: a
// costmodel.BatchModel whose predictions come from a comet-serve
// instance's POST /v1/predict endpoint. Any running comet-serve is
// thereby a cost-model backend — an explainer on one machine can explain
// a model served on another, with the server's shared prediction cache
// absorbing repeated queries across every client.
//
// Dialing performs a discovery handshake (a predict request with no
// blocks), so the client knows the backend's canonical model name,
// microarchitecture, spec, and recommended ε before the first real
// query. Name returns the backend's model name, which makes a remote
// explanation byte-identical to a local one at the same seed.
//
// The Model interface has no error channel, so transport failures that
// survive the retry budget abort the in-flight explanation via
// costmodel.AbortQuery; the explainer surfaces them as ordinary errors.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/comet-explain/comet/internal/costmodel"
	"github.com/comet-explain/comet/internal/obs"
	"github.com/comet-explain/comet/internal/wire"
	"github.com/comet-explain/comet/internal/x86"
)

// Options configures Dial.
type Options struct {
	// Model is the spec the server resolves for every request ("" = the
	// server's default model).
	Model string
	// Arch is the target microarchitecture when Model has no explicit
	// target ("" = the server's default, hsw).
	Arch string
	// Client is the HTTP client to use (nil = a 5-minute-timeout client;
	// corpus-sized predict batches against a training neural model are
	// slow on first contact).
	Client *http.Client
	// Retries is how many times a failed batch is retried on transport
	// errors or 429/503 backpressure before aborting (negative = 0;
	// zero = default 2).
	Retries int
	// Context, when non-nil, bounds every request this model makes — the
	// handshake, each predict round trip, and the backoff sleeps between
	// retries. Canceling it aborts an in-flight batch immediately
	// instead of letting the retry loop run its budget out. (The Model
	// interface carries no per-call context, so the model's lifetime
	// context is the cancellation scope.)
	Context context.Context
	// ForceJSON disables the binary frame codec: every request is plain
	// JSON. By default the client speaks binary frames and downgrades to
	// JSON permanently the first time the server rejects one, so it
	// interoperates with servers from before the codec existed.
	ForceJSON bool
	// Log receives transport events (codec downgrades, exhausted retry
	// budgets) as structured records (nil = the process default logger).
	// Records are tagged component=remote.
	Log *slog.Logger
}

// Model is the remote cost model. It is safe for concurrent use and
// implements costmodel.BatchModel natively — one HTTP round trip per
// batch, not per block.
type Model struct {
	url      string
	client   *http.Client
	reqModel string
	reqArch  string
	retries  int
	ctx      context.Context
	log      *slog.Logger
	// binary tracks whether the server speaks the frame codec; it flips
	// off (permanently for this model) on the first rejection.
	binary atomic.Bool

	name    string
	arch    x86.Arch
	epsilon float64
	spec    string
}

var _ costmodel.BatchModel = (*Model)(nil)

// Dial connects to a comet-serve base URL ("http://host:8372") and
// performs the discovery handshake. The server resolves (and warms) the
// requested model during the handshake, so a successful Dial returns a
// ready-to-query model.
func Dial(baseURL string, o Options) (*Model, error) {
	baseURL = strings.TrimRight(strings.TrimSpace(baseURL), "/")
	if baseURL == "" {
		return nil, fmt.Errorf("remote: empty base URL")
	}
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	retries := o.Retries
	if retries == 0 {
		retries = 2
	}
	if retries < 0 {
		retries = 0
	}
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	m := &Model{
		url:      baseURL,
		client:   client,
		reqModel: o.Model,
		reqArch:  o.Arch,
		retries:  retries,
		ctx:      ctx,
		log:      obs.Component(o.Log, "remote"),
	}
	m.binary.Store(!o.ForceJSON)
	resp, err := m.post(nil, "")
	if err != nil {
		return nil, fmt.Errorf("remote: handshake with %s: %w", baseURL, err)
	}
	arch, err := wire.ParseArch(resp.Arch)
	if err != nil {
		return nil, fmt.Errorf("remote: handshake with %s: %w", baseURL, err)
	}
	m.name = resp.Model
	m.arch = arch
	m.epsilon = resp.Epsilon
	m.spec = resp.Spec
	return m, nil
}

// Name implements costmodel.Model, returning the backend's canonical
// model name (not "remote") so explanations are attributed — and
// byte-identical — to the model actually answering the queries.
func (m *Model) Name() string { return m.name }

// Arch implements costmodel.Model.
func (m *Model) Arch() x86.Arch { return m.arch }

// Epsilon returns the backend's recommended ε-ball radius.
func (m *Model) Epsilon() float64 { return m.epsilon }

// RemoteSpec returns the canonical spec the server resolved ("uica@hsw").
func (m *Model) RemoteSpec() string { return m.spec }

// URL returns the backend base URL.
func (m *Model) URL() string { return m.url }

// Predict implements costmodel.Model with a single-block batch.
func (m *Model) Predict(b *x86.BasicBlock) float64 {
	return m.PredictBatch([]*x86.BasicBlock{b})[0]
}

// PredictBatch implements costmodel.BatchModel: one POST /v1/predict
// round trip for the whole batch. A failure that survives the retry
// budget aborts the in-flight explanation (costmodel.AbortQuery).
func (m *Model) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	return m.predictBatch(blocks, "")
}

func (m *Model) predictBatch(blocks []*x86.BasicBlock, traceparent string) []float64 {
	srcs := make([]string, len(blocks))
	for i, b := range blocks {
		srcs[i] = b.String()
	}
	resp, err := m.post(srcs, traceparent)
	if err != nil {
		costmodel.AbortQuery(fmt.Errorf("remote model %s: %w", m.url, err))
	}
	if len(resp.Predictions) != len(blocks) {
		costmodel.AbortQuery(fmt.Errorf("remote model %s: %d predictions for %d blocks",
			m.url, len(resp.Predictions), len(blocks)))
	}
	return resp.Predictions
}

// WithTraceparent returns a view of the model that sends tp as the W3C
// traceparent header on every predict request, chaining the caller's
// trace into the backend server (which joins it and records its own
// spans under the same trace ID). The view shares this model's client,
// codec state, and lifetime context; an empty tp returns the model
// itself. The shared model is never mutated, so concurrent requests can
// each carry their own trace.
func (m *Model) WithTraceparent(tp string) costmodel.Model {
	if tp == "" {
		return m
	}
	return tracedModel{m: m, traceparent: tp}
}

// tracedModel is the per-request trace-propagating view of a Model.
type tracedModel struct {
	m           *Model
	traceparent string
}

var _ costmodel.BatchModel = tracedModel{}

func (t tracedModel) Name() string   { return t.m.name }
func (t tracedModel) Arch() x86.Arch { return t.m.arch }
func (t tracedModel) Predict(b *x86.BasicBlock) float64 {
	return t.PredictBatch([]*x86.BasicBlock{b})[0]
}
func (t tracedModel) PredictBatch(blocks []*x86.BasicBlock) []float64 {
	return t.m.predictBatch(blocks, t.traceparent)
}

// retryBackoff returns the sleep before retry attempt n (1-based):
// linear growth with up to 50% random jitter, so a fleet of clients
// retrying against one recovering server doesn't re-arrive in lockstep.
func retryBackoff(attempt int) time.Duration {
	base := time.Duration(attempt) * 100 * time.Millisecond
	return base + time.Duration(rand.Int63n(int64(base)/2+1))
}

// post sends one predict request, retrying transport errors and
// 429/503 backpressure with jittered linear backoff. The model's
// lifetime context cancels in-flight requests and interrupts backoff
// sleeps — a canceled caller never waits out the retry budget.
//
// The request rides the binary frame codec while the server accepts it;
// a 400/415 answer to a framed request downgrades this model to JSON
// permanently and retries immediately (a genuine bad request fails the
// same way on the JSON path, just one round trip later).
func (m *Model) post(blocks []string, traceparent string) (*wire.PredictResponse, error) {
	if blocks == nil {
		blocks = []string{} // handshake: an explicit empty batch
	}
	wreq := &wire.PredictRequest{Blocks: blocks, Model: m.reqModel, Arch: m.reqArch}
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= m.retries; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(retryBackoff(attempt))
			select {
			case <-timer.C:
			case <-m.ctx.Done():
				timer.Stop()
				if lastErr == nil {
					lastErr = m.ctx.Err()
				}
				return nil, fmt.Errorf("%w (canceled after %d attempt(s): %v)", lastErr, attempts, m.ctx.Err())
			}
		}
		attempts++
		binary := m.binary.Load()
		var body []byte
		var err error
		if binary {
			body, err = wire.EncodeBinary(wreq)
		} else {
			body, err = json.Marshal(wreq)
		}
		if err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(m.ctx, http.MethodPost, m.url+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if binary {
			req.Header.Set("Content-Type", wire.FrameContentType)
			req.Header.Set("Accept", wire.FrameContentType)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
		if traceparent != "" {
			req.Header.Set("Traceparent", traceparent)
		}
		resp, err := m.client.Do(req)
		if err != nil {
			lastErr = err
			if m.ctx.Err() != nil {
				// Mid-batch cancellation: stop immediately, don't burn the
				// remaining retries against a caller that has left.
				return nil, fmt.Errorf("%w (after %d attempt(s))", lastErr, attempts)
			}
			continue
		}
		status := resp.StatusCode
		out, retryable, err := decodePredict(resp)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if binary && (status == http.StatusBadRequest || status == http.StatusUnsupportedMediaType) {
			m.binary.Store(false)
			m.log.Warn("server rejected a binary predict; downgrading to JSON",
				"url", m.url, "status", status)
			attempt-- // downgrade retry, free of charge (happens at most once)
			continue
		}
		if !retryable {
			break
		}
	}
	m.log.Warn("predict failed", "url", m.url, "attempts", attempts, "error", lastErr)
	return nil, fmt.Errorf("%w (after %d attempt(s))", lastErr, attempts)
}

// decodePredict parses one predict response — framed or JSON, keyed on
// its Content-Type — reporting whether a failure is worth retrying
// (server backpressure) or final (bad request).
func decodePredict(resp *http.Response) (*wire.PredictResponse, bool, error) {
	defer resp.Body.Close()
	framed := strings.HasPrefix(resp.Header.Get("Content-Type"), wire.FrameContentType)
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		limited := io.LimitReader(resp.Body, 1<<16)
		if framed {
			if b, rerr := io.ReadAll(limited); rerr == nil {
				if msg, derr := wire.DecodeBinary(b); derr == nil {
					if werr, ok := msg.(*wire.Error); ok && werr.Error != "" {
						return nil, retryable, fmt.Errorf("server status %d: %s", resp.StatusCode, werr.Error)
					}
				}
			}
			return nil, retryable, fmt.Errorf("server status %d", resp.StatusCode)
		}
		var werr wire.Error
		if json.NewDecoder(limited).Decode(&werr) == nil && werr.Error != "" {
			return nil, retryable, fmt.Errorf("server status %d: %s", resp.StatusCode, werr.Error)
		}
		return nil, retryable, fmt.Errorf("server status %d", resp.StatusCode)
	}
	if framed {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, false, fmt.Errorf("reading predict response: %w", err)
		}
		msg, err := wire.DecodeBinary(b)
		if err != nil {
			return nil, false, fmt.Errorf("decoding predict frame: %w", err)
		}
		out, ok := msg.(*wire.PredictResponse)
		if !ok {
			return nil, false, fmt.Errorf("predict response frame carries %T", msg)
		}
		return out, false, nil
	}
	var out wire.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, false, fmt.Errorf("decoding predict response: %w", err)
	}
	return &out, false, nil
}
