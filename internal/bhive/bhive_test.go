package bhive

import (
	"math"
	"testing"

	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/x86"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{N: 20, Seed: 7, SkipLabels: true})
	b := Generate(Config{N: 20, Seed: 7, SkipLabels: true})
	for i := range a {
		if a[i].Block.String() != b[i].Block.String() {
			t.Fatalf("block %d differs across identical seeds", i)
		}
		if a[i].Category != b[i].Category || a[i].Source != b[i].Source {
			t.Fatalf("metadata %d differs across identical seeds", i)
		}
	}
	c := Generate(Config{N: 20, Seed: 8, SkipLabels: true})
	same := 0
	for i := range a {
		if a[i].Block.String() == c[i].Block.String() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateAllValid(t *testing.T) {
	for _, entry := range Generate(Config{N: 100, Seed: 3, SkipLabels: true}) {
		if err := entry.Block.Validate(); err != nil {
			t.Errorf("invalid block generated:\n%s\n%v", entry.Block, err)
		}
	}
}

func TestGenerateSizeBounds(t *testing.T) {
	for _, entry := range Generate(Config{N: 50, MinInstrs: 4, MaxInstrs: 10, Seed: 4, SkipLabels: true}) {
		if n := entry.Block.Len(); n < 4 || n > 10 {
			t.Errorf("block has %d instructions, want 4..10", n)
		}
	}
}

func TestCategoryFilter(t *testing.T) {
	for _, cat := range Categories() {
		cat := cat
		blocks := Generate(Config{N: 15, Seed: 5, Category: &cat, SkipLabels: true})
		for _, b := range blocks {
			if b.Category != cat {
				t.Errorf("requested %v, got %v", cat, b.Category)
			}
		}
	}
}

func TestSourceFilter(t *testing.T) {
	src := SourceOpenBLAS
	for _, b := range Generate(Config{N: 15, Seed: 6, Source: &src, SkipLabels: true}) {
		if b.Source != SourceOpenBLAS {
			t.Errorf("requested %v, got %v", src, b.Source)
		}
	}
}

func TestCategoryInstructionMix(t *testing.T) {
	countMemOps := func(b *x86.BasicBlock) (loads, stores int) {
		for _, inst := range b.Instructions {
			spec, _ := inst.Spec()
			l, s := x86.MemUops(spec, inst)
			loads += l
			stores += s
		}
		return
	}
	loadCat := Load
	blocks := Generate(Config{N: 30, Seed: 9, Category: &loadCat, SkipLabels: true})
	totalLoads := 0
	for _, b := range blocks {
		l, _ := countMemOps(b.Block)
		totalLoads += l
	}
	if totalLoads < 30 {
		t.Errorf("Load category should be load-heavy; %d loads in 30 blocks", totalLoads)
	}

	vecCat := Vector
	blocks = Generate(Config{N: 30, Seed: 10, Category: &vecCat, SkipLabels: true})
	for _, b := range blocks {
		for _, inst := range b.Block.Instructions {
			hasVecOperand := false
			for _, op := range inst.Operands {
				if op.Kind == x86.KindReg && op.Reg.IsVec() {
					hasVecOperand = true
				}
			}
			if !hasVecOperand {
				t.Fatalf("Vector-category block contains non-vector instruction %s", inst)
			}
		}
	}
}

func TestThroughputLabels(t *testing.T) {
	blocks := Generate(Config{N: 10, Seed: 11})
	for _, b := range blocks {
		for _, arch := range x86.Arches() {
			th, ok := b.Throughput[arch]
			if !ok {
				t.Fatalf("missing %v label", arch)
			}
			if math.IsNaN(th) || math.IsInf(th, 0) || th <= 0 {
				t.Errorf("bad throughput label %v for\n%s", th, b.Block)
			}
		}
	}
}

func TestBlocksHaveDependencies(t *testing.T) {
	// The small register pools must produce dependency-rich blocks; COMET's
	// dependency features are pointless otherwise.
	blocks := Generate(Config{N: 50, Seed: 12, SkipLabels: true})
	withDeps := 0
	for _, b := range blocks {
		g, err := deps.Build(b.Block, deps.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Edges) > 0 {
			withDeps++
		}
	}
	if withDeps < len(blocks)*3/4 {
		t.Errorf("only %d/%d blocks have any dependency", withDeps, len(blocks))
	}
}

func TestSourcesShapeDistribution(t *testing.T) {
	clang := SourceClang
	blas := SourceOpenBLAS
	countVec := func(blocks []Block) int {
		n := 0
		for _, b := range blocks {
			if b.Category == Vector || b.Category == ScalarVector {
				n++
			}
		}
		return n
	}
	c := Generate(Config{N: 100, Seed: 13, Source: &clang, SkipLabels: true})
	o := Generate(Config{N: 100, Seed: 13, Source: &blas, SkipLabels: true})
	if !(countVec(o) > countVec(c)) {
		t.Errorf("OpenBLAS partition should be more vector-heavy: clang=%d openblas=%d", countVec(c), countVec(o))
	}
}
