// Package bhive generates the reproduction's stand-in for the BHive
// benchmark suite (Chen et al. 2019): a deterministic synthetic population
// of x86 basic blocks organized by the same taxonomy the paper partitions
// on — six categories (Load, Store, Load/Store, Scalar, Vector,
// Scalar/Vector) and real-world-codebase-flavored sources (a Clang-like
// scalar/pointer mix and an OpenBLAS-like floating-point kernel mix) —
// each labeled with its steady-state throughput on the hwsim hardware
// stand-in for every supported microarchitecture.
//
// COMET and the cost models consume only (block, cost) pairs, so the
// substitution preserves everything the paper's experiments rely on: block
// diversity, dependency structure, and costs produced by a mechanism with
// real port/latency/bottleneck behaviour.
package bhive

import (
	"math/rand"

	"github.com/comet-explain/comet/internal/hwsim"
	"github.com/comet-explain/comet/internal/x86"
)

// Category is the BHive block taxonomy (Appendix H.1).
type Category int

// Block categories.
const (
	Load Category = iota
	Store
	LoadStore
	Scalar
	Vector
	ScalarVector
)

// String returns the BHive category name.
func (c Category) String() string {
	switch c {
	case Load:
		return "Load"
	case Store:
		return "Store"
	case LoadStore:
		return "Load/Store"
	case Scalar:
		return "Scalar"
	case Vector:
		return "Vector"
	case ScalarVector:
		return "Scalar/Vector"
	}
	return "category(?)"
}

// Categories lists all six categories in a fixed order.
func Categories() []Category {
	return []Category{Load, Store, LoadStore, Scalar, Vector, ScalarVector}
}

// Source labels which real-world-codebase flavor a block was drawn from.
type Source string

// Block sources (the two partitions studied in Figure 3).
const (
	SourceClang    Source = "clang"
	SourceOpenBLAS Source = "openblas"
)

// Sources lists the modeled source partitions.
func Sources() []Source { return []Source{SourceClang, SourceOpenBLAS} }

// Block is one dataset entry.
type Block struct {
	Block      *x86.BasicBlock
	Category   Category
	Source     Source
	Throughput map[x86.Arch]float64 // hwsim "hardware" labels per µarch
}

// Config controls generation. Zero values get sensible defaults.
type Config struct {
	N         int   // number of blocks (default 200)
	MinInstrs int   // default 4 (the paper's explanation test set uses 4..10)
	MaxInstrs int   // default 10
	Seed      int64 // generation seed (default 1)

	// Category / Source restrict generation to one partition (nil = mixed
	// population with BHive-like proportions).
	Category *Category
	Source   *Source

	// SkipLabels omits throughput labeling (for tests that only need
	// syntax).
	SkipLabels bool
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 200
	}
	if c.MinInstrs == 0 {
		c.MinInstrs = 4
	}
	if c.MaxInstrs == 0 {
		c.MaxInstrs = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Generate produces a deterministic dataset for the configuration.
func Generate(cfg Config) []Block {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sims := map[x86.Arch]*hwsim.Simulator{}
	for _, arch := range x86.Arches() {
		sims[arch] = hwsim.New(hwsim.HardwareConfig(arch))
	}

	blocks := make([]Block, 0, cfg.N)
	for len(blocks) < cfg.N {
		src := pickSource(rng, cfg.Source)
		cat := pickCategory(rng, src, cfg.Category)
		n := cfg.MinInstrs + rng.Intn(cfg.MaxInstrs-cfg.MinInstrs+1)
		b := generateBlock(rng, cat, src, n)
		if b.Validate() != nil {
			continue // defensive; generators only emit valid instructions
		}
		entry := Block{Block: b, Category: cat, Source: src}
		if !cfg.SkipLabels {
			entry.Throughput = map[x86.Arch]float64{}
			for arch, sim := range sims {
				entry.Throughput[arch] = sim.Throughput(b)
			}
		}
		blocks = append(blocks, entry)
	}
	return blocks
}

func pickSource(rng *rand.Rand, fixed *Source) Source {
	if fixed != nil {
		return *fixed
	}
	if rng.Float64() < 0.6 {
		return SourceClang
	}
	return SourceOpenBLAS
}

// pickCategory draws a category consistent with the source flavor: Clang
// code is mostly scalar and memory traffic, OpenBLAS mostly vector math.
func pickCategory(rng *rand.Rand, src Source, fixed *Category) Category {
	if fixed != nil {
		return *fixed
	}
	r := rng.Float64()
	if src == SourceClang {
		switch {
		case r < 0.30:
			return Scalar
		case r < 0.50:
			return Load
		case r < 0.65:
			return Store
		case r < 0.85:
			return LoadStore
		case r < 0.95:
			return ScalarVector
		default:
			return Vector
		}
	}
	switch {
	case r < 0.45:
		return Vector
	case r < 0.70:
		return ScalarVector
	case r < 0.85:
		return Load
	default:
		return LoadStore
	}
}

// ---- block synthesis ---------------------------------------------------------

// register pools kept small so register reuse creates natural dependency
// chains, as in compiled code.
var (
	gpPool  = []x86.RegFamily{x86.FamRAX, x86.FamRBX, x86.FamRCX, x86.FamRDX, x86.FamRSI, x86.FamRDI, x86.FamR8, x86.FamR9}
	vecPool = []x86.RegFamily{x86.FamXMM0, x86.FamXMM1, x86.FamXMM2, x86.FamXMM3, x86.FamXMM4, x86.FamXMM5, x86.FamXMM6, x86.FamXMM7}
)

type gen struct {
	rng *rand.Rand
	src Source
}

func (g *gen) gp(size int) x86.Operand {
	return x86.NewReg(x86.Reg{Family: gpPool[g.rng.Intn(len(gpPool))], Size: size})
}

func (g *gen) xmm() x86.Operand {
	return x86.NewReg(x86.Reg{Family: vecPool[g.rng.Intn(len(vecPool))], Size: x86.Size128})
}

func (g *gen) mem(size int) x86.Operand {
	m := x86.MemRef{
		Base: x86.Reg{Family: gpPool[g.rng.Intn(len(gpPool))], Size: x86.Size64},
		Disp: int64(g.rng.Intn(16)) * 8,
	}
	if g.rng.Float64() < 0.25 {
		m.Index = x86.Reg{Family: gpPool[g.rng.Intn(len(gpPool))], Size: x86.Size64}
		m.Scale = []int{1, 2, 4, 8}[g.rng.Intn(4)]
	}
	return x86.NewMem(m, size)
}

func (g *gen) intSize() int {
	if g.rng.Float64() < 0.6 {
		return x86.Size64
	}
	return x86.Size32
}

func (g *gen) scalarInst() x86.Instruction {
	size := g.intSize()
	switch r := g.rng.Float64(); {
	case r < 0.40:
		op := []string{"add", "sub", "and", "or", "xor"}[g.rng.Intn(5)]
		return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.gp(size), g.gp(size)}}
	case r < 0.55:
		op := []string{"add", "sub", "xor", "cmp"}[g.rng.Intn(4)]
		return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.gp(size), x86.NewImm(int64(g.rng.Intn(127)), x86.Size8)}}
	case r < 0.67:
		return x86.Instruction{Opcode: "mov", Operands: []x86.Operand{g.gp(size), g.gp(size)}}
	case r < 0.77:
		return x86.Instruction{Opcode: "imul", Operands: []x86.Operand{g.gp(size), g.gp(size)}}
	case r < 0.85:
		op := []string{"shl", "shr", "sar"}[g.rng.Intn(3)]
		return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.gp(size), x86.NewImm(int64(1+g.rng.Intn(7)), x86.Size8)}}
	case r < 0.93:
		m := x86.MemRef{Base: x86.Reg{Family: gpPool[g.rng.Intn(len(gpPool))], Size: x86.Size64}, Disp: int64(g.rng.Intn(32))}
		if g.rng.Float64() < 0.4 {
			m.Index = x86.Reg{Family: gpPool[g.rng.Intn(len(gpPool))], Size: x86.Size64}
			m.Scale = 1
		}
		return x86.Instruction{Opcode: "lea", Operands: []x86.Operand{g.gp(x86.Size64), x86.NewAddr(m)}}
	case r < 0.97:
		return x86.Instruction{Opcode: []string{"inc", "dec", "neg", "not"}[g.rng.Intn(4)], Operands: []x86.Operand{g.gp(size)}}
	default:
		return x86.Instruction{Opcode: "div", Operands: []x86.Operand{g.gp(g.intSize())}}
	}
}

func (g *gen) vectorInst() x86.Instruction {
	avx := g.src == SourceOpenBLAS && g.rng.Float64() < 0.6
	if avx {
		switch r := g.rng.Float64(); {
		case r < 0.35:
			op := []string{"vmulss", "vmulsd", "vaddss", "vaddsd", "vsubss"}[g.rng.Intn(5)]
			return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.xmm(), g.xmm(), g.xmm()}}
		case r < 0.55:
			op := []string{"vaddps", "vmulps", "vsubps"}[g.rng.Intn(3)]
			return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.xmm(), g.xmm(), g.xmm()}}
		case r < 0.70:
			op := []string{"vxorps", "vandps", "vorps", "vpxor", "vpand"}[g.rng.Intn(5)]
			return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.xmm(), g.xmm(), g.xmm()}}
		case r < 0.80:
			return x86.Instruction{Opcode: "vdivss", Operands: []x86.Operand{g.xmm(), g.xmm(), g.xmm()}}
		default:
			return x86.Instruction{Opcode: []string{"vmovaps", "vmovups"}[g.rng.Intn(2)], Operands: []x86.Operand{g.xmm(), g.xmm()}}
		}
	}
	switch r := g.rng.Float64(); {
	case r < 0.35:
		op := []string{"mulss", "mulsd", "addss", "addsd", "subss"}[g.rng.Intn(5)]
		return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.xmm(), g.xmm()}}
	case r < 0.55:
		op := []string{"addps", "mulps", "subps", "paddd", "psubd"}[g.rng.Intn(5)]
		return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.xmm(), g.xmm()}}
	case r < 0.70:
		op := []string{"xorps", "andps", "orps", "pxor", "pand"}[g.rng.Intn(5)]
		return x86.Instruction{Opcode: op, Operands: []x86.Operand{g.xmm(), g.xmm()}}
	case r < 0.80:
		return x86.Instruction{Opcode: []string{"divss", "divsd"}[g.rng.Intn(2)], Operands: []x86.Operand{g.xmm(), g.xmm()}}
	case r < 0.90:
		return x86.Instruction{Opcode: []string{"movaps", "movups", "movss"}[g.rng.Intn(3)], Operands: []x86.Operand{g.xmm(), g.xmm()}}
	default:
		return x86.Instruction{Opcode: "ucomiss", Operands: []x86.Operand{g.xmm(), g.xmm()}}
	}
}

func (g *gen) loadInst() x86.Instruction {
	size := g.intSize()
	if g.rng.Float64() < 0.2 {
		return x86.Instruction{Opcode: "movss", Operands: []x86.Operand{g.xmm(), g.mem(x86.Size32)}}
	}
	return x86.Instruction{Opcode: "mov", Operands: []x86.Operand{g.gp(size), g.mem(size)}}
}

func (g *gen) storeInst() x86.Instruction {
	size := g.intSize()
	if g.rng.Float64() < 0.25 {
		return x86.Instruction{Opcode: "mov", Operands: []x86.Operand{g.mem(size), x86.NewImm(int64(g.rng.Intn(100)), x86.Size8)}}
	}
	return x86.Instruction{Opcode: "mov", Operands: []x86.Operand{g.mem(size), g.gp(size)}}
}

// generateBlock synthesizes one block of n instructions in the category.
func generateBlock(rng *rand.Rand, cat Category, src Source, n int) *x86.BasicBlock {
	g := &gen{rng: rng, src: src}
	insts := make([]x86.Instruction, 0, n)
	for len(insts) < n {
		var inst x86.Instruction
		switch cat {
		case Load:
			if rng.Float64() < 0.45 {
				inst = g.loadInst()
			} else {
				inst = g.scalarInst()
			}
		case Store:
			if rng.Float64() < 0.45 {
				inst = g.storeInst()
			} else {
				inst = g.scalarInst()
			}
		case LoadStore:
			switch r := rng.Float64(); {
			case r < 0.30:
				inst = g.loadInst()
			case r < 0.55:
				inst = g.storeInst()
			default:
				inst = g.scalarInst()
			}
		case Scalar:
			inst = g.scalarInst()
		case Vector:
			inst = g.vectorInst()
		case ScalarVector:
			if rng.Float64() < 0.5 {
				inst = g.vectorInst()
			} else {
				inst = g.scalarInst()
			}
		}
		if inst.Validate() != nil {
			continue
		}
		insts = append(insts, inst)
	}
	return x86.NewBlock(insts...)
}
