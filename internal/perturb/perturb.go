// Package perturb implements Γ, COMET's stochastic basic-block perturbation
// algorithm (Section 5.2 and Algorithm 1 of the paper). Given a block β and
// a set of features F ⊆ ˆP to preserve, Sample draws a perturbed block
// β′ ∼ D_F in which:
//
//   - every vertex (instruction) outside F is independently retained with
//     probability pI,ret, and otherwise deleted (with probability p_del,
//     when the instruction count η is not preserved) or has its opcode
//     replaced by a uniformly random ISA-valid alternative;
//   - every dependency edge outside F is independently retained with
//     probability pD,ret (plus a small explicit-retention probability that
//     locks the dependency for the draw), and otherwise broken by renaming
//     the operands that carry it to registers of the same type and size;
//   - everything in F — instruction opcodes, the operands carrying
//     preserved dependencies, and η when requested — is left intact.
//
// As Appendix D describes, the effective perturbation probabilities are
// block-specific: opcodes with no valid replacement (lea) silently retain,
// and dependencies carried only by implicit operands (div's rax/rdx)
// cannot be broken by operand renaming.
package perturb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/comet-explain/comet/internal/deps"
	"github.com/comet-explain/comet/internal/features"
	"github.com/comet-explain/comet/internal/x86"
)

// Scheme selects how instruction (vertex) replacement perturbs operands.
type Scheme int

const (
	// OpcodeOnly replaces just the opcode, the paper's default (§E.4 finds
	// it the more accurate scheme).
	OpcodeOnly Scheme = iota
	// WholeInstruction additionally renames the replaced instruction's
	// register operands (same type and size), the §E.4 ablation.
	WholeInstruction
)

// Config holds Γ's hyperparameters; zero value is not usable, start from
// DefaultConfig.
type Config struct {
	PInstRetain        float64 // pI,ret: retain a non-preserved instruction
	PDepRetain         float64 // pD,ret: retain a non-preserved dependency
	PDelete            float64 // p_del: delete (vs replace) a perturbed instruction
	PExplicitDepRetain float64 // lock a non-preserved dependency for the draw
	Scheme             Scheme
	DepOptions         deps.Options
}

// DefaultConfig returns the paper's experimental settings (§6, App. E):
// retention probabilities 0.5, p_del = 0.33, explicit dependency retention
// 0.1, opcode-only replacement.
func DefaultConfig() Config {
	return Config{
		PInstRetain:        0.5,
		PDepRetain:         0.5,
		PDelete:            0.33,
		PExplicitDepRetain: 0.1,
		Scheme:             OpcodeOnly,
	}
}

// Result is one perturbed block together with the survivor index mapping.
type Result struct {
	Block *x86.BasicBlock
	// Mapping[i] is the position of original instruction i in Block, or −1
	// if it was deleted.
	Mapping []int
}

// Graph builds the dependency graph of the perturbed block (convenience
// for feature-containment checks).
func (r Result) Graph(opts deps.Options) (*deps.Graph, error) {
	return deps.Build(r.Block, opts)
}

// Perturber samples perturbations of one fixed basic block.
type Perturber struct {
	cfg   Config
	block *x86.BasicBlock
	graph *deps.Graph
	feats features.Set
	// used is the set of register families the original (immutable) block
	// touches, computed once at New: freshFamily consults it on every
	// rename, and recomputing it per draw dominated Sample's allocations.
	used map[x86.RegFamily]bool
}

// New prepares a perturber for the block.
func New(b *x86.BasicBlock, cfg Config) (*Perturber, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	g, err := deps.Build(b, cfg.DepOptions)
	if err != nil {
		return nil, err
	}
	p := &Perturber{cfg: cfg, block: b, graph: g, feats: features.Extract(g)}
	p.used = p.computeUsedFamilies()
	return p, nil
}

// scratch holds Sample's per-draw working state. Draws are hot — a single
// explanation takes thousands of them — so the maps and slices are pooled
// and reset instead of reallocated per call. Sample runs concurrently on
// one Perturber (precision sampling is parallel), hence a pool rather
// than a field.
type scratch struct {
	opcodeLocked  []bool
	deleted       []bool
	preservedDeps map[string]bool // Key of preserved dep features
	lockedSlots   map[slot]bool
	toBreak       []deps.Edge
	slots         []slot // carrierSlots result buffer
}

var scratchPool = sync.Pool{
	New: func() any {
		return &scratch{
			preservedDeps: make(map[string]bool, 8),
			lockedSlots:   make(map[slot]bool, 16),
		}
	},
}

// getScratch borrows a cleared scratch sized for n instructions.
func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.opcodeLocked) < n {
		sc.opcodeLocked = make([]bool, n)
	}
	if cap(sc.deleted) < n {
		sc.deleted = make([]bool, n)
	}
	sc.opcodeLocked = sc.opcodeLocked[:n]
	sc.deleted = sc.deleted[:n]
	for i := 0; i < n; i++ {
		sc.opcodeLocked[i] = false
		sc.deleted[i] = false
	}
	clear(sc.preservedDeps)
	clear(sc.lockedSlots)
	sc.toBreak = sc.toBreak[:0]
	return sc
}

// Block returns the original block.
func (p *Perturber) Block() *x86.BasicBlock { return p.block }

// Graph returns the original block's dependency graph.
func (p *Perturber) Graph() *deps.Graph { return p.graph }

// Features returns ˆP of the original block.
func (p *Perturber) Features() features.Set { return p.feats }

// slotPart locates a register inside an operand.
type slotPart int

const (
	partReg slotPart = iota
	partBase
	partIndex
	partMemWhole // the memory operand as an addressable location (for disp changes)
)

// slot addresses one renameable register (or memory expression) position.
type slot struct {
	inst int
	op   int
	part slotPart
}

// Sample draws one perturbation retaining the features in preserve.
// The rng must not be shared across goroutines.
func (p *Perturber) Sample(rng *rand.Rand, preserve features.Set) Result {
	insts := make([]x86.Instruction, p.block.Len())
	for i, inst := range p.block.Instructions {
		insts[i] = inst.Clone()
	}

	sc := getScratch(len(insts))
	defer scratchPool.Put(sc)
	preserveEta := false
	opcodeLocked := sc.opcodeLocked
	preservedDeps := sc.preservedDeps
	for _, f := range preserve {
		switch f.Kind {
		case features.KindCount:
			preserveEta = true
		case features.KindInstr:
			if f.Index < len(insts) {
				opcodeLocked[f.Index] = true
			}
		case features.KindDep:
			preservedDeps[f.Key()] = true
			// Γ preserves the opcodes of the instructions at the ends of
			// every preserved dependency (Section 5.2).
			if f.Src < len(insts) {
				opcodeLocked[f.Src] = true
			}
			if f.Dst < len(insts) {
				opcodeLocked[f.Dst] = true
			}
		}
	}

	// Decide, per non-preserved dependency edge, whether it is explicitly
	// retained (locked), passively retained, or slated for breaking. Edges
	// that carry a preserved feature are always locked.
	lockedSlots := sc.lockedSlots
	for _, e := range p.graph.Edges {
		key := features.Feature{Kind: features.KindDep, Src: e.Src, Dst: e.Dst, Hazard: e.Hazard}.Key()
		if preservedDeps[key] {
			p.lockEdgeSlots(sc, e, lockedSlots)
			continue
		}
		r := rng.Float64()
		switch {
		case r < p.cfg.PExplicitDepRetain:
			p.lockEdgeSlots(sc, e, lockedSlots)
		case r < p.cfg.PExplicitDepRetain+(1-p.cfg.PExplicitDepRetain)*p.cfg.PDepRetain:
			// passively retained this draw
		default:
			sc.toBreak = append(sc.toBreak, e)
		}
	}

	// Vertex perturbation: delete or replace opcodes.
	deleted := sc.deleted
	remaining := len(insts)
	for i := range insts {
		if opcodeLocked[i] {
			continue
		}
		if rng.Float64() < p.cfg.PInstRetain {
			continue
		}
		canDelete := !preserveEta && remaining > 1
		if canDelete && rng.Float64() < p.cfg.PDelete {
			deleted[i] = true
			remaining--
			continue
		}
		p.replaceOpcode(rng, insts, i, lockedSlots)
	}

	// Edge perturbation: break dependencies by renaming carrier operands.
	for _, e := range sc.toBreak {
		if deleted[e.Src] || deleted[e.Dst] {
			continue // the edge died with its endpoint
		}
		p.breakEdge(sc, rng, insts, e, lockedSlots)
	}

	// Assemble the surviving instructions and the index mapping.
	var out []x86.Instruction
	mapping := make([]int, len(insts))
	for i := range insts {
		if deleted[i] {
			mapping[i] = -1
			continue
		}
		mapping[i] = len(out)
		out = append(out, insts[i])
	}
	return Result{Block: x86.NewBlock(out...), Mapping: mapping}
}

// replaceOpcode swaps instruction i's opcode for a random valid alternative
// (retaining when none exists, e.g. lea). Under the WholeInstruction scheme
// it additionally renames the instruction's unlocked register operands.
func (p *Perturber) replaceOpcode(rng *rand.Rand, insts []x86.Instruction, i int, locked map[slot]bool) {
	cands := x86.ReplacementCandidates(insts[i])
	if len(cands) > 0 {
		insts[i].Opcode = cands[rng.Intn(len(cands))]
	}
	if p.cfg.Scheme != WholeInstruction {
		return
	}
	// Whole-instruction scheme: also rename register operands.
	for op := range insts[i].Operands {
		o := insts[i].Operands[op]
		if o.Kind != x86.KindReg || locked[slot{i, op, partReg}] {
			continue
		}
		old := insts[i].Operands[op].Reg
		insts[i].Operands[op].Reg = p.randomRegLike(rng, o.Reg)
		if insts[i].Validate() != nil {
			insts[i].Operands[op].Reg = old // e.g. shift counts must stay cl
		}
	}
}

// lockEdgeSlots marks every operand slot carrying edge e as unmodifiable.
// Locking a memory location also locks its base and index registers:
// renaming those would change the address and silently break the
// dependency.
func (p *Perturber) lockEdgeSlots(sc *scratch, e deps.Edge, locked map[slot]bool) {
	lock := func(s slot) {
		locked[s] = true
		if s.part == partMemWhole {
			locked[slot{s.inst, s.op, partBase}] = true
			locked[slot{s.inst, s.op, partIndex}] = true
		}
	}
	for _, s := range p.carrierSlots(sc, e, e.Src) {
		lock(s)
	}
	for _, s := range p.carrierSlots(sc, e, e.Dst) {
		lock(s)
	}
}

// carrierSlots returns the operand slots of instruction idx through which
// edge e is carried (write side for the earlier instruction of RAW/WAW,
// read side for the later instruction of RAW, and so on). Implicit
// register accesses have no slot and thus cannot be renamed. The result
// is appended into sc's slot buffer and is valid until the next
// carrierSlots call on the same scratch.
func (p *Perturber) carrierSlots(sc *scratch, e deps.Edge, idx int) []slot {
	inst := p.block.Instructions[idx]
	spec, ok := inst.Spec()
	if !ok {
		return nil
	}
	form := spec.MatchForm(inst.Operands)
	if form == nil {
		return nil
	}
	wantWrite := false
	switch e.Hazard {
	case deps.RAW:
		wantWrite = idx == e.Src
	case deps.WAR:
		wantWrite = idx == e.Dst
	case deps.WAW:
		wantWrite = true
	}

	slots := sc.slots[:0]
	switch e.Loc.Kind {
	case deps.LocReg:
		fam := e.Loc.Fam
		for i, o := range inst.Operands {
			acc := form.Ops[i].Access
			switch o.Kind {
			case x86.KindReg:
				if o.Reg.Family != fam {
					continue
				}
				if (wantWrite && acc&x86.AccW != 0) || (!wantWrite && acc&x86.AccR != 0) {
					slots = append(slots, slot{idx, i, partReg})
				}
			case x86.KindMem, x86.KindAddr:
				// Address-component registers are always reads.
				if wantWrite {
					continue
				}
				if o.Mem.Base.Family == fam {
					slots = append(slots, slot{idx, i, partBase})
				}
				if o.Mem.Index.Family == fam {
					slots = append(slots, slot{idx, i, partIndex})
				}
			}
		}
	case deps.LocMem:
		for i, o := range inst.Operands {
			if o.Kind == x86.KindMem && o.Mem.LocKey() == e.Loc.Mem {
				slots = append(slots, slot{idx, i, partMemWhole})
			}
		}
	case deps.LocStack, deps.LocFlags:
		// Carried implicitly; not renameable.
	}
	sc.slots = slots // keep the (possibly grown) buffer for the next call
	return slots
}

// breakEdge attempts to delete dependency e by renaming its carrier
// operands on one side. Preference goes to the destination instruction;
// if all carrier slots on both sides are locked or implicit, the
// dependency is retained (the block-specific probability shift of App. D).
func (p *Perturber) breakEdge(sc *scratch, rng *rand.Rand, insts []x86.Instruction, e deps.Edge, locked map[slot]bool) {
	sides := [2]int{e.Dst, e.Src}
	if rng.Intn(2) == 0 {
		sides = [2]int{e.Src, e.Dst}
	}
	for _, side := range sides {
		slots := p.carrierSlots(sc, e, side)
		if len(slots) == 0 {
			continue
		}
		anyLocked := false
		for _, s := range slots {
			if locked[s] {
				anyLocked = true
				break
			}
		}
		if anyLocked {
			continue
		}
		if p.renameSlots(rng, insts, slots, e.Loc) {
			// Renamed slots must not be re-renamed by later breaks, or a
			// subsequent rename could recreate a broken dependency.
			for _, s := range slots {
				locked[s] = true
			}
			return
		}
	}
}

// renameSlots rewrites all given slots (which belong to one instruction and
// one location) to a fresh register family or displaced address, keeping
// the instruction valid. Reports whether the rename was applied.
func (p *Perturber) renameSlots(rng *rand.Rand, insts []x86.Instruction, slots []slot, loc deps.Loc) bool {
	idx := slots[0].inst
	saved := insts[idx].Clone()

	switch loc.Kind {
	case deps.LocReg:
		var oldReg x86.Reg
		switch slots[0].part {
		case partReg:
			oldReg = insts[idx].Operands[slots[0].op].Reg
		case partBase:
			oldReg = insts[idx].Operands[slots[0].op].Mem.Base
		case partIndex:
			oldReg = insts[idx].Operands[slots[0].op].Mem.Index
		}
		fresh := p.freshFamily(rng, oldReg)
		if fresh == x86.FamNone {
			return false
		}
		for _, s := range slots {
			op := &insts[idx].Operands[s.op]
			switch s.part {
			case partReg:
				op.Reg.Family = fresh
			case partBase:
				op.Mem.Base.Family = fresh
			case partIndex:
				op.Mem.Index.Family = fresh
			}
		}
	case deps.LocMem:
		// Slide the address by a random cache-line multiple; same base and
		// index registers, different location key.
		delta := int64(1+rng.Intn(8)) * 64
		if rng.Intn(2) == 0 {
			delta = -delta
		}
		for _, s := range slots {
			insts[idx].Operands[s.op].Mem.Disp += delta
		}
	default:
		return false
	}

	if insts[idx].Validate() != nil {
		insts[idx] = saved // e.g. renaming a RequireReg operand
		return false
	}
	return true
}

// freshFamily picks a register family of the same bank as old that no
// instruction of the original block uses, guaranteeing the dependency is
// broken and no new one is created. Falls back to any family other than
// old's when every family is in use. RSP is never chosen.
func (p *Perturber) freshFamily(rng *rand.Rand, old x86.Reg) x86.RegFamily {
	var pool []x86.RegFamily
	if old.IsGP() {
		pool = x86.GPFamilies()
	} else if old.IsVec() {
		pool = x86.VecFamilies()
	} else {
		return x86.FamNone
	}
	used := p.used
	var unused, others []x86.RegFamily
	for _, f := range pool {
		if f == x86.FamRSP || f == old.Family {
			continue
		}
		if used[f] {
			others = append(others, f)
		} else {
			unused = append(unused, f)
		}
	}
	if len(unused) > 0 {
		return unused[rng.Intn(len(unused))]
	}
	if len(others) > 0 {
		return others[rng.Intn(len(others))]
	}
	return x86.FamNone
}

// randomRegLike returns a random register with old's bank and width
// (for the WholeInstruction ablation scheme).
func (p *Perturber) randomRegLike(rng *rand.Rand, old x86.Reg) x86.Reg {
	var pool []x86.RegFamily
	if old.IsGP() {
		pool = x86.GPFamilies()
	} else {
		pool = x86.VecFamilies()
	}
	for {
		f := pool[rng.Intn(len(pool))]
		if f != x86.FamRSP {
			return x86.Reg{Family: f, Size: old.Size}
		}
	}
}

// computeUsedFamilies walks the original block once at New; the result is
// immutable for the Perturber's lifetime (Sample never mutates the
// original block, only clones).
func (p *Perturber) computeUsedFamilies() map[x86.RegFamily]bool {
	used := make(map[x86.RegFamily]bool)
	for _, inst := range p.block.Instructions {
		for _, o := range inst.Operands {
			switch o.Kind {
			case x86.KindReg:
				used[o.Reg.Family] = true
			case x86.KindMem, x86.KindAddr:
				if !o.Mem.Base.IsZero() {
					used[o.Mem.Base.Family] = true
				}
				if !o.Mem.Index.IsZero() {
					used[o.Mem.Index.Family] = true
				}
			}
		}
		if spec, ok := inst.Spec(); ok {
			for _, f := range spec.ImplicitReads {
				used[f] = true
			}
			for _, f := range spec.ImplicitWrites {
				used[f] = true
			}
		}
	}
	return used
}

// SpaceSize estimates log10 |Π̂(F)|, the size of the perturbation space
// when preserving F (Appendix F). The estimate multiplies, per vertex, the
// number of opcode choices (retention + replacements + deletion when
// allowed) and, per dependency edge, the number of carrier renamings
// available. It is an estimate of the same flavor as the paper's (which
// reports e.g. |Π̂(β1)(∅)| ≈ 1.94×10^38).
func (p *Perturber) SpaceSize(preserve features.Set) float64 {
	preserveEta := false
	locked := make([]bool, p.block.Len())
	preservedDeps := make(map[string]bool)
	for _, f := range preserve {
		switch f.Kind {
		case features.KindCount:
			preserveEta = true
		case features.KindInstr:
			locked[f.Index] = true
		case features.KindDep:
			preservedDeps[f.Key()] = true
			locked[f.Src] = true
			locked[f.Dst] = true
		}
	}
	log10 := 0.0
	for i, inst := range p.block.Instructions {
		if locked[i] {
			continue
		}
		choices := 1 + len(x86.ReplacementCandidates(inst))
		if !preserveEta {
			choices++
		}
		log10 += math.Log10(float64(choices))
	}
	// Operand-renaming choices are counted per renameable slot (register
	// position), not per edge: several edges can share one slot, and a slot
	// has the same alternative pool regardless of how many dependencies it
	// carries.
	const regAlternatives = 14.0 // same-bank families excluding RSP and current
	sc := getScratch(p.block.Len())
	defer scratchPool.Put(sc)
	lockedSlots := make(map[slot]bool)
	for _, e := range p.graph.Edges {
		key := features.Feature{Kind: features.KindDep, Src: e.Src, Dst: e.Dst, Hazard: e.Hazard}.Key()
		if preservedDeps[key] {
			p.lockEdgeSlots(sc, e, lockedSlots)
		}
	}
	seen := make(map[slot]bool)
	for _, e := range p.graph.Edges {
		for _, idx := range [2]int{e.Src, e.Dst} {
			if locked[idx] {
				continue
			}
			for _, s := range p.carrierSlots(sc, e, idx) {
				if seen[s] || lockedSlots[s] {
					continue
				}
				seen[s] = true
				log10 += math.Log10(1 + regAlternatives)
			}
		}
	}
	return log10
}

// FormatSpaceSize renders a log10 magnitude like "1.94e+38".
func FormatSpaceSize(log10 float64) string {
	exp := math.Floor(log10)
	mant := math.Pow(10, log10-exp)
	return fmt.Sprintf("%.2fe+%02d", mant, int(exp))
}
